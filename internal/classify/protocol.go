package classify

import (
	"context"
	"errors"
	"fmt"

	"hypermine/internal/core"
	"hypermine/internal/runopt"
	"hypermine/internal/table"
)

// PaperProtocolData builds a baseline training set exactly the way
// §5.5 prescribes: "Consider a directed hyperedge e in H such that
// e = ({A1,A2},{Y}) and A1,A2 in S. The training data set is built by
// using each row in AT(e) as a data point. Here, the particular value
// assignment A1=v1 and A2=v2 is the feature value, and the
// corresponding value y* of Y is the class value."
//
// Features are one-hot encodings over the dominator attributes (zeros
// for attributes outside the edge's tail); one data point per nonempty
// AT row per qualifying hyperedge. This is deliberately *weaker* than
// training on full observations — the paper's Weka numbers were
// produced this way, which is part of why its baselines trail the
// association-based classifier.
func PaperProtocolData(m *core.Model, dom []int, target int) (x [][]float64, y []int, err error) {
	if len(dom) == 0 {
		return nil, nil, errors.New("classify: empty dominator")
	}
	domPos := make(map[int]int, len(dom))
	for i, a := range dom {
		if a < 0 || a >= m.Table.NumAttrs() {
			return nil, nil, fmt.Errorf("classify: dominator attribute %d out of range", a)
		}
		domPos[a] = i
	}
	if target < 0 || target >= m.Table.NumAttrs() {
		return nil, nil, fmt.Errorf("classify: target %d out of range", target)
	}
	k := m.Table.K()
	for _, ei := range m.H.In(target) {
		e := m.H.Edge(int(ei))
		inDom := true
		for _, tv := range e.Tail {
			if _, ok := domPos[tv]; !ok {
				inDom = false
				break
			}
		}
		if !inDom {
			continue
		}
		at, err := core.BuildAssociationTable(m.Table, e.Tail, target)
		if err != nil {
			return nil, nil, err
		}
		vals := make([]table.Value, len(at.Tail))
		var walk func(depth, row int)
		walk = func(depth, row int) {
			if depth == len(at.Tail) {
				if at.Counts[row] == 0 {
					return
				}
				feat := make([]float64, len(dom)*k)
				for i, a := range at.Tail {
					feat[domPos[a]*k+int(vals[i]-1)] = 1
				}
				best, _ := at.Best(row)
				x = append(x, feat)
				y = append(y, int(best)-1)
				return
			}
			for v := 1; v <= k; v++ {
				vals[depth] = table.Value(v)
				walk(depth+1, row*k+(v-1))
			}
		}
		walk(0, 0)
	}
	if len(x) == 0 {
		return nil, nil, fmt.Errorf("classify: no qualifying hyperedges into target %d", target)
	}
	return x, y, nil
}

// EvaluateBaselinePaperProtocol fits a fresh classifier per target on
// the §5.5 AT-row training set and scores it on the test table's full
// observations, returning the mean accuracy across targets. Targets
// with no qualifying hyperedges are skipped; if none qualify an error
// is returned.
func EvaluateBaselinePaperProtocol(newC func() Classifier, m *core.Model, test *table.Table, dom, targets []int) (float64, error) {
	if len(targets) == 0 {
		return 0, errors.New("classify: no targets")
	}
	xTest, err := OneHotFeatures(test, dom)
	if err != nil {
		return 0, err
	}
	k := m.Table.K()
	var sum float64
	used := 0
	for _, target := range targets {
		xTrain, yTrain, err := PaperProtocolData(m, dom, target)
		if err != nil {
			continue // target without qualifying edges
		}
		yTest, err := Labels(test, target)
		if err != nil {
			return 0, err
		}
		c := newC()
		if err := c.Fit(xTrain, yTrain, k); err != nil {
			return 0, fmt.Errorf("classify: target %d: %w", target, err)
		}
		acc, err := Accuracy(c, xTest, yTest)
		if err != nil {
			return 0, err
		}
		sum += acc
		used++
	}
	if used == 0 {
		return 0, errors.New("classify: no target had qualifying hyperedges")
	}
	return sum / float64(used), nil
}

// KFoldIndices deterministically splits n observations into k
// contiguous folds and returns, per fold, the (train, test) row
// indexes. Contiguity matters for time series: shuffling day rows
// would leak look-ahead information.
func KFoldIndices(n, k int) ([][2][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("classify: k=%d folds for %d rows", k, n)
	}
	folds := make([][2][]int, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		var train, test []int
		for i := 0; i < n; i++ {
			if i >= lo && i < hi {
				test = append(test, i)
			} else {
				train = append(train, i)
			}
		}
		folds[f] = [2][]int{train, test}
	}
	return folds, nil
}

// CrossValidateABC runs k-fold cross-validation of the association-
// based classifier on one table: per fold, the model is rebuilt on the
// training rows and evaluated on the held-out rows. Returns the mean
// classification confidence across folds.
func CrossValidateABC(tb *table.Table, cfg core.Config, dom, targets []int, k int) (float64, error) {
	return CrossValidateABCContext(context.Background(), tb, cfg, dom, targets, k)
}

// CrossValidateABCContext is CrossValidateABC under a context: the
// per-fold model build inherits ctx (and cfg.Run's progress/stride
// hooks), cancellation is additionally polled between folds, and
// ctx.Err() is returned promptly. cfg.Run.Progress, when set, also
// observes PhaseFolds (one unit per completed fold). Bit-identical to
// CrossValidateABC when never canceled.
func CrossValidateABCContext(ctx context.Context, tb *table.Table, cfg core.Config, dom, targets []int, k int) (float64, error) {
	folds, err := KFoldIndices(tb.NumRows(), k)
	if err != nil {
		return 0, err
	}
	prog := runopt.NewMeter(runopt.PhaseFolds, len(folds), cfg.Run.Func())
	var sum float64
	for _, fold := range folds {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		train, err := selectRows(tb, fold[0])
		if err != nil {
			return 0, err
		}
		test, err := selectRows(tb, fold[1])
		if err != nil {
			return 0, err
		}
		model, err := core.BuildContext(ctx, train, cfg)
		if err != nil {
			return 0, err
		}
		abc, err := NewABC(model, dom, targets)
		if err != nil {
			return 0, err
		}
		conf, err := abc.Evaluate(test)
		if err != nil {
			return 0, err
		}
		sum += MeanConfidence(conf)
		prog.Tick(1)
	}
	return sum / float64(len(folds)), nil
}

func selectRows(tb *table.Table, rows []int) (*table.Table, error) {
	out, err := table.New(tb.Attrs(), tb.K())
	if err != nil {
		return nil, err
	}
	buf := make([]table.Value, tb.NumAttrs())
	for _, i := range rows {
		if i < 0 || i >= tb.NumRows() {
			return nil, fmt.Errorf("classify: row %d out of range", i)
		}
		if err := out.AppendRow(tb.Row(i, buf)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
