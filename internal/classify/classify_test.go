package classify

import (
	"math"
	"math/rand"
	"testing"

	"hypermine/internal/core"
	"hypermine/internal/table"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// deterministicTable builds a table where X = A exactly and Y follows
// B with some noise, so the ABC has clean structure to exploit.
func deterministicTable(t *testing.T, rows int, seed int64) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tb, err := table.New([]string{"A", "B", "X", "Y"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		a := table.Value(1 + rng.Intn(3))
		b := table.Value(1 + rng.Intn(3))
		x := a
		y := b
		if rng.Intn(10) == 0 {
			y = table.Value(1 + rng.Intn(3))
		}
		if err := tb.AppendRow([]table.Value{a, b, x, y}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func buildModel(t *testing.T, tb *table.Table) *core.Model {
	t.Helper()
	m, err := core.Build(tb, core.Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestABCPredictsDeterminedAttribute(t *testing.T) {
	tb := deterministicTable(t, 400, 1)
	m := buildModel(t, tb)
	abc, err := NewABC(m, []int{0, 1}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := abc.Evaluate(tb)
	if err != nil {
		t.Fatal(err)
	}
	// X = A exactly: in-sample confidence must be 1.
	if !almost(conf[2], 1) {
		t.Errorf("confidence for X = %v, want 1", conf[2])
	}
	// Y follows B with 10%% noise: confidence should be high.
	if conf[3] < 0.8 {
		t.Errorf("confidence for Y = %v, want >= 0.8", conf[3])
	}
	mean := MeanConfidence(conf)
	if mean < 0.9 || mean > 1 {
		t.Errorf("mean confidence = %v", mean)
	}
}

func TestABCOutSample(t *testing.T) {
	train := deterministicTable(t, 400, 2)
	test := deterministicTable(t, 150, 3)
	m := buildModel(t, train)
	abc, err := NewABC(m, []int{0, 1}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := abc.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(conf[2], 1) {
		t.Errorf("out-sample X confidence = %v, want 1", conf[2])
	}
	if conf[3] < 0.75 {
		t.Errorf("out-sample Y confidence = %v", conf[3])
	}
}

func TestABCPredictConfidenceNormalized(t *testing.T) {
	tb := deterministicTable(t, 300, 4)
	m := buildModel(t, tb)
	abc, err := NewABC(m, []int{0, 1}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	pred, conf, err := abc.Predict([]table.Value{2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pred < 1 || pred > 3 {
		t.Errorf("pred = %d", pred)
	}
	if conf < 0 || conf > 1 {
		t.Errorf("confidence = %v outside [0,1]", conf)
	}
	if _, _, err := abc.Predict([]table.Value{1}, 3); err == nil {
		t.Error("want error for wrong dominator arity")
	}
	if _, _, err := abc.Predict([]table.Value{1, 1}, 0); err == nil {
		t.Error("want error for non-target attribute")
	}
}

func TestABCFallbackWithoutEdges(t *testing.T) {
	// Independent random target: with gamma high enough no edges into
	// it survive, so prediction falls back to the majority value.
	rng := rand.New(rand.NewSource(6))
	tb, _ := table.New([]string{"A", "B", "Z"}, 2)
	for i := 0; i < 200; i++ {
		z := table.Value(1)
		if rng.Intn(10) == 0 {
			z = 2
		}
		_ = tb.AppendRow([]table.Value{table.Value(1 + rng.Intn(2)), table.Value(1 + rng.Intn(2)), z})
	}
	m, err := core.Build(tb, core.Config{GammaEdge: 1.2, GammaPair: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	abc, err := NewABC(m, []int{0, 1}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if abc.EdgeCount(2) != 0 {
		t.Skip("edges survived gamma; fallback not exercised")
	}
	pred, conf, err := abc.Predict([]table.Value{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pred != 1 || conf != 0 {
		t.Errorf("fallback = (%d, %v), want (1, 0)", pred, conf)
	}
}

func TestNewABCValidation(t *testing.T) {
	tb := deterministicTable(t, 100, 7)
	m := buildModel(t, tb)
	if _, err := NewABC(m, nil, []int{2}); err == nil {
		t.Error("want error for empty dominator")
	}
	if _, err := NewABC(m, []int{0}, nil); err == nil {
		t.Error("want error for no targets")
	}
	if _, err := NewABC(m, []int{0, 0}, []int{2}); err == nil {
		t.Error("want error for duplicate dominator attrs")
	}
	if _, err := NewABC(m, []int{0}, []int{0}); err == nil {
		t.Error("want error for target inside dominator")
	}
	if _, err := NewABC(m, []int{99}, []int{2}); err == nil {
		t.Error("want error for out-of-range dominator")
	}
	if _, err := NewABC(m, []int{0}, []int{99}); err == nil {
		t.Error("want error for out-of-range target")
	}
}

func TestABCEvaluateValidation(t *testing.T) {
	tb := deterministicTable(t, 100, 8)
	m := buildModel(t, tb)
	abc, _ := NewABC(m, []int{0, 1}, []int{2})
	other, _ := table.New([]string{"A"}, 3)
	if _, err := abc.Evaluate(other); err == nil {
		t.Error("want error for schema mismatch")
	}
	wrongK, _ := table.New([]string{"A", "B", "X", "Y"}, 5)
	if _, err := abc.Evaluate(wrongK); err == nil {
		t.Error("want error for k mismatch")
	}
}

func xorDataset(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a, b := rng.Intn(2), rng.Intn(2)
		x[i] = []float64{float64(a), float64(b)}
		y[i] = a ^ b
	}
	return x, y
}

func linearDataset(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x[i] = []float64{a, b}
		if a+b > 0 {
			y[i] = 1
		}
	}
	return x, y
}

func TestLinearClassifiersOnSeparableData(t *testing.T) {
	xTrain, yTrain := linearDataset(400, 1)
	xTest, yTest := linearDataset(200, 2)
	for name, c := range map[string]Classifier{
		"perceptron": &Perceptron{},
		"logistic":   &Logistic{},
		"svm":        &SVM{},
		"mlp":        &MLP{},
	} {
		if err := c.Fit(xTrain, yTrain, 2); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		acc, err := Accuracy(c, xTest, yTest)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.9 {
			t.Errorf("%s accuracy = %v, want >= 0.9", name, acc)
		}
	}
}

func TestMLPSolvesXORLinearsDoNot(t *testing.T) {
	xTrain, yTrain := xorDataset(400, 3)
	xTest, yTest := xorDataset(200, 4)
	mlp := &MLP{Hidden: 8, Epochs: 300, LR: 0.5}
	if err := mlp.Fit(xTrain, yTrain, 2); err != nil {
		t.Fatal(err)
	}
	acc, _ := Accuracy(mlp, xTest, yTest)
	if acc < 0.95 {
		t.Errorf("MLP on XOR = %v, want >= 0.95", acc)
	}
	lin := &Logistic{}
	_ = lin.Fit(xTrain, yTrain, 2)
	linAcc, _ := Accuracy(lin, xTest, yTest)
	if linAcc > 0.8 {
		t.Errorf("logistic on XOR = %v, expected near-chance", linAcc)
	}
}

func TestClassifierMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []int
	centers := [][]float64{{0, 0}, {5, 0}, {0, 5}}
	for i := 0; i < 300; i++ {
		c := rng.Intn(3)
		x = append(x, []float64{centers[c][0] + rng.NormFloat64()*0.3, centers[c][1] + rng.NormFloat64()*0.3})
		y = append(y, c)
	}
	for name, c := range map[string]Classifier{
		"perceptron": &Perceptron{},
		"logistic":   &Logistic{},
		"svm":        &SVM{},
		"mlp":        &MLP{},
	} {
		if err := c.Fit(x, y, 3); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		acc, _ := Accuracy(c, x, y)
		if acc < 0.95 {
			t.Errorf("%s 3-class accuracy = %v", name, acc)
		}
	}
}

func TestFitValidation(t *testing.T) {
	for name, c := range map[string]Classifier{
		"perceptron": &Perceptron{},
		"logistic":   &Logistic{},
		"svm":        &SVM{},
		"mlp":        &MLP{},
	} {
		if err := c.Fit(nil, nil, 2); err == nil {
			t.Errorf("%s: want error for empty data", name)
		}
		if err := c.Fit([][]float64{{1}}, []int{0, 1}, 2); err == nil {
			t.Errorf("%s: want error for shape mismatch", name)
		}
		if err := c.Fit([][]float64{{1}}, []int{0}, 1); err == nil {
			t.Errorf("%s: want error for single class", name)
		}
		if err := c.Fit([][]float64{{1}, {1, 2}}, []int{0, 1}, 2); err == nil {
			t.Errorf("%s: want error for ragged rows", name)
		}
		if err := c.Fit([][]float64{{1}}, []int{5}, 2); err == nil {
			t.Errorf("%s: want error for bad label", name)
		}
		if err := c.Fit([][]float64{{}}, []int{0}, 2); err == nil {
			t.Errorf("%s: want error for empty feature vector", name)
		}
	}
}

func TestOneHotFeaturesAndLabels(t *testing.T) {
	tb, _ := table.FromRows([]string{"A", "B"}, 3, [][]table.Value{{1, 3}, {2, 2}})
	x, err := OneHotFeatures(tb, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 0, 0, 0, 0, 1}, {0, 1, 0, 0, 1, 0}}
	for i := range want {
		for j := range want[i] {
			if x[i][j] != want[i][j] {
				t.Fatalf("one-hot[%d][%d] = %v, want %v", i, j, x[i][j], want[i][j])
			}
		}
	}
	y, err := Labels(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 2 || y[1] != 1 {
		t.Errorf("labels = %v", y)
	}
	if _, err := OneHotFeatures(tb, nil); err == nil {
		t.Error("want error for no attrs")
	}
	if _, err := OneHotFeatures(tb, []int{9}); err == nil {
		t.Error("want error for bad attr")
	}
	if _, err := Labels(tb, 9); err == nil {
		t.Error("want error for bad target")
	}
}

func TestEvaluateBaselineEndToEnd(t *testing.T) {
	train := deterministicTable(t, 400, 10)
	test := deterministicTable(t, 150, 11)
	mean, err := EvaluateBaseline(func() Classifier { return &Logistic{} }, train, test, []int{0, 1}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// X=A is perfectly learnable from one-hot A; Y mostly follows B.
	if mean < 0.85 {
		t.Errorf("baseline mean accuracy = %v", mean)
	}
	if _, err := EvaluateBaseline(func() Classifier { return &Logistic{} }, train, test, []int{0}, nil); err == nil {
		t.Error("want error for no targets")
	}
}

func TestMeanConfidence(t *testing.T) {
	if MeanConfidence(nil) != 0 {
		t.Error("empty map should give 0")
	}
	got := MeanConfidence(map[int]float64{1: 0.5, 2: 1.0})
	if !almost(got, 0.75) {
		t.Errorf("mean = %v", got)
	}
}
