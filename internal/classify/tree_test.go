package classify

import (
	"math/rand"
	"testing"
)

func TestDecisionTreeSeparable(t *testing.T) {
	xTrain, yTrain := linearDataset(400, 41)
	xTest, yTest := linearDataset(200, 42)
	dt := &DecisionTree{}
	if err := dt.Fit(xTrain, yTrain, 2); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(dt, xTest, yTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("tree accuracy = %v", acc)
	}
	if dt.Depth() < 1 {
		t.Error("tree did not split")
	}
}

func TestDecisionTreeSolvesXOR(t *testing.T) {
	// Unlike the linear baselines, a depth-2 tree represents XOR.
	xTrain, yTrain := xorDataset(400, 43)
	xTest, yTest := xorDataset(200, 44)
	dt := &DecisionTree{MaxDepth: 4}
	if err := dt.Fit(xTrain, yTrain, 2); err != nil {
		t.Fatal(err)
	}
	acc, _ := Accuracy(dt, xTest, yTest)
	if acc < 0.95 {
		t.Errorf("tree on XOR = %v, want >= 0.95", acc)
	}
}

func TestDecisionTreePureLeafAndSingleClassData(t *testing.T) {
	// Constant labels: a single leaf, depth 0.
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []int{1, 1, 1, 1}
	dt := &DecisionTree{}
	if err := dt.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if dt.Depth() != 0 {
		t.Errorf("depth = %d for pure data", dt.Depth())
	}
	if dt.Predict([]float64{9}) != 1 {
		t.Error("pure-leaf prediction wrong")
	}
	// Short feature vectors route through the +Inf guard.
	if got := dt.Predict(nil); got != 1 {
		t.Errorf("nil-feature prediction = %d", got)
	}
}

func TestDecisionTreeOneHotMulticlass(t *testing.T) {
	// Class = value of a 3-valued attribute, one-hot encoded: the
	// tree must recover it exactly.
	rng := rand.New(rand.NewSource(45))
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		v := rng.Intn(3)
		row := make([]float64, 6)
		row[v] = 1
		row[3+rng.Intn(3)] = 1 // noise attribute
		x = append(x, row)
		y = append(y, v)
	}
	dt := &DecisionTree{}
	if err := dt.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	acc, _ := Accuracy(dt, x, y)
	if acc < 0.99 {
		t.Errorf("one-hot multiclass accuracy = %v", acc)
	}
}

func TestDecisionTreeValidation(t *testing.T) {
	dt := &DecisionTree{}
	if err := dt.Fit(nil, nil, 2); err == nil {
		t.Error("want error for empty data")
	}
	if err := dt.Fit([][]float64{{1}}, []int{0}, 1); err == nil {
		t.Error("want error for single class")
	}
	if err := dt.Fit([][]float64{{1}}, []int{7}, 2); err == nil {
		t.Error("want error for bad label")
	}
}

func TestDecisionTreeMinLeafRespected(t *testing.T) {
	xTrain, yTrain := linearDataset(100, 46)
	dt := &DecisionTree{MinLeafSize: 60}
	if err := dt.Fit(xTrain, yTrain, 2); err != nil {
		t.Fatal(err)
	}
	// No split can give both sides >= 60 of 100 points.
	if dt.Depth() != 0 {
		t.Errorf("depth = %d despite MinLeafSize", dt.Depth())
	}
}
