package classify

import (
	"math"
	"math/rand"
)

// MLP is a one-hidden-layer multilayer perceptron (sigmoid hidden
// units, softmax output, cross-entropy loss, SGD), standing in for
// Weka's MultilayerPerceptron in §5.5.
type MLP struct {
	Hidden int     // hidden units, default 16
	Epochs int     // default 40
	LR     float64 // default 0.05
	Seed   int64

	w1 [][]float64 // hidden x (dim+1)
	w2 [][]float64 // classes x (hidden+1)
}

// Fit implements Classifier.
func (m *MLP) Fit(x [][]float64, y []int, numClasses int) error {
	dim, err := checkTrainingData(x, y, numClasses)
	if err != nil {
		return err
	}
	hidden, epochs, lr := m.Hidden, m.Epochs, m.LR
	if hidden <= 0 {
		hidden = 16
	}
	if epochs <= 0 {
		epochs = 40
	}
	if lr <= 0 {
		lr = 0.05
	}
	rng := rand.New(rand.NewSource(m.Seed + 13))
	m.w1 = make([][]float64, hidden)
	for h := range m.w1 {
		m.w1[h] = make([]float64, dim+1)
		for d := range m.w1[h] {
			m.w1[h][d] = (rng.Float64() - 0.5) * 0.5
		}
	}
	m.w2 = make([][]float64, numClasses)
	for c := range m.w2 {
		m.w2[c] = make([]float64, hidden+1)
		for d := range m.w2[c] {
			m.w2[c][d] = (rng.Float64() - 0.5) * 0.5
		}
	}
	hAct := make([]float64, hidden)
	out := make([]float64, numClasses)
	dOut := make([]float64, numClasses)
	dHid := make([]float64, hidden)
	order := rng.Perm(len(x))
	for e := 0; e < epochs; e++ {
		for _, i := range order {
			row := x[i]
			m.forward(row, hAct, out)
			softmaxInPlace(out)
			for c := range out {
				dOut[c] = out[c]
				if y[i] == c {
					dOut[c] -= 1
				}
			}
			for h := 0; h < hidden; h++ {
				var g float64
				for c := range dOut {
					g += dOut[c] * m.w2[c][h]
				}
				dHid[h] = g * hAct[h] * (1 - hAct[h])
			}
			for c := range m.w2 {
				w := m.w2[c]
				for h := 0; h < hidden; h++ {
					w[h] -= lr * dOut[c] * hAct[h]
				}
				w[hidden] -= lr * dOut[c]
			}
			for h := 0; h < hidden; h++ {
				w := m.w1[h]
				for d, v := range row {
					w[d] -= lr * dHid[h] * v
				}
				w[dim] -= lr * dHid[h]
			}
		}
	}
	return nil
}

func (m *MLP) forward(x []float64, hAct, out []float64) {
	for h, w := range m.w1 {
		s := w[len(w)-1]
		for d, v := range x {
			s += w[d] * v
		}
		hAct[h] = sigmoid(s)
	}
	for c, w := range m.w2 {
		s := w[len(w)-1]
		for h := 0; h < len(hAct); h++ {
			s += w[h] * hAct[h]
		}
		out[c] = s
	}
}

func sigmoid(x float64) float64 {
	// Clamp to keep training numerically tame on extreme activations.
	if x > 30 {
		x = 30
	} else if x < -30 {
		x = -30
	}
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int {
	hAct := make([]float64, len(m.w1))
	out := make([]float64, len(m.w2))
	m.forward(x, hAct, out)
	best := 0
	for c := 1; c < len(out); c++ {
		if out[c] > out[best] {
			best = c
		}
	}
	return best
}
