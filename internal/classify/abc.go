// Package classify implements the association-based classifier of
// §4.2 (Algorithm 9) and the baseline classifiers it is evaluated
// against in §5.5: perceptron (Algorithm 3), linear SVM, multilayer
// perceptron, and logistic regression — all from scratch on the
// standard library, substituting for the paper's Weka classifiers.
package classify

import (
	"errors"
	"fmt"
	"sort"

	"hypermine/internal/core"
	"hypermine/internal/table"
)

// abcEdge is one hyperedge relevant to a target: its tail attributes
// (all inside the dominator) and the association table built from the
// training data.
type abcEdge struct {
	tail []int
	at   *core.AssociationTable
}

// ABC is the association-based classifier (Algorithm 9). Given the
// values of a dominator set S of attributes, it predicts the value of
// every target attribute by accumulating Supp x Conf contributions
// from all hyperedges whose tail lies inside S and whose head is the
// target.
type ABC struct {
	model    *core.Model
	dom      []int
	domPos   map[int]int // attribute id -> index into dom
	targets  []int
	edges    map[int][]abcEdge
	fallback map[int]table.Value // majority training value per target
}

// NewABC prepares the classifier: it indexes, per target, every
// hyperedge of the model with head {target} and tail inside dom, and
// prebuilds the association tables from the model's training table.
func NewABC(m *core.Model, dom []int, targets []int) (*ABC, error) {
	if len(dom) == 0 {
		return nil, errors.New("classify: empty dominator")
	}
	if len(targets) == 0 {
		return nil, errors.New("classify: no targets")
	}
	c := &ABC{
		model:    m,
		dom:      append([]int(nil), dom...),
		domPos:   make(map[int]int, len(dom)),
		targets:  append([]int(nil), targets...),
		edges:    make(map[int][]abcEdge, len(targets)),
		fallback: make(map[int]table.Value, len(targets)),
	}
	n := m.Table.NumAttrs()
	for i, a := range c.dom {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("classify: dominator attribute %d out of range", a)
		}
		if _, dup := c.domPos[a]; dup {
			return nil, fmt.Errorf("classify: duplicate dominator attribute %d", a)
		}
		c.domPos[a] = i
	}
	inDom := make([]bool, n)
	for _, a := range c.dom {
		inDom[a] = true
	}
	for _, y := range c.targets {
		if y < 0 || y >= n {
			return nil, fmt.Errorf("classify: target attribute %d out of range", y)
		}
		if inDom[y] {
			return nil, fmt.Errorf("classify: target %d is inside the dominator", y)
		}
		// Majority value fallback for targets with no usable edges.
		bestV, bestC := table.Value(1), -1
		for v, cnt := range m.Table.ValueCounts(y) {
			if cnt > bestC {
				bestC = cnt
				bestV = table.Value(v + 1)
			}
		}
		c.fallback[y] = bestV
		c.edges[y] = []abcEdge{} // mark configured even with zero edges

		for _, ei := range m.H.In(y) {
			e := m.H.Edge(int(ei))
			ok := true
			for _, tv := range e.Tail {
				if !inDom[tv] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			at, err := core.BuildAssociationTable(m.Table, e.Tail, y)
			if err != nil {
				return nil, fmt.Errorf("classify: AT for edge into %d: %w", y, err)
			}
			c.edges[y] = append(c.edges[y], abcEdge{tail: e.Tail, at: at})
		}
	}
	return c, nil
}

// Targets returns the configured target attributes.
func (c *ABC) Targets() []int { return append([]int(nil), c.targets...) }

// Dominator returns the dominator attributes in configured order.
func (c *ABC) Dominator() []int { return append([]int(nil), c.dom...) }

// EdgeCount returns the number of usable hyperedges for a target.
func (c *ABC) EdgeCount(target int) int { return len(c.edges[target]) }

// Predict runs Algorithm 9 for one target: domVals holds the values of
// the dominator attributes in Dominator() order. It returns the best
// classified value y* and the normalized classification confidence
// val[y*] / sum(val). Targets with no contributing hyperedges fall
// back to the training-majority value with confidence 0.
func (c *ABC) Predict(domVals []table.Value, target int) (table.Value, float64, error) {
	if len(domVals) != len(c.dom) {
		return 0, 0, fmt.Errorf("classify: %d dominator values, want %d", len(domVals), len(c.dom))
	}
	k := c.model.Table.K()
	val := make([]float64, k)
	edges, ok := c.edges[target]
	if !ok {
		return 0, 0, fmt.Errorf("classify: %d is not a configured target", target)
	}
	var tailVals [3]table.Value // up to core.MaxTail tail attributes
	for _, e := range edges {
		tv := tailVals[:len(e.tail)]
		for i, a := range e.tail {
			tv[i] = domVals[c.domPos[a]]
		}
		row, err := e.at.RowIndex(tv)
		if err != nil {
			return 0, 0, err
		}
		y, _ := e.at.Best(row)
		contrib := e.at.Support(row) * e.at.Confidence(row)
		if contrib > 0 {
			val[y-1] += contrib
		}
	}
	var total float64
	for _, v := range val {
		total += v
	}
	if total == 0 {
		return c.fallback[target], 0, nil
	}
	best, bestVal := 0, val[0]
	for y := 1; y < k; y++ {
		if val[y] > bestVal {
			best, bestVal = y, val[y]
		}
	}
	return table.Value(best + 1), bestVal / total, nil
}

// Evaluate classifies every observation of tb for every target and
// returns, per target, the classification confidence of §5.5: the
// fraction of observations where the predicted value matches the
// actual one. tb must share the training table's schema.
func (c *ABC) Evaluate(tb *table.Table) (map[int]float64, error) {
	if tb.K() != c.model.Table.K() {
		return nil, fmt.Errorf("classify: evaluation table k=%d, want %d", tb.K(), c.model.Table.K())
	}
	if tb.NumAttrs() != c.model.Table.NumAttrs() {
		return nil, fmt.Errorf("classify: evaluation table has %d attributes, want %d", tb.NumAttrs(), c.model.Table.NumAttrs())
	}
	if tb.NumRows() == 0 {
		return nil, errors.New("classify: empty evaluation table")
	}
	correct := make(map[int]int, len(c.targets))
	domVals := make([]table.Value, len(c.dom))
	for i := 0; i < tb.NumRows(); i++ {
		for j, a := range c.dom {
			domVals[j] = tb.At(i, a)
		}
		for _, y := range c.targets {
			pred, _, err := c.Predict(domVals, y)
			if err != nil {
				return nil, err
			}
			if pred == tb.At(i, y) {
				correct[y]++
			}
		}
	}
	out := make(map[int]float64, len(c.targets))
	for _, y := range c.targets {
		out[y] = float64(correct[y]) / float64(tb.NumRows())
	}
	return out, nil
}

// MeanConfidence averages a per-target confidence map (the "mean
// classification confidence" column of Tables 5.3/5.4).
func MeanConfidence(conf map[int]float64) float64 {
	if len(conf) == 0 {
		return 0
	}
	keys := make([]int, 0, len(conf))
	for k := range conf {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += conf[k]
	}
	return sum / float64(len(conf))
}
