// Package classify implements the association-based classifier of
// §4.2 (Algorithm 9) and the baseline classifiers it is evaluated
// against in §5.5: perceptron (Algorithm 3), linear SVM, multilayer
// perceptron, and logistic regression — all from scratch on the
// standard library, substituting for the paper's Weka classifiers.
package classify

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"hypermine/internal/core"
	"hypermine/internal/table"
)

// abcEdge is one hyperedge relevant to a target: its tail attributes
// (all inside the dominator), their precomputed positions in the
// dominator-value vector, and the association table built from the
// training data.
type abcEdge struct {
	tail    []int
	tailPos []int32 // tail[i]'s index into Dominator() order
	at      *core.AssociationTable
}

// ABC is the association-based classifier (Algorithm 9). Given the
// values of a dominator set S of attributes, it predicts the value of
// every target attribute by accumulating Supp x Conf contributions
// from all hyperedges whose tail lies inside S and whose head is the
// target.
type ABC struct {
	model    *core.Model
	dom      []int
	domPos   map[int]int // attribute id -> index into dom
	targets  []int
	edges    map[int][]abcEdge
	fallback map[int]table.Value // majority training value per target
}

// NewABC prepares the classifier: it indexes, per target, every
// hyperedge of the model with head {target} and tail inside dom, and
// prebuilds the association tables from the model's training table.
func NewABC(m *core.Model, dom []int, targets []int) (*ABC, error) {
	if len(dom) == 0 {
		return nil, errors.New("classify: empty dominator")
	}
	if len(targets) == 0 {
		return nil, errors.New("classify: no targets")
	}
	if err := m.RequireRows(); err != nil {
		return nil, fmt.Errorf("classify: %w", err)
	}
	c := &ABC{
		model:    m,
		dom:      append([]int(nil), dom...),
		domPos:   make(map[int]int, len(dom)),
		targets:  append([]int(nil), targets...),
		edges:    make(map[int][]abcEdge, len(targets)),
		fallback: make(map[int]table.Value, len(targets)),
	}
	n := m.Table.NumAttrs()
	for i, a := range c.dom {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("classify: dominator attribute %d out of range", a)
		}
		if _, dup := c.domPos[a]; dup {
			return nil, fmt.Errorf("classify: duplicate dominator attribute %d", a)
		}
		c.domPos[a] = i
	}
	inDom := make([]bool, n)
	for _, a := range c.dom {
		inDom[a] = true
	}
	for _, y := range c.targets {
		if y < 0 || y >= n {
			return nil, fmt.Errorf("classify: target attribute %d out of range", y)
		}
		if inDom[y] {
			return nil, fmt.Errorf("classify: target %d is inside the dominator", y)
		}
		// Majority value fallback for targets with no usable edges.
		bestV, bestC := table.Value(1), -1
		for v, cnt := range m.Table.ValueCounts(y) {
			if cnt > bestC {
				bestC = cnt
				bestV = table.Value(v + 1)
			}
		}
		c.fallback[y] = bestV
		c.edges[y] = []abcEdge{} // mark configured even with zero edges

		for _, ei := range m.H.In(y) {
			e := m.H.Edge(int(ei))
			ok := true
			for _, tv := range e.Tail {
				if !inDom[tv] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			at, err := core.BuildAssociationTable(m.Table, e.Tail, y)
			if err != nil {
				return nil, fmt.Errorf("classify: AT for edge into %d: %w", y, err)
			}
			pos := make([]int32, len(e.Tail))
			for i, a := range e.Tail {
				pos[i] = int32(c.domPos[a])
			}
			c.edges[y] = append(c.edges[y], abcEdge{tail: e.Tail, tailPos: pos, at: at})
		}
	}
	return c, nil
}

// Targets returns the configured target attributes.
func (c *ABC) Targets() []int { return append([]int(nil), c.targets...) }

// Dominator returns the dominator attributes in configured order.
func (c *ABC) Dominator() []int { return append([]int(nil), c.dom...) }

// EdgeCount returns the number of usable hyperedges for a target.
func (c *ABC) EdgeCount(target int) int { return len(c.edges[target]) }

// Predictor carries the reusable per-query scratch of Algorithm 9, so
// repeated predictions through one Predictor perform zero heap
// allocations. It is not safe for concurrent use: share the ABC across
// goroutines and give each its own Predictor (EvaluateParallel does
// exactly that).
type Predictor struct {
	c   *ABC
	val []float64
}

// NewPredictor returns a Predictor over this classifier.
func (c *ABC) NewPredictor() *Predictor {
	return &Predictor{c: c, val: make([]float64, c.model.Table.K())}
}

// Predict runs Algorithm 9 for one target: domVals holds the values of
// the dominator attributes in Dominator() order. It returns the best
// classified value y* and the normalized classification confidence
// val[y*] / sum(val). Targets with no contributing hyperedges fall
// back to the training-majority value with confidence 0.
//
//hyper:noalloc
func (p *Predictor) Predict(domVals []table.Value, target int) (table.Value, float64, error) {
	c := p.c
	if len(domVals) != len(c.dom) {
		return 0, 0, fmt.Errorf("classify: %d dominator values, want %d", len(domVals), len(c.dom))
	}
	edges, ok := c.edges[target]
	if !ok {
		return 0, 0, fmt.Errorf("classify: %d is not a configured target", target)
	}
	k := c.model.Table.K()
	val := p.val[:k]
	for i := range val {
		val[i] = 0
	}
	var tailVals [core.MaxTail]table.Value
	for ei := range edges {
		e := &edges[ei]
		tv := tailVals[:len(e.tailPos)]
		for i, pos := range e.tailPos {
			tv[i] = domVals[pos]
		}
		row, err := e.at.RowIndex(tv)
		if err != nil {
			return 0, 0, err
		}
		y, _ := e.at.Best(row)
		contrib := e.at.Support(row) * e.at.Confidence(row)
		if contrib > 0 {
			val[y-1] += contrib
		}
	}
	var total float64
	for _, v := range val {
		total += v
	}
	if total == 0 {
		return c.fallback[target], 0, nil
	}
	best, bestVal := 0, val[0]
	for y := 1; y < k; y++ {
		if val[y] > bestVal {
			best, bestVal = y, val[y]
		}
	}
	return table.Value(best + 1), bestVal / total, nil
}

// PredictBatch classifies many observations for one target. domVals is
// row-major, len(Dominator()) values per observation; out receives one
// predicted value per observation and must be sized len(domVals)/len(Dominator());
// conf may be nil, or sized like out to also receive confidences.
// Beyond the Predictor itself the batch performs no heap allocations.
func (p *Predictor) PredictBatch(domVals []table.Value, target int, out []table.Value, conf []float64) error {
	return p.PredictBatchContext(context.Background(), domVals, target, out, conf)
}

// batchCheckEvery is the row stride between context polls in
// PredictBatchContext: one prediction is a few microseconds, so 64
// rows bound cancellation latency well under a millisecond while
// keeping the poll cost far below 2% of the predict work.
const batchCheckEvery = 64

// PredictBatchContext is PredictBatch under a context: cancellation
// is polled every batchCheckEvery rows and ctx.Err() is returned
// promptly, leaving out/conf partially written. Bit-identical to
// PredictBatch when never canceled, and free of extra allocations
// either way.
func (p *Predictor) PredictBatchContext(ctx context.Context, domVals []table.Value, target int, out []table.Value, conf []float64) error {
	return p.predictBatch(ctx, domVals, target, out, conf)
}

// predictBatch is the shared batch loop; a nil ctx (the v1 path)
// skips cancellation polling entirely.
//
//hyper:noalloc
func (p *Predictor) predictBatch(ctx context.Context, domVals []table.Value, target int, out []table.Value, conf []float64) error {
	nd := len(p.c.dom)
	if len(domVals)%nd != 0 {
		return fmt.Errorf("classify: %d batch values not a multiple of %d dominator attributes", len(domVals), nd)
	}
	rows := len(domVals) / nd
	if len(out) != rows {
		return fmt.Errorf("classify: out has %d slots for %d observations", len(out), rows)
	}
	if conf != nil && len(conf) != rows {
		return fmt.Errorf("classify: conf has %d slots for %d observations", len(conf), rows)
	}
	for i := 0; i < rows; i++ {
		if ctx != nil && i%batchCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		v, cf, err := p.Predict(domVals[i*nd:(i+1)*nd], target)
		if err != nil {
			return err
		}
		out[i] = v
		if conf != nil {
			conf[i] = cf
		}
	}
	return nil
}

// Predict is the one-shot form of Predictor.Predict, kept for callers
// without a hot loop; it allocates one scratch per call.
func (c *ABC) Predict(domVals []table.Value, target int) (table.Value, float64, error) {
	return c.NewPredictor().Predict(domVals, target)
}

// PredictBatch is the one-shot form of Predictor.PredictBatch,
// allocating the result slices.
func (c *ABC) PredictBatch(domVals []table.Value, target int) ([]table.Value, []float64, error) {
	nd := len(c.dom)
	if nd == 0 || len(domVals)%nd != 0 {
		return nil, nil, fmt.Errorf("classify: %d batch values not a multiple of %d dominator attributes", len(domVals), nd)
	}
	rows := len(domVals) / nd
	out := make([]table.Value, rows)
	conf := make([]float64, rows)
	if err := c.NewPredictor().PredictBatch(domVals, target, out, conf); err != nil {
		return nil, nil, err
	}
	return out, conf, nil
}

// Evaluate classifies every observation of tb for every target and
// returns, per target, the classification confidence of §5.5: the
// fraction of observations where the predicted value matches the
// actual one. tb must share the training table's schema. Rows are
// evaluated by GOMAXPROCS workers; use EvaluateParallel to pick the
// worker count explicitly.
func (c *ABC) Evaluate(tb *table.Table) (map[int]float64, error) {
	return c.EvaluateParallel(tb, 0)
}

// EvaluateParallel is Evaluate with an explicit parallelism bound (0
// means GOMAXPROCS, matching core.Config.Parallelism). Workers stripe
// the rows, each with its own Predictor; per-target match counts are
// integers, so the result is bit-identical at every parallelism level.
func (c *ABC) EvaluateParallel(tb *table.Table, parallelism int) (map[int]float64, error) {
	if tb.K() != c.model.Table.K() {
		return nil, fmt.Errorf("classify: evaluation table k=%d, want %d", tb.K(), c.model.Table.K())
	}
	if tb.NumAttrs() != c.model.Table.NumAttrs() {
		return nil, fmt.Errorf("classify: evaluation table has %d attributes, want %d", tb.NumAttrs(), c.model.Table.NumAttrs())
	}
	rows := tb.NumRows()
	if rows == 0 {
		return nil, errors.New("classify: empty evaluation table")
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > rows {
		parallelism = rows
	}
	counts := make([][]int, parallelism) // worker -> per-target matches
	errRows := make([]int, parallelism)  // first failing row per worker, or -1
	errs := make([]error, parallelism)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := c.NewPredictor()
			domVals := make([]table.Value, len(c.dom))
			local := make([]int, len(c.targets))
			counts[w], errRows[w] = local, -1
			for i := w; i < rows; i += parallelism {
				for j, a := range c.dom {
					domVals[j] = tb.At(i, a)
				}
				for ti, y := range c.targets {
					pred, _, err := p.Predict(domVals, y)
					if err != nil {
						errRows[w], errs[w] = i, err
						return
					}
					if pred == tb.At(i, y) {
						local[ti]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Surface the error of the smallest failing row, matching what a
	// serial scan would have reported first.
	firstRow, firstErr := -1, error(nil)
	for w := 0; w < parallelism; w++ {
		if errs[w] != nil && (firstRow < 0 || errRows[w] < firstRow) {
			firstRow, firstErr = errRows[w], errs[w]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	out := make(map[int]float64, len(c.targets))
	for ti, y := range c.targets {
		total := 0
		for w := 0; w < parallelism; w++ {
			total += counts[w][ti]
		}
		out[y] = float64(total) / float64(rows)
	}
	return out, nil
}

// MeanConfidence averages a per-target confidence map (the "mean
// classification confidence" column of Tables 5.3/5.4).
func MeanConfidence(conf map[int]float64) float64 {
	if len(conf) == 0 {
		return 0
	}
	keys := make([]int, 0, len(conf))
	for k := range conf {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += conf[k]
	}
	return sum / float64(len(conf))
}
