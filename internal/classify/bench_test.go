package classify

import (
	"math/rand"
	"testing"

	"hypermine/internal/core"
	"hypermine/internal/table"
)

func benchABC(b *testing.B) (*ABC, *table.Table) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	attrs := make([]string, 30)
	for j := range attrs {
		attrs[j] = "A" + string(rune('a'+j%26)) + string(rune('a'+j/26))
	}
	tb, _ := table.New(attrs, 3)
	row := make([]table.Value, 30)
	for i := 0; i < 1500; i++ {
		base := table.Value(1 + rng.Intn(3))
		for j := range row {
			if rng.Intn(3) == 0 {
				row[j] = table.Value(1 + rng.Intn(3))
			} else {
				row[j] = base
			}
		}
		_ = tb.AppendRow(row)
	}
	m, err := core.Build(tb, core.Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		b.Fatal(err)
	}
	dom := []int{0, 1, 2, 3, 4}
	targets := []int{5, 6, 7, 8, 9, 10}
	abc, err := NewABC(m, dom, targets)
	if err != nil {
		b.Fatal(err)
	}
	return abc, tb
}

// BenchmarkABCPredict measures one Algorithm 9 prediction.
func BenchmarkABCPredict(b *testing.B) {
	abc, _ := benchABC(b)
	domVals := []table.Value{1, 2, 3, 1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := abc.Predict(domVals, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkABCEvaluate measures a full-table evaluation pass.
func BenchmarkABCEvaluate(b *testing.B) {
	abc, tb := benchABC(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := abc.Evaluate(tb); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFitData(n int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(3))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = make([]float64, 15)
		c := rng.Intn(3)
		x[i][c*5+rng.Intn(5)] = 1
		y[i] = c
	}
	return x, y
}

// BenchmarkFitClassifiers compares the baselines' training cost on the
// same one-hot workload.
func BenchmarkFitClassifiers(b *testing.B) {
	x, y := benchFitData(1000)
	for name, mk := range map[string]func() Classifier{
		"perceptron": func() Classifier { return &Perceptron{} },
		"logistic":   func() Classifier { return &Logistic{} },
		"svm":        func() Classifier { return &SVM{} },
		"mlp":        func() Classifier { return &MLP{} },
		"regression": func() Classifier { return &LinearRegression{} },
		"tree":       func() Classifier { return &DecisionTree{} },
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := mk().Fit(x, y, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
