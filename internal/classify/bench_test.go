package classify_test

import (
	"math/rand"
	"testing"

	"hypermine/internal/benchfix"
	"hypermine/internal/classify"
	"hypermine/internal/table"
)

// BenchmarkABCPredict measures one Algorithm 9 prediction through the
// one-shot compatibility entry point (allocates its scratch per call).
func BenchmarkABCPredict(b *testing.B) {
	abc, _ := benchfix.ABCWorkload(30, 1500)
	domVals := []table.Value{1, 2, 3, 1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := abc.Predict(domVals, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures one Algorithm 9 prediction through the
// scratch-reusing Predictor — the 0 allocs/op per-query path.
func BenchmarkPredict(b *testing.B) {
	abc, _ := benchfix.ABCWorkload(30, 1500)
	p := abc.NewPredictor()
	domVals := []table.Value{1, 2, 3, 1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Predict(domVals, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch measures batched classification of 256
// observations through one Predictor.
func BenchmarkPredictBatch(b *testing.B) {
	abc, tb := benchfix.ABCWorkload(30, 1500)
	p := abc.NewPredictor()
	nd := len(abc.Dominator())
	rows := 256
	flat := make([]table.Value, 0, rows*nd)
	for i := 0; i < rows; i++ {
		for _, a := range abc.Dominator() {
			flat = append(flat, tb.At(i, a))
		}
	}
	out := make([]table.Value, rows)
	conf := make([]float64, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.PredictBatch(flat, 5, out, conf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkABCEvaluate measures a full-table evaluation pass at
// default (GOMAXPROCS) parallelism.
func BenchmarkABCEvaluate(b *testing.B) {
	abc, tb := benchfix.ABCWorkload(30, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := abc.Evaluate(tb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkABCEvaluateSerial pins Evaluate to one worker, quantifying
// the row-striped speedup.
func BenchmarkABCEvaluateSerial(b *testing.B) {
	abc, tb := benchfix.ABCWorkload(30, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := abc.EvaluateParallel(tb, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFitData(n int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(3))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = make([]float64, 15)
		c := rng.Intn(3)
		x[i][c*5+rng.Intn(5)] = 1
		y[i] = c
	}
	return x, y
}

// BenchmarkFitClassifiers compares the baselines' training cost on the
// same one-hot workload.
func BenchmarkFitClassifiers(b *testing.B) {
	x, y := benchFitData(1000)
	for name, mk := range map[string]func() classify.Classifier{
		"perceptron": func() classify.Classifier { return &classify.Perceptron{} },
		"logistic":   func() classify.Classifier { return &classify.Logistic{} },
		"svm":        func() classify.Classifier { return &classify.SVM{} },
		"mlp":        func() classify.Classifier { return &classify.MLP{} },
		"regression": func() classify.Classifier { return &classify.LinearRegression{} },
		"tree":       func() classify.Classifier { return &classify.DecisionTree{} },
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := mk().Fit(x, y, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
