package classify

import (
	"bytes"
	"math/rand"
	"testing"

	"hypermine/internal/core"
	"hypermine/internal/table"
)

// TestABCRebuildFromLoadedModel: a classifier built from a persisted
// and reloaded model must behave identically to one built from the
// original — same edge wiring and the same prediction (value and
// confidence) for every observation.
func TestABCRebuildFromLoadedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	attrs := []string{"A", "B", "C", "D", "E"}
	tb, err := table.New(attrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]table.Value, len(attrs))
	for i := 0; i < 300; i++ {
		base := table.Value(1 + rng.Intn(3))
		for j := range row {
			row[j] = base
			if rng.Intn(4) == 0 { // correlated columns with noise
				row[j] = table.Value(1 + rng.Intn(3))
			}
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	m, err := core.Build(tb, core.Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	dom, targets := []int{0, 1}, []int{2, 3, 4}
	orig, err := NewABC(m, dom, targets)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewABC(loaded, dom, targets)
	if err != nil {
		t.Fatal(err)
	}

	for _, y := range targets {
		if orig.EdgeCount(y) == 0 {
			t.Fatalf("fixture produced no usable edges for target %d", y)
		}
		if orig.EdgeCount(y) != rebuilt.EdgeCount(y) {
			t.Fatalf("target %d: %d edges originally, %d after reload", y, orig.EdgeCount(y), rebuilt.EdgeCount(y))
		}
	}
	domVals := make([]table.Value, len(dom))
	for i := 0; i < tb.NumRows(); i++ {
		for j, a := range dom {
			domVals[j] = tb.At(i, a)
		}
		for _, y := range targets {
			v1, c1, err := orig.Predict(domVals, y)
			if err != nil {
				t.Fatal(err)
			}
			v2, c2, err := rebuilt.Predict(domVals, y)
			if err != nil {
				t.Fatal(err)
			}
			if v1 != v2 || c1 != c2 {
				t.Fatalf("row %d target %d: original predicts (%d, %v), rebuilt (%d, %v)", i, y, v1, c1, v2, c2)
			}
		}
	}

	// Aggregate evaluation agrees too.
	e1, err := orig.Evaluate(tb)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := rebuilt.Evaluate(loaded.Table)
	if err != nil {
		t.Fatal(err)
	}
	for y, acc := range e1 {
		if e2[y] != acc {
			t.Fatalf("target %d: accuracy %v originally, %v after reload", y, acc, e2[y])
		}
	}
}
