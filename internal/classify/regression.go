package classify

import (
	"errors"
	"fmt"
	"math"
)

// LinearRegression is the ordinary-least-squares model of §2.3.1: the
// class value is expressed as a linear combination of the feature
// values (plus bias), fitted by minimizing the sum of squared errors
// via the normal equations with ridge damping for stability.
//
// As the paper discusses, regression on discrete class values is a
// weak classifier — predictions are rounded to the nearest class — but
// it completes the preliminaries' toolbox and serves as a sanity
// baseline.
type LinearRegression struct {
	Ridge float64 // L2 damping on the normal equations; default 1e-6

	w          []float64 // weights, bias last
	numClasses int       // set by Fit for Predict's clamping
}

// FitRegression fits on real-valued targets.
func (l *LinearRegression) FitRegression(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("classify: regression shapes %d/%d", len(x), len(y))
	}
	dim := len(x[0])
	if dim == 0 {
		return errors.New("classify: empty feature vectors")
	}
	for i, row := range x {
		if len(row) != dim {
			return fmt.Errorf("classify: row %d has dim %d, want %d", i, len(row), dim)
		}
	}
	ridge := l.Ridge
	if ridge <= 0 {
		ridge = 1e-6
	}
	d := dim + 1 // bias column
	// Normal equations: (X'X + ridge I) w = X'y.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	feat := func(row []float64, j int) float64 {
		if j == dim {
			return 1
		}
		return row[j]
	}
	for r, row := range x {
		for i := 0; i < d; i++ {
			fi := feat(row, i)
			xty[i] += fi * y[r]
			for j := i; j < d; j++ {
				xtx[i][j] += fi * feat(row, j)
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += ridge
	}
	w, err := solveGaussian(xtx, xty)
	if err != nil {
		return err
	}
	l.w = w
	return nil
}

// PredictValue returns the fitted linear combination for one vector.
func (l *LinearRegression) PredictValue(x []float64) float64 {
	d := len(l.w) - 1
	s := l.w[d]
	for j := 0; j < d && j < len(x); j++ {
		s += l.w[j] * x[j]
	}
	return s
}

// Fit implements Classifier: labels 0..numClasses-1 are regressed as
// real targets.
func (l *LinearRegression) Fit(x [][]float64, y []int, numClasses int) error {
	if _, err := checkTrainingData(x, y, numClasses); err != nil {
		return err
	}
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = float64(v)
	}
	l.numClasses = numClasses
	return l.FitRegression(x, ys)
}

// Predict implements Classifier: the regression output rounded to the
// nearest valid class.
func (l *LinearRegression) Predict(x []float64) int {
	v := math.Round(l.PredictValue(x))
	if v < 0 {
		v = 0
	}
	if max := float64(l.numClasses - 1); l.numClasses > 0 && v > max {
		v = max
	}
	return int(v)
}

// solveGaussian solves a dense linear system with partial pivoting.
func solveGaussian(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies to leave inputs intact.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, errors.New("classify: singular normal equations")
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x, nil
}
