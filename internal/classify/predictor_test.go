package classify

import (
	"math/rand"
	"testing"

	"hypermine/internal/core"
	"hypermine/internal/table"
	"hypermine/internal/testutil"
)

// randomABC builds a classifier over a noisy random table with the
// given cardinality and configuration.
func randomABC(t *testing.T, seed int64, k int, cfg core.Config, nAttrs, rows int) (*ABC, *table.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]string, nAttrs)
	for j := range attrs {
		attrs[j] = "A" + string(rune('a'+j%26)) + string(rune('0'+j/26))
	}
	tb, err := table.New(attrs, k)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]table.Value, nAttrs)
	for i := 0; i < rows; i++ {
		base := table.Value(1 + rng.Intn(k))
		for j := range row {
			if rng.Intn(3) == 0 {
				row[j] = table.Value(1 + rng.Intn(k))
			} else {
				row[j] = base
			}
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	m, err := core.Build(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dom := []int{0, 1, 2}
	targets := []int{3, 4, 5}
	abc, err := NewABC(m, dom, targets)
	if err != nil {
		t.Fatal(err)
	}
	return abc, tb
}

// TestPredictorMatchesPredict runs the scratch-reusing Predictor
// against the one-shot ABC.Predict on every row/target combination,
// for both k=3 (C1-shaped) and k=5 (C2-shaped) tables.
func TestPredictorMatchesPredict(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
		cfg  core.Config
	}{
		{"k3", 3, core.Config{GammaEdge: 1.0, GammaPair: 1.0}},
		{"k5-C2", 5, core.Config{K: 5, GammaEdge: 1.20, GammaPair: 1.12}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			abc, tb := randomABC(t, 21, tc.k, tc.cfg, 12, 600)
			p := abc.NewPredictor()
			domVals := make([]table.Value, len(abc.Dominator()))
			for i := 0; i < tb.NumRows(); i += 7 {
				for j, a := range abc.Dominator() {
					domVals[j] = tb.At(i, a)
				}
				for _, y := range abc.Targets() {
					v1, c1, err1 := abc.Predict(domVals, y)
					v2, c2, err2 := p.Predict(domVals, y)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if v1 != v2 || c1 != c2 {
						t.Fatalf("row %d target %d: Predictor (%d, %v) vs Predict (%d, %v)",
							i, y, v2, c2, v1, c1)
					}
				}
			}
		})
	}
}

// TestPredictorEdgeCases exercises the scratch path's error and
// fallback behavior.
func TestPredictorEdgeCases(t *testing.T) {
	abc, _ := randomABC(t, 22, 3, core.Config{GammaEdge: 1.0, GammaPair: 1.0}, 10, 400)
	p := abc.NewPredictor()
	if _, _, err := p.Predict([]table.Value{1}, 3); err == nil {
		t.Error("want error for wrong dominator-value length")
	}
	if _, _, err := p.Predict([]table.Value{1, 1, 1, 1}, 3); err == nil {
		t.Error("want error for overlong dominator values")
	}
	if _, _, err := p.Predict([]table.Value{1, 1, 1}, 0); err == nil {
		t.Error("want error for unconfigured target")
	}
	// A failed call must not poison the scratch for the next one.
	if _, _, err := p.Predict([]table.Value{1, 2, 3}, 3); err != nil {
		t.Errorf("predict after error: %v", err)
	}
}

// TestPredictorZeroContributionFallback drives the scratch path into
// the training-majority fallback: a target with no usable hyperedges
// must return the majority value with confidence 0.
func TestPredictorZeroContributionFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tb, _ := table.New([]string{"A", "B", "Z"}, 2)
	for i := 0; i < 300; i++ {
		z := table.Value(1)
		if rng.Intn(10) == 0 {
			z = 2
		}
		_ = tb.AppendRow([]table.Value{table.Value(1 + rng.Intn(2)), table.Value(1 + rng.Intn(2)), z})
	}
	m, err := core.Build(tb, core.Config{GammaEdge: 1.2, GammaPair: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	abc, err := NewABC(m, []int{0, 1}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if abc.EdgeCount(2) != 0 {
		t.Skip("edges survived gamma; fallback not exercised")
	}
	p := abc.NewPredictor()
	pred, conf, err := p.Predict([]table.Value{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pred != 1 || conf != 0 {
		t.Errorf("fallback through Predictor = (%d, %v), want (1, 0)", pred, conf)
	}
}

// TestPredictBatch checks the batch API against per-row Predict, plus
// its shape validation.
func TestPredictBatch(t *testing.T) {
	abc, tb := randomABC(t, 24, 3, core.Config{GammaEdge: 1.0, GammaPair: 1.0}, 10, 500)
	nd := len(abc.Dominator())
	rows := 40
	flat := make([]table.Value, 0, rows*nd)
	for i := 0; i < rows; i++ {
		for _, a := range abc.Dominator() {
			flat = append(flat, tb.At(i, a))
		}
	}
	out, conf, err := abc.PredictBatch(flat, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		v, c, err := abc.Predict(flat[i*nd:(i+1)*nd], 3)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != v || conf[i] != c {
			t.Fatalf("batch row %d: (%d, %v) vs single (%d, %v)", i, out[i], conf[i], v, c)
		}
	}
	p := abc.NewPredictor()
	if err := p.PredictBatch(flat[:nd+1], 3, make([]table.Value, 1), nil); err == nil {
		t.Error("want error for ragged batch length")
	}
	if err := p.PredictBatch(flat, 3, make([]table.Value, rows-1), nil); err == nil {
		t.Error("want error for short out slice")
	}
	if err := p.PredictBatch(flat, 3, make([]table.Value, rows), make([]float64, 1)); err == nil {
		t.Error("want error for short conf slice")
	}
}

// TestEvaluateParallelDeterministic checks serial vs parallel Evaluate
// bit-identity on both k=3 and k=5 models.
func TestEvaluateParallelDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
		cfg  core.Config
	}{
		{"k3", 3, core.Config{GammaEdge: 1.0, GammaPair: 1.0}},
		{"k5-C2", 5, core.Config{K: 5, GammaEdge: 1.20, GammaPair: 1.12}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			abc, tb := randomABC(t, 25, tc.k, tc.cfg, 12, 700)
			serial, err := abc.EvaluateParallel(tb, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 4, 8, 1000} {
				got, err := abc.EvaluateParallel(tb, par)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(serial) {
					t.Fatalf("parallelism %d: %d targets, want %d", par, len(got), len(serial))
				}
				for y, v := range serial {
					if got[y] != v {
						t.Fatalf("parallelism %d: conf[%d] = %v, serial %v", par, y, got[y], v)
					}
				}
			}
			got, err := abc.Evaluate(tb)
			if err != nil {
				t.Fatal(err)
			}
			for y, v := range serial {
				if got[y] != v {
					t.Fatalf("Evaluate: conf[%d] = %v, serial %v", y, got[y], v)
				}
			}
		})
	}
}

// TestPredictorZeroAlloc pins the tentpole property: per-query
// classification through a Predictor makes no heap allocations.
func TestPredictorZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts unreliable under the race detector")
	}
	abc, _ := randomABC(t, 26, 3, core.Config{GammaEdge: 1.0, GammaPair: 1.0}, 10, 500)
	p := abc.NewPredictor()
	domVals := []table.Value{1, 2, 3}
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := p.Predict(domVals, 3); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Predictor.Predict allocates %v objects/op, want 0", n)
	}
	rows := 16
	flat := make([]table.Value, rows*3)
	for i := range flat {
		flat[i] = table.Value(1 + i%3)
	}
	out := make([]table.Value, rows)
	conf := make([]float64, rows)
	if n := testing.AllocsPerRun(100, func() {
		if err := p.PredictBatch(flat, 4, out, conf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("PredictBatch allocates %v objects/op, want 0", n)
	}
}
