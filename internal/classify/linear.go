package classify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Classifier is the common supervised-learning interface of the §5.5
// baselines: fit on feature vectors with integer class labels in
// 0..numClasses-1, then predict labels for new vectors.
type Classifier interface {
	Fit(x [][]float64, y []int, numClasses int) error
	Predict(x []float64) int
}

func checkTrainingData(x [][]float64, y []int, numClasses int) (dim int, err error) {
	if len(x) == 0 {
		return 0, errors.New("classify: no training data")
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("classify: %d feature rows, %d labels", len(x), len(y))
	}
	if numClasses < 2 {
		return 0, fmt.Errorf("classify: numClasses=%d", numClasses)
	}
	dim = len(x[0])
	if dim == 0 {
		return 0, errors.New("classify: empty feature vectors")
	}
	for i, row := range x {
		if len(row) != dim {
			return 0, fmt.Errorf("classify: row %d has dim %d, want %d", i, len(row), dim)
		}
	}
	for i, label := range y {
		if label < 0 || label >= numClasses {
			return 0, fmt.Errorf("classify: label %d at row %d outside 0..%d", label, i, numClasses-1)
		}
	}
	return dim, nil
}

// Perceptron is a one-vs-rest multiclass wrapper around the perceptron
// learning rule of Algorithm 3: misclassified observations add or
// subtract their feature vector from the separating hyperplane's
// weights. Training stops after Epochs passes (the forced termination
// the paper prescribes for non-separable data).
type Perceptron struct {
	Epochs int // default 50

	w [][]float64 // per class: weights + bias at index dim
}

// Fit implements Classifier.
func (p *Perceptron) Fit(x [][]float64, y []int, numClasses int) error {
	dim, err := checkTrainingData(x, y, numClasses)
	if err != nil {
		return err
	}
	epochs := p.Epochs
	if epochs <= 0 {
		epochs = 50
	}
	p.w = make([][]float64, numClasses)
	for c := range p.w {
		p.w[c] = make([]float64, dim+1)
	}
	for c := 0; c < numClasses; c++ {
		w := p.w[c]
		for e := 0; e < epochs; e++ {
			mistakes := 0
			for i, row := range x {
				score := w[dim] // bias (A0 = 1)
				for d, v := range row {
					score += w[d] * v
				}
				want := y[i] == c
				got := score > 0
				if want == got {
					continue
				}
				mistakes++
				sign := 1.0
				if !want {
					sign = -1
				}
				for d, v := range row {
					w[d] += sign * v
				}
				w[dim] += sign
			}
			if mistakes == 0 {
				break
			}
		}
	}
	return nil
}

// Predict implements Classifier: highest one-vs-rest score wins.
func (p *Perceptron) Predict(x []float64) int {
	best, bestScore := 0, math.Inf(-1)
	for c, w := range p.w {
		score := w[len(w)-1]
		for d, v := range x {
			score += w[d] * v
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// Logistic is multinomial logistic regression (softmax) trained with
// mini-batchless SGD, standing in for Weka's Logistic in §5.5.
type Logistic struct {
	Epochs int     // default 60
	LR     float64 // default 0.1
	L2     float64 // default 1e-4
	Seed   int64

	w [][]float64
}

// Fit implements Classifier.
func (l *Logistic) Fit(x [][]float64, y []int, numClasses int) error {
	dim, err := checkTrainingData(x, y, numClasses)
	if err != nil {
		return err
	}
	epochs, lr, l2 := l.Epochs, l.LR, l.L2
	if epochs <= 0 {
		epochs = 60
	}
	if lr <= 0 {
		lr = 0.1
	}
	if l2 <= 0 {
		l2 = 1e-4
	}
	rng := rand.New(rand.NewSource(l.Seed + 1))
	l.w = make([][]float64, numClasses)
	for c := range l.w {
		l.w[c] = make([]float64, dim+1)
	}
	probs := make([]float64, numClasses)
	order := rng.Perm(len(x))
	for e := 0; e < epochs; e++ {
		for _, i := range order {
			row := x[i]
			l.scores(row, probs)
			softmaxInPlace(probs)
			for c := 0; c < numClasses; c++ {
				grad := probs[c]
				if y[i] == c {
					grad -= 1
				}
				w := l.w[c]
				for d, v := range row {
					w[d] -= lr * (grad*v + l2*w[d])
				}
				w[dim] -= lr * grad
			}
		}
	}
	return nil
}

func (l *Logistic) scores(x []float64, out []float64) {
	for c, w := range l.w {
		s := w[len(w)-1]
		for d, v := range x {
			s += w[d] * v
		}
		out[c] = s
	}
}

// Predict implements Classifier.
func (l *Logistic) Predict(x []float64) int {
	scores := make([]float64, len(l.w))
	l.scores(x, scores)
	best := 0
	for c := 1; c < len(scores); c++ {
		if scores[c] > scores[best] {
			best = c
		}
	}
	return best
}

func softmaxInPlace(s []float64) {
	max := s[0]
	for _, v := range s[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range s {
		s[i] = math.Exp(v - max)
		sum += s[i]
	}
	for i := range s {
		s[i] /= sum
	}
}

// SVM is a one-vs-rest linear support vector machine trained with
// Pegasos-style stochastic sub-gradient descent on the hinge loss,
// standing in for Weka's SMO in §5.5.
type SVM struct {
	Epochs int     // default 40
	Lambda float64 // L2 regularization, default 1e-3
	Seed   int64

	w [][]float64
}

// Fit implements Classifier.
func (s *SVM) Fit(x [][]float64, y []int, numClasses int) error {
	dim, err := checkTrainingData(x, y, numClasses)
	if err != nil {
		return err
	}
	epochs, lambda := s.Epochs, s.Lambda
	if epochs <= 0 {
		epochs = 40
	}
	if lambda <= 0 {
		lambda = 1e-3
	}
	rng := rand.New(rand.NewSource(s.Seed + 7))
	s.w = make([][]float64, numClasses)
	for c := range s.w {
		s.w[c] = make([]float64, dim+1)
	}
	t := 1
	order := rng.Perm(len(x))
	for e := 0; e < epochs; e++ {
		for _, i := range order {
			row := x[i]
			eta := 1 / (lambda * float64(t))
			t++
			for c := 0; c < numClasses; c++ {
				label := -1.0
				if y[i] == c {
					label = 1
				}
				w := s.w[c]
				score := w[dim]
				for d, v := range row {
					score += w[d] * v
				}
				for d := range w[:dim] {
					w[d] *= 1 - eta*lambda
				}
				if label*score < 1 {
					for d, v := range row {
						w[d] += eta * label * v
					}
					w[dim] += eta * label
				}
			}
		}
	}
	return nil
}

// Predict implements Classifier.
func (s *SVM) Predict(x []float64) int {
	best, bestScore := 0, math.Inf(-1)
	for c, w := range s.w {
		score := w[len(w)-1]
		for d, v := range x {
			score += w[d] * v
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}
