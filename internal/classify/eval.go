package classify

import (
	"errors"
	"fmt"

	"hypermine/internal/table"
)

// OneHotFeatures encodes, per observation, the values of the given
// attributes as concatenated one-hot vectors of width K each — the
// §5.5 methodology of predicting targets from the dominator's values.
func OneHotFeatures(tb *table.Table, attrs []int) ([][]float64, error) {
	if len(attrs) == 0 {
		return nil, errors.New("classify: no feature attributes")
	}
	for _, a := range attrs {
		if a < 0 || a >= tb.NumAttrs() {
			return nil, fmt.Errorf("classify: feature attribute %d out of range", a)
		}
	}
	k := tb.K()
	out := make([][]float64, tb.NumRows())
	for i := range out {
		row := make([]float64, len(attrs)*k)
		for j, a := range attrs {
			row[j*k+int(tb.At(i, a)-1)] = 1
		}
		out[i] = row
	}
	return out, nil
}

// Labels extracts 0-based class labels for a target attribute.
func Labels(tb *table.Table, target int) ([]int, error) {
	if target < 0 || target >= tb.NumAttrs() {
		return nil, fmt.Errorf("classify: target %d out of range", target)
	}
	out := make([]int, tb.NumRows())
	for i := range out {
		out[i] = int(tb.At(i, target)) - 1
	}
	return out, nil
}

// Accuracy scores a fitted classifier on test vectors.
func Accuracy(c Classifier, x [][]float64, y []int) (float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return 0, fmt.Errorf("classify: bad test shapes %d/%d", len(x), len(y))
	}
	correct := 0
	for i, row := range x {
		if c.Predict(row) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x)), nil
}

// EvaluateBaseline fits a fresh classifier per target on the training
// table (features = one-hot dominator values) and scores it on the
// test table, returning the mean accuracy across targets. newC must
// return a fresh classifier per call.
func EvaluateBaseline(newC func() Classifier, train, test *table.Table, dom, targets []int) (float64, error) {
	if len(targets) == 0 {
		return 0, errors.New("classify: no targets")
	}
	xTrain, err := OneHotFeatures(train, dom)
	if err != nil {
		return 0, err
	}
	xTest, err := OneHotFeatures(test, dom)
	if err != nil {
		return 0, err
	}
	k := train.K()
	var sum float64
	for _, target := range targets {
		yTrain, err := Labels(train, target)
		if err != nil {
			return 0, err
		}
		yTest, err := Labels(test, target)
		if err != nil {
			return 0, err
		}
		c := newC()
		if err := c.Fit(xTrain, yTrain, k); err != nil {
			return 0, fmt.Errorf("classify: target %d: %w", target, err)
		}
		acc, err := Accuracy(c, xTest, yTest)
		if err != nil {
			return 0, err
		}
		sum += acc
	}
	return sum / float64(len(targets)), nil
}
