package classify

import (
	"testing"

	"hypermine/internal/core"
	"hypermine/internal/table"
)

func TestLinearRegressionExactLine(t *testing.T) {
	// y = 2a - 3b + 1, noiseless: OLS must recover it.
	var x [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			x = append(x, []float64{a, b})
			y = append(y, 2*a-3*b+1)
		}
	}
	var lr LinearRegression
	if err := lr.FitRegression(x, y); err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		// Tolerance accounts for the default ridge damping.
		if got := lr.PredictValue(row); got < y[i]-1e-4 || got > y[i]+1e-4 {
			t.Fatalf("predict(%v) = %v, want %v", row, got, y[i])
		}
	}
}

func TestLinearRegressionAsClassifier(t *testing.T) {
	xTrain, yTrain := linearDataset(400, 21)
	xTest, yTest := linearDataset(200, 22)
	lr := &LinearRegression{}
	if err := lr.Fit(xTrain, yTrain, 2); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(lr, xTest, yTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("regression-as-classifier accuracy = %v", acc)
	}
	// Predictions are clamped to valid classes.
	if c := lr.Predict([]float64{1e6, 1e6}); c < 0 || c > 1 {
		t.Errorf("unclamped prediction %d", c)
	}
}

func TestLinearRegressionValidation(t *testing.T) {
	var lr LinearRegression
	if err := lr.FitRegression(nil, nil); err == nil {
		t.Error("want error for empty data")
	}
	if err := lr.FitRegression([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("want error for shape mismatch")
	}
	if err := lr.FitRegression([][]float64{{}}, []float64{1}); err == nil {
		t.Error("want error for empty features")
	}
	if err := lr.FitRegression([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("want error for ragged rows")
	}
	if err := lr.Fit([][]float64{{1}}, []int{9}, 2); err == nil {
		t.Error("want error for bad label")
	}
}

func TestSolveGaussianSingular(t *testing.T) {
	_, err := solveGaussian([][]float64{{1, 1}, {1, 1}}, []float64{1, 2})
	if err == nil {
		t.Error("want error for singular system")
	}
	x, err := solveGaussian([][]float64{{2, 0}, {0, 4}}, []float64{2, 8})
	if err != nil || !almost(x[0], 1) || !almost(x[1], 2) {
		t.Errorf("solve = %v, %v", x, err)
	}
}

func TestPaperProtocolData(t *testing.T) {
	tb := deterministicTable(t, 300, 30)
	m := buildModel(t, tb)
	x, y, err := PaperProtocolData(m, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) == 0 || len(x) != len(y) {
		t.Fatalf("shapes %d/%d", len(x), len(y))
	}
	// Every data point: one-hot over 2 dominator attrs x k=3, labels
	// in 0..2.
	for i, row := range x {
		if len(row) != 6 {
			t.Fatalf("row %d dim %d", i, len(row))
		}
		ones := 0.0
		for _, v := range row {
			ones += v
		}
		// |T|=1 edges light one block, |T|=2 edges two.
		if ones < 1 || ones > 2 {
			t.Fatalf("row %d has %v active features", i, ones)
		}
		if y[i] < 0 || y[i] > 2 {
			t.Fatalf("label %d", y[i])
		}
	}
	if _, _, err := PaperProtocolData(m, nil, 2); err == nil {
		t.Error("want error for empty dominator")
	}
	if _, _, err := PaperProtocolData(m, []int{99}, 2); err == nil {
		t.Error("want error for bad dominator attr")
	}
	if _, _, err := PaperProtocolData(m, []int{0}, 99); err == nil {
		t.Error("want error for bad target")
	}
}

func TestEvaluateBaselinePaperProtocol(t *testing.T) {
	train := deterministicTable(t, 400, 31)
	test := deterministicTable(t, 150, 32)
	m := buildModel(t, train)
	acc, err := EvaluateBaselinePaperProtocol(
		func() Classifier { return &Logistic{} }, m, test, []int{0, 1}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// X=A is exactly learnable even from AT rows.
	if acc < 0.6 {
		t.Errorf("paper-protocol accuracy = %v", acc)
	}
	if _, err := EvaluateBaselinePaperProtocol(
		func() Classifier { return &Logistic{} }, m, test, []int{0, 1}, nil); err == nil {
		t.Error("want error for no targets")
	}
}

func TestKFoldIndices(t *testing.T) {
	folds, err := KFoldIndices(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		if len(f[0])+len(f[1]) != 10 {
			t.Fatalf("fold sizes %d+%d", len(f[0]), len(f[1]))
		}
		for _, i := range f[1] {
			seen[i]++
		}
		// Test fold must be contiguous (time-series safety).
		for j := 1; j < len(f[1]); j++ {
			if f[1][j] != f[1][j-1]+1 {
				t.Fatal("test fold not contiguous")
			}
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Errorf("row %d in %d test folds", i, seen[i])
		}
	}
	if _, err := KFoldIndices(3, 5); err == nil {
		t.Error("want error for k > n")
	}
	if _, err := KFoldIndices(10, 1); err == nil {
		t.Error("want error for k=1")
	}
}

func TestCrossValidateABC(t *testing.T) {
	tb := deterministicTable(t, 300, 33)
	mean, err := CrossValidateABC(tb, core.Config{GammaEdge: 1.0, GammaPair: 1.0},
		[]int{0, 1}, []int{2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 0.8 {
		t.Errorf("cross-validated confidence = %v", mean)
	}
	if _, err := CrossValidateABC(tb, core.Config{GammaEdge: 1.0, GammaPair: 1.0},
		[]int{0, 1}, []int{2}, 1); err == nil {
		t.Error("want error for k=1")
	}
}

func TestSelectRows(t *testing.T) {
	tb, _ := table.FromRows([]string{"A"}, 3, [][]table.Value{{1}, {2}, {3}})
	sub, err := selectRows(tb, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumRows() != 2 || sub.At(0, 0) != 3 || sub.At(1, 0) != 1 {
		t.Errorf("selectRows wrong data")
	}
	if _, err := selectRows(tb, []int{9}); err == nil {
		t.Error("want error for bad row")
	}
}
