package classify

import (
	"math"
)

// DecisionTree is a CART-style classification tree (Gini impurity,
// binary threshold splits). The paper's related work (Ordonez [Ord06])
// compares association rules against decision trees for prediction;
// this implementation completes that comparison locally. On one-hot
// features every split degenerates to an "attribute = value" test,
// mirroring classical categorical trees.
type DecisionTree struct {
	MaxDepth    int // default 12
	MinLeafSize int // default 2

	root       *treeNode
	numClasses int
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	class     int // leaf prediction when left == nil
}

// Fit implements Classifier.
func (d *DecisionTree) Fit(x [][]float64, y []int, numClasses int) error {
	dim, err := checkTrainingData(x, y, numClasses)
	if err != nil {
		return err
	}
	maxDepth, minLeaf := d.MaxDepth, d.MinLeafSize
	if maxDepth <= 0 {
		maxDepth = 12
	}
	if minLeaf <= 0 {
		minLeaf = 2
	}
	d.numClasses = numClasses
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	d.root = d.grow(x, y, idx, dim, maxDepth, minLeaf)
	return nil
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func majority(counts []int) int {
	best, bestC := 0, -1
	for c, n := range counts {
		if n > bestC {
			best, bestC = c, n
		}
	}
	return best
}

func (d *DecisionTree) grow(x [][]float64, y []int, idx []int, dim, depth, minLeaf int) *treeNode {
	counts := make([]int, d.numClasses)
	for _, i := range idx {
		counts[y[i]]++
	}
	node := &treeNode{class: majority(counts)}
	if depth == 0 || len(idx) < 2*minLeaf || gini(counts, len(idx)) == 0 {
		return node
	}
	// Best binary split over all features; candidate thresholds are
	// midpoints between distinct sorted values (for one-hot inputs
	// this reduces to the single threshold 0.5).
	bestGain := -1.0
	bestF := -1
	bestT := 0.0
	parent := gini(counts, len(idx))
	leftCounts := make([]int, d.numClasses)
	for f := 0; f < dim; f++ {
		// Collect distinct values cheaply: for the common one-hot
		// case values are {0,1}; general case sorts a copy.
		vals := map[float64]bool{}
		for _, i := range idx {
			vals[x[i][f]] = true
			if len(vals) > 16 {
				break
			}
		}
		if len(vals) < 2 {
			continue
		}
		sorted := make([]float64, 0, len(vals))
		for v := range vals {
			sorted = append(sorted, v)
		}
		sortFloats(sorted)
		for vi := 0; vi+1 < len(sorted); vi++ {
			th := (sorted[vi] + sorted[vi+1]) / 2
			for c := range leftCounts {
				leftCounts[c] = 0
			}
			nLeft := 0
			for _, i := range idx {
				if x[i][f] <= th {
					leftCounts[y[i]]++
					nLeft++
				}
			}
			nRight := len(idx) - nLeft
			if nLeft < minLeaf || nRight < minLeaf {
				continue
			}
			rightCounts := make([]int, d.numClasses)
			for c := range rightCounts {
				rightCounts[c] = counts[c] - leftCounts[c]
			}
			gain := parent -
				(float64(nLeft)*gini(leftCounts, nLeft)+
					float64(nRight)*gini(rightCounts, nRight))/float64(len(idx))
			if gain > bestGain+1e-12 {
				bestGain, bestF, bestT = gain, f, th
			}
		}
	}
	if bestF < 0 || bestGain <= 1e-12 {
		return node
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][bestF] <= bestT {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	node.feature = bestF
	node.threshold = bestT
	node.left = d.grow(x, y, leftIdx, dim, depth-1, minLeaf)
	node.right = d.grow(x, y, rightIdx, dim, depth-1, minLeaf)
	return node
}

func sortFloats(v []float64) {
	// Insertion sort: candidate sets are tiny (<= 17 values).
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Predict implements Classifier.
func (d *DecisionTree) Predict(x []float64) int {
	n := d.root
	for n != nil && n.left != nil {
		v := math.Inf(1)
		if n.feature < len(x) {
			v = x[n.feature]
		}
		if v <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return 0
	}
	return n.class
}

// Depth reports the fitted tree's depth (0 for a single leaf).
func (d *DecisionTree) Depth() int { return depthOf(d.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.left == nil {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if r > l {
		l = r
	}
	return 1 + l
}
