package classify

import (
	"context"
	"errors"
	"testing"

	"hypermine/internal/core"
	"hypermine/internal/cover"
	"hypermine/internal/runopt"
	"hypermine/internal/table"
)

func ctxClassifyFixture(t *testing.T) (*table.Table, *core.Model, []int, []int) {
	t.Helper()
	names := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	tb, err := table.New(names, 3)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]table.Value, len(names))
	for r := 0; r < 240; r++ {
		base := table.Value(1 + r%3)
		for a := range row {
			row[a] = base
			if (r+a)%7 == 0 {
				row[a] = table.Value(1 + (r+a)%3)
			}
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	m, err := core.Build(tb, core.Config{K: 3, GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, tb.NumAttrs())
	for i := range all {
		all[i] = i
	}
	res, err := cover.DominatorSetCover(m.H, all, cover.Options{Enhancement1: true, Enhancement2: true})
	if err != nil {
		t.Fatal(err)
	}
	inDom := map[int]bool{}
	for _, v := range res.DomSet {
		inDom[v] = true
	}
	var targets []int
	for v, cov := range res.Covered {
		if cov && !inDom[v] {
			targets = append(targets, v)
		}
	}
	if len(targets) == 0 {
		t.Fatal("fixture dominator covers no targets")
	}
	return tb, m, res.DomSet, targets
}

func TestCrossValidateABCContextBackgroundIdentical(t *testing.T) {
	tb, _, dom, targets := ctxClassifyFixture(t)
	cfg := core.Config{K: 3, GammaEdge: 1.0, GammaPair: 1.0}
	want, err := CrossValidateABC(tb, cfg, dom, targets, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfgCtx := cfg
	cfgCtx.Run = &runopt.Hooks{CheckEvery: 1, Progress: func(runopt.Phase, int, int) {}}
	got, err := CrossValidateABCContext(context.Background(), tb, cfgCtx, dom, targets, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("CrossValidateABCContext(Background) %v != CrossValidateABC %v", got, want)
	}
}

func TestCrossValidateABCContextCancel(t *testing.T) {
	tb, _, dom, targets := ctxClassifyFixture(t)
	cfg := core.Config{K: 3, GammaEdge: 1.0, GammaPair: 1.0}
	// Pre-canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CrossValidateABCContext(ctx, tb, cfg, dom, targets, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: want Canceled, got %v", err)
	}
	// Mid-flight: cancel after the first fold completes; the next
	// fold's build observes it.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cfg.Run = &runopt.Hooks{Progress: func(ph runopt.Phase, done, total int) {
		if ph == runopt.PhaseFolds && done == 1 {
			cancel2()
		}
	}}
	if _, err := CrossValidateABCContext(ctx2, tb, cfg, dom, targets, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight: want Canceled, got %v", err)
	}
}

func TestPredictBatchContext(t *testing.T) {
	tb, m, dom, targets := ctxClassifyFixture(t)
	abc, err := NewABC(m, dom, targets)
	if err != nil {
		t.Fatal(err)
	}
	rows := tb.NumRows()
	domVals := make([]table.Value, 0, rows*len(dom))
	for i := 0; i < rows; i++ {
		for _, a := range abc.Dominator() {
			domVals = append(domVals, tb.At(i, a))
		}
	}
	target := targets[0]
	p := abc.NewPredictor()
	want := make([]table.Value, rows)
	wantConf := make([]float64, rows)
	if err := p.PredictBatch(domVals, target, want, wantConf); err != nil {
		t.Fatal(err)
	}
	got := make([]table.Value, rows)
	gotConf := make([]float64, rows)
	if err := p.PredictBatchContext(context.Background(), domVals, target, got, gotConf); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] || wantConf[i] != gotConf[i] {
			t.Fatalf("row %d: ctx batch (%d, %v) != v1 batch (%d, %v)", i, got[i], gotConf[i], want[i], wantConf[i])
		}
	}
	// Canceled context aborts the batch with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.PredictBatchContext(ctx, domVals, target, got, gotConf); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}
