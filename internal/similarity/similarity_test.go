package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hypermine/internal/hypergraph"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// Example 3.12 from the paper: out-sim(A1, A2) = 0.4 / (0.6+0.5+0.7).
func TestExample312OutSim(t *testing.T) {
	h, err := hypergraph.New([]string{"A1", "A2", "A3", "A4", "A5", "A6"})
	if err != nil {
		t.Fatal(err)
	}
	add := func(tail []int, w float64) {
		t.Helper()
		if err := h.AddEdge(tail, []int{5}, w); err != nil {
			t.Fatal(err)
		}
	}
	add([]int{0, 2}, 0.4)    // a = ({A1,A3},{A6})
	add([]int{0, 3}, 0.5)    // b = ({A1,A4},{A6})
	add([]int{1, 2}, 0.6)    // c = ({A2,A3},{A6})
	add([]int{1, 3, 4}, 0.7) // d = ({A2,A4,A5},{A6})
	add([]int{3, 4}, 0.8)    // e = ({A4,A5},{A6})

	got := OutSim(h, 0, 1)
	want := 0.4 / (0.6 + 0.5 + 0.7)
	if !almost(got, want) {
		t.Errorf("out-sim(A1,A2) = %v, want %v (~0.22)", got, want)
	}
	// Symmetry.
	if !almost(OutSim(h, 1, 0), want) {
		t.Error("out-sim not symmetric")
	}
}

func TestInSimBasic(t *testing.T) {
	h, _ := hypergraph.New([]string{"A", "B", "X", "Y"})
	// X and Y share the incoming tail {A}; only X has {B}.
	_ = h.AddEdge([]int{0}, []int{2}, 0.6) // A -> X
	_ = h.AddEdge([]int{0}, []int{3}, 0.4) // A -> Y
	_ = h.AddEdge([]int{1}, []int{2}, 0.8) // B -> X
	got := InSim(h, 2, 3)
	want := 0.4 / (0.6 + 0.8)
	if !almost(got, want) {
		t.Errorf("in-sim(X,Y) = %v, want %v", got, want)
	}
	if !almost(InSim(h, 3, 2), want) {
		t.Error("in-sim not symmetric")
	}
}

func TestSimIdenticalAndDisjoint(t *testing.T) {
	h, _ := hypergraph.New([]string{"A", "B", "C", "D"})
	_ = h.AddEdge([]int{0}, []int{2}, 0.5)
	if got := OutSim(h, 0, 0); got != 1 {
		t.Errorf("out-sim(A,A) = %v, want 1", got)
	}
	if got := OutSim(h, 3, 3); got != 0 {
		t.Errorf("out-sim of edge-less vertex with itself = %v, want 0", got)
	}
	// No shared structure at all: 0.
	if got := OutSim(h, 1, 3); got != 0 {
		t.Errorf("out-sim with no edges = %v, want 0", got)
	}
	if got := InSim(h, 0, 1); got != 0 {
		t.Errorf("in-sim with no incoming = %v, want 0", got)
	}
}

// Substitution that would produce a duplicate tail member must count
// as unmatched, not panic or collapse.
func TestOutSimCollidingSubstitution(t *testing.T) {
	h, _ := hypergraph.New([]string{"A", "B", "C", "X"})
	_ = h.AddEdge([]int{0, 1}, []int{3}, 0.9) // {A,B} -> X
	_ = h.AddEdge([]int{1, 2}, []int{3}, 0.7) // {B,C} -> X
	// out-sim(A,B): e={A,B}->X substituting A->B gives {B,B}: invalid.
	// f={A,B}->X from out(B) substituting B->A gives {A,A}: invalid.
	// f={B,C}->X substituting B->A gives {A,C}->X which is absent.
	got := OutSim(h, 0, 1)
	if !almost(got, 0) {
		t.Errorf("out-sim = %v, want 0", got)
	}
}

// In-sim must not match an edge whose substituted head collides with
// its own tail.
func TestInSimHeadTailCollision(t *testing.T) {
	h, _ := hypergraph.New([]string{"A", "X", "Y"})
	_ = h.AddEdge([]int{0}, []int{1}, 0.5) // A -> X
	_ = h.AddEdge([]int{1}, []int{2}, 0.5) // X -> Y ; substituting Y->X gives X->X
	got := InSim(h, 2, 1)
	// in(Y) = {X->Y}: substituted head X collides with tail -> unmatched (0.5 in den).
	// in(X) = {A->X}: substituted A->Y absent -> 0.5 in den.
	if !almost(got, 0) {
		t.Errorf("in-sim = %v, want 0", got)
	}
}

func TestDistanceAndGraph(t *testing.T) {
	h, _ := hypergraph.New([]string{"A", "B", "C", "X"})
	_ = h.AddEdge([]int{0}, []int{3}, 0.5)
	_ = h.AddEdge([]int{1}, []int{3}, 0.5)
	g, err := BuildGraph(h, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// A and B have identical out-structure onto X: out-sim = 1, in-sim = 0.
	if want := 1 - 0.5/1; !almost(g.Dist(0, 1), want) {
		t.Errorf("d(A,B) = %v, want %v", g.Dist(0, 1), want)
	}
	if g.Dist(0, 0) != 0 {
		t.Error("self distance must be 0")
	}
	if !almost(g.Dist(0, 2), 1) {
		t.Errorf("d(A,C) = %v, want 1", g.Dist(0, 2))
	}
	if g.MeanDistance() <= 0 {
		t.Error("mean distance should be positive")
	}
	if _, err := BuildGraph(h, nil); err == nil {
		t.Error("want error for empty collection")
	}
	if _, err := BuildGraph(h, []int{99}); err == nil {
		t.Error("want error for bad vertex")
	}
}

func TestEuclideanSim(t *testing.T) {
	a := []float64{1, 0, 0}
	if got, err := EuclideanSim(a, a); err != nil || !almost(got, 1) {
		t.Errorf("ES(a,a) = %v, %v", got, err)
	}
	b := []float64{-1, 0, 0}
	// Opposite unit vectors: ED = 2 -> ES = 0.
	if got, err := EuclideanSim(a, b); err != nil || !almost(got, 0) {
		t.Errorf("ES(a,-a) = %v, %v", got, err)
	}
	c := []float64{0, 1, 0}
	// Orthogonal: ED = sqrt(2) -> ES = 1 - sqrt2/2.
	if got, _ := EuclideanSim(a, c); !almost(got, 1-math.Sqrt2/2) {
		t.Errorf("ES orth = %v", got)
	}
	if _, err := EuclideanSim(a, []float64{1}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := EuclideanSim(nil, nil); err == nil {
		t.Error("want error for empty series")
	}
	if _, err := EuclideanSim([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("want error for zero-norm series")
	}
}

func randomHypergraph(rng *rand.Rand, n int) *hypergraph.H {
	names := make([]string, n)
	for i := range names {
		names[i] = "v" + string(rune('0'+i))
	}
	h, _ := hypergraph.New(names)
	for tries := 0; tries < 8*n; tries++ {
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		w := 0.05 + 0.95*rng.Float64()
		if rng.Intn(2) == 0 {
			_ = h.AddEdge([]int{a}, []int{c}, w)
		} else {
			_ = h.AddEdge([]int{a, b}, []int{c}, w)
		}
	}
	return h
}

// Properties on random hypergraphs: similarities are symmetric and in
// [0,1]; distances lie in [0,1].
func TestSimilarityProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		h := randomHypergraph(rng, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				os, is := OutSim(h, i, j), InSim(h, i, j)
				if os < 0 || os > 1+1e-12 || is < 0 || is > 1+1e-12 {
					return false
				}
				if !almost(os, OutSim(h, j, i)) || !almost(is, InSim(h, j, i)) {
					return false
				}
				d := Distance(h, i, j)
				if d < -1e-12 || d > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTriangleViolationsDetects(t *testing.T) {
	g := &Graph{Nodes: []int{0, 1, 2}, D: [][]float64{
		{0, 1.0, 0.1},
		{1.0, 0, 0.1},
		{0.1, 0.1, 0},
	}}
	if got := g.TriangleViolations(1e-9); got == 0 {
		t.Error("expected triangle violations for 1.0 > 0.2")
	}
	ok := &Graph{Nodes: []int{0, 1, 2}, D: [][]float64{
		{0, 0.5, 0.5},
		{0.5, 0, 0.5},
		{0.5, 0.5, 0},
	}}
	if got := ok.TriangleViolations(1e-9); got != 0 {
		t.Errorf("unexpected violations: %d", got)
	}
}
