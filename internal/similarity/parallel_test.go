package similarity

import (
	"math"
	"math/rand"
	"testing"

	"hypermine/internal/hypergraph"
	"hypermine/internal/testutil"
)

// refReplaceTail is the pre-optimization allocating substitution, kept
// as the differential reference for the scratch-buffer fast path.
func refReplaceTail(tail []int, a1, a2 int) ([]int, bool) {
	out := make([]int, 0, len(tail))
	for _, v := range tail {
		if v == a1 {
			v = a2
		} else if v == a2 {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// refOutSim / refInSim are the Definition 3.11 formulas written the
// straightforward allocating way, as shipped before the allocation-free
// read path.
func refOutSim(h *hypergraph.H, a1, a2 int) float64 {
	if a1 == a2 {
		if len(h.Out(a1)) > 0 {
			return 1
		}
		return 0
	}
	var num, den float64
	for _, i := range h.Out(a1) {
		e := h.Edge(int(i))
		sub, ok := refReplaceTail(e.Tail, a1, a2)
		if ok {
			if j, found := h.Lookup(sub, e.Head); found {
				f := h.Edge(int(j))
				num += math.Min(e.Weight, f.Weight)
				den += math.Max(e.Weight, f.Weight)
				continue
			}
		}
		den += e.Weight
	}
	for _, i := range h.Out(a2) {
		f := h.Edge(int(i))
		sub, ok := refReplaceTail(f.Tail, a2, a1)
		if ok {
			if _, found := h.Lookup(sub, f.Head); found {
				continue
			}
		}
		den += f.Weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func refInSim(h *hypergraph.H, a1, a2 int) float64 {
	if a1 == a2 {
		if len(h.In(a1)) > 0 {
			return 1
		}
		return 0
	}
	var num, den float64
	for _, i := range h.In(a1) {
		e := h.Edge(int(i))
		sub, ok := refReplaceTail(e.Head, a1, a2)
		if ok && !containsInt(e.Tail, a2) {
			if j, found := h.Lookup(e.Tail, sub); found {
				f := h.Edge(int(j))
				num += math.Min(e.Weight, f.Weight)
				den += math.Max(e.Weight, f.Weight)
				continue
			}
		}
		den += e.Weight
	}
	for _, i := range h.In(a2) {
		f := h.Edge(int(i))
		sub, ok := refReplaceTail(f.Head, a2, a1)
		if ok && !containsInt(f.Tail, a1) {
			if _, found := h.Lookup(f.Tail, sub); found {
				continue
			}
		}
		den += f.Weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func randomSimGraph(t *testing.T, rng *rand.Rand, nv, edges int) *hypergraph.H {
	t.Helper()
	names := make([]string, nv)
	for i := range names {
		names[i] = "v" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	h, err := hypergraph.New(names)
	if err != nil {
		t.Fatal(err)
	}
	for tries := 0; h.NumEdges() < edges && tries < edges*20; tries++ {
		w := rng.Float64() + 0.01
		switch rng.Intn(3) {
		case 0:
			_ = h.AddEdge([]int{rng.Intn(nv)}, []int{rng.Intn(nv)}, w)
		case 1:
			_ = h.AddEdge([]int{rng.Intn(nv), rng.Intn(nv)}, []int{rng.Intn(nv)}, w)
		case 2:
			_ = h.AddEdge([]int{rng.Intn(nv), rng.Intn(nv), rng.Intn(nv)}, []int{rng.Intn(nv)}, w)
		}
	}
	return h
}

// TestSimScratchDifferential checks the allocation-free OutSim/InSim
// against the straightforward allocating reference on random graphs
// with tails up to size 3.
func TestSimScratchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		nv := 6 + rng.Intn(20)
		h := randomSimGraph(t, rng, nv, 150)
		for a1 := 0; a1 < nv; a1++ {
			for a2 := 0; a2 < nv; a2++ {
				if got, want := OutSim(h, a1, a2), refOutSim(h, a1, a2); got != want {
					t.Fatalf("OutSim(%d,%d) = %v, reference %v", a1, a2, got, want)
				}
				if got, want := InSim(h, a1, a2), refInSim(h, a1, a2); got != want {
					t.Fatalf("InSim(%d,%d) = %v, reference %v", a1, a2, got, want)
				}
			}
		}
	}
}

// TestBuildGraphParallelDeterministic checks that the worker-pool
// distance matrix is bit-identical to the serial one at several
// parallelism levels.
func TestBuildGraphParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	h := randomSimGraph(t, rng, 30, 400)
	s := make([]int, 30)
	for i := range s {
		s[i] = i
	}
	serial, err := BuildGraphParallel(h, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8, 64} {
		g, err := BuildGraphParallel(h, s, par)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.D {
			for j := range serial.D[i] {
				if g.D[i][j] != serial.D[i][j] {
					t.Fatalf("parallelism %d: D[%d][%d] = %v, serial %v",
						par, i, j, g.D[i][j], serial.D[i][j])
				}
			}
		}
	}
	// The default entry point must agree too.
	g, err := BuildGraph(h, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.D {
		for j := range serial.D[i] {
			if g.D[i][j] != serial.D[i][j] {
				t.Fatalf("BuildGraph: D[%d][%d] differs from serial", i, j)
			}
		}
	}
}

// TestSimZeroAlloc pins the allocation-free read path on a
// restricted-model graph.
func TestSimZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts unreliable under the race detector")
	}
	rng := rand.New(rand.NewSource(13))
	h := randomSimGraph(t, rng, 20, 150)
	if n := testing.AllocsPerRun(100, func() {
		for a1 := 0; a1 < 20; a1++ {
			_ = OutSim(h, a1, (a1+1)%20)
			_ = InSim(h, a1, (a1+7)%20)
		}
	}); n != 0 {
		t.Errorf("OutSim/InSim allocate %v objects/op, want 0", n)
	}
}
