package similarity_test

import (
	"testing"

	"hypermine/internal/benchfix"
	"hypermine/internal/similarity"
)

// BenchmarkInSim measures one in-similarity evaluation on a dense
// random hypergraph.
func BenchmarkInSim(b *testing.B) {
	h := benchfix.RandomHypergraph(3, 60, 5000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = similarity.InSim(h, i%60, (i+1)%60)
	}
}

// BenchmarkOutSim measures one out-similarity evaluation.
func BenchmarkOutSim(b *testing.B) {
	h := benchfix.RandomHypergraph(3, 60, 5000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = similarity.OutSim(h, i%60, (i+1)%60)
	}
}

// BenchmarkBuildGraph measures full similarity-graph construction —
// the O(n^2) pre-step of Figure 5.3 — at default (GOMAXPROCS)
// parallelism.
func BenchmarkBuildGraph(b *testing.B) {
	h := benchfix.RandomHypergraph(3, 40, 2000, 2)
	all := make([]int, 40)
	for i := range all {
		all[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := similarity.BuildGraph(h, all); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildGraphSerial pins Parallelism to 1, quantifying the
// worker-pool speedup of the default BuildGraph.
func BenchmarkBuildGraphSerial(b *testing.B) {
	h := benchfix.RandomHypergraph(3, 40, 2000, 2)
	all := make([]int, 40)
	for i := range all {
		all[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := similarity.BuildGraphParallel(h, all, 1); err != nil {
			b.Fatal(err)
		}
	}
}
