package similarity

import (
	"math/rand"
	"testing"

	"hypermine/internal/hypergraph"
)

func benchGraph(b *testing.B, n, edges int) *hypergraph.H {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	names := make([]string, n)
	for i := range names {
		names[i] = "v" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	h, err := hypergraph.New(names)
	if err != nil {
		b.Fatal(err)
	}
	for h.NumEdges() < edges {
		a, c := rng.Intn(n), rng.Intn(n)
		w := rng.Float64()
		if rng.Intn(2) == 0 {
			_ = h.AddEdge([]int{a}, []int{c}, w)
		} else {
			_ = h.AddEdge([]int{a, rng.Intn(n)}, []int{c}, w)
		}
	}
	return h
}

// BenchmarkInSim measures one in-similarity evaluation on a dense
// random hypergraph.
func BenchmarkInSim(b *testing.B) {
	h := benchGraph(b, 60, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = InSim(h, i%60, (i+1)%60)
	}
}

// BenchmarkOutSim measures one out-similarity evaluation.
func BenchmarkOutSim(b *testing.B) {
	h := benchGraph(b, 60, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = OutSim(h, i%60, (i+1)%60)
	}
}

// BenchmarkBuildGraph measures full similarity-graph construction —
// the O(n^2) pre-step of Figure 5.3.
func BenchmarkBuildGraph(b *testing.B) {
	h := benchGraph(b, 40, 2000)
	all := make([]int, 40)
	for i := range all {
		all[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGraph(h, all); err != nil {
			b.Fatal(err)
		}
	}
}
