package similarity

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"hypermine/internal/runopt"
)

// TestBuildGraphContextBackgroundIdentical proves the context form is
// bit-identical to BuildGraph at every parallelism level when never
// canceled, with hooks set.
func TestBuildGraphContextBackgroundIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomSimGraph(t, rng, 25, 120)
	s := make([]int, h.NumVertices())
	for i := range s {
		s[i] = i
	}
	want, err := BuildGraph(h, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 7} {
		got, err := BuildGraphContext(context.Background(), h, s, GraphOptions{
			Parallelism: par,
			Progress:    func(runopt.Phase, int, int) {},
			CheckEvery:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d: BuildGraphContext differs from BuildGraph", par)
		}
	}
}

func TestBuildGraphContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomSimGraph(t, rng, 30, 150)
	s := make([]int, h.NumVertices())
	for i := range s {
		s[i] = i
	}
	for _, par := range []int{1, 3} {
		// Pre-canceled.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		g, err := BuildGraphContext(ctx, h, s, GraphOptions{Parallelism: par})
		if g != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("par %d pre-canceled: want (nil, Canceled), got (%v, %v)", par, g, err)
		}
		// Mid-flight: cancel after the first completed row; workers
		// observe it at the next row poll (stride 1 row).
		ctx2, cancel2 := context.WithCancel(context.Background())
		g, err = BuildGraphContext(ctx2, h, s, GraphOptions{
			Parallelism: par,
			Progress:    func(runopt.Phase, int, int) { cancel2() },
		})
		cancel2()
		if g != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("par %d mid-flight: want (nil, Canceled), got (%v, %v)", par, g, err)
		}
	}
}
