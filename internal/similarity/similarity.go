// Package similarity implements the association-based similarity
// notions of §3.3: in-similarity and out-similarity between attributes
// of an association hypergraph (Definition 3.11 over Notations 3.9 and
// 3.10), the induced similarity graph (Definition 3.13), and the
// Euclidean similarity baseline of §5.3.1.
package similarity

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"hypermine/internal/hypergraph"
	"hypermine/internal/runopt"
)

// replaceTail writes T with a1 replaced by a2 (Notation 3.9(3)) into
// buf and returns the filled prefix, or ok=false when the replacement
// does not produce a valid set (a2 already occurs in T - {a1}). Callers
// pass a stack scratch array sliced to length 0, so restricted-model
// tails (|T| <= 3) substitute without heap allocation; longer tails
// transparently grow the buffer.
func replaceTail(buf []int, tail []int, a1, a2 int) ([]int, bool) {
	out := buf[:0]
	for _, v := range tail {
		if v == a1 {
			v = a2
		} else if v == a2 {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// OutSim computes out-sim_H(a1, a2) of Definition 3.11(1): the
// weighted fraction of tail-substitutable hyperedge pairs among all
// hyperedges leaving a1 or a2. Result is in [0, 1]; identical
// attributes give 1 when they have outgoing edges, and 0 denominators
// give 0.
//
//hyper:noalloc
func OutSim(h *hypergraph.H, a1, a2 int) float64 {
	if a1 == a2 {
		if len(h.Out(a1)) > 0 {
			return 1
		}
		return 0
	}
	var num, den float64
	var scratch [hypergraph.MaxRestrictedTail]int
	// Pairs seeded from out(a1): matched ones contribute min to the
	// numerator and max to the denominator; unmatched ones are
	// (e, empty) pairs contributing ACV(e) to the denominator.
	for _, i := range h.Out(a1) {
		e := h.Edge(int(i))
		sub, ok := replaceTail(scratch[:0], e.Tail, a1, a2)
		if ok {
			if j, found := h.Lookup(sub, e.Head); found {
				f := h.Edge(int(j))
				num += math.Min(e.Weight, f.Weight)
				den += math.Max(e.Weight, f.Weight)
				continue
			}
		}
		den += e.Weight
	}
	// Remaining (empty, f) pairs from out(a2).
	for _, i := range h.Out(a2) {
		f := h.Edge(int(i))
		sub, ok := replaceTail(scratch[:0], f.Tail, a2, a1)
		if ok {
			if _, found := h.Lookup(sub, f.Head); found {
				continue // already counted from out(a1)
			}
		}
		den += f.Weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// replaceHead writes H with a1 replaced by a2 into buf (Notation
// 3.9(4)).
func replaceHead(buf []int, head []int, a1, a2 int) ([]int, bool) {
	return replaceTail(buf, head, a1, a2) // same substitution semantics
}

// InSim computes in-sim_H(a1, a2) of Definition 3.11(2): as OutSim but
// substituting in head sets of incoming hyperedges.
//
//hyper:noalloc
func InSim(h *hypergraph.H, a1, a2 int) float64 {
	if a1 == a2 {
		if len(h.In(a1)) > 0 {
			return 1
		}
		return 0
	}
	var num, den float64
	var scratch [hypergraph.MaxRestrictedTail]int
	for _, i := range h.In(a1) {
		e := h.Edge(int(i))
		sub, ok := replaceHead(scratch[:0], e.Head, a1, a2)
		if ok {
			// The substituted head must not collide with the tail.
			if !containsInt(e.Tail, a2) {
				if j, found := h.Lookup(e.Tail, sub); found {
					f := h.Edge(int(j))
					num += math.Min(e.Weight, f.Weight)
					den += math.Max(e.Weight, f.Weight)
					continue
				}
			}
		}
		den += e.Weight
	}
	for _, i := range h.In(a2) {
		f := h.Edge(int(i))
		sub, ok := replaceHead(scratch[:0], f.Head, a2, a1)
		if ok && !containsInt(f.Tail, a1) {
			if _, found := h.Lookup(f.Tail, sub); found {
				continue
			}
		}
		den += f.Weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

//hyper:noalloc
func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Distance is the similarity-graph edge weight of Definition 3.13:
// d(a1, a2) = 1 - (in-sim + out-sim)/2.
func Distance(h *hypergraph.H, a1, a2 int) float64 {
	return 1 - (InSim(h, a1, a2)+OutSim(h, a1, a2))/2
}

// Graph is the similarity graph SG_S induced by a collection S of
// attributes: an undirected, weighted, complete graph stored as a
// symmetric distance matrix.
type Graph struct {
	Nodes []int // attribute ids of the inducing collection S
	D     [][]float64
}

// GraphOptions tunes context-aware similarity-graph construction.
type GraphOptions struct {
	// Parallelism bounds workers; 0 means GOMAXPROCS (matching
	// core.Config.Parallelism), 1 is serial.
	Parallelism int
	// Progress, when set, observes PhaseSimilarity progress: one unit
	// per completed matrix row stripe. It may be invoked concurrently
	// from worker goroutines.
	Progress runopt.ProgressFunc
	// CheckEvery bounds matrix rows between context polls per worker;
	// 0 means every row (a row is the natural O(|S| x edges) stripe).
	CheckEvery int
}

// BuildGraph computes the similarity graph over the collection S of
// vertex ids of h (Definition 3.13). Diagonal distances are 0. The
// O(|S|^2) pairwise distance matrix is computed with GOMAXPROCS
// workers; use BuildGraphContext to pick the worker count, observe
// progress, or bound the run with a context.
func BuildGraph(h *hypergraph.H, s []int) (*Graph, error) {
	return BuildGraphContext(context.Background(), h, s, GraphOptions{})
}

// BuildGraphParallel is BuildGraph with an explicit parallelism bound
// (0 means GOMAXPROCS). Every worker owns disjoint rows of the matrix
// and Distance is a pure function of (h, a1, a2), so the result is
// bit-identical at every parallelism level.
func BuildGraphParallel(h *hypergraph.H, s []int, parallelism int) (*Graph, error) {
	return BuildGraphContext(context.Background(), h, s, GraphOptions{Parallelism: parallelism})
}

// BuildGraphContext is BuildGraph under a context: workers poll ctx
// every CheckEvery row stripes and the build returns ctx.Err()
// promptly once canceled, discarding the partial matrix. With a
// never-canceled context the result is bit-identical to BuildGraph at
// every parallelism level.
func BuildGraphContext(ctx context.Context, h *hypergraph.H, s []int, opt GraphOptions) (*Graph, error) {
	if len(s) == 0 {
		return nil, errors.New("similarity: empty collection")
	}
	numV := h.NumVertices()
	for _, v := range s {
		if v < 0 || v >= numV {
			return nil, fmt.Errorf("similarity: vertex %d out of range", v)
		}
	}
	parallelism := opt.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(s) {
		parallelism = len(s)
	}
	prog := runopt.NewMeter(runopt.PhaseSimilarity, len(s), opt.Progress)
	g := &Graph{Nodes: append([]int(nil), s...), D: make([][]float64, len(s))}
	for i := range g.D {
		g.D[i] = make([]float64, len(s))
	}
	fillRow := func(i int) {
		for j := i + 1; j < len(s); j++ {
			d := Distance(h, s[i], s[j])
			g.D[i][j] = d
			g.D[j][i] = d
		}
	}
	if parallelism == 1 {
		chk := runopt.NewChecker(ctx, opt.CheckEvery, 1)
		for i := 0; i < len(s); i++ {
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			fillRow(i)
			prog.Tick(1)
		}
		return g, nil
	}
	// Row i owns cells (i, j) and (j, i) for all j > i, so workers
	// never write the same cell. Rows shrink toward the end of the
	// matrix; the channel balances the skew dynamically. Canceled
	// workers keep draining so the feeder never blocks.
	rows := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chk := runopt.NewChecker(ctx, opt.CheckEvery, 1)
			for i := range rows {
				if chk.Tick() != nil {
					continue
				}
				fillRow(i)
				prog.Tick(1)
			}
		}()
	}
	for i := 0; i < len(s) && ctx.Err() == nil; i++ {
		select {
		case rows <- i:
		case <-ctx.Done():
		}
	}
	close(rows)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// Dist returns the stored distance between graph positions i and j.
func (g *Graph) Dist(i, j int) float64 { return g.D[i][j] }

// MeanDistance returns the average off-diagonal distance (the "overall
// mean distance in SG_S" figure quoted in §5.3.2).
func (g *Graph) MeanDistance() float64 {
	n := len(g.Nodes)
	if n < 2 {
		return 0
	}
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += g.D[i][j]
			cnt++
		}
	}
	return sum / float64(cnt)
}

// TriangleViolations counts triples violating the triangle inequality
// by more than eps. §5.3.2 "experimentally verified that the weight
// function satisfies the triangle inequality"; this makes the check
// executable.
func (g *Graph) TriangleViolations(eps float64) int {
	n := len(g.Nodes)
	violations := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if g.D[i][j] > g.D[i][k]+g.D[k][j]+eps {
					violations++
				}
			}
		}
	}
	return violations
}

// EuclideanSim computes ES(A,B) of §5.3.1 on two raw delta series:
// 1 - ||normalized(a) - normalized(b)|| / 2, a value in [0, 1].
func EuclideanSim(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("similarity: series lengths %d != %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, errors.New("similarity: empty series")
	}
	na, err := normalize(a)
	if err != nil {
		return 0, err
	}
	nb, err := normalize(b)
	if err != nil {
		return 0, err
	}
	var sq float64
	for i := range na {
		d := na[i] - nb[i]
		sq += d * d
	}
	return 1 - math.Sqrt(sq)/2, nil
}

func normalize(v []float64) ([]float64, error) {
	var sq float64
	for _, x := range v {
		sq += x * x
	}
	if sq == 0 {
		return nil, errors.New("similarity: zero-norm series")
	}
	n := math.Sqrt(sq)
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x / n
	}
	return out, nil
}
