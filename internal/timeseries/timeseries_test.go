package timeseries

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDelta(t *testing.T) {
	d, err := Delta([]float64{100, 110, 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || math.Abs(d[0]-0.1) > 1e-12 || math.Abs(d[1]+0.1) > 1e-12 {
		t.Errorf("delta = %v", d)
	}
	if _, err := Delta([]float64{1}); err == nil {
		t.Error("want error for single price")
	}
	if _, err := Delta([]float64{0, 1}); err == nil {
		t.Error("want error for zero price")
	}
}

func TestDefaultTaxonomy(t *testing.T) {
	tax := DefaultTaxonomy()
	if len(tax) != 12 {
		t.Fatalf("sectors = %d, want 12", len(tax))
	}
	total := 0
	for _, s := range tax {
		total += s.SubSectors
	}
	if total != 104 {
		t.Errorf("total sub-sectors = %d, want 104 (paper §5)", total)
	}
	var tech SectorSpec
	for _, s := range tax {
		if s.Code == "T" {
			tech = s
		}
	}
	if tech.SubSectors != 11 {
		t.Errorf("Technology sub-sectors = %d, want 11", tech.SubSectors)
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumSeries = 30
	cfg.NumDays = 120
	u1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := u1.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(u1.Series) != 30 || u1.Days() != 120 {
		t.Fatalf("dims = %d x %d", len(u1.Series), u1.Days())
	}
	for i := range u1.Series {
		if u1.Series[i].Ticker != u2.Series[i].Ticker {
			t.Fatal("ticker mismatch between same-seed runs")
		}
		for d := range u1.Series[i].Prices {
			if u1.Series[i].Prices[d] != u2.Series[i].Prices[d] {
				t.Fatal("prices differ between same-seed runs")
			}
		}
	}
	cfg.Seed = 43
	u3, _ := Generate(cfg)
	same := true
	for d := range u1.Series[0].Prices {
		if u1.Series[0].Prices[d] != u3.Series[0].Prices[d] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical prices")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{NumSeries: 0, NumDays: 100}); err == nil {
		t.Error("want error for zero series")
	}
	if _, err := Generate(GenConfig{NumSeries: 5, NumDays: 1}); err == nil {
		t.Error("want error for too few days")
	}
	if _, err := Generate(GenConfig{NumSeries: 5, NumDays: 100,
		Taxonomy: []SectorSpec{{Code: "X", SubSectors: 0}}}); err == nil {
		t.Error("want error for zero sub-sectors")
	}
}

func TestSelectedTickersPresent(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumSeries = 60
	cfg.NumDays = 50
	u, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EMN", "HON", "GT", "PG", "XOM", "AIG", "JNJ", "JCP", "INTC", "FDX", "TE"} {
		found := false
		for _, s := range u.Series {
			if s.Ticker == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("ticker %s missing from universe", want)
		}
	}
	if got := u.SectorOf("XOM"); got != "E" {
		t.Errorf("SectorOf(XOM) = %q, want E", got)
	}
	if got := u.SectorOf("NOPE"); got != "" {
		t.Errorf("SectorOf(NOPE) = %q, want empty", got)
	}
}

func TestSectorCoMovement(t *testing.T) {
	// Same-sector delta series must correlate more than cross-sector
	// ones — that is the property the whole evaluation rests on.
	cfg := DefaultGenConfig()
	cfg.NumSeries = 48
	cfg.NumDays = 1500
	u, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := u.DeltaMatrix()
	if err != nil {
		t.Fatal(err)
	}
	corr := func(a, b []float64) float64 {
		var ma, mb float64
		for i := range a {
			ma += a[i]
			mb += b[i]
		}
		ma /= float64(len(a))
		mb /= float64(len(b))
		var num, da, db float64
		for i := range a {
			num += (a[i] - ma) * (b[i] - mb)
			da += (a[i] - ma) * (a[i] - ma)
			db += (b[i] - mb) * (b[i] - mb)
		}
		return num / math.Sqrt(da*db)
	}
	var sameSum, crossSum float64
	var sameN, crossN int
	for i := 0; i < len(u.Series); i++ {
		for j := i + 1; j < len(u.Series); j++ {
			c := corr(deltas[i], deltas[j])
			if u.Series[i].Sector == u.Series[j].Sector {
				sameSum += c
				sameN++
			} else {
				crossSum += c
				crossN++
			}
		}
	}
	same, cross := sameSum/float64(sameN), crossSum/float64(crossN)
	if same <= cross+0.05 {
		t.Errorf("same-sector corr %.3f not above cross-sector %.3f", same, cross)
	}
}

func TestBuildTableEquiDepth(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumSeries = 12
	cfg.NumDays = 901
	u, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb, disc, err := u.BuildTable(3)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 900 || tb.NumAttrs() != 12 || tb.K() != 3 {
		t.Fatalf("table dims %dx%d k=%d", tb.NumRows(), tb.NumAttrs(), tb.K())
	}
	// Equi-depth: every value gets roughly a third of the rows.
	for j := 0; j < tb.NumAttrs(); j++ {
		for v, c := range tb.ValueCounts(j) {
			if c < 200 || c > 400 {
				t.Errorf("col %d value %d count %d far from 300", j, v+1, c)
			}
		}
	}
	if len(disc.Thresholds) != 12 || len(disc.Thresholds[0]) != 2 {
		t.Fatalf("thresholds shape wrong")
	}
	// Applying the fitted discretization to the same universe must
	// reproduce the table exactly.
	tb2, err := disc.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumRows(); i++ {
		for j := 0; j < tb.NumAttrs(); j++ {
			if tb.At(i, j) != tb2.At(i, j) {
				t.Fatalf("Apply mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestWindowAndApplyOutSample(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumSeries = 8
	cfg.NumDays = 400
	u, _ := Generate(cfg)
	in, err := u.Window(0, 300)
	if err != nil {
		t.Fatal(err)
	}
	out, err := u.Window(300, 400)
	if err != nil {
		t.Fatal(err)
	}
	_, disc, err := in.BuildTable(5)
	if err != nil {
		t.Fatal(err)
	}
	outTb, err := disc.Apply(out)
	if err != nil {
		t.Fatal(err)
	}
	if outTb.NumRows() != 99 || outTb.K() != 5 {
		t.Fatalf("out-sample table %d rows k=%d", outTb.NumRows(), outTb.K())
	}
	if _, err := u.Window(5, 4); err == nil {
		t.Error("want error for inverted window")
	}
	if _, err := u.Window(0, 10_000); err == nil {
		t.Error("want error for oversized window")
	}
}

func TestApplyMismatch(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumSeries = 4
	cfg.NumDays = 60
	u, _ := Generate(cfg)
	_, disc, err := u.BuildTable(3)
	if err != nil {
		t.Fatal(err)
	}
	small := &Universe{Series: u.Series[:2]}
	if _, err := disc.Apply(small); err == nil {
		t.Error("want error for series-count mismatch")
	}
	swapped := &Universe{Series: append([]Series(nil), u.Series...)}
	swapped.Series[0], swapped.Series[1] = swapped.Series[1], swapped.Series[0]
	if _, err := disc.Apply(swapped); err == nil {
		t.Error("want error for ticker mismatch")
	}
}

// Property: the delta of a generated series always stays finite and
// the discretized table rows are equal to NumDays-1.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultGenConfig()
		cfg.Seed = seed
		cfg.NumSeries = 6
		cfg.NumDays = 80
		u, err := Generate(cfg)
		if err != nil {
			return false
		}
		deltas, err := u.DeltaMatrix()
		if err != nil {
			return false
		}
		for _, col := range deltas {
			if len(col) != 79 {
				return false
			}
			for _, v := range col {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
