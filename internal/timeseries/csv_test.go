package timeseries

import (
	"bytes"
	"strings"
	"testing"
)

func TestPricesCSVRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumSeries = 10
	cfg.NumDays = 40
	u, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := u.WritePricesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPricesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Series) != 10 || back.Days() != 40 {
		t.Fatalf("dims %d x %d", len(back.Series), back.Days())
	}
	for i := range u.Series {
		if back.Series[i].Ticker != u.Series[i].Ticker ||
			back.Series[i].Sector != u.Series[i].Sector ||
			back.Series[i].SubSector != u.Series[i].SubSector {
			t.Fatalf("metadata mismatch at %d", i)
		}
		for d := range u.Series[i].Prices {
			if back.Series[i].Prices[d] != u.Series[i].Prices[d] {
				t.Fatalf("price mismatch %s day %d", u.Series[i].Ticker, d)
			}
		}
	}
}

func TestReadPricesCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"header only", "ticker,sector,subsector,d0\n"},
		{"bad header", "a,b,c,d\nX,S,SS,1\n"},
		{"short header", "ticker,sector\nX,S\n"},
		{"non-numeric", "ticker,sector,subsector,d0\nX,S,SS,abc\n"},
		{"nonpositive price", "ticker,sector,subsector,d0,d1\nX,S,SS,1,0\n"},
	}
	for _, c := range cases {
		if _, err := ReadPricesCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	// Minimal valid file.
	ok := "ticker,sector,subsector,d0,d1\nX,S,SS,10,11\n"
	u, err := ReadPricesCSV(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if u.Series[0].Prices[1] != 11 {
		t.Errorf("parsed prices = %v", u.Series[0].Prices)
	}
}
