package timeseries

import (
	"fmt"
	"math/rand"
)

// SectorSpec describes one industrial sector of the synthetic
// universe: its code/name and the number of sub-sectors it splits
// into, mirroring the taxonomy of Chapter 5.
type SectorSpec struct {
	Code       string
	Name       string
	SubSectors int
}

// DefaultTaxonomy mirrors the paper's 12 industrial sectors and 104
// sub-sectors (§5: "The total number of sub-sectors over the entire
// sectors is 104", Technology alone has 11).
func DefaultTaxonomy() []SectorSpec {
	return []SectorSpec{
		{"BM", "Basic Materials", 8},
		{"CG", "Capital Goods", 9},
		{"C", "Conglomerates", 3},
		{"CC", "Consumer Cyclical", 11},
		{"CN", "Consumer Noncyclical", 8},
		{"E", "Energy", 6},
		{"F", "Financial", 10},
		{"H", "Healthcare", 8},
		{"SV", "Services", 14},
		{"T", "Technology", 11},
		{"TP", "Transportation", 6},
		{"U", "Utilities", 10},
	}
}

// selectedTickers gives each sector's first series the real ticker
// used in Tables 5.1/5.2 of the paper, so the regenerated tables read
// like the originals.
var selectedTickers = map[string]string{
	"BM": "EMN", "CG": "HON", "CC": "GT", "CN": "PG", "E": "XOM",
	"F": "AIG", "H": "JNJ", "SV": "JCP", "T": "INTC", "TP": "FDX", "U": "TE",
}

// GenConfig parameterizes the synthetic universe generator.
type GenConfig struct {
	NumSeries int   // total series (paper: 346)
	NumDays   int   // trading days of closes (paper: ~3770)
	Seed      int64 // PRNG seed; same seed => identical universe

	// Factor-model volatilities (standard deviations of daily
	// returns). Idiosyncratic noise competes with the shared
	// factors; the ratio controls how strongly same-sector series
	// co-move and therefore how many hyperedges survive
	// gamma-significance.
	MarketVol    float64
	SectorVol    float64
	SubSectorVol float64
	IdioVol      float64

	// Taxonomy defaults to DefaultTaxonomy().
	Taxonomy []SectorSpec
}

// DefaultGenConfig returns the configuration used by the experiment
// harness: a mid-size universe that reproduces the paper's shape in
// seconds rather than hours.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		NumSeries:    120,
		NumDays:      2200,
		Seed:         42,
		MarketVol:    0.008,
		SectorVol:    0.009,
		SubSectorVol: 0.006,
		IdioVol:      0.010,
	}
}

// PaperScaleGenConfig returns the full 346-series, ~15-year
// configuration matching the thesis dataset dimensions.
func PaperScaleGenConfig() GenConfig {
	c := DefaultGenConfig()
	c.NumSeries = 346
	c.NumDays = 3770
	return c
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Taxonomy == nil {
		c.Taxonomy = DefaultTaxonomy()
	}
	if c.MarketVol == 0 && c.SectorVol == 0 && c.SubSectorVol == 0 && c.IdioVol == 0 {
		d := DefaultGenConfig()
		c.MarketVol, c.SectorVol, c.SubSectorVol, c.IdioVol = d.MarketVol, d.SectorVol, d.SubSectorVol, d.IdioVol
	}
	return c
}

// Generate builds a deterministic synthetic universe. Series are
// assigned to sectors round-robin proportionally to each sector's
// sub-sector count, then to sub-sectors round-robin within the sector.
//
// Daily return of series i in sector s, sub-sector b:
//
//	r_i(t) = m(t) + f_s(t) + g_b(t) + e_i(t)
//
// with m, f, g, e independent zero-mean gaussians of the configured
// volatilities. Prices follow p(t+1) = p(t) * (1 + r(t)) clamped away
// from zero.
func Generate(cfg GenConfig) (*Universe, error) {
	cfg = cfg.withDefaults()
	if cfg.NumSeries < 1 {
		return nil, fmt.Errorf("timeseries: NumSeries=%d", cfg.NumSeries)
	}
	if cfg.NumDays < 3 {
		return nil, fmt.Errorf("timeseries: NumDays=%d too small", cfg.NumDays)
	}
	if len(cfg.Taxonomy) == 0 {
		return nil, fmt.Errorf("timeseries: empty taxonomy")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	totalSub := 0
	for _, s := range cfg.Taxonomy {
		if s.SubSectors < 1 {
			return nil, fmt.Errorf("timeseries: sector %s has %d sub-sectors", s.Code, s.SubSectors)
		}
		totalSub += s.SubSectors
	}

	// Allocate series to sectors proportionally to sub-sector count,
	// at least one per sector when possible.
	alloc := make([]int, len(cfg.Taxonomy))
	assigned := 0
	for i, s := range cfg.Taxonomy {
		alloc[i] = cfg.NumSeries * s.SubSectors / totalSub
		assigned += alloc[i]
	}
	for i := 0; assigned < cfg.NumSeries; i = (i + 1) % len(alloc) {
		alloc[i]++
		assigned++
	}

	u := &Universe{}
	type subKey struct{ sector, sub int }
	subIndex := map[subKey]int{}
	numSubs := 0
	var sectorOf, subOf []int
	for si, spec := range cfg.Taxonomy {
		for j := 0; j < alloc[si]; j++ {
			sub := j % spec.SubSectors
			key := subKey{si, sub}
			if _, ok := subIndex[key]; !ok {
				subIndex[key] = numSubs
				numSubs++
			}
			ticker := fmt.Sprintf("%s%02d", spec.Code, j)
			if j == 0 {
				if real, ok := selectedTickers[spec.Code]; ok {
					ticker = real
				}
			}
			u.Series = append(u.Series, Series{
				Ticker:    ticker,
				Sector:    spec.Code,
				SubSector: fmt.Sprintf("%s-sub%02d", spec.Code, sub),
			})
			sectorOf = append(sectorOf, si)
			subOf = append(subOf, subIndex[key])
		}
	}

	n := len(u.Series)
	prices := make([][]float64, n)
	for i := range prices {
		prices[i] = make([]float64, cfg.NumDays)
		prices[i][0] = 20 + 80*rng.Float64()
	}
	sectorShock := make([]float64, len(cfg.Taxonomy))
	subShock := make([]float64, numSubs)
	for t := 1; t < cfg.NumDays; t++ {
		market := rng.NormFloat64() * cfg.MarketVol
		for s := range sectorShock {
			sectorShock[s] = rng.NormFloat64() * cfg.SectorVol
		}
		for s := range subShock {
			subShock[s] = rng.NormFloat64() * cfg.SubSectorVol
		}
		for i := 0; i < n; i++ {
			r := market + sectorShock[sectorOf[i]] + subShock[subOf[i]] + rng.NormFloat64()*cfg.IdioVol
			p := prices[i][t-1] * (1 + r)
			if p < 0.01 {
				p = 0.01
			}
			prices[i][t] = p
		}
	}
	for i := range u.Series {
		u.Series[i].Prices = prices[i]
	}
	return u, nil
}
