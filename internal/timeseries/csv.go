package timeseries

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WritePricesCSV emits the universe as one row per series: ticker,
// sector, sub-sector, then the daily closes. cmd/genspx uses this
// format, and ReadPricesCSV parses it back.
func (u *Universe) WritePricesCSV(w io.Writer) error {
	if err := u.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{"ticker", "sector", "subsector"}
	for d := 0; d < u.Days(); d++ {
		header = append(header, "d"+strconv.Itoa(d))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range u.Series {
		rec := make([]string, 0, 3+len(s.Prices))
		rec = append(rec, s.Ticker, s.Sector, s.SubSector)
		for _, p := range s.Prices {
			rec = append(rec, strconv.FormatFloat(p, 'f', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPricesCSV parses a universe written by WritePricesCSV (or any
// CSV with a ticker,sector,subsector header followed by numeric close
// columns). All series must have the same number of days.
func ReadPricesCSV(r io.Reader) (*Universe, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("timeseries: csv: %w", err)
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("timeseries: csv: need a header and at least one series")
	}
	header := recs[0]
	if len(header) < 4 || header[0] != "ticker" {
		return nil, fmt.Errorf("timeseries: csv: unexpected header %v", header[:min(len(header), 4)])
	}
	days := len(header) - 3
	u := &Universe{}
	for i, rec := range recs[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("timeseries: csv row %d: %d fields, want %d", i+1, len(rec), len(header))
		}
		s := Series{Ticker: rec[0], Sector: rec[1], SubSector: rec[2], Prices: make([]float64, days)}
		for d := 0; d < days; d++ {
			p, err := strconv.ParseFloat(rec[3+d], 64)
			if err != nil {
				return nil, fmt.Errorf("timeseries: csv row %d day %d: %w", i+1, d, err)
			}
			s.Prices[d] = p
		}
		u.Series = append(u.Series, s)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
