// Package timeseries provides the financial time-series substrate of
// Chapter 5: price series, delta series, the k-threshold equi-depth
// discretization of §5.1.1, and a synthetic S&P-500-style universe
// generator that substitutes for the paper's Yahoo Finance data.
//
// Substitution note (see DESIGN.md): the paper's pipeline consumes only
// the fractional day-over-day changes and their cross-correlation
// structure. The generator produces returns from a market + sector +
// sub-sector factor model, which yields the same qualitative structure
// the evaluation measures: same-sector series co-move, so high-ACV
// hyperedges concentrate within sectors, dominators are small, and
// clusters align with the sector taxonomy.
package timeseries

import (
	"errors"
	"fmt"

	"hypermine/internal/table"
)

// Series is one financial time-series: a ticker with sector metadata
// and a daily closing price history.
type Series struct {
	Ticker    string
	Sector    string
	SubSector string
	Prices    []float64
}

// Delta returns the delta time-series of §5.1.1: entry i is the
// fractional change of close i+1 relative to close i. The result has
// len(prices)-1 entries.
func Delta(prices []float64) ([]float64, error) {
	if len(prices) < 2 {
		return nil, errors.New("timeseries: need at least two prices")
	}
	out := make([]float64, len(prices)-1)
	for i := 0; i+1 < len(prices); i++ {
		if prices[i] == 0 {
			return nil, fmt.Errorf("timeseries: zero price at day %d", i)
		}
		out[i] = (prices[i+1] - prices[i]) / prices[i]
	}
	return out, nil
}

// Universe is a collection of aligned series (same number of trading
// days each).
type Universe struct {
	Series []Series
}

// Tickers returns all tickers in order.
func (u *Universe) Tickers() []string {
	out := make([]string, len(u.Series))
	for i, s := range u.Series {
		out[i] = s.Ticker
	}
	return out
}

// SectorOf returns the sector of a ticker, or "".
func (u *Universe) SectorOf(ticker string) string {
	for _, s := range u.Series {
		if s.Ticker == ticker {
			return s.Sector
		}
	}
	return ""
}

// Days returns the number of trading days (0 for an empty universe).
func (u *Universe) Days() int {
	if len(u.Series) == 0 {
		return 0
	}
	return len(u.Series[0].Prices)
}

// Validate checks alignment and positivity of prices.
func (u *Universe) Validate() error {
	if len(u.Series) == 0 {
		return errors.New("timeseries: empty universe")
	}
	n := len(u.Series[0].Prices)
	for _, s := range u.Series {
		if s.Ticker == "" {
			return errors.New("timeseries: empty ticker")
		}
		if len(s.Prices) != n {
			return fmt.Errorf("timeseries: %s has %d days, want %d", s.Ticker, len(s.Prices), n)
		}
		for i, p := range s.Prices {
			if p <= 0 {
				return fmt.Errorf("timeseries: %s day %d: nonpositive price %v", s.Ticker, i, p)
			}
		}
	}
	return nil
}

// DeltaMatrix computes the delta series for every series, column j
// corresponding to u.Series[j].
func (u *Universe) DeltaMatrix() ([][]float64, error) {
	out := make([][]float64, len(u.Series))
	for j, s := range u.Series {
		d, err := Delta(s.Prices)
		if err != nil {
			return nil, fmt.Errorf("timeseries: %s: %w", s.Ticker, err)
		}
		out[j] = d
	}
	return out, nil
}

// Discretization carries the per-series fitted k-threshold vectors so
// that later windows (out-sample data) can be discretized with
// in-sample thresholds, as §5.5 requires.
type Discretization struct {
	K          int
	Tickers    []string
	Thresholds [][]float64 // per series, length K-1
}

// BuildTable runs the full §5.1.1 pipeline on the universe: delta
// series, per-series k-threshold vectors, equi-depth mapping onto
// {1..k}. It returns the database D(A, O, V) plus the fitted
// discretization.
func (u *Universe) BuildTable(k int) (*table.Table, *Discretization, error) {
	if err := u.Validate(); err != nil {
		return nil, nil, err
	}
	deltas, err := u.DeltaMatrix()
	if err != nil {
		return nil, nil, err
	}
	d := table.EquiDepth{Bins: k}
	disc := &Discretization{K: k, Tickers: u.Tickers(), Thresholds: make([][]float64, len(deltas))}
	cols := make([][]table.Value, len(deltas))
	for j, col := range deltas {
		th, err := d.Thresholds(col)
		if err != nil {
			return nil, nil, fmt.Errorf("timeseries: %s: %w", u.Series[j].Ticker, err)
		}
		disc.Thresholds[j] = th
		cols[j] = table.ApplyThresholds(col, th)
	}
	tb, err := table.FromColumns(disc.Tickers, k, cols)
	if err != nil {
		return nil, nil, err
	}
	return tb, disc, nil
}

// Apply discretizes a (possibly different) aligned universe with the
// already-fitted thresholds. Series are matched by position and must
// carry the same tickers.
func (d *Discretization) Apply(u *Universe) (*table.Table, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if len(u.Series) != len(d.Tickers) {
		return nil, fmt.Errorf("timeseries: %d series, want %d", len(u.Series), len(d.Tickers))
	}
	deltas, err := u.DeltaMatrix()
	if err != nil {
		return nil, err
	}
	cols := make([][]table.Value, len(deltas))
	for j, col := range deltas {
		if u.Series[j].Ticker != d.Tickers[j] {
			return nil, fmt.Errorf("timeseries: series %d is %s, want %s", j, u.Series[j].Ticker, d.Tickers[j])
		}
		cols[j] = table.ApplyThresholds(col, d.Thresholds[j])
	}
	return table.FromColumns(d.Tickers, d.K, cols)
}

// Window returns a new universe restricted to price days [lo, hi).
func (u *Universe) Window(lo, hi int) (*Universe, error) {
	if lo < 0 || hi > u.Days() || hi-lo < 2 {
		return nil, fmt.Errorf("timeseries: bad window [%d,%d) of %d days", lo, hi, u.Days())
	}
	out := &Universe{Series: make([]Series, len(u.Series))}
	for i, s := range u.Series {
		out.Series[i] = Series{
			Ticker:    s.Ticker,
			Sector:    s.Sector,
			SubSector: s.SubSector,
			Prices:    append([]float64(nil), s.Prices[lo:hi]...),
		}
	}
	return out, nil
}
