package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickEnv is shared across tests (model builds are the expensive part).
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	e, err := NewEnv(QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	sharedEnv = e
	return e
}

func TestNewEnvValidation(t *testing.T) {
	p := QuickParams()
	p.SplitFrac = 0
	if _, err := NewEnv(p); err == nil {
		t.Error("want error for SplitFrac=0")
	}
	p = QuickParams()
	p.SplitFrac = 0.999
	if _, err := NewEnv(p); err == nil {
		t.Error("want error for split leaving too few days")
	}
}

func TestBuiltLazyAndCached(t *testing.T) {
	e := env(t)
	b1, err := e.Built("C1")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := e.Built("C1")
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("Built should cache")
	}
	if _, err := e.Built("C9"); err == nil {
		t.Error("want error for unknown config")
	}
	if b1.InTable.K() != 3 || b1.OutTable.K() != 3 {
		t.Error("C1 should be k=3")
	}
	if b1.InTable.NumAttrs() != len(e.U.Series) {
		t.Error("table width mismatch")
	}
}

func TestRunCounts(t *testing.T) {
	rep, err := RunCounts(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.DirectedEdges == 0 {
			t.Errorf("%s: no directed edges survived", row.Config)
		}
		if row.MeanACVEdges <= 0 || row.MeanACVEdges > 1 {
			t.Errorf("%s: mean ACV %v", row.Config, row.MeanACVEdges)
		}
	}
	// Shape check from §5.1.2: k=5 (C2) mean ACV is lower than k=3 (C1).
	if rep.Rows[0].MeanACVEdges <= rep.Rows[1].MeanACVEdges {
		t.Errorf("expected C1 mean ACV (%v) > C2 (%v)",
			rep.Rows[0].MeanACVEdges, rep.Rows[1].MeanACVEdges)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil || !strings.Contains(buf.String(), "C1") {
		t.Errorf("render: %v, %q", err, buf.String())
	}
}

func TestRunFig51(t *testing.T) {
	rep, err := RunFig51(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.InDegree) != len(rep.Tickers) || len(rep.OutDegree) != len(rep.Tickers) {
		t.Fatal("degree arrays mismatched")
	}
	var inSum, outSum float64
	for i := range rep.InDegree {
		if rep.InDegree[i] < 0 || rep.OutDegree[i] < 0 {
			t.Fatal("negative degree")
		}
		inSum += rep.InDegree[i]
		outSum += rep.OutDegree[i]
	}
	// Degree conservation: both sum to total edge weight.
	if inSum == 0 || outSum == 0 {
		t.Error("degenerate degree distribution")
	}
	if diff := inSum - outSum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("in/out degree sums differ: %v vs %v", inSum, outSum)
	}
	total := 0
	for _, c := range rep.TopInSectors {
		total += c
	}
	if total != rep.TopN {
		t.Errorf("top-in sector counts sum %d, want %d", total, rep.TopN)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunTables51And52(t *testing.T) {
	e := env(t)
	t51, err := RunTable51(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(t51.Rows) == 0 {
		t.Fatal("no Table 5.1 rows")
	}
	for _, row := range t51.Rows {
		if row.TopHyper != nil && row.TopEdge != nil {
			// Theorem 3.8 shape: the best 2-to-1 hyperedge cannot be
			// weaker than gamma x best directed edge pointing at the
			// same head (both were admitted).
			if row.TopHyper.ACV <= 0 {
				t.Errorf("%s/%s: nonpositive hyperedge ACV", row.Ticker, row.Config)
			}
		}
	}
	t52, err := RunTable52(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t52.Rows {
		if row.TopHyper.ACV < row.Edge1.ACV-1e-9 || row.TopHyper.ACV < row.Edge2.ACV-1e-9 {
			t.Errorf("%s/%s: hyperedge ACV %.3f below constituents %.3f/%.3f (Theorem 3.8)",
				row.Ticker, row.Config, row.TopHyper.ACV, row.Edge1.ACV, row.Edge2.ACV)
		}
	}
	var buf bytes.Buffer
	if err := t51.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := t52.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig52(t *testing.T) {
	rep, err := RunFig52(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) == 0 {
		t.Fatal("no scatter points")
	}
	for _, pt := range rep.Points {
		if pt.InSim < 0 || pt.InSim > 1 || pt.OutSim < 0 || pt.OutSim > 1 {
			t.Fatalf("similarity out of range: %+v", pt)
		}
		if pt.Euclidean < 0 || pt.Euclidean > 1 {
			t.Fatalf("euclidean out of range: %+v", pt)
		}
	}
	// The paper's Figure 5.2 point: association similarity separates
	// pairs more distinctly than Euclidean similarity. The two live
	// on different scales, so compare relative spreads.
	if rep.InCV <= rep.EuclidCV {
		t.Errorf("in-sim relative spread %.4f should exceed euclidean %.4f", rep.InCV, rep.EuclidCV)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig53(t *testing.T) {
	rep, err := RunFig53(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.T < 1 || len(rep.Clusters) != rep.T {
		t.Fatalf("t=%d clusters=%d", rep.T, len(rep.Clusters))
	}
	total := 0
	for _, c := range rep.Clusters {
		total += c.Size
	}
	if total != len(env(t).U.Series) {
		t.Errorf("cluster sizes sum %d, want %d", total, len(env(t).U.Series))
	}
	if rep.MeanDistance <= 0 || rep.MeanDistance > 1 {
		t.Errorf("mean distance %v", rep.MeanDistance)
	}
	if rep.Purity <= 0 || rep.Purity > 1 {
		t.Errorf("purity %v", rep.Purity)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunTables53And54(t *testing.T) {
	e := env(t)
	for _, alg := range []DominatorAlgorithm{Alg5, Alg6} {
		rep, err := RunDomClass(e, alg)
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		if len(rep.Rows) != 6 {
			t.Fatalf("alg %d: rows = %d, want 6", alg, len(rep.Rows))
		}
		for _, row := range rep.Rows {
			if row.DominatorSize <= 0 {
				t.Errorf("alg %d %s@%.0f%%: empty dominator", alg, row.Config, 100*row.TopFrac)
				continue
			}
			if row.PercentCovered <= 0 || row.PercentCovered > 100 {
				t.Errorf("alg %d: coverage %v", alg, row.PercentCovered)
			}
			if row.ABCInSample < 0 || row.ABCInSample > 1 || row.ABCOutSample < 0 || row.ABCOutSample > 1 {
				t.Errorf("alg %d: ABC confidence out of range: %+v", alg, row)
			}
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunFig54(t *testing.T) {
	e := env(t)
	rep, err := RunFig54(e, Alg5, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range rep.Points {
		if p.ABCInSample < 0 || p.ABCInSample > 1 || p.ABCOutSample < 0 || p.ABCOutSample > 1 {
			t.Errorf("point out of range: %+v", p)
		}
	}
	if _, err := RunFig54(e, Alg6, 1_000_000); err == nil {
		t.Error("want error for oversized yearDays")
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunExt3to1(t *testing.T) {
	rep, err := RunExt3to1(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) < 3 {
		t.Fatalf("sector slice too small: %v", rep.Series)
	}
	if rep.Edges == 0 || rep.Pairs == 0 {
		t.Error("expected edges and pairs in the sector model")
	}
	for _, row := range rep.Rows {
		// Theorem 3.8 generalized: the triple dominates the best pair
		// into the same head whenever a pair exists.
		if row.PairACV > 0 && row.TripleACV < row.PairACV-1e-9 {
			t.Errorf("triple ACV %.3f below pair %.3f for %s", row.TripleACV, row.PairACV, row.Head)
		}
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblations(t *testing.T) {
	rep, err := RunAblations(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Builder) != 5 || len(rep.Dominator) != 3 {
		t.Fatalf("rows = %d/%d", len(rep.Builder), len(rep.Dominator))
	}
	byName := map[string]int{}
	for _, row := range rep.Builder {
		byName[row.Variant] = row.Edges
	}
	// Gamma pruning shrinks the model; edges-only is the smallest.
	if byName["gamma off (k=3)"] <= byName["C1 exhaustive pairs"] {
		t.Error("gamma-off should admit more edges than C1")
	}
	if byName["C1 edges only"] >= byName["C1 exhaustive pairs"] {
		t.Error("edges-only should be smaller than the full model")
	}
	// Edge-seeded is a subset of exhaustive.
	if byName["C1 edge-seeded pairs"] > byName["C1 exhaustive pairs"] {
		t.Error("edge-seeded admitted more edges than exhaustive")
	}
	// Serial and parallel C1 agree exactly.
	if byName["C1 serial"] != byName["C1 exhaustive pairs"] {
		t.Error("serial and parallel builds disagree")
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunDomClassPaperProtocol(t *testing.T) {
	p := QuickParams()
	p.PaperProtocol = true
	e, err := NewEnv(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunDomClass(e, Alg6)
	if err != nil {
		t.Fatal(err)
	}
	sawPaperCols := false
	for _, row := range rep.Rows {
		if row.SVMPaper > 0 || row.LogisticPaper > 0 {
			sawPaperCols = true
		}
		if row.SVMPaper < 0 || row.SVMPaper > 1 || row.LogisticPaper < 0 || row.LogisticPaper > 1 {
			t.Errorf("paper-protocol accuracy out of range: %+v", row)
		}
	}
	if !sawPaperCols {
		t.Error("paper-protocol columns never populated")
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SVM(AT)") {
		t.Error("render missing paper-protocol columns")
	}
}
