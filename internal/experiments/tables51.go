package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// EdgeDesc names one directed edge or 2-to-1 hyperedge by tickers.
type EdgeDesc struct {
	Tails []string
	Head  string
	ACV   float64
}

// Table51Row is one (series, configuration) row of Table 5.1: the
// directed edge and the 2-to-1 directed hyperedge of highest ACV
// pointing at the selected series.
type Table51Row struct {
	Ticker   string
	Sector   string
	Config   string
	TopEdge  *EdgeDesc
	TopHyper *EdgeDesc
}

// Table51Report reproduces Table 5.1.
type Table51Report struct {
	Rows []Table51Row
}

// Table52Row is one row of Table 5.2: the best 2-to-1 hyperedge for a
// series together with its two constituent directed edges' ACVs
// (cached from the builder, hence available even when the edges were
// not admitted).
type Table52Row struct {
	Ticker       string
	Config       string
	TopHyper     *EdgeDesc
	Edge1, Edge2 *EdgeDesc
}

// Table52Report reproduces Table 5.2.
type Table52Report struct {
	Rows []Table52Row
}

// bestIncoming finds the highest-ACV incoming edge of each class for
// the vertex.
func bestIncoming(b *Built, v int) (edge, hyper *EdgeDesc) {
	h := b.Model.H
	var bestE, bestH float64 = -1, -1
	var bestEIdx, bestHIdx = -1, -1
	for _, ei := range h.In(v) {
		e := h.Edge(int(ei))
		switch {
		case e.IsDirectedEdge() && e.Weight > bestE:
			bestE, bestEIdx = e.Weight, int(ei)
		case e.IsTwoToOne() && e.Weight > bestH:
			bestH, bestHIdx = e.Weight, int(ei)
		}
	}
	desc := func(idx int) *EdgeDesc {
		if idx < 0 {
			return nil
		}
		e := h.Edge(idx)
		d := &EdgeDesc{Head: h.VertexName(e.Head[0]), ACV: e.Weight}
		for _, t := range e.Tail {
			d.Tails = append(d.Tails, h.VertexName(t))
		}
		return d
	}
	return desc(bestEIdx), desc(bestHIdx)
}

// RunTable51 computes Table 5.1 over the paper's selected series for
// both configurations.
func RunTable51(e *Env) (*Table51Report, error) {
	rep := &Table51Report{}
	for _, ticker := range e.SelectedSeries() {
		for _, name := range []string{"C1", "C2"} {
			b, err := e.Built(name)
			if err != nil {
				return nil, err
			}
			v := b.Model.H.Vertex(ticker)
			if v < 0 {
				continue
			}
			edge, hyper := bestIncoming(b, v)
			rep.Rows = append(rep.Rows, Table51Row{
				Ticker:   ticker,
				Sector:   e.U.SectorOf(ticker),
				Config:   name,
				TopEdge:  edge,
				TopHyper: hyper,
			})
		}
	}
	return rep, nil
}

// RunTable52 computes Table 5.2: the best 2-to-1 hyperedge per
// selected series and the ACVs of its constituent directed edges.
func RunTable52(e *Env) (*Table52Report, error) {
	rep := &Table52Report{}
	for _, ticker := range e.SelectedSeries() {
		for _, name := range []string{"C1", "C2"} {
			b, err := e.Built(name)
			if err != nil {
				return nil, err
			}
			h := b.Model.H
			v := h.Vertex(ticker)
			if v < 0 {
				continue
			}
			_, hyper := bestIncoming(b, v)
			if hyper == nil {
				continue
			}
			t1, t2 := h.Vertex(hyper.Tails[0]), h.Vertex(hyper.Tails[1])
			rep.Rows = append(rep.Rows, Table52Row{
				Ticker:   ticker,
				Config:   name,
				TopHyper: hyper,
				Edge1: &EdgeDesc{Tails: []string{hyper.Tails[0]}, Head: ticker,
					ACV: b.Model.EdgeACVAt(t1, v)},
				Edge2: &EdgeDesc{Tails: []string{hyper.Tails[1]}, Head: ticker,
					ACV: b.Model.EdgeACVAt(t2, v)},
			})
		}
	}
	return rep, nil
}

func (d *EdgeDesc) String() string {
	if d == nil {
		return "-"
	}
	s := ""
	for i, t := range d.Tails {
		if i > 0 {
			s += ","
		}
		s += t
	}
	return fmt.Sprintf("%s -> %s (%.2f)", s, d.Head, d.ACV)
}

// Render writes Table 5.1.
func (r *Table51Report) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "== Table 5.1 top directed edge and top 2-to-1 hyperedge per selected series ==")
	fmt.Fprintln(tw, "series\tsector\tconfig\ttop directed edge\ttop 2-to-1 hyperedge")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", row.Ticker, row.Sector, row.Config, row.TopEdge, row.TopHyper)
	}
	return tw.Flush()
}

// Render writes Table 5.2.
func (r *Table52Report) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "== Table 5.2 top 2-to-1 hyperedge vs constituent directed edges ==")
	fmt.Fprintln(tw, "series\tconfig\ttop 2-to-1 hyperedge\tdirected edge 1\tdirected edge 2")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", row.Ticker, row.Config, row.TopHyper, row.Edge1, row.Edge2)
	}
	return tw.Flush()
}
