package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"hypermine/internal/classify"
	"hypermine/internal/cover"
	"hypermine/internal/hypergraph"
)

// DominatorAlgorithm selects which greedy dominator computation a run
// uses: Algorithm 5 (graph dominating-set adaptation) or Algorithm 6
// (set-cover adaptation with Enhancements 1 and 2).
type DominatorAlgorithm int

// Dominator algorithm identifiers.
const (
	Alg5 DominatorAlgorithm = 5
	Alg6 DominatorAlgorithm = 6
)

// DomClassRow is one row of Table 5.3 / 5.4.
type DomClassRow struct {
	Config         string
	TopFrac        float64 // top fraction of hyperedges kept
	ACVThreshold   float64
	DominatorSize  int
	PercentCovered float64

	ABCInSample  float64
	ABCOutSample float64
	SVM          float64
	MLP          float64
	Logistic     float64

	// SVMPaper/LogisticPaper are the same baselines trained with the
	// paper's exact §5.5 protocol (AT rows as data points) instead of
	// full observations. Only populated when Params.PaperProtocol is
	// set — they are what the paper's Weka numbers correspond to.
	SVMPaper      float64
	LogisticPaper float64
}

// DomClassReport reproduces Table 5.3 (Algorithm 5) or Table 5.4
// (Algorithm 6): dominator sizes and mean classification confidences.
type DomClassReport struct {
	Algorithm DominatorAlgorithm
	Rows      []DomClassRow
}

// dominatorFor filters the hypergraph to the top fraction of edges by
// ACV and computes the dominator for all series.
func dominatorFor(h *hypergraph.H, frac float64, alg DominatorAlgorithm) (float64, *cover.Result, error) {
	th, err := h.TopFractionThreshold(frac)
	if err != nil {
		return 0, nil, err
	}
	filtered := h.FilterByWeight(th)
	all := make([]int, h.NumVertices())
	for i := range all {
		all[i] = i
	}
	var res *cover.Result
	switch alg {
	case Alg5:
		res, err = cover.DominatorGreedyDS(filtered, all, cover.Options{})
	case Alg6:
		res, err = cover.DominatorSetCover(filtered, all, cover.Options{Enhancement1: true, Enhancement2: true})
	default:
		return 0, nil, fmt.Errorf("experiments: unknown dominator algorithm %d", alg)
	}
	if err != nil {
		return 0, nil, err
	}
	return th, res, nil
}

// classifierTargets picks the evaluation targets: covered series
// outside the dominator, in vertex order.
func classifierTargets(res *cover.Result) []int {
	inDom := map[int]bool{}
	for _, v := range res.DomSet {
		inDom[v] = true
	}
	var out []int
	for v, cov := range res.Covered {
		if cov && !inDom[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// RunDomClass runs the full Table 5.3/5.4 protocol for one algorithm:
// for each configuration and each ACV-threshold choice (top 40%, 30%,
// 20% of hyperedges), compute the dominator, then measure mean
// classification confidence of the association-based classifier
// (in-sample and out-sample) and of the baseline classifiers
// (out-sample).
func RunDomClass(e *Env, alg DominatorAlgorithm) (*DomClassReport, error) {
	rep := &DomClassReport{Algorithm: alg}
	for _, name := range []string{"C1", "C2"} {
		b, err := e.Built(name)
		if err != nil {
			return nil, err
		}
		for _, frac := range []float64{0.40, 0.30, 0.20} {
			th, res, err := dominatorFor(b.Model.H, frac, alg)
			if err != nil {
				return nil, err
			}
			row := DomClassRow{
				Config:         name,
				TopFrac:        frac,
				ACVThreshold:   th,
				DominatorSize:  len(res.DomSet),
				PercentCovered: 100 * res.CoverageFraction(),
			}
			targets := classifierTargets(res)
			if len(targets) > 0 && len(res.DomSet) > 0 {
				abc, err := classify.NewABC(b.Model, res.DomSet, targets)
				if err != nil {
					return nil, err
				}
				inConf, err := abc.Evaluate(b.InTable)
				if err != nil {
					return nil, err
				}
				outConf, err := abc.Evaluate(b.OutTable)
				if err != nil {
					return nil, err
				}
				row.ABCInSample = classify.MeanConfidence(inConf)
				row.ABCOutSample = classify.MeanConfidence(outConf)

				baseTargets := targets
				if cap := e.P.BaselineTargetCap; cap > 0 && len(baseTargets) > cap {
					baseTargets = baseTargets[:cap]
				}
				row.SVM, err = classify.EvaluateBaseline(func() classify.Classifier { return &classify.SVM{} },
					b.InTable, b.OutTable, res.DomSet, baseTargets)
				if err != nil {
					return nil, err
				}
				row.MLP, err = classify.EvaluateBaseline(func() classify.Classifier { return &classify.MLP{} },
					b.InTable, b.OutTable, res.DomSet, baseTargets)
				if err != nil {
					return nil, err
				}
				row.Logistic, err = classify.EvaluateBaseline(func() classify.Classifier { return &classify.Logistic{} },
					b.InTable, b.OutTable, res.DomSet, baseTargets)
				if err != nil {
					return nil, err
				}
				if e.P.PaperProtocol {
					row.SVMPaper, err = classify.EvaluateBaselinePaperProtocol(
						func() classify.Classifier { return &classify.SVM{} },
						b.Model, b.OutTable, res.DomSet, baseTargets)
					if err != nil {
						return nil, err
					}
					row.LogisticPaper, err = classify.EvaluateBaselinePaperProtocol(
						func() classify.Classifier { return &classify.Logistic{} },
						b.Model, b.OutTable, res.DomSet, baseTargets)
					if err != nil {
						return nil, err
					}
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// RunTable53 regenerates Table 5.3 (Algorithm 5 dominators).
func RunTable53(e *Env) (*DomClassReport, error) { return RunDomClass(e, Alg5) }

// RunTable54 regenerates Table 5.4 (Algorithm 6 dominators).
func RunTable54(e *Env) (*DomClassReport, error) { return RunDomClass(e, Alg6) }

// Render writes the table in the paper's layout.
func (r *DomClassReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "== Table 5.%d dominator + mean classification confidence (Algorithm %d) ==\n",
		map[DominatorAlgorithm]int{Alg5: 3, Alg6: 4}[r.Algorithm], r.Algorithm)
	paperCols := false
	for _, row := range r.Rows {
		if row.SVMPaper != 0 || row.LogisticPaper != 0 {
			paperCols = true
			break
		}
	}
	header := "config\ttop %\tACV-thr\tdom size\t% covered\tABC in\tABC out\tSVM\tMLP\tlogistic"
	if paperCols {
		header += "\tSVM(AT)\tlogistic(AT)"
	}
	fmt.Fprintln(tw, header)
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.0f%%\t%.3f\t%d\t%.0f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f",
			row.Config, 100*row.TopFrac, row.ACVThreshold, row.DominatorSize, row.PercentCovered,
			row.ABCInSample, row.ABCOutSample, row.SVM, row.MLP, row.Logistic)
		if paperCols {
			fmt.Fprintf(tw, "\t%.3f\t%.3f", row.SVMPaper, row.LogisticPaper)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
