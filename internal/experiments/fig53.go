package experiments

import (
	"fmt"
	"io"
	"sort"

	"hypermine/internal/cluster"
	"hypermine/internal/similarity"
)

// ClusterInfo describes one cluster of Figure 5.3.
type ClusterInfo struct {
	Center         string
	Size           int
	MajoritySector string
	MajorityShare  float64
	Members        []string
}

// Fig53Report reproduces Figure 5.3 and the §5.3.2 quality numbers:
// t-clustering of all series in the similarity graph with t = number
// of sub-sectors, mean cluster diameter, overall mean distance, purity
// against the sector taxonomy, and the triangle-inequality check that
// justifies the 2-approximation.
type Fig53Report struct {
	Config             string
	T                  int
	MeanDiameter       float64
	MeanDistance       float64
	Purity             float64
	TriangleViolations int
	LargestCluster     ClusterInfo
	Clusters           []ClusterInfo
}

// RunFig53 builds the C1 similarity graph over all series and runs
// Gonzalez t-clustering. The first center comes from the sector with
// the most series (the paper picks Technology).
func RunFig53(e *Env) (*Fig53Report, error) {
	b, err := e.Built("C1")
	if err != nil {
		return nil, err
	}
	h := b.Model.H
	n := h.NumVertices()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	g, err := similarity.BuildGraph(h, all)
	if err != nil {
		return nil, err
	}

	// The paper sets t to the number of sub-sectors (104 for 346
	// series, ~3.3 series per cluster). Scaled-down universes would
	// degenerate into singletons with that rule, so cap t to keep the
	// paper's series-per-cluster ratio.
	subs := map[string]bool{}
	sectorCounts := map[string]int{}
	for _, s := range e.U.Series {
		subs[s.SubSector] = true
		sectorCounts[s.Sector]++
	}
	t := len(subs)
	if max := n * 104 / 346; t > max {
		t = max
	}
	if t < 2 {
		t = 2
	}
	if t > n {
		t = n
	}

	// First center: first series of the largest sector.
	bigSector, bigCount := "", -1
	for sec, c := range sectorCounts {
		if c > bigCount || (c == bigCount && sec < bigSector) {
			bigSector, bigCount = sec, c
		}
	}
	first := 0
	for i, s := range e.U.Series {
		if s.Sector == bigSector {
			first = i
			break
		}
	}

	cl, err := cluster.TClustering(n, t, g.Dist, first)
	if err != nil {
		return nil, err
	}
	labels := make([]string, n)
	for i, s := range e.U.Series {
		labels[i] = s.Sector
	}
	purity, err := cluster.SectorPurity(cl, labels)
	if err != nil {
		return nil, err
	}

	rep := &Fig53Report{
		Config:             "C1",
		T:                  t,
		MeanDiameter:       cl.MeanDiameter(g.Dist),
		MeanDistance:       g.MeanDistance(),
		Purity:             purity,
		TriangleViolations: g.TriangleViolations(1e-9),
	}
	for ci := range cl.Centers {
		members := cl.Members(ci)
		counts := map[string]int{}
		for _, p := range members {
			counts[labels[p]]++
		}
		maj, majC := "", 0
		for sec, c := range counts {
			if c > majC || (c == majC && sec < maj) {
				maj, majC = sec, c
			}
		}
		info := ClusterInfo{
			Center:         h.VertexName(cl.Centers[ci]),
			Size:           len(members),
			MajoritySector: maj,
			MajorityShare:  float64(majC) / float64(len(members)),
		}
		for _, p := range members {
			info.Members = append(info.Members, h.VertexName(p))
		}
		rep.Clusters = append(rep.Clusters, info)
		if info.Size > rep.LargestCluster.Size {
			rep.LargestCluster = info
		}
	}
	sort.Slice(rep.Clusters, func(i, j int) bool { return rep.Clusters[i].Size > rep.Clusters[j].Size })
	return rep, nil
}

// Render writes cluster statistics and the clusters of size > 6 (the
// paper's display cutoff).
func (r *Fig53Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "== Figure 5.3 clusters of financial time-series (%s, t=%d) ==\n", r.Config, r.T)
	fmt.Fprintf(w, "mean cluster diameter %.3f (paper: 0.83), overall mean distance %.3f (paper: 0.89)\n",
		r.MeanDiameter, r.MeanDistance)
	fmt.Fprintf(w, "sector purity %.3f, triangle violations %d\n", r.Purity, r.TriangleViolations)
	fmt.Fprintf(w, "largest cluster: center %s size %d majority %s (%.0f%%)\n",
		r.LargestCluster.Center, r.LargestCluster.Size, r.LargestCluster.MajoritySector, 100*r.LargestCluster.MajorityShare)
	for _, c := range r.Clusters {
		if c.Size <= 6 {
			continue
		}
		fmt.Fprintf(w, "  cluster @%s size=%d majority=%s(%.0f%%) members=%v\n",
			c.Center, c.Size, c.MajoritySector, 100*c.MajorityShare, c.Members)
	}
	return nil
}
