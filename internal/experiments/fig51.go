package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Fig51Report carries the weighted in-/out-degree distributions of
// Figure 5.1 plus the §5.2 sector-concentration statistics of the
// top-25 nodes.
type Fig51Report struct {
	Config    string
	Tickers   []string
	Sectors   []string
	InDegree  []float64
	OutDegree []float64

	// TopInSectors / TopOutSectors count sectors among the 25
	// highest-degree nodes (the paper: 72% of top-25 in-degree from
	// BM/E/SV; 84% of top-25 out-degree from H/SV/T).
	TopN          int
	TopInSectors  map[string]int
	TopOutSectors map[string]int
}

// RunFig51 computes the weighted degree distributions of the C1
// association hypergraph.
func RunFig51(e *Env) (*Fig51Report, error) {
	b, err := e.Built("C1")
	if err != nil {
		return nil, err
	}
	h := b.Model.H
	n := h.NumVertices()
	rep := &Fig51Report{
		Config:        "C1",
		Tickers:       h.VertexNames(),
		Sectors:       make([]string, n),
		InDegree:      make([]float64, n),
		OutDegree:     make([]float64, n),
		TopN:          25,
		TopInSectors:  map[string]int{},
		TopOutSectors: map[string]int{},
	}
	if rep.TopN > n {
		rep.TopN = n
	}
	for v := 0; v < n; v++ {
		rep.Sectors[v] = e.U.SectorOf(rep.Tickers[v])
		rep.InDegree[v] = h.WeightedInDegree(v)
		rep.OutDegree[v] = h.WeightedOutDegree(v)
	}
	for _, v := range topIndexes(rep.InDegree, rep.TopN) {
		rep.TopInSectors[rep.Sectors[v]]++
	}
	for _, v := range topIndexes(rep.OutDegree, rep.TopN) {
		rep.TopOutSectors[rep.Sectors[v]]++
	}
	return rep, nil
}

func topIndexes(vals []float64, n int) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// Render writes the distribution series and top-sector counts.
func (r *Fig51Report) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "== Figure 5.1 weighted degree distribution (%s) ==\n", r.Config)
	fmt.Fprintln(tw, "ticker\tsector\tweighted in-degree\tweighted out-degree")
	for _, v := range topIndexes(r.InDegree, len(r.InDegree)) {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\n", r.Tickers[v], r.Sectors[v], r.InDegree[v], r.OutDegree[v])
	}
	fmt.Fprintf(tw, "top-%d in-degree sector counts:\t%v\n", r.TopN, formatSectorCounts(r.TopInSectors))
	fmt.Fprintf(tw, "top-%d out-degree sector counts:\t%v\n", r.TopN, formatSectorCounts(r.TopOutSectors))
	return tw.Flush()
}

func formatSectorCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", k, m[k])
	}
	return s
}
