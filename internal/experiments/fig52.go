package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"hypermine/internal/similarity"
	"hypermine/internal/stats"
)

// SimPoint is one attribute pair in the Figure 5.2 scatter.
type SimPoint struct {
	A, B       string
	InSim      float64
	OutSim     float64
	Euclidean  float64
	SameSector bool
}

// Fig52Report compares association-based similarity against Euclidean
// similarity (§5.3.1). The paper's claim — Euclidean similarity does
// not differentiate pairs as distinctly — shows up as a much smaller
// spread (std) for Euclidean similarity than for in-/out-similarity.
type Fig52Report struct {
	Config string
	Points []SimPoint

	InStd, OutStd, EuclidStd float64
	// InCV/OutCV/EuclidCV are the scale-free spreads (std/mean); the
	// similarity families live on different scales, so the paper's
	// "differentiates more distinctly" claim is checked on these.
	InCV, OutCV, EuclidCV         float64
	InPearson, OutPearson         float64 // correlation with Euclidean
	SameSectorInMean              float64
	CrossSectorInMean             float64
	SameSectorEuclid, CrossEuclid float64
}

// RunFig52 samples attribute pairs (deterministically) and computes
// both similarity families on the C1 hypergraph / in-sample deltas.
func RunFig52(e *Env) (*Fig52Report, error) {
	b, err := e.Built("C1")
	if err != nil {
		return nil, err
	}
	deltas, err := e.InU.DeltaMatrix()
	if err != nil {
		return nil, err
	}
	h := b.Model.H
	n := h.NumVertices()
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	if cap := e.P.ScatterSampleCap; cap > 0 && len(pairs) > cap {
		rng := rand.New(rand.NewSource(1234))
		rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		pairs = pairs[:cap]
	}
	rep := &Fig52Report{Config: "C1"}
	var ins, outs, eucs []float64
	var sameIn, crossIn, sameEu, crossEu []float64
	for _, p := range pairs {
		es, err := similarity.EuclideanSim(deltas[p.i], deltas[p.j])
		if err != nil {
			return nil, err
		}
		pt := SimPoint{
			A:         h.VertexName(p.i),
			B:         h.VertexName(p.j),
			InSim:     similarity.InSim(h, p.i, p.j),
			OutSim:    similarity.OutSim(h, p.i, p.j),
			Euclidean: es,
		}
		pt.SameSector = e.U.SectorOf(pt.A) == e.U.SectorOf(pt.B)
		rep.Points = append(rep.Points, pt)
		ins = append(ins, pt.InSim)
		outs = append(outs, pt.OutSim)
		eucs = append(eucs, pt.Euclidean)
		if pt.SameSector {
			sameIn = append(sameIn, pt.InSim)
			sameEu = append(sameEu, pt.Euclidean)
		} else {
			crossIn = append(crossIn, pt.InSim)
			crossEu = append(crossEu, pt.Euclidean)
		}
	}
	if s, err := stats.Summarize(ins); err == nil {
		rep.InStd = s.Std
		if s.Mean != 0 {
			rep.InCV = s.Std / s.Mean
		}
	}
	if s, err := stats.Summarize(outs); err == nil {
		rep.OutStd = s.Std
		if s.Mean != 0 {
			rep.OutCV = s.Std / s.Mean
		}
	}
	if s, err := stats.Summarize(eucs); err == nil {
		rep.EuclidStd = s.Std
		if s.Mean != 0 {
			rep.EuclidCV = s.Std / s.Mean
		}
	}
	if r, err := stats.Pearson(ins, eucs); err == nil {
		rep.InPearson = r
	}
	if r, err := stats.Pearson(outs, eucs); err == nil {
		rep.OutPearson = r
	}
	if s, err := stats.Summarize(sameIn); err == nil {
		rep.SameSectorInMean = s.Mean
	}
	if s, err := stats.Summarize(crossIn); err == nil {
		rep.CrossSectorInMean = s.Mean
	}
	if s, err := stats.Summarize(sameEu); err == nil {
		rep.SameSectorEuclid = s.Mean
	}
	if s, err := stats.Summarize(crossEu); err == nil {
		rep.CrossEuclid = s.Mean
	}
	return rep, nil
}

// Render writes the scatter summary (the full point list is available
// programmatically; rendering prints aggregates plus a sample).
func (r *Fig52Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "== Figure 5.2 association similarity vs Euclidean similarity (%s, %d pairs) ==\n", r.Config, len(r.Points))
	fmt.Fprintf(w, "spread (std): in-sim %.4f  out-sim %.4f  euclidean %.4f\n", r.InStd, r.OutStd, r.EuclidStd)
	fmt.Fprintf(w, "relative spread (std/mean): in-sim %.3f  out-sim %.3f  euclidean %.3f\n", r.InCV, r.OutCV, r.EuclidCV)
	fmt.Fprintf(w, "pearson vs euclidean: in-sim %.3f  out-sim %.3f\n", r.InPearson, r.OutPearson)
	fmt.Fprintf(w, "in-sim mean: same-sector %.4f vs cross-sector %.4f\n", r.SameSectorInMean, r.CrossSectorInMean)
	fmt.Fprintf(w, "euclidean mean: same-sector %.4f vs cross-sector %.4f\n", r.SameSectorEuclid, r.CrossEuclid)
	max := 10
	if len(r.Points) < max {
		max = len(r.Points)
	}
	for _, pt := range r.Points[:max] {
		fmt.Fprintf(w, "  %s-%s in=%.3f out=%.3f euclid=%.3f same-sector=%v\n",
			pt.A, pt.B, pt.InSim, pt.OutSim, pt.Euclidean, pt.SameSector)
	}
	return nil
}
