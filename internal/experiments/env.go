// Package experiments regenerates every table and figure of the
// paper's evaluation chapter (Chapter 5) on the synthetic S&P-style
// universe. Each experiment has a Run function returning a typed
// report with a Render method; cmd/experiments and the repository's
// benchmarks drive them. The per-experiment index lives in DESIGN.md.
package experiments

import (
	"errors"
	"fmt"

	"hypermine/internal/core"
	"hypermine/internal/table"
	"hypermine/internal/timeseries"
)

// Params bundles everything an experiment run needs.
type Params struct {
	// Gen configures the synthetic universe.
	Gen timeseries.GenConfig
	// SplitFrac is the in-sample fraction of trading days; the rest
	// is the out-sample window (§5.5: train on 1996–2008, test 2009).
	SplitFrac float64
	// BaselineTargetCap bounds how many target series the baseline
	// classifiers (SVM/MLP/logistic) are trained for; they are far
	// slower than the association-based classifier. 0 = no cap.
	BaselineTargetCap int
	// ScatterSampleCap bounds the number of attribute pairs plotted
	// in Figure 5.2. 0 = all pairs.
	ScatterSampleCap int
	// PaperProtocol additionally evaluates the SVM and logistic
	// baselines under the paper's exact §5.5 training protocol
	// (association-table rows as data points) in Tables 5.3/5.4.
	PaperProtocol bool
}

// DefaultParams is the mid-size configuration used by
// cmd/experiments: large enough to show the paper's shape, small
// enough to run in minutes.
func DefaultParams() Params {
	return Params{
		Gen:               timeseries.DefaultGenConfig(),
		SplitFrac:         0.85,
		BaselineTargetCap: 30,
		ScatterSampleCap:  2000,
	}
}

// QuickParams is a reduced configuration for tests and benchmarks.
func QuickParams() Params {
	gen := timeseries.DefaultGenConfig()
	gen.NumSeries = 36
	gen.NumDays = 500
	return Params{
		Gen:               gen,
		SplitFrac:         0.8,
		BaselineTargetCap: 8,
		ScatterSampleCap:  300,
	}
}

// Built is one fully constructed configuration: the discretized
// in-/out-sample tables and the association hypergraph model mined
// from the in-sample window.
type Built struct {
	Name     string
	Cfg      core.Config
	Model    *core.Model
	InTable  *table.Table
	OutTable *table.Table
	Disc     *timeseries.Discretization
}

// Env generates the universe once and lazily builds each named
// configuration, so several experiments can share the expensive model
// builds.
type Env struct {
	P          Params
	U          *timeseries.Universe
	InU, OutU  *timeseries.Universe
	built      map[string]*Built
	ConfigDefs map[string]core.Config
}

// NewEnv generates the synthetic universe and splits it into in- and
// out-sample windows.
func NewEnv(p Params) (*Env, error) {
	if p.SplitFrac <= 0 || p.SplitFrac >= 1 {
		return nil, fmt.Errorf("experiments: SplitFrac %v outside (0,1)", p.SplitFrac)
	}
	u, err := timeseries.Generate(p.Gen)
	if err != nil {
		return nil, err
	}
	cut := int(float64(u.Days()) * p.SplitFrac)
	if cut < 3 || u.Days()-cut < 3 {
		return nil, errors.New("experiments: split leaves too few days on one side")
	}
	inU, err := u.Window(0, cut)
	if err != nil {
		return nil, err
	}
	outU, err := u.Window(cut, u.Days())
	if err != nil {
		return nil, err
	}
	return &Env{
		P:     p,
		U:     u,
		InU:   inU,
		OutU:  outU,
		built: map[string]*Built{},
		ConfigDefs: map[string]core.Config{
			"C1": core.C1(),
			"C2": core.C2(),
		},
	}, nil
}

// Built returns (building on first use) the named configuration.
func (e *Env) Built(name string) (*Built, error) {
	if b, ok := e.built[name]; ok {
		return b, nil
	}
	cfg, ok := e.ConfigDefs[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown configuration %q", name)
	}
	b, err := e.buildWith(name, cfg)
	if err != nil {
		return nil, err
	}
	e.built[name] = b
	return b, nil
}

func (e *Env) buildWith(name string, cfg core.Config) (*Built, error) {
	inTb, disc, err := e.InU.BuildTable(cfg.K)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s in-sample table: %w", name, err)
	}
	outTb, err := disc.Apply(e.OutU)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s out-sample table: %w", name, err)
	}
	model, err := core.Build(inTb, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s model: %w", name, err)
	}
	return &Built{Name: name, Cfg: cfg, Model: model, InTable: inTb, OutTable: outTb, Disc: disc}, nil
}

// SelectedSeries returns the paper's Table 5.1/5.2 ticker selection —
// one series per sector — restricted to tickers present in the
// universe, in the paper's row order.
func (e *Env) SelectedSeries() []string {
	order := []string{"EMN", "HON", "GT", "PG", "XOM", "AIG", "JNJ", "JCP", "INTC", "FDX", "TE"}
	var out []string
	for _, t := range order {
		if e.U.SectorOf(t) != "" {
			out = append(out, t)
		}
	}
	return out
}
