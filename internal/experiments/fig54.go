package experiments

import (
	"fmt"
	"io"

	"hypermine/internal/classify"
	"hypermine/internal/core"
)

// Fig54Point is one training-window measurement of Figure 5.4: the
// model is rebuilt on a growing in-sample window and evaluated on the
// following year.
type Fig54Point struct {
	TrainDays    int
	TestDays     int
	ABCInSample  float64
	ABCOutSample float64
}

// Fig54Report reproduces Figure 5.4(a)/(b): classification-confidence
// distribution over incrementally grown training windows, for the
// dominator produced by Algorithm 5 (a) and Algorithm 6 (b).
type Fig54Report struct {
	Config    string
	Algorithm DominatorAlgorithm
	YearDays  int
	Points    []Fig54Point
}

// RunFig54 grows the training window one "year" (yearDays trading
// days) at a time, mirrors §5.5.1: train on [0, y), test on the next
// year. The dominator is recomputed per window with the top-40%
// ACV-threshold, like the paper's 0.45 threshold choice.
func RunFig54(e *Env, alg DominatorAlgorithm, yearDays int) (*Fig54Report, error) {
	if yearDays <= 0 {
		yearDays = 250
	}
	cfg := core.C1()
	rep := &Fig54Report{Config: "C1", Algorithm: alg, YearDays: yearDays}
	days := e.U.Days()
	for trainEnd := 2 * yearDays; trainEnd+yearDays <= days; trainEnd += yearDays {
		trainU, err := e.U.Window(0, trainEnd)
		if err != nil {
			return nil, err
		}
		testU, err := e.U.Window(trainEnd, trainEnd+yearDays)
		if err != nil {
			return nil, err
		}
		trainTb, disc, err := trainU.BuildTable(cfg.K)
		if err != nil {
			return nil, err
		}
		testTb, err := disc.Apply(testU)
		if err != nil {
			return nil, err
		}
		model, err := core.Build(trainTb, cfg)
		if err != nil {
			return nil, err
		}
		_, res, err := dominatorFor(model.H, 0.40, alg)
		if err != nil {
			return nil, err
		}
		targets := classifierTargets(res)
		pt := Fig54Point{TrainDays: trainTb.NumRows(), TestDays: testTb.NumRows()}
		if len(targets) > 0 && len(res.DomSet) > 0 {
			abc, err := classify.NewABC(model, res.DomSet, targets)
			if err != nil {
				return nil, err
			}
			inConf, err := abc.Evaluate(trainTb)
			if err != nil {
				return nil, err
			}
			outConf, err := abc.Evaluate(testTb)
			if err != nil {
				return nil, err
			}
			pt.ABCInSample = classify.MeanConfidence(inConf)
			pt.ABCOutSample = classify.MeanConfidence(outConf)
		}
		rep.Points = append(rep.Points, pt)
	}
	if len(rep.Points) == 0 {
		return nil, fmt.Errorf("experiments: universe too short for fig 5.4 (days=%d, yearDays=%d)", days, yearDays)
	}
	return rep, nil
}

// Render writes the per-window series.
func (r *Fig54Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "== Figure 5.4 classification confidence by training window (%s, Algorithm %d) ==\n", r.Config, r.Algorithm)
	fmt.Fprintln(w, "train days | test days | ABC in-sample | ABC out-sample")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%10d | %9d | %12.3f | %13.3f\n", p.TrainDays, p.TestDays, p.ABCInSample, p.ABCOutSample)
	}
	return nil
}
