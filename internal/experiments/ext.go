package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hypermine/internal/core"
	"hypermine/internal/cover"
)

// Ext3to1Report showcases the thesis's future-work generalization: the
// builder run with MaxTailSize = 3 on one sector's series, comparing
// how much ACV the extra tail attribute buys over the best 2-to-1
// hyperedge per head.
type Ext3to1Report struct {
	Sector  string
	Series  []string
	Edges   int
	Pairs   int
	Triples int
	// Per head with at least one admitted triple: the best 3-to-1
	// ACV, the best 2-to-1 ACV, and the gain.
	Rows []Ext3to1Row
}

// Ext3to1Row compares the strongest 3-to-1 and 2-to-1 hyperedges into
// one head.
type Ext3to1Row struct {
	Head       string
	TripleTail []string
	TripleACV  float64
	PairACV    float64
}

// RunExt3to1 builds a C1-style model with triples enabled over the
// series of the largest sector (keeping the instance small enough for
// exhaustive pair mining plus seeded triple mining).
func RunExt3to1(e *Env) (*Ext3to1Report, error) {
	// Largest sector by series count.
	counts := map[string]int{}
	for _, s := range e.U.Series {
		counts[s.Sector]++
	}
	sector, best := "", -1
	for sec, c := range counts {
		if c > best || (c == best && sec < sector) {
			sector, best = sec, c
		}
	}
	var tickers []string
	for _, s := range e.U.Series {
		if s.Sector == sector {
			tickers = append(tickers, s.Ticker)
		}
	}
	inTb, _, err := e.InU.BuildTable(3)
	if err != nil {
		return nil, err
	}
	sub, err := inTb.SelectAttrs(tickers)
	if err != nil {
		return nil, err
	}
	cfg := core.C1()
	cfg.MaxTailSize = 3
	cfg.GammaTriple = 1.02
	model, err := core.Build(sub, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Ext3to1Report{Sector: sector, Series: tickers}
	bestPair := map[int]float64{}
	type bestT struct {
		acv  float64
		tail []int
	}
	bestTriple := map[int]bestT{}
	for _, ed := range model.H.Edges() {
		switch len(ed.Tail) {
		case 1:
			rep.Edges++
		case 2:
			rep.Pairs++
			if ed.Weight > bestPair[ed.Head[0]] {
				bestPair[ed.Head[0]] = ed.Weight
			}
		case 3:
			rep.Triples++
			if ed.Weight > bestTriple[ed.Head[0]].acv {
				bestTriple[ed.Head[0]] = bestT{ed.Weight, ed.Tail}
			}
		}
	}
	heads := make([]int, 0, len(bestTriple))
	for h := range bestTriple {
		heads = append(heads, h)
	}
	sort.Ints(heads)
	for _, h := range heads {
		bt := bestTriple[h]
		row := Ext3to1Row{Head: sub.AttrName(h), TripleACV: bt.acv, PairACV: bestPair[h]}
		for _, t := range bt.tail {
			row.TripleTail = append(row.TripleTail, sub.AttrName(t))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Render writes the extension summary.
func (r *Ext3to1Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "== Extension: 3-to-1 hyperedges on sector %s (%d series) ==\n", r.Sector, len(r.Series))
	fmt.Fprintf(w, "admitted: %d directed edges, %d 2-to-1, %d 3-to-1\n", r.Edges, r.Pairs, r.Triples)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %v -> %s  ACV %.3f (best 2-to-1: %.3f, gain %+.3f)\n",
			row.TripleTail, row.Head, row.TripleACV, row.PairACV, row.TripleACV-row.PairACV)
	}
	return nil
}

// AblationReport quantifies the design choices of DESIGN.md §5 on the
// shared environment: model size and build time under each builder
// variant, and dominator size/time per algorithm variant.
type AblationReport struct {
	Builder   []AblationBuildRow
	Dominator []AblationDomRow
}

// AblationBuildRow is one builder variant measurement.
type AblationBuildRow struct {
	Variant string
	Edges   int
	Elapsed time.Duration
}

// AblationDomRow is one dominator variant measurement.
type AblationDomRow struct {
	Variant  string
	Size     int
	Coverage float64
	Elapsed  time.Duration
}

// RunAblations measures the builder and dominator variants.
func RunAblations(e *Env) (*AblationReport, error) {
	b, err := e.Built("C1")
	if err != nil {
		return nil, err
	}
	rep := &AblationReport{}
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"C1 exhaustive pairs", core.C1()},
		{"C1 edge-seeded pairs", func() core.Config { c := core.C1(); c.Candidates = core.EdgeSeeded; return c }()},
		{"C1 edges only", func() core.Config { c := core.C1(); c.MaxTailSize = 1; return c }()},
		{"gamma off (k=3)", core.Config{K: 3, GammaEdge: 1, GammaPair: 1}},
		{"C1 serial", func() core.Config { c := core.C1(); c.Parallelism = 1; return c }()},
	}
	for _, v := range variants {
		start := time.Now()
		m, err := core.Build(b.InTable, v.cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		rep.Builder = append(rep.Builder, AblationBuildRow{
			Variant: v.name,
			Edges:   m.H.NumEdges(),
			Elapsed: time.Since(start),
		})
	}
	all := make([]int, b.Model.H.NumVertices())
	for i := range all {
		all[i] = i
	}
	domVariants := []struct {
		name string
		run  func() (*cover.Result, error)
	}{
		{"Algorithm 5", func() (*cover.Result, error) {
			return cover.DominatorGreedyDS(b.Model.H, all, cover.Options{})
		}},
		{"Algorithm 6 plain", func() (*cover.Result, error) {
			return cover.DominatorSetCover(b.Model.H, all, cover.Options{})
		}},
		{"Algorithm 6 + Enh 1+2", func() (*cover.Result, error) {
			return cover.DominatorSetCover(b.Model.H, all, cover.Options{Enhancement1: true, Enhancement2: true})
		}},
	}
	for _, v := range domVariants {
		start := time.Now()
		res, err := v.run()
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		rep.Dominator = append(rep.Dominator, AblationDomRow{
			Variant:  v.name,
			Size:     len(res.DomSet),
			Coverage: res.CoverageFraction(),
			Elapsed:  time.Since(start),
		})
	}
	return rep, nil
}

// Render writes both ablation tables.
func (r *AblationReport) Render(w io.Writer) error {
	fmt.Fprintln(w, "== Ablations (DESIGN.md §5) ==")
	fmt.Fprintln(w, "builder variant              edges     time")
	for _, row := range r.Builder {
		fmt.Fprintf(w, "  %-26s %7d  %v\n", row.Variant, row.Edges, row.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintln(w, "dominator variant            size  coverage  time")
	for _, row := range r.Dominator {
		fmt.Fprintf(w, "  %-26s %4d  %7.0f%%  %v\n", row.Variant, row.Size, 100*row.Coverage, row.Elapsed.Round(time.Millisecond))
	}
	return nil
}
