package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// CountsRow is one line of the §5.1.2 model summary.
type CountsRow struct {
	Config          string
	DirectedEdges   int
	MeanACVEdges    float64
	TwoToOne        int
	MeanACVTwoToOne float64
}

// CountsReport reproduces the §5.1.2 headline numbers (edge and
// hyperedge populations and their mean ACVs for C1 and C2).
type CountsReport struct {
	Rows []CountsRow
}

// RunCounts builds C1 and C2 and summarizes their edge populations.
func RunCounts(e *Env) (*CountsReport, error) {
	rep := &CountsReport{}
	for _, name := range []string{"C1", "C2"} {
		b, err := e.Built(name)
		if err != nil {
			return nil, err
		}
		st := b.Model.H.EdgeStats()
		rep.Rows = append(rep.Rows, CountsRow{
			Config:          name,
			DirectedEdges:   st.DirectedEdges,
			MeanACVEdges:    st.MeanACVEdges,
			TwoToOne:        st.TwoToOne,
			MeanACVTwoToOne: st.MeanACVTwoToOne,
		})
	}
	return rep, nil
}

// Render writes the report as a table.
func (r *CountsReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "== §5.1.2 model counts (paper: C1 106475/0.436 edges, 157412/0.437 2-to-1; C2 109810/0.288, 274048/0.288) ==")
	fmt.Fprintln(tw, "config\tdirected edges\tmean ACV\t2-to-1 hyperedges\tmean ACV")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%d\t%.3f\n",
			row.Config, row.DirectedEdges, row.MeanACVEdges, row.TwoToOne, row.MeanACVTwoToOne)
	}
	return tw.Flush()
}
