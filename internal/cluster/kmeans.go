package cluster

import (
	"errors"
	"fmt"
	"math/rand"
)

// KMeansResult is a converged k-means clustering of vector data
// (Definition 2.10, Algorithm 4).
type KMeansResult struct {
	Centroids [][]float64
	Assign    []int
	Inertia   float64 // sum of squared distances to assigned centroids
	Iters     int
}

// KMeans runs Lloyd's algorithm on points (rows) with k clusters.
// Initial centers are k distinct points chosen by the seeded PRNG. The
// loop stops when assignments are stable or after maxIters.
func KMeans(points [][]float64, k int, seed int64, maxIters int) (*KMeansResult, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("cluster: kmeans: no points")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: kmeans: k=%d outside 1..%d", k, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	centroids := make([][]float64, k)
	for i := 0; i < k; i++ {
		centroids[i] = append([]float64(nil), points[perm[i]]...)
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	sq := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	iters := 0
	for ; iters < maxIters; iters++ {
		changed := false
		for p := range points {
			best, bestD := 0, sq(points[p], centroids[0])
			for c := 1; c < k; c++ {
				if d := sq(points[p], centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[p] != best {
				assign[p] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for p, a := range assign {
			counts[a]++
			for d := 0; d < dim; d++ {
				sums[a][d] += points[p][d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an emptied cluster deterministically.
				centroids[c] = append([]float64(nil), points[rng.Intn(n)]...)
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	var inertia float64
	for p, a := range assign {
		inertia += sq(points[p], centroids[a])
	}
	return &KMeansResult{Centroids: centroids, Assign: assign, Inertia: inertia, Iters: iters}, nil
}

// CheckMetric verifies the four metric properties of §2.1.3 for an
// explicit distance function over n points, returning a descriptive
// error for the first violation found.
func CheckMetric(n int, d DistFunc, eps float64) error {
	for i := 0; i < n; i++ {
		if dd := d(i, i); dd > eps || dd < -eps {
			return fmt.Errorf("cluster: d(%d,%d)=%v, want 0", i, i, dd)
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dij := d(i, j)
			if dij < -eps {
				return fmt.Errorf("cluster: d(%d,%d)=%v negative", i, j, dij)
			}
			if diff := dij - d(j, i); diff > eps || diff < -eps {
				return fmt.Errorf("cluster: d(%d,%d) != d(%d,%d)", i, j, j, i)
			}
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if dij > d(i, k)+d(k, j)+eps {
					return fmt.Errorf("cluster: triangle inequality fails on (%d,%d,%d)", i, k, j)
				}
			}
		}
	}
	return nil
}

// SectorPurity scores a clustering against ground-truth labels: the
// fraction of points whose label matches the majority label of their
// cluster (the §5.3.2 notion of clustering quality, where labels are
// industrial sectors).
func SectorPurity(c *Clustering, labels []string) (float64, error) {
	if len(labels) != len(c.Assign) {
		return 0, fmt.Errorf("cluster: %d labels for %d points", len(labels), len(c.Assign))
	}
	if len(labels) == 0 {
		return 0, errors.New("cluster: no points")
	}
	match := 0
	for ci := range c.Centers {
		counts := map[string]int{}
		for _, p := range c.Members(ci) {
			counts[labels[p]]++
		}
		best := 0
		for _, cnt := range counts {
			if cnt > best {
				best = cnt
			}
		}
		match += best
	}
	return float64(match) / float64(len(labels)), nil
}
