package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// euclid returns a DistFunc over 1-D points.
func euclid(xs []float64) DistFunc {
	return func(i, j int) float64 { return math.Abs(xs[i] - xs[j]) }
}

func TestTClusteringTwoBlobs(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	c, err := TClustering(len(xs), 2, euclid(xs), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != 2 {
		t.Fatalf("clusters = %d", c.NumClusters())
	}
	// The two blobs must be separated.
	for _, p := range []int{0, 1, 2} {
		if c.Assign[p] != c.Assign[0] {
			t.Errorf("point %d not with blob 1", p)
		}
	}
	for _, p := range []int{3, 4, 5} {
		if c.Assign[p] != c.Assign[3] {
			t.Errorf("point %d not with blob 2", p)
		}
	}
	if dm := c.Diameter(euclid(xs)); math.Abs(dm-0.2) > 1e-9 {
		t.Errorf("diameter = %v, want 0.2", dm)
	}
	sizes := c.Sizes()
	if sizes[0]+sizes[1] != 6 {
		t.Errorf("sizes = %v", sizes)
	}
	if c.MeanDiameter(euclid(xs)) <= 0 {
		t.Error("mean diameter should be positive")
	}
}

func TestTClusteringValidation(t *testing.T) {
	xs := []float64{0, 1}
	if _, err := TClustering(0, 1, euclid(xs), 0); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := TClustering(2, 3, euclid(xs), 0); err == nil {
		t.Error("want error for t>n")
	}
	if _, err := TClustering(2, 1, euclid(xs), 9); err == nil {
		t.Error("want error for bad first center")
	}
}

func TestTClusteringCentersSelfAssigned(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 30)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	c, err := TClustering(len(xs), 5, euclid(xs), 4)
	if err != nil {
		t.Fatal(err)
	}
	for ci, center := range c.Centers {
		if c.Assign[center] != ci {
			t.Errorf("center %d assigned to %d", center, c.Assign[center])
		}
	}
	if c.Centers[0] != 4 {
		t.Errorf("first center = %d, want 4", c.Centers[0])
	}
	// Centers are distinct.
	seen := map[int]bool{}
	for _, cc := range c.Centers {
		if seen[cc] {
			t.Errorf("duplicate center %d", cc)
		}
		seen[cc] = true
	}
}

// Theorem 2.7: on metric instances Gonzalez is a 2-approximation.
func TestGonzalezTwoApproxProperty(t *testing.T) {
	f := func(seed int64, tRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(7) // <= 11 keeps brute force cheap
		tt := 1 + int(tRaw)%4
		if tt > n {
			tt = n
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		d := euclid(xs)
		c, err := TClustering(n, tt, d, 0)
		if err != nil {
			return false
		}
		opt, err := OptimalDiameter(n, tt, d)
		if err != nil {
			return false
		}
		return c.Diameter(d) <= 2*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOptimalDiameterGuards(t *testing.T) {
	d := euclid(make([]float64, 20))
	if _, err := OptimalDiameter(20, 2, d); err == nil {
		t.Error("want error for n>16")
	}
	if _, err := OptimalDiameter(4, 0, d); err == nil {
		t.Error("want error for t=0")
	}
}

func TestKMeansTwoBlobs(t *testing.T) {
	pts := [][]float64{{0, 0}, {0.2, 0}, {0, 0.1}, {5, 5}, {5.1, 5}, {5, 5.2}}
	r, err := KMeans(pts, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Assign[0] != r.Assign[1] || r.Assign[1] != r.Assign[2] {
		t.Error("blob 1 split")
	}
	if r.Assign[3] != r.Assign[4] || r.Assign[4] != r.Assign[5] {
		t.Error("blob 2 split")
	}
	if r.Assign[0] == r.Assign[3] {
		t.Error("blobs merged")
	}
	if r.Inertia > 0.2 {
		t.Errorf("inertia = %v too large", r.Inertia)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, 2, 1, 0); err == nil {
		t.Error("want error for no points")
	}
	if _, err := KMeans([][]float64{{1}}, 2, 1, 0); err == nil {
		t.Error("want error for k>n")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 1, 0); err == nil {
		t.Error("want error for ragged dims")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	r1, err := KMeans(pts, 4, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := KMeans(pts, 4, 7, 100)
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("same seed produced different assignment")
		}
	}
}

func TestCheckMetric(t *testing.T) {
	xs := []float64{0, 1, 5, 9}
	if err := CheckMetric(len(xs), euclid(xs), 1e-12); err != nil {
		t.Errorf("euclid should be metric: %v", err)
	}
	bad := func(i, j int) float64 {
		if i == j {
			return 0
		}
		if (i == 0 && j == 1) || (i == 1 && j == 0) {
			return 100
		}
		return 1
	}
	if err := CheckMetric(3, bad, 1e-12); err == nil {
		t.Error("want triangle violation")
	}
	asym := func(i, j int) float64 { return float64(i - j) }
	if err := CheckMetric(2, asym, 1e-12); err == nil {
		t.Error("want symmetry/negativity violation")
	}
}

func TestSectorPurity(t *testing.T) {
	c := &Clustering{Centers: []int{0, 3}, Assign: []int{0, 0, 0, 1, 1}}
	labels := []string{"T", "T", "E", "E", "E"}
	got, err := SectorPurity(c, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("purity = %v, want 0.8", got)
	}
	if _, err := SectorPurity(c, []string{"x"}); err == nil {
		t.Error("want error for label-count mismatch")
	}
	empty := &Clustering{}
	if _, err := SectorPurity(empty, nil); err == nil {
		t.Error("want error for no points")
	}
}
