// Package cluster implements the clustering substrates of Chapter 2:
// the Gonzalez t-clustering 2-approximation (Algorithm 2, Theorem 2.7)
// used for attribute clusters in §3.3.2/§5.3.2, and the k-means
// baseline (Algorithm 4) discussed in §2.3.2.
package cluster

import (
	"errors"
	"fmt"
)

// DistFunc returns the distance between points i and j of an n-point
// instance. Implementations should be symmetric with zero diagonal.
type DistFunc func(i, j int) float64

// Clustering is a partition of n points into clusters identified by
// their center points.
type Clustering struct {
	Centers []int // point indexes designated as centers, in pick order
	Assign  []int // Assign[p] = index into Centers of p's cluster
}

// NumClusters returns the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.Centers) }

// Members returns the point indexes of cluster ci.
func (c *Clustering) Members(ci int) []int {
	var out []int
	for p, a := range c.Assign {
		if a == ci {
			out = append(out, p)
		}
	}
	return out
}

// Sizes returns the member count per cluster.
func (c *Clustering) Sizes() []int {
	out := make([]int, len(c.Centers))
	for _, a := range c.Assign {
		out[a]++
	}
	return out
}

// Diameter returns max over clusters of the max pairwise distance
// inside a cluster (Definition 2.6).
func (c *Clustering) Diameter(d DistFunc) float64 {
	var worst float64
	for ci := range c.Centers {
		m := c.Members(ci)
		for x := 0; x < len(m); x++ {
			for y := x + 1; y < len(m); y++ {
				if dd := d(m[x], m[y]); dd > worst {
					worst = dd
				}
			}
		}
	}
	return worst
}

// MeanDiameter returns the average per-cluster diameter (the "mean
// diameter over all clusters" statistic of §5.3.2). Singleton clusters
// contribute 0.
func (c *Clustering) MeanDiameter(d DistFunc) float64 {
	if len(c.Centers) == 0 {
		return 0
	}
	var sum float64
	for ci := range c.Centers {
		m := c.Members(ci)
		var worst float64
		for x := 0; x < len(m); x++ {
			for y := x + 1; y < len(m); y++ {
				if dd := d(m[x], m[y]); dd > worst {
					worst = dd
				}
			}
		}
		sum += worst
	}
	return sum / float64(len(c.Centers))
}

// TClustering runs Algorithm 2 (Gonzalez): pick `first` as the initial
// center, then t-1 times pick the point farthest from all existing
// centers, and finally assign every point to its closest center. When
// distances are metric the result's diameter is at most twice optimal
// (Theorem 2.7).
func TClustering(n, t int, d DistFunc, first int) (*Clustering, error) {
	if n < 1 {
		return nil, errors.New("cluster: no points")
	}
	if t < 1 || t > n {
		return nil, fmt.Errorf("cluster: t=%d outside 1..%d", t, n)
	}
	if first < 0 || first >= n {
		return nil, fmt.Errorf("cluster: first center %d out of range", first)
	}
	centers := make([]int, 0, t)
	// minDist[p] = distance from p to its nearest chosen center.
	minDist := make([]float64, n)
	assign := make([]int, n)
	for p := range minDist {
		minDist[p] = d(p, first)
	}
	centers = append(centers, first)
	for len(centers) < t {
		far, farD := -1, -1.0
		for p := 0; p < n; p++ {
			if minDist[p] > farD {
				farD = minDist[p]
				far = p
			}
		}
		ci := len(centers)
		centers = append(centers, far)
		for p := 0; p < n; p++ {
			if dd := d(p, far); dd < minDist[p] {
				minDist[p] = dd
				assign[p] = ci
			}
		}
	}
	// Final assignment pass (ties toward earliest center, and centers
	// assign to themselves).
	for p := 0; p < n; p++ {
		best, bestD := 0, d(p, centers[0])
		for ci := 1; ci < len(centers); ci++ {
			if dd := d(p, centers[ci]); dd < bestD {
				best, bestD = ci, dd
			}
		}
		assign[p] = best
	}
	for ci, c := range centers {
		assign[c] = ci
	}
	return &Clustering{Centers: centers, Assign: assign}, nil
}

// OptimalDiameter brute-forces the best achievable t-clustering
// diameter by trying every center subset; it is exponential and only
// for small test instances (Theorem 2.7 verification).
func OptimalDiameter(n, t int, d DistFunc) (float64, error) {
	if t < 1 || t > n {
		return 0, fmt.Errorf("cluster: t=%d outside 1..%d", t, n)
	}
	if n > 16 {
		return 0, errors.New("cluster: OptimalDiameter limited to n <= 16")
	}
	best := -1.0
	centers := make([]int, t)
	var rec func(start, depth int)
	diameterFor := func() float64 {
		assign := make([]int, n)
		for p := 0; p < n; p++ {
			bi, bd := 0, d(p, centers[0])
			for ci := 1; ci < t; ci++ {
				if dd := d(p, centers[ci]); dd < bd {
					bi, bd = ci, dd
				}
			}
			assign[p] = bi
		}
		var worst float64
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				if assign[x] == assign[y] {
					if dd := d(x, y); dd > worst {
						worst = dd
					}
				}
			}
		}
		return worst
	}
	rec = func(start, depth int) {
		if depth == t {
			dm := diameterFor()
			if best < 0 || dm < best {
				best = dm
			}
			return
		}
		for c := start; c < n; c++ {
			centers[depth] = c
			rec(c+1, depth+1)
		}
	}
	rec(0, 0)
	return best, nil
}
