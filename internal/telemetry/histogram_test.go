package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"hypermine/internal/testutil"
)

func TestHistogramObserveBuckets(t *testing.T) {
	h := &Histogram{}
	h.Observe(50 * time.Nanosecond)       // bucket 0 (<=100ns)
	h.Observe(100 * time.Nanosecond)      // bucket 0 (inclusive bound)
	h.Observe(101 * time.Nanosecond)      // bucket 1
	h.Observe(time.Millisecond)           // mid ladder
	h.Observe(time.Minute)                // +Inf overflow
	h.Observe(-5 * time.Nanosecond)       // clamps to 0, bucket 0
	snap := h.Snapshot()
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	if snap.Cumulative[0] != 3 {
		t.Fatalf("bucket0 cumulative = %d, want 3", snap.Cumulative[0])
	}
	if snap.Cumulative[1] != 4 {
		t.Fatalf("bucket1 cumulative = %d, want 4", snap.Cumulative[1])
	}
	if snap.Cumulative[NumBuckets] != snap.Count {
		t.Fatalf("+Inf bucket %d != count %d", snap.Cumulative[NumBuckets], snap.Count)
	}
	wantSum := int64(50 + 100 + 101 + time.Millisecond + time.Minute)
	if snap.SumNs != wantSum {
		t.Fatalf("sum = %d, want %d", snap.SumNs, wantSum)
	}
	// Cumulative counts must be monotone.
	for i := 1; i <= NumBuckets; i++ {
		if snap.Cumulative[i] < snap.Cumulative[i-1] {
			t.Fatalf("cumulative not monotone at %d: %d < %d", i, snap.Cumulative[i], snap.Cumulative[i-1])
		}
	}
}

func TestHistogramLadderMonotone(t *testing.T) {
	for i := 1; i < NumBuckets; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Fatalf("ladder not strictly increasing at %d", i)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(seed*i) * time.Nanosecond)
			}
		}(w + 1)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under race instrumentation")
	}
	h := &Histogram{}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3 * time.Microsecond) }); n != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", n)
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_queries_total", "queries", "total queries")
	c.Add(7)
	h := r.Histogram("t_latency_seconds", "request latency", `kind="rules"`)
	h.Observe(time.Microsecond)
	h.Observe(time.Second)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE t_queries_total counter",
		"t_queries_total 7",
		"# TYPE t_latency_seconds histogram",
		`t_latency_seconds_bucket{kind="rules",le="+Inf"} 2`,
		`t_latency_seconds_count{kind="rules"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Two scrapes of unchanged state must be byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Fatal("exposition is not deterministic")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "dup2", "y")
}

func TestRegistryCounterValuesParity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a_total", "a", "x")
	b := r.Counter("b_total", "b", "y")
	a.Add(3)
	b.Inc()
	vals := r.CounterValues()
	if vals["a"] != 3 || vals["b"] != 1 {
		t.Fatalf("CounterValues = %v", vals)
	}
	if len(vals) != len(r.Counters()) {
		t.Fatalf("parity mismatch: %d json keys vs %d counters", len(vals), len(r.Counters()))
	}
}
