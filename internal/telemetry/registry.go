package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter registered under both
// a Prometheus family name and a JSON key, so the /metrics and /stats
// surfaces are generated from the same source and cannot drift.
type Counter struct {
	v       atomic.Int64
	name    string // Prometheus family, e.g. "hypermined_queries_total"
	jsonKey string // /stats key, e.g. "queries"
	help    string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any int64; counters are conventionally
// monotone, callers enforce that).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the Prometheus family name.
func (c *Counter) Name() string { return c.name }

// JSONKey returns the /stats JSON key.
func (c *Counter) JSONKey() string { return c.jsonKey }

// Help returns the help text.
func (c *Counter) Help() string { return c.help }

// family groups the series of one histogram family for exposition.
type family struct {
	name   string
	help   string
	series []*Histogram
}

// Registry holds counters and histogram families and renders them in
// Prometheus text exposition format 0.0.4 with deterministic ordering
// (families sorted by name, series in registration order). It is the
// single source of truth for the server's /stats and /metrics.
type Registry struct {
	mu       sync.Mutex
	counters []*Counter
	families []*family
	byName   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

// Counter registers and returns a counter. Registering the same
// Prometheus name twice panics: duplicate families would corrupt the
// exposition, and registration happens at startup where a loud failure
// is the right behavior.
func (r *Registry) Counter(name, jsonKey, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic("telemetry: duplicate metric " + name)
	}
	r.byName[name] = true
	c := &Counter{name: name, jsonKey: jsonKey, help: help}
	r.counters = append(r.counters, c)
	return c
}

// Histogram registers one series of a histogram family and returns it.
// labels is a pre-rendered label block without braces, e.g.
// `kind="rules",class="cheap"`, or "" for an unlabeled series. All
// series of a family share its help text (the first registration
// wins). Registering the same (family, labels) pair twice panics.
func (r *Registry) Histogram(familyName, help, labels string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := familyName + "{" + labels + "}"
	if r.byName[key] {
		panic("telemetry: duplicate histogram series " + key)
	}
	r.byName[key] = true
	var fam *family
	for _, f := range r.families {
		if f.name == familyName {
			fam = f
			break
		}
	}
	if fam == nil {
		fam = &family{name: familyName, help: help}
		r.families = append(r.families, fam)
	}
	h := &Histogram{labels: labels}
	fam.series = append(fam.series, h)
	return h
}

// Counters returns a snapshot of the registered counters in
// registration order.
func (r *Registry) Counters() []*Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Counter, len(r.counters))
	copy(out, r.counters)
	return out
}

// CounterValues returns jsonKey -> value for every registered counter;
// this is the /stats side of the parity contract.
func (r *Registry) CounterValues() map[string]int64 {
	out := make(map[string]int64)
	for _, c := range r.Counters() {
		out[c.jsonKey] = c.Load()
	}
	return out
}

// WritePrometheus renders every counter and histogram family in text
// exposition format, families sorted by name so scrapes are
// byte-stable for a given state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make([]*Counter, len(r.counters))
	copy(counters, r.counters)
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, c := range counters {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.Load())
	}
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name)
		for _, h := range f.series {
			writeHistogramSeries(&b, f.name, h)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogramSeries(b *strings.Builder, name string, h *Histogram) {
	snap := h.Snapshot()
	sep := ""
	if h.labels != "" {
		sep = ","
	}
	for i := 0; i < NumBuckets; i++ {
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, h.labels, sep, boundSeconds(i), snap.Cumulative[i])
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, h.labels, sep, snap.Count)
	lb := ""
	if h.labels != "" {
		lb = "{" + h.labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, lb, strconv.FormatFloat(float64(snap.SumNs)/1e9, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", name, lb, snap.Count)
}
