// Package telemetry is the zero-dependency observability core shared
// by the engine, registry, admission layer, server, and CLIs: atomic
// fixed-bucket latency histograms, a shared counter registry that
// feeds both /stats (JSON) and /metrics (Prometheus text) so the two
// surfaces cannot drift, and a lock-free request tracer with bounded
// ring retention (see trace.go).
//
// Everything here is stdlib-only and safe for concurrent use. The hot
// paths — Histogram.Observe, the trace-ID context fetch, and the
// cold-sampled span no-op — are annotated //hyper:noalloc and enforced
// by hyperlint.
package telemetry

import (
	"strconv"
	"sync/atomic"
	"time"
)

// bucketBoundsNs is the shared upper-bound ladder for every histogram:
// powers of ~2.5 starting at 100ns, spanning the repo's measured
// latency range (79ns warm classify .. 24ms cold build .. multi-second
// snapshot loads) in 21 buckets plus +Inf. One fixed ladder keeps
// Observe allocation-free and the exposition deterministic.
var bucketBoundsNs = [...]int64{
	100,
	250,
	625,
	1_562,
	3_906,
	9_765,
	24_414,
	61_035,
	152_587,
	381_469,
	953_674, // ~1ms
	2_384_185,
	5_960_464,
	14_901_161,
	37_252_902,
	93_132_257,
	232_830_643,
	582_076_609,
	1_455_191_522, // ~1.5s
	3_637_978_807,
	9_094_947_017, // ~9s
}

// NumBuckets is the number of finite buckets in the shared ladder;
// every histogram also has an implicit +Inf bucket.
const NumBuckets = len(bucketBoundsNs)

// BucketBound returns the i-th finite upper bound in nanoseconds.
func BucketBound(i int) time.Duration { return time.Duration(bucketBoundsNs[i]) }

// Histogram is a fixed-bucket latency histogram with atomic counters.
// The zero value is NOT usable on the exposition path — obtain
// histograms from Registry.Histogram so they render — but Observe on a
// zero value is safe. All methods are concurrency-safe.
type Histogram struct {
	counts [NumBuckets + 1]atomic.Uint64 // per-bucket (non-cumulative); last is +Inf
	sumNs  atomic.Int64
	labels string // pre-rendered `k="v",...` block (no braces), "" for none
}

// Observe records one duration. Negative durations clamp to zero.
//
//hyper:noalloc
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < NumBuckets && ns > bucketBoundsNs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(ns)
}

// HistogramSnapshot is a consistent-enough point-in-time copy: bucket
// counts are read individually, so a snapshot taken under concurrent
// writes may be mid-update, but cumulative counts are monotone within
// the snapshot by construction.
type HistogramSnapshot struct {
	// Cumulative[i] is the count of observations <= BucketBound(i);
	// Cumulative[NumBuckets] is the +Inf bucket == Count.
	Cumulative [NumBuckets + 1]uint64
	Count      uint64
	SumNs      int64
}

// Snapshot copies the histogram state with cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.Count = cum
	s.SumNs = h.sumNs.Load()
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.Snapshot().Count }

// boundSeconds renders a finite bucket bound as a Prometheus `le`
// value in seconds, shortest round-trip float formatting.
func boundSeconds(i int) string {
	return strconv.FormatFloat(float64(bucketBoundsNs[i])/1e9, 'g', -1, 64)
}
