package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"hypermine/internal/testutil"
)

func TestTraceIDString(t *testing.T) {
	id := TraceID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	if got := id.String(); got != "0123456789abcdeffedcba9876543210" {
		t.Fatalf("String() = %q", got)
	}
	if !(TraceID{}).IsZero() || id.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := TraceID{Hi: 0xdeadbeefcafef00d, Lo: 0x0102030405060708}
	h := Traceparent(id)
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("Traceparent = %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != id {
		t.Fatalf("round trip: got %v ok=%v, want %v", got, ok, id)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",        // too short
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",    // too long
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",     // version ff
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",     // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",     // zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",     // uppercase hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",     // wrong separator
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",     // bad version hex
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", h)
		}
	}
	good := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	id, ok := ParseTraceparent(good)
	if !ok || id.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("ParseTraceparent(%q) = %v, %v", good, id, ok)
	}
}

func TestMintIDUnique(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	seen := make(map[TraceID]bool)
	for i := 0; i < 10000; i++ {
		id := tr.MintID()
		if id.IsZero() || seen[id] {
			t.Fatalf("duplicate or zero ID at %d: %v", i, id)
		}
		seen[id] = true
	}
}

func fixedClock(start time.Time) func() time.Time {
	return func() time.Time { return start }
}

func TestTracerRetainsSlowAndErrored(t *testing.T) {
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr := NewTracer(TracerConfig{
		Ring: 8, SlowRing: 8, SampleEvery: -1,
		SlowThreshold: 10 * time.Millisecond,
		Now:           fixedClock(start),
	})

	a := tr.Start(TraceID{}, "rules", "demo", "default")
	a.AddSpan("rules", 100, 5000)
	tr.Finish(a, 20*time.Millisecond, 200, "") // slow

	b := tr.Start(TraceID{}, "classify", "demo", "default")
	tr.Finish(b, time.Microsecond, 503, "shed") // errored

	c := tr.Start(TraceID{}, "similar", "demo", "default")
	c.Pin()
	tr.Finish(c, time.Microsecond, 200, "") // pinned

	d := tr.Start(TraceID{}, "classify", "demo", "default")
	tr.Finish(d, time.Microsecond, 200, "") // unremarkable: dropped (sampling off)

	slow, recent := tr.Snapshot()
	if len(recent) != 0 {
		t.Fatalf("recent ring has %d entries, want 0", len(recent))
	}
	if len(slow) != 3 {
		t.Fatalf("slow ring has %d entries, want 3", len(slow))
	}
	// Newest first.
	if slow[0].Reason != "pinned" || slow[1].Reason != "error" || slow[2].Reason != "slow" {
		t.Fatalf("retention reasons = %s,%s,%s", slow[0].Reason, slow[1].Reason, slow[2].Reason)
	}
	if slow[2].Kind != "rules" || len(slow[2].Spans) != 1 || slow[2].Spans[0].Phase != "rules" {
		t.Fatalf("slow trace lost its spans: %+v", slow[2])
	}
	if !slow[2].Start.Equal(start) {
		t.Fatalf("trace start = %v, want %v", slow[2].Start, start)
	}
}

func TestTracerAlwaysRetainSlowSurvivesFlood(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 4, SlowRing: 4, SampleEvery: 1, SlowThreshold: time.Millisecond})
	s := tr.Start(TraceID{}, "rules", "m", "t")
	tr.Finish(s, 5*time.Millisecond, 200, "") // slow
	// Flood the recent ring far past its size.
	for i := 0; i < 100; i++ {
		a := tr.Start(TraceID{}, "classify", "m", "t")
		tr.Finish(a, time.Microsecond, 200, "")
	}
	slow, recent := tr.Snapshot()
	if len(slow) != 1 || slow[0].Reason != "slow" {
		t.Fatalf("slow trace evicted by flood: %d entries", len(slow))
	}
	if len(recent) != 4 {
		t.Fatalf("recent ring = %d entries, want 4 (bounded)", len(recent))
	}
	// Bounded ring keeps the newest: seq strictly descending.
	for i := 1; i < len(recent); i++ {
		if recent[i].Seq >= recent[i-1].Seq {
			t.Fatal("recent snapshot not newest-first")
		}
	}
}

func TestTracerRingOverflowBounded(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 8, SlowRing: 8, SampleEvery: -1, SlowThreshold: time.Nanosecond})
	for i := 0; i < 1000; i++ {
		a := tr.Start(TraceID{}, "rules", "m", "t")
		tr.Finish(a, time.Second, 200, "")
	}
	slow, _ := tr.Snapshot()
	if len(slow) != 8 {
		t.Fatalf("slow ring = %d entries, want 8", len(slow))
	}
}

func TestTracerSpanOverflowDropped(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1})
	a := tr.Start(TraceID{}, "rules", "m", "t")
	for i := 0; i < MaxTraceSpans+5; i++ {
		a.AddSpan("edges", int64(i), 1)
	}
	tr.Finish(a, time.Microsecond, 200, "")
	_, recent := tr.Snapshot()
	if len(recent) != 1 {
		t.Fatalf("recent = %d, want 1", len(recent))
	}
	if len(recent[0].Spans) != MaxTraceSpans || recent[0].Dropped != 5 {
		t.Fatalf("spans=%d dropped=%d", len(recent[0].Spans), recent[0].Dropped)
	}
}

func TestTracerPoolReuseResets(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: -1, SlowThreshold: time.Hour})
	a := tr.Start(TraceID{}, "rules", "m", "t")
	a.AddSpan("edges", 1, 2)
	a.Pin() // retained, but state must still reset
	id1 := a.TraceID()
	tr.Finish(a, time.Microsecond, 200, "")
	b := tr.Start(TraceID{}, "classify", "m2", "t2")
	if b.TraceID() == id1 {
		t.Fatal("reused Active kept its old trace ID")
	}
	if b.nspans != 0 || b.dropped != 0 || b.pinned.Load() {
		t.Fatalf("reused Active not reset: %+v", b)
	}
	tr.Finish(b, time.Microsecond, 200, "")
}

func TestTracerConcurrent(t *testing.T) {
	base := testutil.GoroutineBaseline()
	tr := NewTracer(TracerConfig{Ring: 16, SlowRing: 16, SampleEvery: 4, SlowThreshold: time.Millisecond})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot readers while writers churn.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				slow, recent := tr.Snapshot()
				for _, rec := range append(slow, recent...) {
					if rec.ID.IsZero() {
						panic("published trace with zero ID")
					}
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a := tr.Start(TraceID{}, "rules", "m", "t")
				a.AddSpan("edges", 0, 10)
				d := time.Microsecond
				if i%50 == 0 {
					d = 2 * time.Millisecond
				}
				tr.Finish(a, d, 200, "")
			}
		}(w)
	}
	close(stop)
	wg.Wait()
	testutil.CheckGoroutines(t.Fatalf, base, 0, 5*time.Second)
}

func TestContextTracePropagation(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	a := tr.Start(TraceID{}, "rules", "m", "t")
	ctx := ContextWithTrace(context.Background(), a)
	if TraceFrom(ctx) != a {
		t.Fatal("TraceFrom lost the active trace")
	}
	if TraceIDFrom(ctx) != a.TraceID() {
		t.Fatal("TraceIDFrom mismatch")
	}
	if !TraceIDFrom(context.Background()).IsZero() {
		t.Fatal("TraceIDFrom on bare ctx should be zero")
	}
	if TraceFrom(context.Background()).TraceID() != (TraceID{}) {
		t.Fatal("nil Active TraceID should be zero")
	}
	tr.Finish(a, 0, 200, "")
}

func TestColdSampledPathNoAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under race instrumentation")
	}
	tr := NewTracer(TracerConfig{SampleEvery: -1, SlowThreshold: time.Hour})
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() { _ = TraceIDFrom(ctx) }); n != 0 {
		t.Fatalf("TraceIDFrom allocates %v per op", n)
	}
	var nilActive *Active
	if n := testing.AllocsPerRun(1000, func() { nilActive.AddSpan("edges", 0, 1) }); n != 0 {
		t.Fatalf("nil AddSpan allocates %v per op", n)
	}
	// Full start/finish cycle of an unretained (cold-sampled) trace:
	// pooled Active, no publish.
	if n := testing.AllocsPerRun(1000, func() {
		a := tr.Start(TraceID{Hi: 1, Lo: 2}, "classify", "m", "t")
		a.AddSpan("classifier", 0, 50)
		tr.Finish(a, time.Microsecond, 200, "")
	}); n != 0 {
		t.Fatalf("cold-sampled trace cycle allocates %v per op", n)
	}
}
