package telemetry

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// MaxTraceSpans bounds the spans retained per trace; later spans are
// dropped (and counted in the record) rather than allocated.
const MaxTraceSpans = 32

// TraceID is a 128-bit W3C-compatible trace identifier.
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is the invalid all-zero ID.
//
//hyper:noalloc
func (id TraceID) IsZero() bool { return id.Hi|id.Lo == 0 }

const hexDigits = "0123456789abcdef"

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var buf [32]byte
	putHex64(buf[:16], id.Hi)
	putHex64(buf[16:], id.Lo)
	return string(buf[:])
}

// MarshalJSON renders the ID as a hex string, matching the
// /debug/traces wire format.
func (id TraceID) MarshalJSON() ([]byte, error) {
	var buf [34]byte
	buf[0] = '"'
	putHex64(buf[1:17], id.Hi)
	putHex64(buf[17:33], id.Lo)
	buf[33] = '"'
	return buf[:], nil
}

// UnmarshalJSON parses the hex-string wire format back, so clients of
// /debug/traces (loadgen's -trace-sample, tests) can decode traces
// with the same type the server encodes.
func (id *TraceID) UnmarshalJSON(data []byte) error {
	if len(data) != 34 || data[0] != '"' || data[33] != '"' {
		return fmt.Errorf("telemetry: trace ID %q is not 32 hex digits", data)
	}
	hi, ok1 := parseHex(string(data[1:17]))
	lo, ok2 := parseHex(string(data[17:33]))
	if !ok1 || !ok2 {
		return fmt.Errorf("telemetry: trace ID %q is not 32 hex digits", data)
	}
	id.Hi, id.Lo = hi, lo
	return nil
}

func putHex64(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// Traceparent renders a W3C traceparent header (version 00, sampled
// flag set) carrying id and a span ID derived from it.
func Traceparent(id TraceID) string {
	var buf [55]byte
	copy(buf[:3], "00-")
	putHex64(buf[3:19], id.Hi)
	putHex64(buf[19:35], id.Lo)
	buf[35] = '-'
	span := splitmix64(id.Lo ^ id.Hi)
	if span == 0 {
		span = 1 // all-zero parent span IDs are invalid per W3C
	}
	putHex64(buf[36:52], span)
	copy(buf[52:], "-01")
	return string(buf[:])
}

// ParseTraceparent extracts the trace ID from a W3C traceparent header
// (version-format `vv-traceid-spanid-flags`, lowercase hex). It
// returns false for malformed headers, unknown version ff, or the
// invalid all-zero trace ID.
func ParseTraceparent(h string) (TraceID, bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, false
	}
	ver, ok := parseHex(h[:2])
	if !ok || ver == 0xff {
		return TraceID{}, false
	}
	hi, ok1 := parseHex(h[3:19])
	lo, ok2 := parseHex(h[19:35])
	span, ok3 := parseHex(h[36:52])
	_, ok4 := parseHex(h[53:55])
	if !ok1 || !ok2 || !ok3 || !ok4 || span == 0 {
		return TraceID{}, false
	}
	id := TraceID{Hi: hi, Lo: lo}
	if id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// parseHex decodes up to 16 lowercase hex digits.
func parseHex(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

// SpanRecord is one retained span: a named phase with its offset from
// the trace start and its duration.
type SpanRecord struct {
	Phase      string `json:"phase"`
	StartNs    int64  `json:"start_ns"`
	DurationNs int64  `json:"duration_ns"`
}

// Trace is an immutable published trace record as served by
// /debug/traces.
type Trace struct {
	ID       TraceID       `json:"trace_id"`
	Seq      uint64        `json:"seq"`
	Kind     string        `json:"kind"`
	Model    string        `json:"model,omitempty"`
	Tenant   string        `json:"tenant,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Status   int           `json:"status"`
	Err      string        `json:"error,omitempty"`
	Reason   string        `json:"retained"` // "slow" | "error" | "pinned" | "sampled"
	Dropped  int           `json:"spans_dropped,omitempty"`
	Spans    []SpanRecord  `json:"spans"`
}

// ring is a bounded lock-free trace ring: slots hold immutable
// published records behind atomic pointers, writers claim slots by a
// monotone head counter, readers snapshot by loading pointers. Old
// records are overwritten (and garbage-collected) as the head wraps.
type ring struct {
	slots []atomic.Pointer[Trace]
	head  atomic.Uint64
}

func newRing(n int) *ring {
	return &ring{slots: make([]atomic.Pointer[Trace], n)}
}

func (r *ring) publish(t *Trace) {
	i := r.head.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// snapshot returns the retained records, newest first.
func (r *ring) snapshot() []*Trace {
	out := make([]*Trace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	// Insertion sort by descending Seq: rings are small (tens).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq > out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TracerConfig tunes retention and sampling. Zero values select the
// defaults noted on each field.
type TracerConfig struct {
	// Ring is the recent-trace ring size (sampled OK requests).
	// Default 128.
	Ring int
	// SlowRing is the always-retain ring size for slow, errored, shed,
	// and pinned traces. Default 64.
	SlowRing int
	// SampleEvery publishes one in N unremarkable traces to the recent
	// ring; 1 retains every trace, negative disables sampling (only
	// slow/errored/pinned traces are kept). Default 16.
	SampleEvery int
	// SlowThreshold marks traces at or above this duration as slow
	// (always retained). Default 100ms; negative disables.
	SlowThreshold time.Duration
	// Now is the clock, for tests. Default time.Now.
	Now func() time.Time
}

// Tracer mints trace IDs, pools in-flight trace state, and retains
// finished traces in two bounded lock-free rings: a sampled ring of
// recent requests and an always-retain ring for slow, errored, and
// pinned ones. The per-request cost when a trace is not retained
// ("cold-sampled") is allocation-free.
type Tracer struct {
	cfg    TracerConfig
	recent *ring
	slow   *ring
	seq    atomic.Uint64 // publish order stamp
	tick   atomic.Uint64 // sampling stride counter
	ids    atomic.Uint64 // splitmix64 stream state
	pool   sync.Pool
}

// NewTracer builds a tracer; see TracerConfig for defaults.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 128
	}
	if cfg.SlowRing <= 0 {
		cfg.SlowRing = 64
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 16
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 100 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	t := &Tracer{cfg: cfg, recent: newRing(cfg.Ring), slow: newRing(cfg.SlowRing)}
	t.ids.Store(uint64(time.Now().UnixNano()))
	t.pool.New = func() any { return new(Active) }
	return t
}

// SlowThreshold returns the configured slow-trace threshold.
func (t *Tracer) SlowThreshold() time.Duration { return t.cfg.SlowThreshold }

// MintID returns a fresh nonzero trace ID from a splitmix64 stream.
func (t *Tracer) MintID() TraceID {
	for {
		s := t.ids.Add(2)
		id := TraceID{Hi: splitmix64(s - 1), Lo: splitmix64(s)}
		if !id.IsZero() {
			return id
		}
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Active is the in-flight state of one trace, owned by the request
// goroutine between Start and Finish. It is pooled: do not retain it
// after Finish.
type Active struct {
	t       *Tracer
	id      TraceID
	kind    string
	model   string
	tenant  string
	start   time.Time
	nspans  int
	dropped int
	pinned  atomic.Bool
	spans   [MaxTraceSpans]SpanRecord
}

// Start begins a trace. A zero id mints a fresh one (pass the parsed
// inbound traceparent ID to continue a distributed trace).
func (t *Tracer) Start(id TraceID, kind, model, tenant string) *Active {
	if id.IsZero() {
		id = t.MintID()
	}
	a := t.pool.Get().(*Active)
	a.t = t
	a.id = id
	a.kind = kind
	a.model = model
	a.tenant = tenant
	a.start = t.cfg.Now()
	return a
}

// TraceID returns the trace ID; zero on a nil Active.
//
//hyper:noalloc
func (a *Active) TraceID() TraceID {
	if a == nil {
		return TraceID{}
	}
	return a.id
}

// Started returns the trace start time (zero on nil).
func (a *Active) Started() time.Time {
	if a == nil {
		return time.Time{}
	}
	return a.start
}

// AddSpan appends one span; on a nil Active it is an allocation-free
// no-op, and spans beyond MaxTraceSpans are counted as dropped.
//
//hyper:noalloc
func (a *Active) AddSpan(phase string, startNs, durationNs int64) {
	if a == nil {
		return
	}
	if a.nspans >= MaxTraceSpans {
		a.dropped++
		return
	}
	a.spans[a.nspans] = SpanRecord{Phase: phase, StartNs: startNs, DurationNs: durationNs}
	a.nspans++
}

// Pin forces retention of this trace at Finish regardless of sampling
// (used by the slow-query log so the logged trace_id is resolvable).
func (a *Active) Pin() {
	if a != nil {
		a.pinned.Store(true)
	}
}

// Finish completes the trace and decides retention: slow (>=
// threshold), errored (status >= 400 or errMsg != ""), and pinned
// traces always land in the slow ring; otherwise one in SampleEvery
// goes to the recent ring; the rest are dropped without allocating.
// The Active is recycled — the caller must not touch it afterwards.
func (t *Tracer) Finish(a *Active, d time.Duration, status int, errMsg string) {
	if a == nil {
		return
	}
	slow := t.cfg.SlowThreshold > 0 && d >= t.cfg.SlowThreshold
	errored := status >= 400 || errMsg != ""
	pinned := a.pinned.Load()
	retain := slow || errored || pinned
	sampled := false
	if !retain && t.cfg.SampleEvery > 0 {
		sampled = t.tick.Add(1)%uint64(t.cfg.SampleEvery) == 0
	}
	if retain || sampled {
		reason := "sampled"
		switch {
		case slow:
			reason = "slow"
		case errored:
			reason = "error"
		case pinned:
			reason = "pinned"
		}
		rec := &Trace{
			ID:       a.id,
			Seq:      t.seq.Add(1),
			Kind:     a.kind,
			Model:    a.model,
			Tenant:   a.tenant,
			Start:    a.start,
			Duration: d,
			Status:   status,
			Err:      errMsg,
			Reason:   reason,
			Dropped:  a.dropped,
			Spans:    append([]SpanRecord(nil), a.spans[:a.nspans]...),
		}
		if retain {
			t.slow.publish(rec)
		} else {
			t.recent.publish(rec)
		}
	}
	a.reset()
	t.pool.Put(a)
}

func (a *Active) reset() {
	a.t = nil
	a.id = TraceID{}
	a.kind, a.model, a.tenant = "", "", ""
	a.start = time.Time{}
	a.nspans = 0
	a.dropped = 0
	a.pinned.Store(false)
}

// Snapshot returns the retained traces, newest first: the always-kept
// slow/errored/pinned ring and the sampled recent ring.
func (t *Tracer) Snapshot() (slow, recent []*Trace) {
	return t.slow.snapshot(), t.recent.snapshot()
}

type traceKey struct{}

// ContextWithTrace attaches the in-flight trace to the context.
func ContextWithTrace(ctx context.Context, a *Active) context.Context {
	return context.WithValue(ctx, traceKey{}, a)
}

// TraceFrom returns the in-flight trace attached to ctx, or nil.
//
//hyper:noalloc
func TraceFrom(ctx context.Context) *Active {
	// traceKey{} is zero-size: interface conversion points at
	// runtime.zerobase and performs no heap allocation (pinned by the
	// cold-path alloc test).
	//hyperlint:ignore noalloc
	a, _ := ctx.Value(traceKey{}).(*Active)
	return a
}

// TraceIDFrom returns the trace ID attached to ctx, or the zero ID.
//
//hyper:noalloc
func TraceIDFrom(ctx context.Context) TraceID {
	return TraceFrom(ctx).TraceID()
}
