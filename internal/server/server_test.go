package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hypermine/internal/core"
	"hypermine/internal/registry"
	"hypermine/internal/similarity"
	"hypermine/internal/table"
	"hypermine/internal/testutil"
)

func testModel(t testing.TB, seed int64, nAttrs, rows int) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]string, nAttrs)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("A%02d", j)
	}
	tb, err := table.New(attrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]table.Value, nAttrs)
	for i := 0; i < rows; i++ {
		base := table.Value(1 + rng.Intn(3))
		for j := range row {
			if rng.Intn(3) == 0 {
				row[j] = table.Value(1 + rng.Intn(3))
			} else {
				row[j] = base
			}
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	m, err := core.Build(tb, core.Config{GammaEdge: 1.0, GammaPair: 1.0, Candidates: core.EdgeSeeded})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// serving boots an httptest server with one model loaded as "demo".
func serving(t *testing.T) (*httptest.Server, *registry.Registry, *core.Model) {
	t.Helper()
	m := testModel(t, 7, 12, 500)
	reg := registry.New(registry.Options{})
	if _, err := reg.Load("demo", m); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg).Handler())
	t.Cleanup(ts.Close)
	return ts, reg, m
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: %v (%s)", url, err, raw)
		}
	}
	return resp.StatusCode
}

// The legacy wire shapes, pinned from the client's point of view: the
// engine-backed handlers must keep serving exactly these fields.
type classifyRequest struct {
	Target string         `json:"target"`
	Values map[string]int `json:"values"`
}

type classifyResponse struct {
	Target     string  `json:"target"`
	Value      int     `json:"value"`
	Confidence float64 `json:"confidence"`
}

type classifyBatchRequest struct {
	Target string  `json:"target"`
	Rows   [][]int `json:"rows"`
}

type classifyBatchResponse struct {
	Target      string    `json:"target"`
	Values      []int     `json:"values"`
	Confidences []float64 `json:"confidences"`
}

type similarPair struct {
	A        string  `json:"a"`
	B        string  `json:"b"`
	InSim    float64 `json:"in_sim"`
	OutSim   float64 `json:"out_sim"`
	Distance float64 `json:"distance"`
}

type neighbor struct {
	Name     string  `json:"name"`
	Distance float64 `json:"distance"`
}

type ruleResponse struct {
	Rule       string  `json:"rule"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

func TestHealthzAndStats(t *testing.T) {
	ts, _, _ := serving(t)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: code %d body %v", code, health)
	}
	var stats statsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats: code %d", code)
	}
	if len(stats.Registry.Models) != 1 || stats.Registry.Models[0].Name != "demo" {
		t.Fatalf("stats registry: %+v", stats.Registry)
	}
}

func TestModelListAndDetail(t *testing.T) {
	ts, _, m := serving(t)
	var list struct {
		Models []modelSummary `json:"models"`
	}
	if code := getJSON(t, ts.URL+"/v1/models", &list); code != 200 {
		t.Fatalf("list: code %d", code)
	}
	if len(list.Models) != 1 || list.Models[0].Name != "demo" || list.Models[0].Edges != m.H.NumEdges() {
		t.Fatalf("list: %+v", list)
	}
	if !list.Models[0].Classify {
		t.Fatal("demo model should classify")
	}

	var det modelDetail
	if code := getJSON(t, ts.URL+"/v1/models/demo", &det); code != 200 {
		t.Fatalf("detail: code %d", code)
	}
	if len(det.Dominator) == 0 || len(det.Targets) == 0 {
		t.Fatalf("detail missing dominator/targets: %+v", det)
	}
	if code := getJSON(t, ts.URL+"/v1/models/nope", nil); code != 404 {
		t.Fatalf("unknown model: code %d", code)
	}
}

// TestClassifyMatchesDirectPredictor: the HTTP answer must equal a
// direct in-process prediction through the same model.
func TestClassifyMatchesDirectPredictor(t *testing.T) {
	ts, reg, m := serving(t)
	sv := reg.Acquire("demo")
	defer sv.Release()
	abc, err := sv.Classifier()
	if err != nil {
		t.Fatal(err)
	}
	dom := abc.Dominator()
	targets := sv.Targets()
	p := abc.NewPredictor()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25; i++ {
		domVals := make([]table.Value, len(dom))
		values := map[string]int{}
		for j, a := range dom {
			v := 1 + rng.Intn(3)
			domVals[j] = table.Value(v)
			values[m.H.VertexName(a)] = v
		}
		target := targets[i%len(targets)]
		wantV, wantConf, err := p.Predict(domVals, target)
		if err != nil {
			t.Fatal(err)
		}
		var got classifyResponse
		code := postJSON(t, ts.URL+"/v1/models/demo/classify",
			classifyRequest{Target: m.H.VertexName(target), Values: values}, &got)
		if code != 200 {
			t.Fatalf("classify: code %d", code)
		}
		if got.Value != int(wantV) || got.Confidence != wantConf {
			t.Fatalf("query %d: got (%d, %v), want (%d, %v)", i, got.Value, got.Confidence, wantV, wantConf)
		}
	}
}

func TestClassifyBatchMatchesSerial(t *testing.T) {
	ts, reg, m := serving(t)
	sv := reg.Acquire("demo")
	defer sv.Release()
	abc, _ := sv.Classifier()
	dom := abc.Dominator()
	target := sv.Targets()[0]
	rng := rand.New(rand.NewSource(6))
	rows := make([][]int, 40)
	flat := make([]table.Value, 0, len(rows)*len(dom))
	for i := range rows {
		rows[i] = make([]int, len(dom))
		for j := range rows[i] {
			rows[i][j] = 1 + rng.Intn(3)
			flat = append(flat, table.Value(rows[i][j]))
		}
	}
	want := make([]table.Value, len(rows))
	wantConf := make([]float64, len(rows))
	if err := abc.NewPredictor().PredictBatch(flat, target, want, wantConf); err != nil {
		t.Fatal(err)
	}
	var got classifyBatchResponse
	code := postJSON(t, ts.URL+"/v1/models/demo/classify:batch",
		classifyBatchRequest{Target: m.H.VertexName(target), Rows: rows}, &got)
	if code != 200 {
		t.Fatalf("batch: code %d", code)
	}
	for i := range want {
		if got.Values[i] != int(want[i]) || got.Confidences[i] != wantConf[i] {
			t.Fatalf("row %d: got (%d, %v), want (%d, %v)", i, got.Values[i], got.Confidences[i], want[i], wantConf[i])
		}
	}

	// Malformed rows are rejected.
	if code := postJSON(t, ts.URL+"/v1/models/demo/classify:batch",
		classifyBatchRequest{Target: m.H.VertexName(target), Rows: [][]int{{1}}}, nil); code != 400 {
		t.Fatalf("short row: code %d", code)
	}
}

func TestSimilarEndpoints(t *testing.T) {
	ts, _, m := serving(t)
	a, b := m.H.VertexName(0), m.H.VertexName(1)
	var pair similarPair
	if code := getJSON(t, fmt.Sprintf("%s/v1/models/demo/similar?a=%s&b=%s", ts.URL, a, b), &pair); code != 200 {
		t.Fatalf("pair: code %d", code)
	}
	if want := similarity.InSim(m.H, 0, 1); pair.InSim != want {
		t.Fatalf("in_sim %v, want %v", pair.InSim, want)
	}
	if want := similarity.OutSim(m.H, 0, 1); pair.OutSim != want {
		t.Fatalf("out_sim %v, want %v", pair.OutSim, want)
	}
	if want := similarity.Distance(m.H, 0, 1); pair.Distance != want {
		t.Fatalf("distance %v, want %v", pair.Distance, want)
	}

	var ranking struct {
		Neighbors []neighbor `json:"neighbors"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/v1/models/demo/similar?a=%s&top=3", ts.URL, a), &ranking); code != 200 {
		t.Fatalf("ranking: code %d", code)
	}
	if len(ranking.Neighbors) != 3 {
		t.Fatalf("ranking size %d", len(ranking.Neighbors))
	}
	for i := 1; i < len(ranking.Neighbors); i++ {
		if ranking.Neighbors[i-1].Distance > ranking.Neighbors[i].Distance {
			t.Fatalf("ranking not sorted: %+v", ranking.Neighbors)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/models/demo/similar?a=zzz", nil); code != 400 {
		t.Fatalf("unknown attr: code %d", code)
	}
}

func TestRulesEndpoint(t *testing.T) {
	ts, _, m := serving(t)
	head := m.H.VertexName(5)
	var out struct {
		Rules []ruleResponse `json:"rules"`
	}
	code := getJSON(t, fmt.Sprintf("%s/v1/models/demo/rules?head=%s&top=5", ts.URL, head), &out)
	if code != 200 {
		t.Fatalf("rules: code %d", code)
	}
	if len(out.Rules) == 0 || len(out.Rules) > 5 {
		t.Fatalf("rules count %d", len(out.Rules))
	}
	if !strings.Contains(out.Rules[0].Rule, "=>") {
		t.Fatalf("unformatted rule %q", out.Rules[0].Rule)
	}
}

// TestPutSnapshotHotSwap uploads snapshots over HTTP: a fresh model,
// then a hot swap, then a row-less snapshot whose classify must 409.
func TestPutSnapshotHotSwap(t *testing.T) {
	ts, _, m := serving(t)
	other := testModel(t, 8, 10, 400)
	put := func(name string, m *core.Model, opt core.SaveOptions) putResponse {
		var buf bytes.Buffer
		if err := core.WriteSnapshot(&buf, m, opt); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/"+name, &buf)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("PUT %s: code %d: %s", name, resp.StatusCode, raw)
		}
		var pr putResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	if pr := put("second", other, core.SaveOptions{}); pr.Swapped {
		t.Fatalf("fresh PUT reported swap: %+v", pr)
	}
	if pr := put("demo", m, core.SaveOptions{}); !pr.Swapped {
		t.Fatalf("reload PUT did not report swap: %+v", pr)
	}

	pr := put("slim", m, core.SaveOptions{OmitRows: true})
	if pr.Rows != 0 {
		t.Fatalf("row-less PUT kept rows: %+v", pr)
	}
	code := postJSON(t, ts.URL+"/v1/models/slim/classify",
		classifyRequest{Target: "A05", Values: map[string]int{}}, nil)
	if code != http.StatusConflict {
		t.Fatalf("classify on row-less model: code %d, want 409", code)
	}
	// Graph queries on the row-less model still work.
	if code := getJSON(t, ts.URL+"/v1/models/slim/dominators", nil); code != 200 {
		t.Fatalf("dominators on row-less model: code %d", code)
	}

	// Corrupt snapshot rejected.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/bad", strings.NewReader("not a snapshot"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("corrupt PUT: code %d", resp.StatusCode)
	}
}

func TestDeleteModel(t *testing.T) {
	ts, _, _ := serving(t)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/demo", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete: code %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/models/demo", nil); code != 404 {
		t.Fatalf("after delete: code %d", code)
	}
}

// TestClassifyAllocations pins the steady-state predict path (borrow,
// resolve, predict, return — everything but HTTP/JSON) to zero heap
// allocations beyond the decoded request itself.
func TestClassifyAllocations(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	_, reg, _ := serving(t)
	sv := reg.Acquire("demo")
	defer sv.Release()
	abc, err := sv.Classifier()
	if err != nil {
		t.Fatal(err)
	}
	dom := abc.Dominator()
	domVals := make([]table.Value, len(dom))
	for j := range domVals {
		domVals[j] = table.Value(1 + j%3)
	}
	target := sv.Targets()[0]
	// Warm the pool.
	p, _ := sv.BorrowPredictor()
	sv.ReturnPredictor(p)
	allocs := testing.AllocsPerRun(200, func() {
		p, err := sv.BorrowPredictor()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.Predict(domVals, target); err != nil {
			t.Fatal(err)
		}
		sv.ReturnPredictor(p)
	})
	if allocs > 0 {
		t.Errorf("steady-state predict path allocates %.1f/op, want 0", allocs)
	}
}

// TestQueryBatchEndpoint: a mixed batch through /v1/models/{name}:query
// must answer every sub-request exactly as the dedicated endpoints do.
func TestQueryBatchEndpoint(t *testing.T) {
	ts, reg, m := serving(t)
	sv := reg.Acquire("demo")
	abc, err := sv.Classifier()
	if err != nil {
		t.Fatal(err)
	}
	dom := abc.Dominator()
	target := m.H.VertexName(sv.Targets()[0])
	sv.Release()

	values := map[string]int{}
	for j, a := range dom {
		values[m.H.VertexName(a)] = 1 + j%3
	}
	a, b := m.H.VertexName(0), m.H.VertexName(1)
	head := m.H.VertexName(5)
	batch := map[string]any{
		"batch": []map[string]any{
			{"classify": map[string]any{"target": target, "values": values}},
			{"similar": map[string]any{"a": a, "b": b}},
			{"similar": map[string]any{"a": a, "top": 3}},
			{"dominators": map[string]any{}},
			{"rules": map[string]any{"head": head, "top": 5}},
			{"classify": map[string]any{"target": "NOPE", "values": values}}, // fails alone
		},
	}
	var got struct {
		Batch []struct {
			Classify   *classifyResponse `json:"classify"`
			Similar    *json.RawMessage  `json:"similar"`
			Dominators *json.RawMessage  `json:"dominators"`
			Rules      *json.RawMessage  `json:"rules"`
			Error      *struct {
				Kind    string `json:"kind"`
				Message string `json:"message"`
			} `json:"error"`
		} `json:"batch"`
	}
	if code := postJSON(t, ts.URL+"/v1/models/demo:query", batch, &got); code != 200 {
		t.Fatalf(":query batch: code %d", code)
	}
	if len(got.Batch) != 6 {
		t.Fatalf("batch answered %d items, want 6", len(got.Batch))
	}

	// Item 0 equals the dedicated classify endpoint byte-for-byte on
	// its fields.
	var single classifyResponse
	if code := postJSON(t, ts.URL+"/v1/models/demo/classify",
		classifyRequest{Target: target, Values: values}, &single); code != 200 {
		t.Fatalf("classify: code %d", code)
	}
	if got.Batch[0].Classify == nil || *got.Batch[0].Classify != single {
		t.Fatalf("batch classify %+v != endpoint %+v", got.Batch[0].Classify, single)
	}

	// Item 1 equals the pair endpoint.
	var pair, batchPair similarPair
	if code := getJSON(t, fmt.Sprintf("%s/v1/models/demo/similar?a=%s&b=%s", ts.URL, a, b), &pair); code != 200 {
		t.Fatal("pair endpoint failed")
	}
	if err := json.Unmarshal(*got.Batch[1].Similar, &batchPair); err != nil {
		t.Fatal(err)
	}
	if batchPair != pair {
		t.Fatalf("batch pair %+v != endpoint %+v", batchPair, pair)
	}

	if got.Batch[2].Similar == nil || got.Batch[3].Dominators == nil || got.Batch[4].Rules == nil {
		t.Fatalf("batch items missing payloads: %+v", got.Batch)
	}
	if got.Batch[5].Error == nil || got.Batch[5].Error.Kind != "bad_request" {
		t.Fatalf("bad sub-request did not fail alone: %+v", got.Batch[5])
	}

	// Single (non-batch) typed requests work through :query too.
	var one struct {
		Dominators *json.RawMessage `json:"dominators"`
	}
	if code := postJSON(t, ts.URL+"/v1/models/demo:query",
		map[string]any{"dominators": map[string]any{}}, &one); code != 200 || one.Dominators == nil {
		t.Fatalf(":query single failed")
	}

	// Malformed shapes are rejected, not routed.
	if code := postJSON(t, ts.URL+"/v1/models/demo:query", map[string]any{}, nil); code != 400 {
		t.Fatalf("empty request: want 400")
	}
	if code := postJSON(t, ts.URL+"/v1/models/nope:query",
		map[string]any{"dominators": map[string]any{}}, nil); code != 404 {
		t.Fatalf("unknown model: want 404")
	}
	if code := postJSON(t, ts.URL+"/v1/models/demo:nope", map[string]any{}, nil); code != 404 {
		t.Fatalf("bad suffix: want 404")
	}
}

// TestClassifyRejectsNonTargets: asking to classify a dominator member
// or unknown attribute is a 400 client error, never a 500.
func TestClassifyRejectsNonTargets(t *testing.T) {
	ts, reg, m := serving(t)
	sv := reg.Acquire("demo")
	domAttr := m.H.VertexName(sv.Dominator().DomSet[0])
	abc, _ := sv.Classifier()
	values := map[string]int{}
	for _, a := range abc.Dominator() {
		values[m.H.VertexName(a)] = 1
	}
	sv.Release()
	for _, target := range []string{domAttr, "NOPE"} {
		code := postJSON(t, ts.URL+"/v1/models/demo/classify",
			classifyRequest{Target: target, Values: values}, nil)
		if code != 400 {
			t.Errorf("classify target %q: code %d, want 400", target, code)
		}
		code = postJSON(t, ts.URL+"/v1/models/demo/classify:batch",
			classifyBatchRequest{Target: target, Rows: [][]int{{1, 1}}}, nil)
		if code != 400 {
			t.Errorf("batch target %q: code %d, want 400", target, code)
		}
	}
}
