package server

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hypermine/internal/admit"
	"hypermine/internal/registry"
	"hypermine/internal/testutil"
)

// servingAdmit boots an httptest server with one model loaded as
// "demo" and the given admission controller in front of the query
// funnel.
func servingAdmit(t *testing.T, ctl *admit.Controller, opts ...Option) *httptest.Server {
	t.Helper()
	m := testModel(t, 7, 12, 500)
	reg := registry.New(registry.Options{})
	if _, err := reg.Load("demo", m); err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{WithAdmission(ctl)}, opts...)
	ts := httptest.NewServer(New(reg, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// getTenant issues a GET with an X-Tenant header and returns status,
// body, and the Retry-After header.
func getTenant(t *testing.T, url, tenant string) (int, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("Retry-After")
}

// TestAdmissionTenantRateLimit drives one tenant's bucket empty and
// checks the 429 contract: status, reason, Retry-After header >= 1,
// and isolation — the other tenant and the default tenant stay
// admitted.
func TestAdmissionTenantRateLimit(t *testing.T) {
	ctl := admit.NewController(admit.Config{TenantRate: 0.001, TenantBurst: 2})
	ts := servingAdmit(t, ctl)
	url := ts.URL + "/v1/models/demo/dominators"

	for i := 0; i < 2; i++ {
		if code, body, _ := getTenant(t, url, "alice"); code != 200 {
			t.Fatalf("alice request %d: code %d (%s)", i, code, body)
		}
	}
	code, body, retry := getTenant(t, url, "alice")
	if code != 429 {
		t.Fatalf("exhausted tenant: code %d (%s), want 429", code, body)
	}
	if !strings.Contains(string(body), string(admit.ReasonTenantRateLimited)) {
		t.Fatalf("429 body %s missing reason %q", body, admit.ReasonTenantRateLimited)
	}
	if secs, err := strconv.Atoi(retry); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", retry)
	}
	// Other tenants are unaffected: that is the point of per-tenant
	// buckets.
	if code, body, _ := getTenant(t, url, "bob"); code != 200 {
		t.Fatalf("bob: code %d (%s), want 200", code, body)
	}
	if code, body, _ := getTenant(t, url, ""); code != 200 {
		t.Fatalf("default tenant: code %d (%s), want 200", code, body)
	}

	var st statsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	if st.Shed != 1 {
		t.Fatalf("stats shed = %d, want 1", st.Shed)
	}
	if st.Admission == nil {
		t.Fatal("stats missing admission block")
	}
	var alice *admit.PartyStats
	for i := range st.Admission.Tenants {
		if st.Admission.Tenants[i].Name == "alice" {
			alice = &st.Admission.Tenants[i]
		}
	}
	if alice == nil || alice.Shed != 1 || alice.Admitted != 2 {
		t.Fatalf("alice stats = %+v, want admitted 2 shed 1", alice)
	}
}

// TestAdmissionQueueFull fills the cheap gate (capacity and queue)
// from the test, then proves the next request is shed immediately with
// 429 queue_full — the server never blocks past the configured
// backlog — and that a request after release succeeds byte-identically
// to the unloaded baseline.
func TestAdmissionQueueFull(t *testing.T) {
	ctl := admit.NewController(admit.Config{CheapCapacity: 1, CheapQueue: 1})
	ts := servingAdmit(t, ctl)
	url := ts.URL + "/v1/models/demo/dominators"

	_, baseline, _ := getTenant(t, url, "")

	gate := ctl.Gate(admit.Cheap)
	if _, err := gate.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	entered := make(chan struct{})
	go func() {
		close(entered)
		_, err := gate.Enter(context.Background())
		queued <- err
	}()
	<-entered
	// Wait until the helper goroutine is actually parked in the queue.
	for i := 0; ; i++ {
		if _, q := gate.Load(); q == 1 {
			break
		}
		if i > 5000 {
			t.Fatal("helper never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	code, body, retry := getTenant(t, url, "")
	if code != 429 || !strings.Contains(string(body), string(admit.ReasonQueueFull)) {
		t.Fatalf("saturated gate: code %d body %s, want 429 queue_full", code, body)
	}
	if secs, err := strconv.Atoi(retry); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", retry)
	}

	gate.Leave(0) // hands the slot to the queued helper
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	gate.Leave(0)

	code, got, _ := getTenant(t, url, "")
	if code != 200 {
		t.Fatalf("after release: code %d (%s)", code, got)
	}
	if !bytes.Equal(got, baseline) {
		t.Fatalf("admitted response diverged from baseline:\n%s\nvs\n%s", got, baseline)
	}
}

// TestAdmissionBreaker trips a model's breaker end to end: a
// nanosecond query timeout makes every admitted query fail with
// DeadlineExceeded (an OutcomeFailure), so after the threshold the
// breaker opens and the next request is shed with 503 + Retry-After
// before touching the engine.
func TestAdmissionBreaker(t *testing.T) {
	ctl := admit.NewController(admit.Config{BreakerFailures: 3, BreakerCooldown: time.Hour})
	ts := servingAdmit(t, ctl, WithQueryTimeout(time.Nanosecond))
	url := ts.URL + "/v1/models/demo/dominators"

	for i := 0; i < 3; i++ {
		if code, body, _ := getTenant(t, url, ""); code != 504 {
			t.Fatalf("request %d: code %d (%s), want 504", i, code, body)
		}
	}
	code, body, retry := getTenant(t, url, "")
	if code != 503 || !strings.Contains(string(body), string(admit.ReasonBreakerOpen)) {
		t.Fatalf("open breaker: code %d body %s, want 503 breaker_open", code, body)
	}
	if secs, err := strconv.Atoi(retry); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", retry)
	}

	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Admission == nil || len(st.Admission.Breakers) != 1 {
		t.Fatalf("stats breakers = %+v, want one", st.Admission)
	}
	if b := st.Admission.Breakers[0]; b.Model != "demo" || b.State != "open" || b.Opens != 1 {
		t.Fatalf("breaker stats = %+v, want demo open opens=1", b)
	}
}

// TestAdmissionBurstInvariants hammers a tiny gate from concurrent
// clients while the test deliberately holds the only slot for the
// first phase: every response must be either byte-identical to the
// unloaded baseline (200) or a well-formed rejection (429 with
// Retry-After), shed must be nonzero, counters must add up, and the
// goroutine count must return to baseline afterwards.
func TestAdmissionBurstInvariants(t *testing.T) {
	base := testutil.GoroutineBaseline()

	ctl := admit.NewController(admit.Config{CheapCapacity: 1, CheapQueue: 2})
	ts := servingAdmit(t, ctl)
	url := ts.URL + "/v1/models/demo/dominators"
	_, baseline, _ := getTenant(t, url, "")

	// Phase 1: the test owns the slot, so at most CheapQueue requests
	// can be waiting and everything beyond that must shed.
	gate := ctl.Gate(admit.Cheap)
	if _, err := gate.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Up to CheapQueue workers park in the gate queue while the slot
	// is held; everyone else sheds immediately, so responses keep
	// flowing. Once a quarter of the total burst has been answered
	// (all of it rejections, by construction), release the slot and
	// let the tail drain through normally.
	const workers, iters = 8, 20
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok200, shed429, other int
	released := false
	release := make(chan struct{})
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				code, body, retry := getTenant(t, url, "")
				mu.Lock()
				switch {
				case code == 200 && bytes.Equal(body, baseline):
					ok200++
				case code == 429 && retry != "":
					shed429++
				default:
					other++
					t.Errorf("code %d retry %q body %.80s", code, retry, body)
				}
				if !released && ok200+shed429+other >= workers*iters/4 {
					released = true
					close(release)
				}
				mu.Unlock()
			}
		}()
	}
	go func() {
		<-release
		gate.Leave(0)
	}()
	wg.Wait()

	if other != 0 {
		t.Fatalf("%d responses violated the identity/rejection invariant", other)
	}
	if shed429 == 0 {
		t.Fatal("nothing shed while the gate slot was held")
	}
	if ok200 == 0 {
		t.Fatal("nothing admitted after release")
	}
	if got := ok200 + shed429; got != workers*iters {
		t.Fatalf("response count %d, want %d", got, workers*iters)
	}

	// The gate must be fully drained: no stranded in-flight or waiter.
	if inflight, queued := gate.Load(); inflight != 0 || queued != 0 {
		t.Fatalf("gate not drained: inflight %d queued %d", inflight, queued)
	}
	ts.Close()
	testutil.CheckGoroutines(t.Fatalf, base, 0, 5*time.Second)
}

var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$`)
	promSample  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$`)
)

// TestMetricsEndpoint scrapes /metrics and parses every line against
// the exposition format: comments well-formed, every sample preceded
// by a TYPE for its family, no duplicate TYPE lines, and the expected
// families present with the expected labels.
func TestMetricsEndpoint(t *testing.T) {
	ctl := admit.NewController(admit.Config{
		TenantRate: 100, TenantBurst: 100,
		CheapCapacity: 4, CheapQueue: 8,
		ExpensiveCapacity: 1, ExpensiveQueue: 2,
		BreakerFailures: 5,
	})
	ts := servingAdmit(t, ctl)
	// Touch the model so tenant/model/breaker state exists.
	if code, body, _ := getTenant(t, ts.URL+"/v1/models/demo/dominators", "alice"); code != 200 {
		t.Fatalf("priming query: %d (%s)", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	typed := map[string]string{} // family -> counter|gauge|histogram
	samples := map[string]int{}
	var sampleLines []string
	for i, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			m := promComment.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed comment %q", i+1, line)
			}
			if m[1] == "TYPE" {
				typ := strings.TrimSpace(m[3])
				if typ != "counter" && typ != "gauge" && typ != "histogram" {
					t.Fatalf("line %d: bad type %q", i+1, line)
				}
				if _, dup := typed[m[2]]; dup {
					t.Fatalf("line %d: duplicate TYPE for %s", i+1, m[2])
				}
				typed[m[2]] = typ
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		if _, ok := typed[m[1]]; !ok {
			// Histogram families declare one TYPE for the base name;
			// their samples are base_bucket / base_sum / base_count.
			base := histogramBase(m[1])
			if base == "" || typed[base] != "histogram" {
				t.Fatalf("line %d: sample %s has no preceding TYPE", i+1, m[1])
			}
		}
		samples[m[1]]++
		sampleLines = append(sampleLines, line)
	}

	for _, fam := range []string{
		"hypermined_uptime_seconds", "hypermined_queries_total",
		"hypermined_errors_total", "hypermined_shed_total",
		"hypermined_models", "hypermined_model_queries_total",
		"hypermined_tenant_admitted_total", "hypermined_model_admitted_total",
		"hypermined_gate_in_flight", "hypermined_breaker_state",
		"hypermined_request_seconds_bucket", "hypermined_request_seconds_sum",
		"hypermined_request_seconds_count", "hypermined_queue_wait_seconds_bucket",
		"hypermined_phase_seconds_bucket", "hypermined_snapshot_load_seconds_bucket",
	} {
		if samples[fam] == 0 {
			t.Errorf("family %s missing or empty", fam)
		}
	}
	text := string(raw)
	for _, want := range []string{
		`hypermined_model_queries_total{model="demo"}`,
		`hypermined_tenant_admitted_total{tenant="alice"} 1`,
		`hypermined_gate_capacity{class="cheap"} 4`,
		`hypermined_gate_capacity{class="expensive"} 1`,
		`hypermined_breaker_state{model="demo"} 0`,
		`hypermined_request_seconds_bucket{kind="dominators",class="cheap",le="+Inf"} 1`,
		`hypermined_request_seconds_count{kind="dominators",class="cheap"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, strings.Join(sampleLines, "\n"))
		}
	}

	checkHistogramCoherence(t, text)
}

// histogramBase strips a histogram sample suffix, or returns "".
func histogramBase(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			return base
		}
	}
	return ""
}

var bucketLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{(.*?)le="([^"]+)"\} ([0-9]+)$`)

// checkHistogramCoherence parses every histogram series out of an
// exposition dump and checks, per series: cumulative bucket counts are
// monotone in le order (the exposition emits them in ladder order), the
// +Inf bucket equals _count, and _sum is consistent (nonnegative, and
// zero iff the count-weighted minimum allows it).
func checkHistogramCoherence(t *testing.T, text string) {
	t.Helper()
	type series struct {
		counts []uint64 // in emission order; last is +Inf
		lastLe string
	}
	buckets := map[string]*series{} // family + label prefix -> series
	counts := map[string]uint64{}
	sums := map[string]float64{}
	nHist := 0
	for _, line := range strings.Split(text, "\n") {
		if m := bucketLine.FindStringSubmatch(line); m != nil {
			key := m[1] + "|" + m[2]
			s := buckets[key]
			if s == nil {
				s = &series{}
				buckets[key] = s
			}
			v, err := strconv.ParseUint(m[4], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket value %q", line)
			}
			s.counts = append(s.counts, v)
			s.lastLe = m[3]
			nHist++
			continue
		}
		if name, rest, ok := strings.Cut(line, " "); ok {
			if base, isCount := strings.CutSuffix(strings.SplitN(name, "{", 2)[0], "_count"); isCount && !strings.HasPrefix(line, "#") {
				labels := ""
				if i := strings.IndexByte(name, '{'); i >= 0 {
					labels = strings.TrimSuffix(name[i+1:], "}")
					if labels != "" {
						labels += ","
					}
				}
				if v, err := strconv.ParseUint(rest, 10, 64); err == nil {
					counts[base+"|"+labels] = v
				}
			}
			if base, isSum := strings.CutSuffix(strings.SplitN(name, "{", 2)[0], "_sum"); isSum && !strings.HasPrefix(line, "#") {
				labels := ""
				if i := strings.IndexByte(name, '{'); i >= 0 {
					labels = strings.TrimSuffix(name[i+1:], "}")
					if labels != "" {
						labels += ","
					}
				}
				if v, err := strconv.ParseFloat(rest, 64); err == nil {
					sums[base+"|"+labels] = v
				}
			}
		}
	}
	if nHist == 0 {
		t.Fatal("no histogram bucket lines found")
	}
	for key, s := range buckets {
		for i := 1; i < len(s.counts); i++ {
			if s.counts[i] < s.counts[i-1] {
				t.Errorf("series %s: buckets not monotone at %d", key, i)
			}
		}
		if s.lastLe != "+Inf" {
			t.Errorf("series %s: last bucket le=%q, want +Inf", key, s.lastLe)
		}
		cnt, ok := counts[key]
		if !ok {
			t.Errorf("series %s: no _count sample", key)
			continue
		}
		if inf := s.counts[len(s.counts)-1]; inf != cnt {
			t.Errorf("series %s: +Inf bucket %d != count %d", key, inf, cnt)
		}
		if sum, ok := sums[key]; ok {
			if sum < 0 {
				t.Errorf("series %s: negative sum %v", key, sum)
			}
			if cnt > 0 && sum == 0 && s.counts[0] != cnt {
				t.Errorf("series %s: zero sum with observations above the first bucket", key)
			}
		} else {
			t.Errorf("series %s: no _sum sample", key)
		}
	}
}

// TestPprofGate: /debug/pprof is 404 by default and live only behind
// WithPprof(true).
func TestPprofGate(t *testing.T) {
	ts, _, _ := serving(t)
	if code := getJSON(t, ts.URL+"/debug/pprof/", nil); code != 404 {
		t.Fatalf("pprof disabled: code %d, want 404", code)
	}

	ts2 := servingAdmit(t, nil, WithPprof(true))
	resp, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof enabled: code %d, want 200", resp.StatusCode)
	}
}

// TestSlowQueryLog sets a zero-adjacent threshold so the first cold
// rules query (which really mines) must cross it, and checks the log
// line carries method, model, tenant, duration, and a rules phase
// attribution.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), nil))

	m := testModel(t, 7, 12, 500)
	reg := registry.New(registry.Options{})
	if _, err := reg.Load("demo", m); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, WithSlowQueryLog(time.Nanosecond), WithLogger(logger)).Handler())
	defer ts.Close()

	code, body, _ := getTenant(t, ts.URL+"/v1/models/demo/rules?head=A00", "ops")
	if code != 200 {
		t.Fatalf("rules query: %d (%s)", code, body)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{
		`msg="slow query"`, "level=WARN", "kind=rules", "model=demo",
		"tenant=ops", "duration=", "status=200", "rules=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow log %q missing %q", out, want)
		}
	}

	// A warm repeat hits the rule cache: still logged at this absurd
	// threshold, but with no phase work to attribute.
	mu.Lock()
	buf.Reset()
	mu.Unlock()
	if code, _, _ := getTenant(t, ts.URL+"/v1/models/demo/rules?head=A00", "ops"); code != 200 {
		t.Fatalf("warm rules query: %d", code)
	}
	mu.Lock()
	out = buf.String()
	mu.Unlock()
	if !strings.Contains(out, "phases=none") {
		t.Fatalf("warm slow log %q should attribute no phases", out)
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestRegistryLoadHook checks the breaker feed from the load path:
// a failed load reports the error, a successful load reports nil.
func TestRegistryLoadHook(t *testing.T) {
	type call struct {
		name string
		err  error
	}
	var calls []call
	reg := registry.New(registry.Options{LoadHook: func(name string, err error) {
		calls = append(calls, call{name, err})
	}})
	if _, err := reg.Load("bad", nil); err == nil {
		t.Fatal("nil model should fail to load")
	}
	if _, err := reg.Load("demo", testModel(t, 7, 8, 200)); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 {
		t.Fatalf("hook calls = %d, want 2", len(calls))
	}
	if calls[0].name != "bad" || calls[0].err == nil {
		t.Fatalf("first call = %+v, want bad with error", calls[0])
	}
	if calls[1].name != "demo" || calls[1].err != nil {
		t.Fatalf("second call = %+v, want demo with nil", calls[1])
	}
}
