// POST /v1/models/{name}:append — the HTTP face of the incremental
// mining pipeline (internal/delta via registry.AppendRowsContext). An
// append is a write that republishes: it extends the model's live
// dataset, delta-updates the mined model, and swaps in a new
// generation, so it is admission-classed expensive (it competes with
// mining-shaped work, not with warm reads), traced as kind "append",
// and timed in hypermined_append_seconds.
package server

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hypermine/internal/admit"
	"hypermine/internal/registry"
	"hypermine/internal/table"
	"hypermine/internal/telemetry"
)

// maxAppendBytes bounds an :append body. Appends are incremental by
// design; a batch approaching this bound should be a snapshot re-mine
// instead.
const maxAppendBytes = 256 << 20

// appendRequest is the JSON body of :append. Exactly one of Rows
// (row-major: each inner slice is one observation across all
// attributes, in schema order) or Columns (column-major: columns[j]
// holds the appended values of attribute j) may be set; an empty body
// of either shape is a valid no-op append. text/csv bodies bypass this
// struct entirely (see readAppendCSV).
type appendRequest struct {
	Rows    [][]int `json:"rows,omitempty"`
	Columns [][]int `json:"columns,omitempty"`
}

// appendResponse reports a published (or no-op) append.
type appendResponse struct {
	Name       string `json:"name"`
	Generation int64  `json:"generation"`
	Appended   int    `json:"appended"`
	Rows       int    `json:"rows"`
	Edges      int    `json:"edges"`
	// Swapped is false for a no-op append (zero rows): the serving
	// generation already answers for the identical table.
	Swapped bool `json:"swapped"`
	// SharedEdges counts hyperedges structurally shared with the
	// previous generation; FullRebuild reports the count-table fallback.
	SharedEdges int      `json:"shared_edges"`
	FullRebuild bool     `json:"full_rebuild"`
	Evicted     []string `json:"evicted,omitempty"`
}

// handleAppend serves POST /v1/models/{name}:append, dispatched from
// the handleQuery catch-all. The body is JSON rows/columns or text/csv
// (header must match the model's attribute schema).
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request, name string) {
	var act *telemetry.Active
	start := time.Now()
	if s.tracer != nil {
		id, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
		act = s.tracer.Start(id, "append", name, r.Header.Get("X-Tenant"))
		w.Header().Set("X-Trace-Id", act.TraceID().String())
	}
	finish := func(status int, errMsg string) {
		if s.tracer != nil {
			s.tracer.Finish(act, time.Since(start), status, errMsg)
		}
	}

	// Appends compete for the expensive cost class: they run mining
	// kernels and engine rebuilds, so under overload they queue and shed
	// like mining-shaped queries instead of starving cheap reads.
	var tk admit.Ticket
	if s.admission != nil {
		_, rej, err := s.admission.AdmitInto(r.Context(), &tk, r.Header.Get("X-Tenant"), name, admit.Expensive)
		if err != nil {
			if s.failCtx(w, err) {
				finish(ctxStatus(err), err.Error())
				return
			}
			finish(http.StatusInternalServerError, err.Error())
			s.fail(w, http.StatusInternalServerError, "admission: %v", err)
			return
		}
		if rej != nil {
			finish(rej.Status, "overloaded: "+string(rej.Reason))
			s.reject(w, rej)
			return
		}
	}

	rows, cols, err := s.decodeAppendBody(w, r, name)
	if err != nil {
		tk.Done(admit.OutcomeOK) // a malformed body is not a model fault
		// decodeAppendBody already wrote the response; an aborted upload
		// surfaces as a body read error and reports as its context
		// outcome there too.
		finish(appendStatus(err), err.Error())
		return
	}

	var info *registry.AppendInfo
	if cols != nil {
		info, err = s.reg.AppendRawContext(r.Context(), name, cols)
	} else {
		info, err = s.reg.AppendRowsContext(r.Context(), name, rows)
	}
	tk.Done(appendOutcome(err))
	if err != nil {
		status := appendStatus(err)
		finish(status, err.Error())
		if s.failCtx(w, err) {
			return
		}
		s.fail(w, status, "append: %v", err)
		return
	}

	elapsed := time.Since(start)
	s.appendHist.Observe(elapsed)
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "append published",
		slog.String("trace_id", act.TraceID().String()),
		slog.String("kind", "append"),
		slog.String("model", name),
		slog.Int64("generation", info.Generation),
		slog.Int("appended", info.Appended),
		slog.Int("rows", info.Rows),
		slog.Int("edges", info.Edges),
		slog.Bool("swapped", info.Swapped),
		slog.Bool("full_rebuild", info.FullRebuild),
		slog.Duration("duration", elapsed.Round(time.Microsecond)))
	finish(http.StatusOK, "")
	w.Header().Set("X-Model-Generation", strconv.FormatInt(info.Generation, 10))
	s.writeJSON(w, http.StatusOK, appendResponse{
		Name:        name,
		Generation:  info.Generation,
		Appended:    info.Appended,
		Rows:        info.Rows,
		Edges:       info.Edges,
		Swapped:     info.Swapped,
		SharedEdges: info.SharedEdges,
		FullRebuild: info.FullRebuild,
		Evicted:     info.Evicted,
	})
}

// decodeAppendBody parses the :append body into row-major values or
// column-major raw bytes (exactly one is non-nil on success; both nil
// means an explicit empty no-op). On error the response has already
// been written.
func (s *Server) decodeAppendBody(w http.ResponseWriter, r *http.Request, name string) ([][]table.Value, [][]byte, error) {
	body := http.MaxBytesReader(w, r.Body, maxAppendBytes)
	ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";")
	if strings.TrimSpace(ct) == "text/csv" {
		rows, err := s.readAppendCSV(w, r, body, name)
		return rows, nil, err
	}
	var req appendRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if ctxErr := r.Context().Err(); ctxErr != nil && s.failCtx(w, ctxErr) {
			return nil, nil, ctxErr
		}
		s.fail(w, http.StatusBadRequest, "body: %v", err)
		return nil, nil, err
	}
	if len(req.Rows) > 0 && len(req.Columns) > 0 {
		err := errors.New("body sets both rows and columns")
		s.fail(w, http.StatusBadRequest, "%v", err)
		return nil, nil, err
	}
	if len(req.Columns) > 0 {
		cols := make([][]byte, len(req.Columns))
		for j, col := range req.Columns {
			cols[j] = make([]byte, len(col))
			for i, v := range col {
				if v < 1 || v > table.MaxK {
					err := errors.New("column value outside 1..255")
					s.fail(w, http.StatusBadRequest, "columns[%d][%d]: value %d outside 1..%d", j, i, v, table.MaxK)
					return nil, nil, err
				}
				cols[j][i] = byte(v)
			}
		}
		return nil, cols, nil
	}
	rows := make([][]table.Value, len(req.Rows))
	for i, row := range req.Rows {
		rows[i] = make([]table.Value, len(row))
		for j, v := range row {
			if v < 1 || v > table.MaxK {
				err := errors.New("row value outside 1..255")
				s.fail(w, http.StatusBadRequest, "rows[%d][%d]: value %d outside 1..%d", i, j, v, table.MaxK)
				return nil, nil, err
			}
			rows[i][j] = table.Value(v)
		}
	}
	return rows, nil, nil
}

// readAppendCSV parses a text/csv :append body: a header row naming
// the model's attributes in schema order, then one record per appended
// observation. The header is checked against the serving model so a
// column-order mistake is a 400, not silently transposed data.
func (s *Server) readAppendCSV(w http.ResponseWriter, r *http.Request, body io.Reader, name string) ([][]table.Value, error) {
	sv := s.reg.Peek(name)
	if sv == nil {
		err := errors.New("unknown model")
		s.fail(w, http.StatusNotFound, "unknown model %q", name)
		return nil, err
	}
	attrs := sv.Model().Table.Attrs()
	k := sv.Model().Table.K()
	sv.Release()

	tb, err := table.ReadCSV(body, k)
	if err != nil {
		if ctxErr := r.Context().Err(); ctxErr != nil && s.failCtx(w, ctxErr) {
			return nil, ctxErr
		}
		s.fail(w, http.StatusBadRequest, "csv: %v", err)
		return nil, err
	}
	got := tb.Attrs()
	if len(got) != len(attrs) {
		err := errors.New("csv header width mismatch")
		s.fail(w, http.StatusBadRequest, "csv: header has %d columns, model has %d attributes", len(got), len(attrs))
		return nil, err
	}
	for j := range got {
		if got[j] != attrs[j] {
			err := errors.New("csv header mismatch")
			s.fail(w, http.StatusBadRequest, "csv: header column %d is %q, model attribute is %q", j, got[j], attrs[j])
			return nil, err
		}
	}
	rows := make([][]table.Value, tb.NumRows())
	for i := range rows {
		rows[i] = tb.Row(i, nil)
	}
	return rows, nil
}

// appendStatus maps an append error to its HTTP status: context
// outcomes keep 504/499, unknown model is 404, a lost admin race is
// 409, and anything else (malformed rows, width/value mismatches) is
// 400 — appends never half-apply, so a failed append left the serving
// model untouched.
func appendStatus(err error) int {
	if code := ctxStatus(err); code != 0 {
		return code
	}
	switch {
	case errors.Is(err, registry.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, registry.ErrConflict):
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

// appendOutcome classifies an append error for the model's circuit
// breaker, mirroring outcomeOf: client-shaped rejections (bad rows,
// unknown model, lost race) mean the pipeline worked; a deadline expiry
// mid-delta is a model failure; a client hangup is neutral.
func appendOutcome(err error) admit.Outcome {
	if err == nil {
		return admit.OutcomeOK
	}
	switch appendStatus(err) {
	case StatusClientClosedRequest:
		return admit.OutcomeCanceled
	case http.StatusGatewayTimeout:
		return admit.OutcomeFailure
	}
	return admit.OutcomeOK
}
