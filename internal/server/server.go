// Package server implements the hypermined HTTP/JSON query API over a
// registry of served models. Handlers are allocation-conscious: the
// classification path borrows a scratch-reusing predictor from the
// served model's pool, so steady-state queries allocate only for
// request decode and response encode.
//
// Endpoints:
//
//	GET    /healthz                          liveness
//	GET    /stats                            process + registry counters
//	GET    /v1/models                        list resident models
//	GET    /v1/models/{name}                 model detail (schema, dominator, targets)
//	PUT    /v1/models/{name}                 upload a binary snapshot (load or hot-swap)
//	DELETE /v1/models/{name}                 unload
//	GET    /v1/models/{name}/rules           mva-type rules for a head attribute
//	GET    /v1/models/{name}/similar         pair similarity or top-N ranking
//	GET    /v1/models/{name}/dominators      the serving dominator
//	POST   /v1/models/{name}/classify        classify one observation
//	POST   /v1/models/{name}/classify:batch  classify many observations
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"hypermine/internal/classify"
	"hypermine/internal/core"
	"hypermine/internal/registry"
	"hypermine/internal/similarity"
	"hypermine/internal/table"
)

// maxSnapshotBytes bounds a PUT body (1 GiB — far beyond any model
// this system mines, but finite).
const maxSnapshotBytes = 1 << 30

// StatusClientClosedRequest is the nginx 499 convention: the client
// went away before the handler finished, so the in-flight work was
// abandoned. The status never reaches that client — it exists so
// logs, metrics, and tests can tell "client hung up" (not our fault)
// from 504 "server-side query deadline expired" and from 5xx real
// faults.
const StatusClientClosedRequest = 499

// Server is the query API over a model registry. Handlers run under
// the request context: a client disconnect or an expired query
// deadline aborts rule mining, snapshot preparation, and batch
// classification mid-flight instead of burning CPU on an answer
// nobody will read.
type Server struct {
	reg          *registry.Registry
	mux          *http.ServeMux
	start        time.Time
	queryTimeout time.Duration
	queries      atomic.Int64
	errs         atomic.Int64
	timeouts     atomic.Int64
	canceled     atomic.Int64
}

// Option configures a Server.
type Option func(*Server)

// WithQueryTimeout bounds every *query* request's handling time: the
// request context gets a deadline of d, and a query that exceeds it
// is abandoned with 504 Gateway Timeout. d <= 0 means no bound.
// Admin operations (PUT snapshot upload/hot-swap, DELETE unload) are
// exempt — a timeout sized for microsecond classify queries must not
// make loading a non-trivial model permanently impossible; uploads
// are still aborted when the client itself goes away.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// New returns a Server over the registry.
func New(reg *registry.Registry, opts ...Option) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now()}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/models", s.handleListModels)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleGetModel)
	s.mux.HandleFunc("PUT /v1/models/{name}", s.handlePutModel)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.handleDeleteModel)
	s.mux.HandleFunc("GET /v1/models/{name}/rules", s.handleRules)
	s.mux.HandleFunc("GET /v1/models/{name}/similar", s.handleSimilar)
	s.mux.HandleFunc("GET /v1/models/{name}/dominators", s.handleDominators)
	s.mux.HandleFunc("POST /v1/models/{name}/classify", s.handleClassify)
	s.mux.HandleFunc("POST /v1/models/{name}/classify:batch", s.handleClassifyBatch)
	return s
}

// Handler returns the HTTP handler. When a query timeout is
// configured, every query request's context carries that deadline;
// admin writes (PUT/DELETE) run unbounded (see WithQueryTimeout).
func (s *Server) Handler() http.Handler {
	if s.queryTimeout <= 0 {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut || r.Method == http.MethodDelete {
			s.mux.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout)
		defer cancel()
		s.mux.ServeHTTP(w, r.WithContext(ctx))
	})
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errs.Add(1)
	s.writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// failCtx maps a context-shaped failure to its distinct status —
// 504 for an expired server-side query deadline, 499 for a client
// that went away — and reports whether it handled err. Neither case
// counts as a server error: they land in the timeouts / canceled
// counters instead of errs. Handlers fall through to their normal
// error mapping when failCtx returns false.
func (s *Server) failCtx(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		s.writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "query deadline exceeded"})
		return true
	case errors.Is(err, context.Canceled):
		s.canceled.Add(1)
		s.writeJSON(w, StatusClientClosedRequest, errorBody{Error: "request canceled by client"})
		return true
	}
	return false
}

// acquire resolves the named model or writes a 404.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) *registry.Served {
	name := r.PathValue("name")
	sv := s.reg.Acquire(name)
	if sv == nil {
		s.fail(w, http.StatusNotFound, "unknown model %q", name)
		return nil
	}
	s.queries.Add(1)
	sv.CountQuery()
	return sv
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Queries       int64   `json:"queries"`
	Errors        int64   `json:"errors"`
	// Timeouts counts queries abandoned at the server-side deadline
	// (504); Canceled counts queries abandoned because the client went
	// away (499). Neither is a server fault, so they are not Errors.
	Timeouts   int64          `json:"timeouts"`
	Canceled   int64          `json:"canceled"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Registry   registry.Stats `json:"registry"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Queries:       s.queries.Load(),
		Errors:        s.errs.Load(),
		Timeouts:      s.timeouts.Load(),
		Canceled:      s.canceled.Load(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Registry:      s.reg.Stats(),
	})
}

// modelSummary is one row of the model list.
type modelSummary struct {
	Name       string `json:"name"`
	Generation int64  `json:"generation"`
	Attrs      int    `json:"attrs"`
	Edges      int    `json:"edges"`
	Rows       int    `json:"rows"`
	K          int    `json:"k"`
	Classify   bool   `json:"classify"`
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	out := make([]modelSummary, 0, len(names))
	for _, name := range names {
		// Peek, not Acquire: a monitoring poll of the model list must
		// not refresh every model's LRU stamp.
		sv := s.reg.Peek(name)
		if sv == nil {
			continue // evicted between Names and Peek
		}
		_, classifyErr := sv.Classifier()
		out = append(out, modelSummary{
			Name:       name,
			Generation: sv.Generation(),
			Attrs:      sv.Model().Table.NumAttrs(),
			Edges:      sv.Model().H.NumEdges(),
			Rows:       sv.Model().Table.NumRows(),
			K:          sv.Model().Table.K(),
			Classify:   classifyErr == nil,
		})
		sv.Release()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

type modelDetail struct {
	modelSummary
	Dominator []string  `json:"dominator"`
	Targets   []string  `json:"targets"`
	Coverage  float64   `json:"coverage"`
	LoadedAt  time.Time `json:"loaded_at"`
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	sv := s.acquire(w, r)
	if sv == nil {
		return
	}
	defer sv.Release()
	m := sv.Model()
	_, classifyErr := sv.Classifier()
	det := modelDetail{
		modelSummary: modelSummary{
			Name:       sv.Name(),
			Generation: sv.Generation(),
			Attrs:      m.Table.NumAttrs(),
			Edges:      m.H.NumEdges(),
			Rows:       m.Table.NumRows(),
			K:          m.Table.K(),
			Classify:   classifyErr == nil,
		},
		Coverage: sv.Dominator().CoverageFraction(),
		LoadedAt: sv.LoadedAt(),
	}
	for _, v := range sv.Dominator().DomSet {
		det.Dominator = append(det.Dominator, m.H.VertexName(v))
	}
	for _, v := range sv.Targets() {
		det.Targets = append(det.Targets, m.H.VertexName(v))
	}
	s.writeJSON(w, http.StatusOK, det)
}

type putResponse struct {
	Name       string   `json:"name"`
	Generation int64    `json:"generation"`
	Swapped    bool     `json:"swapped"`
	Evicted    []string `json:"evicted,omitempty"`
	Edges      int      `json:"edges"`
	Rows       int      `json:"rows"`
}

func (s *Server) handlePutModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, maxSnapshotBytes)
	m, err := core.ReadSnapshot(body)
	if err != nil {
		// An aborted upload surfaces as a body read error; report it as
		// the context outcome, not a malformed snapshot.
		if ctxErr := r.Context().Err(); ctxErr != nil && s.failCtx(w, ctxErr) {
			return
		}
		s.fail(w, http.StatusBadRequest, "snapshot: %v", err)
		return
	}
	info, err := s.reg.LoadContext(r.Context(), name, m)
	if err != nil {
		if s.failCtx(w, err) {
			return
		}
		s.fail(w, http.StatusUnprocessableEntity, "load: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, putResponse{
		Name:       name,
		Generation: info.Generation,
		Swapped:    info.Swapped,
		Evicted:    info.Evicted,
		Edges:      m.H.NumEdges(),
		Rows:       m.Table.NumRows(),
	})
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Remove(name) {
		s.fail(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

type ruleResponse struct {
	Rule       string  `json:"rule"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	sv := s.acquire(w, r)
	if sv == nil {
		return
	}
	defer sv.Release()
	m := sv.Model()
	headName := r.URL.Query().Get("head")
	head := m.Table.AttrIndex(headName)
	if head < 0 {
		s.fail(w, http.StatusBadRequest, "unknown head attribute %q", headName)
		return
	}
	opt := core.MineOptions{MaxRules: 10}
	var err error
	if v := r.URL.Query().Get("top"); v != "" {
		if opt.MaxRules, err = strconv.Atoi(v); err != nil || opt.MaxRules < 1 {
			s.fail(w, http.StatusBadRequest, "bad top %q", v)
			return
		}
	}
	if v := r.URL.Query().Get("min_support"); v != "" {
		if opt.MinSupport, err = strconv.ParseFloat(v, 64); err != nil {
			s.fail(w, http.StatusBadRequest, "bad min_support %q", v)
			return
		}
	}
	if v := r.URL.Query().Get("min_confidence"); v != "" {
		if opt.MinConfidence, err = strconv.ParseFloat(v, 64); err != nil {
			s.fail(w, http.StatusBadRequest, "bad min_confidence %q", v)
			return
		}
	}
	// Rule mining rebuilds association tables from the training rows —
	// the most expensive query this server runs — so it works under the
	// request context: a disconnect or query deadline aborts it.
	rules, err := core.MineRulesContext(r.Context(), m, head, opt)
	if err != nil {
		if s.failCtx(w, err) {
			return
		}
		s.fail(w, http.StatusConflict, "%v", err)
		return
	}
	out := make([]ruleResponse, len(rules))
	for i, sr := range rules {
		out[i] = ruleResponse{
			Rule:       core.FormatRule(m.Table, sr.Rule),
			Support:    sr.Support,
			Confidence: sr.Confidence,
			Lift:       sr.Lift,
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"head": headName, "rules": out})
}

type similarPair struct {
	A        string  `json:"a"`
	B        string  `json:"b"`
	InSim    float64 `json:"in_sim"`
	OutSim   float64 `json:"out_sim"`
	Distance float64 `json:"distance"`
}

type neighbor struct {
	Name     string  `json:"name"`
	Distance float64 `json:"distance"`
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	sv := s.acquire(w, r)
	if sv == nil {
		return
	}
	defer sv.Release()
	h := sv.Model().H
	q := r.URL.Query()
	aName := q.Get("a")
	a := h.Vertex(aName)
	if a < 0 {
		s.fail(w, http.StatusBadRequest, "unknown attribute %q", aName)
		return
	}
	if bName := q.Get("b"); bName != "" {
		b := h.Vertex(bName)
		if b < 0 {
			s.fail(w, http.StatusBadRequest, "unknown attribute %q", bName)
			return
		}
		s.writeJSON(w, http.StatusOK, similarPair{
			A:        aName,
			B:        bName,
			InSim:    similarity.InSim(h, a, b),
			OutSim:   similarity.OutSim(h, a, b),
			Distance: sv.SimilarityGraph().Dist(a, b),
		})
		return
	}
	top := 10
	if v := q.Get("top"); v != "" {
		var err error
		if top, err = strconv.Atoi(v); err != nil || top < 1 {
			s.fail(w, http.StatusBadRequest, "bad top %q", v)
			return
		}
	}
	// Ranking reads the cached similarity graph: no similarity math on
	// the request path.
	g := sv.SimilarityGraph()
	neighbors := make([]neighbor, 0, h.NumVertices()-1)
	for v := 0; v < h.NumVertices(); v++ {
		if v == a {
			continue
		}
		neighbors = append(neighbors, neighbor{Name: h.VertexName(v), Distance: g.Dist(a, v)})
	}
	sort.SliceStable(neighbors, func(i, j int) bool { return neighbors[i].Distance < neighbors[j].Distance })
	if top < len(neighbors) {
		neighbors = neighbors[:top]
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"a": aName, "neighbors": neighbors})
}

func (s *Server) handleDominators(w http.ResponseWriter, r *http.Request) {
	sv := s.acquire(w, r)
	if sv == nil {
		return
	}
	defer sv.Release()
	m := sv.Model()
	res := sv.Dominator()
	dom := make([]string, len(res.DomSet))
	for i, v := range res.DomSet {
		dom[i] = m.H.VertexName(v)
	}
	targets := make([]string, len(sv.Targets()))
	for i, v := range sv.Targets() {
		targets[i] = m.H.VertexName(v)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"dominator":  dom,
		"targets":    targets,
		"coverage":   res.CoverageFraction(),
		"iterations": res.Iterations,
	})
}

type classifyRequest struct {
	Target string         `json:"target"`
	Values map[string]int `json:"values"`
}

type classifyResponse struct {
	Target     string  `json:"target"`
	Value      int     `json:"value"`
	Confidence float64 `json:"confidence"`
}

// resolveClassify turns a classify request into (target id, dominator
// values in Dominator() order). The caller has already established the
// classifier is available.
func resolveClassify(sv *registry.Served, abc *classify.ABC, req *classifyRequest) (int, []table.Value, error) {
	m := sv.Model()
	target, err := resolveTarget(sv, req.Target)
	if err != nil {
		return 0, nil, err
	}
	dom := abc.Dominator()
	domVals := make([]table.Value, len(dom))
	k := m.Table.K()
	for i, a := range dom {
		name := m.H.VertexName(a)
		v, ok := req.Values[name]
		if !ok {
			return 0, nil, fmt.Errorf("missing value for dominator attribute %q", name)
		}
		if v < 1 || v > k {
			return 0, nil, fmt.Errorf("value %d for %q outside 1..%d", v, name, k)
		}
		domVals[i] = table.Value(v)
	}
	return target, domVals, nil
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	sv := s.acquire(w, r)
	if sv == nil {
		return
	}
	defer sv.Release()
	var req classifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "body: %v", err)
		return
	}
	abc, err := sv.Classifier()
	if err != nil {
		s.fail(w, http.StatusConflict, "%v", err)
		return
	}
	target, domVals, err := resolveClassify(sv, abc, &req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := sv.BorrowPredictor()
	if err != nil {
		s.fail(w, http.StatusConflict, "%v", err)
		return
	}
	v, conf, err := p.Predict(domVals, target)
	sv.ReturnPredictor(p)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, classifyResponse{Target: req.Target, Value: int(v), Confidence: conf})
}

// resolveTarget maps a target attribute name to its id, requiring it
// to be one of the model's classifiable targets — asking for a
// dominator member or an uncovered attribute is a client error, not a
// predictor fault.
func resolveTarget(sv *registry.Served, name string) (int, error) {
	target := sv.Model().Table.AttrIndex(name)
	if target < 0 {
		return 0, fmt.Errorf("unknown target attribute %q", name)
	}
	for _, t := range sv.Targets() {
		if t == target {
			return target, nil
		}
	}
	return 0, fmt.Errorf("attribute %q is not a classifiable target (see the model's targets list)", name)
}

type classifyBatchRequest struct {
	Target string  `json:"target"`
	Rows   [][]int `json:"rows"`
}

type classifyBatchResponse struct {
	Target      string    `json:"target"`
	Values      []int     `json:"values"`
	Confidences []float64 `json:"confidences"`
}

func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	sv := s.acquire(w, r)
	if sv == nil {
		return
	}
	defer sv.Release()
	var req classifyBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "body: %v", err)
		return
	}
	abc, err := sv.Classifier()
	if err != nil {
		s.fail(w, http.StatusConflict, "%v", err)
		return
	}
	m := sv.Model()
	target, err := resolveTarget(sv, req.Target)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	dom := abc.Dominator()
	if len(req.Rows) == 0 {
		s.fail(w, http.StatusBadRequest, "empty rows")
		return
	}
	k := m.Table.K()
	domVals := make([]table.Value, 0, len(req.Rows)*len(dom))
	for i, row := range req.Rows {
		if len(row) != len(dom) {
			s.fail(w, http.StatusBadRequest, "row %d has %d values, want %d (dominator order)", i, len(row), len(dom))
			return
		}
		for j, v := range row {
			if v < 1 || v > k {
				s.fail(w, http.StatusBadRequest, "row %d value %d for %q outside 1..%d", i, v, m.H.VertexName(dom[j]), k)
				return
			}
			domVals = append(domVals, table.Value(v))
		}
	}
	out := make([]table.Value, len(req.Rows))
	conf := make([]float64, len(req.Rows))
	p, err := sv.BorrowPredictor()
	if err != nil {
		s.fail(w, http.StatusConflict, "%v", err)
		return
	}
	err = p.PredictBatchContext(r.Context(), domVals, target, out, conf)
	sv.ReturnPredictor(p)
	if err != nil {
		if s.failCtx(w, err) {
			return
		}
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := classifyBatchResponse{Target: req.Target, Values: make([]int, len(out)), Confidences: conf}
	for i, v := range out {
		resp.Values[i] = int(v)
	}
	s.writeJSON(w, http.StatusOK, resp)
}
