// Package server implements the hypermined HTTP/JSON query API over a
// registry of served models. Every query handler is a thin transport
// shim over the prepared-model engine: decode the request into a typed
// engine.Request, run it through Engine.Do, encode the variant's
// payload. HTTP clients and in-process Go callers therefore execute
// identical query code, and the multiplexed :query endpoint serves
// mixed batches (rules + similarity + classification) in one round
// trip.
//
// Endpoints:
//
//	GET    /healthz                          liveness (process is up)
//	GET    /readyz                           readiness (node can serve correctly now)
//	GET    /stats                            process + registry + engine counters
//	GET    /v1/models                        list resident models
//	GET    /v1/models/{name}                 model detail (schema, dominator, targets)
//	PUT    /v1/models/{name}                 upload a binary snapshot (load or hot-swap)
//	DELETE /v1/models/{name}                 unload
//	GET    /v1/models/{name}/rules           mva-type rules for a head attribute
//	GET    /v1/models/{name}/similar         pair similarity or top-N ranking
//	GET    /v1/models/{name}/dominators      the serving dominator
//	POST   /v1/models/{name}/classify        classify one observation
//	POST   /v1/models/{name}/classify:batch  classify many observations
//	POST   /v1/models/{name}:query           typed engine.Request (incl. mixed batches)
//	POST   /v1/models/{name}:append          append rows, delta-update, republish
//
// Every model-scoped response that answers for a specific published
// model carries an X-Model-Generation header naming the registry
// generation that produced it, so clients interleaving queries with
// :append can attribute each answer to exactly one generation.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hypermine/internal/admit"
	"hypermine/internal/core"
	"hypermine/internal/engine"
	"hypermine/internal/registry"
	"hypermine/internal/runopt"
	"hypermine/internal/telemetry"
)

// maxSnapshotBytes bounds a PUT body (1 GiB — far beyond any model
// this system mines, but finite).
const maxSnapshotBytes = 1 << 30

// maxQueryBytes bounds a :query body: even a large mixed batch of
// typed requests is far under a megabyte.
const maxQueryBytes = 8 << 20

// StatusClientClosedRequest is the nginx 499 convention: the client
// went away before the handler finished, so the in-flight work was
// abandoned. The status never reaches that client — it exists so
// logs, metrics, and tests can tell "client hung up" (not our fault)
// from 504 "server-side query deadline expired" and from 5xx real
// faults.
const StatusClientClosedRequest = 499

// Server is the query API over a model registry. Handlers run under
// the request context: a client disconnect or an expired query
// deadline aborts rule mining, lazy artifact builds, and batch
// classification mid-flight instead of burning CPU on an answer
// nobody will read.
type Server struct {
	reg          *registry.Registry
	mux          *http.ServeMux
	start        time.Time
	queryTimeout time.Duration
	admission    *admit.Controller
	pprofOn      bool
	slowQuery    time.Duration
	logger       *slog.Logger
	tracer       *telemetry.Tracer

	// tel is the shared counter/histogram registry: /stats and
	// /metrics are both generated from it, so the two surfaces cannot
	// drift. The named fields below are the same counters, kept as
	// direct pointers so hot paths skip any lookup.
	tel      *telemetry.Registry
	queries  *telemetry.Counter
	errs     *telemetry.Counter
	timeouts *telemetry.Counter
	canceled *telemetry.Counter
	shed     *telemetry.Counter

	reqHist    [len(queryKinds)][numClasses]*telemetry.Histogram
	queueHist  [numClasses]*telemetry.Histogram
	phaseHist  map[runopt.Phase]*telemetry.Histogram
	snapHist   *telemetry.Histogram
	appendHist *telemetry.Histogram

	obsPool sync.Pool // *reqObs

	// readyFn backs GET /readyz (nil = always ready); extraStats and
	// extraMetrics are embedder extension points merged into /stats and
	// /metrics. All three are installed by embedders (the fleet node)
	// between New and serving traffic, via atomics so a scrape racing
	// installation stays defined.
	readyFn      atomic.Pointer[func() error]
	extraStats   atomic.Pointer[[]statsSection]
	extraMetrics atomic.Pointer[[]func(w io.Writer)]
}

// statsSection is one embedder-registered /stats key.
type statsSection struct {
	key string
	fn  func() any
}

// numClasses mirrors the admission cost-class count (cheap, expensive).
const numClasses = 2

// queryKinds is the request-variant vocabulary of the query funnel,
// used to label the per-kind latency histograms. "other" catches
// malformed requests that name no variant.
var queryKinds = [...]string{"rules", "similar", "dominators", "classify", "batch", "other"}

// kindIndex maps a request to its queryKinds slot.
func kindIndex(req *engine.Request) int {
	switch {
	case req == nil:
		return len(queryKinds) - 1
	case req.Rules != nil:
		return 0
	case req.Similar != nil:
		return 1
	case req.Dominators != nil:
		return 2
	case req.Classify != nil:
		return 3
	case req.Batch != nil:
		return 4
	}
	return len(queryKinds) - 1
}

// Option configures a Server.
type Option func(*Server)

// WithQueryTimeout bounds every *query* request's handling time: the
// request context gets a deadline of d, and a query that exceeds it
// is abandoned with 504 Gateway Timeout. d <= 0 means no bound.
// Admin operations (PUT snapshot upload/hot-swap, DELETE unload) are
// exempt — a timeout sized for microsecond classify queries must not
// make loading a non-trivial model permanently impossible; uploads
// are still aborted when the client itself goes away.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// WithAdmission puts an admission controller in front of every query:
// each request through the do() funnel is checked against the
// per-model circuit breaker, the per-tenant (X-Tenant header) and
// per-model token buckets, and the cost-class concurrency gate before
// it reaches Engine.Do. Shed requests get 429/503 with a Retry-After
// header; admitted requests feed their outcome back to the breaker.
// Metadata endpoints (model list/detail) and admin writes are exempt.
// nil disables admission (the default).
func WithAdmission(c *admit.Controller) Option {
	return func(s *Server) { s.admission = c }
}

// WithPprof mounts net/http/pprof under GET /debug/pprof/ when
// enabled. Off by default: profiling endpoints leak operational detail
// and cost CPU, so they are opt-in (hypermined -pprof).
func WithPprof(enabled bool) Option {
	return func(s *Server) { s.pprofOn = enabled }
}

// WithSlowQueryLog logs every query whose handling exceeds threshold
// as a structured slog event carrying trace_id, kind (request
// variant), model, tenant, total duration, and per-phase attribution
// from the engine's build sites (phases=none means the time went to
// warm reads, not artifact builds). When tracing is enabled the event
// also pins its trace in the retention ring, so the logged trace_id is
// resolvable at /debug/traces. threshold <= 0 disables the log; the
// destination is the server logger (WithLogger).
func WithSlowQueryLog(threshold time.Duration) Option {
	return func(s *Server) { s.slowQuery = threshold }
}

// WithLogger sets the structured logger for every server-emitted log
// line (slow queries, snapshot loads/unloads). Default slog.Default().
func WithLogger(logger *slog.Logger) Option {
	return func(s *Server) {
		if logger != nil {
			s.logger = logger
		}
	}
}

// WithTracer enables request tracing: every query through the do()
// funnel gets a trace ID (minted, or adopted from an inbound W3C
// traceparent header), echoed as X-Trace-Id; engine phase spans attach
// to the trace; slow, errored, shed, and pinned traces are always
// retained in the tracer's ring and served at GET /debug/traces
// (mounted only when tracing is on, like pprof). nil disables tracing
// (the default): no trace IDs, no /debug/traces.
func WithTracer(t *telemetry.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// New returns a Server over the registry.
func New(reg *registry.Registry, opts ...Option) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now(), logger: slog.Default()}
	for _, o := range opts {
		o(s)
	}
	s.initTelemetry()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.tracer != nil {
		s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	}
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.pprofOn {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux.HandleFunc("GET /v1/models", s.handleListModels)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleGetModel)
	s.mux.HandleFunc("PUT /v1/models/{name}", s.handlePutModel)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.handleDeleteModel)
	s.mux.HandleFunc("GET /v1/models/{name}/rules", s.handleRules)
	s.mux.HandleFunc("GET /v1/models/{name}/similar", s.handleSimilar)
	s.mux.HandleFunc("GET /v1/models/{name}/dominators", s.handleDominators)
	s.mux.HandleFunc("POST /v1/models/{name}/classify", s.handleClassify)
	s.mux.HandleFunc("POST /v1/models/{name}/classify:batch", s.handleClassifyBatch)
	// ":query" and ":append" are not path segments of their own, so
	// the ServeMux wildcard grammar cannot name them directly; a
	// catch-all picks up "{name}:query" / "{name}:append" and rejects
	// everything else. The literal patterns above are more specific
	// and keep winning.
	s.mux.HandleFunc("POST /v1/models/{rest...}", s.handleQuery)
	return s
}

// initTelemetry builds the shared counter/histogram registry. Every
// counter carries both its Prometheus family name and its /stats JSON
// key, and both endpoints iterate the same registration — that is the
// anti-drift contract the parity test pins.
func (s *Server) initTelemetry() {
	s.tel = telemetry.NewRegistry()
	s.queries = s.tel.Counter("hypermined_queries_total", "queries",
		"Queries accepted by the API, counted before admission control.")
	s.errs = s.tel.Counter("hypermined_errors_total", "errors",
		"Requests that failed with a client or server error.")
	s.timeouts = s.tel.Counter("hypermined_timeouts_total", "timeouts",
		"Queries abandoned at the server-side deadline (504).")
	s.canceled = s.tel.Counter("hypermined_canceled_total", "canceled",
		"Queries abandoned because the client went away (499).")
	s.shed = s.tel.Counter("hypermined_shed_total", "shed",
		"Requests rejected by admission control (429 and 503).")

	classes := [numClasses]admit.Class{admit.Cheap, admit.Expensive}
	for ki, kind := range queryKinds {
		for ci, class := range classes {
			s.reqHist[ki][ci] = s.tel.Histogram("hypermined_request_seconds",
				"Query latency through the query funnel (admission wait + engine), per request kind and cost class.",
				`kind="`+kind+`",class="`+class.String()+`"`)
		}
	}
	for ci, class := range classes {
		s.queueHist[ci] = s.tel.Histogram("hypermined_queue_wait_seconds",
			"Time admitted queries spent waiting in a concurrency-gate queue (only real waits are observed).",
			`class="`+class.String()+`"`)
	}
	s.phaseHist = make(map[runopt.Phase]*telemetry.Histogram)
	for _, ph := range []runopt.Phase{
		runopt.PhaseEdges, runopt.PhasePairs, runopt.PhaseTriples,
		runopt.PhaseSimilarity, runopt.PhaseDominator, runopt.PhaseApriori,
		runopt.PhaseRules, runopt.PhaseFolds, runopt.PhaseIndex, runopt.PhaseClassifier,
	} {
		s.phaseHist[ph] = s.tel.Histogram("hypermined_phase_seconds",
			"Time spent in engine pipeline phases (artifact builds and rule mining), per phase.",
			`phase="`+string(ph)+`"`)
	}
	s.snapHist = s.tel.Histogram("hypermined_snapshot_load_seconds",
		"Wall time to decode and publish a PUT snapshot (read + engine wrap + warmup + swap).", "")
	s.appendHist = s.tel.Histogram("hypermined_append_seconds",
		"Wall time to delta-append rows and republish a model (parse + delta + rewarm + swap).", "")

	if s.admission != nil {
		s.admission.ObserveQueueWait(func(class admit.Class, d time.Duration) {
			if int(class) < numClasses {
				s.queueHist[class].Observe(d)
			}
		})
	}
	s.obsPool.New = func() any {
		ob := &reqObs{plog: runopt.NewPhaseLog()}
		ob.plog.KeepRecords(telemetry.MaxTraceSpans)
		return ob
	}
}

// Telemetry exposes the shared counter/histogram registry (tests use
// it to verify /stats–/metrics parity; embedders may add to it before
// serving traffic).
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// Handler returns the HTTP handler. When a query timeout is
// configured, every query request's context carries that deadline;
// admin writes (PUT/DELETE) run unbounded (see WithQueryTimeout).
func (s *Server) Handler() http.Handler {
	if s.queryTimeout <= 0 {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Long-running diagnostics (/debug/pprof/profile?seconds=30)
		// must not be clipped by a deadline sized for queries.
		if r.Method == http.MethodPut || r.Method == http.MethodDelete ||
			strings.HasPrefix(r.URL.Path, "/debug/") {
			s.mux.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout)
		defer cancel()
		s.mux.ServeHTTP(w, r.WithContext(ctx))
	})
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errs.Inc()
	s.writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// failCtx maps a context-shaped failure to its distinct status —
// 504 for an expired server-side query deadline, 499 for a client
// that went away — and reports whether it handled err. Neither case
// counts as a server error: they land in the timeouts / canceled
// counters instead of errs. Handlers fall through to their normal
// error mapping when failCtx returns false.
func (s *Server) failCtx(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		s.writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "query deadline exceeded"})
		return true
	case errors.Is(err, context.Canceled):
		s.canceled.Inc()
		s.writeJSON(w, StatusClientClosedRequest, errorBody{Error: "request canceled by client"})
		return true
	}
	return false
}

// ctxStatus maps a context-shaped failure to the status failCtx
// writes for it (0 when err is not context-shaped).
func ctxStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	}
	return 0
}

// engineStatus maps an Engine.Do error to the HTTP status failEngine
// writes for it; telemetry records the same value.
func engineStatus(err error) int {
	if code := ctxStatus(err); code != 0 {
		return code
	}
	var ee *engine.Error
	if errors.As(err, &ee) {
		switch ee.Kind {
		case engine.ErrBadRequest:
			return http.StatusBadRequest
		case engine.ErrUnavailable:
			return http.StatusConflict
		}
	}
	return http.StatusInternalServerError
}

// failEngine maps an Engine.Do error onto HTTP: context outcomes keep
// their 504/499 semantics, typed engine errors map by kind
// (bad_request -> 400, unavailable -> 409), anything else is a 500.
func (s *Server) failEngine(w http.ResponseWriter, err error) {
	if s.failCtx(w, err) {
		return
	}
	var ee *engine.Error
	if errors.As(err, &ee) {
		switch ee.Kind {
		case engine.ErrBadRequest:
			s.fail(w, http.StatusBadRequest, "%s", ee.Message)
		case engine.ErrUnavailable:
			s.fail(w, http.StatusConflict, "%s", ee.Message)
		default:
			s.fail(w, http.StatusInternalServerError, "%s", ee.Message)
		}
		return
	}
	s.fail(w, http.StatusInternalServerError, "%v", err)
}

// acquire resolves the named model or writes a 404, stamping the
// serving generation on the response.
func (s *Server) acquire(w http.ResponseWriter, name string) *registry.Served {
	sv := s.reg.Acquire(name)
	if sv == nil {
		s.fail(w, http.StatusNotFound, "unknown model %q", name)
		return nil
	}
	w.Header().Set("X-Model-Generation", strconv.FormatInt(sv.Generation(), 10))
	s.queries.Inc()
	sv.CountQuery()
	return sv
}

// reqObs is the pooled per-request observation record behind the do()
// funnel: latency histogram indices, trace state, and the phase log,
// finished exactly once via a deferred method call (a method value on
// a pooled pointer, so the steady-state telemetry bookkeeping itself
// performs no heap allocation).
type reqObs struct {
	s      *Server
	name   string
	kind   string
	tenant string
	ki, ci int
	start  time.Time
	status int
	errMsg string
	act    *telemetry.Active
	plog   *runopt.PhaseLog
	logged bool // plog was attached to the request context
}

// setErr records the telemetry-visible outcome of a failed request.
func (ob *reqObs) setErr(status int, msg string) {
	ob.status = status
	ob.errMsg = msg
}

// finish observes the request latency, feeds phase spans to the phase
// histograms and the trace, emits the slow-query log, completes the
// trace, and recycles the record.
func (ob *reqObs) finish() {
	s := ob.s
	elapsed := time.Since(ob.start)
	s.reqHist[ob.ki][ob.ci].Observe(elapsed)
	if ob.logged {
		startNs := ob.start
		ob.plog.VisitRecords(func(rec runopt.PhaseRecord) {
			if h := s.phaseHist[rec.Phase]; h != nil {
				h.Observe(rec.Duration)
			}
			ob.act.AddSpan(string(rec.Phase), rec.Start.Sub(startNs).Nanoseconds(), rec.Duration.Nanoseconds())
		})
	}
	if s.slowQuery > 0 && elapsed >= s.slowQuery {
		ob.act.Pin() // nil-safe: keep the logged trace resolvable
		s.logSlow(ob, elapsed)
	}
	if s.tracer != nil {
		s.tracer.Finish(ob.act, elapsed, ob.status, ob.errMsg)
	}
	ob.plog.Reset()
	ob.act = nil
	ob.errMsg = ""
	ob.logged = false
	s.obsPool.Put(ob)
}

// do routes one typed request through the named model's engine and
// returns the response, handling 404/admission/err reporting itself
// (nil means "already written"). It is the single funnel every query
// handler uses, so admission control, latency histograms, request
// tracing, slow-query logging, and breaker feedback cover the whole
// query surface at one call site.
func (s *Server) do(w http.ResponseWriter, r *http.Request, name string, req *engine.Request) *engine.Response {
	class := classOf(req)
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = admit.DefaultTenant
	}

	ob := s.obsPool.Get().(*reqObs)
	ob.s = s
	ob.name = name
	ob.kind = reqKind(req)
	ob.tenant = tenant
	ob.ki, ob.ci = kindIndex(req), int(class)
	ob.start = time.Now()
	ob.status = http.StatusOK
	if s.tracer != nil {
		id, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
		ob.act = s.tracer.Start(id, ob.kind, name, tenant)
		w.Header().Set("X-Trace-Id", ob.act.TraceID().String())
	}
	defer ob.finish()

	sv := s.reg.Acquire(name)
	if sv == nil {
		ob.setErr(http.StatusNotFound, "unknown model")
		s.fail(w, http.StatusNotFound, "unknown model %q", name)
		return nil
	}
	defer sv.Release()
	// The answer below comes from exactly this generation's engine —
	// stamp it so clients racing an :append can attribute the response.
	w.Header().Set("X-Model-Generation", strconv.FormatInt(sv.Generation(), 10))
	s.queries.Inc()
	sv.CountQuery()

	var tk admit.Ticket // zero Ticket when admission is off; Done is a no-op
	if s.admission != nil {
		_, rej, err := s.admission.AdmitInto(r.Context(), &tk, r.Header.Get("X-Tenant"), name, class)
		if err != nil {
			// The context ended while the request waited in a gate
			// queue: report it like any other context outcome.
			if s.failCtx(w, err) {
				ob.setErr(ctxStatus(err), err.Error())
			} else {
				ob.setErr(http.StatusInternalServerError, err.Error())
				s.fail(w, http.StatusInternalServerError, "admission: %v", err)
			}
			return nil
		}
		if rej != nil {
			ob.setErr(rej.Status, "overloaded: "+string(rej.Reason))
			s.reject(w, rej)
			return nil
		}
	}

	ctx := r.Context()
	if ob.act != nil {
		ctx = telemetry.ContextWithTrace(ctx, ob.act)
	}
	if ob.act != nil || s.slowQuery > 0 {
		ob.logged = true
		ctx = runopt.ContextWithPhaseLog(ctx, ob.plog)
	}
	resp, err := sv.Engine().Do(ctx, req)
	tk.Done(outcomeOf(err)) // nil-safe; idempotent
	if err != nil {
		ob.setErr(engineStatus(err), err.Error())
		s.failEngine(w, err)
		return nil
	}
	return resp
}

// classOf maps the engine's static request-cost classification onto
// the admission class vocabulary.
func classOf(req *engine.Request) admit.Class {
	if req.Cost() == engine.CostExpensive {
		return admit.Expensive
	}
	return admit.Cheap
}

// outcomeOf classifies an Engine.Do error for the model's circuit
// breaker: an expired deadline or an internal fault is a model
// failure; a client hanging up is neutral; a well-formed client error
// (bad_request, unavailable) means the engine itself worked.
func outcomeOf(err error) admit.Outcome {
	switch {
	case err == nil:
		return admit.OutcomeOK
	case errors.Is(err, context.Canceled):
		return admit.OutcomeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return admit.OutcomeFailure
	}
	var ee *engine.Error
	if errors.As(err, &ee) && ee.Kind != engine.ErrInternal {
		return admit.OutcomeOK
	}
	return admit.OutcomeFailure
}

// retryAfterSeconds renders a Retry-After duration as whole seconds,
// rounded up with a floor of 1 (the header carries integral seconds;
// zero would invite an immediate retry storm).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// rejectionBody is the response shape of a shed request.
type rejectionBody struct {
	Error             string `json:"error"`
	Reason            string `json:"reason"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// reject writes an admission rejection: the controller's chosen status
// (429 for rate/queue pressure, 503 for an open breaker) plus a
// Retry-After header. Shedding is the system working as designed, so
// it lands in the shed counter, not errs.
func (s *Server) reject(w http.ResponseWriter, rej *admit.Rejection) {
	s.shed.Inc()
	secs := retryAfterSeconds(rej.RetryAfter)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, rej.Status, rejectionBody{
		Error:             "overloaded: " + string(rej.Reason),
		Reason:            string(rej.Reason),
		RetryAfterSeconds: secs,
	})
}

// reqKind names the request variant for logs and trace records.
func reqKind(req *engine.Request) string {
	return queryKinds[kindIndex(req)]
}

// logSlow emits the structured slow-query event. phases=none means the
// request did no artifact builds — its time went to warm reads, queue
// wait, or a singleflight build another request performed. trace_id is
// the zero ID when tracing is off.
func (s *Server) logSlow(ob *reqObs, elapsed time.Duration) {
	s.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow query",
		slog.String("trace_id", ob.act.TraceID().String()),
		slog.String("kind", ob.kind),
		slog.String("model", ob.name),
		slog.String("tenant", ob.tenant),
		slog.Duration("duration", elapsed.Round(time.Microsecond)),
		slog.Int("status", ob.status),
		slog.String("phases", ob.plog.String()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// SetReadiness installs the readiness probe behind GET /readyz: fn
// returning nil means ready, an error becomes the "reason" field of a
// 503. The fleet node installs one that waits for its first gossip
// convergence; a plain server is ready as soon as it serves (boot
// loads finish before the listener opens). Install before serving
// traffic; a probe racing installation sees the previous state.
func (s *Server) SetReadiness(fn func() error) {
	if fn == nil {
		s.readyFn.Store(nil)
		return
	}
	s.readyFn.Store(&fn)
}

// handleReadyz is the readiness half of the health split: /healthz
// answers "the process is alive" unconditionally, /readyz answers
// "this node can correctly serve traffic right now". Routers and CI
// gate on /readyz instead of sleep loops.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if fn := s.readyFn.Load(); fn != nil {
		if err := (*fn)(); err != nil {
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status": "not ready", "reason": err.Error(),
			})
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// RegisterStatsSection adds an embedder-computed key to the /stats
// document (e.g. the fleet node's "fleet" section). fn runs per scrape
// and must be cheap and lock-light. Registration is not idempotent;
// call once per key before serving traffic.
func (s *Server) RegisterStatsSection(key string, fn func() any) {
	for {
		old := s.extraStats.Load()
		var next []statsSection
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, statsSection{key: key, fn: fn})
		if s.extraStats.CompareAndSwap(old, &next) {
			return
		}
	}
}

// RegisterMetricsExtra appends a writer hook to the /metrics
// exposition; fn must emit well-formed Prometheus text (the fleet
// node uses it for labeled peer-state gauges that the flat counter
// registry cannot express).
func (s *Server) RegisterMetricsExtra(fn func(w io.Writer)) {
	for {
		old := s.extraMetrics.Load()
		var next []func(w io.Writer)
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, fn)
		if s.extraMetrics.CompareAndSwap(old, &next) {
			return
		}
	}
}

// statsResponse documents (and lets tests decode) the /stats shape.
// The counter fields are not rendered from this struct: handleStats
// iterates the shared telemetry registry, so /stats carries exactly
// the counters /metrics exposes, by construction.
type statsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Queries       int64   `json:"queries"`
	Errors        int64   `json:"errors"`
	// Timeouts counts queries abandoned at the server-side deadline
	// (504); Canceled counts queries abandoned because the client went
	// away (499). Neither is a server fault, so they are not Errors.
	Timeouts int64 `json:"timeouts"`
	Canceled int64 `json:"canceled"`
	// Shed counts requests rejected by admission control (429 rate /
	// queue pressure and 503 open breaker). Shedding under overload is
	// correct behavior, not an error.
	Shed       int64          `json:"shed"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Registry   registry.Stats `json:"registry"`
	// Admission is the controller's per-tenant/model/gate/breaker
	// snapshot; absent when admission control is disabled.
	Admission *admit.Stats `json:"admission,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"registry":       s.reg.Stats(),
	}
	// One shared registration feeds both surfaces: every counter's
	// JSON key lands here, every counter's family name in /metrics.
	for key, v := range s.tel.CounterValues() {
		out[key] = v
	}
	if s.admission != nil {
		out["admission"] = s.admission.Stats()
	}
	if secs := s.extraStats.Load(); secs != nil {
		for _, sec := range *secs {
			out[sec.key] = sec.fn()
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// tracesResponse is the GET /debug/traces shape: the always-retained
// slow/errored/pinned ring and the sampled recent ring, newest first.
type tracesResponse struct {
	SlowThresholdNs time.Duration      `json:"slow_threshold_ns"`
	Slow            []*telemetry.Trace `json:"slow"`
	Recent          []*telemetry.Trace `json:"recent"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	slow, recent := s.tracer.Snapshot()
	if slow == nil {
		slow = []*telemetry.Trace{}
	}
	if recent == nil {
		recent = []*telemetry.Trace{}
	}
	s.writeJSON(w, http.StatusOK, tracesResponse{
		SlowThresholdNs: s.tracer.SlowThreshold(),
		Slow:            slow,
		Recent:          recent,
	})
}

// modelSummary is one row of the model list.
type modelSummary struct {
	Name       string `json:"name"`
	Generation int64  `json:"generation"`
	Attrs      int    `json:"attrs"`
	Edges      int    `json:"edges"`
	Rows       int    `json:"rows"`
	K          int    `json:"k"`
	Classify   bool   `json:"classify"`
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	out := make([]modelSummary, 0, len(names))
	for _, name := range names {
		// Peek, not Acquire: a monitoring poll of the model list must
		// not refresh every model's LRU stamp.
		sv := s.reg.Peek(name)
		if sv == nil {
			continue // evicted between Names and Peek
		}
		// Classifiability without forcing the lazy build: a model that
		// carries training rows can classify unless its dominator turns
		// out to cover no targets; only report the cheap signal here.
		out = append(out, modelSummary{
			Name:       name,
			Generation: sv.Generation(),
			Attrs:      sv.Model().Table.NumAttrs(),
			Edges:      sv.Model().H.NumEdges(),
			Rows:       sv.Model().Table.NumRows(),
			K:          sv.Model().Table.K(),
			Classify:   sv.Model().RequireRows() == nil,
		})
		sv.Release()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

type modelDetail struct {
	modelSummary
	Dominator []string  `json:"dominator"`
	Targets   []string  `json:"targets"`
	Coverage  float64   `json:"coverage"`
	LoadedAt  time.Time `json:"loaded_at"`
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	sv := s.acquire(w, r.PathValue("name"))
	if sv == nil {
		return
	}
	defer sv.Release()
	m := sv.Model()
	// The detail view names the serving dominator and targets, so it
	// (lazily, once) builds them through the engine. This is a metadata
	// read, not query traffic: it bypasses admission on purpose so
	// operators can inspect a model whose breaker is open.
	resp, err := sv.Engine().Do(r.Context(), &engine.Request{Dominators: &engine.DominatorsRequest{}})
	if err != nil {
		s.failEngine(w, err)
		return
	}
	det := modelDetail{
		modelSummary: modelSummary{
			Name:       sv.Name(),
			Generation: sv.Generation(),
			Attrs:      m.Table.NumAttrs(),
			Edges:      m.H.NumEdges(),
			Rows:       m.Table.NumRows(),
			K:          m.Table.K(),
			// Classifiability without forcing the association tables to
			// build on a metadata read: rows present and the dominator
			// (already built above, under the request context) covering
			// at least one target is exactly the unavailability
			// condition the classifier records.
			Classify: m.RequireRows() == nil && len(resp.Dominators.Targets) > 0,
		},
		Dominator: resp.Dominators.Dominator,
		Targets:   resp.Dominators.Targets,
		Coverage:  resp.Dominators.Coverage,
		LoadedAt:  sv.LoadedAt(),
	}
	s.writeJSON(w, http.StatusOK, det)
}

type putResponse struct {
	Name       string   `json:"name"`
	Generation int64    `json:"generation"`
	Swapped    bool     `json:"swapped"`
	Evicted    []string `json:"evicted,omitempty"`
	Edges      int      `json:"edges"`
	Rows       int      `json:"rows"`
}

func (s *Server) handlePutModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Admin writes get trace IDs too: load events in the log must be
	// correlatable with the client that triggered them.
	var act *telemetry.Active
	if s.tracer != nil {
		id, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
		act = s.tracer.Start(id, "load", name, r.Header.Get("X-Tenant"))
		w.Header().Set("X-Trace-Id", act.TraceID().String())
	}
	start := time.Now()
	finish := func(status int, errMsg string) {
		if s.tracer != nil {
			s.tracer.Finish(act, time.Since(start), status, errMsg)
		}
	}
	body := http.MaxBytesReader(w, r.Body, maxSnapshotBytes)
	m, err := core.ReadSnapshot(body)
	if err != nil {
		// An aborted upload surfaces as a body read error; report it as
		// the context outcome, not a malformed snapshot.
		if ctxErr := r.Context().Err(); ctxErr != nil && s.failCtx(w, ctxErr) {
			finish(ctxStatus(ctxErr), ctxErr.Error())
			return
		}
		finish(http.StatusBadRequest, err.Error())
		s.fail(w, http.StatusBadRequest, "snapshot: %v", err)
		return
	}
	info, err := s.reg.LoadContext(r.Context(), name, m)
	if err != nil {
		if s.failCtx(w, err) {
			finish(ctxStatus(err), err.Error())
			return
		}
		finish(http.StatusUnprocessableEntity, err.Error())
		s.fail(w, http.StatusUnprocessableEntity, "load: %v", err)
		return
	}
	elapsed := time.Since(start)
	s.snapHist.Observe(elapsed)
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "snapshot loaded",
		slog.String("trace_id", act.TraceID().String()),
		slog.String("kind", "load"),
		slog.String("model", name),
		slog.Int64("generation", info.Generation),
		slog.Int("edges", m.H.NumEdges()),
		slog.Bool("swapped", info.Swapped),
		slog.Duration("duration", elapsed.Round(time.Microsecond)))
	finish(http.StatusOK, "")
	w.Header().Set("X-Model-Generation", strconv.FormatInt(info.Generation, 10))
	s.writeJSON(w, http.StatusOK, putResponse{
		Name:       name,
		Generation: info.Generation,
		Swapped:    info.Swapped,
		Evicted:    info.Evicted,
		Edges:      m.H.NumEdges(),
		Rows:       m.Table.NumRows(),
	})
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var id telemetry.TraceID
	if s.tracer != nil {
		id = s.tracer.MintID()
		w.Header().Set("X-Trace-Id", id.String())
	}
	if !s.reg.Remove(name) {
		s.fail(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "model unloaded",
		slog.String("trace_id", id.String()),
		slog.String("kind", "unload"),
		slog.String("model", name))
	s.writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := engine.RulesRequest{Head: q.Get("head")}
	var err error
	if v := q.Get("top"); v != "" {
		if req.Top, err = strconv.Atoi(v); err != nil || req.Top < 1 {
			s.fail(w, http.StatusBadRequest, "bad top %q", v)
			return
		}
	}
	if v := q.Get("min_support"); v != "" {
		if req.MinSupport, err = strconv.ParseFloat(v, 64); err != nil {
			s.fail(w, http.StatusBadRequest, "bad min_support %q", v)
			return
		}
	}
	if v := q.Get("min_confidence"); v != "" {
		if req.MinConfidence, err = strconv.ParseFloat(v, 64); err != nil {
			s.fail(w, http.StatusBadRequest, "bad min_confidence %q", v)
			return
		}
	}
	resp := s.do(w, r, r.PathValue("name"), &engine.Request{Rules: &req})
	if resp == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, resp.Rules)
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := engine.SimilarRequest{A: q.Get("a"), B: q.Get("b")}
	if v := q.Get("top"); v != "" {
		var err error
		if req.Top, err = strconv.Atoi(v); err != nil || req.Top < 1 {
			s.fail(w, http.StatusBadRequest, "bad top %q", v)
			return
		}
	}
	resp := s.do(w, r, r.PathValue("name"), &engine.Request{Similar: &req})
	if resp == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, resp.Similar)
}

func (s *Server) handleDominators(w http.ResponseWriter, r *http.Request) {
	resp := s.do(w, r, r.PathValue("name"), &engine.Request{Dominators: &engine.DominatorsRequest{}})
	if resp == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, resp.Dominators)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req engine.ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "body: %v", err)
		return
	}
	req.Rows = nil // this endpoint is single-observation only
	if req.Values == nil {
		req.Values = map[string]int{}
	}
	resp := s.do(w, r, r.PathValue("name"), &engine.Request{Classify: &req})
	if resp == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, resp.Classify)
}

func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	var req engine.ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "body: %v", err)
		return
	}
	req.Values = nil // this endpoint is batch only
	resp := s.do(w, r, r.PathValue("name"), &engine.Request{Classify: &req})
	if resp == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, resp.Classify)
}

// handleQuery serves POST /v1/models/{name}:query — the typed engine
// request surface, including mixed batches. It is mounted on a
// catch-all (":query" cannot be a ServeMux wildcard suffix), so it
// rejects every other POST shape with 404.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rest := r.PathValue("rest")
	if name, ok := strings.CutSuffix(rest, ":append"); ok && name != "" && !strings.Contains(name, "/") {
		s.handleAppend(w, r, name)
		return
	}
	name, ok := strings.CutSuffix(rest, ":query")
	if !ok || name == "" || strings.Contains(name, "/") {
		s.fail(w, http.StatusNotFound, "no such endpoint %q", r.URL.Path)
		return
	}
	var req engine.Request
	body := http.MaxBytesReader(w, r.Body, maxQueryBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "body: %v", err)
		return
	}
	resp := s.do(w, r, name, &req)
	if resp == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}
