package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"hypermine/internal/core"
	"hypermine/internal/registry"
)

// TestQueryTimeoutReturns504 boots a server whose query deadline has
// effectively already passed and checks that the ctx-aware handlers —
// rules mining, batch classify, snapshot upload — abandon work with
// 504, while the non-blocking healthz stays 200.
func TestQueryTimeoutReturns504(t *testing.T) {
	m := testModel(t, 7, 12, 500)
	reg := registry.New(registry.Options{})
	if _, err := reg.Load("demo", m); err != nil {
		t.Fatal(err)
	}
	srv := New(reg, WithQueryTimeout(time.Nanosecond))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	head := m.Table.AttrName(0)
	if code := getJSON(t, ts.URL+"/v1/models/demo/rules?head="+head, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("rules under expired deadline: want 504, got %d", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz must not be subject to meaningful work: got %d", code)
	}
	var stats statsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Timeouts == 0 {
		t.Fatal("504 not counted in stats.timeouts")
	}
	if stats.Errors != 0 {
		t.Fatalf("deadline expiry wrongly counted as server error: errs=%d", stats.Errors)
	}

	// Admin writes are exempt from the query deadline: a hot swap of a
	// real model must succeed even under a microsecond query timeout.
	var buf bytes.Buffer
	if err := core.WriteSnapshot(&buf, testModel(t, 9, 10, 300), core.SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/fresh", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT under query timeout: want 200 (admin ops exempt), got %d", resp.StatusCode)
	}
}

// TestClientCancelReturns499 drives the rules handler with an
// already-canceled request context (the in-process equivalent of a
// client disconnect) and checks the distinct 499 mapping plus the
// canceled counter.
func TestClientCancelReturns499(t *testing.T) {
	m := testModel(t, 7, 12, 500)
	reg := registry.New(registry.Options{})
	if _, err := reg.Load("demo", m); err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	head := m.Table.AttrName(0)
	req := httptest.NewRequest(http.MethodGet, "/v1/models/demo/rules?head="+head, nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled rules request: want 499, got %d (%s)", rec.Code, rec.Body)
	}

	// Batch classify takes the same mapping through PredictBatchContext.
	sv := reg.Acquire("demo")
	if sv == nil {
		t.Fatal("demo missing")
	}
	abc, err := sv.Classifier()
	if err != nil {
		t.Fatal(err)
	}
	dom := abc.Dominator()
	rows := make([][]int, 4)
	for i := range rows {
		row := make([]int, len(dom))
		for j := range row {
			row[j] = 1
		}
		rows[i] = row
	}
	target := m.Table.AttrName(sv.Targets()[0])
	sv.Release()
	body, err := json.Marshal(map[string]any{"target": target, "rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/models/demo/classify:batch", strings.NewReader(string(body))).WithContext(ctx)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled batch classify: want 499, got %d (%s)", rec.Code, rec.Body)
	}

	if got := srv.canceled.Load(); got < 2 {
		t.Fatalf("canceled counter: want >= 2, got %d", got)
	}
	if got := srv.errs.Load(); got != 0 {
		t.Fatalf("client cancellation wrongly counted as server error: errs=%d", got)
	}
}

// TestCanceledPutAbortsLoad checks the snapshot-upload path: a
// canceled request context aborts the expensive served-model
// preparation and nothing is published.
func TestCanceledPutAbortsLoad(t *testing.T) {
	reg := registry.New(registry.Options{})
	srv := New(reg)
	var buf bytes.Buffer
	if err := core.WriteSnapshot(&buf, testModel(t, 9, 10, 300), core.SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPut, "/v1/models/late", bytes.NewReader(snap)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled PUT: want 499, got %d (%s)", rec.Code, rec.Body)
	}
	if names := reg.Names(); len(names) != 0 {
		t.Fatalf("canceled PUT published a model: %v", names)
	}
}

// TestNoGoroutineLeakAfterCanceledRequests is the goleak-style check:
// after a burst of canceled and timed-out requests over real
// connections, the server's goroutine count settles back to its
// pre-burst baseline and the server still answers.
func TestNoGoroutineLeakAfterCanceledRequests(t *testing.T) {
	m := testModel(t, 7, 12, 500)
	reg := registry.New(registry.Options{})
	if _, err := reg.Load("demo", m); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, WithQueryTimeout(50*time.Millisecond)).Handler())
	defer ts.Close()
	head := m.Table.AttrName(0)

	// Let the HTTP stack spin up its steady-state goroutines first.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/models/demo/rules?head="+head, nil)
		if err != nil {
			t.Fatal(err)
		}
		cancel() // client goes away before (or during) the request
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}

	// The server must still serve normal traffic...
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after canceled burst: %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/models/demo/rules?head="+head+"&top=3", nil); code != http.StatusOK {
		t.Fatalf("rules after canceled burst: %d", code)
	}
	// ...and shed every goroutine the canceled requests touched.
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Idle keep-alive conns hold goroutines; drop them before counting.
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after canceled requests: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
