// Telemetry integration tests: /stats–/metrics parity from the shared
// registry, the /debug/traces surface, trace-ID propagation, and the
// structured-log contract.
package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hypermine/internal/registry"
	"hypermine/internal/telemetry"
	"hypermine/internal/testutil"
)

// servingTraced boots a server with one model as "demo" and tracing on.
func servingTraced(t *testing.T, cfg telemetry.TracerConfig, opts ...Option) (*httptest.Server, *Server) {
	t.Helper()
	m := testModel(t, 7, 12, 500)
	reg := registry.New(registry.Options{})
	if _, err := reg.Load("demo", m); err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{WithTracer(telemetry.NewTracer(cfg))}, opts...)
	srv := New(reg, opts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

// TestStatsMetricsParity: every counter registered in the shared
// telemetry registry must appear on BOTH surfaces — by its JSON key in
// /stats and by its family name in /metrics — with the same value.
// Both endpoints iterate the same registration, so this pins the
// anti-drift contract rather than a hand-maintained field list.
func TestStatsMetricsParity(t *testing.T) {
	ts, srv := servingTraced(t, telemetry.TracerConfig{})

	// Drive a little traffic so the counters are not all zero: two
	// queries, one 404, and (admissionless) no shed.
	for _, p := range []string{"/v1/models/demo/dominators", "/v1/models/demo/dominators", "/v1/models/nope/dominators"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var stats map[string]any
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)

	counters := srv.Telemetry().Counters()
	if len(counters) < 5 {
		t.Fatalf("registry has %d counters, want >= 5", len(counters))
	}
	nonzero := false
	for _, c := range counters {
		jv, ok := stats[c.JSONKey()]
		if !ok {
			t.Errorf("/stats missing counter key %q", c.JSONKey())
			continue
		}
		got := int64(jv.(float64))
		if got != c.Load() {
			t.Errorf("/stats %s = %d, registry = %d", c.JSONKey(), got, c.Load())
		}
		want := c.Name() + " " + strconvI(c.Load()) + "\n"
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", strings.TrimSpace(want))
		}
		if got > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("all counters zero after traffic; parity check is vacuous")
	}
}

func strconvI(v int64) string {
	var b []byte
	if v == 0 {
		return "0"
	}
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestTraceHeaderAndTracesEndpoint drives a cold rules query (which
// really mines, so a tiny slow threshold must retain it), then checks
// the X-Trace-Id contract and the /debug/traces span tree.
func TestTraceHeaderAndTracesEndpoint(t *testing.T) {
	ts, _ := servingTraced(t, telemetry.TracerConfig{SlowThreshold: time.Nanosecond})

	resp, err := http.Get(ts.URL + "/v1/models/demo/rules?head=A00")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("rules query: %d", resp.StatusCode)
	}
	tid := resp.Header.Get("X-Trace-Id")
	if !traceIDRe.MatchString(tid) {
		t.Fatalf("X-Trace-Id %q is not 32 lowercase hex", tid)
	}

	var traces struct {
		SlowThresholdNs int64              `json:"slow_threshold_ns"`
		Slow            []*telemetry.Trace `json:"slow"`
		Recent          []*telemetry.Trace `json:"recent"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &traces); code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	if traces.SlowThresholdNs != 1 {
		t.Fatalf("slow_threshold_ns = %d, want 1", traces.SlowThresholdNs)
	}
	var tr *telemetry.Trace
	for _, cand := range traces.Slow {
		if cand.ID.String() == tid {
			tr = cand
		}
	}
	if tr == nil {
		t.Fatalf("trace %s not retained in slow ring (%d slow traces)", tid, len(traces.Slow))
	}
	if tr.Kind != "rules" || tr.Model != "demo" || tr.Status != 200 || tr.Reason != "slow" {
		t.Fatalf("trace = %+v, want kind=rules model=demo status=200 retained=slow", tr)
	}
	if tr.Duration <= 0 {
		t.Fatalf("trace duration %d, want > 0", tr.Duration)
	}
	// Phase attribution: the cold rules query mines, so the span tree
	// must be nonempty and include the rules phase with sane offsets.
	if len(tr.Spans) == 0 {
		t.Fatal("slow trace has no spans")
	}
	foundRules := false
	for _, sp := range tr.Spans {
		if sp.StartNs < 0 || sp.DurationNs < 0 {
			t.Fatalf("span %+v has negative offset or duration", sp)
		}
		if sp.Phase == "rules" {
			foundRules = true
		}
	}
	if !foundRules {
		t.Fatalf("spans %+v missing rules phase", tr.Spans)
	}
}

// TestTraceparentAdoption: an inbound W3C traceparent header's trace
// ID is adopted (echoed in X-Trace-Id), a malformed one is ignored and
// a fresh ID minted.
func TestTraceparentAdoption(t *testing.T) {
	ts, _ := servingTraced(t, telemetry.TracerConfig{})

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/models/demo/dominators", nil)
	req.Header.Set("traceparent", inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("X-Trace-Id = %q, want the inbound traceparent trace-id", got)
	}

	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/models/demo/dominators", nil)
	req2.Header.Set("traceparent", "00-zzzz-bad-01")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Trace-Id"); !traceIDRe.MatchString(got) || got == strings.Repeat("0", 32) {
		t.Fatalf("malformed traceparent: X-Trace-Id = %q, want a fresh minted ID", got)
	}
}

// TestTracesEndpointGated: without WithTracer, /debug/traces is not
// mounted and queries carry no X-Trace-Id.
func TestTracesEndpointGated(t *testing.T) {
	ts, _, _ := serving(t)
	if code := getJSON(t, ts.URL+"/debug/traces", nil); code != 404 {
		t.Fatalf("/debug/traces without tracer: %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/v1/models/demo/dominators")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("X-Trace-Id = %q without tracer, want empty", got)
	}
}

// TestErrorTraceRetained: a 404 through the query funnel is an errored
// request, so its trace lands in the always-retain ring even with
// sampling disabled.
func TestErrorTraceRetained(t *testing.T) {
	ts, _ := servingTraced(t, telemetry.TracerConfig{SampleEvery: -1})
	resp, err := http.Get(ts.URL + "/v1/models/ghost/dominators")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("ghost model: %d, want 404", resp.StatusCode)
	}
	tid := resp.Header.Get("X-Trace-Id")

	var traces tracesResponse
	if code := getJSON(t, ts.URL+"/debug/traces", &traces); code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	for _, tr := range traces.Slow {
		if tr.ID.String() == tid {
			if tr.Status != 404 || tr.Reason != "error" || tr.Err == "" {
				t.Fatalf("errored trace = %+v, want status=404 retained=error with message", tr)
			}
			return
		}
	}
	t.Fatalf("404 trace %s not retained (slow ring has %d)", tid, len(traces.Slow))
}

// TestSlowLogPinsTrace: the slow-query log line and the retained trace
// carry the same trace ID, with structured slog fields (JSON handler,
// time scrubbed for determinism).
func TestSlowLogPinsTrace(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	h := slog.NewJSONHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), &slog.HandlerOptions{
		Level: slog.LevelWarn,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey || a.Key == "duration" {
				return slog.Attr{} // drop the wall-clock attrs
			}
			return a
		},
	})
	// Sampling off: only the slow-log Pin keeps this trace resolvable.
	ts, _ := servingTraced(t, telemetry.TracerConfig{SampleEvery: -1},
		WithSlowQueryLog(time.Nanosecond), WithLogger(slog.New(h)))

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/models/demo/dominators", nil)
	req.Header.Set("X-Tenant", "ops")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tid := resp.Header.Get("X-Trace-Id")

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	var line map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(out, "\n", 2)[0]), &line); err != nil {
		t.Fatalf("slow log is not one JSON object per line: %v (%q)", err, out)
	}
	for k, want := range map[string]any{
		"level": "WARN", "msg": "slow query", "kind": "dominators",
		"model": "demo", "tenant": "ops", "status": float64(200), "trace_id": tid,
	} {
		if got := line[k]; got != want {
			t.Fatalf("slow log %s = %v, want %v (line %v)", k, got, want, line)
		}
	}

	// The Pin must make the logged trace resolvable at /debug/traces
	// even though sampling is disabled and the query wasn't slow by the
	// tracer's own threshold.
	var traces tracesResponse
	if code := getJSON(t, ts.URL+"/debug/traces", &traces); code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	for _, tr := range traces.Slow {
		if tr.ID.String() == tid {
			if tr.Reason != "pinned" && tr.Reason != "slow" {
				t.Fatalf("pinned trace retained as %q", tr.Reason)
			}
			return
		}
	}
	t.Fatalf("logged trace %s not pinned in retention ring", tid)
}

// TestTracedPathGoroutines: the traced query path must not leak
// goroutines (the tracer is ring-buffer state, not workers).
func TestTracedPathGoroutines(t *testing.T) {
	base := testutil.GoroutineBaseline()
	ts, _ := servingTraced(t, telemetry.TracerConfig{SlowThreshold: time.Nanosecond})
	for i := 0; i < 20; i++ {
		resp, err := http.Get(ts.URL + "/v1/models/demo/dominators")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	testutil.CheckGoroutines(t.Fatalf, base, 0, 5*time.Second)
}
