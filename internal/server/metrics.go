// GET /metrics: Prometheus text exposition (format 0.0.4) rendered by
// hand — the dependency policy forbids client_golang, and the format
// is simple enough that a few helpers suffice. Every label-carrying
// family iterates a name-sorted snapshot (registry.Stats and
// admit.Stats both sort), so the output is byte-deterministic for a
// given counter state and safe to diff in tests.
package server

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hypermine/internal/admit"
)

// metricsContentType is the Prometheus text exposition version this
// endpoint speaks.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\n\"") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// promLabel renders one key="value" label pair.
func promLabel(key, value string) string {
	return key + `="` + promEscape(value) + `"`
}

// promWriter emits one family (HELP + TYPE + samples) at a time.
type promWriter struct {
	w *bufio.Writer
}

func (p *promWriter) family(name, typ, help string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		name = name + "{" + labels + "}"
	}
	fmt.Fprintf(p.w, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
}

// scalar emits a one-sample family with no labels.
func (p *promWriter) scalar(name, typ, help string, v float64) {
	p.family(name, typ, help)
	p.sample(name, "", v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metricsContentType)
	bw := bufio.NewWriter(w)
	p := &promWriter{w: bw}

	p.scalar("hypermined_uptime_seconds", "gauge",
		"Seconds since the server started.", time.Since(s.start).Seconds())
	// Counters and latency histograms come from the shared telemetry
	// registry — the same registration that feeds /stats, so the two
	// surfaces cannot drift.
	_ = bw.Flush()
	_ = s.tel.WritePrometheus(w)

	reg := s.reg.Stats()
	p.scalar("hypermined_models", "gauge",
		"Resident models.", float64(len(reg.Models)))
	p.scalar("hypermined_resident_cost", "gauge",
		"Total resident cost in edge-equivalent units.", float64(reg.ResidentCost))
	p.scalar("hypermined_registry_swaps_total", "counter",
		"Hot swaps performed.", float64(reg.Swaps))
	p.scalar("hypermined_registry_evictions_total", "counter",
		"Models evicted by the resident-cost bound.", float64(reg.Evictions))
	p.family("hypermined_model_queries_total", "counter", "Queries served per resident model.")
	for _, m := range reg.Models {
		p.sample("hypermined_model_queries_total", promLabel("model", m.Name), float64(m.Queries))
	}
	p.family("hypermined_model_resident_cost", "gauge", "Resident cost per model, including built artifacts.")
	for _, m := range reg.Models {
		p.sample("hypermined_model_resident_cost", promLabel("model", m.Name), float64(m.Cost))
	}
	p.family("hypermined_model_generation", "gauge", "Registry generation currently serving each resident model (bumps on load, hot swap, and append).")
	for _, m := range reg.Models {
		p.sample("hypermined_model_generation", promLabel("model", m.Name), float64(m.Generation))
	}

	if s.admission != nil {
		st := s.admission.Stats()
		writeAdmissionMetrics(p, &st)
	}
	if extras := s.extraMetrics.Load(); extras != nil {
		_ = bw.Flush()
		for _, fn := range *extras {
			fn(w)
		}
	}
	_ = bw.Flush()
}

// admitCountKinds maps each per-party counter to its family suffix.
var admitCountKinds = []struct {
	suffix, help string
	get          func(admit.Counts) int64
}{
	{"admitted_total", "Queries admitted", func(c admit.Counts) int64 { return c.Admitted }},
	{"queued_total", "Admitted queries that waited in a gate queue", func(c admit.Counts) int64 { return c.Queued }},
	{"shed_total", "Queries rejected by rate limit or full queue (429)", func(c admit.Counts) int64 { return c.Shed }},
	{"broken_total", "Queries rejected by an open circuit breaker (503)", func(c admit.Counts) int64 { return c.Broken }},
}

func writeAdmissionMetrics(p *promWriter, st *admit.Stats) {
	parties := func(prefix, labelKey string, rows []admit.PartyStats) {
		for _, k := range admitCountKinds {
			fam := "hypermined_" + prefix + "_" + k.suffix
			p.family(fam, "counter", k.help+", per "+labelKey+".")
			for _, row := range rows {
				p.sample(fam, promLabel(labelKey, row.Name), float64(k.get(row.Counts)))
			}
		}
	}
	parties("tenant", "tenant", st.Tenants)
	parties("model", "model", st.Models)

	gateGauges := []struct {
		suffix, help string
		get          func(admit.GateStats) float64
	}{
		{"capacity", "Concurrency gate capacity", func(g admit.GateStats) float64 { return float64(g.Capacity) }},
		{"queue_limit", "Concurrency gate wait-queue bound", func(g admit.GateStats) float64 { return float64(g.MaxQueue) }},
		{"in_flight", "Requests executing", func(g admit.GateStats) float64 { return float64(g.InFlight) }},
		{"queued", "Requests waiting", func(g admit.GateStats) float64 { return float64(g.Queued) }},
		{"avg_service_seconds", "EWMA service time", func(g admit.GateStats) float64 {
			return time.Duration(g.AvgServiceNs).Seconds()
		}},
	}
	for _, k := range gateGauges {
		fam := "hypermined_gate_" + k.suffix
		p.family(fam, "gauge", k.help+", per cost class.")
		for _, g := range st.Gates {
			p.sample(fam, promLabel("class", g.Class), k.get(g))
		}
	}

	if len(st.Breakers) > 0 {
		p.family("hypermined_breaker_state", "gauge",
			"Circuit breaker state per model (0 closed, 1 half-open, 2 open).")
		for _, b := range st.Breakers {
			p.sample("hypermined_breaker_state", promLabel("model", b.Model), breakerStateValue(b.State))
		}
		p.family("hypermined_breaker_opens_total", "counter",
			"Times each model's breaker has opened.")
		for _, b := range st.Breakers {
			p.sample("hypermined_breaker_opens_total", promLabel("model", b.Model), float64(b.Opens))
		}
	}
}

// breakerStateValue encodes a breaker state as a gauge value.
func breakerStateValue(state string) float64 {
	switch state {
	case "half_open":
		return 1
	case "open":
		return 2
	}
	return 0
}
