package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// postBody POSTs raw bytes with an explicit content type and returns
// status, response body, and the X-Model-Generation header.
func postBody(t *testing.T, url, contentType string, body []byte) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header.Get("X-Model-Generation")
}

// TestAppendEndpoint: a JSON rows append returns 200, bumps the
// generation, and every model-scoped response afterwards carries the
// new generation in X-Model-Generation.
func TestAppendEndpoint(t *testing.T) {
	ts, _, m := serving(t)

	// Before the append: queries answer at generation 1.
	resp, err := http.Get(ts.URL + "/v1/models/demo/rules?head=A00&top=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if g := resp.Header.Get("X-Model-Generation"); g != "1" {
		t.Fatalf("pre-append generation header = %q, want 1", g)
	}

	rows := [][]int{{1, 1, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 3}}
	js, _ := json.Marshal(map[string]any{"rows": rows})
	code, raw, genHdr := postBody(t, ts.URL+"/v1/models/demo:append", "application/json", js)
	if code != http.StatusOK {
		t.Fatalf("append: %d %s", code, raw)
	}
	var ar appendResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Swapped || ar.Generation != 2 || ar.Appended != 2 {
		t.Fatalf("append response: %+v", ar)
	}
	if ar.Rows != m.Table.NumRows()+2 {
		t.Fatalf("rows after append = %d, want %d", ar.Rows, m.Table.NumRows()+2)
	}
	if genHdr != "2" {
		t.Fatalf("append X-Model-Generation = %q, want 2", genHdr)
	}

	// After the append: queries and metadata answer at generation 2.
	resp, err = http.Get(ts.URL + "/v1/models/demo")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if g := resp.Header.Get("X-Model-Generation"); g != "2" {
		t.Fatalf("post-append generation header = %q, want 2", g)
	}

	// /stats carries the per-model generation.
	var st struct {
		Registry struct {
			Models []struct {
				Name       string `json:"name"`
				Generation int64  `json:"generation"`
				Rows       int    `json:"rows"`
			} `json:"models"`
		} `json:"registry"`
	}
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if len(st.Registry.Models) != 1 || st.Registry.Models[0].Generation != 2 {
		t.Fatalf("stats models: %+v", st.Registry.Models)
	}

	// /metrics exposes the append histogram and the generation gauge.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "hypermined_append_seconds") {
		t.Error("metrics missing hypermined_append_seconds")
	}
	if !strings.Contains(text, `hypermined_model_generation{model="demo"} 2`) {
		t.Error("metrics missing hypermined_model_generation for demo at 2")
	}
}

// TestAppendCSV: a text/csv body with the model's header appends, and
// a header mismatch is a 400 instead of silently transposed data.
func TestAppendCSV(t *testing.T) {
	ts, _, m := serving(t)
	attrs := m.Table.Attrs()

	var b strings.Builder
	b.WriteString(strings.Join(attrs, ","))
	b.WriteString("\n")
	for i := 0; i < 3; i++ {
		cells := make([]string, len(attrs))
		for j := range cells {
			cells[j] = strconv.Itoa(1 + (i+j)%3)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteString("\n")
	}
	code, raw, _ := postBody(t, ts.URL+"/v1/models/demo:append", "text/csv", []byte(b.String()))
	if code != http.StatusOK {
		t.Fatalf("csv append: %d %s", code, raw)
	}
	var ar appendResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Appended != 3 || !ar.Swapped {
		t.Fatalf("csv append response: %+v", ar)
	}

	bad := "wrong,header\n1,2\n"
	code, raw, _ = postBody(t, ts.URL+"/v1/models/demo:append", "text/csv", []byte(bad))
	if code != http.StatusBadRequest {
		t.Fatalf("mismatched csv header: %d %s", code, raw)
	}
}

// TestAppendColumns: the column-major JSON shape appends through the
// raw path.
func TestAppendColumns(t *testing.T) {
	ts, _, m := serving(t)
	n := m.Table.NumAttrs()
	cols := make([][]int, n)
	for j := range cols {
		cols[j] = []int{1 + j%3, 1 + (j+1)%3}
	}
	js, _ := json.Marshal(map[string]any{"columns": cols})
	code, raw, _ := postBody(t, ts.URL+"/v1/models/demo:append", "application/json", js)
	if code != http.StatusOK {
		t.Fatalf("columns append: %d %s", code, raw)
	}
	var ar appendResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Appended != 2 || ar.Rows != m.Table.NumRows()+2 {
		t.Fatalf("columns append response: %+v", ar)
	}
}

// TestAppendRejections pins the error statuses: malformed body,
// both-shapes body, out-of-range value, wrong width, unknown model,
// and a no-op empty append.
func TestAppendRejections(t *testing.T) {
	ts, _, m := serving(t)
	url := ts.URL + "/v1/models/demo:append"

	if code, raw, _ := postBody(t, url, "application/json", []byte("{nope")); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d %s", code, raw)
	}
	js, _ := json.Marshal(map[string]any{"rows": [][]int{{1}}, "columns": [][]int{{1}}})
	if code, raw, _ := postBody(t, url, "application/json", js); code != http.StatusBadRequest {
		t.Fatalf("both shapes: %d %s", code, raw)
	}
	js, _ = json.Marshal(map[string]any{"rows": [][]int{{0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}}})
	if code, raw, _ := postBody(t, url, "application/json", js); code != http.StatusBadRequest {
		t.Fatalf("out-of-range value: %d %s", code, raw)
	}
	js, _ = json.Marshal(map[string]any{"rows": [][]int{{1, 2}}})
	if code, raw, _ := postBody(t, url, "application/json", js); code != http.StatusBadRequest {
		t.Fatalf("wrong width: %d %s", code, raw)
	}
	js, _ = json.Marshal(map[string]any{"rows": [][]int{}})
	code, raw, genHdr := postBody(t, url, "application/json", js)
	if code != http.StatusOK {
		t.Fatalf("empty no-op append: %d %s", code, raw)
	}
	var ar appendResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Swapped || ar.Generation != 1 || genHdr != "1" {
		t.Fatalf("no-op append: %+v header %q", ar, genHdr)
	}
	if ar.Rows != m.Table.NumRows() {
		t.Fatalf("no-op rows = %d, want %d", ar.Rows, m.Table.NumRows())
	}

	js, _ = json.Marshal(map[string]any{"rows": [][]int{{1, 1, 1}}})
	if code, raw, _ := postBody(t, ts.URL+"/v1/models/ghost:append", "application/json", js); code != http.StatusNotFound {
		t.Fatalf("unknown model: %d %s", code, raw)
	}
}
