package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hypermine/internal/registry"
)

// TestReadinessSplit pins the liveness/readiness contract: /healthz is
// unconditionally 200 while the process is up; /readyz defaults to
// ready and follows an installed probe, flipping 503 <-> 200 with the
// probe's error as the reason.
func TestReadinessSplit(t *testing.T) {
	srv := New(registry.New(registry.Options{}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("default /readyz = %d, want 200 (no probe installed)", code)
	}

	ready := false
	srv.SetReadiness(func() error {
		if !ready {
			return errors.New("gossip not converged")
		}
		return nil
	})
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "gossip not converged") {
		t.Fatalf("/readyz not-ready = %d %q, want 503 with reason", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatal("/healthz must stay 200 while not ready — liveness is not readiness")
	}
	ready = true
	if code, _ := get("/readyz"); code != 200 {
		t.Fatal("/readyz must flip to 200 once the probe passes")
	}
}

// TestStatsMetricsExtensions pins the embedder extension points the
// fleet node uses: RegisterStatsSection keys appear in /stats,
// RegisterMetricsExtra output is appended to /metrics.
func TestStatsMetricsExtensions(t *testing.T) {
	srv := New(registry.New(registry.Options{}))
	srv.RegisterStatsSection("fleet", func() any {
		return map[string]string{"node": "n1"}
	})
	srv.RegisterMetricsExtra(func(w io.Writer) {
		fmt.Fprintf(w, "# HELP test_extra_gauge x\n# TYPE test_extra_gauge gauge\ntest_extra_gauge 42\n")
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"fleet"`) || !strings.Contains(string(b), `"node":"n1"`) {
		t.Fatalf("/stats missing registered section: %s", b)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "test_extra_gauge 42") {
		t.Fatalf("/metrics missing extra exposition: %s", b)
	}
}
