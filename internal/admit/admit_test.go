package admit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hypermine/internal/testutil"
)

// fakeClock is a deterministic time source for bucket/breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestGateSaturation drives a small gate with far more goroutines
// than slots and asserts the two hard invariants: in-flight never
// exceeds capacity, and the queue never exceeds its bound. Run with
// -race this is the determinism proof of the admission state.
func TestGateSaturation(t *testing.T) {
	const capacity, maxQueue, workers, iters = 4, 8, 32, 50
	g := NewGate(capacity, maxQueue)

	var inflight, maxInflight, rejected, entered atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, err := g.Enter(context.Background())
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("unexpected Enter error: %v", err)
						return
					}
					rejected.Add(1)
					continue
				}
				cur := inflight.Add(1)
				for {
					old := maxInflight.Load()
					if cur <= old || maxInflight.CompareAndSwap(old, cur) {
						break
					}
				}
				if _, queued := g.Load(); queued > maxQueue {
					t.Errorf("queue %d exceeds bound %d", queued, maxQueue)
				}
				entered.Add(1)
				inflight.Add(-1)
				g.Leave(time.Microsecond)
			}
		}()
	}
	wg.Wait()

	if got := maxInflight.Load(); got > capacity {
		t.Fatalf("max in-flight %d exceeds capacity %d", got, capacity)
	}
	if entered.Load() == 0 {
		t.Fatal("nothing was admitted")
	}
	if fl, q := g.Load(); fl != 0 || q != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", fl, q)
	}
}

// TestGateFIFO proves waiters are granted strictly in arrival order.
func TestGateFIFO(t *testing.T) {
	const waiters = 6
	g := NewGate(1, waiters)
	if _, err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}

	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		// Confirm each waiter is queued before spawning the next, so
		// arrival order is deterministic.
		before := i
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, err := g.Enter(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			order <- id
			g.Leave(time.Microsecond)
		}(i)
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, q := g.Load(); q == before+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	g.Leave(time.Microsecond) // free the initial slot; grants cascade
	wg.Wait()
	close(order)
	want := 0
	for id := range order {
		if id != want {
			t.Fatalf("FIFO violated: got waiter %d, want %d", id, want)
		}
		want++
	}
	if want != waiters {
		t.Fatalf("only %d of %d waiters were granted", want, waiters)
	}
}

// TestGateQueueFullAndCancel covers the two non-admission exits:
// immediate rejection when the queue is full, and ctx cancellation
// while queued (which must remove the waiter so later grants skip it).
func TestGateQueueFullAndCancel(t *testing.T) {
	g := NewGate(1, 1)
	if _, err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Enter(ctx)
		errCh <- err
	}()
	waitQueued := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, q := g.Load(); q == n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("queue never reached %d", n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitQueued(1)

	// Queue full: the next request is shed immediately.
	if _, err := g.Enter(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}

	// Cancel the queued waiter: it reports ctx.Err and leaves the queue.
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitQueued(0)

	// The slot still releases cleanly with no waiter to grant.
	g.Leave(time.Millisecond)
	if fl, q := g.Load(); fl != 0 || q != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", fl, q)
	}
}

func TestGateRetryAfter(t *testing.T) {
	g := NewGate(2, 4)
	if g.RetryAfter() != time.Second {
		t.Fatalf("unseeded RetryAfter = %v, want 1s floor", g.RetryAfter())
	}
	for i := 0; i < 50; i++ {
		g.observe(4 * time.Second)
	}
	// Backlog of one (empty queue + the asker) across capacity 2 at
	// ~4s per request: about 2 seconds.
	got := g.RetryAfter()
	if got < time.Second || got > 4*time.Second {
		t.Fatalf("RetryAfter = %v, want within [1s, 4s]", got)
	}
}

func TestBucket(t *testing.T) {
	clk := newFakeClock()
	nanos := func() int64 { return clk.now().UnixNano() }
	b := newBucket(1, 2) // 1 token/s, burst 2

	for i := 0; i < 2; i++ {
		if ok, _ := b.take(nanos()); !ok {
			t.Fatalf("burst take %d rejected", i)
		}
	}
	ok, retry := b.take(nanos())
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want (0, 1s]", retry)
	}
	clk.advance(time.Second)
	if ok, _ := b.take(nanos()); !ok {
		t.Fatal("refilled bucket rejected")
	}
	// Refill is capped at burst even after a long idle gap.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(nanos()); !ok {
			t.Fatalf("post-idle take %d rejected", i)
		}
	}
	if ok, _ := b.take(nanos()); ok {
		t.Fatal("burst cap not enforced after idle gap")
	}
}

// TestBreakerStateMachine is the open/half-open/close table test: a
// scripted sequence of admissions, outcomes, and clock advances with
// the expected state after each step.
func TestBreakerStateMachine(t *testing.T) {
	clk := newFakeClock()
	const cooldown = 10 * time.Second
	b := NewBreaker(3, cooldown, clk.now)

	type step struct {
		name string
		do   func(t *testing.T)
		want BreakerState
	}
	allow := func(wantOK, wantProbe bool) func(t *testing.T) {
		return func(t *testing.T) {
			ok, probe, _ := b.Allow()
			if ok != wantOK || probe != wantProbe {
				t.Fatalf("Allow() = (%v, %v), want (%v, %v)", ok, probe, wantOK, wantProbe)
			}
		}
	}
	record := func(probe bool, o Outcome) func(t *testing.T) {
		return func(t *testing.T) { b.Record(probe, o) }
	}
	steps := []step{
		{"fresh breaker admits", allow(true, false), BreakerClosed},
		{"failure 1", record(false, OutcomeFailure), BreakerClosed},
		{"failure 2", record(false, OutcomeFailure), BreakerClosed},
		{"success resets the run", record(false, OutcomeOK), BreakerClosed},
		{"failure 1 again", record(false, OutcomeFailure), BreakerClosed},
		{"failure 2 again", record(false, OutcomeFailure), BreakerClosed},
		{"failure 3 opens", record(false, OutcomeFailure), BreakerOpen},
		{"open rejects", allow(false, false), BreakerOpen},
		{"late non-probe outcomes ignored while open", record(false, OutcomeOK), BreakerOpen},
		{"cooldown elapses -> probe admitted", func(t *testing.T) {
			clk.advance(cooldown)
			allow(true, true)(t)
		}, BreakerHalfOpen},
		{"second request while probing rejected", allow(false, false), BreakerHalfOpen},
		{"canceled probe releases the slot", record(true, OutcomeCanceled), BreakerHalfOpen},
		{"next probe admitted", allow(true, true), BreakerHalfOpen},
		{"probe failure reopens", record(true, OutcomeFailure), BreakerOpen},
		{"reopened rejects", allow(false, false), BreakerOpen},
		{"second cooldown -> probe", func(t *testing.T) {
			clk.advance(cooldown)
			allow(true, true)(t)
		}, BreakerHalfOpen},
		{"probe success closes", record(true, OutcomeOK), BreakerClosed},
		{"closed admits again", allow(true, false), BreakerClosed},
		{"load failures open too", func(t *testing.T) {
			b.RecordFailure()
			b.RecordFailure()
			b.RecordFailure()
		}, BreakerOpen},
		{"reset force-closes", func(t *testing.T) { b.Reset() }, BreakerClosed},
	}
	for _, s := range steps {
		s.do(t)
		if state, _, _ := b.Snapshot(); state != s.want {
			t.Fatalf("%s: state = %v, want %v", s.name, state, s.want)
		}
	}
	if _, _, opens := b.Snapshot(); opens != 3 {
		t.Fatalf("opens = %d, want 3", opens)
	}
}

// TestBreakerRetryAfter pins the open-state Retry-After to the
// remaining cooldown.
func TestBreakerRetryAfter(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, 10*time.Second, clk.now)
	b.RecordFailure()
	clk.advance(4 * time.Second)
	_, _, retry := b.Allow()
	if retry != 6*time.Second {
		t.Fatalf("retry = %v, want 6s (remaining cooldown)", retry)
	}
}

func TestControllerRateLimits(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		TenantRate: 1, TenantBurst: 2,
		Now: clk.now,
	})
	ctx := context.Background()

	// The burst admits; the third request from the same tenant sheds.
	for i := 0; i < 2; i++ {
		tk, rej, err := c.Admit(ctx, "alice", "m", Cheap)
		if err != nil || rej != nil {
			t.Fatalf("take %d: rej=%v err=%v", i, rej, err)
		}
		tk.Done(OutcomeOK)
	}
	_, rej, err := c.Admit(ctx, "alice", "m", Cheap)
	if err != nil || rej == nil {
		t.Fatalf("want rejection, got err=%v", err)
	}
	if rej.Status != 429 || rej.Reason != ReasonTenantRateLimited || rej.RetryAfter <= 0 {
		t.Fatalf("bad rejection: %+v", rej)
	}

	// Tenants are isolated: bob still has his burst.
	if tk, rej, err := c.Admit(ctx, "bob", "m", Cheap); rej != nil || err != nil {
		t.Fatalf("bob shed by alice's flood: rej=%v err=%v", rej, err)
	} else {
		tk.Done(OutcomeOK)
	}
	// The empty tenant maps to DefaultTenant.
	if tk, rej, err := c.Admit(ctx, "", "m", Cheap); rej != nil || err != nil {
		t.Fatalf("default tenant: rej=%v err=%v", rej, err)
	} else {
		tk.Done(OutcomeOK)
	}

	st := c.Stats()
	if len(st.Tenants) != 3 {
		t.Fatalf("want 3 tenants, got %+v", st.Tenants)
	}
	byName := map[string]Counts{}
	for _, p := range st.Tenants {
		byName[p.Name] = p.Counts
	}
	if byName["alice"].Admitted != 2 || byName["alice"].Shed != 1 {
		t.Fatalf("alice counts: %+v", byName["alice"])
	}
	if byName[DefaultTenant].Admitted != 1 {
		t.Fatalf("default tenant counts: %+v", byName[DefaultTenant])
	}
	if len(st.Models) != 1 || st.Models[0].Counts.Admitted != 4 || st.Models[0].Counts.Shed != 1 {
		t.Fatalf("model counts: %+v", st.Models)
	}
}

func TestControllerBreakerFlow(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		BreakerFailures: 2,
		BreakerCooldown: 10 * time.Second,
		Now:             clk.now,
	})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		tk, rej, err := c.Admit(ctx, "", "m", Cheap)
		if rej != nil || err != nil {
			t.Fatalf("admit %d: rej=%v err=%v", i, rej, err)
		}
		tk.Done(OutcomeFailure)
	}
	_, rej, err := c.Admit(ctx, "", "m", Cheap)
	if err != nil || rej == nil || rej.Status != 503 || rej.Reason != ReasonBreakerOpen {
		t.Fatalf("want 503 breaker_open, got rej=%+v err=%v", rej, err)
	}
	if rej.RetryAfter != 10*time.Second {
		t.Fatalf("RetryAfter = %v, want full cooldown", rej.RetryAfter)
	}
	// Other models are unaffected.
	if tk, rej, err := c.Admit(ctx, "", "other", Cheap); rej != nil || err != nil {
		t.Fatalf("other model: rej=%v err=%v", rej, err)
	} else {
		tk.Done(OutcomeOK)
	}

	// After the cooldown a probe goes through and closes the breaker.
	clk.advance(10 * time.Second)
	tk, rej, err := c.Admit(ctx, "", "m", Cheap)
	if rej != nil || err != nil {
		t.Fatalf("probe: rej=%v err=%v", rej, err)
	}
	tk.Done(OutcomeOK)
	if tk2, rej, err := c.Admit(ctx, "", "m", Cheap); rej != nil || err != nil {
		t.Fatalf("post-probe: rej=%v err=%v", rej, err)
	} else {
		tk2.Done(OutcomeOK)
	}

	// A failed snapshot load re-opens; a successful one resets.
	c.RecordLoad("m", errors.New("corrupt snapshot"))
	c.RecordLoad("m", errors.New("corrupt snapshot"))
	if _, rej, _ := c.Admit(ctx, "", "m", Cheap); rej == nil || rej.Reason != ReasonBreakerOpen {
		t.Fatalf("want breaker_open after load failures, got %+v", rej)
	}
	c.RecordLoad("m", nil)
	if tk, rej, err := c.Admit(ctx, "", "m", Cheap); rej != nil || err != nil {
		t.Fatalf("after successful load: rej=%v err=%v", rej, err)
	} else {
		tk.Done(OutcomeOK)
	}

	st := c.Stats()
	if len(st.Breakers) != 2 {
		t.Fatalf("want 2 breakers, got %+v", st.Breakers)
	}
	for _, bs := range st.Breakers {
		if bs.Model == "m" && bs.Opens < 2 {
			t.Fatalf("breaker m opened %d times, want >= 2", bs.Opens)
		}
	}
}

// TestControllerOverloadBurst hammers a fully configured controller
// from many goroutines — more than the gates admit — with a mix of
// outcomes and mid-flight cancellations, then checks the counter
// identity (every admit is accounted exactly once) and that the burst
// leaked no goroutines.
func TestControllerOverloadBurst(t *testing.T) {
	base := testutil.GoroutineBaseline()
	c := NewController(Config{
		CheapCapacity: 3, CheapQueue: 4,
		ExpensiveCapacity: 1, ExpensiveQueue: 1,
		BreakerFailures: 1 << 30, // counting, never tripping
	})
	const workers, iters = 24, 40

	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				class := Cheap
				if (w+i)%5 == 0 {
					class = Expensive
				}
				ctx, cancel := context.WithCancel(context.Background())
				if (w+i)%7 == 0 {
					cancel() // a client that is already gone
				}
				tk, rej, err := c.Admit(ctx, "t", "m", class)
				switch {
				case err != nil:
					// canceled while queued — fine
				case rej != nil:
					shed.Add(1)
				default:
					admitted.Add(1)
					// Hold the slot long enough for the burst to pile up
					// behind the gate.
					time.Sleep(50 * time.Microsecond)
					out := OutcomeOK
					if i%11 == 0 {
						out = OutcomeFailure
					}
					tk.Done(out)
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()

	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	if shed.Load() == 0 {
		t.Fatal("nothing shed — the burst never saturated the gates")
	}
	st := c.Stats()
	if len(st.Models) != 1 || st.Models[0].Counts.Admitted != admitted.Load() {
		t.Fatalf("model admitted = %+v, want %d", st.Models, admitted.Load())
	}
	if st.Models[0].Counts.Shed != shed.Load() {
		t.Fatalf("model shed = %d, want %d", st.Models[0].Counts.Shed, shed.Load())
	}
	for _, g := range st.Gates {
		if g.InFlight != 0 || g.Queued != 0 {
			t.Fatalf("gate %s not drained: %+v", g.Class, g)
		}
	}
	testutil.CheckGoroutines(t.Fatalf, base, 0, 5*time.Second)
}

// TestTicketDoneIdempotent guards the double-release footgun.
func TestTicketDoneIdempotent(t *testing.T) {
	c := NewController(Config{CheapCapacity: 1})
	tk, rej, err := c.Admit(context.Background(), "", "m", Cheap)
	if rej != nil || err != nil {
		t.Fatalf("rej=%v err=%v", rej, err)
	}
	tk.Done(OutcomeOK)
	tk.Done(OutcomeOK)
	g := c.Gate(Cheap)
	if fl, _ := g.Load(); fl != 0 {
		t.Fatalf("inflight = %d after double Done, want 0", fl)
	}
	// A second admit still works (the slot was not double-freed into
	// a negative count).
	tk2, rej, err := c.Admit(context.Background(), "", "m", Cheap)
	if rej != nil || err != nil {
		t.Fatalf("rej=%v err=%v", rej, err)
	}
	tk2.Done(OutcomeOK)
}
