package admit

import (
	"sync/atomic"
	"time"
)

// maxBucketNanos caps the GCRA arithmetic far below int64 overflow
// (2^61 ns is ~73 years) while still meaning "effectively unlimited".
const maxBucketNanos = int64(1) << 61

// bucket is a token bucket in GCRA form: instead of a mutex-guarded
// float token count it keeps a single atomic word — the theoretical
// arrival time (tat), in nanoseconds on the caller's clock — so the
// conforming take is one CAS. The bucket refills at rate tokens per
// second capped at burst, charges one token per admitted request, and
// starts full (tat zero is the distant past).
type bucket struct {
	interval int64 // nanos per token (1/rate); 0 when the rate outruns the clock
	tol      int64 // burst tolerance: (burst-1)*interval
	tat      atomic.Int64
}

// newBucket returns a bucket refilling at rate tokens/second with the
// given burst; a burst below 1 is raised to 1 (a bucket that can
// never hold a whole token would reject everything).
func newBucket(rate, burst float64) *bucket {
	if burst < 1 {
		burst = 1
	}
	interval := int64(float64(time.Second) / rate)
	if interval < 0 || interval > maxBucketNanos {
		interval = maxBucketNanos
	}
	tol := int64(float64(interval) * (burst - 1))
	if tol < 0 || float64(interval)*(burst-1) > float64(maxBucketNanos) {
		tol = maxBucketNanos
	}
	return &bucket{interval: interval, tol: tol}
}

// take consumes one token if available, or reports how long until one
// accrues — the Retry-After a rate-limited client should honor. now
// is nanoseconds on any monotonic clock; tat lives on the same clock.
func (b *bucket) take(now int64) (ok bool, retry time.Duration) {
	for {
		tat := b.tat.Load()
		if tat-b.tol > now {
			return false, time.Duration(tat - b.tol - now)
		}
		next := tat
		if now > next {
			next = now
		}
		if b.tat.CompareAndSwap(tat, next+b.interval) {
			return true, 0
		}
	}
}
