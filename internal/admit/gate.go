package admit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Gate.Enter when both the gate and its
// wait queue are at capacity: the request must be shed immediately
// (429 + Retry-After), never queued unboundedly.
var ErrQueueFull = errors.New("admit: gate queue full")

// waiter is one queued request. ready is buffered so the granter
// never blocks handing over a slot, even if the waiter has already
// abandoned the queue on cancellation.
type waiter struct {
	ready chan struct{}
}

// Gate is a concurrency gate with a bounded FIFO wait queue: at most
// capacity requests hold a slot concurrently, at most maxQueue more
// wait in arrival order, and everything beyond that is rejected
// immediately. Leaving hands the freed slot to the oldest waiter, so
// admission is strictly first-come-first-served among waiters.
//
// The gate also maintains an EWMA of observed service times, from
// which RetryAfter derives the backpressure hint for shed requests:
// roughly how long a full queue takes to drain at current capacity.
//
// The uncontended path — a free slot in, no waiters out — is one CAS
// on each side: state packs the in-flight count (low half) and the
// queue length (high half) into a single word, so "free slot and
// nobody waiting" is checked and claimed atomically, preserving FIFO
// (a newcomer can never slip past a queued waiter). The queue half of
// the word and the queue slice itself only change while mu is held.
type Gate struct {
	capacity int
	maxQueue int

	state atomic.Uint64

	mu    sync.Mutex
	queue []*waiter

	// avgServiceNs is the EWMA of observed service durations
	// (alpha = 1/8), updated lock-free on Leave.
	avgServiceNs atomic.Int64

	// sampleCounter spreads service-time observations: reading the
	// clock twice per request would dominate the admission budget, so
	// once seeded only every sampleEvery-th request is timed.
	sampleCounter atomic.Uint32
}

// sampleEvery is the service-time sampling stride once the EWMA has a
// seed.
const sampleEvery = 8

// shouldSample reports whether the entering request should time its
// service for the EWMA: always until the first observation lands,
// every sampleEvery-th request after.
func (g *Gate) shouldSample() bool {
	if g.avgServiceNs.Load() == 0 {
		return true
	}
	return g.sampleCounter.Add(1)%sampleEvery == 0
}

// packState packs the pair; counts are bounded by capacity/maxQueue,
// far below 2^32.
func packState(inflight, queued int) uint64 {
	return uint64(queued)<<32 | uint64(uint32(inflight))
}

func unpackState(s uint64) (inflight, queued int) {
	return int(int32(s & 0xffffffff)), int(s >> 32)
}

// addState applies a delta to the packed state.
func (g *Gate) addState(dInflight, dQueued int) {
	for {
		s := g.state.Load()
		inflight, queued := unpackState(s)
		if g.state.CompareAndSwap(s, packState(inflight+dInflight, queued+dQueued)) {
			return
		}
	}
}

// NewGate returns a gate admitting capacity concurrent requests with
// a FIFO wait queue of maxQueue (0 means no queue: saturated means
// shed). capacity must be >= 1.
func NewGate(capacity, maxQueue int) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{capacity: capacity, maxQueue: maxQueue}
}

// Capacity returns the concurrent-execution bound.
func (g *Gate) Capacity() int { return g.capacity }

// MaxQueue returns the wait-queue bound.
func (g *Gate) MaxQueue() int { return g.maxQueue }

// Load reports the current in-flight and queued counts.
func (g *Gate) Load() (inflight, queued int) {
	return unpackState(g.state.Load())
}

// AvgServiceNs returns the service-time EWMA in nanoseconds (0 until
// the first completion).
func (g *Gate) AvgServiceNs() int64 { return g.avgServiceNs.Load() }

// Enter claims a slot. It returns immediately when one is free; waits
// in FIFO order when the gate is saturated but the queue has room
// (waited reports that); returns ErrQueueFull when both are at
// capacity; and returns ctx.Err() when the context ends first. A nil
// error means the caller holds a slot and must call Leave.
func (g *Gate) Enter(ctx context.Context) (waited bool, err error) {
	for {
		s := g.state.Load()
		inflight, queued := unpackState(s)
		if queued > 0 || inflight >= g.capacity {
			break
		}
		if g.state.CompareAndSwap(s, packState(inflight+1, 0)) {
			return false, nil
		}
	}
	w, err := g.enqueue()
	if err != nil {
		return false, err
	}
	if w == nil { // a slot freed up while taking the lock
		return false, nil
	}

	select {
	case <-w.ready:
		return true, nil
	case <-ctx.Done():
		// Abandon the queue slot — unless a grant raced in, in which
		// case the slot is ours to give back.
		if !g.abandon(w) {
			g.Leave(0)
		}
		return true, ctx.Err()
	}
}

// enqueue claims a slot or a queue position under the lock: a nil
// waiter with nil error means a slot was claimed directly.
func (g *Gate) enqueue() (*waiter, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		s := g.state.Load()
		inflight, queued := unpackState(s)
		if queued == 0 && inflight < g.capacity {
			if g.state.CompareAndSwap(s, packState(inflight+1, 0)) {
				return nil, nil
			}
			continue // a lock-free Enter or Leave raced; re-read
		}
		if queued >= g.maxQueue {
			return nil, ErrQueueFull
		}
		if g.state.CompareAndSwap(s, packState(inflight, queued+1)) {
			w := &waiter{ready: make(chan struct{}, 1)}
			g.queue = append(g.queue, w)
			return w, nil
		}
	}
}

// abandon removes a canceled waiter from the queue; false means a
// grant already popped it, so the caller owns a slot.
func (g *Gate) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			g.addState(0, -1)
			return true
		}
	}
	return false
}

// Leave releases a slot, handing it to the oldest waiter if any, and
// folds the observed service duration (ignored when <= 0) into the
// Retry-After estimator. The wake-up happens outside the gate lock.
func (g *Gate) Leave(service time.Duration) {
	if service > 0 {
		g.observe(service)
	}
	for {
		s := g.state.Load()
		inflight, queued := unpackState(s)
		if queued > 0 {
			break
		}
		if g.state.CompareAndSwap(s, packState(inflight-1, 0)) {
			return
		}
	}
	g.leaveSlow()
}

// leaveSlow hands the freed slot to the oldest waiter (in-flight
// stays put — it is a transfer), or gives it back if every waiter
// abandoned in the meantime.
func (g *Gate) leaveSlow() {
	g.mu.Lock()
	var grant *waiter
	if len(g.queue) > 0 {
		grant = g.queue[0]
		g.queue = g.queue[1:]
		g.addState(0, -1)
	} else {
		g.addState(-1, 0)
	}
	g.mu.Unlock()
	if grant != nil {
		grant.ready <- struct{}{}
	}
}

// observe folds one service duration into the EWMA (alpha = 1/8; the
// first observation seeds it).
func (g *Gate) observe(service time.Duration) {
	ns := service.Nanoseconds()
	if ns <= 0 {
		return
	}
	for {
		old := g.avgServiceNs.Load()
		next := ns
		if old > 0 {
			next = old + (ns-old)/8
			if next == old && ns != old {
				// Keep small corrections from stalling on integer division.
				if ns > old {
					next = old + 1
				} else {
					next = old - 1
				}
			}
		}
		if g.avgServiceNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// RetryAfter estimates when a shed request could plausibly be
// admitted: the time for the current backlog (full queue plus one)
// to drain at capacity, by the observed mean service time. With no
// observations yet it falls back to one second — a safe, honest
// floor for a server that has not finished a request of this class.
func (g *Gate) RetryAfter() time.Duration {
	avg := g.avgServiceNs.Load()
	if avg <= 0 {
		return time.Second
	}
	_, queued := unpackState(g.state.Load())
	backlog := queued + 1
	d := time.Duration(int64(backlog) * avg / int64(g.capacity))
	if d < time.Second {
		// Retry-After is expressed in whole seconds on the wire; never
		// tell a client "0".
		d = time.Second
	}
	return d
}
