// Package admit implements the admission-control subsystem that sits
// in front of engine.Do on the serving path: the server must degrade
// gracefully when offered load exceeds capacity, shedding excess
// deterministically with correct backpressure signals instead of
// queueing unboundedly and collapsing latency for everyone.
//
// Three mechanisms compose, checked in order on every query:
//
//  1. Circuit breaker (per model): opens after a run of consecutive
//     engine timeouts/internal errors (or a failed snapshot load) and
//     half-opens on a probe schedule; while open, requests are
//     rejected with 503 + Retry-After covering the remaining cooldown.
//  2. Token buckets (per tenant and per model): configurable
//     rate/burst; an empty bucket rejects with 429 + Retry-After
//     derived from the bucket's refill rate. Tenants are identified
//     by the X-Tenant header at the transport layer; requests without
//     one share the DefaultTenant bucket.
//  3. Concurrency gate (per cost class — cheap warm reads vs
//     expensive cold/mining queries, see engine.Request cost
//     classification): at most Capacity requests execute at once;
//     up to Queue more wait in FIFO order; beyond that the request is
//     rejected immediately with 429 + Retry-After computed from the
//     observed service time, so a saturated gate never blocks the
//     accept loop or grows an unbounded backlog.
//
// Every decision is counted per tenant and per model
// (admitted/queued/shed/broken) and exposed through Stats for the
// /stats and /metrics endpoints. All state is race-clean: buckets,
// gates, and breakers are individually locked, counters are atomics,
// and the package's tests run under -race.
package admit

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTenant is the bucket requests without an X-Tenant header
// share.
const DefaultTenant = "default"

// Class is a request cost class. The engine classifies each request
// (engine.Request cost classification); the controller gives each
// class its own concurrency gate so a burst of expensive cold queries
// cannot starve the cheap warm path.
type Class int

const (
	// Cheap is the warm read path: classification, similarity,
	// dominator reads against memoized artifacts.
	Cheap Class = iota
	// Expensive is the cold/mining path: rule mining and batches that
	// contain it.
	Expensive

	numClasses
)

// String names the class for stats and metrics labels.
func (c Class) String() string {
	if c == Expensive {
		return "expensive"
	}
	return "cheap"
}

// Outcome reports how an admitted request ended, for breaker and
// service-time accounting.
type Outcome int

const (
	// OutcomeOK: the engine answered (including well-formed client
	// errors — the engine itself worked).
	OutcomeOK Outcome = iota
	// OutcomeFailure: an engine timeout or internal error; feeds the
	// model's circuit breaker.
	OutcomeFailure
	// OutcomeCanceled: the client went away; neutral for the breaker.
	OutcomeCanceled
)

// Config tunes a Controller. Zero values disable the corresponding
// mechanism: rate 0 means unlimited, capacity 0 means ungated,
// breaker threshold 0 means no breaker.
type Config struct {
	// TenantRate/TenantBurst configure every per-tenant token bucket
	// (tokens per second / bucket size).
	TenantRate  float64
	TenantBurst float64
	// ModelRate/ModelBurst configure every per-model token bucket.
	ModelRate  float64
	ModelBurst float64
	// CheapCapacity/CheapQueue bound the cheap-class gate: concurrent
	// executions and FIFO waiters.
	CheapCapacity int
	CheapQueue    int
	// ExpensiveCapacity/ExpensiveQueue bound the expensive-class gate.
	ExpensiveCapacity int
	ExpensiveQueue    int
	// BreakerFailures is the consecutive-failure threshold that opens
	// a model's breaker.
	BreakerFailures int
	// BreakerCooldown is how long a breaker stays open before
	// half-opening for one probe. 0 means DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Now overrides the clock, for deterministic tests.
	Now func() time.Time
}

// DefaultBreakerCooldown is the open-state duration before a probe.
const DefaultBreakerCooldown = 5 * time.Second

// Reason labels why a request was rejected.
type Reason string

const (
	ReasonBreakerOpen       Reason = "breaker_open"
	ReasonTenantRateLimited Reason = "tenant_rate_limited"
	ReasonModelRateLimited  Reason = "model_rate_limited"
	ReasonQueueFull         Reason = "queue_full"
)

// Rejection is a shed request's backpressure signal: the HTTP status
// the transport should return (429 for rate/queue pressure, 503 for
// an open breaker) and the Retry-After the client should honor.
type Rejection struct {
	Status     int
	Reason     Reason
	RetryAfter time.Duration
}

// counts is the per-party atomic counter block.
type counts struct {
	admitted atomic.Int64
	queued   atomic.Int64
	shed     atomic.Int64
	broken   atomic.Int64
}

// tenantState is the per-tenant admission state.
type tenantState struct {
	bucket *bucket
	counts counts
}

// modelState is the per-model admission state. name is the map key it
// lives under, so a *modelState can serve as its own one-entry cache
// record (see Controller.lastModel).
type modelState struct {
	name    string
	bucket  *bucket
	breaker *Breaker
	counts  counts
}

// Controller is the admission-control front of a server: one Admit
// call per query, one Ticket per admitted query. Safe for concurrent
// use.
type Controller struct {
	cfg   Config
	now   func() time.Time
	nanos func() int64 // monotonic nanos for buckets and service times
	gates [numClasses]*Gate

	// Party state is keyed by name in sync.Maps: the steady state is
	// all hits, which sync.Map serves lock-free — the admission path
	// must stay far below the cost of the queries it fronts. Two
	// read caches shave the common lookups further: defaultTenant
	// (header-less traffic all shares one bucket) and lastModel (most
	// deployments serve one hot model; a miss just falls back to the
	// map).
	tenants       sync.Map // string -> *tenantState
	models        sync.Map // string -> *modelState
	defaultTenant *tenantState
	lastModel     atomic.Pointer[modelState]

	// queueWait, when set, observes each real gate wait (class, wait
	// duration). Set via ObserveQueueWait before serving traffic.
	queueWait func(Class, time.Duration)
}

// ObserveQueueWait installs an observer for gate queue waits — the
// telemetry hook behind the admission queue-wait histogram. It must be
// called before the controller starts admitting requests; it is not
// synchronized against concurrent AdmitInto calls.
func (c *Controller) ObserveQueueWait(fn func(Class, time.Duration)) {
	c.queueWait = fn
}

// NewController returns a Controller for the config.
func NewController(cfg Config) *Controller {
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	c := &Controller{cfg: cfg, now: now}
	if cfg.Now != nil {
		epoch := cfg.Now()
		c.nanos = func() int64 { return cfg.Now().Sub(epoch).Nanoseconds() }
	} else {
		// time.Since reads only the monotonic clock — measurably
		// cheaper than time.Now, and all the buckets need.
		epoch := time.Now()
		c.nanos = func() int64 { return int64(time.Since(epoch)) }
	}
	if cfg.CheapCapacity > 0 {
		c.gates[Cheap] = NewGate(cfg.CheapCapacity, cfg.CheapQueue)
	}
	if cfg.ExpensiveCapacity > 0 {
		c.gates[Expensive] = NewGate(cfg.ExpensiveCapacity, cfg.ExpensiveQueue)
	}
	c.defaultTenant = c.tenant(DefaultTenant)
	return c
}

// Gate returns the class's concurrency gate, or nil when the class is
// ungated. Exposed for tests and stats.
func (c *Controller) Gate(class Class) *Gate {
	if class < 0 || class >= numClasses {
		return nil
	}
	return c.gates[class]
}

func (c *Controller) tenant(name string) *tenantState {
	if v, ok := c.tenants.Load(name); ok {
		return v.(*tenantState)
	}
	t := &tenantState{}
	if c.cfg.TenantRate > 0 {
		t.bucket = newBucket(c.cfg.TenantRate, c.cfg.TenantBurst)
	}
	v, _ := c.tenants.LoadOrStore(name, t)
	return v.(*tenantState)
}

func (c *Controller) model(name string) *modelState {
	if m := c.lastModel.Load(); m != nil && m.name == name {
		return m
	}
	m := c.modelSlow(name)
	c.lastModel.Store(m)
	return m
}

func (c *Controller) modelSlow(name string) *modelState {
	if v, ok := c.models.Load(name); ok {
		return v.(*modelState)
	}
	m := &modelState{name: name}
	if c.cfg.ModelRate > 0 {
		m.bucket = newBucket(c.cfg.ModelRate, c.cfg.ModelBurst)
	}
	if c.cfg.BreakerFailures > 0 {
		m.breaker = NewBreaker(c.cfg.BreakerFailures, c.cfg.BreakerCooldown, c.now)
	}
	v, _ := c.models.LoadOrStore(name, m)
	return v.(*modelState)
}

// Ticket is one admitted request: call Done exactly once with the
// outcome so the gate slot is released, the service time observed,
// and the breaker fed. The zero Ticket is valid — Done on it is a
// no-op — so transports can keep one on the stack whether or not a
// controller is configured.
type Ticket struct {
	ctl     *Controller
	gate    *Gate
	breaker *Breaker
	probe   bool
	sampled bool  // this request times its service for the gate EWMA
	start   int64 // controller nanos at admission, when sampled
	done    atomic.Bool
}

// Admit runs one query through the admission pipeline. Exactly one of
// the results is non-nil:
//
//   - a *Ticket when admitted (call Done when the query finishes);
//   - a *Rejection when shed (write the 429/503 + Retry-After);
//   - an error when ctx ended while the request waited in a gate
//     queue (the transport maps it like any other ctx failure).
//
// An empty tenant means DefaultTenant.
func (c *Controller) Admit(ctx context.Context, tenant, model string, class Class) (*Ticket, *Rejection, error) {
	t := new(Ticket)
	admitted, rej, err := c.AdmitInto(ctx, t, tenant, model, class)
	if !admitted {
		return nil, rej, err
	}
	return t, nil, nil
}

// AdmitInto is Admit with a caller-allocated Ticket — the serving hot
// path runs once per query, so the transport keeps the Ticket on its
// stack instead of paying a heap allocation. t must be zero; it is
// filled on admission and left untouched otherwise (Done on it stays
// a no-op). admitted reports whether t is live.
func (c *Controller) AdmitInto(ctx context.Context, t *Ticket, tenant, model string, class Class) (admitted bool, _ *Rejection, _ error) {
	var ts *tenantState
	if tenant == "" || tenant == DefaultTenant {
		ts = c.defaultTenant
	} else {
		ts = c.tenant(tenant)
	}
	ms := c.model(model)

	// 1. Breaker: a model that keeps failing is not asked again until
	// the cooldown elapses; one probe at a time thereafter.
	var probe bool
	if ms.breaker != nil {
		ok, isProbe, retry := ms.breaker.Allow()
		if !ok {
			ts.counts.broken.Add(1)
			ms.counts.broken.Add(1)
			return false, &Rejection{Status: 503, Reason: ReasonBreakerOpen, RetryAfter: retry}, nil
		}
		probe = isProbe
	}

	reject := func(rej *Rejection) (bool, *Rejection, error) {
		ts.counts.shed.Add(1)
		ms.counts.shed.Add(1)
		if probe {
			// The probe slot must not leak when a later stage sheds
			// the probing request.
			ms.breaker.Record(true, OutcomeCanceled)
		}
		return false, rej, nil
	}

	// 2. Token buckets: tenant first (the flood we are isolating),
	// then model. One clock read serves both buckets and the ticket's
	// start time — reading the clock is a meaningful share of the
	// admission budget.
	now := c.nanos()
	if ts.bucket != nil {
		if ok, retry := ts.bucket.take(now); !ok {
			return reject(&Rejection{Status: 429, Reason: ReasonTenantRateLimited, RetryAfter: retry})
		}
	}
	if ms.bucket != nil {
		if ok, retry := ms.bucket.take(now); !ok {
			return reject(&Rejection{Status: 429, Reason: ReasonModelRateLimited, RetryAfter: retry})
		}
	}

	// 3. Concurrency gate for the cost class.
	gate := c.Gate(class)
	var waited bool
	if gate != nil {
		var err error
		waited, err = gate.Enter(ctx)
		switch {
		case err == ErrQueueFull:
			return reject(&Rejection{Status: 429, Reason: ReasonQueueFull, RetryAfter: gate.RetryAfter()})
		case err != nil:
			// ctx ended while queued: the client is gone, nothing was
			// shed by policy. The wait itself is still counted (and
			// observed — an abandoned wait is still queue time).
			ts.counts.queued.Add(1)
			ms.counts.queued.Add(1)
			if c.queueWait != nil {
				c.queueWait(class, time.Duration(c.nanos()-now))
			}
			if probe {
				ms.breaker.Record(true, OutcomeCanceled)
			}
			return false, nil, err
		}
	}
	t.ctl, t.gate, t.breaker, t.probe = c, gate, ms.breaker, probe
	var afterWait int64
	if waited {
		// One clock read serves both the queue-wait observation and
		// the sampled ticket's service-time start below.
		afterWait = c.nanos()
		if c.queueWait != nil {
			c.queueWait(class, time.Duration(afterWait-now))
		}
	}
	if gate != nil && gate.shouldSample() {
		t.sampled = true
		t.start = now
		if waited {
			// Queue time is not service time; restart the clock.
			t.start = afterWait
		}
	}
	if waited {
		ts.counts.queued.Add(1)
		ms.counts.queued.Add(1)
	}
	ts.counts.admitted.Add(1)
	ms.counts.admitted.Add(1)
	return true, nil, nil
}

// RecordLoad feeds a model's breaker from the snapshot-load path: a
// failed load counts as a model failure (and may open the breaker), a
// successful load resets the breaker — a freshly published model
// deserves a clean slate.
func (c *Controller) RecordLoad(model string, err error) {
	ms := c.model(model)
	if ms.breaker == nil {
		return
	}
	if err != nil {
		ms.breaker.RecordFailure()
	} else {
		ms.breaker.Reset()
	}
}

// Done releases the admitted request: the gate slot is freed (waking
// the oldest waiter), the observed service time feeds the
// Retry-After estimator, and the outcome feeds the model's breaker.
// Done is idempotent.
func (t *Ticket) Done(outcome Outcome) {
	if t == nil || !t.done.CompareAndSwap(false, true) {
		return
	}
	if t.gate != nil {
		var service time.Duration
		if t.sampled {
			service = time.Duration(t.ctl.nanos() - t.start)
		}
		t.gate.Leave(service)
	}
	if t.breaker != nil {
		t.breaker.Record(t.probe, outcome)
	}
}

// Counts is a plain snapshot of one party's counters.
type Counts struct {
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	Shed     int64 `json:"shed"`
	Broken   int64 `json:"broken"`
}

// PartyStats is one tenant's or model's counter snapshot.
type PartyStats struct {
	Name string `json:"name"`
	Counts
}

// GateStats is one gate's point-in-time state.
type GateStats struct {
	Class        string `json:"class"`
	Capacity     int    `json:"capacity"`
	MaxQueue     int    `json:"max_queue"`
	InFlight     int    `json:"in_flight"`
	Queued       int    `json:"queued"`
	AvgServiceNs int64  `json:"avg_service_ns"`
}

// BreakerStats is one model breaker's point-in-time state.
type BreakerStats struct {
	Model    string `json:"model"`
	State    string `json:"state"`
	Failures int    `json:"consecutive_failures"`
	Opens    int64  `json:"opens"`
}

// Stats is the controller's observable state, rendered with
// deterministic ordering (names sorted) for /stats and /metrics.
type Stats struct {
	Tenants  []PartyStats   `json:"tenants"`
	Models   []PartyStats   `json:"models"`
	Gates    []GateStats    `json:"gates"`
	Breakers []BreakerStats `json:"breakers,omitempty"`
}

func snapshotCounts(c *counts) Counts {
	return Counts{
		Admitted: c.admitted.Load(),
		Queued:   c.queued.Load(),
		Shed:     c.shed.Load(),
		Broken:   c.broken.Load(),
	}
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	var tenantNames, modelNames []string
	c.tenants.Range(func(k, _ any) bool {
		tenantNames = append(tenantNames, k.(string))
		return true
	})
	c.models.Range(func(k, _ any) bool {
		modelNames = append(modelNames, k.(string))
		return true
	})
	sort.Strings(tenantNames)
	sort.Strings(modelNames)

	var st Stats
	for _, name := range tenantNames {
		st.Tenants = append(st.Tenants, PartyStats{Name: name, Counts: snapshotCounts(&c.tenant(name).counts)})
	}
	for _, name := range modelNames {
		ms := c.model(name)
		st.Models = append(st.Models, PartyStats{Name: name, Counts: snapshotCounts(&ms.counts)})
		if ms.breaker != nil {
			state, failures, opens := ms.breaker.Snapshot()
			st.Breakers = append(st.Breakers, BreakerStats{
				Model: name, State: state.String(), Failures: failures, Opens: opens,
			})
		}
	}
	for class := Class(0); class < numClasses; class++ {
		g := c.gates[class]
		if g == nil {
			continue
		}
		inflight, queued := g.Load()
		st.Gates = append(st.Gates, GateStats{
			Class:        class.String(),
			Capacity:     g.Capacity(),
			MaxQueue:     g.MaxQueue(),
			InFlight:     inflight,
			Queued:       queued,
			AvgServiceNs: g.AvgServiceNs(),
		})
	}
	return st
}
