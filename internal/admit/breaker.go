package admit

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request at a time is admitted; its
	// outcome closes or reopens the breaker.
	BreakerHalfOpen
)

// String names the state for stats and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// Breaker is a per-model circuit breaker: it opens after threshold
// consecutive failures (engine timeouts/internal errors, failed
// snapshot loads), stays open for cooldown rejecting everything with
// a Retry-After of the remaining cooldown, then half-opens and
// admits one probe at a time — a probe success closes it, a probe
// failure reopens it for another full cooldown.
// A closed breaker — the steady state of a healthy model — is
// lock-free on both sides: Allow is one atomic load and Record of a
// success is a load plus a store. Transitions and everything rarer
// (failures, open/half-open traffic) go through the mutex; state is
// only ever written while mu is held.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    atomic.Int32 // BreakerState
	failures atomic.Int32 // consecutive, in closed state

	mu       sync.Mutex
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    int64
}

// NewBreaker returns a closed breaker; now overrides the clock for
// deterministic tests (nil means time.Now).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may proceed. probe is set when the
// admitted request is the half-open probe — its Record call decides
// the breaker's fate. When rejected, retry is the remaining cooldown
// (or the full cooldown while a probe is pending).
func (b *Breaker) Allow() (ok, probe bool, retry time.Duration) {
	if BreakerState(b.state.Load()) == BreakerClosed {
		return true, false, 0
	}
	return b.allowSlow()
}

func (b *Breaker) allowSlow() (ok, probe bool, retry time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerClosed: // closed while this request took the lock
		return true, false, 0
	case BreakerOpen:
		remaining := b.openedAt.Add(b.cooldown).Sub(b.now())
		if remaining > 0 {
			return false, false, remaining
		}
		b.probing = true
		b.state.Store(int32(BreakerHalfOpen))
		return true, true, 0
	default: // BreakerHalfOpen
		if b.probing {
			return false, false, b.cooldown
		}
		b.probing = true
		return true, true, 0
	}
}

// Record feeds one finished request's outcome back. probe must be the
// value Allow returned for that request. Canceled outcomes are
// neutral: they release a pending probe without judging the model.
func (b *Breaker) Record(probe bool, outcome Outcome) {
	if !probe && outcome == OutcomeOK && BreakerState(b.state.Load()) == BreakerClosed {
		// Hot path: healthy traffic on a closed breaker. If the breaker
		// opens concurrently, the stale reset below is harmless —
		// opening already zeroed the count.
		b.failures.Store(0)
		return
	}
	b.recordSlow(probe, outcome)
}

func (b *Breaker) recordSlow(probe bool, outcome Outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe && BreakerState(b.state.Load()) == BreakerHalfOpen {
		b.probing = false
		switch outcome {
		case OutcomeOK:
			b.state.Store(int32(BreakerClosed))
			b.failures.Store(0)
		case OutcomeFailure:
			b.openLocked()
		}
		return
	}
	// Non-probe traffic only matters while closed (requests admitted
	// before the breaker opened may still drain afterwards; their
	// outcomes must not flap a state they did not see).
	if BreakerState(b.state.Load()) != BreakerClosed {
		return
	}
	switch outcome {
	case OutcomeOK:
		b.failures.Store(0)
	case OutcomeFailure:
		if int(b.failures.Add(1)) >= b.threshold {
			b.openLocked()
		}
	}
}

// RecordFailure counts one failure event outside the request path
// (a failed snapshot load): it advances the consecutive-failure count
// exactly like a failed request, and reopens a half-open breaker.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerClosed:
		if int(b.failures.Add(1)) >= b.threshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		b.probing = false
		b.openLocked()
	}
}

// Reset force-closes the breaker (a fresh model was published).
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state.Store(int32(BreakerClosed))
	b.failures.Store(0)
	b.probing = false
}

// openLocked transitions to open; callers hold b.mu.
func (b *Breaker) openLocked() {
	b.state.Store(int32(BreakerOpen))
	b.openedAt = b.now()
	b.failures.Store(0)
	b.opens++
}

// Snapshot reports the state, the consecutive-failure count, and how
// many times the breaker has opened.
func (b *Breaker) Snapshot() (state BreakerState, failures int, opens int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerState(b.state.Load()), int(b.failures.Load()), b.opens
}
