package admit

import (
	"context"
	"testing"
)

func newBenchController() *Controller {
	return NewController(Config{
		TenantRate: 1e12, TenantBurst: 1e12,
		ModelRate: 1e12, ModelBurst: 1e12,
		CheapCapacity: 64, CheapQueue: 64,
		ExpensiveCapacity: 8, ExpensiveQueue: 16,
		BreakerFailures: 100,
	})
}

// BenchmarkTicket is the full admission round trip exactly as the
// serving path runs it — AdmitInto with a stack ticket, every
// mechanism active, nothing shedding.
func BenchmarkTicket(b *testing.B) {
	c := newBenchController()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tk Ticket
		if admitted, rej, err := c.AdmitInto(ctx, &tk, "bench", "bench", Cheap); !admitted {
			b.Fatalf("rejected: %v %v", rej, err)
		}
		tk.Done(OutcomeOK)
	}
}
