// Package stats provides the small statistical helpers the experiment
// harness uses to render the paper's figures as data series:
// histograms, summaries, and correlation.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual five-number-ish description of a sample.
type Summary struct {
	N          int
	Mean, Std  float64
	Min, Max   float64
	Median     float64
	Q25, Q75   float64
	Sum        float64
	NaNOrInfOK bool
}

// Summarize computes a Summary. It fails on empty input or (unless
// tolerated) non-finite entries.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Summary{}, fmt.Errorf("stats: non-finite value %v", v)
		}
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var sq float64
	for _, v := range xs {
		d := v - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(s.N))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantile(sorted, 0.5)
	s.Q25 = quantile(sorted, 0.25)
	s.Q75 = quantile(sorted, 0.75)
	return s, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram buckets xs into `bins` equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram; values at Max land in the last bin.
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: %d bins", bins)
	}
	if len(xs) == 0 {
		return nil, errors.New("stats: empty sample")
	}
	min, max := xs[0], xs[0]
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("stats: non-finite value %v", v)
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	width := (max - min) / float64(bins)
	for _, v := range xs {
		b := 0
		// width can still overflow to +Inf for extreme ranges; the
		// division then yields 0 or NaN, so clamp both ends.
		if width > 0 && !math.IsInf(width, 0) {
			b = int((v - min) / width)
			if b >= bins {
				b = bins - 1
			}
			if b < 0 {
				b = 0
			}
		}
		h.Counts[b]++
	}
	return h, nil
}

// BucketLabel formats the [lo, hi) range of bin b.
func (h *Histogram) BucketLabel(b int) string {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	lo := h.Min + float64(b)*width
	return fmt.Sprintf("[%.3f,%.3f)", lo, lo+width)
}

// Pearson computes the linear correlation coefficient of two equal-
// length samples.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: lengths %d != %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, errors.New("stats: need at least two points")
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var num, da, db float64
	for i := range a {
		num += (a[i] - ma) * (b[i] - mb)
		da += (a[i] - ma) * (a[i] - ma)
		db += (b[i] - mb) * (b[i] - mb)
	}
	if da == 0 || db == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return num / math.Sqrt(da*db), nil
}
