package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := Summarize([]float64{math.NaN()}); err == nil {
		t.Error("want error for NaN")
	}
	if _, err := Summarize([]float64{math.Inf(1)}); err == nil {
		t.Error("want error for Inf")
	}
	one, err := Summarize([]float64{7})
	if err != nil || one.Median != 7 || one.Q25 != 7 {
		t.Errorf("singleton summary = %+v, %v", one, err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Bins over [0,1): [0,0.5) gets {0, 0.1}; [0.5,1] gets {0.5, 0.9, 1.0}.
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.BucketLabel(0) == "" {
		t.Error("empty bucket label")
	}
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("want error for zero bins")
	}
	// Constant sample: everything lands in bin 0.
	hc, err := NewHistogram([]float64{2, 2, 2}, 4)
	if err != nil || hc.Counts[0] != 3 {
		t.Errorf("constant histogram = %v, %v", hc.Counts, err)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	r, err := Pearson(a, b)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, %v", r, err)
	}
	c := []float64{8, 6, 4, 2}
	r, _ = Pearson(a, c)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("anti r = %v", r)
	}
	if _, err := Pearson(a, []float64{1}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("want error for zero variance")
	}
}

// Property: histogram counts always sum to the sample size, and
// Pearson is always in [-1, 1].
func TestProperties(t *testing.T) {
	f := func(raw []float64, binsRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		bins := 1 + int(binsRaw%10)
		h, err := NewHistogram(xs, bins)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		if total != len(xs) {
			return false
		}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = xs[len(xs)-1-i]
		}
		if r, err := Pearson(xs, ys); err == nil {
			if r < -1-1e-9 || r > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
