package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestModelJSONRoundTripRandomized: WriteJSON then ReadModelJSON must
// reproduce the model exactly — table contents, attribute names,
// config, hyperedges in order, and the EdgeACV cache bit for bit —
// on a randomized model (complementing the fixed-fixture round trip
// in rules_test.go).
func TestModelJSONRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tb := randTable(t, rng, 6, 3, 200)
	cfg := Config{GammaEdge: 1.02, GammaPair: 1.01, MaxTailSize: 2, Candidates: EdgeSeeded}
	m, err := Build(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if back.Table.NumRows() != tb.NumRows() || back.Table.NumAttrs() != tb.NumAttrs() || back.Table.K() != tb.K() {
		t.Fatalf("table shape changed: %dx%d k=%d", back.Table.NumRows(), back.Table.NumAttrs(), back.Table.K())
	}
	for i := 0; i < tb.NumRows(); i++ {
		for j := 0; j < tb.NumAttrs(); j++ {
			if back.Table.At(i, j) != tb.At(i, j) {
				t.Fatalf("cell (%d,%d) changed", i, j)
			}
		}
	}
	for j, name := range tb.Attrs() {
		if back.Table.AttrName(j) != name {
			t.Fatalf("attr %d renamed %q -> %q", j, name, back.Table.AttrName(j))
		}
	}
	if back.Config != m.Config {
		t.Fatalf("config changed: %+v -> %+v", m.Config, back.Config)
	}
	if len(back.EdgeACV) != len(m.EdgeACV) {
		t.Fatalf("EdgeACV length %d -> %d", len(m.EdgeACV), len(back.EdgeACV))
	}
	for i := range m.EdgeACV {
		if back.EdgeACV[i] != m.EdgeACV[i] {
			t.Fatalf("EdgeACV[%d] %v -> %v", i, m.EdgeACV[i], back.EdgeACV[i])
		}
	}
	eo, eb := m.H.Edges(), back.H.Edges()
	if len(eo) != len(eb) {
		t.Fatalf("%d edges -> %d", len(eo), len(eb))
	}
	for i := range eo {
		if !intsEqual(eo[i].Tail, eb[i].Tail) || !intsEqual(eo[i].Head, eb[i].Head) || eo[i].Weight != eb[i].Weight {
			t.Fatalf("edge %d %+v -> %+v", i, eo[i], eb[i])
		}
	}

	// The loaded model must be fully functional: association tables
	// rebuilt from the round-tripped training table agree with the
	// originals.
	for _, e := range eo {
		if len(e.Head) != 1 {
			continue
		}
		atO, err := m.AssociationTableFor(e.Tail, e.Head[0])
		if err != nil {
			t.Fatal(err)
		}
		atB, err := back.AssociationTableFor(e.Tail, e.Head[0])
		if err != nil {
			t.Fatal(err)
		}
		if atO.ACV() != atB.ACV() {
			t.Fatalf("AT ACV for %v->%v changed: %v -> %v", e.Tail, e.Head, atO.ACV(), atB.ACV())
		}
	}

	// Round-tripping the loaded model again is byte-stable.
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("second round trip not byte-stable")
	}
}

// TestReadModelJSONRejectsCorruptInputs covers load-time validation
// cases beyond rules_test.go's: truncated JSON, cell values outside
// 1..k, and out-of-range edge attributes.
func TestReadModelJSONRejectsCorruptInputs(t *testing.T) {
	for _, bad := range []string{
		``,
		`{`,
		`{"config":{},"k":3,"attrs":["A","B"],"rows":[[1,9]],"edges":[],"edgeACV":[0,0,0,0]}`,
		`{"config":{},"k":3,"attrs":["A","B"],"rows":[[1,2]],"edges":[{"tail":[5],"head":[0],"weight":1}],"edgeACV":[0,0,0,0]}`,
		`{"config":{},"k":3,"attrs":["A","B"],"rows":[[1,2]],"edges":[],"edgeACV":[0]}`,
	} {
		if _, err := ReadModelJSON(bytes.NewReader([]byte(bad))); err == nil {
			t.Errorf("corrupt input %q accepted", bad)
		}
	}
}
