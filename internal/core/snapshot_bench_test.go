package core

import (
	"bytes"
	"testing"
)

// benchModel builds the model-load benchmark fixture: a serving-sized
// model whose persisted bulk is dominated by the training table, the
// case the binary rows section is designed for.
func benchModel(b *testing.B) *Model {
	b.Helper()
	tb := benchTable(b, 30, 3, 20000)
	m, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0, Candidates: EdgeSeeded})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkReadModelJSON / BenchmarkReadSnapshot measure cold model
// load — the serving restart / hot-reload critical path. The PR-3
// acceptance bar is snapshot >= 5x faster than JSON on this fixture.
func BenchmarkReadModelJSON(b *testing.B) {
	m := benchModel(b)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadModelJSON(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadSnapshot(b *testing.B) {
	m := benchModel(b)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, m, SaveOptions{}); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSnapshot(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteSnapshot(b *testing.B) {
	m := benchModel(b)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteSnapshot(&buf, m, SaveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
