package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestMineRulesInterestDB(t *testing.T) {
	tb := interestDB(t)
	m, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	music := tb.AttrIndex("M")
	rules, err := MineRules(m, music, MineOptions{MinSupport: 0.3, MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	// Example 3.5's rule {R=h, P=h} => {M=l} (supp 0.5, conf 0.75)
	// must be among them.
	found := false
	for _, r := range rules {
		if len(r.Rule.X) != 2 {
			continue
		}
		names := map[string]int{}
		for _, it := range r.Rule.X {
			names[tb.AttrName(it.Attr)] = int(it.Val)
		}
		if names["R"] == 3 && names["P"] == 3 && r.Rule.Y[0].Val == 1 {
			found = true
			if !almost(r.Support, 0.5) || !almost(r.Confidence, 0.75) {
				t.Errorf("rule quality = (%v, %v), want (0.5, 0.75)", r.Support, r.Confidence)
			}
			// Base rate of M=1 is 3/8; lift = 0.75 / 0.375 = 2.
			if !almost(r.Lift, 2.0) {
				t.Errorf("lift = %v, want 2", r.Lift)
			}
		}
	}
	if !found {
		t.Error("Example 3.5 rule not mined")
	}
	// Ranking: scores are non-increasing.
	for i := 1; i < len(rules); i++ {
		si := rules[i-1].Support * rules[i-1].Confidence
		sj := rules[i].Support * rules[i].Confidence
		if sj > si+1e-12 {
			t.Fatalf("rules not ranked: %v then %v", si, sj)
		}
	}
	// Thresholds are respected.
	for _, r := range rules {
		if r.Support < 0.3 || r.Confidence < 0.6 {
			t.Fatalf("rule below thresholds: %+v", r)
		}
	}
	// Cap works.
	capped, err := MineRules(m, music, MineOptions{MaxRules: 2})
	if err != nil || len(capped) != 2 {
		t.Errorf("capped = %d rules, %v", len(capped), err)
	}
	if _, err := MineRules(m, 99, MineOptions{}); err == nil {
		t.Error("want error for bad head")
	}
}

func TestFormatRule(t *testing.T) {
	tb := interestDB(t)
	r := Rule{X: []Item{{0, 3}, {1, 3}}, Y: []Item{{2, 1}}}
	got := FormatRule(tb, r)
	want := "{R=3, P=3} => {M=1}"
	if got != want {
		t.Errorf("FormatRule = %q, want %q", got, want)
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	tb := interestDB(t)
	m, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.H.NumEdges() != m.H.NumEdges() {
		t.Fatalf("edges %d != %d", back.H.NumEdges(), m.H.NumEdges())
	}
	if back.Table.NumRows() != tb.NumRows() || back.Table.K() != tb.K() {
		t.Fatal("table lost in round trip")
	}
	for a := 0; a < tb.NumAttrs(); a++ {
		for c := 0; c < tb.NumAttrs(); c++ {
			if back.EdgeACVAt(a, c) != m.EdgeACVAt(a, c) {
				t.Fatalf("EdgeACV mismatch at (%d,%d)", a, c)
			}
		}
	}
	// The loaded model is fully functional: ATs rebuild identically.
	at1, err := m.AssociationTableFor([]int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	at2, err := back.AssociationTableFor([]int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(at1.ACV(), at2.ACV()) {
		t.Error("loaded model produces different ATs")
	}
}

func TestReadModelJSONRejectsCorrupt(t *testing.T) {
	if _, err := ReadModelJSON(strings.NewReader("junk")); err == nil {
		t.Error("want error for junk")
	}
	bad := `{"config":{},"k":2,"attrs":["A","B"],"rows":[[1,1]],"edges":[],"edgeACV":[0]}`
	if _, err := ReadModelJSON(strings.NewReader(bad)); err == nil {
		t.Error("want error for wrong edgeACV length")
	}
	badEdge := `{"config":{},"k":2,"attrs":["A","B"],"rows":[[1,1]],"edges":[{"tail":[0],"head":[0],"weight":1}],"edgeACV":[0,0,0,0]}`
	if _, err := ReadModelJSON(strings.NewReader(badEdge)); err == nil {
		t.Error("want error for overlapping edge")
	}
}
