package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"hypermine/internal/hypergraph"
	"hypermine/internal/table"
)

// Binary model snapshots.
//
// The JSON persistence of persist.go is human-inspectable but slow to
// load: every cell of the training table round-trips through a JSON
// number. Serving restarts and hot reloads are bounded by model load
// time, so snapshots use a dedicated binary format:
//
//	magic   "HYPM"                        4 bytes
//	version uvarint                       (currently 1)
//	flags   uvarint                       bit 0: snapshot carries rows
//	section schema                        k, attribute names
//	section config                        the build Config
//	section edges                         varint tails/heads + weights
//	section acv                           the EdgeACV cache
//	section rows (iff flags bit 0)        column-major raw cells
//	crc32   IEEE, little-endian           over magic..last section
//
// Every section is length-prefixed (uvarint payload size), so readers
// can verify framing per section and future versions can add sections
// without breaking old layouts. Vertex ids and counts are uvarints;
// float64s (gammas, edge weights, ACVs) are little-endian IEEE bits so
// values round-trip exactly. Rows are stored column-major one byte per
// cell (table.Value is uint8), which makes the rows section — the bulk
// of a full snapshot — a straight memory copy on load.
//
// The rows section is optional so serving snapshots can omit the
// training table. A model loaded without rows has RowsOmitted set and
// an empty (schema-only) table: graph queries (similarity, dominators,
// weights) work, while row-dependent operations (association tables,
// rule mining, classifier construction) fail via RequireRows.

// snapshotMagic identifies a hypermine binary model snapshot.
var snapshotMagic = [4]byte{'H', 'Y', 'P', 'M'}

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

const snapshotFlagRows = 1 << 0

// SaveOptions tunes model persistence (both the JSON and the binary
// codec).
type SaveOptions struct {
	// OmitRows drops the training table from the saved model. The
	// resulting file is much smaller and loads faster, but the loaded
	// model cannot rebuild association tables: see Model.RequireRows.
	OmitRows bool
}

// appendUvarint / appendFloat64 are the snapshot primitive writers.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// appendSection frames a section payload with its uvarint length.
func appendSection(dst, payload []byte) []byte {
	dst = appendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// WriteSnapshot serializes the model in the binary snapshot format.
// With opt.OmitRows (or when the model itself has no rows) the rows
// section is skipped and the snapshot is marked row-less.
func WriteSnapshot(w io.Writer, m *Model, opt SaveOptions) error {
	if m == nil || m.Table == nil || m.H == nil {
		return fmt.Errorf("core: snapshot: nil model")
	}
	tb := m.Table
	n := tb.NumAttrs()
	if len(m.EdgeACV) != n*n {
		return fmt.Errorf("core: snapshot: edgeACV has %d entries, want %d", len(m.EdgeACV), n*n)
	}
	hasRows := !opt.OmitRows && !m.RowsOmitted && tb.NumRows() > 0

	buf := make([]byte, 0, snapshotSizeHint(m, hasRows))
	buf = append(buf, snapshotMagic[:]...)
	buf = appendUvarint(buf, SnapshotVersion)
	var flags uint64
	if hasRows {
		flags |= snapshotFlagRows
	}
	buf = appendUvarint(buf, flags)

	// Schema section: k, then the attribute names.
	var sec []byte
	sec = appendUvarint(sec, uint64(tb.K()))
	sec = appendUvarint(sec, uint64(n))
	for _, a := range tb.Attrs() {
		sec = appendUvarint(sec, uint64(len(a)))
		sec = append(sec, a...)
	}
	buf = appendSection(buf, sec)

	// Config section.
	cfg := m.Config
	sec = sec[:0]
	sec = appendUvarint(sec, uint64(cfg.K))
	sec = appendUvarint(sec, uint64(cfg.MaxTailSize))
	sec = appendUvarint(sec, uint64(cfg.Candidates))
	sec = appendUvarint(sec, uint64(cfg.Parallelism))
	sec = appendFloat64(sec, cfg.GammaEdge)
	sec = appendFloat64(sec, cfg.GammaPair)
	sec = appendFloat64(sec, cfg.GammaTriple)
	buf = appendSection(buf, sec)

	// Edges section.
	edges := m.H.Edges()
	sec = sec[:0]
	sec = appendUvarint(sec, uint64(len(edges)))
	for _, e := range edges {
		sec = appendUvarint(sec, uint64(len(e.Tail)))
		for _, v := range e.Tail {
			sec = appendUvarint(sec, uint64(v))
		}
		sec = appendUvarint(sec, uint64(len(e.Head)))
		for _, v := range e.Head {
			sec = appendUvarint(sec, uint64(v))
		}
		sec = appendFloat64(sec, e.Weight)
	}
	buf = appendSection(buf, sec)

	// ACV section.
	sec = sec[:0]
	sec = appendUvarint(sec, uint64(len(m.EdgeACV)))
	for _, v := range m.EdgeACV {
		sec = appendFloat64(sec, v)
	}
	buf = appendSection(buf, sec)

	// Rows section: column-major raw bytes.
	if hasRows {
		rows := tb.NumRows()
		sec = sec[:0]
		sec = appendUvarint(sec, uint64(rows))
		for j := 0; j < n; j++ {
			col := tb.Column(j)
			for _, v := range col {
				sec = append(sec, byte(v))
			}
		}
		buf = appendSection(buf, sec)
	}

	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

// snapshotSizeHint estimates the serialized size to seed the write
// buffer (exactness is irrelevant; it only avoids regrowth churn).
func snapshotSizeHint(m *Model, hasRows bool) int {
	n := m.Table.NumAttrs()
	size := 256 + 16*n + 32*m.H.NumEdges() + 8*len(m.EdgeACV)
	if hasRows {
		size += n * m.Table.NumRows()
	}
	return size
}

// snapReader decodes snapshot primitives from an in-memory buffer.
type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) remaining() int { return len(r.b) - r.off }

func (r *snapReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("core: snapshot: truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a uvarint used as an element count and bounds it by the
// bytes actually remaining (each element costs at least one byte), so
// corrupt counts fail cleanly instead of attempting huge allocations.
func (r *snapReader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, fmt.Errorf("core: snapshot: %s count %d exceeds payload", what, v)
	}
	return int(v), nil
}

func (r *snapReader) float64() (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("core: snapshot: truncated float at offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (r *snapReader) bytes(n int, what string) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("core: snapshot: truncated %s at offset %d", what, r.off)
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

// section returns a reader over the next length-prefixed section.
func (r *snapReader) section(what string) (*snapReader, error) {
	size, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %s section: %w", what, err)
	}
	payload, err := r.bytes(int(size), what+" section")
	if err != nil {
		return nil, err
	}
	return &snapReader{b: payload}, nil
}

// ReadSnapshot loads a model written by WriteSnapshot, verifying the
// checksum and re-validating the schema and every hyperedge. Snapshots
// saved with OmitRows come back with RowsOmitted set and an empty
// training table (see Model.RequireRows).
func ReadSnapshot(r io.Reader) (*Model, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	if len(raw) < len(snapshotMagic)+4 {
		return nil, fmt.Errorf("core: snapshot: %d bytes is too short", len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("core: snapshot: checksum mismatch (got %08x, want %08x)", got, sum)
	}
	if string(body[:4]) != string(snapshotMagic[:]) {
		return nil, fmt.Errorf("core: snapshot: bad magic %q", body[:4])
	}
	sr := &snapReader{b: body, off: 4}
	version, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	if version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot: unsupported version %d (have %d)", version, SnapshotVersion)
	}
	flags, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	hasRows := flags&snapshotFlagRows != 0

	// Schema.
	sec, err := sr.section("schema")
	if err != nil {
		return nil, err
	}
	k64, err := sec.uvarint()
	if err != nil {
		return nil, err
	}
	nAttrs, err := sec.count("attribute")
	if err != nil {
		return nil, err
	}
	attrs := make([]string, nAttrs)
	for j := range attrs {
		nameLen, err := sec.count("attribute-name")
		if err != nil {
			return nil, err
		}
		name, err := sec.bytes(nameLen, "attribute name")
		if err != nil {
			return nil, err
		}
		attrs[j] = string(name)
	}

	// Config.
	sec, err = sr.section("config")
	if err != nil {
		return nil, err
	}
	var cfg Config
	cfgK, err := sec.uvarint()
	if err != nil {
		return nil, err
	}
	maxTail, err := sec.uvarint()
	if err != nil {
		return nil, err
	}
	cand, err := sec.uvarint()
	if err != nil {
		return nil, err
	}
	par, err := sec.uvarint()
	if err != nil {
		return nil, err
	}
	cfg.K, cfg.MaxTailSize, cfg.Candidates, cfg.Parallelism = int(cfgK), int(maxTail), CandidateStrategy(cand), int(par)
	if cfg.GammaEdge, err = sec.float64(); err != nil {
		return nil, err
	}
	if cfg.GammaPair, err = sec.float64(); err != nil {
		return nil, err
	}
	if cfg.GammaTriple, err = sec.float64(); err != nil {
		return nil, err
	}

	// Edges.
	sec, err = sr.section("edges")
	if err != nil {
		return nil, err
	}
	h, err := hypergraph.New(attrs)
	if err != nil {
		return nil, err
	}
	numEdges, err := sec.count("edge")
	if err != nil {
		return nil, err
	}
	var tail, head []int
	for i := 0; i < numEdges; i++ {
		if tail, err = sec.readIDs(tail, "tail"); err != nil {
			return nil, fmt.Errorf("core: snapshot edge %d: %w", i, err)
		}
		if head, err = sec.readIDs(head, "head"); err != nil {
			return nil, fmt.Errorf("core: snapshot edge %d: %w", i, err)
		}
		w, err := sec.float64()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot edge %d: %w", i, err)
		}
		if err := h.AddEdge(tail, head, w); err != nil {
			return nil, fmt.Errorf("core: snapshot edge %d: %w", i, err)
		}
	}

	// ACVs.
	sec, err = sr.section("acv")
	if err != nil {
		return nil, err
	}
	numACV, err := sec.count("acv")
	if err != nil {
		return nil, err
	}
	if numACV != nAttrs*nAttrs {
		return nil, fmt.Errorf("core: snapshot: edgeACV has %d entries, want %d", numACV, nAttrs*nAttrs)
	}
	acv := make([]float64, numACV)
	for i := range acv {
		if acv[i], err = sec.float64(); err != nil {
			return nil, err
		}
	}

	// Rows.
	var tb *table.Table
	if hasRows {
		sec, err = sr.section("rows")
		if err != nil {
			return nil, err
		}
		numRows, err := sec.uvarint()
		if err != nil {
			return nil, err
		}
		if need := uint64(nAttrs) * numRows; need != uint64(sec.remaining()) {
			return nil, fmt.Errorf("core: snapshot: rows section has %d cell bytes, want %d", sec.remaining(), need)
		}
		cols := make([][]byte, nAttrs)
		for j := range cols {
			if cols[j], err = sec.bytes(int(numRows), "row cells"); err != nil {
				return nil, err
			}
		}
		if tb, err = table.FromRawColumns(attrs, int(k64), cols); err != nil {
			return nil, fmt.Errorf("core: snapshot: %w", err)
		}
	} else {
		if tb, err = table.New(attrs, int(k64)); err != nil {
			return nil, fmt.Errorf("core: snapshot: %w", err)
		}
	}
	return &Model{Table: tb, Config: cfg, H: h, EdgeACV: acv, RowsOmitted: !hasRows}, nil
}

// readIDs decodes a count-prefixed vertex id list into buf.
func (r *snapReader) readIDs(buf []int, what string) ([]int, error) {
	n, err := r.count(what)
	if err != nil {
		return nil, err
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		v, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("%s id: %w", what, err)
		}
		buf = append(buf, int(v))
	}
	return buf, nil
}
