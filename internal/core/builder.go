package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"hypermine/internal/hypergraph"
	"hypermine/internal/runopt"
	"hypermine/internal/table"
)

// CandidateStrategy selects which 2-to-1 tail pairs the builder
// evaluates. This is an ablation knob (DESIGN.md §5).
type CandidateStrategy int

const (
	// AllPairs evaluates every {A,B} -> C combination (the paper's
	// exhaustive enumeration of §3.2.1).
	AllPairs CandidateStrategy = iota
	// EdgeSeeded only evaluates {A,B} -> C when at least one of the
	// constituent directed edges A->C, B->C was itself admitted.
	// Much faster, slightly lossy.
	EdgeSeeded
)

// Config parameterizes association-hypergraph construction (§5.1.2).
type Config struct {
	// K is the value-set cardinality the table must carry.
	K int
	// GammaEdge is gamma_{1->1}: a directed edge (A, X) is admitted
	// iff ACV({A},{X}) >= GammaEdge * ACV(empty,{X}).
	GammaEdge float64
	// GammaPair is gamma_{2->1}: a 2-to-1 hyperedge ({A,B},{X}) is
	// admitted iff its ACV >= GammaPair * max of the two constituent
	// directed-edge ACVs.
	GammaPair float64
	// GammaTriple is gamma_{3->1} for the future-work extension
	// (MaxTailSize = 3): a 3-to-1 hyperedge is admitted iff its ACV
	// >= GammaTriple * max of its three constituent 2-to-1 ACVs.
	// 0 defaults to GammaPair.
	GammaTriple float64
	// MaxTailSize is 1 (directed edges only), 2 (the paper's full
	// restricted model), or 3 (the thesis's future-work
	// generalization: 3-to-1 hyperedges seeded from admitted 2-to-1
	// edges). 0 defaults to 2.
	MaxTailSize int
	// Parallelism bounds worker goroutines; 0 means GOMAXPROCS.
	Parallelism int
	// Candidates picks the tail-pair enumeration strategy.
	Candidates CandidateStrategy

	// Run carries the runtime-only hooks of BuildContext: a progress
	// callback (PhaseEdges per head, PhasePairs per tail pair,
	// PhaseTriples per candidate group; possibly invoked concurrently
	// during parallel stages) and the context-poll stride in ACV
	// evaluations (0 = DefaultCheckEvery). Held by pointer so Config
	// stays comparable; never persisted to JSON or snapshots.
	Run *runopt.Hooks `json:"-"`

	// noBits disables the TID-bitset counting kernels regardless of k.
	// It exists so differential tests can force the scalar reference
	// kernels; production callers leave it unset.
	noBits bool
}

// DefaultCheckEvery is the default ACV-evaluation stride between
// context polls in BuildContext. One ACV evaluation is O(rows) (or
// O(rows/64) on the bitset path), so 16 of them keep cancellation
// latency in the tens of microseconds on paper-scale tables while
// making the poll cost unmeasurable against the counting work.
const DefaultCheckEvery = 16

// C1 is configuration C1 of §5.1.2: k=3, gamma_{1->1}=1.15,
// gamma_{2->1}=1.05.
func C1() Config { return Config{K: 3, GammaEdge: 1.15, GammaPair: 1.05} }

// C2 is configuration C2 of §5.1.2: k=5, gamma_{1->1}=1.20,
// gamma_{2->1}=1.12.
func C2() Config { return Config{K: 5, GammaEdge: 1.20, GammaPair: 1.12} }

func (c Config) withDefaults() Config {
	if c.MaxTailSize == 0 {
		c.MaxTailSize = 2
	}
	if c.GammaTriple == 0 {
		c.GammaTriple = c.GammaPair
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

func (c Config) validate(tb *table.Table) error {
	if c.K != 0 && c.K != tb.K() {
		return fmt.Errorf("core: config expects k=%d but table has k=%d", c.K, tb.K())
	}
	if c.GammaEdge < 1 || c.GammaPair < 1 {
		return fmt.Errorf("core: gamma values must be >= 1 (Definition 3.7), got %v and %v", c.GammaEdge, c.GammaPair)
	}
	if c.MaxTailSize < 1 || c.MaxTailSize > 3 {
		return fmt.Errorf("core: MaxTailSize %d outside 1..3", c.MaxTailSize)
	}
	if c.MaxTailSize == 3 && c.GammaTriple < 1 {
		return fmt.Errorf("core: GammaTriple %v must be >= 1", c.GammaTriple)
	}
	if tb.NumRows() == 0 {
		return fmt.Errorf("core: empty table")
	}
	if tb.NumAttrs() < 2 {
		return fmt.Errorf("core: need at least two attributes")
	}
	return nil
}

// Model is a built association hypergraph together with the training
// table it was mined from, which is retained so that association
// tables can be reconstructed for classification (§4.2).
type Model struct {
	Table  *table.Table
	Config Config
	H      *hypergraph.H

	// EdgeACV[a*n+c] caches ACV({a},{c}) for every ordered attribute
	// pair, admitted or not; used by gamma-significance and Table 5.2.
	EdgeACV []float64

	// RowsOmitted marks a model loaded from a persisted form that
	// dropped the training table (SaveOptions.OmitRows): Table carries
	// the schema but zero observations. Graph-only queries still work;
	// operations that rebuild association tables fail via RequireRows.
	RowsOmitted bool
}

// RequireRows reports whether the model still carries its training
// table. Operations that rebuild association tables (classification,
// rule mining) call it to fail with a clear error on models loaded
// from row-less snapshots instead of misbehaving on an empty table.
func (m *Model) RequireRows() error {
	if m.RowsOmitted || m.Table == nil || m.Table.NumRows() == 0 {
		return errors.New("core: model was saved without training rows (SaveOptions.OmitRows); reload from a snapshot that includes rows to rebuild association tables")
	}
	return nil
}

// EdgeACVAt returns the cached ACV({a},{c}).
func (m *Model) EdgeACVAt(a, c int) float64 {
	return m.EdgeACV[a*m.Table.NumAttrs()+c]
}

// AssociationTableFor rebuilds the AT of an edge of the model from the
// training table.
func (m *Model) AssociationTableFor(tail []int, head int) (*AssociationTable, error) {
	if err := m.RequireRows(); err != nil {
		return nil, err
	}
	return BuildAssociationTable(m.Table, tail, head)
}

// acvEdge computes ACV({a},{c}) with a caller-owned k*k scratch buffer.
func acvEdge(colA, colC []table.Value, k int, cnt []int32) float64 {
	for i := range cnt[:k*k] {
		cnt[i] = 0
	}
	for i, va := range colA {
		cnt[int(va-1)*k+int(colC[i]-1)]++
	}
	var sum int64
	for r := 0; r < k; r++ {
		best := int32(0)
		for c := 0; c < k; c++ {
			if v := cnt[r*k+c]; v > best {
				best = v
			}
		}
		sum += int64(best)
	}
	return float64(sum) / float64(len(colA))
}

// acvPair computes ACV({a,b},{c}) given the precomputed tail row index
// per observation and a k*k*k scratch buffer.
func acvPair(tailRow []int32, colC []table.Value, k int, cnt []int32) float64 {
	kk := k * k
	for i := range cnt[:kk*k] {
		cnt[i] = 0
	}
	for i, tr := range tailRow {
		cnt[int(tr)*k+int(colC[i]-1)]++
	}
	var sum int64
	for r := 0; r < kk; r++ {
		best := int32(0)
		for c := 0; c < k; c++ {
			if v := cnt[r*k+c]; v > best {
				best = v
			}
		}
		sum += int64(best)
	}
	return float64(sum) / float64(len(colC))
}

type pairEdge struct {
	a, b, c int
	acv     float64
}

// Build mines the association hypergraph of the table under the given
// configuration, following §3.2.1: directed hyperedges are constructed
// head set by head set; a combination is admitted iff it is
// gamma-significant (Definition 3.7). Edge weights are ACVs.
//
// Build is the v1 form of BuildContext with a background context; the
// two are bit-identical when the context is never canceled.
func Build(tb *table.Table, cfg Config) (*Model, error) {
	return BuildContext(context.Background(), tb, cfg)
}

// BuildContext is Build under a context: workers poll ctx every
// Config.Run.CheckEvery ACV evaluations (DefaultCheckEvery when
// unset) and the whole build returns ctx.Err() promptly once the
// context is canceled or its deadline passes, discarding partial
// results. Config.Run.Progress, when set, observes stage progress.
func BuildContext(ctx context.Context, tb *table.Table, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(tb); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := tb.Validate(); err != nil {
		return nil, err
	}
	n := tb.NumAttrs()
	k := tb.K()
	m := tb.NumRows()

	model := &Model{Table: tb, Config: cfg, EdgeACV: make([]float64, n*n)}
	h, err := hypergraph.New(tb.Attrs())
	if err != nil {
		return nil, err
	}
	model.H = h

	// Baseline ACV(empty, {c}) per head.
	null := make([]float64, n)
	for c := 0; c < n; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		null[c] = NullACV(tb, c)
	}

	// For small k the counting kernels run on the TID-bitset index
	// (built once, shared by every worker); see bitsMaxK for the
	// crossover argument.
	useBits := k <= bitsMaxK && !cfg.noBits
	var ix *table.Index
	if useBits {
		ix = tb.Index()
	}

	// Stage 1: all directed edges, parallel over heads. Workers poll
	// ctx every CheckEvery ACVs; once canceled they drain the channel
	// without computing so the feeder never blocks.
	edgeAdmit := make([]bool, n*n)
	prog := runopt.NewMeter(runopt.PhaseEdges, n, cfg.Run.Func())
	var wg sync.WaitGroup
	heads := make(chan int)
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chk := runopt.NewChecker(ctx, cfg.Run.Stride(), DefaultCheckEvery)
			var cnt []int32
			if !useBits {
				cnt = make([]int32, k*k)
			}
			for c := range heads {
				if chk.Err() != nil {
					continue
				}
				colC := tb.Column(c)
				for a := 0; a < n; a++ {
					if a == c {
						continue
					}
					if chk.Tick() != nil {
						break
					}
					var acv float64
					if useBits {
						acv = acvEdgeBits(ix, a, c)
					} else {
						acv = acvEdge(tb.Column(a), colC, k, cnt)
					}
					model.EdgeACV[a*n+c] = acv
					if acv >= cfg.GammaEdge*null[c] {
						edgeAdmit[a*n+c] = true
					}
				}
				if chk.Err() == nil {
					prog.Tick(1)
				}
			}
		}()
	}
	for c := 0; c < n && ctx.Err() == nil; c++ {
		select {
		case heads <- c:
		case <-ctx.Done():
		}
	}
	close(heads)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	for a := 0; a < n; a++ {
		for c := 0; c < n; c++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if edgeAdmit[a*n+c] {
				if err := h.AddEdge([]int{a}, []int{c}, model.EdgeACV[a*n+c]); err != nil {
					return nil, err
				}
			}
		}
	}
	if cfg.MaxTailSize < 2 {
		return model, nil
	}

	// Stage 2: 2-to-1 hyperedges, parallel over tail pairs.
	type pairJob struct{ a, b int }
	prog2 := runopt.NewMeter(runopt.PhasePairs, n*(n-1)/2, cfg.Run.Func())
	jobs := make(chan pairJob)
	results := make(chan []pairEdge, cfg.Parallelism)
	var wg2 sync.WaitGroup
	for w := 0; w < cfg.Parallelism; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			chk := runopt.NewChecker(ctx, cfg.Run.Stride(), DefaultCheckEvery)
			var cnt, tailRow []int32
			var pairBuf []uint64
			var pairCnt []int
			if useBits {
				pairBuf = make([]uint64, k*k*ix.Words())
				pairCnt = make([]int, k*k)
			} else {
				cnt = make([]int32, k*k*k)
				tailRow = make([]int32, m)
			}
			var local []pairEdge
			for job := range jobs {
				if chk.Err() != nil {
					continue
				}
				a, b := job.a, job.b
				// Materialize the tail once per pair: k*k bitmaps for
				// the bitset path, a per-row tail index otherwise.
				// Either is reused across all n-2 heads below.
				if useBits {
					fillTailPairBits(ix, a, b, pairBuf, pairCnt)
				} else {
					colA, colB := tb.Column(a), tb.Column(b)
					for i := 0; i < m; i++ {
						tailRow[i] = int32(colA[i]-1)*int32(k) + int32(colB[i]-1)
					}
				}
				for c := 0; c < n; c++ {
					if c == a || c == b {
						continue
					}
					if cfg.Candidates == EdgeSeeded && !edgeAdmit[a*n+c] && !edgeAdmit[b*n+c] {
						continue
					}
					if chk.Tick() != nil {
						break
					}
					base := model.EdgeACV[a*n+c]
					if x := model.EdgeACV[b*n+c]; x > base {
						base = x
					}
					var acv float64
					if useBits {
						acv = acvPairBits(ix, pairBuf, pairCnt, c)
					} else {
						acv = acvPair(tailRow, tb.Column(c), k, cnt)
					}
					if acv >= cfg.GammaPair*base {
						local = append(local, pairEdge{a, b, c, acv})
					}
				}
				if chk.Err() == nil {
					prog2.Tick(1)
				}
			}
			results <- local
		}()
	}
	go func() {
		defer close(jobs)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				select {
				case jobs <- pairJob{a, b}:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	var admitted []pairEdge
	done := make(chan struct{})
	go func() {
		for local := range results {
			admitted = append(admitted, local...)
		}
		close(done)
	}()
	wg2.Wait()
	close(results)
	<-done
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Deterministic edge order regardless of scheduling.
	sort.Slice(admitted, func(i, j int) bool {
		if admitted[i].a != admitted[j].a {
			return admitted[i].a < admitted[j].a
		}
		if admitted[i].b != admitted[j].b {
			return admitted[i].b < admitted[j].b
		}
		return admitted[i].c < admitted[j].c
	})
	for _, e := range admitted {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := h.AddEdge([]int{e.a, e.b}, []int{e.c}, e.acv); err != nil {
			return nil, err
		}
	}
	if cfg.MaxTailSize < 3 {
		return model, nil
	}
	if err := buildTriples(ctx, model, admitted, cfg); err != nil {
		return nil, err
	}
	return model, nil
}

// TailPair is an admitted 2-to-1 hyperedge ({A,B},{C}) with its ACV,
// in the canonical A < B order stage 2 produces. It is the seed unit
// for stage 3 and the exchange format between BuildContext and the
// incremental re-miner in internal/delta.
type TailPair struct {
	A, B, C int
	ACV     float64
}

// BuildTriplesContext runs stage 3 of BuildContext standalone: it
// seeds 3-to-1 candidates from the given admitted 2-to-1 hyperedges,
// evaluates them against model.Table, and adds the admitted triples to
// model.H in the same deterministic order as a full build. pairs must
// be the complete admitted stage-2 set (A < B, sorted as stage 2
// sorts); the result is then bit-identical to the stage-3 portion of
// BuildContext under the same config. internal/delta uses this to
// finish a MaxTailSize=3 incremental update, where maintaining 4-way
// joint counts would not pay for itself.
func BuildTriplesContext(ctx context.Context, model *Model, pairs []TailPair, cfg Config) error {
	cfg = cfg.withDefaults()
	internal := make([]pairEdge, len(pairs))
	for i, p := range pairs {
		internal[i] = pairEdge{p.A, p.B, p.C, p.ACV}
	}
	return buildTriples(ctx, model, internal, cfg)
}

// tripleKey identifies a 3-to-1 candidate: sorted tail a<b<c, head d.
type tripleKey struct{ a, b, c, d int }

// buildTriples is stage 3 (the thesis's future-work generalization):
// candidate 3-to-1 hyperedges are seeded by extending each admitted
// 2-to-1 hyperedge's tail with every other attribute, deduplicated,
// and admitted under the gamma-significance rule of Definition 3.7 —
// ACV(T, H) >= GammaTriple * max over v in T of ACV(T - {v}, H),
// where the 2-to-1 constituent ACVs are computed on demand.
func buildTriples(ctx context.Context, model *Model, pairs []pairEdge, cfg Config) error {
	tb := model.Table
	n := tb.NumAttrs()
	k := tb.K()
	m := tb.NumRows()

	// Enumerate candidates: each admitted ({a,b},{d}) extends to
	// ({a,b,v},{d}) for all v outside {a,b,d}.
	candSet := make(map[tripleKey]struct{})
	for _, p := range pairs {
		for v := 0; v < n; v++ {
			if v == p.a || v == p.b || v == p.c {
				continue
			}
			t := [3]int{p.a, p.b, v}
			sort.Ints(t[:])
			candSet[tripleKey{t[0], t[1], t[2], p.c}] = struct{}{}
		}
	}
	cands := make([]tripleKey, 0, len(candSet))
	for key := range candSet {
		cands = append(cands, key)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.a != b.a {
			return a.a < b.a
		}
		if a.b != b.b {
			return a.b < b.b
		}
		if a.c != b.c {
			return a.c < b.c
		}
		return a.d < b.d
	})

	// Group by tail triple so the tail-row index is computed once.
	groups := groupByTail(cands)
	type tripleEdge struct {
		key tripleKey
		acv float64
	}
	prog := runopt.NewMeter(runopt.PhaseTriples, len(groups), cfg.Run.Func())
	jobs := make(chan []tripleKey)
	results := make(chan []tripleEdge, cfg.Parallelism)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chk := runopt.NewChecker(ctx, cfg.Run.Stride(), DefaultCheckEvery)
			kkk := k * k * k
			cnt := make([]int32, kkk*k)
			pairCnt := make([]int32, kkk)
			tailRow := make([]int32, m)
			pairRow := make([]int32, m)
			pairCache := map[tripleKey]float64{}
			acvOfPair := func(x, y, d int) float64 {
				key := tripleKey{x, y, -1, d}
				if v, ok := pairCache[key]; ok {
					return v
				}
				colX, colY := tb.Column(x), tb.Column(y)
				for i := 0; i < m; i++ {
					pairRow[i] = int32(colX[i]-1)*int32(k) + int32(colY[i]-1)
				}
				v := acvPair(pairRow, tb.Column(d), k, pairCnt)
				pairCache[key] = v
				return v
			}
			var local []tripleEdge
			for group := range jobs {
				if chk.Err() != nil {
					continue
				}
				first := group[0]
				colA, colB, colC := tb.Column(first.a), tb.Column(first.b), tb.Column(first.c)
				for i := 0; i < m; i++ {
					tailRow[i] = (int32(colA[i]-1)*int32(k)+int32(colB[i]-1))*int32(k) + int32(colC[i]-1)
				}
				for _, cand := range group {
					if chk.Tick() != nil {
						break
					}
					base := acvOfPair(cand.a, cand.b, cand.d)
					if v := acvOfPair(cand.a, cand.c, cand.d); v > base {
						base = v
					}
					if v := acvOfPair(cand.b, cand.c, cand.d); v > base {
						base = v
					}
					colD := tb.Column(cand.d)
					for i := range cnt[:kkk*k] {
						cnt[i] = 0
					}
					for i, tr := range tailRow {
						cnt[int(tr)*k+int(colD[i]-1)]++
					}
					var sum int64
					for r := 0; r < kkk; r++ {
						best := int32(0)
						for c := 0; c < k; c++ {
							if v := cnt[r*k+c]; v > best {
								best = v
							}
						}
						sum += int64(best)
					}
					acv := float64(sum) / float64(m)
					if acv >= cfg.GammaTriple*base {
						local = append(local, tripleEdge{cand, acv})
					}
				}
				if chk.Err() == nil {
					prog.Tick(1)
				}
			}
			results <- local
		}()
	}
	go func() {
		defer close(jobs)
		for _, group := range groups {
			select {
			case jobs <- group:
			case <-ctx.Done():
				return
			}
		}
	}()
	var admitted []tripleEdge
	done := make(chan struct{})
	go func() {
		for local := range results {
			admitted = append(admitted, local...)
		}
		close(done)
	}()
	wg.Wait()
	close(results)
	<-done
	if err := ctx.Err(); err != nil {
		return err
	}

	sort.Slice(admitted, func(i, j int) bool {
		a, b := admitted[i].key, admitted[j].key
		if a.a != b.a {
			return a.a < b.a
		}
		if a.b != b.b {
			return a.b < b.b
		}
		if a.c != b.c {
			return a.c < b.c
		}
		return a.d < b.d
	})
	for _, e := range admitted {
		if err := model.H.AddEdge([]int{e.key.a, e.key.b, e.key.c}, []int{e.key.d}, e.acv); err != nil {
			return err
		}
	}
	return nil
}

// groupByTail splits the sorted candidate list into runs sharing one
// tail triple, the unit of work (and of progress) for stage 3.
func groupByTail(cands []tripleKey) [][]tripleKey {
	var groups [][]tripleKey
	start := 0
	for i := 1; i <= len(cands); i++ {
		if i == len(cands) || cands[i].a != cands[start].a ||
			cands[i].b != cands[start].b || cands[i].c != cands[start].c {
			groups = append(groups, cands[start:i])
			start = i
		}
	}
	return groups
}
