package core

import (
	"context"
	"fmt"
	"sort"

	"hypermine/internal/runopt"
	"hypermine/internal/table"
)

// ScoredRule is one mva-type association rule read off an association
// table, with its quality measures.
type ScoredRule struct {
	Rule       Rule
	Support    float64 // Supp(X), the rule row's tail support
	Confidence float64 // Conf(X ==mva==> Y)
	// Lift compares the rule's confidence against the consequent
	// value's base rate; > 1 means the antecedent is informative.
	Lift float64
}

// MineOptions filters mined rules.
type MineOptions struct {
	// MinSupport and MinConfidence are the classical thresholds
	// (§1.1); zero values accept everything.
	MinSupport    float64
	MinConfidence float64
	// MaxRules caps the result (0 = unlimited). Rules are ranked by
	// Support*Confidence, the same quantity ACV sums.
	MaxRules int

	// Run carries the runtime-only hooks of MineRulesContext: a
	// PhaseRules progress callback (one unit per hyperedge into the
	// head) and the context-poll stride in edges (0 = every edge, the
	// natural unit since each rebuilds one association table). Held by
	// pointer so MineOptions stays comparable; never persisted.
	Run *runopt.Hooks `json:"-"`
}

// MineRules extracts the mva-type rules behind every hyperedge of the
// model pointing at the head attribute: one rule per nonempty
// association-table row, with the row's most frequent head value as
// the consequent. Rules are returned ranked by Support*Confidence.
//
// MineRules is the v1 form of MineRulesContext with a background
// context; the two are bit-identical when never canceled.
func MineRules(m *Model, head int, opt MineOptions) ([]ScoredRule, error) {
	return MineRulesContext(context.Background(), m, head, opt)
}

// MineRulesContext is MineRules under a context: cancellation is
// polled per hyperedge (each rebuilds one association table from the
// training rows), and ctx.Err() is returned promptly, discarding
// partial results.
func MineRulesContext(ctx context.Context, m *Model, head int, opt MineOptions) ([]ScoredRule, error) {
	if head < 0 || head >= m.Table.NumAttrs() {
		return nil, fmt.Errorf("core: head attribute %d out of range", head)
	}
	if err := m.RequireRows(); err != nil {
		return nil, err
	}
	chk := runopt.NewChecker(ctx, opt.Run.Stride(), 1)
	prog := runopt.NewMeter(runopt.PhaseRules, len(m.H.In(head)), opt.Run.Func())
	baseCounts := m.Table.ValueCounts(head)
	n := m.Table.NumRows()
	var out []ScoredRule
	for _, ei := range m.H.In(head) {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		e := m.H.Edge(int(ei))
		at, err := BuildAssociationTable(m.Table, e.Tail, head)
		if err != nil {
			return nil, err
		}
		vals := make([]table.Value, len(at.Tail))
		var walk func(depth, row int)
		walk = func(depth, row int) {
			if depth == len(at.Tail) {
				supp := at.Support(row)
				if supp == 0 || supp < opt.MinSupport {
					return
				}
				conf := at.Confidence(row)
				if conf < opt.MinConfidence {
					return
				}
				best, _ := at.Best(row)
				x := make([]Item, len(at.Tail))
				for i, a := range at.Tail {
					x[i] = Item{Attr: a, Val: vals[i]}
				}
				r := ScoredRule{
					Rule:       Rule{X: x, Y: []Item{{Attr: head, Val: best}}},
					Support:    supp,
					Confidence: conf,
				}
				if base := float64(baseCounts[best-1]) / float64(n); base > 0 {
					r.Lift = conf / base
				}
				out = append(out, r)
				return
			}
			for v := 1; v <= at.K; v++ {
				vals[depth] = table.Value(v)
				walk(depth+1, row*at.K+(v-1))
			}
		}
		walk(0, 0)
		prog.Tick(1)
	}
	sort.SliceStable(out, func(i, j int) bool {
		si := out[i].Support * out[i].Confidence
		sj := out[j].Support * out[j].Confidence
		if si != sj {
			return si > sj
		}
		return out[i].Confidence > out[j].Confidence
	})
	if opt.MaxRules > 0 && len(out) > opt.MaxRules {
		out = out[:opt.MaxRules]
	}
	return out, nil
}

// FormatRule renders a rule with the table's attribute names, e.g.
// "{A=3, C=12} => {B=13}".
func FormatRule(tb *table.Table, r Rule) string {
	side := func(items []Item) string {
		s := "{"
		for i, it := range items {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("%s=%d", tb.AttrName(it.Attr), it.Val)
		}
		return s + "}"
	}
	return side(r.X) + " => " + side(r.Y)
}
