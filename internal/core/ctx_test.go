package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hypermine/internal/runopt"
	"hypermine/internal/table"
)

// ctxTestTable builds a deterministic table sized so every build stage
// has real work.
func ctxTestTable(t *testing.T, attrs, rows int) *table.Table {
	t.Helper()
	names := make([]string, attrs)
	for i := range names {
		names[i] = string(rune('A' + i%26))
		if i >= 26 {
			names[i] += string(rune('0' + i/26))
		}
	}
	tb, err := table.New(names, 3)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]table.Value, attrs)
	for r := 0; r < rows; r++ {
		for a := range row {
			row[a] = table.Value(1 + (r*7+a*13+r*a)%3)
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func sameModels(t *testing.T, want, got *Model) {
	t.Helper()
	if want.H.NumEdges() != got.H.NumEdges() {
		t.Fatalf("edge count %d != %d", got.H.NumEdges(), want.H.NumEdges())
	}
	for i := 0; i < want.H.NumEdges(); i++ {
		a, b := want.H.Edge(i), got.H.Edge(i)
		if !reflect.DeepEqual(a.Tail, b.Tail) || !reflect.DeepEqual(a.Head, b.Head) || a.Weight != b.Weight {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(want.EdgeACV, got.EdgeACV) {
		t.Fatal("EdgeACV differs")
	}
}

// TestBuildContextBackgroundIdentical proves the v2 acceptance
// criterion: BuildContext(Background) is bit-identical to Build, with
// and without progress/stride hooks, serially and in parallel, and
// through the MaxTailSize=3 stage.
func TestBuildContextBackgroundIdentical(t *testing.T) {
	tb := ctxTestTable(t, 10, 400)
	for _, cfg := range []Config{
		{K: 3, GammaEdge: 1.05, GammaPair: 1.0},
		{K: 3, GammaEdge: 1.05, GammaPair: 1.0, MaxTailSize: 3, GammaTriple: 1.0},
	} {
		want, err := Build(tb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 4} {
			c := cfg
			c.Parallelism = par
			c.Run = &runopt.Hooks{
				Progress:   func(runopt.Phase, int, int) {},
				CheckEvery: 1,
			}
			got, err := BuildContext(context.Background(), tb, c)
			if err != nil {
				t.Fatal(err)
			}
			sameModels(t, want, got)
		}
	}
}

func TestBuildContextPreCanceled(t *testing.T) {
	tb := ctxTestTable(t, 8, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := BuildContext(ctx, tb, Config{K: 3, GammaEdge: 1.05, GammaPair: 1.0})
	if m != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want (nil, context.Canceled), got (%v, %v)", m, err)
	}
}

// TestBuildContextMidFlightCancel cancels from inside the progress
// callback — deterministically mid-build — for each phase, and checks
// the builder returns ctx.Err() instead of a model. CheckEvery: 1
// makes the return stride one ACV evaluation, the documented minimum.
func TestBuildContextMidFlightCancel(t *testing.T) {
	tb := ctxTestTable(t, 10, 200)
	for _, phase := range []runopt.Phase{runopt.PhaseEdges, runopt.PhasePairs, runopt.PhaseTriples} {
		for _, par := range []int{1, 3} {
			ctx, cancel := context.WithCancel(context.Background())
			cfg := Config{
				K: 3, GammaEdge: 1.05, GammaPair: 1.0,
				MaxTailSize: 3, GammaTriple: 1.0, Parallelism: par,
				Run: &runopt.Hooks{
					CheckEvery: 1,
					Progress: func(ph runopt.Phase, done, total int) {
						if ph == phase {
							cancel()
						}
					},
				},
			}
			m, err := BuildContext(ctx, tb, cfg)
			cancel()
			if m != nil || !errors.Is(err, context.Canceled) {
				t.Fatalf("phase %s par %d: want (nil, context.Canceled), got (%v, %v)", phase, par, m, err)
			}
		}
	}
}

func TestMineRulesContextBackgroundIdentical(t *testing.T) {
	tb := ctxTestTable(t, 10, 400)
	m, err := Build(tb, Config{K: 3, GammaEdge: 1.05, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	head := 0
	for h := 0; h < tb.NumAttrs(); h++ {
		if len(m.H.In(h)) > 1 {
			head = h
			break
		}
	}
	want, err := MineRules(m, head, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MineRulesContext(context.Background(), m, head, MineOptions{
		Run: &runopt.Hooks{Progress: func(runopt.Phase, int, int) {}, CheckEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("MineRulesContext(Background) differs from MineRules")
	}
}

func TestMineRulesContextCancel(t *testing.T) {
	tb := ctxTestTable(t, 10, 400)
	m, err := Build(tb, Config{K: 3, GammaEdge: 1.05, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	head := -1
	for h := 0; h < tb.NumAttrs(); h++ {
		if len(m.H.In(h)) >= 2 {
			head = h
			break
		}
	}
	if head < 0 {
		t.Skip("no head with >= 2 in-edges in fixture")
	}
	// Pre-canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if out, err := MineRulesContext(ctx, m, head, MineOptions{}); out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want (nil, Canceled), got (%v, %v)", out, err)
	}
	// Mid-flight: cancel after the first edge's progress tick.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	out, err := MineRulesContext(ctx2, m, head, MineOptions{
		Run: &runopt.Hooks{Progress: func(ph runopt.Phase, done, total int) {
			if done == 1 {
				cancel2()
			}
		}},
	})
	if out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight: want (nil, Canceled), got (%v, %v)", out, err)
	}
}
