package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypermine/internal/table"
)

func TestBuildAssociationTableSingleTail(t *testing.T) {
	tb := geneDB(t)
	at, err := BuildAssociationTable(tb, []int{1}, 3) // G2 -> G4
	if err != nil {
		t.Fatal(err)
	}
	if at.NumRows() != 3 || at.M != 8 {
		t.Fatalf("rows=%d M=%d", at.NumRows(), at.M)
	}
	// G2 is always 1; G4 distribution there: value1 x1, value2 x1, value3 x6.
	row, err := at.RowIndex([]table.Value{1})
	if err != nil {
		t.Fatal(err)
	}
	if got := at.Support(row); !almost(got, 1.0) {
		t.Errorf("Support = %v, want 1", got)
	}
	best, bc := at.Best(row)
	if best != 3 || bc != 6 {
		t.Errorf("Best = (%d,%d), want (3,6)", best, bc)
	}
	if got := at.Confidence(row); !almost(got, 0.75) {
		t.Errorf("Conf = %v, want 0.75", got)
	}
	if got := at.ConfidenceFor(row, 1); !almost(got, 0.125) {
		t.Errorf("ConfFor(1) = %v, want 0.125", got)
	}
	// Empty rows are harmless.
	row2, _ := at.RowIndex([]table.Value{3})
	if at.Support(row2) != 0 || at.Confidence(row2) != 0 {
		t.Error("empty row should have zero support/confidence")
	}
	if at.ConfidenceFor(row2, 9) != 0 {
		t.Error("out-of-range head value should give 0")
	}
}

func TestBuildAssociationTablePairTail(t *testing.T) {
	tb := interestDB(t)
	r, p, m := tb.AttrIndex("R"), tb.AttrIndex("P"), tb.AttrIndex("M")
	at, err := BuildAssociationTable(tb, []int{r, p}, m)
	if err != nil {
		t.Fatal(err)
	}
	if at.NumRows() != 9 {
		t.Fatalf("rows = %d, want 9", at.NumRows())
	}
	// Row (R=3, P=3): 4 observations, M = {1,1,2,1} -> best (1, 3), conf 0.75.
	row, err := at.RowIndex([]table.Value{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := at.Support(row); !almost(got, 0.5) {
		t.Errorf("Support = %v, want 0.5", got)
	}
	best, bc := at.Best(row)
	if best != 1 || bc != 3 {
		t.Errorf("Best = (%d,%d), want (1,3)", best, bc)
	}
	if got := at.Confidence(row); !almost(got, 0.75) {
		t.Errorf("Conf = %v, want 0.75", got)
	}
	// The AT's tail attribute order is sorted column order.
	if at.Tail[0] != r || at.Tail[1] != p {
		t.Errorf("tail = %v", at.Tail)
	}
}

func TestRowIndexErrors(t *testing.T) {
	tb := interestDB(t)
	at, err := BuildAssociationTable(tb, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := at.RowIndex([]table.Value{1}); err == nil {
		t.Error("want error for wrong arity")
	}
	if _, err := at.RowIndex([]table.Value{1, 9}); err == nil {
		t.Error("want error for out-of-range value")
	}
}

func TestBuildAssociationTableErrors(t *testing.T) {
	tb := interestDB(t)
	cases := []struct {
		name string
		tail []int
		head int
	}{
		{"empty tail", nil, 0},
		{"tail too big", []int{0, 1, 2, 3}, 3},
		{"tail=head", []int{0}, 0},
		{"dup tail", []int{1, 1}, 0},
		{"bad attr", []int{99}, 0},
		{"bad head", []int{0}, 99},
	}
	for _, c := range cases {
		if _, err := BuildAssociationTable(tb, c.tail, c.head); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// ACV identity: ACV == sum over rows of Supp(row)*Conf(row).
func TestACVMatchesRowSum(t *testing.T) {
	tb := interestDB(t)
	at, err := BuildAssociationTable(tb, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for row := 0; row < at.NumRows(); row++ {
		sum += at.Support(row) * at.Confidence(row)
	}
	if got := at.ACV(); !almost(got, sum) {
		t.Errorf("ACV = %v, row sum = %v", got, sum)
	}
}

func TestNullACV(t *testing.T) {
	tb := geneDB(t)
	// G4 values: 2,3,1,3,3,3,3,3 -> Maj = 6/8.
	if got := NullACV(tb, 3); !almost(got, 0.75) {
		t.Errorf("NullACV(G4) = %v, want 0.75", got)
	}
	empty, _ := table.New([]string{"A"}, 2)
	if NullACV(empty, 0) != 0 {
		t.Error("NullACV on empty table should be 0")
	}
}

func randomTable(rng *rand.Rand, nAttrs, k, rows int) *table.Table {
	attrs := make([]string, nAttrs)
	for j := range attrs {
		attrs[j] = "A" + string(rune('a'+j))
	}
	tb, _ := table.New(attrs, k)
	row := make([]table.Value, nAttrs)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = table.Value(1 + rng.Intn(k))
		}
		_ = tb.AppendRow(row)
	}
	return tb
}

// Theorem 3.8(1): ACV({A},{X}) >= ACV(empty,{X}).
// Theorem 3.8(2): ACV({A,B},{X}) >= max(ACV({A},{X}), ACV({B},{X})).
// Plus: all ACVs lie in [0, 1].
func TestTheorem38Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		tb := randomTable(rng, 4, k, 1+rng.Intn(60))
		for x := 0; x < 4; x++ {
			nullACV := NullACV(tb, x)
			for a := 0; a < 4; a++ {
				if a == x {
					continue
				}
				acvA, err := ACV(tb, []int{a}, x)
				if err != nil || acvA < nullACV-1e-12 || acvA < 0 || acvA > 1+1e-12 {
					return false
				}
				for b := a + 1; b < 4; b++ {
					if b == x {
						continue
					}
					acvB, _ := ACV(tb, []int{b}, x)
					acvAB, err := ACV(tb, []int{a, b}, x)
					if err != nil {
						return false
					}
					maxEdge := acvA
					if acvB > maxEdge {
						maxEdge = acvB
					}
					if acvAB < maxEdge-1e-12 || acvAB > 1+1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the fast builder kernels agree with the AT-based ACV.
func TestFastKernelsMatchAT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		tb := randomTable(rng, 3, k, 2+rng.Intn(80))
		cnt := make([]int32, k*k*k)
		want, _ := ACV(tb, []int{0}, 2)
		got := acvEdge(tb.Column(0), tb.Column(2), k, cnt)
		if !almost(got, want) {
			return false
		}
		tailRow := make([]int32, tb.NumRows())
		colA, colB := tb.Column(0), tb.Column(1)
		for i := range tailRow {
			tailRow[i] = int32(colA[i]-1)*int32(k) + int32(colB[i]-1)
		}
		want2, _ := ACV(tb, []int{0, 1}, 2)
		got2 := acvPair(tailRow, tb.Column(2), k, cnt)
		return almost(got2, want2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
