package core

import (
	"fmt"
	"sort"

	"hypermine/internal/table"
)

// AssociationTable is the AT of Definition 3.6(2) for a directed
// hyperedge (Tail, {Head}): one row per combination of tail values,
// holding the row's support count, the full head-value histogram, and
// hence the most frequent head value and the rule confidence.
//
// Rows are indexed densely: for Tail = [a] the row of value v is v-1;
// for Tail = [a, b] the row of (va, vb) is (va-1)*K + (vb-1), with a <
// b in column order.
type AssociationTable struct {
	Tail []int // sorted column indexes
	Head int   // column index
	K    int   // value cardinality
	M    int   // number of observations

	// Counts[row] is the number of observations matching the row's
	// tail values. HeadCounts[row*K+(y-1)] further splits by head
	// value y.
	Counts     []int32
	HeadCounts []int32
}

// NumRows returns K^len(Tail).
func (at *AssociationTable) NumRows() int { return len(at.Counts) }

// RowIndex returns the dense row index of the given tail values, which
// must be listed in at.Tail order.
func (at *AssociationTable) RowIndex(vals []table.Value) (int, error) {
	if len(vals) != len(at.Tail) {
		return 0, fmt.Errorf("core: %d values for %d tail attributes", len(vals), len(at.Tail))
	}
	idx := 0
	for _, v := range vals {
		if v < 1 || int(v) > at.K {
			return 0, fmt.Errorf("core: value %d outside 1..%d", v, at.K)
		}
		idx = idx*at.K + int(v-1)
	}
	return idx, nil
}

// Support returns Supp of the row: Counts[row]/M.
func (at *AssociationTable) Support(row int) float64 {
	if at.M == 0 {
		return 0
	}
	return float64(at.Counts[row]) / float64(at.M)
}

// Best returns the most frequent head value for the row and its count.
// Ties break toward the smaller value; rows with zero support return
// (1, 0).
func (at *AssociationTable) Best(row int) (table.Value, int32) {
	base := row * at.K
	bestV, bestC := table.Value(1), int32(0)
	for y := 0; y < at.K; y++ {
		if c := at.HeadCounts[base+y]; c > bestC {
			bestC = c
			bestV = table.Value(y + 1)
		}
	}
	return bestV, bestC
}

// Confidence returns Conf of the row's induced mva-type rule
// {tail values} ==mva==> {(Head, best)}: BestCount/Count.
func (at *AssociationTable) Confidence(row int) float64 {
	if at.Counts[row] == 0 {
		return 0
	}
	_, bc := at.Best(row)
	return float64(bc) / float64(at.Counts[row])
}

// ConfidenceFor returns Conf for an explicit head value y rather than
// the most frequent one.
func (at *AssociationTable) ConfidenceFor(row int, y table.Value) float64 {
	if at.Counts[row] == 0 || y < 1 || int(y) > at.K {
		return 0
	}
	return float64(at.HeadCounts[row*at.K+int(y-1)]) / float64(at.Counts[row])
}

// ACV computes the association confidence value of Definition 3.6(1):
// the sum over rows of Supp(row) * Conf(row), which equals
// sum_rows BestCount / M.
func (at *AssociationTable) ACV() float64 {
	if at.M == 0 {
		return 0
	}
	var sum int64
	for row := range at.Counts {
		_, bc := at.Best(row)
		sum += int64(bc)
	}
	return float64(sum) / float64(at.M)
}

// MaxTail is the largest supported tail set. The paper's restricted
// model (§3.2) uses |T| <= 2; 3 is this library's implementation of
// the thesis's future-work generalization.
const MaxTail = 3

// BuildAssociationTable scans the table once and produces the AT for
// (tail, {head}). Tail must have between one and MaxTail distinct
// attributes, all distinct from head.
func BuildAssociationTable(tb *table.Table, tail []int, head int) (*AssociationTable, error) {
	if len(tail) < 1 || len(tail) > MaxTail {
		return nil, fmt.Errorf("core: tail size %d outside 1..%d", len(tail), MaxTail)
	}
	for _, a := range tail {
		if a < 0 || a >= tb.NumAttrs() {
			return nil, fmt.Errorf("core: tail attribute %d out of range", a)
		}
		if a == head {
			return nil, fmt.Errorf("core: attribute %d in both tail and head", a)
		}
	}
	if head < 0 || head >= tb.NumAttrs() {
		return nil, fmt.Errorf("core: head attribute %d out of range", head)
	}
	k := tb.K()
	st := append([]int(nil), tail...)
	sort.Ints(st)
	for i := 1; i < len(st); i++ {
		if st[i] == st[i-1] {
			return nil, fmt.Errorf("core: duplicate tail attribute %d", st[i])
		}
	}
	m := tb.NumRows()
	rows := 1
	for range st {
		rows *= k
	}
	at := &AssociationTable{
		Tail:       st,
		Head:       head,
		K:          k,
		M:          m,
		Counts:     make([]int32, rows),
		HeadCounts: make([]int32, rows*k),
	}
	hc := tb.Column(head)
	switch len(st) {
	case 1:
		tc := tb.Column(st[0])
		for i := 0; i < m; i++ {
			row := int(tc[i] - 1)
			at.Counts[row]++
			at.HeadCounts[row*k+int(hc[i]-1)]++
		}
	case 2:
		ta, tbcol := tb.Column(st[0]), tb.Column(st[1])
		for i := 0; i < m; i++ {
			row := int(ta[i]-1)*k + int(tbcol[i]-1)
			at.Counts[row]++
			at.HeadCounts[row*k+int(hc[i]-1)]++
		}
	case 3:
		ta, tbcol, tc := tb.Column(st[0]), tb.Column(st[1]), tb.Column(st[2])
		for i := 0; i < m; i++ {
			row := (int(ta[i]-1)*k+int(tbcol[i]-1))*k + int(tc[i]-1)
			at.Counts[row]++
			at.HeadCounts[row*k+int(hc[i]-1)]++
		}
	}
	return at, nil
}

// NullACV returns ACV(empty-set, {head}) = Maj(head)/M, the baseline of
// Theorem 3.8(1): the frequency of the head attribute's most common
// value.
func NullACV(tb *table.Table, head int) float64 {
	m := tb.NumRows()
	if m == 0 {
		return 0
	}
	best := 0
	for _, c := range tb.ValueCounts(head) {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(m)
}

// ACV computes the association confidence value for (tail, {head})
// without retaining the full table.
func ACV(tb *table.Table, tail []int, head int) (float64, error) {
	at, err := BuildAssociationTable(tb, tail, head)
	if err != nil {
		return 0, err
	}
	return at.ACV(), nil
}
