package core

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"
)

// modelsEquivalent deep-compares two models: schema, cells, config,
// edges in order, and the EdgeACV cache bit for bit.
func modelsEquivalent(t *testing.T, a, b *Model) {
	t.Helper()
	if a.Table.NumRows() != b.Table.NumRows() || a.Table.NumAttrs() != b.Table.NumAttrs() || a.Table.K() != b.Table.K() {
		t.Fatalf("table shape %dx%d k=%d vs %dx%d k=%d",
			a.Table.NumRows(), a.Table.NumAttrs(), a.Table.K(),
			b.Table.NumRows(), b.Table.NumAttrs(), b.Table.K())
	}
	for j, name := range a.Table.Attrs() {
		if b.Table.AttrName(j) != name {
			t.Fatalf("attr %d: %q vs %q", j, name, b.Table.AttrName(j))
		}
	}
	for i := 0; i < a.Table.NumRows(); i++ {
		for j := 0; j < a.Table.NumAttrs(); j++ {
			if a.Table.At(i, j) != b.Table.At(i, j) {
				t.Fatalf("cell (%d,%d): %d vs %d", i, j, a.Table.At(i, j), b.Table.At(i, j))
			}
		}
	}
	if a.Config != b.Config {
		t.Fatalf("config %+v vs %+v", a.Config, b.Config)
	}
	if a.RowsOmitted != b.RowsOmitted {
		t.Fatalf("rowsOmitted %v vs %v", a.RowsOmitted, b.RowsOmitted)
	}
	ea, eb := a.H.Edges(), b.H.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("%d edges vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if !intsEqual(ea[i].Tail, eb[i].Tail) || !intsEqual(ea[i].Head, eb[i].Head) || ea[i].Weight != eb[i].Weight {
			t.Fatalf("edge %d: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if len(a.EdgeACV) != len(b.EdgeACV) {
		t.Fatalf("EdgeACV %d vs %d", len(a.EdgeACV), len(b.EdgeACV))
	}
	for i := range a.EdgeACV {
		if a.EdgeACV[i] != b.EdgeACV[i] {
			t.Fatalf("EdgeACV[%d]: %v vs %v", i, a.EdgeACV[i], b.EdgeACV[i])
		}
	}
}

// TestSnapshotDifferentialVsJSON: loading a model through the binary
// codec must be exactly equivalent to loading it through the JSON
// codec, on randomized models including 3-to-1 edges.
func TestSnapshotDifferentialVsJSON(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"restricted", Config{GammaEdge: 1.02, GammaPair: 1.01, MaxTailSize: 2, Candidates: EdgeSeeded}},
		{"triples", Config{GammaEdge: 1.0, GammaPair: 1.0, GammaTriple: 1.0, MaxTailSize: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			tb := randTable(t, rng, 6, 3, 180)
			m, err := Build(tb, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}

			var jbuf, bbuf bytes.Buffer
			if err := m.WriteJSON(&jbuf); err != nil {
				t.Fatal(err)
			}
			if err := WriteSnapshot(&bbuf, m, SaveOptions{}); err != nil {
				t.Fatal(err)
			}
			fromJSON, err := ReadModelJSON(&jbuf)
			if err != nil {
				t.Fatal(err)
			}
			fromBin, err := ReadSnapshot(&bbuf)
			if err != nil {
				t.Fatal(err)
			}
			modelsEquivalent(t, m, fromJSON)
			modelsEquivalent(t, fromJSON, fromBin)
			if err := fromBin.H.Validate(); err != nil {
				t.Fatal(err)
			}

			// Writing the loaded model again is byte-stable.
			var again bytes.Buffer
			if err := WriteSnapshot(&again, fromBin, SaveOptions{}); err != nil {
				t.Fatal(err)
			}
			var first bytes.Buffer
			if err := WriteSnapshot(&first, m, SaveOptions{}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), again.Bytes()) {
				t.Error("snapshot round trip not byte-stable")
			}
		})
	}
}

// TestSnapshotOmitRows: a row-less snapshot loads with RowsOmitted set,
// serves graph queries, and fails row-dependent operations with a
// clear error instead of panicking.
func TestSnapshotOmitRows(t *testing.T) {
	tb := patientDB(t)
	m, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, m, SaveOptions{OmitRows: true}); err != nil {
		t.Fatal(err)
	}
	full := new(bytes.Buffer)
	if err := WriteSnapshot(full, m, SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= full.Len() {
		t.Errorf("row-less snapshot (%d bytes) not smaller than full (%d bytes)", buf.Len(), full.Len())
	}

	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.RowsOmitted {
		t.Fatal("RowsOmitted not set")
	}
	if back.Table.NumRows() != 0 {
		t.Fatalf("row-less snapshot has %d rows", back.Table.NumRows())
	}
	if back.H.NumEdges() != m.H.NumEdges() {
		t.Fatalf("%d edges vs %d", back.H.NumEdges(), m.H.NumEdges())
	}
	// Graph queries still work.
	if got, want := back.H.WeightedInDegree(0), m.H.WeightedInDegree(0); got != want {
		t.Fatalf("in-degree %v vs %v", got, want)
	}
	// Row-dependent operations fail clearly.
	if _, err := back.AssociationTableFor([]int{0}, 1); err == nil || !strings.Contains(err.Error(), "without training rows") {
		t.Fatalf("AssociationTableFor error = %v, want rows-omitted error", err)
	}
	if _, err := MineRules(back, 1, MineOptions{}); err == nil || !strings.Contains(err.Error(), "without training rows") {
		t.Fatalf("MineRules error = %v, want rows-omitted error", err)
	}

	// Saving a RowsOmitted model never resurrects rows, even without
	// the option.
	var resave bytes.Buffer
	if err := WriteSnapshot(&resave, back, SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadSnapshot(&resave)
	if err != nil {
		t.Fatal(err)
	}
	if !back2.RowsOmitted || back2.Table.NumRows() != 0 {
		t.Fatal("re-saved row-less model grew rows back")
	}
}

// TestJSONOmitRows mirrors the snapshot semantics on the JSON codec
// and checks the corrupt-file distinction: nil rows without the
// rowsOmitted marker must be rejected.
func TestJSONOmitRows(t *testing.T) {
	tb := geneDB(t)
	m, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSONWith(&buf, SaveOptions{OmitRows: true}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModelJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.RowsOmitted || back.Table.NumRows() != 0 {
		t.Fatalf("rowsOmitted=%v rows=%d, want marked row-less", back.RowsOmitted, back.Table.NumRows())
	}
	if _, err := MineRules(back, 0, MineOptions{}); err == nil {
		t.Fatal("MineRules on row-less JSON model succeeded")
	}

	// Unmarked empty rows are corrupt, not silently accepted.
	corrupt := `{"config":{},"k":3,"attrs":["A","B"],"edges":[],"edgeACV":[0,0,0,0]}`
	if _, err := ReadModelJSON(strings.NewReader(corrupt)); err == nil || !strings.Contains(err.Error(), "rowsOmitted") {
		t.Fatalf("unmarked row-less file error = %v, want rowsOmitted complaint", err)
	}
}

// TestReadSnapshotRejectsCorruptInputs: framing, checksum, and
// validation failures all surface as errors, never panics.
func TestReadSnapshotRejectsCorruptInputs(t *testing.T) {
	tb := interestDB(t)
	m, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, m, SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("empty", func(t *testing.T) {
		if _, err := ReadSnapshot(bytes.NewReader(nil)); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("bit-flip-fails-checksum", func(t *testing.T) {
		for _, off := range []int{5, len(good) / 2, len(good) - 5} {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0x40
			if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
				t.Fatalf("bit flip at %d accepted", off)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{3, 8, len(good) / 3, len(good) - 1} {
			if _, err := ReadSnapshot(bytes.NewReader(good[:n])); err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			}
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		// Rebuild with a bumped version byte and a fixed checksum, so
		// only the version check can reject it.
		bad := append([]byte(nil), good[:len(good)-4]...)
		bad[4] = 99 // version uvarint (single byte for small versions)
		sum := crc32.ChecksumIEEE(bad)
		bad = append(bad, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("error = %v, want version complaint", err)
		}
	})
}
