package core

import (
	"testing"

	"hypermine/internal/table"
)

// The three worked example databases of §3.1, already discretized
// (Tables 3.2, 3.4, 3.6). Gene values: down=1, steady=2, up=3.
// Interest values: l=1, m=2, h=3.

func patientDB(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([]string{"A", "C", "B", "H"}, 16, [][]table.Value{
		{2, 10, 13, 7},
		{6, 16, 16, 8},
		{3, 12, 13, 7},
		{1, 9, 10, 6},
		{3, 12, 13, 7},
		{3, 12, 11, 7},
		{4, 13, 14, 7},
		{8, 12, 15, 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func geneDB(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([]string{"G1", "G2", "G3", "G4"}, 3, [][]table.Value{
		{1, 1, 2, 2},
		{2, 1, 1, 3},
		{1, 1, 1, 1},
		{1, 1, 1, 3},
		{2, 1, 1, 3},
		{2, 1, 1, 3},
		{2, 1, 1, 3},
		{3, 1, 1, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func interestDB(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([]string{"R", "P", "M", "E"}, 3, [][]table.Value{
		{3, 3, 1, 2},
		{2, 3, 2, 2},
		{1, 1, 3, 3},
		{2, 1, 3, 2},
		{3, 3, 1, 2},
		{3, 3, 2, 2},
		{2, 2, 2, 2},
		{3, 3, 1, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}
