package core

import (
	"math/rand"
	"reflect"
	"testing"

	"hypermine/internal/table"
)

// xor3Table builds a table where D = 1 + ((A+B+C) mod k-ish): no pair
// of tail attributes predicts D well, but the full triple does. This
// is the case the future-work 3-to-1 extension exists for.
func xor3Table(t *testing.T, rows int) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	tb, err := table.New([]string{"A", "B", "C", "D", "E"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		a := table.Value(1 + rng.Intn(2))
		b := table.Value(1 + rng.Intn(2))
		c := table.Value(1 + rng.Intn(2))
		d := table.Value(1 + (int(a)+int(b)+int(c))%2)
		e := table.Value(1 + rng.Intn(2))
		if err := tb.AppendRow([]table.Value{a, b, c, d, e}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestTripleATAndACV(t *testing.T) {
	tb := xor3Table(t, 600)
	at, err := BuildAssociationTable(tb, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if at.NumRows() != 8 {
		t.Fatalf("rows = %d, want 8", at.NumRows())
	}
	// The triple determines D exactly.
	if got := at.ACV(); !almost(got, 1.0) {
		t.Errorf("triple ACV = %v, want 1", got)
	}
	// No pair gets much above the 0.5 baseline.
	for _, pair := range [][]int{{0, 1}, {0, 2}, {1, 2}} {
		acv, err := ACV(tb, pair, 3)
		if err != nil {
			t.Fatal(err)
		}
		if acv > 0.65 {
			t.Errorf("pair %v ACV = %v, expected near 0.5 (xor structure)", pair, acv)
		}
	}
	// RowIndex round-trips triples.
	row, err := at.RowIndex([]table.Value{2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if row != (1*2+0)*2+1 {
		t.Errorf("row index = %d", row)
	}
}

func TestBuildMaxTailSizeThree(t *testing.T) {
	tb := xor3Table(t, 600)
	cfg := Config{GammaEdge: 1.0, GammaPair: 1.0, GammaTriple: 1.2, MaxTailSize: 3}
	m, err := Build(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The xor triple {A,B,C} -> D must be admitted: its ACV is 1 and
	// every constituent pair sits near 0.5.
	if _, ok := m.H.Lookup([]int{0, 1, 2}, []int{3}); !ok {
		t.Fatal("triple {A,B,C} -> D not admitted")
	}
	if w := m.H.Weight([]int{0, 1, 2}, []int{3}); !almost(w, 1.0) {
		t.Errorf("triple weight = %v, want 1", w)
	}
	// Every admitted triple satisfies gamma-significance against its
	// constituent pairs.
	for _, e := range m.H.Edges() {
		if len(e.Tail) != 3 {
			continue
		}
		base := 0.0
		for drop := 0; drop < 3; drop++ {
			pair := make([]int, 0, 2)
			for i, v := range e.Tail {
				if i != drop {
					pair = append(pair, v)
				}
			}
			acv := mustACV(t, tb, pair, e.Head[0])
			if acv > base {
				base = acv
			}
			// Theorem 3.8 generalizes: the triple dominates each pair.
			if e.Weight < acv-1e-12 {
				t.Errorf("triple %v ACV %v below pair %v ACV %v", e.Tail, e.Weight, pair, acv)
			}
		}
		if e.Weight < 1.2*base-1e-12 {
			t.Errorf("triple %v violates gamma-significance", e.Tail)
		}
	}
}

func TestBuildTripleDeterministic(t *testing.T) {
	tb := xor3Table(t, 400)
	cfg := Config{GammaEdge: 1.0, GammaPair: 1.0, GammaTriple: 1.05, MaxTailSize: 3}
	cfg.Parallelism = 1
	m1, err := Build(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	m2, err := Build(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1.H.NumEdges() != m2.H.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", m1.H.NumEdges(), m2.H.NumEdges())
	}
	for i := range m1.H.Edges() {
		if !reflect.DeepEqual(m1.H.Edge(i), m2.H.Edge(i)) {
			t.Fatalf("edge %d differs across parallelism", i)
		}
	}
}

func TestBuildTripleGammaDefaultsAndValidation(t *testing.T) {
	tb := xor3Table(t, 200)
	// GammaTriple defaults to GammaPair.
	if _, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.1, MaxTailSize: 3}); err != nil {
		t.Errorf("default GammaTriple should be accepted: %v", err)
	}
	if _, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0, GammaTriple: 0.5, MaxTailSize: 3}); err == nil {
		t.Error("want error for GammaTriple < 1")
	}
	if _, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0, MaxTailSize: 4}); err == nil {
		t.Error("want error for MaxTailSize 4")
	}
}
