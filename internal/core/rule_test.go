package core

import (
	"math"
	"testing"

	"hypermine/internal/table"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// Example 3.3: patient database rule
// {(A,3),(C,12)} ==mva==> {(B,13)}: Supp(X)=0.375, Conf=2/3.
func TestPatientExampleRule(t *testing.T) {
	tb := patientDB(t)
	a, c, b := tb.AttrIndex("A"), tb.AttrIndex("C"), tb.AttrIndex("B")
	x := []Item{{a, 3}, {c, 12}}
	if got := Support(tb, x); !almost(got, 0.375) {
		t.Errorf("Supp(X) = %v, want 0.375", got)
	}
	r := Rule{X: x, Y: []Item{{b, 13}}}
	if err := r.Validate(tb); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := Confidence(tb, r); !almost(got, 2.0/3.0) {
		t.Errorf("Conf = %v, want 2/3", got)
	}
}

// Example 3.4: gene database rule
// {(G2,down),(G3,down)} ==mva==> {(G4,up)}: Supp=0.875, Conf=6/7.
func TestGeneExampleRule(t *testing.T) {
	tb := geneDB(t)
	g2, g3, g4 := tb.AttrIndex("G2"), tb.AttrIndex("G3"), tb.AttrIndex("G4")
	x := []Item{{g2, 1}, {g3, 1}}
	if got := Support(tb, x); !almost(got, 0.875) {
		t.Errorf("Supp(X) = %v, want 0.875", got)
	}
	r := Rule{X: x, Y: []Item{{g4, 3}}}
	if got := Confidence(tb, r); !almost(got, 6.0/7.0) {
		t.Errorf("Conf = %v, want 6/7", got)
	}
}

// Example 3.5: personal-interest rule
// {(R,h),(P,h)} ==mva==> {(M,l)}: Supp=0.5, Conf=0.75.
func TestInterestExampleRule(t *testing.T) {
	tb := interestDB(t)
	r0, p, m := tb.AttrIndex("R"), tb.AttrIndex("P"), tb.AttrIndex("M")
	x := []Item{{r0, 3}, {p, 3}}
	if got := Support(tb, x); !almost(got, 0.5) {
		t.Errorf("Supp(X) = %v, want 0.5", got)
	}
	r := Rule{X: x, Y: []Item{{m, 1}}}
	if got := Confidence(tb, r); !almost(got, 0.75) {
		t.Errorf("Conf = %v, want 0.75", got)
	}
}

func TestRuleValidate(t *testing.T) {
	tb := interestDB(t)
	cases := []struct {
		name string
		r    Rule
	}{
		{"empty X", Rule{Y: []Item{{0, 1}}}},
		{"empty Y", Rule{X: []Item{{0, 1}}}},
		{"overlap", Rule{X: []Item{{0, 1}}, Y: []Item{{0, 2}}}},
		{"repeat in X", Rule{X: []Item{{0, 1}, {0, 2}}, Y: []Item{{1, 1}}}},
		{"bad attr", Rule{X: []Item{{99, 1}}, Y: []Item{{1, 1}}}},
		{"bad value", Rule{X: []Item{{0, 9}}, Y: []Item{{1, 1}}}},
	}
	for _, c := range cases {
		if err := c.r.Validate(tb); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestSupportEdgeCases(t *testing.T) {
	tb := interestDB(t)
	if got := Support(tb, nil); !almost(got, 1) {
		t.Errorf("Supp(empty) = %v, want 1", got)
	}
	empty, _ := table.New([]string{"A"}, 2)
	if got := Support(empty, []Item{{0, 1}}); got != 0 {
		t.Errorf("Supp on empty table = %v", got)
	}
	// Zero-support antecedent => zero confidence, not NaN.
	r := Rule{X: []Item{{0, 1}, {1, 3}}, Y: []Item{{2, 1}}}
	if got := Confidence(tb, r); got != 0 {
		t.Errorf("Conf with unsupported X = %v, want 0", got)
	}
}

// Market-basket compatibility remark after Definition 3.2: with binary
// attributes, Supp/Conf reduce to the classical definitions.
func TestMarketBasketSpecialCase(t *testing.T) {
	// 1 = absent, 2 = present.
	tb, err := table.FromRows([]string{"milk", "diapers", "beer"}, 2, [][]table.Value{
		{2, 2, 2},
		{2, 2, 1},
		{2, 1, 2},
		{1, 2, 2},
		{2, 2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := []Item{{0, 2}, {1, 2}}
	if got := Support(tb, x); !almost(got, 0.6) {
		t.Errorf("support(milk,diapers) = %v, want 0.6", got)
	}
	conf := Confidence(tb, Rule{X: x, Y: []Item{{2, 2}}})
	if !almost(conf, 2.0/3.0) {
		t.Errorf("confidence = %v, want 2/3", conf)
	}
}
