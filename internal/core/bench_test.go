package core

import (
	"math/rand"
	"testing"

	"hypermine/internal/table"
)

func benchTable(b *testing.B, n, k, rows int) *table.Table {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	attrs := make([]string, n)
	for j := range attrs {
		attrs[j] = "A" + string(rune('a'+j%26)) + string(rune('a'+j/26))
	}
	tb, err := table.New(attrs, k)
	if err != nil {
		b.Fatal(err)
	}
	row := make([]table.Value, n)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = table.Value(1 + rng.Intn(k))
		}
		if err := tb.AppendRow(row); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

// BenchmarkACVEdgeKernel measures the directed-edge counting kernel —
// the inner loop of stage 1 of the builder.
func BenchmarkACVEdgeKernel(b *testing.B) {
	tb := benchTable(b, 2, 3, 2000)
	cnt := make([]int32, 9)
	colA, colC := tb.Column(0), tb.Column(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = acvEdge(colA, colC, 3, cnt)
	}
	b.SetBytes(int64(tb.NumRows()))
}

// BenchmarkACVPairKernel measures the 2-to-1 counting kernel — the
// inner loop of stage 2 of the builder.
func BenchmarkACVPairKernel(b *testing.B) {
	tb := benchTable(b, 3, 3, 2000)
	cnt := make([]int32, 27)
	tailRow := make([]int32, tb.NumRows())
	colA, colB := tb.Column(0), tb.Column(1)
	for i := range tailRow {
		tailRow[i] = int32(colA[i]-1)*3 + int32(colB[i]-1)
	}
	colC := tb.Column(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = acvPair(tailRow, colC, 3, cnt)
	}
	b.SetBytes(int64(tb.NumRows()))
}

// BenchmarkACVEdgeKernelBits measures the bitmap directed-edge kernel
// on the same shape as BenchmarkACVEdgeKernel, for a direct
// scalar-vs-bitset comparison.
func BenchmarkACVEdgeKernelBits(b *testing.B) {
	tb := benchTable(b, 2, 3, 2000)
	ix := tb.Index()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = acvEdgeBits(ix, 0, 1)
	}
	b.SetBytes(int64(tb.NumRows()))
}

// BenchmarkACVPairKernelBits measures the bitmap 2-to-1 kernel on the
// same shape as BenchmarkACVPairKernel. Like the scalar bench, the
// per-pair tail materialization is done outside the loop: both are
// amortized over the n-2 heads of a pair job.
func BenchmarkACVPairKernelBits(b *testing.B) {
	tb := benchTable(b, 3, 3, 2000)
	ix := tb.Index()
	pairBuf := make([]uint64, 9*ix.Words())
	pairCnt := make([]int, 9)
	fillTailPairBits(ix, 0, 1, pairBuf, pairCnt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = acvPairBits(ix, pairBuf, pairCnt, 2)
	}
	b.SetBytes(int64(tb.NumRows()))
}

// BenchmarkSupportCountScan / BenchmarkSupportCountBits compare the
// two SupportCount paths on a 3-item conjunction over 50k rows.
func supportCountBenchItems(b *testing.B) (*table.Table, []Item) {
	tb := benchTable(b, 8, 3, 50000)
	return tb, []Item{{Attr: 0, Val: 1}, {Attr: 3, Val: 2}, {Attr: 6, Val: 3}}
}

func BenchmarkSupportCountScan(b *testing.B) {
	tb, items := supportCountBenchItems(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = supportCountScan(tb, items)
	}
	b.SetBytes(int64(tb.NumRows()))
}

func BenchmarkSupportCountBits(b *testing.B) {
	tb, items := supportCountBenchItems(b)
	ix := tb.Index()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = supportCountBits(ix, items)
	}
	b.SetBytes(int64(tb.NumRows()))
}

// BenchmarkBuildAssociationTable measures full AT construction, the
// unit of work of classifier preparation.
func BenchmarkBuildAssociationTable(b *testing.B) {
	tb := benchTable(b, 3, 5, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildAssociationTable(tb, []int{0, 1}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildModel measures end-to-end model construction at a
// moderate size (50 attributes, 1000 rows, k=3).
func BenchmarkBuildModel(b *testing.B) {
	tb := benchTable(b, 50, 3, 1000)
	cfg := C1()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(tb, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
