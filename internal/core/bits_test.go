package core

import (
	"math/rand"
	"testing"

	"hypermine/internal/table"
)

// TestSupportCountBitsMatchesScan: on an indexed table, SupportCount
// (bitset path) must agree with the scan fallback for random
// conjunctions of every length.
func TestSupportCountBitsMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tb := randTable(t, rng, 2+rng.Intn(6), 2+rng.Intn(4), 50+rng.Intn(400))
		ix := tb.Index()
		for rep := 0; rep < 50; rep++ {
			nItems := 1 + rng.Intn(min(4, tb.NumAttrs()))
			attrs := rng.Perm(tb.NumAttrs())[:nItems]
			items := make([]Item, nItems)
			for i, a := range attrs {
				items[i] = Item{Attr: a, Val: table.Value(1 + rng.Intn(tb.K()))}
			}
			bits := supportCountBits(ix, items)
			scan := supportCountScan(tb, items)
			if bits != scan {
				t.Fatalf("trial %d: supportCountBits=%d supportCountScan=%d for %v", trial, bits, scan, items)
			}
			if got := SupportCount(tb, items); got != scan {
				t.Fatalf("trial %d: SupportCount=%d, want %d", trial, got, scan)
			}
		}
	}
}

// TestACVKernelsBitsMatchScalar: the bitmap edge/pair kernels must
// produce bit-identical ACVs to the scalar reference kernels — the
// sums are integer counts either way, so the final divisions are the
// same floating-point operations.
func TestACVKernelsBitsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		k := 2 + rng.Intn(7) // 2..8, the gated range
		tb := randTable(t, rng, 4, k, 30+rng.Intn(300))
		ix := tb.Index()
		m := tb.NumRows()
		cntE := make([]int32, k*k)
		cntP := make([]int32, k*k*k)
		tailRow := make([]int32, m)
		pairBuf := make([]uint64, k*k*ix.Words())
		pairCnt := make([]int, k*k)
		for a := 0; a < tb.NumAttrs(); a++ {
			for c := 0; c < tb.NumAttrs(); c++ {
				if a == c {
					continue
				}
				scalar := acvEdge(tb.Column(a), tb.Column(c), k, cntE)
				bits := acvEdgeBits(ix, a, c)
				if scalar != bits {
					t.Fatalf("trial %d: acvEdge(%d,%d) scalar=%v bits=%v", trial, a, c, scalar, bits)
				}
			}
		}
		for a := 0; a < tb.NumAttrs(); a++ {
			for b := a + 1; b < tb.NumAttrs(); b++ {
				colA, colB := tb.Column(a), tb.Column(b)
				for i := 0; i < m; i++ {
					tailRow[i] = int32(colA[i]-1)*int32(k) + int32(colB[i]-1)
				}
				fillTailPairBits(ix, a, b, pairBuf, pairCnt)
				for c := 0; c < tb.NumAttrs(); c++ {
					if c == a || c == b {
						continue
					}
					scalar := acvPair(tailRow, tb.Column(c), k, cntP)
					bits := acvPairBits(ix, pairBuf, pairCnt, c)
					if scalar != bits {
						t.Fatalf("trial %d: acvPair({%d,%d},%d) scalar=%v bits=%v", trial, a, b, c, scalar, bits)
					}
				}
			}
		}
	}
}

// TestBuildBitsMatchesScalar: a full Build on the bitset kernels must
// be byte-identical — same EdgeACV cache, same admitted edges in the
// same order with the same weights — to a Build forced onto the scalar
// kernels, across strategies and tail sizes.
func TestBuildBitsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		k := 2 + rng.Intn(4)
		tb := randTable(t, rng, 5+rng.Intn(4), k, 60+rng.Intn(300))
		for _, cfg := range []Config{
			{GammaEdge: 1.0, GammaPair: 1.0},
			{GammaEdge: 1.05, GammaPair: 1.02},
			{GammaEdge: 1.0, GammaPair: 1.0, Candidates: EdgeSeeded},
			{GammaEdge: 1.0, GammaPair: 1.0, MaxTailSize: 3},
		} {
			scalarCfg := cfg
			scalarCfg.noBits = true
			mBits, err := Build(tb, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mScalar, err := Build(tb, scalarCfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range mScalar.EdgeACV {
				if mBits.EdgeACV[i] != mScalar.EdgeACV[i] {
					t.Fatalf("trial %d cfg %+v: EdgeACV[%d] bits=%v scalar=%v",
						trial, cfg, i, mBits.EdgeACV[i], mScalar.EdgeACV[i])
				}
			}
			eb, es := mBits.H.Edges(), mScalar.H.Edges()
			if len(eb) != len(es) {
				t.Fatalf("trial %d cfg %+v: %d edges with bits, %d with scalar", trial, cfg, len(eb), len(es))
			}
			for i := range eb {
				if !intsEqual(eb[i].Tail, es[i].Tail) || !intsEqual(eb[i].Head, es[i].Head) ||
					eb[i].Weight != es[i].Weight {
					t.Fatalf("trial %d cfg %+v: edge %d bits=%+v scalar=%+v", trial, cfg, i, eb[i], es[i])
				}
			}
		}
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randTable(t *testing.T, rng *rand.Rand, nAttrs, k, rows int) *table.Table {
	t.Helper()
	attrs := make([]string, nAttrs)
	for j := range attrs {
		attrs[j] = "A" + string(rune('a'+j%26)) + string(rune('a'+j/26))
	}
	tb, err := table.New(attrs, k)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]table.Value, nAttrs)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = table.Value(1 + rng.Intn(k))
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}
