package core

import "hypermine/internal/table"

// bitsMaxK gates the bitmap counting kernels in the builder. Deriving
// an edge (pair) contingency table from posting-bitmap intersections
// costs O(k^2 * rows/64) (resp. O(k^3 * rows/64)) word operations
// against O(rows) scalar increments, so bitmaps win only while k^2
// (resp. k^3) stays small relative to the 64-rows-per-word payoff.
// k <= 8 covers the paper's configurations (k = 3 and k = 5) with
// headroom; larger cardinalities keep the scalar kernels.
const bitsMaxK = 8

// acvEdgeBits computes ACV({a},{c}) from the TID-bitset index:
// contingency cell (va, vc) is the popcount of the intersection of the
// two value postings, and only the per-row maximum is kept, so no k*k
// scratch table is needed.
func acvEdgeBits(ix *table.Index, a, c int) float64 {
	k := ix.K()
	sum := 0
	for va := 1; va <= k; va++ {
		if ix.Count(a, table.Value(va)) == 0 {
			continue
		}
		pa := ix.Posting(a, table.Value(va))
		best := 0
		for vc := 1; vc <= k; vc++ {
			if n := table.PopcountAnd(pa, ix.Posting(c, table.Value(vc))); n > best {
				best = n
			}
		}
		sum += best
	}
	return float64(sum) / float64(ix.Rows())
}

// fillTailPairBits materializes the k*k tail bitmaps of the pair
// (a, b): slot (va-1)*k+(vb-1) of buf holds posting(a,va) AND
// posting(b,vb). buf must hold k*k*Words() words; counts (length k*k)
// receives each slot's popcount so downstream loops can skip empty
// value combinations. The materialization is what lets one pair's
// intersections be reused across all n-2 heads.
func fillTailPairBits(ix *table.Index, a, b int, buf []uint64, counts []int) {
	k, w := ix.K(), ix.Words()
	for va := 1; va <= k; va++ {
		pa := ix.Posting(a, table.Value(va))
		for vb := 1; vb <= k; vb++ {
			slot := (va-1)*k + vb - 1
			dst := buf[slot*w : (slot+1)*w]
			copy(dst, pa)
			table.AndInto(dst, ix.Posting(b, table.Value(vb)))
			counts[slot] = table.Popcount(dst)
		}
	}
}

// acvPairBits computes ACV({a,b},{c}) from tail bitmaps previously
// materialized by fillTailPairBits.
func acvPairBits(ix *table.Index, buf []uint64, counts []int, c int) float64 {
	k, w := ix.K(), ix.Words()
	sum := 0
	for slot := 0; slot < k*k; slot++ {
		if counts[slot] == 0 {
			continue
		}
		tbits := buf[slot*w : (slot+1)*w]
		best := 0
		for vc := 1; vc <= k; vc++ {
			if n := table.PopcountAnd(tbits, ix.Posting(c, table.Value(vc))); n > best {
				best = n
			}
		}
		sum += best
	}
	return float64(sum) / float64(ix.Rows())
}
