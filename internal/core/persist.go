package core

import (
	"encoding/json"
	"fmt"
	"io"

	"hypermine/internal/hypergraph"
	"hypermine/internal/table"
)

// modelFile is the serialized shape of a Model: the training table,
// the configuration, and the mined hypergraph. EdgeACV is re-derivable
// but cheap to store relative to rebuilding, so it is included. Rows
// may be omitted (SaveOptions.OmitRows), in which case RowsOmitted
// distinguishes a deliberately row-less file from a corrupt one.
type modelFile struct {
	Config      Config          `json:"config"`
	K           int             `json:"k"`
	Attrs       []string        `json:"attrs"`
	Rows        [][]table.Value `json:"rows,omitempty"`
	RowsOmitted bool            `json:"rowsOmitted,omitempty"`
	Edges       []modelEdge     `json:"edges"`
	EdgeACV     []float64       `json:"edgeACV"`
}

type modelEdge struct {
	Tail   []int   `json:"tail"`
	Head   []int   `json:"head"`
	Weight float64 `json:"weight"`
}

// WriteJSON persists the model (training table included, so the
// classifier can rebuild association tables after loading).
func (m *Model) WriteJSON(w io.Writer) error {
	return m.WriteJSONWith(w, SaveOptions{})
}

// WriteJSONWith persists the model under explicit save options. With
// OmitRows the training table is dropped and the file is marked, so
// loading yields a RowsOmitted model (graph queries only).
func (m *Model) WriteJSONWith(w io.Writer, opt SaveOptions) error {
	mf := modelFile{
		Config:  m.Config,
		K:       m.Table.K(),
		Attrs:   m.Table.Attrs(),
		EdgeACV: m.EdgeACV,
	}
	if opt.OmitRows || m.RowsOmitted {
		mf.RowsOmitted = true
	} else {
		rows := make([][]table.Value, m.Table.NumRows())
		for i := range rows {
			rows[i] = m.Table.Row(i, nil)
		}
		mf.Rows = rows
	}
	for _, e := range m.H.Edges() {
		mf.Edges = append(mf.Edges, modelEdge{Tail: e.Tail, Head: e.Head, Weight: e.Weight})
	}
	return json.NewEncoder(w).Encode(mf)
}

// ReadModelJSON loads a model written by WriteJSON, re-validating the
// table and every hyperedge.
func ReadModelJSON(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: model json: %w", err)
	}
	if len(mf.Rows) == 0 && !mf.RowsOmitted {
		return nil, fmt.Errorf("core: model json: no training rows and file is not marked rowsOmitted (corrupt or hand-edited save?)")
	}
	tb, err := table.FromRows(mf.Attrs, mf.K, mf.Rows)
	if err != nil {
		return nil, fmt.Errorf("core: model json table: %w", err)
	}
	h, err := hypergraph.New(mf.Attrs)
	if err != nil {
		return nil, err
	}
	for i, e := range mf.Edges {
		if err := h.AddEdge(e.Tail, e.Head, e.Weight); err != nil {
			return nil, fmt.Errorf("core: model json edge %d: %w", i, err)
		}
	}
	n := tb.NumAttrs()
	if len(mf.EdgeACV) != n*n {
		return nil, fmt.Errorf("core: model json: edgeACV has %d entries, want %d", len(mf.EdgeACV), n*n)
	}
	return &Model{Table: tb, Config: mf.Config, H: h, EdgeACV: mf.EdgeACV, RowsOmitted: mf.RowsOmitted}, nil
}
