package core

import (
	"encoding/json"
	"fmt"
	"io"

	"hypermine/internal/hypergraph"
	"hypermine/internal/table"
)

// modelFile is the serialized shape of a Model: the training table,
// the configuration, and the mined hypergraph. EdgeACV is re-derivable
// but cheap to store relative to rebuilding, so it is included.
type modelFile struct {
	Config  Config          `json:"config"`
	K       int             `json:"k"`
	Attrs   []string        `json:"attrs"`
	Rows    [][]table.Value `json:"rows"`
	Edges   []modelEdge     `json:"edges"`
	EdgeACV []float64       `json:"edgeACV"`
}

type modelEdge struct {
	Tail   []int   `json:"tail"`
	Head   []int   `json:"head"`
	Weight float64 `json:"weight"`
}

// WriteJSON persists the model (training table included, so the
// classifier can rebuild association tables after loading).
func (m *Model) WriteJSON(w io.Writer) error {
	mf := modelFile{
		Config:  m.Config,
		K:       m.Table.K(),
		Attrs:   m.Table.Attrs(),
		EdgeACV: m.EdgeACV,
	}
	rows := make([][]table.Value, m.Table.NumRows())
	for i := range rows {
		rows[i] = m.Table.Row(i, nil)
	}
	mf.Rows = rows
	for _, e := range m.H.Edges() {
		mf.Edges = append(mf.Edges, modelEdge{Tail: e.Tail, Head: e.Head, Weight: e.Weight})
	}
	return json.NewEncoder(w).Encode(mf)
}

// ReadModelJSON loads a model written by WriteJSON, re-validating the
// table and every hyperedge.
func ReadModelJSON(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: model json: %w", err)
	}
	tb, err := table.FromRows(mf.Attrs, mf.K, mf.Rows)
	if err != nil {
		return nil, fmt.Errorf("core: model json table: %w", err)
	}
	h, err := hypergraph.New(mf.Attrs)
	if err != nil {
		return nil, err
	}
	for i, e := range mf.Edges {
		if err := h.AddEdge(e.Tail, e.Head, e.Weight); err != nil {
			return nil, fmt.Errorf("core: model json edge %d: %w", i, err)
		}
	}
	n := tb.NumAttrs()
	if len(mf.EdgeACV) != n*n {
		return nil, fmt.Errorf("core: model json: edgeACV has %d entries, want %d", len(mf.EdgeACV), n*n)
	}
	return &Model{Table: tb, Config: mf.Config, H: h, EdgeACV: mf.EdgeACV}, nil
}
