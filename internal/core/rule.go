// Package core implements the paper's primary contribution: mva-type
// association rules over multi-valued attributes (Definitions 3.1 and
// 3.2), association tables and association confidence values
// (Definition 3.6), gamma-significance (Definition 3.7), and the
// association-hypergraph builder of §3.2.1.
package core

import (
	"errors"
	"fmt"

	"hypermine/internal/table"
)

// Item is one (attribute, value) pair, the building block of an
// mva-type association rule. Attr is a column index of the database
// table; Val is a value in 1..K.
type Item struct {
	Attr int
	Val  table.Value
}

// Rule is an mva-type association rule X ==mva==> Y (Definition 3.1).
// The attribute sets of X and Y must be disjoint.
type Rule struct {
	X []Item
	Y []Item
}

// Validate checks the rule against a table per Definition 3.1.
func (r Rule) Validate(tb *table.Table) error {
	if len(r.X) == 0 || len(r.Y) == 0 {
		return errors.New("core: rule needs nonempty antecedent and consequent")
	}
	seen := map[int]byte{}
	check := func(items []Item, side byte) error {
		for _, it := range items {
			if it.Attr < 0 || it.Attr >= tb.NumAttrs() {
				return fmt.Errorf("core: attribute %d out of range", it.Attr)
			}
			if it.Val < 1 || int(it.Val) > tb.K() {
				return fmt.Errorf("core: value %d outside 1..%d", it.Val, tb.K())
			}
			if seen[it.Attr] != 0 {
				if seen[it.Attr] != side {
					return fmt.Errorf("core: attribute %d on both sides (pi1(X) and pi1(Y) must be disjoint)", it.Attr)
				}
				return fmt.Errorf("core: attribute %d repeated", it.Attr)
			}
			seen[it.Attr] = side
		}
		return nil
	}
	if err := check(r.X, 1); err != nil {
		return err
	}
	return check(r.Y, 2)
}

// SupportCount returns the number of observations matching every item.
// When the table carries a TID-bitset index (table.Index) the count is
// derived from posting-bitmap intersections; otherwise it falls back
// to a column scan. The index is only used if already built — a single
// count is not worth an index build, but callers that count many
// conjunctions (Apriori, the hypergraph builder, the classifier) build
// it once and every SupportCount after that rides on it.
func SupportCount(tb *table.Table, items []Item) int {
	if len(items) == 0 {
		return tb.NumRows()
	}
	if ix := tb.IndexIfBuilt(); ix != nil {
		return supportCountBits(ix, items)
	}
	return supportCountScan(tb, items)
}

// supportCountBits counts via the TID-bitset index: AND the items'
// posting bitmaps, popcount the intersection.
func supportCountBits(ix *table.Index, items []Item) int {
	switch len(items) {
	case 1:
		return ix.Count(items[0].Attr, items[0].Val)
	case 2:
		return table.PopcountAnd(
			ix.Posting(items[0].Attr, items[0].Val),
			ix.Posting(items[1].Attr, items[1].Val))
	}
	scratch := make([]uint64, ix.Words())
	copy(scratch, ix.Posting(items[0].Attr, items[0].Val))
	for _, it := range items[1 : len(items)-1] {
		table.AndInto(scratch, ix.Posting(it.Attr, it.Val))
	}
	last := items[len(items)-1]
	return table.PopcountAnd(scratch, ix.Posting(last.Attr, last.Val))
}

// supportCountScan is the index-free fallback: scan the first item's
// column and verify the rest per match.
func supportCountScan(tb *table.Table, items []Item) int {
	n := tb.NumRows()
	first := items[0]
	col0 := tb.Column(first.Attr)
	count := 0
rows:
	for i := 0; i < n; i++ {
		if col0[i] != first.Val {
			continue
		}
		for _, it := range items[1:] {
			if tb.At(i, it.Attr) != it.Val {
				continue rows
			}
		}
		count++
	}
	return count
}

// Support returns Supp(X) of Definition 3.2(1): the fraction of
// observations for which every attribute of X takes its paired value.
func Support(tb *table.Table, items []Item) float64 {
	if tb.NumRows() == 0 {
		return 0
	}
	return float64(SupportCount(tb, items)) / float64(tb.NumRows())
}

// Confidence returns Conf(X ==mva==> Y) of Definition 3.2(2):
// Supp(X u Y) / Supp(X). It returns 0 when Supp(X) is 0.
func Confidence(tb *table.Table, r Rule) float64 {
	sx := SupportCount(tb, r.X)
	if sx == 0 {
		return 0
	}
	both := append(append([]Item(nil), r.X...), r.Y...)
	return float64(SupportCount(tb, both)) / float64(sx)
}
