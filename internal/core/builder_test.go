package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"hypermine/internal/hypergraph"
	"hypermine/internal/table"
)

func edgeSet(h *hypergraph.H) map[string]float64 {
	out := map[string]float64{}
	for _, e := range h.Edges() {
		out[hypergraph.EdgeKey(e.Tail, e.Head)] = e.Weight
	}
	return out
}

func TestBuildGammaSignificance(t *testing.T) {
	// A perfectly determined pair: C = A (copy), D independent-ish.
	rows := [][]table.Value{
		{1, 1, 1, 2},
		{2, 1, 2, 1},
		{3, 2, 3, 2},
		{1, 2, 1, 1},
		{2, 3, 2, 2},
		{3, 3, 3, 1},
		{1, 1, 1, 2},
		{2, 2, 2, 1},
		{3, 3, 3, 2},
	}
	tb, err := table.FromRows([]string{"A", "B", "C", "D"}, 3, rows)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Build(tb, Config{GammaEdge: 1.5, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// A determines C exactly: ACV({A},{C}) = 1; Null(C) = 3/9 = 1/3,
	// so the edge clears gamma 1.5 easily.
	a, c := tb.AttrIndex("A"), tb.AttrIndex("C")
	if _, ok := model.H.Lookup([]int{a}, []int{c}); !ok {
		t.Error("edge A->C should be admitted")
	}
	if got := model.EdgeACVAt(a, c); !almost(got, 1.0) {
		t.Errorf("ACV(A->C) = %v, want 1", got)
	}
	if err := model.H.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Every admitted directed edge satisfies Definition 3.7.
	for _, e := range model.H.Edges() {
		if len(e.Tail) != 1 {
			continue
		}
		if e.Weight < 1.5*NullACV(tb, e.Head[0])-1e-12 {
			t.Errorf("edge %v violates gamma-significance", e)
		}
	}
	// Every admitted 2-to-1 hyperedge satisfies Definition 3.7
	// against the cached constituent ACVs.
	for _, e := range model.H.Edges() {
		if len(e.Tail) != 2 {
			continue
		}
		maxEdge := model.EdgeACVAt(e.Tail[0], e.Head[0])
		if x := model.EdgeACVAt(e.Tail[1], e.Head[0]); x > maxEdge {
			maxEdge = x
		}
		if e.Weight < 1.0*maxEdge-1e-12 {
			t.Errorf("hyperedge %v violates gamma-significance", e)
		}
	}
}

func TestBuildDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tb := randomTable(rng, 10, 3, 200)
	cfg := Config{GammaEdge: 1.05, GammaPair: 1.0}
	cfg.Parallelism = 1
	m1, err := Build(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	m2, err := Build(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1.H.NumEdges() != m2.H.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", m1.H.NumEdges(), m2.H.NumEdges())
	}
	if !reflect.DeepEqual(edgeSet(m1.H), edgeSet(m2.H)) {
		t.Error("edge sets differ across parallelism")
	}
	// Edge insertion order must also be identical (sorted merge).
	for i := range m1.H.Edges() {
		e1, e2 := m1.H.Edge(i), m2.H.Edge(i)
		if !reflect.DeepEqual(e1, e2) {
			t.Fatalf("edge %d differs: %v vs %v", i, e1, e2)
		}
	}
}

func TestBuildMaxTailSizeOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := randomTable(rng, 6, 3, 100)
	m, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0, MaxTailSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.H.Edges() {
		if len(e.Tail) != 1 {
			t.Fatalf("unexpected 2-to-1 edge %v", e)
		}
	}
}

func TestBuildEdgeSeededSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tb := randomTable(rng, 8, 3, 150)
	all, err := Build(tb, Config{GammaEdge: 1.1, GammaPair: 1.02, Candidates: AllPairs})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := Build(tb, Config{GammaEdge: 1.1, GammaPair: 1.02, Candidates: EdgeSeeded})
	if err != nil {
		t.Fatal(err)
	}
	allSet := edgeSet(all.H)
	for k, w := range edgeSet(seeded.H) {
		if got, ok := allSet[k]; !ok || got != w {
			t.Errorf("seeded edge %s not in exhaustive build", k)
		}
	}
	if seeded.H.NumEdges() > all.H.NumEdges() {
		t.Error("seeded build produced more edges than exhaustive")
	}
}

func TestBuildConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := randomTable(rng, 3, 3, 20)
	cases := []Config{
		{K: 5, GammaEdge: 1.1, GammaPair: 1.1},           // k mismatch
		{GammaEdge: 0.9, GammaPair: 1.1},                 // gamma < 1
		{GammaEdge: 1.1, GammaPair: 0.5},                 // gamma < 1
		{GammaEdge: 1.1, GammaPair: 1.1, MaxTailSize: 4}, // tail too big
	}
	for i, cfg := range cases {
		if _, err := Build(tb, cfg); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	empty, _ := table.New([]string{"A", "B"}, 3)
	if _, err := Build(empty, Config{GammaEdge: 1, GammaPair: 1}); err == nil {
		t.Error("want error for empty table")
	}
	single, _ := table.FromRows([]string{"A"}, 2, [][]table.Value{{1}})
	if _, err := Build(single, Config{GammaEdge: 1, GammaPair: 1}); err == nil {
		t.Error("want error for single attribute")
	}
}

func TestC1C2Presets(t *testing.T) {
	c1, c2 := C1(), C2()
	if c1.K != 3 || !almost(c1.GammaEdge, 1.15) || !almost(c1.GammaPair, 1.05) {
		t.Errorf("C1 = %+v", c1)
	}
	if c2.K != 5 || !almost(c2.GammaEdge, 1.20) || !almost(c2.GammaPair, 1.12) {
		t.Errorf("C2 = %+v", c2)
	}
}

func TestModelAssociationTableFor(t *testing.T) {
	tb := interestDB(t)
	m, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	at, err := m.AssociationTableFor([]int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(at.ACV(), mustACV(t, tb, []int{0, 1}, 2)) {
		t.Error("model AT disagrees with direct computation")
	}
}

func mustACV(t *testing.T, tb *table.Table, tail []int, head int) float64 {
	t.Helper()
	v, err := ACV(tb, tail, head)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// Property: on random tables, Build never admits an edge violating
// Definition 3.7, and all weights equal freshly computed ACVs.
func TestBuildAdmissionProperty(t *testing.T) {
	seeds := []int64{3, 17, 29, 51}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTable(rng, 6, 2+rng.Intn(3), 40+rng.Intn(100))
		gammaE := 1.0 + rng.Float64()*0.3
		gammaP := 1.0 + rng.Float64()*0.1
		m, err := Build(tb, Config{GammaEdge: gammaE, GammaPair: gammaP})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range m.H.Edges() {
			want := mustACV(t, tb, e.Tail, e.Head[0])
			if !almost(e.Weight, want) {
				t.Fatalf("seed %d: weight %v != ACV %v", seed, e.Weight, want)
			}
			var bound float64
			if len(e.Tail) == 1 {
				bound = gammaE * NullACV(tb, e.Head[0])
			} else {
				a := mustACV(t, tb, e.Tail[:1], e.Head[0])
				b := mustACV(t, tb, e.Tail[1:], e.Head[0])
				bound = gammaP * maxF(a, b)
			}
			if e.Weight < bound-1e-12 {
				t.Fatalf("seed %d: edge %v below significance bound %v", seed, e, bound)
			}
		}
		// Completeness: every gamma-significant directed edge is present.
		n := tb.NumAttrs()
		for a := 0; a < n; a++ {
			for c := 0; c < n; c++ {
				if a == c {
					continue
				}
				acv := mustACV(t, tb, []int{a}, c)
				_, present := m.H.Lookup([]int{a}, []int{c})
				if acv >= gammaE*NullACV(tb, c) && !present {
					t.Fatalf("seed %d: significant edge %d->%d missing", seed, a, c)
				}
			}
		}
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Sanity on sorted edge output: 2-to-1 edges appear after directed
// edges and in (a, b, c) order.
func TestBuildEdgeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tb := randomTable(rng, 7, 3, 120)
	m, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var pairs [][3]int
	for _, e := range m.H.Edges() {
		if len(e.Tail) == 2 {
			pairs = append(pairs, [3]int{e.Tail[0], e.Tail[1], e.Head[0]})
		}
	}
	if !sort.SliceIsSorted(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		if pairs[i][1] != pairs[j][1] {
			return pairs[i][1] < pairs[j][1]
		}
		return pairs[i][2] < pairs[j][2]
	}) {
		t.Error("2-to-1 edges not in canonical order")
	}
}
