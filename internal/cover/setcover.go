// Package cover implements the covering substrates and algorithms of
// the paper: the greedy set-cover approximation (Algorithm 1, Theorem
// 2.3), graph dominating set via the set-cover reduction (§2.1.2), and
// the two greedy dominator algorithms for directed hypergraphs
// (Algorithms 5 and 6, with Enhancements 1 and 2 from Algorithms 7 and
// 8) that compute the paper's leading indicators (§4.1, §5.4).
package cover

import (
	"errors"
	"fmt"
)

// SetCover runs the greedy Algorithm 1: given a universe {0..n-1} and
// a collection of subsets, repeatedly pick the subset covering the
// most still-uncovered elements (lowest average cost 1/|S - Cover|)
// until everything is covered. Returns the chosen subset indexes in
// pick order. The result is within O(log n) of optimal (Theorem 2.3).
func SetCover(n int, sets [][]int) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("cover: negative universe size %d", n)
	}
	covered := make([]bool, n)
	for si, s := range sets {
		for _, e := range s {
			if e < 0 || e >= n {
				return nil, fmt.Errorf("cover: set %d contains %d outside universe", si, e)
			}
		}
	}
	var pick []int
	used := make([]bool, len(sets))
	// mark/epoch deduplicate repeated elements within one set scan, so
	// a set listing an uncovered element twice gains 1 for it, not 2 —
	// required for the Theorem 2.3 guarantee.
	mark := make([]int, n)
	epoch := 0
	remaining := n
	for remaining > 0 {
		best, bestGain := -1, 0
		for si, s := range sets {
			if used[si] {
				continue
			}
			epoch++
			gain := 0
			for _, e := range s {
				if !covered[e] && mark[e] != epoch {
					mark[e] = epoch
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = si, gain
			}
		}
		if best < 0 {
			return nil, errors.New("cover: universe not coverable by given sets")
		}
		used[best] = true
		pick = append(pick, best)
		for _, e := range sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	return pick, nil
}

// WeightedSetCover generalizes Algorithm 1 to the minimum-cost form
// §2.1.1 states: each subset carries a cost, and the greedy rule picks
// the subset of lowest average cost per newly covered element
// (cost(S)/|S - Cover|), i.e. highest cost effectiveness. The unit-cost
// case reduces exactly to SetCover. The classical guarantee is an
// H(n) = O(log n) approximation of the optimal cost.
func WeightedSetCover(n int, sets [][]int, costs []float64) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("cover: negative universe size %d", n)
	}
	if len(costs) != len(sets) {
		return nil, fmt.Errorf("cover: %d costs for %d sets", len(costs), len(sets))
	}
	for si, s := range sets {
		if costs[si] < 0 {
			return nil, fmt.Errorf("cover: set %d has negative cost %v", si, costs[si])
		}
		for _, e := range s {
			if e < 0 || e >= n {
				return nil, fmt.Errorf("cover: set %d contains %d outside universe", si, e)
			}
		}
	}
	covered := make([]bool, n)
	used := make([]bool, len(sets))
	// See SetCover: duplicate elements inside one set must count once
	// toward the gain, or cost effectiveness is overestimated and the
	// H(n) bound breaks.
	mark := make([]int, n)
	epoch := 0
	var pick []int
	remaining := n
	for remaining > 0 {
		best := -1
		bestRatio := 0.0
		for si, s := range sets {
			if used[si] {
				continue
			}
			epoch++
			gain := 0
			for _, e := range s {
				if !covered[e] && mark[e] != epoch {
					mark[e] = epoch
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			ratio := costs[si] / float64(gain)
			if best < 0 || ratio < bestRatio {
				best, bestRatio = si, ratio
			}
		}
		if best < 0 {
			return nil, errors.New("cover: universe not coverable by given sets")
		}
		used[best] = true
		pick = append(pick, best)
		for _, e := range sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	return pick, nil
}

// CoverCost sums the costs of the chosen subsets.
func CoverCost(costs []float64, chosen []int) float64 {
	var sum float64
	for _, si := range chosen {
		if si >= 0 && si < len(costs) {
			sum += costs[si]
		}
	}
	return sum
}

// ExactMinCostCover brute-forces the cheapest cover over all subset
// combinations; exponential, for approximation-quality tests only
// (limited to 20 sets).
func ExactMinCostCover(n int, sets [][]int, costs []float64) ([]int, error) {
	if len(sets) > 20 {
		return nil, errors.New("cover: ExactMinCostCover limited to 20 sets")
	}
	if len(costs) != len(sets) {
		return nil, fmt.Errorf("cover: %d costs for %d sets", len(costs), len(sets))
	}
	bestCost := -1.0
	var best []int
	for mask := 0; mask < 1<<uint(len(sets)); mask++ {
		var chosen []int
		var cost float64
		for si := range sets {
			if mask&(1<<uint(si)) != 0 {
				chosen = append(chosen, si)
				cost += costs[si]
			}
		}
		if bestCost >= 0 && cost >= bestCost {
			continue
		}
		if IsSetCover(n, sets, chosen) {
			bestCost = cost
			best = chosen
		}
	}
	if bestCost < 0 {
		return nil, errors.New("cover: universe not coverable by given sets")
	}
	return best, nil
}

// IsSetCover verifies that the chosen subsets cover the universe.
func IsSetCover(n int, sets [][]int, chosen []int) bool {
	covered := make([]bool, n)
	for _, si := range chosen {
		if si < 0 || si >= len(sets) {
			return false
		}
		for _, e := range sets[si] {
			if e >= 0 && e < n {
				covered[e] = true
			}
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// DominatingSet computes a dominating set of an undirected graph given
// as adjacency lists, via the classical reduction to set cover
// (§2.1.2): element v is covered by the sets {v} u N(v). Returns the
// chosen vertexes.
func DominatingSet(adj [][]int) ([]int, error) {
	n := len(adj)
	if n == 0 {
		return nil, errors.New("cover: empty graph")
	}
	sets := make([][]int, n)
	for v, nb := range adj {
		s := make([]int, 0, len(nb)+1)
		s = append(s, v)
		for _, u := range nb {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("cover: vertex %d has neighbor %d out of range", v, u)
			}
			s = append(s, u)
		}
		sets[v] = s
	}
	return SetCover(n, sets)
}

// IsDominatingSet verifies domination: every vertex is in the set or
// adjacent to a member.
func IsDominatingSet(adj [][]int, dom []int) bool {
	n := len(adj)
	inDom := make([]bool, n)
	for _, v := range dom {
		if v < 0 || v >= n {
			return false
		}
		inDom[v] = true
	}
	for v := 0; v < n; v++ {
		if inDom[v] {
			continue
		}
		ok := false
		for _, u := range adj[v] {
			if inDom[u] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
