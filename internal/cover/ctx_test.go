package cover

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"hypermine/internal/runopt"
)

// TestDominatorContextBackgroundIdentical proves both Context
// dominator variants are bit-identical to their v1 forms when the
// context is never canceled, across enhancement combinations and
// randomized graphs.
func TestDominatorContextBackgroundIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h := randomDomGraph(t, rng, 18, 40)
		s := make([]int, h.NumVertices())
		for i := range s {
			s[i] = i
		}
		for _, opt := range []Options{
			{},
			{Complete: true},
			{Enhancement1: true, Enhancement2: true},
			{Enhancement1: true, Enhancement2: true, Complete: true},
		} {
			optCtx := opt
			optCtx.Run = &runopt.Hooks{CheckEvery: 1, Progress: func(runopt.Phase, int, int) {}}

			wantSC, err1 := DominatorSetCover(h, s, opt)
			gotSC, err2 := DominatorSetCoverContext(context.Background(), h, s, optCtx)
			if err1 != nil || err2 != nil {
				t.Fatalf("setcover errs: %v %v", err1, err2)
			}
			if !reflect.DeepEqual(wantSC, gotSC) {
				t.Fatalf("trial %d opt %+v: DominatorSetCoverContext differs", trial, opt)
			}

			wantDS, err1 := DominatorGreedyDS(h, s, opt)
			gotDS, err2 := DominatorGreedyDSContext(context.Background(), h, s, optCtx)
			if err1 != nil || err2 != nil {
				t.Fatalf("greedyds errs: %v %v", err1, err2)
			}
			if !reflect.DeepEqual(wantDS, gotDS) {
				t.Fatalf("trial %d opt %+v: DominatorGreedyDSContext differs", trial, opt)
			}
		}
	}
}

func TestDominatorContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomDomGraph(t, rng, 30, 90)
	s := make([]int, h.NumVertices())
	for i := range s {
		s[i] = i
	}
	type variant struct {
		name string
		run  func(ctx context.Context, opt Options) (*Result, error)
	}
	variants := []variant{
		{"setcover", func(ctx context.Context, opt Options) (*Result, error) {
			return DominatorSetCoverContext(ctx, h, s, opt)
		}},
		{"greedyds", func(ctx context.Context, opt Options) (*Result, error) {
			return DominatorGreedyDSContext(ctx, h, s, opt)
		}},
	}
	for _, v := range variants {
		// Pre-canceled context returns immediately.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := v.run(ctx, Options{Run: &runopt.Hooks{CheckEvery: 1}})
		if res != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("%s pre-canceled: want (nil, Canceled), got (%v, %v)", v.name, res, err)
		}
		// Mid-flight: cancel from the progress callback after the first
		// covered target; the next candidate poll (stride 1) observes it.
		ctx2, cancel2 := context.WithCancel(context.Background())
		res, err = v.run(ctx2, Options{Run: &runopt.Hooks{
			CheckEvery: 1,
			Progress:   func(runopt.Phase, int, int) { cancel2() },
		}})
		cancel2()
		if res != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("%s mid-flight: want (nil, Canceled), got (%v, %v)", v.name, res, err)
		}
	}
}
