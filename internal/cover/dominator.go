package cover

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hypermine/internal/hypergraph"
	"hypermine/internal/runopt"
)

// Variant selects how the hypermine.LeadingIndicators facade
// interprets the Enhancement flags. Historically that entry point
// silently forced both enhancements on, overwriting caller-supplied
// values; the zero value VariantAuto keeps (and now documents) that
// paper-preferred default, while VariantExplicit makes the facade
// respect Enhancement1/Enhancement2 exactly as set. DominatorSetCover
// and DominatorGreedyDS always honor the explicit flags and ignore
// Variant entirely.
type Variant int

const (
	// VariantAuto (the zero value): LeadingIndicators runs Algorithm 6
	// with both enhancements regardless of the Enhancement fields.
	VariantAuto Variant = iota
	// VariantExplicit: LeadingIndicators uses Enhancement1/2 as given.
	VariantExplicit
)

// DefaultCheckEvery is the default candidate-evaluation stride between
// context polls in the Context dominator variants. Scoring one
// candidate touches its members and their out-edges, so 64 of them
// bound cancellation latency well under a greedy iteration.
const DefaultCheckEvery = 64

// Options tunes the dominator algorithms.
type Options struct {
	// Complete forces the greedy loop to run until every target is
	// covered, falling back to self-coverage (adding a node to the
	// dominator trivially covers it). When false — the default and
	// the behaviour behind the "Percent Covered" column of Tables
	// 5.3/5.4 — the loop stops as soon as the best candidate covers
	// no new target through hyperedges, leaving the remainder
	// uncovered instead of bloating the dominator.
	Complete bool
	// Enhancement1 enables Algorithm 7 for DominatorSetCover: among
	// equally effective tail sets prefer the one contributing the
	// fewest new dominator members.
	Enhancement1 bool
	// Enhancement2 enables Algorithm 8 for DominatorSetCover: drop
	// tail sets already contained in the dominator from the
	// candidate pool.
	Enhancement2 bool
	// Variant controls whether hypermine.LeadingIndicators may
	// overwrite the Enhancement flags with its paper-preferred
	// defaults; see the Variant type. The algorithms in this package
	// ignore it.
	Variant Variant

	// Run carries the runtime-only hooks of the Context variants: a
	// PhaseDominator progress callback (done counts covered targets,
	// total is |S|) and the context-poll stride in candidate
	// evaluations (0 = DefaultCheckEvery). Held by pointer so Options
	// stays comparable; never mutated by the algorithms.
	Run *runopt.Hooks
}

// Result reports a computed dominator.
type Result struct {
	// DomSet is the dominator, in pick order (members of a tail set
	// picked together appear consecutively).
	DomSet []int
	// Covered marks every vertex covered at termination (dominator
	// members and hyperedge-covered targets).
	Covered []bool
	// TargetCovered counts covered vertices of the requested set S.
	TargetCovered int
	// TargetSize is |S|.
	TargetSize int
	// Iterations is the number of greedy picks performed.
	Iterations int
}

// CoverageFraction returns TargetCovered / TargetSize.
func (r *Result) CoverageFraction() float64 {
	if r.TargetSize == 0 {
		return 0
	}
	return float64(r.TargetCovered) / float64(r.TargetSize)
}

// IsDominator checks Definition 4.1 for the subset of S marked covered:
// every covered u in S - X has a hyperedge e with T(e) inside X and u
// in H(e). It returns the covered targets that violate the property.
func IsDominator(h *hypergraph.H, s []int, dom []int) []int {
	inDom := make([]bool, h.NumVertices())
	for _, v := range dom {
		inDom[v] = true
	}
	var bad []int
	for _, u := range s {
		if inDom[u] {
			continue
		}
		ok := false
		for _, ei := range h.In(u) {
			e := h.Edge(int(ei))
			all := true
			for _, tv := range e.Tail {
				if !inDom[tv] {
					all = false
					break
				}
			}
			if all {
				ok = true
				break
			}
		}
		if !ok {
			bad = append(bad, u)
		}
	}
	return bad
}

func validateTargets(h *hypergraph.H, s []int) error {
	if len(s) == 0 {
		return errors.New("cover: empty target set")
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= h.NumVertices() {
			return fmt.Errorf("cover: target vertex %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("cover: duplicate target vertex %d", v)
		}
		seen[v] = true
	}
	return nil
}

// headGain counts targets in S - Covered that become covered through
// hyperedges once dom (with candidate additions) is the dominator.
func headGainFor(h *hypergraph.H, inS, covered, inDom []bool, added []int) (int, []int) {
	for _, v := range added {
		inDom[v] = true
	}
	var gained []int
	for _, v := range added {
		for _, ei := range h.Out(v) {
			e := h.Edge(int(ei))
			hv := e.Head[0]
			if !inS[hv] || covered[hv] {
				continue
			}
			all := true
			for _, tv := range e.Tail {
				if !inDom[tv] {
					all = false
					break
				}
			}
			if all {
				covered[hv] = true
				gained = append(gained, hv)
			}
		}
	}
	// Roll back; caller commits separately.
	for _, v := range added {
		inDom[v] = false
	}
	for _, v := range gained {
		covered[v] = false
	}
	return len(gained), gained
}

// DominatorGreedyDS is Algorithm 5: the adaptation of the greedy graph
// dominating-set approximation. Each iteration scores every vertex u
// outside the dominator with
//
//	alpha(u) = [u uncovered target] +
//	           sum over uncovered targets v of
//	           max over e with u in T(e), v in H(e) of
//	           w(e) / |T(e) - DomSet|
//
// and commits the highest-scoring vertex. Runs in O(|S| * |E|) per the
// paper. Ties break toward the smallest vertex id, so results are
// deterministic.
//
// Iterations memoize alpha scores with dirty tracking: committing a
// vertex only changes the score of candidates that share an edge with
// it (their free tail counts shrink) or with a newly covered head
// (their L(u, v) term drops), so everyone else keeps the cached value
// instead of rescanning its out-edges. The memoized run is
// bit-identical to the full rescan (see the differential test).
func DominatorGreedyDS(h *hypergraph.H, s []int, opt Options) (*Result, error) {
	return DominatorGreedyDSContext(context.Background(), h, s, opt)
}

// DominatorGreedyDSContext is DominatorGreedyDS under a context:
// cancellation is polled every Options.Run.CheckEvery candidate
// scorings (DefaultCheckEvery when unset) and ctx.Err() is returned promptly,
// discarding the partial dominator. Bit-identical to DominatorGreedyDS
// when never canceled.
func DominatorGreedyDSContext(ctx context.Context, h *hypergraph.H, s []int, opt Options) (*Result, error) {
	return dominatorGreedyDS(ctx, h, s, opt, true)
}

// dominatorGreedyDS is DominatorGreedyDS with the alpha memoization
// switchable, so tests can compare against the always-rescan reference.
func dominatorGreedyDS(ctx context.Context, h *hypergraph.H, s []int, opt Options, memo bool) (*Result, error) {
	if err := validateTargets(h, s); err != nil {
		return nil, err
	}
	chk := runopt.NewChecker(ctx, opt.Run.Stride(), DefaultCheckEvery)
	prog := runopt.NewMeter(runopt.PhaseDominator, len(s), opt.Run.Func())
	n := h.NumVertices()
	inS := make([]bool, n)
	for _, v := range s {
		inS[v] = true
	}
	covered := make([]bool, n)
	inDom := make([]bool, n)
	res := &Result{Covered: covered, TargetSize: len(s)}

	remaining := len(s)
	// lBest[v] accumulates the per-head maximum L(u, v) while scoring a
	// candidate u; touched lists the heads to reset between candidates.
	lBest := make([]float64, n)
	touched := make([]int, 0, n)
	score := func(u int) float64 {
		alpha := 0.0
		if inS[u] && !covered[u] {
			alpha = 1
		}
		touched = touched[:0]
		for _, ei := range h.Out(u) {
			e := h.Edge(int(ei))
			hv := e.Head[0]
			if !inS[hv] || covered[hv] {
				continue
			}
			free := 0
			for _, tv := range e.Tail {
				if !inDom[tv] {
					free++
				}
			}
			if free == 0 {
				continue
			}
			// L(u, v) is the max over edges from u into v of
			// w(e)/|T(e)-DomSet| — keep only the best edge per head.
			if l := e.Weight / float64(free); l > lBest[hv] {
				if lBest[hv] == 0 {
					touched = append(touched, hv)
				}
				lBest[hv] = l
			}
		}
		for _, hv := range touched {
			alpha += lBest[hv]
			lBest[hv] = 0
		}
		return alpha
	}
	alphaCache := make([]float64, n)
	dirty := make([]bool, n)
	for u := range dirty {
		dirty[u] = true
	}
	// markCommitted records that v joined the dominator: every edge
	// with v in its tail now has one less free tail vertex, changing
	// the L terms of all its other tail members.
	markCommitted := func(v int) {
		for _, ei := range h.Out(v) {
			for _, tv := range h.Edge(int(ei)).Tail {
				dirty[tv] = true
			}
		}
	}
	// markCovered records that target v became covered: candidates
	// feeding v through a hyperedge lose their L(u, v) term, and v
	// itself loses its self-coverage unit.
	markCovered := func(v int) {
		dirty[v] = true
		for _, ei := range h.In(v) {
			for _, tv := range h.Edge(int(ei)).Tail {
				dirty[tv] = true
			}
		}
	}
	for remaining > 0 {
		bestU, bestAlpha := -1, -1.0
		for u := 0; u < n; u++ {
			if inDom[u] {
				continue
			}
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			if !memo || dirty[u] {
				alphaCache[u] = score(u)
				dirty[u] = false
			}
			if alphaCache[u] > bestAlpha {
				bestAlpha, bestU = alphaCache[u], u
			}
		}
		if bestU < 0 {
			break
		}
		gain, gained := headGainFor(h, inS, covered, inDom, []int{bestU})
		selfGain := 0
		if inS[bestU] && !covered[bestU] {
			selfGain = 1
		}
		if !opt.Complete && gain == 0 && bestAlpha <= 1 {
			// Only self-coverage left: stop, reporting partial
			// coverage (the paper's "Percent Covered" < 100).
			break
		}
		if gain == 0 && selfGain == 0 && opt.Complete {
			// No progress possible even in complete mode for this
			// pick; fall back to covering an arbitrary uncovered
			// target directly.
			bestU = -1
			for _, v := range s {
				if !covered[v] && !inDom[v] {
					bestU = v
					break
				}
			}
			if bestU < 0 {
				break
			}
			gain, gained = headGainFor(h, inS, covered, inDom, []int{bestU})
		}
		inDom[bestU] = true
		res.DomSet = append(res.DomSet, bestU)
		res.Iterations++
		markCommitted(bestU)
		newlyCovered := 0
		if inS[bestU] && !covered[bestU] {
			covered[bestU] = true
			remaining--
			res.TargetCovered++
			newlyCovered++
			markCovered(bestU)
		}
		for _, v := range gained {
			covered[v] = true
			remaining--
			res.TargetCovered++
			newlyCovered++
			markCovered(v)
		}
		prog.Tick(newlyCovered)
	}
	return res, nil
}

// tailCandidate is one entry of the T* pool of Algorithm 6.
type tailCandidate struct {
	members []int // sorted vertex ids
}

// DominatorSetCover is Algorithm 6: the adaptation of the greedy
// set-cover approximation. The candidate pool T* holds the distinct
// tail sets of all hyperedges; each iteration scores a candidate t* by
// the number of new target vertices it would cover — its own members
// plus heads of edges whose tails lie inside t* — and commits the best
// one.
//
// Deviation from the pseudocode, documented here on purpose: Lines
// 13–17 of Algorithm 6 add one unit per *edge* with T(e) inside t*,
// which double-counts a head reachable through several edges. This
// implementation counts distinct head vertices, matching the stated
// intent ("alpha(t*) contains all new vertices that can be covered by
// including t* in DomSet").
//
// Enhancements 1 and 2 (Algorithms 7 and 8) are applied when enabled
// in Options. Ties (after Enhancement 1, if on) break lexicographically
// so results are deterministic.
func DominatorSetCover(h *hypergraph.H, s []int, opt Options) (*Result, error) {
	return DominatorSetCoverContext(context.Background(), h, s, opt)
}

// DominatorSetCoverContext is DominatorSetCover under a context:
// cancellation is polled every Options.Run.CheckEvery candidate
// evaluations (DefaultCheckEvery when unset) within each greedy
// iteration, and ctx.Err() is returned promptly, discarding the
// partial dominator. Bit-identical to DominatorSetCover when never
// canceled.
func DominatorSetCoverContext(ctx context.Context, h *hypergraph.H, s []int, opt Options) (*Result, error) {
	if err := validateTargets(h, s); err != nil {
		return nil, err
	}
	chk := runopt.NewChecker(ctx, opt.Run.Stride(), DefaultCheckEvery)
	prog := runopt.NewMeter(runopt.PhaseDominator, len(s), opt.Run.Func())
	n := h.NumVertices()
	inS := make([]bool, n)
	for _, v := range s {
		inS[v] = true
	}
	covered := make([]bool, n)
	inDom := make([]bool, n)
	res := &Result{Covered: covered, TargetSize: len(s)}

	// Build the distinct tail-set pool, deduplicating on the packed
	// integer tail key (string EdgeKey fallback for tails beyond the
	// restricted model).
	pool := map[uint64]tailCandidate{}
	var poolS map[string]tailCandidate
	for _, e := range h.Edges() {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		if key, ok := hypergraph.PackTailKey(e.Tail); ok {
			if _, dup := pool[key]; !dup {
				pool[key] = tailCandidate{members: append([]int(nil), e.Tail...)}
			}
			continue
		}
		if poolS == nil {
			poolS = map[string]tailCandidate{}
		}
		key := hypergraph.EdgeKey(e.Tail, e.Tail[:1])
		if _, dup := poolS[key]; !dup {
			poolS[key] = tailCandidate{members: append([]int(nil), e.Tail...)}
		}
	}
	cands := make([]tailCandidate, 0, len(pool)+len(poolS))
	for _, c := range pool {
		cands = append(cands, c)
	}
	for _, c := range poolS {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool { return lessIntSlice(cands[i].members, cands[j].members) })

	remaining := len(s)
	for remaining > 0 && len(cands) > 0 {
		bestIdx, bestAlpha := -1, 0
		bestNew := 0 // |t* - DomSet| of the current best (Enhancement 1)
		bestHGIdx, bestHG := -1, 0
		keep := cands[:0]
		for _, c := range cands {
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			if opt.Enhancement2 && subsetOf(c.members, inDom) {
				continue // Algorithm 8: drop permanently
			}
			alpha := 0
			newMembers := 0
			for _, v := range c.members {
				if !inDom[v] {
					newMembers++
				}
				if inS[v] && !covered[v] {
					alpha++
				}
			}
			hg, _ := headGainFor(h, inS, covered, inDom, diffMembers(c.members, inDom))
			alpha += hg
			if alpha == 0 {
				continue // Line 18: discard ineffective sets
			}
			keep = append(keep, c)
			idx := len(keep) - 1
			switch {
			case alpha > bestAlpha:
				bestAlpha, bestIdx, bestNew = alpha, idx, newMembers
			case alpha == bestAlpha && opt.Enhancement1 && newMembers < bestNew:
				// Algorithm 7: prefer the candidate adding fewer
				// members to the dominator.
				bestIdx, bestNew = idx, newMembers
			}
			if hg > bestHG {
				bestHG, bestHGIdx = hg, idx
			}
		}
		cands = keep
		if bestIdx < 0 {
			break
		}
		chosen := cands[bestIdx]
		added := diffMembers(chosen.members, inDom)
		hg, gained := headGainFor(h, inS, covered, inDom, added)
		if !opt.Complete && hg == 0 {
			// The alpha-best candidate only self-covers. Fall back to
			// the best hyperedge-covering candidate if one exists;
			// otherwise stop with partial coverage (the "Percent
			// Covered" < 100 of Tables 5.3/5.4).
			if bestHGIdx < 0 {
				break
			}
			chosen = cands[bestHGIdx]
			added = diffMembers(chosen.members, inDom)
			hg, gained = headGainFor(h, inS, covered, inDom, added)
			if hg == 0 {
				break
			}
		}
		for _, v := range added {
			inDom[v] = true
			res.DomSet = append(res.DomSet, v)
		}
		res.Iterations++
		// Line 22: Covered grows by the tail members and newly
		// dominated heads.
		newlyCovered := 0
		for _, v := range chosen.members {
			if !covered[v] {
				covered[v] = true
				if inS[v] {
					remaining--
					res.TargetCovered++
					newlyCovered++
				}
			}
		}
		for _, v := range gained {
			if !covered[v] {
				covered[v] = true
				remaining--
				res.TargetCovered++
				newlyCovered++
			}
		}
		prog.Tick(newlyCovered)
	}
	if opt.Complete {
		for _, v := range s {
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			if !covered[v] {
				covered[v] = true
				inDom[v] = true
				res.DomSet = append(res.DomSet, v)
				res.TargetCovered++
				prog.Tick(1)
			}
		}
	}
	return res, nil
}

func subsetOf(members []int, in []bool) bool {
	for _, v := range members {
		if !in[v] {
			return false
		}
	}
	return true
}

func diffMembers(members []int, inDom []bool) []int {
	var out []int
	for _, v := range members {
		if !inDom[v] {
			out = append(out, v)
		}
	}
	return out
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
