package cover

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetCoverBasic(t *testing.T) {
	sets := [][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}}
	pick, err := SetCover(6, sets)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSetCover(6, sets, pick) {
		t.Errorf("pick %v is not a cover", pick)
	}
	// Greedy: {0,1,2} then {3,4,5} suffice.
	if len(pick) != 2 {
		t.Errorf("picked %d sets, want 2", len(pick))
	}
}

func TestSetCoverErrors(t *testing.T) {
	if _, err := SetCover(-1, nil); err == nil {
		t.Error("want error for negative universe")
	}
	if _, err := SetCover(3, [][]int{{0, 9}}); err == nil {
		t.Error("want error for element outside universe")
	}
	if _, err := SetCover(3, [][]int{{0}}); err == nil {
		t.Error("want error for uncoverable universe")
	}
	// Empty universe is trivially covered.
	pick, err := SetCover(0, nil)
	if err != nil || len(pick) != 0 {
		t.Errorf("empty universe: %v, %v", pick, err)
	}
}

// Property: greedy always produces a valid cover whenever one exists,
// and never larger than the number of elements.
func TestSetCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		nSets := 1 + rng.Intn(15)
		sets := make([][]int, nSets)
		for i := range sets {
			sz := 1 + rng.Intn(n)
			for j := 0; j < sz; j++ {
				sets[i] = append(sets[i], rng.Intn(n))
			}
		}
		// Guarantee coverability.
		for e := 0; e < n; e++ {
			idx := rng.Intn(nSets)
			sets[idx] = append(sets[idx], e)
		}
		pick, err := SetCover(n, sets)
		if err != nil {
			return false
		}
		return IsSetCover(n, sets, pick) && len(pick) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDominatingSetStar(t *testing.T) {
	// Star: center 0 adjacent to 1..4 — one vertex dominates.
	adj := [][]int{{1, 2, 3, 4}, {0}, {0}, {0}, {0}}
	dom, err := DominatingSet(adj)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDominatingSet(adj, dom) {
		t.Errorf("%v does not dominate", dom)
	}
	if len(dom) != 1 || dom[0] != 0 {
		t.Errorf("dom = %v, want [0]", dom)
	}
}

func TestDominatingSetErrors(t *testing.T) {
	if _, err := DominatingSet(nil); err == nil {
		t.Error("want error for empty graph")
	}
	if _, err := DominatingSet([][]int{{5}}); err == nil {
		t.Error("want error for out-of-range neighbor")
	}
}

func TestIsDominatingSetRejects(t *testing.T) {
	adj := [][]int{{1}, {0}, {}}
	if IsDominatingSet(adj, []int{0}) {
		t.Error("vertex 2 is not dominated")
	}
	if IsDominatingSet(adj, []int{9}) {
		t.Error("out-of-range member should fail")
	}
	if !IsDominatingSet(adj, []int{0, 2}) {
		t.Error("{0,2} dominates")
	}
}

// Property: dominating set via reduction always dominates random graphs.
func TestDominatingSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		dom, err := DominatingSet(adj)
		if err != nil {
			return false
		}
		return IsDominatingSet(adj, dom)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWeightedSetCoverPrefersCheap(t *testing.T) {
	// One expensive set covers everything; two cheap sets also do.
	sets := [][]int{{0, 1, 2, 3}, {0, 1}, {2, 3}}
	costs := []float64{10, 1, 1}
	pick, err := WeightedSetCover(4, sets, costs)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSetCover(4, sets, pick) {
		t.Fatalf("pick %v not a cover", pick)
	}
	if got := CoverCost(costs, pick); got != 2 {
		t.Errorf("cost = %v, want 2 (cheap pair)", got)
	}
}

func TestWeightedSetCoverUnitReducesToGreedy(t *testing.T) {
	sets := [][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}}
	unit := []float64{1, 1, 1, 1}
	wp, err := WeightedSetCover(6, sets, unit)
	if err != nil {
		t.Fatal(err)
	}
	up, err := SetCover(6, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(wp) != len(up) {
		t.Errorf("unit-cost weighted pick %v differs in size from greedy %v", wp, up)
	}
}

func TestWeightedSetCoverValidation(t *testing.T) {
	if _, err := WeightedSetCover(-1, nil, nil); err == nil {
		t.Error("want error for negative universe")
	}
	if _, err := WeightedSetCover(2, [][]int{{0}}, []float64{1, 2}); err == nil {
		t.Error("want error for cost-count mismatch")
	}
	if _, err := WeightedSetCover(2, [][]int{{0, 1}}, []float64{-1}); err == nil {
		t.Error("want error for negative cost")
	}
	if _, err := WeightedSetCover(2, [][]int{{9}}, []float64{1}); err == nil {
		t.Error("want error for out-of-universe element")
	}
	if _, err := WeightedSetCover(2, [][]int{{0}}, []float64{1}); err == nil {
		t.Error("want error for uncoverable universe")
	}
}

func TestExactMinCostCoverGuards(t *testing.T) {
	big := make([][]int, 21)
	bigCosts := make([]float64, 21)
	if _, err := ExactMinCostCover(1, big, bigCosts); err == nil {
		t.Error("want error for > 20 sets")
	}
	if _, err := ExactMinCostCover(2, [][]int{{0}}, []float64{1}); err == nil {
		t.Error("want error for uncoverable universe")
	}
	if _, err := ExactMinCostCover(1, [][]int{{0}}, []float64{1, 2}); err == nil {
		t.Error("want error for cost mismatch")
	}
}

// Property: greedy weighted cover is valid and within H(n) ~ (1+ln n)
// of the optimal cost on small random instances.
func TestWeightedSetCoverApproxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		nSets := 2 + rng.Intn(8)
		sets := make([][]int, nSets)
		costs := make([]float64, nSets)
		for i := range sets {
			sz := 1 + rng.Intn(n)
			for j := 0; j < sz; j++ {
				sets[i] = append(sets[i], rng.Intn(n))
			}
			costs[i] = 0.5 + rng.Float64()*4
		}
		for e := 0; e < n; e++ {
			idx := rng.Intn(nSets)
			sets[idx] = append(sets[idx], e)
		}
		pick, err := WeightedSetCover(n, sets, costs)
		if err != nil || !IsSetCover(n, sets, pick) {
			return false
		}
		opt, err := ExactMinCostCover(n, sets, costs)
		if err != nil {
			return false
		}
		bound := 1.0
		for x := float64(n); x > 1; x /= 2.718281828 {
			bound++
		}
		return CoverCost(costs, pick) <= bound*CoverCost(costs, opt)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
