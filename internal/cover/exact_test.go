package cover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypermine/internal/hypergraph"
)

func TestExactMinDominatorStar(t *testing.T) {
	h := starHypergraph(t, 5)
	dom, err := ExactMinDominator(h, allVertices(h))
	if err != nil {
		t.Fatal(err)
	}
	if len(dom) != 1 || dom[0] != 0 {
		t.Errorf("exact dominator = %v, want [0]", dom)
	}
}

func TestExactMinDominatorGuards(t *testing.T) {
	names := make([]string, 25)
	for i := range names {
		names[i] = "v" + string(rune('a'+i))
	}
	big, _ := hypergraph.New(names)
	all := make([]int, 25)
	for i := range all {
		all[i] = i
	}
	if _, err := ExactMinDominator(big, all); err == nil {
		t.Error("want error for > 20 vertices")
	}
	h := starHypergraph(t, 3)
	if _, err := ExactMinDominator(h, nil); err == nil {
		t.Error("want error for empty targets")
	}
}

// Property: on random small hypergraphs, both greedy algorithms (in
// complete mode) produce dominators that are valid and within a
// log-factor band of the exact optimum. We assert the loose but
// meaningful bound greedy <= opt * (1 + ln n) + 1.
func TestGreedyVsExactProperty(t *testing.T) {
	lnBound := func(n, opt int) int {
		// 1 + ln(n) multiplier, plus slack 1 for the self-cover seam.
		mult := 1.0
		for x := float64(n); x > 1; x /= 2.718281828 {
			mult++
		}
		return int(mult)*opt + 1
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		names := make([]string, n)
		for i := range names {
			names[i] = "v" + string(rune('0'+i))
		}
		h, _ := hypergraph.New(names)
		for tries := 0; tries < 5*n; tries++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			w := 0.2 + 0.8*rng.Float64()
			if rng.Intn(2) == 0 {
				_ = h.AddEdge([]int{a}, []int{c}, w)
			} else {
				_ = h.AddEdge([]int{a, b}, []int{c}, w)
			}
		}
		s := make([]int, n)
		for i := range s {
			s[i] = i
		}
		exact, err := ExactMinDominator(h, s)
		if err != nil {
			return false
		}
		if len(IsDominator(h, s, exact)) != 0 {
			return false
		}
		for _, run := range []func() (*Result, error){
			func() (*Result, error) { return DominatorGreedyDS(h, s, Options{Complete: true}) },
			func() (*Result, error) {
				return DominatorSetCover(h, s, Options{Complete: true, Enhancement1: true, Enhancement2: true})
			},
		} {
			res, err := run()
			if err != nil || res.CoverageFraction() != 1 {
				return false
			}
			if len(res.DomSet) < len(exact) {
				return false // greedy cannot beat the optimum
			}
			if len(res.DomSet) > lnBound(n, len(exact)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
