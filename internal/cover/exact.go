package cover

import (
	"errors"
	"fmt"

	"hypermine/internal/hypergraph"
)

// ExactMinDominator brute-forces a minimum-cardinality dominator (in
// the Definition 4.1 sense) for the target set s by enumerating vertex
// subsets in increasing size. Exponential — it exists to measure the
// greedy algorithms' approximation quality on small instances and is
// limited to 20 vertices.
func ExactMinDominator(h *hypergraph.H, s []int) ([]int, error) {
	if err := validateTargets(h, s); err != nil {
		return nil, err
	}
	n := h.NumVertices()
	if n > 20 {
		return nil, errors.New("cover: ExactMinDominator limited to 20 vertices")
	}
	inS := make([]bool, n)
	for _, v := range s {
		inS[v] = true
	}
	dominates := func(mask uint32) bool {
		inDom := func(v int) bool { return mask&(1<<uint(v)) != 0 }
		for _, u := range s {
			if inDom(u) {
				continue
			}
			ok := false
			for _, ei := range h.In(u) {
				e := h.Edge(int(ei))
				all := true
				for _, tv := range e.Tail {
					if !inDom(tv) {
						all = false
						break
					}
				}
				if all {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	// Enumerate by popcount-ordered masks: for each size, all masks.
	for size := 0; size <= n; size++ {
		var best uint32
		found := false
		var rec func(start int, mask uint32, left int)
		rec = func(start int, mask uint32, left int) {
			if found {
				return
			}
			if left == 0 {
				if dominates(mask) {
					best = mask
					found = true
				}
				return
			}
			for v := start; v <= n-left; v++ {
				rec(v+1, mask|1<<uint(v), left-1)
				if found {
					return
				}
			}
		}
		rec(0, 0, size)
		if found {
			var out []int
			for v := 0; v < n; v++ {
				if best&(1<<uint(v)) != 0 {
					out = append(out, v)
				}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("cover: no dominator exists for %d targets", len(s))
}
