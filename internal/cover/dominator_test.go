package cover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypermine/internal/hypergraph"
)

// chain builds a hypergraph where vertex 0 covers everything through
// directed edges 0 -> i.
func starHypergraph(t *testing.T, n int) *hypergraph.H {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = "v" + string(rune('a'+i))
	}
	h, err := hypergraph.New(names)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if err := h.AddEdge([]int{0}, []int{i}, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func allVertices(h *hypergraph.H) []int {
	s := make([]int, h.NumVertices())
	for i := range s {
		s[i] = i
	}
	return s
}

func TestDominatorGreedyDSStar(t *testing.T) {
	h := starHypergraph(t, 6)
	res, err := DominatorGreedyDS(h, allVertices(h), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DomSet) != 1 || res.DomSet[0] != 0 {
		t.Errorf("DomSet = %v, want [0]", res.DomSet)
	}
	if res.TargetCovered != 6 || res.CoverageFraction() != 1 {
		t.Errorf("covered %d (%v)", res.TargetCovered, res.CoverageFraction())
	}
	if bad := IsDominator(h, allVertices(h), res.DomSet); len(bad) != 0 {
		t.Errorf("definition 4.1 violated for %v", bad)
	}
}

func TestDominatorSetCoverStar(t *testing.T) {
	h := starHypergraph(t, 6)
	res, err := DominatorSetCover(h, allVertices(h), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DomSet) != 1 || res.DomSet[0] != 0 {
		t.Errorf("DomSet = %v, want [0]", res.DomSet)
	}
	if res.CoverageFraction() != 1 {
		t.Errorf("coverage = %v", res.CoverageFraction())
	}
}

func TestDominatorWithHyperedgePair(t *testing.T) {
	// {0,1} -> 2, {0,1} -> 3: dominator must contain both 0 and 1.
	h, _ := hypergraph.New([]string{"a", "b", "c", "d"})
	_ = h.AddEdge([]int{0, 1}, []int{2}, 0.8)
	_ = h.AddEdge([]int{0, 1}, []int{3}, 0.8)
	s := []int{0, 1, 2, 3}
	for name, run := range map[string]func() (*Result, error){
		"alg5": func() (*Result, error) { return DominatorGreedyDS(h, s, Options{Complete: true}) },
		"alg6": func() (*Result, error) { return DominatorSetCover(h, s, Options{Complete: true}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.CoverageFraction() != 1 {
			t.Errorf("%s: coverage %v", name, res.CoverageFraction())
		}
		if bad := IsDominator(h, s, res.DomSet); len(bad) != 0 {
			t.Errorf("%s: uncovered %v with dom %v", name, bad, res.DomSet)
		}
		has0, has1 := false, false
		for _, v := range res.DomSet {
			has0 = has0 || v == 0
			has1 = has1 || v == 1
		}
		if !has0 || !has1 {
			t.Errorf("%s: DomSet %v missing pair members", name, res.DomSet)
		}
	}
}

func TestDominatorPartialCoverage(t *testing.T) {
	// Vertex 3 has no incoming edges: incomplete mode must stop early
	// and report < 100% coverage; complete mode self-covers it.
	h, _ := hypergraph.New([]string{"a", "b", "c", "d"})
	_ = h.AddEdge([]int{0}, []int{1}, 0.9)
	_ = h.AddEdge([]int{0}, []int{2}, 0.9)
	s := allVertices(h)

	res5, err := DominatorGreedyDS(h, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res5.CoverageFraction() >= 1 {
		t.Errorf("alg5 incomplete coverage = %v, want < 1", res5.CoverageFraction())
	}
	res5c, _ := DominatorGreedyDS(h, s, Options{Complete: true})
	if res5c.CoverageFraction() != 1 {
		t.Errorf("alg5 complete coverage = %v, want 1", res5c.CoverageFraction())
	}

	res6, err := DominatorSetCover(h, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res6.CoverageFraction() >= 1 {
		t.Errorf("alg6 incomplete coverage = %v", res6.CoverageFraction())
	}
	res6c, _ := DominatorSetCover(h, s, Options{Complete: true})
	if res6c.CoverageFraction() != 1 {
		t.Errorf("alg6 complete coverage = %v", res6c.CoverageFraction())
	}
}

func TestDominatorValidation(t *testing.T) {
	h := starHypergraph(t, 3)
	if _, err := DominatorGreedyDS(h, nil, Options{}); err == nil {
		t.Error("want error for empty targets")
	}
	if _, err := DominatorGreedyDS(h, []int{0, 0}, Options{}); err == nil {
		t.Error("want error for duplicate targets")
	}
	if _, err := DominatorSetCover(h, []int{99}, Options{}); err == nil {
		t.Error("want error for out-of-range target")
	}
}

func TestEnhancement1PrefersSmallerAddition(t *testing.T) {
	// Two candidates with equal coverage: tail {0} and tail {2,3}.
	// With 0 pre-seeded via an edge pick... construct directly:
	// {0}->1, {2,3}->1. Both alpha: t*={0}: covers 0(self)+1 = 2;
	// t*={2,3}: covers 2,3(self)+1 = 3 -> bigger; so to create a tie
	// make targets = {1} only: t*={0} alpha=1, t*={2,3} alpha=1.
	// Enhancement 1 then prefers {0} (1 new member vs 2).
	h, _ := hypergraph.New([]string{"a", "b", "c", "d"})
	_ = h.AddEdge([]int{2, 3}, []int{1}, 0.9)
	_ = h.AddEdge([]int{0}, []int{1}, 0.9)
	res, err := DominatorSetCover(h, []int{1}, Options{Enhancement1: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DomSet) != 1 || res.DomSet[0] != 0 {
		t.Errorf("DomSet = %v, want [0]", res.DomSet)
	}
	// Without Enhancement 1 the lexicographically first candidate
	// ({0}) also happens to win here, so instead verify both cover.
	res2, _ := DominatorSetCover(h, []int{1}, Options{})
	if res2.CoverageFraction() != 1 {
		t.Error("baseline failed to cover")
	}
}

func TestEnhancement2DropsSubsets(t *testing.T) {
	// After picking {0,1}, candidate {0} (subset) should be dropped
	// with Enhancement 2 — same final coverage either way.
	h, _ := hypergraph.New([]string{"a", "b", "c", "d", "e"})
	_ = h.AddEdge([]int{0, 1}, []int{2}, 0.9)
	_ = h.AddEdge([]int{0, 1}, []int{3}, 0.9)
	_ = h.AddEdge([]int{0}, []int{4}, 0.9)
	s := allVertices(h)
	with, err := DominatorSetCover(h, s, Options{Enhancement2: true, Complete: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := DominatorSetCover(h, s, Options{Complete: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.CoverageFraction() != 1 || without.CoverageFraction() != 1 {
		t.Error("both variants must reach full coverage")
	}
}

// Property: on random hypergraphs both algorithms (complete mode)
// produce dominators under which every covered target satisfies
// Definition 4.1, and coverage is 100%.
func TestDominatorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		names := make([]string, n)
		for i := range names {
			names[i] = "v" + string(rune('0'+i))
		}
		h, _ := hypergraph.New(names)
		for tries := 0; tries < 4*n; tries++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			w := 0.1 + 0.9*rng.Float64()
			if rng.Intn(2) == 0 {
				_ = h.AddEdge([]int{a}, []int{c}, w)
			} else {
				_ = h.AddEdge([]int{a, b}, []int{c}, w)
			}
		}
		s := make([]int, n)
		for i := range s {
			s[i] = i
		}
		r5, err := DominatorGreedyDS(h, s, Options{Complete: true})
		if err != nil || r5.CoverageFraction() != 1 {
			return false
		}
		if len(IsDominator(h, s, r5.DomSet)) != 0 {
			return false
		}
		for _, opts := range []Options{
			{Complete: true},
			{Complete: true, Enhancement1: true},
			{Complete: true, Enhancement2: true},
			{Complete: true, Enhancement1: true, Enhancement2: true},
		} {
			r6, err := DominatorSetCover(h, s, opts)
			if err != nil || r6.CoverageFraction() != 1 {
				return false
			}
			if len(IsDominator(h, s, r6.DomSet)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
