package cover

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hypermine/internal/hypergraph"
)

func randomDomGraph(t *testing.T, rng *rand.Rand, nv, edges int) *hypergraph.H {
	t.Helper()
	names := make([]string, nv)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	h, err := hypergraph.New(names)
	if err != nil {
		t.Fatal(err)
	}
	for tries := 0; h.NumEdges() < edges && tries < edges*20; tries++ {
		w := rng.Float64() + 0.01
		switch rng.Intn(3) {
		case 0:
			_ = h.AddEdge([]int{rng.Intn(nv)}, []int{rng.Intn(nv)}, w)
		case 1:
			_ = h.AddEdge([]int{rng.Intn(nv), rng.Intn(nv)}, []int{rng.Intn(nv)}, w)
		case 2:
			_ = h.AddEdge([]int{rng.Intn(nv), rng.Intn(nv), rng.Intn(nv)}, []int{rng.Intn(nv)}, w)
		}
	}
	return h
}

// TestGreedyDSMemoDifferential checks that the dirty-tracked alpha
// memoization of DominatorGreedyDS is bit-identical to the always-
// rescan reference, on random hypergraphs, random target sets, and
// both Complete modes.
func TestGreedyDSMemoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		nv := 5 + rng.Intn(30)
		h := randomDomGraph(t, rng, nv, 10+rng.Intn(150))
		var s []int
		for v := 0; v < nv; v++ {
			if rng.Intn(3) > 0 {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			s = []int{0}
		}
		for _, complete := range []bool{false, true} {
			opt := Options{Complete: complete}
			memo, err1 := dominatorGreedyDS(context.Background(), h, s, opt, true)
			ref, err2 := dominatorGreedyDS(context.Background(), h, s, opt, false)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(memo.DomSet, ref.DomSet) {
				t.Fatalf("trial %d complete=%v: DomSet %v vs reference %v",
					trial, complete, memo.DomSet, ref.DomSet)
			}
			if !reflect.DeepEqual(memo.Covered, ref.Covered) ||
				memo.TargetCovered != ref.TargetCovered ||
				memo.Iterations != ref.Iterations {
				t.Fatalf("trial %d complete=%v: coverage state diverged", trial, complete)
			}
			// The exported entry point is the memoized one.
			exp, err := DominatorGreedyDS(h, s, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(exp.DomSet, ref.DomSet) {
				t.Fatalf("trial %d complete=%v: exported DomSet diverged", trial, complete)
			}
		}
	}
}
