package cli

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hypermine/internal/timeseries"
)

// fixture writes a small prices CSV and returns its path plus the
// directory for derived artifacts.
func fixture(t *testing.T) (prices string, dir string) {
	t.Helper()
	dir = t.TempDir()
	cfg := timeseries.DefaultGenConfig()
	cfg.NumSeries = 24
	cfg.NumDays = 300
	u, err := timeseries.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prices = filepath.Join(dir, "prices.csv")
	f, err := os.Create(prices)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.WritePricesCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return prices, dir
}

// run executes one subcommand, failing the test on error, and returns
// the captured output.
func run(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := New(&buf).Run(args); err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return buf.String()
}

func TestRunUsage(t *testing.T) {
	var buf bytes.Buffer
	app := New(&buf)
	if err := app.Run(nil); !errors.Is(err, ErrUsage) {
		t.Errorf("no args: %v", err)
	}
	if err := app.Run([]string{"help"}); !errors.Is(err, ErrUsage) {
		t.Errorf("help: %v", err)
	}
	if err := app.Run([]string{"bogus"}); !errors.Is(err, ErrUsage) {
		t.Errorf("unknown subcommand: %v", err)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	prices, dir := fixture(t)
	tablePath := filepath.Join(dir, "table.csv")
	testPath := filepath.Join(dir, "test.csv")
	graphPath := filepath.Join(dir, "hg.json")

	out := run(t, "discretize", "-in", prices, "-out", tablePath,
		"-out-test", testPath, "-split", "0.8", "-k", "3")
	if !strings.Contains(out, "wrote") {
		t.Errorf("discretize output: %q", out)
	}
	if _, err := os.Stat(testPath); err != nil {
		t.Fatalf("out-sample table missing: %v", err)
	}

	out = run(t, "build", "-in", tablePath, "-out", graphPath, "-config", "C1")
	if !strings.Contains(out, "directed edges") {
		t.Errorf("build output: %q", out)
	}

	out = run(t, "degrees", "-in", graphPath, "-top", "5")
	if !strings.Contains(out, "weighted-in") {
		t.Errorf("degrees output: %q", out)
	}

	out = run(t, "top-edges", "-in", graphPath, "-node", "XOM", "-top", "2")
	if !strings.Contains(out, "XOM") {
		t.Errorf("top-edges output: %q", out)
	}

	out = run(t, "similar", "-in", graphPath, "-a", "XOM", "-top", "3")
	if !strings.Contains(out, "most similar to XOM") {
		t.Errorf("similar output: %q", out)
	}
	out = run(t, "similar", "-in", graphPath, "-a", "XOM", "-b", "EMN")
	if !strings.Contains(out, "in-sim") || !strings.Contains(out, "distance") {
		t.Errorf("pairwise similar output: %q", out)
	}

	out = run(t, "cluster", "-in", graphPath, "-t", "4")
	if !strings.Contains(out, "cluster 0") {
		t.Errorf("cluster output: %q", out)
	}

	out = run(t, "dominator", "-in", graphPath, "-alg", "6", "-top", "0.4")
	if !strings.Contains(out, "dominator size") {
		t.Errorf("dominator output: %q", out)
	}
	out = run(t, "dominator", "-in", graphPath, "-alg", "5")
	if !strings.Contains(out, "covers") {
		t.Errorf("alg5 dominator output: %q", out)
	}

	out = run(t, "classify", "-train", tablePath, "-test", testPath, "-config", "C1")
	if !strings.Contains(out, "mean out-sample classification confidence") {
		t.Errorf("classify output: %q", out)
	}

	out = run(t, "rules", "-in", tablePath, "-node", "XOM", "-top", "3")
	if !strings.Contains(out, "=> {XOM=") && !strings.Contains(out, "no rules") {
		t.Errorf("rules output: %q", out)
	}

	out = run(t, "frequent", "-in", tablePath, "-min-support", "0.25", "-top", "3")
	if !strings.Contains(out, "frequent itemsets") {
		t.Errorf("frequent output: %q", out)
	}
}

func TestSubcommandErrors(t *testing.T) {
	prices, dir := fixture(t)
	tablePath := filepath.Join(dir, "table.csv")
	graphPath := filepath.Join(dir, "hg.json")
	run(t, "discretize", "-in", prices, "-out", tablePath)
	run(t, "build", "-in", tablePath, "-out", graphPath)

	app := New(new(bytes.Buffer))
	cases := [][]string{
		{"discretize", "-in", "/nonexistent.csv"},
		{"discretize", "-in", prices, "-out", tablePath, "-split", "1.5"},
		{"discretize", "-in", prices, "-out", tablePath, "-out-test", filepath.Join(dir, "x.csv")}, // -out-test without -split
		{"build", "-in", "/nonexistent.csv"},
		{"build", "-in", tablePath, "-config", "C9"},
		{"degrees", "-in", "/nonexistent.json"},
		{"top-edges", "-in", graphPath, "-node", "NOPE"},
		{"similar", "-in", graphPath, "-a", "NOPE"},
		{"similar", "-in", graphPath, "-a", "XOM", "-b", "NOPE"},
		{"dominator", "-in", graphPath, "-alg", "9"},
		{"classify", "-train", "/nonexistent.csv"},
		{"classify", "-train", tablePath, "-alg", "9"},
		{"rules", "-in", tablePath, "-node", "NOPE"},
	}
	for _, c := range cases {
		if err := app.Run(c); err == nil {
			t.Errorf("%v: want error", c)
		}
	}
}

func TestClassifyInSampleDefault(t *testing.T) {
	prices, dir := fixture(t)
	tablePath := filepath.Join(dir, "table.csv")
	run(t, "discretize", "-in", prices, "-out", tablePath)
	out := run(t, "classify", "-train", tablePath)
	if !strings.Contains(out, "in-sample") {
		t.Errorf("expected in-sample evaluation: %q", out)
	}
}

// TestModelSnapshotWorkflow covers the binary-codec surface: model
// save (mine -> snapshot), model load (verify + JSON conversion), and
// the -model fast path of similar/dominator/classify, which must agree
// with the mine-every-run results.
func TestModelSnapshotWorkflow(t *testing.T) {
	prices, dir := fixture(t)
	tablePath := filepath.Join(dir, "table.csv")
	snapPath := filepath.Join(dir, "model.snap")
	slimPath := filepath.Join(dir, "slim.snap")
	jsonPath := filepath.Join(dir, "model.json")
	run(t, "discretize", "-in", prices, "-out", tablePath, "-k", "3")

	out := run(t, "model", "save", "-in", tablePath, "-out", snapPath, "-config", "C1")
	if !strings.Contains(out, "saved model") {
		t.Errorf("model save output: %q", out)
	}
	out = run(t, "model", "load", "-in", snapPath, "-json", jsonPath)
	if !strings.Contains(out, "directed edges") || !strings.Contains(out, "wrote JSON model") {
		t.Errorf("model load output: %q", out)
	}

	// Row-less snapshots are smaller and marked.
	run(t, "model", "save", "-in", tablePath, "-out", slimPath, "-config", "C1", "-omit-rows")
	full, _ := os.Stat(snapPath)
	slim, _ := os.Stat(slimPath)
	if slim.Size() >= full.Size() {
		t.Errorf("row-less snapshot (%d) not smaller than full (%d)", slim.Size(), full.Size())
	}
	out = run(t, "model", "load", "-in", slimPath)
	if !strings.Contains(out, "rows omitted") {
		t.Errorf("slim model load output: %q", out)
	}

	// -model answers must agree with the re-mining path.
	mined := run(t, "classify", "-train", tablePath, "-config", "C1")
	snapped := run(t, "classify", "-model", snapPath)
	if mined != snapped {
		t.Errorf("classify -model drifted:\nmined:   %q\nsnapshot: %q", mined, snapped)
	}
	simOut := run(t, "similar", "-model", snapPath, "-a", "XOM", "-top", "3")
	if !strings.Contains(simOut, "most similar to XOM") {
		t.Errorf("similar -model output: %q", simOut)
	}
	domOut := run(t, "dominator", "-model", snapPath)
	if !strings.Contains(domOut, "dominator size") {
		t.Errorf("dominator -model output: %q", domOut)
	}
	// Graph queries work on row-less snapshots too; classify fails
	// with the rows-omitted error.
	run(t, "dominator", "-model", slimPath)
	app := New(new(bytes.Buffer))
	if err := app.Run([]string{"classify", "-model", slimPath}); err == nil || !strings.Contains(err.Error(), "without training rows") {
		t.Errorf("classify on row-less snapshot: %v", err)
	}

	// Error surfaces.
	for _, c := range [][]string{
		{"model"},
		{"model", "bogus"},
		{"model", "save", "-in", "/nonexistent.csv"},
		{"model", "load", "-in", "/nonexistent.snap"},
		{"model", "load", "-in", tablePath}, // not a snapshot
		{"similar", "-model", "/nonexistent.snap", "-a", "XOM"},
	} {
		if err := app.Run(c); err == nil {
			t.Errorf("%v: want error", c)
		}
	}
}
