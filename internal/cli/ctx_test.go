package cli

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunContextCancel proves the long-running subcommands abort with
// context.Canceled under a canceled context — the contract behind
// cmd/hypermine's SIGINT handling — and that RunContext(Background)
// behaves exactly like Run.
func TestRunContextCancel(t *testing.T) {
	prices, dir := fixture(t)
	tablePath := filepath.Join(dir, "table.csv")
	run(t, "discretize", "-in", prices, "-out", tablePath, "-k", "3")

	tb, err := loadTable(tablePath, 0)
	if err != nil {
		t.Fatal(err)
	}
	head := tb.AttrName(0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, args := range [][]string{
		{"build", "-in", tablePath, "-out", filepath.Join(dir, "hg.json")},
		{"model", "save", "-in", tablePath, "-out", filepath.Join(dir, "m.snap")},
		{"rules", "-in", tablePath, "-node", head},
		{"frequent", "-in", tablePath},
		{"classify", "-train", tablePath},
	} {
		var buf bytes.Buffer
		err := New(&buf).RunContext(ctx, args)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v under canceled ctx: want context.Canceled, got %v", args, err)
		}
	}

	// Uncanceled RunContext matches Run byte for byte (same-named
	// outputs in sibling dirs so the printed paths agree modulo dir).
	dirA, dirB := t.TempDir(), t.TempDir()
	var a, b bytes.Buffer
	if err := New(&a).Run([]string{"build", "-in", tablePath, "-out", filepath.Join(dirA, "hg.json")}); err != nil {
		t.Fatal(err)
	}
	if err := New(&b).RunContext(context.Background(), []string{"build", "-in", tablePath, "-out", filepath.Join(dirB, "hg.json")}); err != nil {
		t.Fatal(err)
	}
	outA := strings.ReplaceAll(a.String(), dirA, "DIR")
	outB := strings.ReplaceAll(b.String(), dirB, "DIR")
	if outA != outB {
		t.Fatalf("RunContext(Background) output differs:\n%s\nvs\n%s", outB, outA)
	}
}
