// Package cli implements the hypermine command-line tool: every
// subcommand is a method on App writing to an injected io.Writer, so
// the whole surface is testable without spawning processes.
// cmd/hypermine is a thin wrapper around Run.
//
// Subcommands:
//
//	discretize turn a prices CSV into a discretized table (§5.1.1)
//	build      mine an association hypergraph from a discretized CSV table
//	model      save/load/append binary model snapshots (the hypermined serving format)
//	rules      mine top mva-type rules for a head attribute
//	frequent   classical Apriori baseline
//	degrees    print weighted in-/out-degrees of a hypergraph
//	top-edges  print the strongest incoming edges of a vertex
//	similar    print association-based similarity between two vertices
//	cluster    t-cluster the vertices of a hypergraph
//	dominator  compute a leading indicator (Algorithm 5 or 6)
//	classify   mine + dominate + classify a table end to end
//
// similar, dominator, and classify accept -model model.snap to reuse a
// mined model snapshot instead of re-mining (or re-loading a
// hypergraph JSON) on every invocation.
//
// The query subcommands (similar, dominator, classify, rules) run
// through the same prepared-model engine (internal/engine) the
// serving daemon uses: one Engine per invocation, so a single CLI run
// that needs an artifact twice builds it once, and CLI answers are
// the serving answers by construction.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hypermine/internal/apriori"
	"hypermine/internal/classify"
	"hypermine/internal/cluster"
	"hypermine/internal/core"
	"hypermine/internal/delta"
	"hypermine/internal/engine"
	"hypermine/internal/hypergraph"
	"hypermine/internal/similarity"
	"hypermine/internal/table"
	"hypermine/internal/timeseries"
)

// App is the CLI with its output sink.
type App struct {
	out io.Writer
}

// New returns an App writing to out.
func New(out io.Writer) *App { return &App{out: out} }

// ErrUsage is returned when the arguments name no valid subcommand.
var ErrUsage = errors.New(`usage: hypermine <discretize|build|model|rules|frequent|degrees|top-edges|similar|cluster|dominator|classify> [flags]
run 'hypermine <subcommand> -h' for flags`)

// Run dispatches one subcommand; args excludes the program name. It
// is RunContext with a background context.
func (a *App) Run(args []string) error {
	return a.RunContext(context.Background(), args)
}

// RunContext dispatches one subcommand under a context: every
// subcommand that loads or computes anything non-trivial aborts
// promptly with ctx.Err() when it is canceled — cmd/hypermine wires
// SIGINT/SIGTERM into it, so ^C stops mining (or a similarity-graph
// build, or a snapshot verification) instead of leaving it to run to
// completion.
func (a *App) RunContext(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return ErrUsage
	}
	switch args[0] {
	case "discretize":
		return a.cmdDiscretize(args[1:])
	case "build":
		return a.cmdBuild(ctx, args[1:])
	case "model":
		return a.cmdModel(ctx, args[1:])
	case "rules":
		return a.cmdRules(ctx, args[1:])
	case "frequent":
		return a.cmdFrequent(ctx, args[1:])
	case "degrees":
		return a.cmdDegrees(ctx, args[1:])
	case "top-edges":
		return a.cmdTopEdges(ctx, args[1:])
	case "similar":
		return a.cmdSimilar(ctx, args[1:])
	case "cluster":
		return a.cmdCluster(ctx, args[1:])
	case "dominator":
		return a.cmdDominator(ctx, args[1:])
	case "classify":
		return a.cmdClassify(ctx, args[1:])
	case "-h", "--help", "help":
		return ErrUsage
	}
	return fmt.Errorf("unknown subcommand %q\n%w", args[0], ErrUsage)
}

func (a *App) cmdDiscretize(args []string) error {
	fs := flag.NewFlagSet("discretize", flag.ExitOnError)
	in := fs.String("in", "prices.csv", "prices CSV (ticker,sector,subsector,d0,...)")
	out := fs.String("out", "table.csv", "output discretized table CSV")
	outTest := fs.String("out-test", "", "out-sample table CSV (requires -split)")
	k := fs.Int("k", 3, "value-set cardinality")
	split := fs.Float64("split", 0, "in-sample fraction of days (0 = all days)")
	_ = fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	u, err := timeseries.ReadPricesCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	trainU := u
	var testU *timeseries.Universe
	if *split > 0 {
		if *split >= 1 {
			return fmt.Errorf("split %v outside (0,1)", *split)
		}
		cut := int(float64(u.Days()) * *split)
		if trainU, err = u.Window(0, cut); err != nil {
			return err
		}
		if testU, err = u.Window(cut, u.Days()); err != nil {
			return err
		}
	}
	tb, disc, err := trainU.BuildTable(*k)
	if err != nil {
		return err
	}
	if err := writeTableCSV(tb, *out); err != nil {
		return err
	}
	fmt.Fprintf(a.out, "wrote %dx%d table (k=%d) to %s\n", tb.NumRows(), tb.NumAttrs(), *k, *out)
	if *outTest != "" {
		if testU == nil {
			return fmt.Errorf("-out-test requires -split")
		}
		testTb, err := disc.Apply(testU)
		if err != nil {
			return err
		}
		if err := writeTableCSV(testTb, *outTest); err != nil {
			return err
		}
		fmt.Fprintf(a.out, "wrote %dx%d out-sample table to %s\n", testTb.NumRows(), testTb.NumAttrs(), *outTest)
	}
	return nil
}

func writeTableCSV(tb *table.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tb.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readFile opens path and decodes it with read, closing the file
// either way — the one loading helper behind every input format
// (CSV tables, hypergraph JSON, binary snapshots).
func readFile[T any](path string, read func(io.Reader) (T, error)) (T, error) {
	f, err := os.Open(path)
	if err != nil {
		var zero T
		return zero, err
	}
	defer f.Close()
	return read(f)
}

func loadTable(path string, k int) (*table.Table, error) {
	return readFile(path, func(r io.Reader) (*table.Table, error) { return table.ReadCSV(r, k) })
}

func loadGraph(path string) (*hypergraph.H, error) {
	return readFile(path, hypergraph.ReadJSON)
}

// loadSnapshot reads a binary model snapshot from disk.
func loadSnapshot(path string) (*core.Model, error) {
	return readFile(path, core.ReadSnapshot)
}

// loadEngine resolves the query engine for graph-query subcommands:
// over a binary model snapshot when modelPath is set (no re-mining,
// shared with the serving daemon), otherwise over a graph-only model
// wrapped around a hypergraph JSON (similarity and dominator queries
// work; rules/classification report unavailability).
func loadEngine(graphPath, modelPath string) (*engine.Engine, error) {
	var m *core.Model
	if modelPath == "" {
		h, err := loadGraph(graphPath)
		if err != nil {
			return nil, err
		}
		m = &core.Model{H: h, RowsOmitted: true}
	} else {
		var err error
		if m, err = loadSnapshot(modelPath); err != nil {
			return nil, err
		}
	}
	return engine.New(m, engine.Options{})
}

// cmdModel handles the binary snapshot codec: `model save` mines a
// table (or converts a JSON model) into a snapshot, `model load`
// verifies a snapshot and prints its summary (optionally converting
// back to JSON), `model append` delta-appends CSV rows to a snapshot
// through internal/delta — the offline twin of the daemon's :append
// endpoint, bit-identical to re-mining the concatenated table. The
// format is shared with the hypermined daemon.
func (a *App) cmdModel(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return errors.New(`usage: hypermine model <save|load|append> [flags]`)
	}
	switch args[0] {
	case "save":
		return a.cmdModelSave(ctx, args[1:])
	case "load":
		return a.cmdModelLoad(ctx, args[1:])
	case "append":
		return a.cmdModelAppend(ctx, args[1:])
	}
	return fmt.Errorf("unknown model subcommand %q (want save, load, or append)", args[0])
}

func (a *App) cmdModelSave(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("model save", flag.ExitOnError)
	in := fs.String("in", "table.csv", "discretized table CSV to mine")
	fromJSON := fs.String("from-json", "", "convert an existing JSON model instead of mining")
	out := fs.String("out", "model.snap", "output snapshot path")
	omitRows := fs.Bool("omit-rows", false, "drop the training table (graph queries only)")
	preset, g1, g2 := configFlag(fs)
	_ = fs.Parse(args)

	var model *core.Model
	if *fromJSON != "" {
		f, err := os.Open(*fromJSON)
		if err != nil {
			return err
		}
		model, err = core.ReadModelJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		tb, err := loadTable(*in, 0)
		if err != nil {
			return err
		}
		cfg, err := resolveConfig(*preset, *g1, *g2, tb.K())
		if err != nil {
			return err
		}
		cfg.K = tb.K()
		if model, err = core.BuildContext(ctx, tb, cfg); err != nil {
			return err
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := core.WriteSnapshot(f, model, core.SaveOptions{OmitRows: *omitRows}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rows := model.Table.NumRows()
	if *omitRows {
		rows = 0
	}
	size := int64(0)
	if st, err := os.Stat(*out); err == nil {
		size = st.Size()
	}
	fmt.Fprintf(a.out, "saved model (%d attrs, %d edges, %d rows) to %s (%d bytes)\n",
		model.Table.NumAttrs(), model.H.NumEdges(), rows, *out, size)
	return nil
}

func (a *App) cmdModelLoad(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("model load", flag.ExitOnError)
	in := fs.String("in", "model.snap", "snapshot path")
	jsonOut := fs.String("json", "", "also write the model as JSON to this path")
	_ = fs.Parse(args)

	model, err := loadSnapshot(*in)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st := model.H.EdgeStats()
	rowsNote := fmt.Sprintf("%d rows", model.Table.NumRows())
	if model.RowsOmitted {
		rowsNote = "rows omitted (graph queries only)"
	}
	fmt.Fprintf(a.out, "model: %d attrs (k=%d), %s\n", model.Table.NumAttrs(), model.Table.K(), rowsNote)
	fmt.Fprintf(a.out, "graph: %d directed edges (mean ACV %.3f), %d 2-to-1 hyperedges (mean ACV %.3f), %d larger\n",
		st.DirectedEdges, st.MeanACVEdges, st.TwoToOne, st.MeanACVTwoToOne, st.Other)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := model.WriteJSONWith(f, core.SaveOptions{OmitRows: model.RowsOmitted}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(a.out, "wrote JSON model to %s\n", *jsonOut)
	}
	return nil
}

// cmdModelAppend delta-appends rows to a snapshot offline: load the
// model, extend its live dataset (internal/delta, count-maintained, so
// the result is bit-identical to re-mining the concatenated table),
// and write the updated snapshot back out.
func (a *App) cmdModelAppend(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("model append", flag.ExitOnError)
	in := fs.String("in", "model.snap", "snapshot path")
	rowsPath := fs.String("rows", "rows.csv", "CSV of rows to append (header must match the model's attributes)")
	out := fs.String("out", "", "output snapshot path (default: overwrite -in)")
	_ = fs.Parse(args)
	if *out == "" {
		*out = *in
	}

	model, err := loadSnapshot(*in)
	if err != nil {
		return err
	}
	tb, err := loadTable(*rowsPath, model.Table.K())
	if err != nil {
		return err
	}
	attrs := model.Table.Attrs()
	got := tb.Attrs()
	if len(got) != len(attrs) {
		return fmt.Errorf("rows CSV has %d columns, model has %d attributes", len(got), len(attrs))
	}
	for j := range got {
		if got[j] != attrs[j] {
			return fmt.Errorf("rows CSV column %d is %q, model attribute is %q", j, got[j], attrs[j])
		}
	}
	rows := make([][]table.Value, tb.NumRows())
	for i := range rows {
		rows[i] = tb.Row(i, nil)
	}

	ds, err := delta.NewContext(ctx, model, delta.Options{})
	if err != nil {
		return err
	}
	next, ch, err := ds.AppendRowsContext(ctx, rows)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := core.WriteSnapshot(f, next, core.SaveOptions{}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(a.out, "appended %d rows: %d total, %d edges (%d -> %d, %d shared) -> %s\n",
		ch.Appended, next.Table.NumRows(), next.H.NumEdges(),
		ch.EdgesBefore, ch.EdgesAfter, ch.SharedEdges, *out)
	return nil
}

func configFlag(fs *flag.FlagSet) (preset *string, g1, g2 *float64) {
	preset = fs.String("config", "C1", "C1, C2, or 'custom'")
	g1 = fs.Float64("gamma1", 1.15, "gamma for directed edges (custom config)")
	g2 = fs.Float64("gamma2", 1.05, "gamma for 2-to-1 hyperedges (custom config)")
	return
}

func resolveConfig(preset string, g1, g2 float64, k int) (core.Config, error) {
	switch preset {
	case "C1":
		return core.C1(), nil
	case "C2":
		return core.C2(), nil
	case "custom":
		return core.Config{K: k, GammaEdge: g1, GammaPair: g2}, nil
	}
	return core.Config{}, fmt.Errorf("unknown config %q", preset)
}

func (a *App) cmdBuild(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "table.csv", "discretized table CSV")
	out := fs.String("out", "hypergraph.json", "output hypergraph JSON")
	preset, g1, g2 := configFlag(fs)
	_ = fs.Parse(args)
	tb, err := loadTable(*in, 0)
	if err != nil {
		return err
	}
	cfg, err := resolveConfig(*preset, *g1, *g2, tb.K())
	if err != nil {
		return err
	}
	cfg.K = tb.K()
	model, err := core.BuildContext(ctx, tb, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := model.H.WriteJSON(f); err != nil {
		return err
	}
	st := model.H.EdgeStats()
	fmt.Fprintf(a.out, "mined %d directed edges (mean ACV %.3f) and %d 2-to-1 hyperedges (mean ACV %.3f) -> %s\n",
		st.DirectedEdges, st.MeanACVEdges, st.TwoToOne, st.MeanACVTwoToOne, *out)
	return nil
}

func (a *App) cmdDegrees(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("degrees", flag.ExitOnError)
	in := fs.String("in", "hypergraph.json", "hypergraph JSON")
	top := fs.Int("top", 25, "show the top-N by weighted in-degree")
	_ = fs.Parse(args)
	h, err := loadGraph(*in)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	type row struct {
		name    string
		in, out float64
	}
	rows := make([]row, h.NumVertices())
	for v := range rows {
		rows[v] = row{h.VertexName(v), h.WeightedInDegree(v), h.WeightedOutDegree(v)}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].in > rows[j].in })
	if *top < len(rows) {
		rows = rows[:*top]
	}
	fmt.Fprintln(a.out, "vertex  weighted-in  weighted-out")
	for _, r := range rows {
		fmt.Fprintf(a.out, "%-8s %10.3f %12.3f\n", r.name, r.in, r.out)
	}
	return nil
}

func (a *App) cmdTopEdges(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("top-edges", flag.ExitOnError)
	in := fs.String("in", "hypergraph.json", "hypergraph JSON")
	node := fs.String("node", "", "vertex name")
	top := fs.Int("top", 5, "edges per class")
	_ = fs.Parse(args)
	h, err := loadGraph(*in)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	v := h.Vertex(*node)
	if v < 0 {
		return fmt.Errorf("unknown vertex %q", *node)
	}
	var edges, hypers []hypergraph.Edge
	for _, ei := range h.In(v) {
		e := h.Edge(int(ei))
		if e.IsDirectedEdge() {
			edges = append(edges, e)
		} else if e.IsTwoToOne() {
			hypers = append(hypers, e)
		}
	}
	byW := func(s []hypergraph.Edge) {
		sort.Slice(s, func(i, j int) bool { return s[i].Weight > s[j].Weight })
	}
	byW(edges)
	byW(hypers)
	print := func(label string, s []hypergraph.Edge) {
		fmt.Fprintf(a.out, "%s into %s:\n", label, *node)
		for i, e := range s {
			if i == *top {
				break
			}
			names := ""
			for j, t := range e.Tail {
				if j > 0 {
					names += ","
				}
				names += h.VertexName(t)
			}
			fmt.Fprintf(a.out, "  %s -> %s  ACV %.3f\n", names, *node, e.Weight)
		}
	}
	print("top directed edges", edges)
	print("top 2-to-1 hyperedges", hypers)
	return nil
}

func (a *App) cmdSimilar(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("similar", flag.ExitOnError)
	in := fs.String("in", "hypergraph.json", "hypergraph JSON")
	modelIn := fs.String("model", "", "binary model snapshot (overrides -in)")
	nodeA := fs.String("a", "", "first vertex")
	nodeB := fs.String("b", "", "second vertex ('' = rank all against -a)")
	top := fs.Int("top", 10, "ranking size when -b is empty")
	_ = fs.Parse(args)
	eng, err := loadEngine(*in, *modelIn)
	if err != nil {
		return err
	}
	resp, err := eng.Do(ctx, &engine.Request{Similar: &engine.SimilarRequest{A: *nodeA, B: *nodeB, Top: *top}})
	if err != nil {
		return err
	}
	sim := resp.Similar
	if *nodeB != "" {
		fmt.Fprintf(a.out, "in-sim(%s,%s)  = %.4f\n", *nodeA, *nodeB, *sim.InSim)
		fmt.Fprintf(a.out, "out-sim(%s,%s) = %.4f\n", *nodeA, *nodeB, *sim.OutSim)
		fmt.Fprintf(a.out, "distance       = %.4f\n", *sim.Distance)
		return nil
	}
	fmt.Fprintf(a.out, "most similar to %s (smallest distance):\n", *nodeA)
	for _, n := range sim.Neighbors {
		fmt.Fprintf(a.out, "  %-8s d=%.4f\n", n.Name, n.Distance)
	}
	return nil
}

func (a *App) cmdCluster(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	in := fs.String("in", "hypergraph.json", "hypergraph JSON")
	t := fs.Int("t", 8, "number of clusters")
	_ = fs.Parse(args)
	h, err := loadGraph(*in)
	if err != nil {
		return err
	}
	n := h.NumVertices()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	g, err := similarity.BuildGraphContext(ctx, h, all, similarity.GraphOptions{})
	if err != nil {
		return err
	}
	cl, err := cluster.TClustering(n, *t, g.Dist, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "t=%d  diameter=%.3f  mean-diameter=%.3f  mean-distance=%.3f\n",
		*t, cl.Diameter(g.Dist), cl.MeanDiameter(g.Dist), g.MeanDistance())
	for ci := range cl.Centers {
		members := cl.Members(ci)
		fmt.Fprintf(a.out, "cluster %d @%s (%d members):", ci, h.VertexName(cl.Centers[ci]), len(members))
		for _, p := range members {
			fmt.Fprintf(a.out, " %s", h.VertexName(p))
		}
		fmt.Fprintln(a.out)
	}
	return nil
}

func (a *App) cmdDominator(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("dominator", flag.ExitOnError)
	in := fs.String("in", "hypergraph.json", "hypergraph JSON")
	modelIn := fs.String("model", "", "binary model snapshot (overrides -in)")
	alg := fs.Int("alg", 6, "5 (dominating-set adaptation) or 6 (set-cover adaptation)")
	frac := fs.Float64("top", 1.0, "keep only the top fraction of edges by ACV first")
	complete := fs.Bool("complete", false, "force 100% coverage via self-covering")
	_ = fs.Parse(args)
	eng, err := loadEngine(*in, *modelIn)
	if err != nil {
		return err
	}
	if *frac < 1 {
		// Edge filtering changes the graph itself, so it happens before
		// the engine wraps it.
		h := eng.Model().H
		th, err := h.TopFractionThreshold(*frac)
		if err != nil {
			return err
		}
		if eng, err = engine.New(&core.Model{H: h.FilterByWeight(th), RowsOmitted: true}, engine.Options{}); err != nil {
			return err
		}
	}
	resp, err := eng.Do(ctx, &engine.Request{Dominators: &engine.DominatorsRequest{Alg: *alg, Complete: *complete}})
	if err != nil {
		return err
	}
	dom := resp.Dominators
	fmt.Fprintf(a.out, "dominator size %d, covers %.0f%% of %d vertices\n",
		len(dom.Dominator), 100*dom.Coverage, dom.TargetSize)
	fmt.Fprint(a.out, "members:")
	for _, name := range dom.Dominator {
		fmt.Fprintf(a.out, " %s", name)
	}
	fmt.Fprintln(a.out)
	return nil
}

func (a *App) cmdClassify(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	trainPath := fs.String("train", "table.csv", "training table CSV")
	modelIn := fs.String("model", "", "binary model snapshot (skips mining; overrides -train)")
	testPath := fs.String("test", "", "test table CSV ('' = evaluate in-sample)")
	preset, g1, g2 := configFlag(fs)
	alg := fs.Int("alg", 6, "dominator algorithm (5 or 6)")
	_ = fs.Parse(args)
	var model *core.Model
	if *modelIn != "" {
		var err error
		if model, err = loadSnapshot(*modelIn); err != nil {
			return err
		}
		if err := model.RequireRows(); err != nil {
			return fmt.Errorf("classify needs association tables: %w", err)
		}
	} else {
		train, err := loadTable(*trainPath, 0)
		if err != nil {
			return err
		}
		cfg, err := resolveConfig(*preset, *g1, *g2, train.K())
		if err != nil {
			return err
		}
		cfg.K = train.K()
		if model, err = core.BuildContext(ctx, train, cfg); err != nil {
			return err
		}
	}
	train := model.Table
	eng, err := engine.New(model, engine.Options{})
	if err != nil {
		return err
	}
	spec := engine.DomSpec{Algorithm: *alg, Enhancement1: true, Enhancement2: true}
	res, err := eng.Dominator(ctx, spec)
	if err != nil {
		return err
	}
	targets, err := eng.TargetsFor(ctx, spec)
	if err != nil {
		return err
	}
	if len(targets) == 0 {
		return fmt.Errorf("dominator covers no targets; nothing to classify")
	}
	abc, err := eng.ClassifierFor(ctx, spec)
	if err != nil {
		return err
	}
	eval := train
	label := "in-sample"
	if *testPath != "" {
		eval, err = loadTable(*testPath, train.K())
		if err != nil {
			return err
		}
		label = "out-sample"
	}
	conf, err := abc.Evaluate(eval)
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "dominator size %d covering %.0f%%; %d targets\n",
		len(res.DomSet), 100*res.CoverageFraction(), len(targets))
	fmt.Fprintf(a.out, "mean %s classification confidence: %.3f\n", label, classify.MeanConfidence(conf))
	return nil
}

// cmdRules mines and prints the top mva-type association rules for a
// head attribute.
func (a *App) cmdRules(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rules", flag.ExitOnError)
	in := fs.String("in", "table.csv", "discretized table CSV")
	node := fs.String("node", "", "head attribute name")
	top := fs.Int("top", 10, "number of rules")
	minSupp := fs.Float64("min-support", 0.05, "minimum rule support")
	minConf := fs.Float64("min-confidence", 0.4, "minimum rule confidence")
	preset, g1, g2 := configFlag(fs)
	_ = fs.Parse(args)
	tb, err := loadTable(*in, 0)
	if err != nil {
		return err
	}
	head := tb.AttrIndex(*node)
	if head < 0 {
		return fmt.Errorf("unknown attribute %q", *node)
	}
	cfg, err := resolveConfig(*preset, *g1, *g2, tb.K())
	if err != nil {
		return err
	}
	cfg.K = tb.K()
	model, err := core.BuildContext(ctx, tb, cfg)
	if err != nil {
		return err
	}
	eng, err := engine.New(model, engine.Options{})
	if err != nil {
		return err
	}
	// The v1 flag contract: -top <= 0 means unlimited (MineOptions'
	// zero value), while RulesRequest maps Top 0 to the serving
	// default of 10 — so translate explicitly.
	reqTop := *top
	if reqTop <= 0 {
		reqTop = int(^uint(0) >> 1)
	}
	resp, err := eng.Do(ctx, &engine.Request{Rules: &engine.RulesRequest{
		Head:          *node,
		Top:           reqTop,
		MinSupport:    *minSupp,
		MinConfidence: *minConf,
	}})
	if err != nil {
		return err
	}
	rules := resp.Rules.Rules
	if len(rules) == 0 {
		fmt.Fprintln(a.out, "no rules passed the thresholds")
		return nil
	}
	fmt.Fprintf(a.out, "top %d rules for %s (supp >= %.2f, conf >= %.2f):\n", len(rules), *node, *minSupp, *minConf)
	for _, r := range rules {
		fmt.Fprintf(a.out, "  %-40s supp=%.3f conf=%.3f lift=%.2f\n",
			r.Rule, r.Support, r.Confidence, r.Lift)
	}
	return nil
}

// cmdFrequent runs the classical Apriori baseline on a table.
func (a *App) cmdFrequent(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("frequent", flag.ExitOnError)
	in := fs.String("in", "table.csv", "discretized table CSV")
	minSupp := fs.Float64("min-support", 0.3, "minimum itemset support")
	minConf := fs.Float64("min-confidence", 0.6, "minimum rule confidence")
	maxLen := fs.Int("max-len", 3, "maximum itemset size (0 = unlimited)")
	top := fs.Int("top", 10, "number of rules to print")
	_ = fs.Parse(args)
	tb, err := loadTable(*in, 0)
	if err != nil {
		return err
	}
	freq, err := apriori.FrequentItemsetsContext(ctx, tb, apriori.Options{MinSupport: *minSupp, MaxLen: *maxLen})
	if err != nil {
		return err
	}
	rules, err := apriori.GenerateRules(freq, *minConf)
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "%d frequent itemsets, %d rules (supp >= %.2f, conf >= %.2f)\n",
		len(freq), len(rules), *minSupp, *minConf)
	for i, r := range rules {
		if i == *top {
			break
		}
		fmt.Fprintf(a.out, "  %-40s supp=%.3f conf=%.3f lift=%.2f\n",
			core.FormatRule(tb, core.Rule{X: r.X, Y: r.Y}), r.Support, r.Confidence, r.Lift)
	}
	return nil
}
