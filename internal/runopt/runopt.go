// Package runopt holds the shared vocabulary of the context-aware v2
// API: the named pipeline phases, the progress-callback type, and two
// small helpers — Checker (bounded-stride context polling) and Meter
// (concurrency-safe progress reporting) — used by every long-running
// operation in internal/core, cover, similarity, apriori, classify,
// and registry. It exists so those packages agree on one progress
// contract without importing each other.
package runopt

import (
	"context"
	"sync/atomic"
)

// Phase names one stage of the mining/query pipeline, as reported to
// progress callbacks. The work unit behind (done, total) is
// phase-specific and documented on each constant.
type Phase string

const (
	// PhaseEdges is Build stage 1 (directed edges); unit = one head
	// attribute fully scored against all tails.
	PhaseEdges Phase = "edges"
	// PhasePairs is Build stage 2 (2-to-1 hyperedges); unit = one tail
	// pair scored against all heads.
	PhasePairs Phase = "pairs"
	// PhaseTriples is Build stage 3 (3-to-1 hyperedges); unit = one
	// candidate tail-triple group.
	PhaseTriples Phase = "triples"
	// PhaseSimilarity is similarity-graph construction; unit = one
	// matrix row stripe.
	PhaseSimilarity Phase = "similarity"
	// PhaseDominator is greedy dominator mining; done counts covered
	// target vertices, total is |S|.
	PhaseDominator Phase = "dominator"
	// PhaseApriori is level-wise frequent-itemset mining; done is the
	// completed itemset size, total is Options.MaxLen (0 = unbounded).
	PhaseApriori Phase = "apriori"
	// PhaseRules is model rule mining; unit = one hyperedge into the
	// head attribute.
	PhaseRules Phase = "rules"
	// PhaseFolds is cross-validation; unit = one completed fold.
	PhaseFolds Phase = "folds"
	// PhaseIndex is TID-bitset index construction (an engine lazy
	// artifact; no incremental progress units).
	PhaseIndex Phase = "index"
	// PhaseClassifier is prepared-classifier construction (association
	// tables + predictor pool; no incremental progress units).
	PhaseClassifier Phase = "classifier"
)

// ProgressFunc observes completed work units of one phase. done is
// cumulative; total is 0 when the amount of work is not known up
// front. During parallel stages the callback may be invoked
// concurrently from several worker goroutines, so implementations must
// be safe for concurrent use (or the caller must run with one worker).
type ProgressFunc func(phase Phase, done, total int)

// Hooks carries the runtime-only observation knobs of a context-aware
// call: the progress callback and the cancellation-poll stride. It is
// attached to v1 option structs (core.Config, cover.Options,
// apriori.Options, core.MineOptions) as a *pointer* field so those
// structs stay comparable with == and JSON-serializable exactly as
// before. A nil *Hooks means "no progress, default stride".
type Hooks struct {
	// Progress observes completed work units; see ProgressFunc.
	Progress ProgressFunc
	// CheckEvery bounds work units between context polls; 0 means the
	// operation's documented default stride.
	CheckEvery int
}

// Func returns the progress callback, nil-safe.
func (h *Hooks) Func() ProgressFunc {
	if h == nil {
		return nil
	}
	return h.Progress
}

// Stride returns the configured CheckEvery, nil-safe (0 when unset).
func (h *Hooks) Stride() int {
	if h == nil {
		return 0
	}
	return h.CheckEvery
}

// Checker polls a context's cancellation at a bounded stride of work
// units, so hot loops pay one integer increment per unit and one
// ctx.Err() call per stride. It is single-goroutine state: parallel
// stages give each worker its own Checker. The observed error is
// sticky — once non-nil, every later Tick/Err returns it without
// polling again.
type Checker struct {
	ctx   context.Context
	every int
	n     int
	err   error
}

// NewChecker returns a Checker polling ctx every `every` work units;
// every <= 0 falls back to defaultEvery (and to 1 if that is also
// unset). The defaultEvery is the package-specific documented stride.
func NewChecker(ctx context.Context, every, defaultEvery int) *Checker {
	if every <= 0 {
		every = defaultEvery
	}
	if every <= 0 {
		every = 1
	}
	return &Checker{ctx: ctx, every: every}
}

// Tick records one completed work unit and polls the context when the
// stride elapses. Cancellation latency is therefore bounded by
// (stride x cost of one unit).
func (c *Checker) Tick() error {
	if c.err != nil {
		return c.err
	}
	if c.n++; c.n >= c.every {
		c.n = 0
		c.err = c.ctx.Err()
	}
	return c.err
}

// Err polls the context immediately (once per call until canceled),
// for natural between-stage checkpoints.
func (c *Checker) Err() error {
	if c.err == nil {
		c.err = c.ctx.Err()
	}
	return c.err
}

// Meter reports cumulative progress for one phase. Tick is safe to
// call from concurrent workers; a nil Meter or a Meter without a
// callback is a no-op, so call sites need no guards.
type Meter struct {
	phase Phase
	total int
	fn    ProgressFunc
	done  atomic.Int64
}

// NewMeter returns a Meter for the phase, or nil when fn is nil.
func NewMeter(phase Phase, total int, fn ProgressFunc) *Meter {
	if fn == nil {
		return nil
	}
	return &Meter{phase: phase, total: total, fn: fn}
}

// Tick adds n completed units and invokes the callback with the new
// cumulative count.
func (m *Meter) Tick(n int) {
	if m == nil {
		return
	}
	m.fn(m.phase, int(m.done.Add(int64(n))), m.total)
}
