package runopt

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// PhaseLog attributes a request's wall time to pipeline phases. A
// transport that wants attribution (the server's slow-query log)
// attaches one to the request context with WithPhaseLog; the engine's
// build sites wrap their work in Span calls keyed by the Phase
// vocabulary above. A request that only hit memoized artifacts
// records no spans — it did no phase work — so the log shows exactly
// where a slow request actually spent its time.
//
// A nil *PhaseLog is a valid no-op receiver, so instrumentation sites
// need no guards: PhaseLogFrom(ctx).Span(PhaseRules) costs two nil
// checks when no log is attached.
type PhaseLog struct {
	mu      sync.Mutex
	spans   map[Phase]time.Duration
	records []PhaseRecord // ordered spans, only when KeepRecords was called
	maxRec  int
	dropped int
}

// PhaseRecord is one ordered span occurrence: which phase ran, when it
// started, and how long it took. Unlike the aggregate Snapshot, records
// preserve repetition and ordering, which is what a trace needs.
type PhaseRecord struct {
	Phase    Phase
	Start    time.Time
	Duration time.Duration
}

type phaseLogKey struct{}

// NewPhaseLog returns an empty PhaseLog not yet attached to a context;
// pair with ContextWithPhaseLog. Pool-friendly via Reset.
func NewPhaseLog() *PhaseLog {
	return &PhaseLog{spans: make(map[Phase]time.Duration)}
}

// KeepRecords enables ordered span retention with the given bound;
// spans beyond it are dropped (counted, not stored). Call before use.
func (p *PhaseLog) KeepRecords(max int) {
	p.maxRec = max
	if cap(p.records) < max {
		p.records = make([]PhaseRecord, 0, max)
	}
}

// Reset clears all recorded state (keeping allocated capacity) so a
// pooled PhaseLog can be reused across requests.
func (p *PhaseLog) Reset() {
	p.mu.Lock()
	clear(p.spans)
	p.records = p.records[:0]
	p.dropped = 0
	p.mu.Unlock()
}

// ContextWithPhaseLog attaches an existing PhaseLog to ctx.
func ContextWithPhaseLog(ctx context.Context, p *PhaseLog) context.Context {
	return context.WithValue(ctx, phaseLogKey{}, p)
}

// WithPhaseLog attaches a fresh PhaseLog to ctx and returns both.
func WithPhaseLog(ctx context.Context) (context.Context, *PhaseLog) {
	p := NewPhaseLog()
	return ContextWithPhaseLog(ctx, p), p
}

// PhaseLogFrom returns the PhaseLog attached to ctx, or nil.
func PhaseLogFrom(ctx context.Context) *PhaseLog {
	p, _ := ctx.Value(phaseLogKey{}).(*PhaseLog)
	return p
}

// Span starts timing one phase and returns the closer; use as
//
//	defer runopt.PhaseLogFrom(ctx).Span(runopt.PhaseRules)()
//
// Durations accumulate: a request that mines rules twice records the
// sum. Nil-safe.
func (p *PhaseLog) Span(ph Phase) func() {
	if p == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		p.mu.Lock()
		p.spans[ph] += d
		if p.maxRec > 0 {
			if len(p.records) < p.maxRec {
				p.records = append(p.records, PhaseRecord{Phase: ph, Start: start, Duration: d})
			} else {
				p.dropped++
			}
		}
		p.mu.Unlock()
	}
}

// Records returns a copy of the ordered span records (empty unless
// KeepRecords was enabled) and the number dropped past the bound.
func (p *PhaseLog) Records() ([]PhaseRecord, int) {
	if p == nil {
		return nil, 0
	}
	p.mu.Lock()
	out := make([]PhaseRecord, len(p.records))
	copy(out, p.records)
	n := p.dropped
	p.mu.Unlock()
	return out, n
}

// VisitRecords calls fn for each ordered span record under the lock,
// allocation-free; fn must not re-enter the PhaseLog.
func (p *PhaseLog) VisitRecords(fn func(PhaseRecord)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	for _, r := range p.records {
		fn(r)
	}
	p.mu.Unlock()
}

// PhaseSpan is one attributed phase duration.
type PhaseSpan struct {
	Phase    Phase
	Duration time.Duration
}

// Snapshot returns the recorded spans, longest first (ties broken by
// phase name) — a deterministic order safe to render.
func (p *PhaseLog) Snapshot() []PhaseSpan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]PhaseSpan, 0, len(p.spans))
	for ph, d := range p.spans {
		out = append(out, PhaseSpan{Phase: ph, Duration: d})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// String renders the snapshot as "phase=dur phase=dur", or "none"
// when no phase work was recorded (a fully warm request).
func (p *PhaseLog) String() string {
	spans := p.Snapshot()
	if len(spans) == 0 {
		return "none"
	}
	parts := make([]string, len(spans))
	for i, s := range spans {
		parts[i] = fmt.Sprintf("%s=%s", s.Phase, s.Duration.Round(time.Microsecond))
	}
	return strings.Join(parts, " ")
}
