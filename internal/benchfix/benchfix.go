// Package benchfix holds the deterministic workload builders shared by
// the package benchmarks and the cmd/bench runner, so the BENCH_*.json
// perf trajectory and `go test -bench` always measure the exact same
// workloads (no hand-mirrored fixtures to drift apart).
package benchfix

import (
	"math/rand"

	"hypermine/internal/classify"
	"hypermine/internal/core"
	"hypermine/internal/hypergraph"
	"hypermine/internal/table"
)

// RandomHypergraph builds a deterministic random restricted-model
// hypergraph: edges draw tail sizes uniformly from 1..maxTail (1..3
// covers every packable shape) with a single head.
func RandomHypergraph(seed int64, nv, edges, maxTail int) *hypergraph.H {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, nv)
	for i := range names {
		names[i] = "v" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	h, err := hypergraph.New(names)
	if err != nil {
		panic(err)
	}
	var tail [3]int
	for tries := 0; h.NumEdges() < edges && tries < edges*20; tries++ {
		w := rng.Float64() + 0.01
		size := 1 + rng.Intn(maxTail)
		for i := 0; i < size; i++ {
			tail[i] = rng.Intn(nv)
		}
		// Invalid draws (duplicate ids, tail meeting head) just fail
		// AddEdge and are retried.
		_ = h.AddEdge(tail[:size], []int{rng.Intn(nv)}, w)
	}
	return h
}

// ModelWorkload builds the shared serving/classification model: a
// noisy k=3 table of nAttrs attributes and rows observations (values
// correlated through a per-row base value so mining admits edges),
// mined under gamma=1. Deterministic for fixed arguments.
func ModelWorkload(nAttrs, rows int) *core.Model {
	rng := rand.New(rand.NewSource(2))
	attrs := make([]string, nAttrs)
	for j := range attrs {
		attrs[j] = "A" + string(rune('a'+j%26)) + string(rune('a'+j/26))
	}
	tb, err := table.New(attrs, 3)
	if err != nil {
		panic(err)
	}
	row := make([]table.Value, nAttrs)
	for i := 0; i < rows; i++ {
		base := table.Value(1 + rng.Intn(3))
		for j := range row {
			if rng.Intn(3) == 0 {
				row[j] = table.Value(1 + rng.Intn(3))
			} else {
				row[j] = base
			}
		}
		if err := tb.AppendRow(row); err != nil {
			panic(err)
		}
	}
	m, err := core.Build(tb, core.Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		panic(err)
	}
	return m
}

// ABCWorkload builds the shared classification workload: the
// ModelWorkload model and an ABC over dominator {0..4} with targets
// {5..10}. nAttrs must be at least 11.
func ABCWorkload(nAttrs, rows int) (*classify.ABC, *table.Table) {
	m := ModelWorkload(nAttrs, rows)
	abc, err := classify.NewABC(m, []int{0, 1, 2, 3, 4}, []int{5, 6, 7, 8, 9, 10})
	if err != nil {
		panic(err)
	}
	return abc, m.Table
}
