// Package sim is the deterministic multi-node simulation harness that
// proves fleet correctness on a single-CPU box: it boots N real fleet
// nodes plus a router on loopback listeners, drives a seeded schedule
// of queries, appends, node kills, restarts, and lagging-gossip
// windows through real HTTP, and byte-identity-checks every routed
// answer against a single-node reference registry. The event loop is
// strictly sequential, gossip runs in manual-tick mode, and all
// randomness comes from one seeded source, so a failure replays
// exactly from its seed.
package sim

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"time"

	"hypermine/internal/fleet"
	"hypermine/internal/registry"
	"hypermine/internal/server"
)

// nodeProc is one in-process fleet member: its address survives kill
// and restart (a restarted node re-binds the same port, so peer URL
// maps stay valid), its state does not (kill -9 semantics — the
// registry is rebuilt empty and repaired by replication and gossip).
type nodeProc struct {
	name  string
	addr  string // 127.0.0.1:port, stable across restarts
	url   string
	peers map[string]string // other nodes, name -> url

	reg   *registry.Registry
	node  *fleet.Node
	hs    *http.Server
	alive bool
}

// Cluster is an in-process fleet: N nodes and one router, all on real
// loopback listeners, gossip in manual-tick mode so the sim controls
// exactly when convergence happens.
type Cluster struct {
	replicas int
	vnodes   int
	nodes    []*nodeProc
	byName   map[string]*nodeProc

	router    *fleet.Router
	routerHS  *http.Server
	routerURL string

	// Client has keep-alives disabled: a killed node must present as a
	// fresh connection refusal, never as a half-dead pooled connection,
	// or failover behavior would depend on connection-pool history.
	Client *http.Client
}

// NewCluster boots n fleet nodes plus a router. Node names are
// "n0".."n{n-1}".
func NewCluster(n, replicas, vnodes int) (*Cluster, error) {
	return NewClusterWithClient(n, replicas, vnodes, nil)
}

// NewClusterWithClient is NewCluster with a caller-supplied HTTP
// client (nil = the deterministic keep-alive-free default). The bench
// suite passes a pooled client so router forwarding overhead is
// measured without per-request TCP setup.
func NewClusterWithClient(n, replicas, vnodes int, client *http.Client) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: need at least one node, got %d", n)
	}
	if client == nil {
		client = &http.Client{
			Timeout:   time.Minute,
			Transport: &http.Transport{DisableKeepAlives: true},
		}
	}
	c := &Cluster{
		replicas: replicas,
		vnodes:   vnodes,
		byName:   make(map[string]*nodeProc, n),
		Client:   client,
	}
	// Reserve every listener first so all peer URLs are known before
	// any node is constructed.
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		listeners[i] = ln
		p := &nodeProc{
			name: fmt.Sprintf("n%d", i),
			addr: ln.Addr().String(),
		}
		p.url = "http://" + p.addr
		c.nodes = append(c.nodes, p)
		c.byName[p.name] = p
	}
	for _, p := range c.nodes {
		p.peers = make(map[string]string, n-1)
		for _, q := range c.nodes {
			if q != p {
				p.peers[q.name] = q.url
			}
		}
	}
	for i, p := range c.nodes {
		if err := c.boot(p, listeners[i]); err != nil {
			c.Close()
			return nil, err
		}
	}

	peers := make(map[string]string, n)
	for _, p := range c.nodes {
		peers[p.name] = p.url
	}
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Peers:    peers,
		Replicas: replicas,
		VNodes:   vnodes,
		Client:   c.Client,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.router = rt
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close()
		return nil, err
	}
	c.routerURL = "http://" + ln.Addr().String()
	c.routerHS = &http.Server{Handler: rt.Handler()}
	go c.routerHS.Serve(ln)
	return c, nil
}

// boot constructs a fresh registry + server + fleet node for p and
// serves it on ln. Gossip interval 0 = manual ticks.
func (c *Cluster) boot(p *nodeProc, ln net.Listener) error {
	reg := registry.New(registry.Options{})
	// Server-level logs are discarded: the sim narrates through its own
	// Logf, and bench runs must not interleave per-PUT load lines.
	srv := server.New(reg, server.WithLogger(slog.New(slog.DiscardHandler)))
	node, err := fleet.NewNode(fleet.NodeConfig{
		Name:     p.name,
		Peers:    p.peers,
		Replicas: c.replicas,
		VNodes:   c.vnodes,
		Client:   c.Client,
	}, reg, srv)
	if err != nil {
		return err
	}
	node.Start()
	p.reg = reg
	p.node = node
	p.hs = &http.Server{Handler: node.Handler()}
	p.alive = true
	go p.hs.Serve(ln)
	return nil
}

// RouterURL returns the router's base URL.
func (c *Cluster) RouterURL() string { return c.routerURL }

// NodeURL returns a node's base URL (valid even while killed — dials
// then fail with connection refused, exactly like a dead process).
func (c *Cluster) NodeURL(name string) string { return c.byName[name].url }

// NodeNames returns the node names in boot order.
func (c *Cluster) NodeNames() []string {
	names := make([]string, len(c.nodes))
	for i, p := range c.nodes {
		names[i] = p.name
	}
	return names
}

// Ring returns the router's ring (all members agree on parameters).
func (c *Cluster) Ring() *fleet.Ring { return c.router.Ring() }

// Alive reports whether the named node is serving.
func (c *Cluster) Alive(name string) bool { return c.byName[name].alive }

// Kill hard-stops a node: the listener and all connections close
// immediately and in-memory state is abandoned, modeling kill -9.
func (c *Cluster) Kill(name string) error {
	p := c.byName[name]
	if p == nil {
		return fmt.Errorf("sim: unknown node %q", name)
	}
	if !p.alive {
		return fmt.Errorf("sim: node %q already dead", name)
	}
	p.alive = false
	p.node.Stop()
	return p.hs.Close()
}

// Restart boots a dead node from scratch on its original address: an
// empty registry that must re-learn its shard via gossip (and is not
// ready, and refuses writes, until it does).
func (c *Cluster) Restart(name string) error {
	p := c.byName[name]
	if p == nil {
		return fmt.Errorf("sim: unknown node %q", name)
	}
	if p.alive {
		return fmt.Errorf("sim: node %q is running", name)
	}
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	return c.boot(p, ln)
}

// Gossip runs one full gossip round (all peers) on the named node —
// the manual tick the deterministic schedule uses for lag release.
func (c *Cluster) Gossip(ctx context.Context, name string) error {
	p := c.byName[name]
	if p == nil || !p.alive {
		return fmt.Errorf("sim: node %q not serving", name)
	}
	return p.node.GossipAll(ctx)
}

// Converge gossips every live node against all its peers. One
// push-pull pass converges pairwise knowledge; a second pass closes
// transitive chains (A learned from B what B learned from C).
func (c *Cluster) Converge(ctx context.Context) error {
	for pass := 0; pass < 2; pass++ {
		for _, p := range c.nodes {
			if !p.alive {
				continue
			}
			if err := p.node.GossipAll(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	for _, p := range c.nodes {
		if p.alive {
			p.alive = false
			if p.node != nil {
				p.node.Stop()
			}
			if p.hs != nil {
				_ = p.hs.Close()
			}
		}
	}
	if c.routerHS != nil {
		_ = c.routerHS.Close()
	}
	if t, ok := c.Client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}
