package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"

	"hypermine/internal/benchfix"
	"hypermine/internal/core"
	"hypermine/internal/registry"
	"hypermine/internal/server"
)

// Config parameterizes one simulation run. Zero values take the
// documented defaults; the acceptance schedule (>= 500 events, >= 3
// kills, >= 2 lagging-gossip windows) is the default.
type Config struct {
	Seed     int64
	Nodes    int // fleet size; default 3
	Replicas int // replication factor R; default 2
	Events   int // seeded schedule length; default 500
	Kills    int // node kills injected; default 3
	Lags     int // restarts whose gossip is delayed (lag windows); default 2
	Models   int // distinct model names; default 2
	Attrs    int // attributes per model; default 10
	Rows     int // initial rows per model; default 150
	// Logf, when set, receives progress lines (control events and
	// periodic counters).
	Logf func(format string, args ...any)
}

func (cfg *Config) defaults() {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Events <= 0 {
		cfg.Events = 500
	}
	if cfg.Kills <= 0 {
		cfg.Kills = 3
	}
	if cfg.Lags <= 0 {
		cfg.Lags = 2
	}
	if cfg.Lags > cfg.Kills {
		cfg.Lags = cfg.Kills
	}
	if cfg.Models <= 0 {
		cfg.Models = 2
	}
	if cfg.Attrs <= 0 {
		cfg.Attrs = 10
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 150
	}
}

// Result summarizes a run. A correct fleet yields Mismatches == 0,
// OpFailures == 0, and LostAppends == 0.
type Result struct {
	Events   int `json:"events"`
	Queries  int `json:"queries"`
	Appends  int `json:"appends"`
	Kills    int `json:"kills"`
	Restarts int `json:"restarts"`
	// LagReleases counts the delayed-gossip windows that were opened
	// and then released (>= cfg.Lags when the schedule ran fully).
	LagReleases int `json:"lag_releases"`
	// Mismatches counts routed answers whose body differed from the
	// single-node reference, plus generation-attribution mismatches.
	Mismatches int `json:"mismatches"`
	// OpFailures counts routed operations that failed outright even
	// though failover should have answered them.
	OpFailures int `json:"op_failures"`
	// LostAppends counts acknowledged appends whose rows were missing
	// from any replica at final convergence (must be 0: replication is
	// synchronous and gossip repairs restarts).
	LostAppends int `json:"lost_appends"`
	// FinalChecks counts the per-model, per-replica convergence
	// verifications performed after the schedule drained.
	FinalChecks int `json:"final_checks"`
}

// control is the deterministic non-traffic schedule, keyed by event
// index.
type control struct {
	kill    string
	restart string
	release string // gossip the named node (ends its lag window)
}

// sim carries one run's state.
type sim struct {
	cfg     Config
	rng     *rand.Rand
	cluster *Cluster
	ref     http.Handler // single-node reference server
	res     *Result

	models    []string
	lastGen   map[string]int64 // model -> last acknowledged fleet generation
	expectRow map[string]int   // model -> reference row count (acked)
}

// Run executes one seeded simulation and reports its Result. An error
// means the harness itself failed (listener, snapshot build); fleet
// misbehavior is reported in the Result counters instead.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	cluster, err := NewCluster(cfg.Nodes, cfg.Replicas, 0)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	s := &sim{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		cluster:   cluster,
		ref:       server.New(registry.New(registry.Options{})).Handler(),
		res:       &Result{},
		lastGen:   map[string]int64{},
		expectRow: map[string]int{},
	}
	for i := 0; i < cfg.Models; i++ {
		s.models = append(s.models, fmt.Sprintf("m%02d", i))
	}

	ctx := context.Background()
	// Before any write, converge: nodes boot unready (manual gossip)
	// and refuse writes until their first round, exactly like a real
	// fleet gated on /readyz.
	if err := cluster.Converge(ctx); err != nil {
		return nil, err
	}
	if err := s.seedModels(); err != nil {
		return nil, err
	}

	schedule := s.buildSchedule()
	for ev := 0; ev < cfg.Events; ev++ {
		s.res.Events++
		if c, ok := schedule[ev]; ok {
			if err := s.applyControl(ctx, ev, c); err != nil {
				return nil, err
			}
			continue
		}
		if s.rng.Float64() < 0.15 {
			s.stepAppend(ev)
		} else {
			s.stepQuery(ev)
		}
		if s.cfg.Logf != nil && (ev+1)%100 == 0 {
			s.cfg.Logf("event %d/%d: %d queries, %d appends, %d mismatches, %d failures",
				ev+1, cfg.Events, s.res.Queries, s.res.Appends, s.res.Mismatches, s.res.OpFailures)
		}
	}

	s.finalVerify(ctx)
	return s.res, nil
}

// buildSchedule places kills, restarts, and lag releases on the event
// axis: kill K_i, restart 20 events later, gossip release 15 more
// events later for the first cfg.Lags kills (the lag window) and
// immediately after restart for the rest. Spacing guarantees at most
// one node is dead or lagging at any time, so synchronous replication
// plus the surviving owner always preserve acknowledged writes.
func (s *sim) buildSchedule() map[int]control {
	schedule := map[int]control{}
	spacing := s.cfg.Events / (s.cfg.Kills + 1)
	names := s.cluster.NodeNames()
	for i := 0; i < s.cfg.Kills; i++ {
		victim := names[s.rng.Intn(len(names))]
		killAt := spacing * (i + 1)
		restartAt := killAt + 20
		releaseAt := restartAt + 1
		if i < s.cfg.Lags {
			releaseAt = restartAt + 15
		}
		schedule[killAt] = control{kill: victim}
		schedule[restartAt] = control{restart: victim}
		schedule[releaseAt] = control{release: victim}
	}
	return schedule
}

func (s *sim) applyControl(ctx context.Context, ev int, c control) error {
	switch {
	case c.kill != "":
		s.res.Kills++
		s.logf("event %d: kill %s", ev, c.kill)
		return s.cluster.Kill(c.kill)
	case c.restart != "":
		s.res.Restarts++
		s.logf("event %d: restart %s (empty, lagging until gossip)", ev, c.restart)
		return s.cluster.Restart(c.restart)
	case c.release != "":
		s.res.LagReleases++
		s.logf("event %d: gossip release %s", ev, c.release)
		return s.cluster.Gossip(ctx, c.release)
	}
	return nil
}

func (s *sim) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// attrName mirrors benchfix.ModelWorkload's attribute naming.
func attrName(j int) string {
	return "A" + string(rune('a'+j%26)) + string(rune('a'+j/26))
}

// seedModels PUTs every model through the router and into the
// reference, recording the acknowledged generations.
func (s *sim) seedModels() error {
	for i, name := range s.models {
		m := benchfix.ModelWorkload(s.cfg.Attrs, s.cfg.Rows+10*i)
		var snap bytes.Buffer
		if err := core.WriteSnapshot(&snap, m, core.SaveOptions{}); err != nil {
			return err
		}
		status, hdr, body := s.routed(http.MethodPut, "/v1/models/"+name, "application/octet-stream", snap.Bytes())
		if status != http.StatusOK {
			return fmt.Errorf("sim: seed PUT %s: %d %s", name, status, body)
		}
		refStatus, _, refBody := s.reference(http.MethodPut, "/v1/models/"+name, "application/octet-stream", snap.Bytes())
		if refStatus != http.StatusOK {
			return fmt.Errorf("sim: reference PUT %s: %d %s", name, refStatus, refBody)
		}
		var put, refPut struct {
			Generation int64 `json:"generation"`
			Rows       int   `json:"rows"`
			Edges      int   `json:"edges"`
		}
		if err := json.Unmarshal(body, &put); err != nil {
			return err
		}
		if err := json.Unmarshal(refBody, &refPut); err != nil {
			return err
		}
		if put.Rows != refPut.Rows || put.Edges != refPut.Edges {
			return fmt.Errorf("sim: seed %s disagrees with reference: %+v vs %+v", name, put, refPut)
		}
		if hdr.Get("X-Model-Generation") == "" {
			return fmt.Errorf("sim: seed PUT %s: no generation header", name)
		}
		s.lastGen[name] = put.Generation
		s.expectRow[name] = put.Rows
	}
	return nil
}

// routed performs one HTTP request through the router.
func (s *sim) routed(method, path, contentType string, body []byte) (int, http.Header, []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, s.cluster.RouterURL()+path, rd)
	if err != nil {
		return 0, nil, []byte(err.Error())
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := s.cluster.Client.Do(req)
	if err != nil {
		return 0, nil, []byte(err.Error())
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b
}

// direct performs one HTTP request against a specific node.
func (s *sim) direct(nodeURL, method, path, contentType string, body []byte) (int, http.Header, []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, nodeURL+path, rd)
	if err != nil {
		return 0, nil, []byte(err.Error())
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := s.cluster.Client.Do(req)
	if err != nil {
		return 0, nil, []byte(err.Error())
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b
}

// reference performs the same request against the single-node
// reference handler, in process.
func (s *sim) reference(method, path, contentType string, body []byte) (int, http.Header, []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	s.ref.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes()
}

// query is one generated read: a method, path, and optional JSON body,
// identical for router and reference.
type query struct {
	method, path string
	body         []byte
}

// genQuery draws one deterministic read from the rng.
func (s *sim) genQuery(model string) query {
	a := attrName(s.rng.Intn(s.cfg.Attrs))
	b := attrName(s.rng.Intn(s.cfg.Attrs))
	switch s.rng.Intn(6) {
	case 0:
		return query{"GET", fmt.Sprintf("/v1/models/%s/rules?head=%s&top=5", model, a), nil}
	case 1:
		return query{"GET", fmt.Sprintf("/v1/models/%s/similar?a=%s&b=%s", model, a, b), nil}
	case 2:
		return query{"GET", fmt.Sprintf("/v1/models/%s/similar?a=%s&top=5", model, a), nil}
	case 3:
		return query{"GET", "/v1/models/" + model + "/dominators", nil}
	case 4:
		vals := map[string]int{}
		for i := 0; i < 3; i++ {
			vals[attrName(s.rng.Intn(s.cfg.Attrs))] = 1 + s.rng.Intn(3)
		}
		body, _ := json.Marshal(map[string]any{"values": vals})
		return query{"POST", "/v1/models/" + model + "/classify", body}
	default:
		body, _ := json.Marshal(map[string]any{
			"rules": map[string]any{"head": a, "top": 3},
		})
		return query{"POST", "/v1/models/" + model + ":query", body}
	}
}

// stepQuery routes one generated read and byte-compares it with the
// reference; the routed answer must also attribute itself to the last
// acknowledged generation (replication is synchronous, so no replica
// may ever answer from an older one).
func (s *sim) stepQuery(ev int) {
	model := s.models[s.rng.Intn(len(s.models))]
	q := s.genQuery(model)
	s.res.Queries++
	ct := ""
	if q.body != nil {
		ct = "application/json"
	}
	status, hdr, body := s.routed(q.method, q.path, ct, q.body)
	refStatus, _, refBody := s.reference(q.method, q.path, ct, q.body)
	if status != refStatus {
		s.res.OpFailures++
		s.logf("event %d: %s %s: routed status %d, reference %d (%s)", ev, q.method, q.path, status, refStatus, body)
		return
	}
	if !bytes.Equal(body, refBody) {
		s.res.Mismatches++
		s.logf("event %d: %s %s: body mismatch\n routed: %s\n    ref: %s", ev, q.method, q.path, body, refBody)
	}
	if gen := hdr.Get("X-Model-Generation"); gen != fmt.Sprint(s.lastGen[model]) {
		s.res.Mismatches++
		s.logf("event %d: %s %s: generation %q, want %d", ev, q.method, q.path, gen, s.lastGen[model])
	}
}

// stepAppend routes one generated append; on acknowledgement the same
// rows go into the reference and the acked generation and row count
// are recorded (the final verification proves no acked row was lost).
func (s *sim) stepAppend(ev int) {
	model := s.models[s.rng.Intn(len(s.models))]
	nRows := 1 + s.rng.Intn(3)
	rows := make([][]int, nRows)
	for i := range rows {
		rows[i] = make([]int, s.cfg.Attrs)
		base := 1 + s.rng.Intn(3)
		for j := range rows[i] {
			if s.rng.Intn(3) == 0 {
				rows[i][j] = 1 + s.rng.Intn(3)
			} else {
				rows[i][j] = base
			}
		}
	}
	body, _ := json.Marshal(map[string]any{"rows": rows})
	s.res.Appends++
	path := "/v1/models/" + model + ":append"
	status, _, respBody := s.routed(http.MethodPost, path, "application/json", body)
	if status != http.StatusOK {
		// Not acknowledged: nothing promised, nothing applied to the
		// reference. Failover should make this impossible in-schedule.
		s.res.OpFailures++
		s.logf("event %d: append %s: status %d (%s)", ev, model, status, respBody)
		return
	}
	refStatus, _, refBody := s.reference(http.MethodPost, path, "application/json", body)
	if refStatus != http.StatusOK {
		s.res.OpFailures++
		s.logf("event %d: reference append %s: status %d", ev, model, refStatus)
		return
	}
	var got, ref struct {
		Generation int64 `json:"generation"`
		Appended   int   `json:"appended"`
		Rows       int   `json:"rows"`
	}
	if json.Unmarshal(respBody, &got) != nil || json.Unmarshal(refBody, &ref) != nil {
		s.res.Mismatches++
		return
	}
	if got.Appended != ref.Appended || got.Rows != ref.Rows {
		// The fleet acknowledged different data than the reference —
		// rows went missing (or doubled) somewhere between failovers.
		s.res.LostAppends++
		s.logf("event %d: append %s diverged: fleet %+v, reference %+v", ev, model, got, ref)
	}
	s.lastGen[model] = got.Generation
	s.expectRow[model] = ref.Rows
}

// finalVerify restarts anything dead, forces gossip convergence, and
// checks every replica of every model directly: readiness, the
// acknowledged generation, the acknowledged row count, and byte
// identity of a full rules mining answer against the reference. Any
// acked append missing anywhere surfaces here as LostAppends.
func (s *sim) finalVerify(ctx context.Context) {
	for _, name := range s.cluster.NodeNames() {
		if !s.cluster.Alive(name) {
			s.res.Restarts++
			if err := s.cluster.Restart(name); err != nil {
				s.res.OpFailures++
				s.logf("final: restart %s: %v", name, err)
			}
		}
	}
	if err := s.cluster.Converge(ctx); err != nil {
		s.res.OpFailures++
		s.logf("final: converge: %v", err)
	}

	for _, name := range s.cluster.NodeNames() {
		status, _, body := s.direct(s.cluster.NodeURL(name), http.MethodGet, "/readyz", "", nil)
		if status != http.StatusOK {
			s.res.OpFailures++
			s.logf("final: %s /readyz = %d (%s)", name, status, body)
		}
	}

	models := append([]string(nil), s.models...)
	sort.Strings(models)
	for _, model := range models {
		rulesPath := fmt.Sprintf("/v1/models/%s/rules?head=%s&top=10", model, attrName(0))
		_, _, refRules := s.reference(http.MethodGet, rulesPath, "", nil)
		for _, owner := range s.cluster.Ring().Owners(model) {
			s.res.FinalChecks++
			u := s.cluster.NodeURL(owner)

			status, hdr, body := s.direct(u, http.MethodGet, rulesPath, "", nil)
			if status != http.StatusOK {
				s.res.LostAppends++
				s.logf("final: %s on %s: rules status %d (%s)", model, owner, status, body)
				continue
			}
			if !bytes.Equal(body, refRules) {
				s.res.Mismatches++
				s.logf("final: %s on %s: rules body diverges from reference", model, owner)
			}
			if gen := hdr.Get("X-Model-Generation"); gen != fmt.Sprint(s.lastGen[model]) {
				s.res.Mismatches++
				s.logf("final: %s on %s: generation %q, want %d", model, owner, gen, s.lastGen[model])
			}

			status, _, body = s.direct(u, http.MethodGet, "/v1/models", "", nil)
			if status != http.StatusOK {
				s.res.OpFailures++
				continue
			}
			var list struct {
				Models []struct {
					Name       string `json:"name"`
					Rows       int    `json:"rows"`
					Generation int64  `json:"generation"`
				} `json:"models"`
			}
			if err := json.Unmarshal(body, &list); err != nil {
				s.res.OpFailures++
				continue
			}
			found := false
			for _, row := range list.Models {
				if row.Name != model {
					continue
				}
				found = true
				if row.Rows != s.expectRow[model] {
					s.res.LostAppends++
					s.logf("final: %s on %s: %d rows, want %d (acked rows lost)", model, owner, row.Rows, s.expectRow[model])
				}
				if row.Generation != s.lastGen[model] {
					s.res.Mismatches++
					s.logf("final: %s on %s: generation %d, want %d", model, owner, row.Generation, s.lastGen[model])
				}
			}
			if !found {
				s.res.LostAppends++
				s.logf("final: %s missing entirely on replica %s", model, owner)
			}
		}
	}
	s.logf("final: %d checks, %d mismatches, %d op failures, %d lost appends",
		s.res.FinalChecks, s.res.Mismatches, s.res.OpFailures, s.res.LostAppends)
}
