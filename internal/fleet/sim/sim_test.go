package sim

import (
	"testing"
	"time"

	"hypermine/internal/testutil"
)

// TestSimDeterministicSchedule is the acceptance run: >= 500 seeded
// events against 3 nodes / R=2 with >= 3 kills and >= 2 lagging-gossip
// windows. Every routed answer must be byte-identical to the
// single-node reference, and no acknowledged append may be lost.
func TestSimDeterministicSchedule(t *testing.T) {
	base := testutil.GoroutineBaseline()
	res, err := Run(Config{Seed: 42, Logf: t.Logf})
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	if res.Events < 500 {
		t.Errorf("events = %d, want >= 500", res.Events)
	}
	if res.Kills < 3 {
		t.Errorf("kills = %d, want >= 3", res.Kills)
	}
	if res.LagReleases < 2 {
		t.Errorf("lag releases = %d, want >= 2", res.LagReleases)
	}
	if res.Queries == 0 || res.Appends == 0 {
		t.Errorf("degenerate mix: %d queries, %d appends", res.Queries, res.Appends)
	}
	if res.Mismatches != 0 {
		t.Errorf("mismatches = %d, want 0 (routed answers must be byte-identical to reference)", res.Mismatches)
	}
	if res.OpFailures != 0 {
		t.Errorf("op failures = %d, want 0 (failover must absorb every kill)", res.OpFailures)
	}
	if res.LostAppends != 0 {
		t.Errorf("lost appends = %d, want 0 (acked writes must survive kills)", res.LostAppends)
	}
	if res.FinalChecks == 0 {
		t.Error("no final convergence checks ran")
	}
	testutil.CheckGoroutines(t.Errorf, base, 4, 2*time.Second)
}

// TestSimSeedsDiffer runs two short schedules under different seeds to
// make sure the harness actually randomizes traffic, and the same seed
// twice to pin determinism of the Result counters.
func TestSimSeedsDiffer(t *testing.T) {
	short := func(seed int64) *Result {
		t.Helper()
		res, err := Run(Config{Seed: seed, Events: 120, Kills: 1, Lags: 1})
		if err != nil {
			t.Fatalf("sim run(seed=%d): %v", seed, err)
		}
		if res.Mismatches != 0 || res.OpFailures != 0 || res.LostAppends != 0 {
			t.Fatalf("seed %d: mismatches=%d failures=%d lost=%d, want all 0",
				seed, res.Mismatches, res.OpFailures, res.LostAppends)
		}
		return res
	}
	a := short(1)
	b := short(2)
	a2 := short(1)
	if *a != *a2 {
		t.Errorf("same seed produced different results: %+v vs %+v", *a, *a2)
	}
	if a.Queries == b.Queries && a.Appends == b.Appends {
		t.Logf("note: seeds 1 and 2 coincidentally produced identical mixes (%d/%d)", a.Queries, a.Appends)
	}
}
