package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"hypermine/internal/benchfix"
	"hypermine/internal/core"
	"hypermine/internal/registry"
	"hypermine/internal/server"
	"hypermine/internal/testutil"
)

// handlerSwap lets a httptest server start before the node whose
// handler it will serve exists (peer URLs must be known first).
type handlerSwap struct {
	h atomic.Pointer[http.Handler]
}

func (s *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h := s.h.Load()
	if h == nil {
		http.Error(w, "node not booted", http.StatusServiceUnavailable)
		return
	}
	(*h).ServeHTTP(w, r)
}

// testFleet is a set of in-process fleet nodes on real listeners.
type testFleet struct {
	nodes map[string]*Node
	regs  map[string]*registry.Registry
	urls  map[string]string
}

func newTestFleet(t *testing.T, names []string, replicas int, interval time.Duration, client *http.Client) *testFleet {
	t.Helper()
	f := &testFleet{
		nodes: map[string]*Node{},
		regs:  map[string]*registry.Registry{},
		urls:  map[string]string{},
	}
	swaps := map[string]*handlerSwap{}
	for _, name := range names {
		sw := &handlerSwap{}
		ts := httptest.NewServer(sw)
		t.Cleanup(ts.Close)
		swaps[name] = sw
		f.urls[name] = ts.URL
	}
	for _, name := range names {
		peers := map[string]string{}
		for _, other := range names {
			if other != name {
				peers[other] = f.urls[other]
			}
		}
		reg := registry.New(registry.Options{})
		node, err := NewNode(NodeConfig{
			Name:           name,
			Peers:          peers,
			Replicas:       replicas,
			GossipInterval: interval,
			Client:         client,
		}, reg, server.New(reg))
		if err != nil {
			t.Fatalf("NewNode(%s): %v", name, err)
		}
		node.Start()
		t.Cleanup(node.Stop)
		h := node.Handler()
		swaps[name].h.Store(&h)
		f.nodes[name] = node
		f.regs[name] = reg
	}
	return f
}

// snapshotBytes serializes a small deterministic model.
func snapshotBytes(t *testing.T, rows int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteSnapshot(&buf, benchfix.ModelWorkload(8, rows), core.SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// peekGen returns the generation a registry serves name at (0 = absent).
func peekGen(reg *registry.Registry, name string) int64 {
	sv := reg.Peek(name)
	if sv == nil {
		return 0
	}
	defer sv.Release()
	return sv.Generation()
}

// TestWriteReplicationSynchronous pins the tentpole write contract:
// a PUT or :append accepted by one owner is visible on every other
// owner at the same generation before the acknowledgement returns.
func TestWriteReplicationSynchronous(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b"}, 2, 0, nil)
	ctx := context.Background()
	if err := f.nodes["a"].GossipAll(ctx); err != nil {
		t.Fatalf("gossip: %v", err)
	}

	resp, err := putSnapshot(f.urls["a"], "m", snapshotBytes(t, 80))
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != http.StatusOK {
		t.Fatalf("PUT = %d (%s)", resp.status, resp.body)
	}
	gen, _ := strconv.ParseInt(resp.gen, 10, 64)
	if gen <= 0 {
		t.Fatalf("PUT generation header = %q", resp.gen)
	}
	// No gossip has run since: the replica can only have the model via
	// the synchronous replication push.
	if got := peekGen(f.regs["b"], "m"); got != gen {
		t.Fatalf("replica generation = %d immediately after ack, want %d", got, gen)
	}

	// An append moves both owners to the same new generation, again
	// before the ack.
	body := []byte(`{"rows":[[1,2,3,1,2,3,1,2]]}`)
	req, _ := http.NewRequest(http.MethodPost, f.urls["a"]+"/v1/models/m:append", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	ar, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ar.Body)
	ar.Body.Close()
	if ar.StatusCode != http.StatusOK {
		t.Fatalf("append = %d", ar.StatusCode)
	}
	newGen, _ := strconv.ParseInt(ar.Header.Get("X-Model-Generation"), 10, 64)
	if newGen <= gen {
		t.Fatalf("append generation %d did not advance past %d", newGen, gen)
	}
	if got := peekGen(f.regs["b"], "m"); got != newGen {
		t.Fatalf("replica generation after append = %d, want %d", got, newGen)
	}
}

type putResult struct {
	status int
	gen    string
	body   string
}

func putSnapshot(baseURL, name string, snap []byte) (putResult, error) {
	req, err := http.NewRequest(http.MethodPut, baseURL+"/v1/models/"+name, bytes.NewReader(snap))
	if err != nil {
		return putResult{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return putResult{}, err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return putResult{resp.StatusCode, resp.Header.Get("X-Model-Generation"), string(b)}, nil
}

// TestNotReadyWriteRefusal pins the restart-safety contract: a node
// that has not completed a gossip round refuses writes with 503 +
// X-Fleet-Not-Ready (so the router knows the write was not applied)
// while reads still pass through to the inner server.
func TestNotReadyWriteRefusal(t *testing.T) {
	reg := registry.New(registry.Options{})
	node, err := NewNode(NodeConfig{
		Name:  "a",
		Peers: map[string]string{"ghost": "http://127.0.0.1:1"},
	}, reg, server.New(reg))
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	defer node.Stop()
	ts := httptest.NewServer(node.Handler())
	defer ts.Close()

	if err := node.Ready(); err == nil {
		t.Fatal("node with an unreachable peer reported ready before any gossip round")
	}
	resp, err := putSnapshot(ts.URL, "m", snapshotBytes(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != http.StatusServiceUnavailable {
		t.Fatalf("unready PUT = %d, want 503", resp.status)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/m", bytes.NewReader(snapshotBytes(t, 40)))
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, raw.Body)
	raw.Body.Close()
	if raw.Header.Get("X-Fleet-Not-Ready") == "" || raw.Header.Get("Retry-After") == "" {
		t.Fatalf("unready refusal missing X-Fleet-Not-Ready / Retry-After: %v", raw.Header)
	}

	// Reads are never gated: an empty-but-alive node answers (here the
	// model list, empty).
	lr, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, lr.Body)
	lr.Body.Close()
	if lr.StatusCode != http.StatusOK {
		t.Fatalf("read on unready node = %d, want 200", lr.StatusCode)
	}
}

// TestGossipPullRepair pins the repair path: a node that lags (or
// entirely lacks) a model it owns pulls it during a gossip round, at
// the originating generation; models outside its shard are never
// mirrored (pull-iff-owner).
func TestGossipPullRepair(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b"}, 1, 0, nil) // R=1: each model has exactly one owner
	ctx := context.Background()
	ring := f.nodes["a"].Ring()

	// Find one name owned by each node.
	var ownedByA, ownedByB string
	for i := 0; ownedByA == "" || ownedByB == ""; i++ {
		name := fmt.Sprintf("model-%d", i)
		if ring.Owner(name) == "a" && ownedByA == "" {
			ownedByA = name
		}
		if ring.Owner(name) == "b" && ownedByB == "" {
			ownedByB = name
		}
	}

	// Both models start on node a (as if the fleet had just been
	// re-sharded): a holds ownedByB without owning it.
	m1 := benchfix.ModelWorkload(8, 60)
	m2 := benchfix.ModelWorkload(8, 90)
	if _, err := f.regs["a"].LoadContext(ctx, ownedByA, m1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.regs["a"].LoadContext(ctx, ownedByB, m2); err != nil {
		t.Fatal(err)
	}
	genB := peekGen(f.regs["a"], ownedByB)

	// b gossips with a: it must pull its own shard (ownedByB) at a's
	// generation and leave a's shard alone.
	if err := f.nodes["b"].GossipAll(ctx); err != nil {
		t.Fatalf("gossip: %v", err)
	}
	if got := peekGen(f.regs["b"], ownedByB); got != genB {
		t.Fatalf("owner pulled %s at generation %d, want %d", ownedByB, got, genB)
	}
	if got := peekGen(f.regs["b"], ownedByA); got != 0 {
		t.Fatalf("node b mirrored %s (generation %d) outside its shard", ownedByA, got)
	}

	// Redelivery is idempotent: another round must not regress or fork
	// the generation.
	if err := f.nodes["b"].GossipAll(ctx); err != nil {
		t.Fatalf("second gossip: %v", err)
	}
	if got := peekGen(f.regs["b"], ownedByB); got != genB {
		t.Fatalf("second gossip moved %s to generation %d, want stable %d", ownedByB, got, genB)
	}
}

// TestGossipHandlerPushPull pins the receiving half: a gossip POST from
// a known lagging peer makes the receiver respond with its own digest,
// and the *sender* of the digest catches up the receiver (push-pull in
// one exchange).
func TestGossipHandlerPushPull(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b"}, 2, 0, nil)
	ctx := context.Background()

	m := benchfix.ModelWorkload(8, 50)
	if _, err := f.regs["b"].LoadContext(ctx, "m", m); err != nil {
		t.Fatal(err)
	}
	gen := peekGen(f.regs["b"], "m")

	// a initiates gossip; b's digest advertises "m", a owns it, so a
	// pulls it inside the same round.
	if err := f.nodes["a"].GossipAll(ctx); err != nil {
		t.Fatalf("gossip: %v", err)
	}
	if got := peekGen(f.regs["a"], "m"); got != gen {
		t.Fatalf("initiator did not pull: generation %d, want %d", got, gen)
	}
	if err := f.nodes["a"].Ready(); err != nil {
		t.Fatalf("node not ready after successful round: %v", err)
	}
}

// TestGossipConvergenceUnderRace runs three nodes with fast background
// gossip loops concurrently (this test is meaningful under -race): a
// model loaded on one node must reach every owner, and shutdown must
// not leak goroutines.
func TestGossipConvergenceUnderRace(t *testing.T) {
	client := &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	base := testutil.GoroutineBaseline()
	f := newTestFleet(t, []string{"a", "b", "c"}, 2, 2*time.Millisecond, client)

	ctx := context.Background()
	if _, err := f.regs["a"].LoadContext(ctx, "race-model", benchfix.ModelWorkload(8, 70)); err != nil {
		t.Fatal(err)
	}
	owners := f.nodes["a"].Ring().Owners("race-model")
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, o := range owners {
			if peekGen(f.regs[o], "race-model") == 0 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("model did not reach all owners %v via gossip", owners)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, o := range owners {
		if got := peekGen(f.regs[o], "race-model"); got != 1 {
			t.Errorf("owner %s serves generation %d, want 1", o, got)
		}
	}
	for _, n := range f.nodes {
		n.Stop()
	}
	client.CloseIdleConnections()
	testutil.CheckGoroutines(t.Errorf, base, 6, 2*time.Second)
}

// TestFleetStatsAndMetrics pins the observability satellite: the fleet
// /stats section carries node/ring/peer/model labels and /metrics
// exposes the labeled peer gauge plus the parity-covered counters.
func TestFleetStatsAndMetrics(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b"}, 2, 0, nil)
	ctx := context.Background()
	if err := f.nodes["a"].GossipAll(ctx); err != nil {
		t.Fatal(err)
	}
	if r, err := putSnapshot(f.urls["a"], "m", snapshotBytes(t, 40)); err != nil || r.status != 200 {
		t.Fatalf("PUT: %v %+v", err, r)
	}

	resp, err := http.Get(f.urls["a"] + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Fleet struct {
			Node   string            `json:"node"`
			Ready  bool              `json:"ready"`
			Peers  map[string]string `json:"peers"`
			Models map[string]struct {
				Owner    string   `json:"owner"`
				Replicas []string `json:"replicas"`
			} `json:"models"`
		} `json:"fleet"`
		GossipRounds      int64 `json:"gossip_rounds"`
		ReplicationPushes int64 `json:"replication_pushes"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fleet.Node != "a" || !stats.Fleet.Ready {
		t.Fatalf("fleet stats node/ready wrong: %+v", stats.Fleet)
	}
	if stats.Fleet.Peers["b"] != "up" {
		t.Fatalf("peer b state = %q, want up", stats.Fleet.Peers["b"])
	}
	ms, ok := stats.Fleet.Models["m"]
	if !ok || ms.Owner == "" || len(ms.Replicas) != 2 {
		t.Fatalf("per-model owner/replica labels missing: %+v", stats.Fleet.Models)
	}
	if stats.GossipRounds == 0 || stats.ReplicationPushes == 0 {
		t.Fatalf("fleet counters absent from /stats: %+v", stats)
	}

	mr, err := http.Get(f.urls["a"] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		`hypermined_fleet_peers{state="up"} 1`,
		`hypermined_fleet_owned_model{model="m"}`,
		"hypermined_gossip_rounds_total",
		"hypermined_replication_pushes_total",
		"hypermined_replication_seconds",
	} {
		if !bytes.Contains(mb, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestReadyRequiresEveryPeer pins the convergence gate: one successful
// gossip round with one arbitrary peer is NOT enough to accept writes
// (a restarted owner that only spoke to a non-owner of its shards
// could fork history); the node flips ready only after syncing with
// every peer.
func TestReadyRequiresEveryPeer(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b", "c"}, 2, 0, nil)
	ctx := context.Background()

	n := f.nodes["a"]
	if err := n.Ready(); err == nil {
		t.Fatal("node ready before any gossip")
	}
	// First round-robin round contacts exactly one of the two peers.
	peer, err := n.Gossip(ctx)
	if err != nil {
		t.Fatalf("gossip with %s: %v", peer, err)
	}
	if err := n.Ready(); err == nil {
		t.Fatalf("node ready after syncing with only one peer (%s) of two", peer)
	}
	// The second round reaches the remaining peer; now every peer has
	// been synced and writes are safe.
	if _, err := n.Gossip(ctx); err != nil {
		t.Fatalf("second gossip: %v", err)
	}
	if err := n.Ready(); err != nil {
		t.Fatalf("node not ready after syncing with every peer: %v", err)
	}
}

// TestForkedWriteNotAcknowledged pins the stale-replication surfacing:
// when a replica already serves a strictly newer generation than the
// one a write produced locally, the push is stale-rejected and the
// client gets a 409 instead of an ack — an acknowledged write can
// never be silently overwritten by gossip afterwards.
func TestForkedWriteNotAcknowledged(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b"}, 2, 0, nil)
	ctx := context.Background()
	if err := f.nodes["a"].GossipAll(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := putSnapshot(f.urls["a"], "m", snapshotBytes(t, 60))
	if err != nil || resp.status != http.StatusOK {
		t.Fatalf("seed PUT: %v %+v", err, resp)
	}
	gen, _ := strconv.ParseInt(resp.gen, 10, 64)

	// Simulate the fleet having moved on without node a noticing: b
	// serves a much newer generation.
	if _, err := f.regs["b"].LoadGenerationContext(ctx, "m", benchfix.ModelWorkload(8, 70), gen+5); err != nil {
		t.Fatal(err)
	}

	// A PUT through a now publishes locally below b's generation; b
	// stale-rejects the push and the ack must become a 409.
	resp, err = putSnapshot(f.urls["a"], "m", snapshotBytes(t, 65))
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != http.StatusConflict {
		t.Fatalf("forked write = %d (%s), want 409", resp.status, resp.body)
	}
	// b's newer generation survived untouched.
	if got := peekGen(f.regs["b"], "m"); got != gen+5 {
		t.Fatalf("replica generation = %d after rejected fork, want %d", got, gen+5)
	}
}

// deleteModel issues DELETE /v1/models/{name} against a node URL.
func deleteModel(t *testing.T, baseURL, name string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, baseURL+"/v1/models/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestDeleteReplicatesAndTombstones pins the delete contract: a fleet
// DELETE reaches every owner synchronously, gossip does not resurrect
// the model from any replica (tombstones ride in digests), and a later
// re-PUT restarts the lineage at a strictly newer generation.
func TestDeleteReplicatesAndTombstones(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b"}, 2, 0, nil)
	ctx := context.Background()
	for _, n := range []string{"a", "b"} {
		if err := f.nodes[n].GossipAll(ctx); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := putSnapshot(f.urls["a"], "m", snapshotBytes(t, 60))
	if err != nil || resp.status != http.StatusOK {
		t.Fatalf("PUT: %v %+v", err, resp)
	}
	gen, _ := strconv.ParseInt(resp.gen, 10, 64)

	if code := deleteModel(t, f.urls["a"], "m"); code != http.StatusOK {
		t.Fatalf("DELETE = %d", code)
	}
	// The delete reached the other owner before the ack.
	if got := peekGen(f.regs["b"], "m"); got != 0 {
		t.Fatalf("replica still serves m at generation %d immediately after DELETE ack", got)
	}

	// Gossip in both directions must not bring the model back.
	for round := 0; round < 2; round++ {
		for _, n := range []string{"a", "b"} {
			if err := f.nodes[n].GossipAll(ctx); err != nil {
				t.Fatalf("gossip round %d on %s: %v", round, n, err)
			}
		}
	}
	if got := peekGen(f.regs["a"], "m"); got != 0 {
		t.Fatalf("gossip resurrected m on a at generation %d", got)
	}
	if got := peekGen(f.regs["b"], "m"); got != 0 {
		t.Fatalf("gossip resurrected m on b at generation %d", got)
	}

	// A replica that somehow regains deleted history (here: loaded
	// behind the node's back) must not leak it back to a tombstoned
	// peer via gossip.
	if _, err := f.regs["b"].LoadGenerationContext(ctx, "m", benchfix.ModelWorkload(8, 60), gen); err != nil {
		t.Fatal(err)
	}
	if err := f.nodes["a"].GossipAll(ctx); err != nil {
		t.Fatalf("gossip: %v", err)
	}
	if got := peekGen(f.regs["a"], "m"); got != 0 {
		t.Fatalf("tombstoned node pulled deleted m back at generation %d", got)
	}

	// Re-creating the model starts a new lineage past the tombstone on
	// every owner.
	resp, err = putSnapshot(f.urls["a"], "m", snapshotBytes(t, 80))
	if err != nil || resp.status != http.StatusOK {
		t.Fatalf("re-PUT: %v %+v", err, resp)
	}
	newGen, _ := strconv.ParseInt(resp.gen, 10, 64)
	if newGen <= gen {
		t.Fatalf("re-created generation %d did not advance past deleted lineage %d", newGen, gen)
	}
	if got := peekGen(f.regs["b"], "m"); got != newGen {
		t.Fatalf("replica serves re-created m at %d, want %d", got, newGen)
	}
}

// TestGossipRespectsEviction pins the LRU interaction: a model the
// resident-cost bound evicted is not pulled straight back by the next
// gossip round (which would thrash the bound forever); a genuinely
// newer write clears the marker and replicates normally.
func TestGossipRespectsEviction(t *testing.T) {
	ctx := context.Background()
	probe := benchfix.ModelWorkload(8, 60)
	edges := probe.H.NumEdges()

	names := []string{"a", "b"}
	f := &testFleet{nodes: map[string]*Node{}, regs: map[string]*registry.Registry{}, urls: map[string]string{}}
	swaps := map[string]*handlerSwap{}
	for _, name := range names {
		sw := &handlerSwap{}
		ts := httptest.NewServer(sw)
		t.Cleanup(ts.Close)
		swaps[name] = sw
		f.urls[name] = ts.URL
	}
	for _, name := range names {
		peers := map[string]string{}
		for _, other := range names {
			if other != name {
				peers[other] = f.urls[other]
			}
		}
		opts := registry.Options{}
		if name == "a" {
			// Bound fits one model (plus slack for derived artifacts)
			// but never two: loading the second evicts the first.
			opts.MaxResidentEdges = edges + edges/2
		}
		reg := registry.New(opts)
		node, err := NewNode(NodeConfig{Name: name, Peers: peers, Replicas: 2}, reg, server.New(reg))
		if err != nil {
			t.Fatal(err)
		}
		node.Start()
		t.Cleanup(node.Stop)
		h := node.Handler()
		swaps[name].h.Store(&h)
		f.nodes[name] = node
		f.regs[name] = reg
	}
	for _, n := range names {
		if err := f.nodes[n].GossipAll(ctx); err != nil {
			t.Fatal(err)
		}
	}

	if r, err := putSnapshot(f.urls["a"], "m1", snapshotBytes(t, 60)); err != nil || r.status != 200 {
		t.Fatalf("PUT m1: %v %+v", err, r)
	}
	gen1 := peekGen(f.regs["a"], "m1")
	if r, err := putSnapshot(f.urls["a"], "m2", snapshotBytes(t, 60)); err != nil || r.status != 200 {
		t.Fatalf("PUT m2: %v %+v", err, r)
	}
	if got := peekGen(f.regs["a"], "m1"); got != 0 {
		t.Fatalf("m1 not evicted on a (generation %d); bound miscalibrated for the test", got)
	}
	if got := peekGen(f.regs["b"], "m1"); got != gen1 {
		t.Fatalf("unbounded replica lost m1 (generation %d, want %d)", got, gen1)
	}

	// Gossip: b still advertises m1, but a must not thrash its bound by
	// re-pulling what it just evicted.
	if err := f.nodes["a"].GossipAll(ctx); err != nil {
		t.Fatalf("gossip: %v", err)
	}
	if got := peekGen(f.regs["a"], "m1"); got != 0 {
		t.Fatalf("gossip re-pulled evicted m1 (generation %d), thrashing the resident bound", got)
	}

	// A NEW write to m1 (routed to the other owner) replicates back in
	// and clears the marker: fresh traffic beats the eviction.
	if r, err := putSnapshot(f.urls["b"], "m1", snapshotBytes(t, 60)); err != nil || r.status != 200 {
		t.Fatalf("PUT m1 via b: %v %+v", err, r)
	}
	newGen := peekGen(f.regs["b"], "m1")
	if newGen <= gen1 {
		t.Fatalf("rewrite generation %d did not advance past %d", newGen, gen1)
	}
	if got := peekGen(f.regs["a"], "m1"); got != newGen {
		t.Fatalf("replication push at newer generation did not land on a: %d, want %d", got, newGen)
	}
}

// TestLifecycleStopWithoutStart pins the construct-then-Stop path: a
// node whose Start was never called (callers bailing out of their own
// setup) must not deadlock in Stop, and both Start and Stop are
// idempotent.
func TestLifecycleStopWithoutStart(t *testing.T) {
	reg := registry.New(registry.Options{})
	node, err := NewNode(NodeConfig{Name: "solo"}, reg, server.New(reg))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		node.Stop()
		node.Stop() // double Stop is safe
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked on a node whose Start was never called")
	}

	reg2 := registry.New(registry.Options{})
	node2, err := NewNode(NodeConfig{Name: "solo2"}, reg2, server.New(reg2))
	if err != nil {
		t.Fatal(err)
	}
	node2.Start()
	node2.Start() // double Start must not panic on double close
	node2.Stop()
	node2.Stop()
}
