package fleet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// scripted is a fake replica endpoint with a swappable response and a
// hit counter.
type scripted struct {
	hits atomic.Int64
	fn   atomic.Pointer[http.HandlerFunc]
}

func (s *scripted) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.hits.Add(1)
	if fn := s.fn.Load(); fn != nil {
		(*fn)(w, r)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *scripted) respond(fn http.HandlerFunc) { s.fn.Store(&fn) }

// newScriptedRouter builds a router over two scripted peers and
// returns it with the peers keyed by ring position for the model "m":
// index 0 is the primary owner, index 1 the secondary.
func newScriptedRouter(t *testing.T) (*Router, string, [2]*scripted) {
	t.Helper()
	backends := map[string]*scripted{"a": {}, "b": {}}
	peers := map[string]string{}
	for name, b := range backends {
		ts := httptest.NewServer(b)
		t.Cleanup(ts.Close)
		peers[name] = ts.URL
	}
	rt, err := NewRouter(RouterConfig{Peers: peers, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	owners := rt.Ring().Owners("m")
	if len(owners) != 2 {
		t.Fatalf("owners(m) = %v, want 2", owners)
	}
	return rt, "m", [2]*scripted{backends[owners[0]], backends[owners[1]]}
}

// do routes one request through the router handler.
func doRoute(t *testing.T, rt *Router, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	return rec
}

// TestRouterReadFailover pins read failover: a 404 from the primary
// (a replica that has not re-pulled the model) moves the read to the
// secondary, whose answer — body, generation header — is relayed.
func TestRouterReadFailover(t *testing.T) {
	rt, model, owners := newScriptedRouter(t)
	owners[0].respond(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown model"}`, http.StatusNotFound)
	})
	owners[1].respond(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Model-Generation", "7")
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"dominators":[]}`)
	})

	rec := doRoute(t, rt, http.MethodGet, "/v1/models/"+model+"/dominators", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("routed read = %d (%s), want 200 via failover", rec.Code, rec.Body)
	}
	if g := rec.Header().Get("X-Model-Generation"); g != "7" {
		t.Errorf("generation header %q not relayed", g)
	}
	if owners[0].hits.Load() != 1 || owners[1].hits.Load() != 1 {
		t.Errorf("hits = %d/%d, want 1/1", owners[0].hits.Load(), owners[1].hits.Load())
	}
}

// TestRouterReadFailover5xx pins that reads also fail over on a 5xx
// replica fault.
func TestRouterReadFailover5xx(t *testing.T) {
	rt, model, owners := newScriptedRouter(t)
	owners[0].respond(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	owners[1].respond(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"rules":[]}`)
	})
	rec := doRoute(t, rt, http.MethodGet, "/v1/models/"+model+"/rules?head=Aa", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("routed read = %d, want 200 via 5xx failover", rec.Code)
	}
}

// TestRouterWriteNoBlindRetry pins the write-safety contract: a plain
// 500 on an :append (the replica may have applied it) is returned
// as-is and never replayed on another owner.
func TestRouterWriteNoBlindRetry(t *testing.T) {
	rt, model, owners := newScriptedRouter(t)
	owners[0].respond(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"mid-append crash"}`, http.StatusInternalServerError)
	})
	rec := doRoute(t, rt, http.MethodPost, "/v1/models/"+model+":append", `{"rows":[[1]]}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("write after primary 500 = %d, want the 500 relayed", rec.Code)
	}
	if owners[1].hits.Load() != 0 {
		t.Fatalf("write was replayed on the secondary after an ambiguous 500 (%d hits)", owners[1].hits.Load())
	}
}

// TestRouterWriteFailoverNotReady pins the explicit safe case: a 503
// carrying X-Fleet-Not-Ready means "definitely not applied", so the
// write moves to the next owner.
func TestRouterWriteFailoverNotReady(t *testing.T) {
	rt, model, owners := newScriptedRouter(t)
	owners[0].respond(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Fleet-Not-Ready", "1")
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"converging"}`, http.StatusServiceUnavailable)
	})
	var gotBody atomic.Pointer[string]
	owners[1].respond(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		s := string(b)
		gotBody.Store(&s)
		w.Header().Set("X-Model-Generation", "3")
		io.WriteString(w, `{"appended":1}`)
	})
	body := `{"rows":[[1,2]]}`
	rec := doRoute(t, rt, http.MethodPost, "/v1/models/"+model+":append", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("write after not-ready 503 = %d, want 200 via failover", rec.Code)
	}
	if got := gotBody.Load(); got == nil || *got != body {
		t.Fatalf("failover replayed body %v, want %q", got, body)
	}
}

// TestRouterWriteFailoverTransport pins that a connection failure (the
// replica process is gone — nothing was applied) fails a write over.
func TestRouterWriteFailoverTransport(t *testing.T) {
	backends := map[string]*scripted{"a": {}, "b": {}}
	peers := map[string]string{}
	servers := map[string]*httptest.Server{}
	for name, b := range backends {
		ts := httptest.NewServer(b)
		t.Cleanup(ts.Close)
		peers[name] = ts.URL
		servers[name] = ts
	}
	rt, err := NewRouter(RouterConfig{Peers: peers, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	owners := rt.Ring().Owners("m")
	servers[owners[0]].Close() // primary dies
	backends[owners[1]].respond(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"appended":2}`)
	})
	rec := doRoute(t, rt, http.MethodPost, "/v1/models/m:append", `{"rows":[[1,2]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("write after primary death = %d (%s), want 200", rec.Code, rec.Body)
	}
	if backends[owners[1]].hits.Load() != 1 {
		t.Fatalf("secondary hits = %d, want 1", backends[owners[1]].hits.Load())
	}
}

// TestRouterAll404 pins answer preference: when every replica gives the
// same real HTTP answer (model truly absent), the router relays it
// instead of masking it as a 502.
func TestRouterAll404(t *testing.T) {
	rt, model, owners := newScriptedRouter(t)
	nf := func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown model"}`, http.StatusNotFound)
	}
	owners[0].respond(nf)
	owners[1].respond(nf)
	rec := doRoute(t, rt, http.MethodGet, "/v1/models/"+model+"/dominators", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("all-404 routed as %d, want 404 relayed", rec.Code)
	}
}

// TestRouterNoReplicaReachable pins the terminal failure: every owner
// unreachable yields 502.
func TestRouterNoReplicaReachable(t *testing.T) {
	tsA := httptest.NewServer(http.NotFoundHandler())
	tsB := httptest.NewServer(http.NotFoundHandler())
	peers := map[string]string{"a": tsA.URL, "b": tsB.URL}
	tsA.Close()
	tsB.Close()
	rt, err := NewRouter(RouterConfig{Peers: peers, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := doRoute(t, rt, http.MethodGet, "/v1/models/m/dominators", "")
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("unreachable fleet routed as %d, want 502", rec.Code)
	}
}

// TestRouterTracePropagation pins that an inbound traceparent is passed
// through to the replica even without a router-side tracer.
func TestRouterTracePropagation(t *testing.T) {
	rt, model, owners := newScriptedRouter(t)
	var seen atomic.Pointer[string]
	owners[0].respond(func(w http.ResponseWriter, r *http.Request) {
		tp := r.Header.Get("traceparent")
		seen.Store(&tp)
		io.WriteString(w, `{}`)
	})
	req := httptest.NewRequest(http.MethodGet, "/v1/models/"+model+"/dominators", nil)
	req.Header.Set("traceparent", "00-0123456789abcdef0123456789abcdef-0000000000000001-01")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if got := seen.Load(); got == nil || !strings.Contains(*got, "0123456789abcdef0123456789abcdef") {
		t.Fatalf("traceparent not propagated: %v", got)
	}
}

// TestRouterBodyBound pins the forwarding memory bound: request bodies
// are buffered (for safe failover replay) only up to MaxBodyBytes, and
// an oversized write is rejected up front instead of ballooning router
// memory.
func TestRouterBodyBound(t *testing.T) {
	backends := map[string]*scripted{"a": {}, "b": {}}
	peers := map[string]string{}
	for name, b := range backends {
		ts := httptest.NewServer(b)
		t.Cleanup(ts.Close)
		peers[name] = ts.URL
	}
	rt, err := NewRouter(RouterConfig{Peers: peers, Replicas: 2, MaxBodyBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}

	rec := doRoute(t, rt, http.MethodPut, "/v1/models/m", strings.Repeat("x", 2<<10))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d (%s), want 413", rec.Code, rec.Body)
	}
	for name, b := range backends {
		if b.hits.Load() != 0 {
			t.Errorf("backend %s reached %d times by a rejected oversized write", name, b.hits.Load())
		}
	}

	rec = doRoute(t, rt, http.MethodPut, "/v1/models/m", strings.Repeat("x", 1<<9))
	if rec.Code != http.StatusOK {
		t.Fatalf("in-bound body = %d, want 200", rec.Code)
	}
}

// TestRouterStreamsLargeResponse pins that replica responses are
// relayed without the router materialising them: a response larger
// than every internal buffering bound arrives intact.
func TestRouterStreamsLargeResponse(t *testing.T) {
	rt, model, owners := newScriptedRouter(t)
	const size = maxRetainedErrorBody * 4
	owners[0].respond(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Model-Generation", "3")
		io.CopyN(w, strings.NewReader(strings.Repeat("y", size)), size)
	})
	rec := doRoute(t, rt, http.MethodGet, "/v1/models/"+model+"/dominators", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("streamed read = %d, want 200", rec.Code)
	}
	if rec.Body.Len() != size {
		t.Fatalf("relayed %d bytes, want %d", rec.Body.Len(), size)
	}
	if g := rec.Header().Get("X-Model-Generation"); g != "3" {
		t.Errorf("generation header %q not relayed on streamed path", g)
	}
}
