// Package fleet implements horizontal scale for hypermined: a
// consistent-hash ring mapping model names onto replica sets, snapshot
// replication between nodes over the binary codec (CRC-checked end to
// end, published under the originating generation so
// X-Model-Generation stays coherent fleet-wide), generation-numbered
// gossip so hot-swaps and appends propagate to lagging replicas, and a
// router that forwards model-scoped queries to an owning replica with
// failover.
//
// The package is deliberately layered on the existing single-process
// pieces: a fleet Node wraps a registry.Registry plus a server.Server
// and adds the replication/gossip endpoints under /fleet/; the Router
// is a standalone handler that speaks the same /v1/models API to
// clients. Correctness on a fleet is proven by the deterministic
// multi-node simulation harness in internal/fleet/sim, which
// byte-identity-checks every routed answer against a single-node
// reference across node kills, restarts, and lagging gossip.
package fleet

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per physical node. 128
// vnodes keep the max/min key share across nodes within the bound the
// ring tests pin (max/min <= 2.0 for realistic fleet sizes).
const DefaultVNodes = 128

// DefaultReplicas is the default replication factor R: each model name
// maps to R distinct nodes (owner first, then failover order).
const DefaultReplicas = 2

// Ring is an immutable consistent-hash ring: each node contributes
// vnodes points on a 64-bit circle, and a key is owned by the first R
// distinct nodes at or clockwise of its hash. Immutability keeps the
// read path lock-free — membership changes build a new Ring (With /
// Without) that callers publish atomically; consistent hashing makes
// the rebuild minimal-movement (a join or leave remaps only ~K/N of
// the keys, which the ring tests verify).
type Ring struct {
	vnodes   int
	replicas int
	nodes    []string // sorted, distinct
	points   []point  // sorted by hash, ties broken by node
}

// point is one virtual node: a position on the circle and the index of
// its physical node in Ring.nodes.
type point struct {
	hash uint64
	node int32
}

// NewRing builds a ring over the given nodes. vnodes <= 0 uses
// DefaultVNodes; replicas <= 0 uses DefaultReplicas. Duplicate node
// names collapse; replicas is clamped to the node count at lookup
// time, so a two-node ring with R=3 simply yields both nodes.
func NewRing(vnodes, replicas int, nodes []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	set := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != "" && !set[n] {
			set[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, replicas: replicas, nodes: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for ni, n := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(n + "#" + strconv.Itoa(v)), node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare at 64 bits) break on node index so
		// the ring is deterministic regardless of input order.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring membership, sorted. Callers must not mutate.
func (r *Ring) Nodes() []string { return r.nodes }

// VNodes returns the virtual-node count per physical node.
func (r *Ring) VNodes() int { return r.vnodes }

// Replicas returns the configured replication factor R.
func (r *Ring) Replicas() int { return r.replicas }

// With returns a ring with node added (or r itself if already present).
func (r *Ring) With(node string) *Ring {
	for _, n := range r.nodes {
		if n == node {
			return r
		}
	}
	return NewRing(r.vnodes, r.replicas, append(append([]string{}, r.nodes...), node))
}

// Without returns a ring with node removed (or r itself if absent).
func (r *Ring) Without(node string) *Ring {
	keep := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			keep = append(keep, n)
		}
	}
	if len(keep) == len(r.nodes) {
		return r
	}
	return NewRing(r.vnodes, r.replicas, keep)
}

// Owner returns the primary owner of key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.OwnersAppend(key, nil)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns the replica set of key: min(R, len(nodes)) distinct
// nodes, primary owner first, in clockwise failover order.
func (r *Ring) Owners(key string) []string {
	return r.OwnersAppend(key, nil)
}

// OwnersAppend appends the replica set of key to dst and returns it,
// letting hot callers reuse a scratch slice.
func (r *Ring) OwnersAppend(key string, dst []string) []string {
	if len(r.nodes) == 0 {
		return dst
	}
	want := r.replicas
	if want > len(r.nodes) {
		want = len(r.nodes)
	}
	h := hash64(key)
	// First point at or clockwise of h; wrap to 0 past the last point.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	start := len(dst)
	var seen uint64 // bitset over node indices; fleets are far under 64 nodes
	for scanned := 0; scanned < len(r.points) && len(dst)-start < want; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if len(r.nodes) <= 64 {
			if seen&(1<<uint(p.node)) != 0 {
				continue
			}
			seen |= 1 << uint(p.node)
		} else if containsStr(dst[start:], r.nodes[p.node]) {
			continue
		}
		dst = append(dst, r.nodes[p.node])
	}
	return dst
}

// Owns reports whether node is in key's replica set.
func (r *Ring) Owns(key, node string) bool {
	return containsStr(r.OwnersAppend(key, nil), node)
}

func containsStr(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// String describes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d nodes, %d vnodes, R=%d)", len(r.nodes), r.vnodes, r.replicas)
}

// hash64 is FNV-1a 64 over s, inlined so ring lookups on the router's
// hot path perform no allocation (hash/fnv's Writer interface boxes).
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	// A final avalanche (splitmix64 finisher) spreads short similar
	// keys ("node#0".."node#127") uniformly around the circle; raw
	// FNV-1a leaves low-entropy suffixes clustered.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
