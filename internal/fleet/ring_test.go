package fleet

import (
	"fmt"
	"testing"
)

// ringKeys builds a deterministic key population large enough for the
// balance statistics to be meaningful.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%d", i)
	}
	return keys
}

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node-%d", i)
	}
	return names
}

// TestRingBalance pins the documented balance bound: at >= 128 vnodes,
// the max/min primary-owner key share across nodes stays within 2.0x
// for fleet sizes 2..8 over a 20k-key population. (The expected
// imbalance of consistent hashing at 128 vnodes is ~±15%; 2.0x is the
// loose, stable bound we promise in the README.)
func TestRingBalance(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{2, 3, 5, 8} {
		r := NewRing(128, 2, nodeNames(n))
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d nodes own keys", n, len(counts))
		}
		min, max := len(keys), 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		ratio := float64(max) / float64(min)
		t.Logf("n=%d: min=%d max=%d ratio=%.2f", n, min, max, ratio)
		if ratio > 2.0 {
			t.Errorf("n=%d nodes at 128 vnodes: max/min key share %.2f > 2.0 (min %d, max %d)", n, ratio, min, max)
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing contract: adding
// a node to an N-node ring remaps only ~K/(N+1) primary owners (we
// allow 2x slack), and removing it remaps exactly the keys it owned.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{3, 5} {
		base := NewRing(128, 2, nodeNames(n))
		before := make([]string, len(keys))
		for i, k := range keys {
			before[i] = base.Owner(k)
		}

		grown := base.With("joiner")
		moved, toJoiner := 0, 0
		for i, k := range keys {
			after := grown.Owner(k)
			if after != before[i] {
				moved++
				if after == "joiner" {
					toJoiner++
				}
			}
		}
		expect := len(keys) / (n + 1)
		if moved > 2*expect {
			t.Errorf("n=%d join: %d keys moved, want <= %d (2x K/(N+1))", n, moved, 2*expect)
		}
		if moved != toJoiner {
			t.Errorf("n=%d join: %d keys moved but only %d to the joiner — join must never shuffle keys between survivors", n, moved, toJoiner)
		}

		shrunk := grown.Without("joiner")
		for i, k := range keys {
			if shrunk.Owner(k) != before[i] {
				t.Fatalf("n=%d leave: key %s owner changed vs the pre-join ring — leave must restore the original assignment", n, k)
			}
		}
	}
}

// TestRingReplicaSets pins the replica-set contract: R distinct nodes,
// primary first, clamped to the membership size, deterministic across
// input orderings.
func TestRingReplicaSets(t *testing.T) {
	r := NewRing(128, 3, []string{"c", "a", "b", "a"})
	if got := len(r.Nodes()); got != 3 {
		t.Fatalf("duplicate nodes not collapsed: %d", got)
	}
	for _, k := range ringKeys(200) {
		owners := r.Owners(k)
		if len(owners) != 3 {
			t.Fatalf("key %s: %d owners, want 3", k, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner %s in %v", k, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("key %s: Owner %s != Owners[0] %s", k, r.Owner(k), owners[0])
		}
		if !r.Owns(k, owners[1]) || r.Owns(k, "nope") {
			t.Fatalf("key %s: Owns disagrees with Owners", k)
		}
	}

	// R larger than membership clamps.
	small := NewRing(64, 5, []string{"x", "y"})
	if got := small.Owners("anything"); len(got) != 2 {
		t.Fatalf("R=5 over 2 nodes: %d owners, want 2", len(got))
	}

	// Determinism across input orderings.
	a := NewRing(128, 2, []string{"a", "b", "c"})
	b := NewRing(128, 2, []string{"c", "b", "a"})
	for _, k := range ringKeys(500) {
		ao, bo := a.Owners(k), b.Owners(k)
		if len(ao) != len(bo) {
			t.Fatalf("key %s: owner count differs across input order", k)
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("key %s: owners differ across input order: %v vs %v", k, ao, bo)
			}
		}
	}

	// Empty ring is safe.
	empty := NewRing(0, 0, nil)
	if empty.Owner("k") != "" || len(empty.Owners("k")) != 0 {
		t.Fatal("empty ring must own nothing")
	}
}

// TestRingOwnersAppendReuse: the scratch-reusing form appends to dst
// without clobbering existing contents.
func TestRingOwnersAppendReuse(t *testing.T) {
	r := NewRing(64, 2, []string{"a", "b", "c"})
	scratch := make([]string, 0, 4)
	scratch = append(scratch, "sentinel")
	scratch = r.OwnersAppend("model-1", scratch)
	if scratch[0] != "sentinel" || len(scratch) != 3 {
		t.Fatalf("OwnersAppend mangled dst: %v", scratch)
	}
}
