package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hypermine/internal/core"
	"hypermine/internal/registry"
	"hypermine/internal/server"
	"hypermine/internal/telemetry"
)

// maxReplicateBytes bounds a replicated snapshot body, matching the
// server's own PUT bound.
const maxReplicateBytes = 1 << 30

// NodeConfig configures one fleet member.
type NodeConfig struct {
	// Name is this node's ring name; it must not appear in Peers.
	Name string
	// Peers maps the other nodes' ring names to their base URLs
	// (scheme://host:port, no trailing slash).
	Peers map[string]string
	// Replicas is the replication factor R over the whole membership
	// (this node + peers); 0 means DefaultReplicas.
	Replicas int
	// VNodes is the virtual-node count; 0 means DefaultVNodes.
	VNodes int
	// GossipInterval is the period of the background gossip loop.
	// <= 0 disables the loop; gossip then runs only when Gossip is
	// called explicitly (the deterministic sim drives it that way).
	GossipInterval time.Duration
	// Client is the HTTP client for replication pushes, gossip
	// exchanges, and snapshot pulls. Nil uses a dedicated client with
	// sane timeouts.
	Client *http.Client
	// Logger receives structured fleet events. Nil discards.
	Logger *slog.Logger
}

// peerState is the gossip-observed condition of one peer.
type peerState struct {
	ok     atomic.Bool  // last contact succeeded
	tried  atomic.Bool  // contacted at least once
	lastNs atomic.Int64 // monotonic-ish wall clock of last successful contact
}

// Node turns a single-process hypermined (registry + server) into a
// fleet member: it owns a shard of the model-name space per the
// consistent-hash ring, synchronously replicates every accepted write
// (PUT snapshot, :append) to the other owners before acknowledging,
// serves the /fleet/ replication + gossip endpoints, and runs the
// gossip loop that lets a lagging or freshly restarted replica detect
// and repair missing generations.
type Node struct {
	cfg    NodeConfig
	reg    *registry.Registry
	srv    *server.Server
	inner  http.Handler
	mux    *http.ServeMux
	ring   *Ring
	client *http.Client
	logger *slog.Logger

	peers     map[string]*peerState // keyed by peer name; set at construction
	peerNames []string              // sorted, for deterministic iteration
	nextPeer  atomic.Int64          // round-robin cursor for gossip

	gossipRounds *telemetry.Counter
	replPushes   *telemetry.Counter
	replPushErrs *telemetry.Counter
	replPulls    *telemetry.Counter
	replHist     *telemetry.Histogram

	converged atomic.Bool // first gossip round completed (or no peers)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewNode wires a fleet node around an existing registry and server.
// It registers the fleet counters in the server's shared telemetry
// registry (so the /stats–/metrics parity contract covers them), adds
// the "fleet" /stats section and the labeled peer-state gauge, and
// installs the readiness probe (ready after the first gossip round).
// Call Start to run the background gossip loop, Handler for the
// fleet-aware HTTP handler, and Stop on shutdown.
func NewNode(cfg NodeConfig, reg *registry.Registry, srv *server.Server) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("fleet: node name required")
	}
	if _, ok := cfg.Peers[cfg.Name]; ok {
		return nil, fmt.Errorf("fleet: node %q lists itself as a peer", cfg.Name)
	}
	members := make([]string, 0, len(cfg.Peers)+1)
	members = append(members, cfg.Name)
	for name, url := range cfg.Peers {
		if name == "" || url == "" {
			return nil, errors.New("fleet: peer entries need both name and url")
		}
		members = append(members, name)
	}
	sort.Strings(members)
	n := &Node{
		cfg:    cfg,
		reg:    reg,
		srv:    srv,
		inner:  srv.Handler(),
		ring:   NewRing(cfg.VNodes, cfg.Replicas, members),
		client: cfg.Client,
		logger: cfg.Logger,
		peers:  make(map[string]*peerState, len(cfg.Peers)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if n.client == nil {
		n.client = &http.Client{Timeout: 30 * time.Second}
	}
	if n.logger == nil {
		n.logger = slog.New(slog.DiscardHandler)
	}
	for name := range cfg.Peers {
		n.peers[name] = &peerState{}
		n.peerNames = append(n.peerNames, name)
	}
	sort.Strings(n.peerNames)

	tel := srv.Telemetry()
	n.gossipRounds = tel.Counter("hypermined_gossip_rounds_total", "gossip_rounds",
		"Gossip rounds initiated by this node (one peer exchange each).")
	n.replPushes = tel.Counter("hypermined_replication_pushes_total", "replication_pushes",
		"Snapshot replication pushes to peer replicas after accepted writes.")
	n.replPushErrs = tel.Counter("hypermined_replication_push_errors_total", "replication_push_errors",
		"Replication pushes that failed (gossip repairs the lag later).")
	n.replPulls = tel.Counter("hypermined_replication_pulls_total", "replication_pulls",
		"Snapshots pulled from peers because gossip showed this replica lagging.")
	n.replHist = tel.Histogram("hypermined_replication_seconds",
		"Wall time to replicate one accepted write to all peer replicas (serialize + push).", "")

	srv.SetReadiness(n.Ready)
	srv.RegisterStatsSection("fleet", n.statsSection)
	srv.RegisterMetricsExtra(n.writeMetrics)

	n.mux = http.NewServeMux()
	n.mux.HandleFunc("GET /fleet/digest", n.handleDigest)
	n.mux.HandleFunc("POST /fleet/gossip", n.handleGossip)
	n.mux.HandleFunc("GET /fleet/snapshot/{name}", n.handleSnapshot)
	n.mux.HandleFunc("PUT /fleet/replicate/{name}", n.handleReplicate)
	n.mux.HandleFunc("/", n.handleAPI)

	if len(n.peers) == 0 {
		n.converged.Store(true)
	}
	return n, nil
}

// Name returns the node's ring name.
func (n *Node) Name() string { return n.cfg.Name }

// Ring returns the (static-membership) consistent-hash ring.
func (n *Node) Ring() *Ring { return n.ring }

// Ready implements the readiness probe: a node is ready once its first
// gossip round has completed (a freshly restarted replica must not
// serve reads before it has had one chance to discover how far it
// lags). A node with no peers is trivially ready.
func (n *Node) Ready() error {
	if !n.converged.Load() {
		return errors.New("fleet: gossip not yet converged")
	}
	return nil
}

// Handler returns the fleet-aware HTTP handler: /fleet/ endpoints plus
// the underlying server API with write replication spliced in.
func (n *Node) Handler() http.Handler { return n.mux }

// Start runs the background gossip loop when GossipInterval > 0; it
// returns immediately. With a non-positive interval (the deterministic
// sim), Start only marks the no-peer case converged and the caller
// drives Gossip explicitly.
func (n *Node) Start() {
	if n.cfg.GossipInterval <= 0 {
		close(n.done)
		return
	}
	go n.gossipLoop()
}

// Stop terminates the gossip loop and waits for it to exit.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	<-n.done
}

func (n *Node) gossipLoop() {
	defer close(n.done)
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	// One immediate round so readiness does not wait a full interval.
	n.Gossip(context.Background())
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.Gossip(context.Background())
		}
	}
}

// digest is the gossip exchange unit: who is speaking and the
// generation of every model it serves.
type digest struct {
	Node   string           `json:"node"`
	Models map[string]int64 `json:"models"`
}

// localDigest snapshots this node's {model: generation} vector.
func (n *Node) localDigest() digest {
	d := digest{Node: n.cfg.Name, Models: map[string]int64{}}
	for _, name := range n.reg.Names() {
		if sv := n.reg.Peek(name); sv != nil {
			d.Models[name] = sv.Generation()
			sv.Release()
		}
	}
	return d
}

// Gossip runs one push-pull round with the next peer (round-robin):
// send the local digest, receive the peer's, and synchronously pull
// any owned model the peer serves at a newer generation. It returns
// the name of the peer contacted ("" with no peers) and the exchange
// error, and marks the node converged on the first completed round.
func (n *Node) Gossip(ctx context.Context) (string, error) {
	if len(n.peerNames) == 0 {
		n.converged.Store(true)
		return "", nil
	}
	peer := n.peerNames[int(n.nextPeer.Add(1)-1)%len(n.peerNames)]
	err := n.gossipWith(ctx, peer)
	n.gossipRounds.Inc()
	n.notePeer(peer, err == nil)
	if err == nil {
		n.converged.Store(true)
	}
	return peer, err
}

// GossipAll runs one round against every peer (the sim uses it to
// force convergence at a barrier); it reports the first error.
func (n *Node) GossipAll(ctx context.Context) error {
	var first error
	for _, peer := range n.peerNames {
		err := n.gossipWith(ctx, peer)
		n.gossipRounds.Inc()
		n.notePeer(peer, err == nil)
		if err == nil {
			n.converged.Store(true)
		} else if first == nil {
			first = err
		}
	}
	if len(n.peerNames) == 0 {
		n.converged.Store(true)
	}
	return first
}

func (n *Node) gossipWith(ctx context.Context, peer string) error {
	base := n.cfg.Peers[peer]
	body, err := json.Marshal(n.localDigest())
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/fleet/gossip", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("fleet: gossip with %s: %s", peer, resp.Status)
	}
	var theirs digest
	if err := json.NewDecoder(resp.Body).Decode(&theirs); err != nil {
		return err
	}
	return n.pullLagging(ctx, peer, theirs)
}

// pullLagging compares a peer digest against local state and pulls
// every model this node owns but serves at an older generation (or not
// at all). Pulls are synchronous: when this returns nil the node is
// caught up to everything the digest advertised.
func (n *Node) pullLagging(ctx context.Context, peer string, theirs digest) error {
	names := make([]string, 0, len(theirs.Models))
	for name := range theirs.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	var firstErr error
	for _, name := range names {
		gen := theirs.Models[name]
		if !n.ring.Owns(name, n.cfg.Name) {
			continue // pull-iff-owner: don't mirror shards we don't serve
		}
		var local int64
		if sv := n.reg.Peek(name); sv != nil {
			local = sv.Generation()
			sv.Release()
		}
		if local >= gen {
			continue
		}
		if err := n.pullSnapshot(ctx, peer, name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// pullSnapshot fetches a model snapshot from a peer and publishes it
// under the generation the peer serves it at.
func (n *Node) pullSnapshot(ctx context.Context, peer, name string) error {
	base := n.cfg.Peers[peer]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/fleet/snapshot/"+name, nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("fleet: pull %s from %s: %s", name, peer, resp.Status)
	}
	gen, err := strconv.ParseInt(resp.Header.Get("X-Model-Generation"), 10, 64)
	if err != nil || gen <= 0 {
		return fmt.Errorf("fleet: pull %s from %s: bad generation header", name, peer)
	}
	m, err := core.ReadSnapshot(resp.Body)
	if err != nil {
		return fmt.Errorf("fleet: pull %s from %s: %w", name, peer, err)
	}
	info, err := n.reg.LoadGenerationContext(ctx, name, m, gen)
	if err != nil {
		return err
	}
	n.replPulls.Inc()
	n.logger.LogAttrs(ctx, slog.LevelInfo, "fleet pulled model",
		slog.String("model", name), slog.String("peer", peer),
		slog.Int64("generation", gen), slog.Bool("stale", info.Stale))
	return nil
}

// notePeer records the outcome of a peer contact for the peer-state
// gauge and /stats.
func (n *Node) notePeer(peer string, ok bool) {
	ps := n.peers[peer]
	if ps == nil {
		return
	}
	ps.tried.Store(true)
	ps.ok.Store(ok)
	if ok {
		ps.lastNs.Store(time.Now().UnixNano())
	}
}

// handleDigest serves this node's {model: generation} vector.
func (n *Node) handleDigest(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.localDigest())
}

// handleGossip is the receiving half of a push-pull round: pull
// everything the sender has newer (for shards we own) before
// responding with our own digest, so one exchange converges both
// parties on the union of their knowledge.
func (n *Node) handleGossip(w http.ResponseWriter, r *http.Request) {
	var theirs digest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&theirs); err != nil {
		http.Error(w, "bad digest: "+err.Error(), http.StatusBadRequest)
		return
	}
	if _, known := n.cfg.Peers[theirs.Node]; known {
		// Sender is a configured peer: catch up from it synchronously.
		// Errors are non-fatal — the reply digest still lets the sender
		// catch up from us, and the next round retries the pull.
		if err := n.pullLagging(r.Context(), theirs.Node, theirs); err != nil {
			n.logger.LogAttrs(r.Context(), slog.LevelWarn, "fleet gossip pull failed",
				slog.String("peer", theirs.Node), slog.String("error", err.Error()))
		}
		n.notePeer(theirs.Node, true)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.localDigest())
}

// handleSnapshot streams the named model as a binary snapshot with its
// serving generation in X-Model-Generation — the pull half of both
// replication repair and gossip catch-up.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sv := n.reg.Peek(name)
	if sv == nil {
		http.Error(w, "unknown model "+strconv.Quote(name), http.StatusNotFound)
		return
	}
	defer sv.Release()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Model-Generation", strconv.FormatInt(sv.Generation(), 10))
	if err := core.WriteSnapshot(w, sv.Model(), core.SaveOptions{}); err != nil {
		n.logger.LogAttrs(r.Context(), slog.LevelWarn, "fleet snapshot stream failed",
			slog.String("model", name), slog.String("error", err.Error()))
	}
}

// handleReplicate is the receiving half of a replication push: decode
// the snapshot and publish it under the originating generation named
// by X-Model-Generation. Stale deliveries are acknowledged as no-ops
// (idempotent), so push retries and gossip races are harmless.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	gen, err := strconv.ParseInt(r.Header.Get("X-Model-Generation"), 10, 64)
	if err != nil || gen <= 0 {
		http.Error(w, "missing or bad X-Model-Generation", http.StatusBadRequest)
		return
	}
	m, err := core.ReadSnapshot(http.MaxBytesReader(w, r.Body, maxReplicateBytes))
	if err != nil {
		http.Error(w, "snapshot: "+err.Error(), http.StatusBadRequest)
		return
	}
	info, err := n.reg.LoadGenerationContext(r.Context(), name, m, gen)
	if err != nil {
		http.Error(w, "load: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Model-Generation", strconv.FormatInt(info.Generation, 10))
	_ = json.NewEncoder(w).Encode(map[string]any{
		"name": name, "generation": info.Generation, "stale": info.Stale,
	})
}

// writeTarget classifies an API request as a fleet-replicated write
// and extracts the model name: PUT /v1/models/{name} and
// POST /v1/models/{name}:append. Everything else returns "".
func writeTarget(r *http.Request) string {
	const prefix = "/v1/models/"
	if !strings.HasPrefix(r.URL.Path, prefix) {
		return ""
	}
	rest := r.URL.Path[len(prefix):]
	if rest == "" || strings.Contains(rest, "/") {
		return ""
	}
	switch r.Method {
	case http.MethodPut:
		if !strings.Contains(rest, ":") {
			return rest
		}
	case http.MethodPost:
		if name, ok := strings.CutSuffix(rest, ":append"); ok && name != "" {
			return name
		}
	}
	return ""
}

// bufResponse buffers an inner handler's response so replication can
// run between the write being applied and the client seeing the ack.
type bufResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newBufResponse() *bufResponse {
	return &bufResponse{header: make(http.Header), status: http.StatusOK}
}

func (b *bufResponse) Header() http.Header         { return b.header }
func (b *bufResponse) WriteHeader(code int)        { b.status = code }
func (b *bufResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

// flush copies the buffered response to the real writer.
func (b *bufResponse) flush(w http.ResponseWriter) {
	h := w.Header()
	for k, vs := range b.header {
		h[k] = vs
	}
	w.WriteHeader(b.status)
	_, _ = w.Write(b.body.Bytes())
}

// handleAPI serves the underlying single-process API, splicing
// synchronous replication into accepted writes: the inner handler's
// response is buffered, and only after the resulting snapshot has been
// pushed to the model's other owners does the acknowledgement reach
// the client. A peer push that fails (node down) is counted and
// logged, not fatal — the write is durable on this node and gossip
// repairs the lagging replica; the ack therefore means "applied here,
// replication attempted everywhere".
func (n *Node) handleAPI(w http.ResponseWriter, r *http.Request) {
	name := writeTarget(r)
	if name == "" {
		n.inner.ServeHTTP(w, r)
		return
	}
	if err := n.Ready(); err != nil {
		// A restarted replica that has not gossiped yet may lag the
		// fleet; accepting a write here could assign an already-used
		// generation and fork the model. Refuse explicitly — the
		// X-Fleet-Not-Ready marker tells the router the write was
		// definitely not applied, so failing over to a converged owner
		// is unambiguous and safe.
		w.Header().Set("X-Fleet-Not-Ready", "1")
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\"error\":%q}\n", "fleet: node not ready for writes: "+err.Error())
		return
	}
	buf := newBufResponse()
	n.inner.ServeHTTP(buf, r)
	if buf.status >= 200 && buf.status < 300 {
		n.replicate(r.Context(), name)
	}
	buf.flush(w)
}

// replicate pushes the current snapshot of name to every other owner
// in its replica set.
func (n *Node) replicate(ctx context.Context, name string) {
	owners := n.ring.Owners(name)
	var targets []string
	for _, o := range owners {
		if o != n.cfg.Name {
			targets = append(targets, o)
		}
	}
	if len(targets) == 0 {
		return
	}
	sv := n.reg.Peek(name)
	if sv == nil {
		return // removed in the races between ack and replication; nothing to push
	}
	gen := sv.Generation()
	var snap bytes.Buffer
	err := core.WriteSnapshot(&snap, sv.Model(), core.SaveOptions{})
	sv.Release()
	if err != nil {
		n.replPushErrs.Inc()
		n.logger.LogAttrs(ctx, slog.LevelError, "fleet replication serialize failed",
			slog.String("model", name), slog.String("error", err.Error()))
		return
	}
	start := time.Now()
	for _, peer := range targets {
		if err := n.pushSnapshot(ctx, peer, name, gen, snap.Bytes()); err != nil {
			n.replPushErrs.Inc()
			n.notePeer(peer, false)
			n.logger.LogAttrs(ctx, slog.LevelWarn, "fleet replication push failed",
				slog.String("model", name), slog.String("peer", peer),
				slog.Int64("generation", gen), slog.String("error", err.Error()))
			continue
		}
		n.replPushes.Inc()
		n.notePeer(peer, true)
	}
	n.replHist.Observe(time.Since(start))
}

// pushSnapshot PUTs one snapshot to a peer's replicate endpoint.
func (n *Node) pushSnapshot(ctx context.Context, peer, name string, gen int64, snap []byte) error {
	base, ok := n.cfg.Peers[peer]
	if !ok {
		return fmt.Errorf("fleet: unknown peer %q", peer)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, base+"/fleet/replicate/"+name, bytes.NewReader(snap))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Model-Generation", strconv.FormatInt(gen, 10))
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: replicate %s@%d to %s: %s", name, gen, peer, resp.Status)
	}
	return nil
}

// fleetModelStat labels one resident model with its replica set.
type fleetModelStat struct {
	Owner    string   `json:"owner"`
	Replicas []string `json:"replicas"`
	Local    bool     `json:"local_is_owner"`
}

// statsSection renders the "fleet" /stats key: membership, peer
// states, and per-model owner/replica labels.
func (n *Node) statsSection() any {
	peerOut := make(map[string]string, len(n.peers))
	for _, name := range n.peerNames {
		peerOut[name] = n.peerStateName(name)
	}
	models := map[string]fleetModelStat{}
	for _, name := range n.reg.Names() {
		owners := n.ring.Owners(name)
		owner := ""
		if len(owners) > 0 {
			owner = owners[0]
		}
		models[name] = fleetModelStat{
			Owner:    owner,
			Replicas: owners,
			Local:    owner == n.cfg.Name,
		}
	}
	return map[string]any{
		"node":     n.cfg.Name,
		"ring":     n.ring.String(),
		"replicas": n.ring.Replicas(),
		"vnodes":   n.ring.VNodes(),
		"ready":    n.Ready() == nil,
		"peers":    peerOut,
		"models":   models,
	}
}

// peerStateName maps a peer's tracked state onto the gauge vocabulary.
func (n *Node) peerStateName(peer string) string {
	ps := n.peers[peer]
	switch {
	case ps == nil || !ps.tried.Load():
		return "unknown"
	case ps.ok.Load():
		return "up"
	}
	return "down"
}

// writeMetrics emits the labeled fleet gauges the flat counter
// registry cannot express: hypermined_fleet_peers{state} and the
// per-model ownership gauge.
func (n *Node) writeMetrics(w io.Writer) {
	counts := map[string]int{"up": 0, "down": 0, "unknown": 0}
	for _, name := range n.peerNames {
		counts[n.peerStateName(name)]++
	}
	fmt.Fprintf(w, "# HELP hypermined_fleet_peers Configured peers by gossip-observed state.\n# TYPE hypermined_fleet_peers gauge\n")
	for _, state := range []string{"up", "down", "unknown"} {
		fmt.Fprintf(w, "hypermined_fleet_peers{state=%q} %d\n", state, counts[state])
	}
	fmt.Fprintf(w, "# HELP hypermined_fleet_owned_model Resident models this node is in the replica set of (1 primary owner, 0 replica).\n# TYPE hypermined_fleet_owned_model gauge\n")
	for _, name := range n.reg.Names() { // sorted by the registry
		if !n.ring.Owns(name, n.cfg.Name) {
			continue
		}
		v := 0
		if n.ring.Owner(name) == n.cfg.Name {
			v = 1
		}
		fmt.Fprintf(w, "hypermined_fleet_owned_model{model=%q} %d\n", name, v)
	}
}
