package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hypermine/internal/core"
	"hypermine/internal/registry"
	"hypermine/internal/server"
	"hypermine/internal/telemetry"
)

// maxReplicateBytes bounds a replicated snapshot body, matching the
// server's own PUT bound.
const maxReplicateBytes = 1 << 30

// NodeConfig configures one fleet member.
type NodeConfig struct {
	// Name is this node's ring name; it must not appear in Peers.
	Name string
	// Peers maps the other nodes' ring names to their base URLs
	// (scheme://host:port, no trailing slash).
	Peers map[string]string
	// Replicas is the replication factor R over the whole membership
	// (this node + peers); 0 means DefaultReplicas.
	Replicas int
	// VNodes is the virtual-node count; 0 means DefaultVNodes.
	VNodes int
	// GossipInterval is the period of the background gossip loop.
	// <= 0 disables the loop; gossip then runs only when Gossip is
	// called explicitly (the deterministic sim drives it that way).
	GossipInterval time.Duration
	// Client is the HTTP client for replication pushes, gossip
	// exchanges, and snapshot pulls. Nil uses a dedicated client with
	// sane timeouts.
	Client *http.Client
	// Logger receives structured fleet events. Nil discards.
	Logger *slog.Logger
}

// peerState is the gossip-observed condition of one peer.
type peerState struct {
	ok     atomic.Bool  // last contact succeeded
	tried  atomic.Bool  // contacted at least once
	synced atomic.Bool  // one full gossip exchange completed since this process started
	lastNs atomic.Int64 // monotonic-ish wall clock of last successful contact
}

// Node turns a single-process hypermined (registry + server) into a
// fleet member: it owns a shard of the model-name space per the
// consistent-hash ring, synchronously replicates every accepted write
// (PUT snapshot, :append) to the other owners before acknowledging,
// serves the /fleet/ replication + gossip endpoints, and runs the
// gossip loop that lets a lagging or freshly restarted replica detect
// and repair missing generations.
type Node struct {
	cfg    NodeConfig
	reg    *registry.Registry
	srv    *server.Server
	inner  http.Handler
	mux    *http.ServeMux
	ring   *Ring
	client *http.Client
	logger *slog.Logger

	peers     map[string]*peerState // keyed by peer name; set at construction
	peerNames []string              // sorted, for deterministic iteration
	nextPeer  atomic.Int64          // round-robin cursor for gossip

	gossipRounds *telemetry.Counter
	replPushes   *telemetry.Counter
	replPushErrs *telemetry.Counter
	replPulls    *telemetry.Counter
	pullSkips    *telemetry.Counter
	replHist     *telemetry.Histogram

	converged atomic.Bool // every peer synced at least once (or no peers)

	// mu guards the delete-tombstone and eviction-marker maps. Both are
	// consulted by gossip so it neither resurrects a deleted model nor
	// re-pulls one the local LRU just evicted (which would thrash the
	// resident-cost bound forever).
	mu         sync.Mutex
	tombs      map[string]int64 // deleted model -> generation the delete observed
	evictedGen map[string]int64 // LRU-evicted model -> generation at eviction

	started  atomic.Bool
	stopOnce sync.Once
	doneOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewNode wires a fleet node around an existing registry and server.
// It registers the fleet counters in the server's shared telemetry
// registry (so the /stats–/metrics parity contract covers them), adds
// the "fleet" /stats section and the labeled peer-state gauge, and
// installs the readiness probe (ready after a successful gossip
// exchange with every peer).
// Call Start to run the background gossip loop, Handler for the
// fleet-aware HTTP handler, and Stop on shutdown.
func NewNode(cfg NodeConfig, reg *registry.Registry, srv *server.Server) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("fleet: node name required")
	}
	if _, ok := cfg.Peers[cfg.Name]; ok {
		return nil, fmt.Errorf("fleet: node %q lists itself as a peer", cfg.Name)
	}
	members := make([]string, 0, len(cfg.Peers)+1)
	members = append(members, cfg.Name)
	for name, url := range cfg.Peers {
		if name == "" || url == "" {
			return nil, errors.New("fleet: peer entries need both name and url")
		}
		members = append(members, name)
	}
	sort.Strings(members)
	n := &Node{
		cfg:        cfg,
		reg:        reg,
		srv:        srv,
		inner:      srv.Handler(),
		ring:       NewRing(cfg.VNodes, cfg.Replicas, members),
		client:     cfg.Client,
		logger:     cfg.Logger,
		peers:      make(map[string]*peerState, len(cfg.Peers)),
		tombs:      make(map[string]int64),
		evictedGen: make(map[string]int64),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if n.client == nil {
		n.client = &http.Client{Timeout: 30 * time.Second}
	}
	if n.logger == nil {
		n.logger = slog.New(slog.DiscardHandler)
	}
	for name := range cfg.Peers {
		n.peers[name] = &peerState{}
		n.peerNames = append(n.peerNames, name)
	}
	sort.Strings(n.peerNames)

	tel := srv.Telemetry()
	n.gossipRounds = tel.Counter("hypermined_gossip_rounds_total", "gossip_rounds",
		"Gossip rounds initiated by this node (one peer exchange each).")
	n.replPushes = tel.Counter("hypermined_replication_pushes_total", "replication_pushes",
		"Snapshot replication pushes to peer replicas after accepted writes.")
	n.replPushErrs = tel.Counter("hypermined_replication_push_errors_total", "replication_push_errors",
		"Replication pushes that failed (gossip repairs the lag later).")
	n.replPulls = tel.Counter("hypermined_replication_pulls_total", "replication_pulls",
		"Snapshots pulled from peers because gossip showed this replica lagging.")
	n.pullSkips = tel.Counter("hypermined_gossip_pull_skips_total", "gossip_pull_skips",
		"Gossip pulls skipped because the model was deleted (tombstone) or locally LRU-evicted.")
	n.replHist = tel.Histogram("hypermined_replication_seconds",
		"Wall time to replicate one accepted write to all peer replicas (serialize + push).", "")

	reg.OnEvict(n.noteEvicted)
	srv.SetReadiness(n.Ready)
	srv.RegisterStatsSection("fleet", n.statsSection)
	srv.RegisterMetricsExtra(n.writeMetrics)

	n.mux = http.NewServeMux()
	n.mux.HandleFunc("GET /fleet/digest", n.handleDigest)
	n.mux.HandleFunc("POST /fleet/gossip", n.handleGossip)
	n.mux.HandleFunc("GET /fleet/snapshot/{name}", n.handleSnapshot)
	n.mux.HandleFunc("PUT /fleet/replicate/{name}", n.handleReplicate)
	n.mux.HandleFunc("DELETE /fleet/replicate/{name}", n.handleReplicateDelete)
	n.mux.HandleFunc("/", n.handleAPI)

	if len(n.peers) == 0 {
		n.converged.Store(true)
	}
	return n, nil
}

// Name returns the node's ring name.
func (n *Node) Name() string { return n.cfg.Name }

// Ring returns the (static-membership) consistent-hash ring.
func (n *Node) Ring() *Ring { return n.ring }

// Ready implements the readiness probe: a node is ready once it has
// completed a successful gossip exchange with EVERY peer since this
// process started. One arbitrary peer is not enough — under
// pull-iff-owner a non-owner advertises nothing about this node's
// shards, so a freshly restarted owner that only spoke to a non-owner
// could accept a write at an already-used generation and fork history.
// Syncing with all peers guarantees the registry's generation counter
// has been raised past everything any replica of any owned shard has
// seen. A node with no peers is trivially ready.
func (n *Node) Ready() error {
	if !n.converged.Load() {
		return errors.New("fleet: gossip not yet converged with every peer")
	}
	return nil
}

// markSynced records a completed gossip exchange with peer and flips
// the node converged once every peer has synced at least once.
func (n *Node) markSynced(peer string) {
	ps := n.peers[peer]
	if ps == nil {
		return
	}
	ps.synced.Store(true)
	if n.converged.Load() {
		return
	}
	for _, name := range n.peerNames {
		if !n.peers[name].synced.Load() {
			return
		}
	}
	n.converged.Store(true)
}

// Handler returns the fleet-aware HTTP handler: /fleet/ endpoints plus
// the underlying server API with write replication spliced in.
func (n *Node) Handler() http.Handler { return n.mux }

// Start runs the background gossip loop when GossipInterval > 0; it
// returns immediately. With a non-positive interval (the deterministic
// sim), the caller drives Gossip explicitly. Start is idempotent.
func (n *Node) Start() {
	if !n.started.CompareAndSwap(false, true) {
		return
	}
	if n.cfg.GossipInterval <= 0 {
		n.closeDone()
		return
	}
	go n.gossipLoop()
}

// Stop terminates the gossip loop and waits for it to exit. It is safe
// to call any number of times, and on a node whose Start was never
// invoked (a caller bailing out of its own setup must not deadlock).
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	if !n.started.Load() {
		// No loop was ever spawned, so nothing else will release done.
		n.closeDone()
	}
	<-n.done
}

func (n *Node) closeDone() {
	n.doneOnce.Do(func() { close(n.done) })
}

func (n *Node) gossipLoop() {
	defer n.closeDone()
	select {
	case <-n.stop: // Stop raced Start; never gossip
		return
	default:
	}
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	// Readiness gates on a successful exchange with every peer, so run
	// full rounds until converged (starting immediately, not an interval
	// later), then fall back to cheaper single-peer rounds.
	n.GossipAll(context.Background())
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			if n.converged.Load() {
				n.Gossip(context.Background())
			} else {
				n.GossipAll(context.Background())
			}
		}
	}
}

// digest is the gossip exchange unit: who is speaking, the generation
// of every model it serves, and the tombstones of models it has seen
// deleted (so a delete propagates through gossip instead of being
// resurrected by a replica that missed the replicated delete).
type digest struct {
	Node    string           `json:"node"`
	Models  map[string]int64 `json:"models"`
	Deleted map[string]int64 `json:"deleted,omitempty"`
}

// localDigest snapshots this node's {model: generation} vector plus
// its delete tombstones.
func (n *Node) localDigest() digest {
	d := digest{Node: n.cfg.Name, Models: map[string]int64{}}
	for _, name := range n.reg.Names() {
		if sv := n.reg.Peek(name); sv != nil {
			d.Models[name] = sv.Generation()
			sv.Release()
		}
	}
	n.mu.Lock()
	if len(n.tombs) > 0 {
		d.Deleted = make(map[string]int64, len(n.tombs))
		for name, gen := range n.tombs {
			d.Deleted[name] = gen
		}
	}
	n.mu.Unlock()
	return d
}

// Gossip runs one push-pull round with the next peer (round-robin):
// send the local digest, receive the peer's, and synchronously pull
// any owned model the peer serves at a newer generation. It returns
// the name of the peer contacted ("" with no peers) and the exchange
// error. The node flips converged (ready for writes) only once every
// peer has completed such an exchange.
func (n *Node) Gossip(ctx context.Context) (string, error) {
	if len(n.peerNames) == 0 {
		n.converged.Store(true)
		return "", nil
	}
	peer := n.peerNames[int(n.nextPeer.Add(1)-1)%len(n.peerNames)]
	err := n.gossipWith(ctx, peer)
	n.gossipRounds.Inc()
	n.notePeer(peer, err == nil)
	if err == nil {
		n.markSynced(peer)
	}
	return peer, err
}

// GossipAll runs one round against every peer (the sim uses it to
// force convergence at a barrier; the background loop uses it until
// the node converges); it reports the first error.
func (n *Node) GossipAll(ctx context.Context) error {
	var first error
	for _, peer := range n.peerNames {
		err := n.gossipWith(ctx, peer)
		n.gossipRounds.Inc()
		n.notePeer(peer, err == nil)
		if err == nil {
			n.markSynced(peer)
		} else if first == nil {
			first = err
		}
	}
	if len(n.peerNames) == 0 {
		n.converged.Store(true)
	}
	return first
}

func (n *Node) gossipWith(ctx context.Context, peer string) error {
	base := n.cfg.Peers[peer]
	body, err := json.Marshal(n.localDigest())
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/fleet/gossip", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("fleet: gossip with %s: %s", peer, resp.Status)
	}
	var theirs digest
	if err := json.NewDecoder(resp.Body).Decode(&theirs); err != nil {
		return err
	}
	return n.pullLagging(ctx, peer, theirs)
}

// pullLagging compares a peer digest against local state: it applies
// the peer's delete tombstones first (a delete must win over the pull
// that would resurrect it), then pulls every model this node owns but
// serves at an older generation (or not at all). Pulls are
// synchronous: when this returns nil the node is caught up to
// everything the digest advertised.
func (n *Node) pullLagging(ctx context.Context, peer string, theirs digest) error {
	deleted := make([]string, 0, len(theirs.Deleted))
	for name := range theirs.Deleted {
		deleted = append(deleted, name)
	}
	sort.Strings(deleted)
	for _, name := range deleted {
		if !n.ring.Owns(name, n.cfg.Name) {
			continue
		}
		if n.noteDeleted(name, theirs.Deleted[name]) {
			n.logger.LogAttrs(ctx, slog.LevelInfo, "fleet delete learned via gossip",
				slog.String("model", name), slog.String("peer", peer),
				slog.Int64("generation", theirs.Deleted[name]))
		}
	}

	names := make([]string, 0, len(theirs.Models))
	for name := range theirs.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	var firstErr error
	for _, name := range names {
		gen := theirs.Models[name]
		if !n.ring.Owns(name, n.cfg.Name) {
			continue // pull-iff-owner: don't mirror shards we don't serve
		}
		var local int64
		if sv := n.reg.Peek(name); sv != nil {
			local = sv.Generation()
			sv.Release()
		}
		if local >= gen {
			continue
		}
		if n.skipPull(name, gen) {
			// Deleted at this generation or newer, or just LRU-evicted
			// here: pulling would resurrect the model or thrash the
			// resident-cost bound.
			n.pullSkips.Inc()
			continue
		}
		if err := n.pullSnapshot(ctx, peer, name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// noteDeleted records a delete of name observed at generation gen: the
// tombstone is kept (and gossiped) until the name is republished past
// gen, the eviction marker is dropped (a delete supersedes it), and
// the registry's generation counter is raised so later local writes
// number strictly past the deleted lineage. It reports whether a
// resident model at or below gen was actually removed.
func (n *Node) noteDeleted(name string, gen int64) bool {
	if gen <= 0 {
		return false
	}
	n.mu.Lock()
	if n.tombs[name] < gen {
		n.tombs[name] = gen
	}
	delete(n.evictedGen, name)
	n.mu.Unlock()
	return n.reg.RemoveGeneration(name, gen)
}

// tombGen returns the tombstone generation recorded for name (0 =
// none).
func (n *Node) tombGen(name string) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tombs[name]
}

// notePublished clears the delete tombstone and eviction marker for
// name once it is (re)published at a generation past them: the lineage
// restarted, so gossip may advertise and pull it again.
func (n *Node) notePublished(name string, gen int64) {
	n.mu.Lock()
	if t, ok := n.tombs[name]; ok && gen > t {
		delete(n.tombs, name)
	}
	if e, ok := n.evictedGen[name]; ok && gen > e {
		delete(n.evictedGen, name)
	}
	n.mu.Unlock()
}

// noteEvicted is the registry eviction hook: it marks name so gossip
// does not immediately pull the model back (re-violating the
// resident-cost bound the eviction just enforced). A write at a newer
// generation clears the marker via notePublished.
func (n *Node) noteEvicted(name string, gen int64) {
	n.mu.Lock()
	if n.evictedGen[name] < gen {
		n.evictedGen[name] = gen
	}
	n.mu.Unlock()
}

// skipPull reports whether gossip must not pull name at gen: it is
// tombstoned (deleted) or was LRU-evicted locally at that generation
// or newer.
func (n *Node) skipPull(name string, gen int64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if gen <= n.tombs[name] {
		return true
	}
	e, ok := n.evictedGen[name]
	return ok && gen <= e
}

// pullSnapshot fetches a model snapshot from a peer and publishes it
// under the generation the peer serves it at.
func (n *Node) pullSnapshot(ctx context.Context, peer, name string) error {
	base := n.cfg.Peers[peer]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/fleet/snapshot/"+name, nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("fleet: pull %s from %s: %s", name, peer, resp.Status)
	}
	gen, err := strconv.ParseInt(resp.Header.Get("X-Model-Generation"), 10, 64)
	if err != nil || gen <= 0 {
		return fmt.Errorf("fleet: pull %s from %s: bad generation header", name, peer)
	}
	m, err := core.ReadSnapshot(resp.Body)
	if err != nil {
		return fmt.Errorf("fleet: pull %s from %s: %w", name, peer, err)
	}
	info, err := n.reg.LoadGenerationContext(ctx, name, m, gen)
	if err != nil {
		return err
	}
	n.notePublished(name, info.Generation)
	n.replPulls.Inc()
	n.logger.LogAttrs(ctx, slog.LevelInfo, "fleet pulled model",
		slog.String("model", name), slog.String("peer", peer),
		slog.Int64("generation", gen), slog.Bool("stale", info.Stale))
	return nil
}

// notePeer records the outcome of a peer contact for the peer-state
// gauge and /stats.
func (n *Node) notePeer(peer string, ok bool) {
	ps := n.peers[peer]
	if ps == nil {
		return
	}
	ps.tried.Store(true)
	ps.ok.Store(ok)
	if ok {
		ps.lastNs.Store(time.Now().UnixNano())
	}
}

// handleDigest serves this node's {model: generation} vector.
func (n *Node) handleDigest(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.localDigest())
}

// handleGossip is the receiving half of a push-pull round: pull
// everything the sender has newer (for shards we own) before
// responding with our own digest, so one exchange converges both
// parties on the union of their knowledge.
func (n *Node) handleGossip(w http.ResponseWriter, r *http.Request) {
	var theirs digest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&theirs); err != nil {
		http.Error(w, "bad digest: "+err.Error(), http.StatusBadRequest)
		return
	}
	if _, known := n.cfg.Peers[theirs.Node]; known {
		// Sender is a configured peer: catch up from it synchronously.
		// Errors are non-fatal — the reply digest still lets the sender
		// catch up from us, and the next round retries the pull. Only a
		// fully completed catch-up counts toward this node's own
		// convergence (it is equivalent to having initiated the round).
		if err := n.pullLagging(r.Context(), theirs.Node, theirs); err != nil {
			n.logger.LogAttrs(r.Context(), slog.LevelWarn, "fleet gossip pull failed",
				slog.String("peer", theirs.Node), slog.String("error", err.Error()))
		} else {
			n.markSynced(theirs.Node)
		}
		n.notePeer(theirs.Node, true)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.localDigest())
}

// handleSnapshot streams the named model as a binary snapshot with its
// serving generation in X-Model-Generation — the pull half of both
// replication repair and gossip catch-up.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sv := n.reg.Peek(name)
	if sv == nil {
		http.Error(w, "unknown model "+strconv.Quote(name), http.StatusNotFound)
		return
	}
	defer sv.Release()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Model-Generation", strconv.FormatInt(sv.Generation(), 10))
	if err := core.WriteSnapshot(w, sv.Model(), core.SaveOptions{}); err != nil {
		n.logger.LogAttrs(r.Context(), slog.LevelWarn, "fleet snapshot stream failed",
			slog.String("model", name), slog.String("error", err.Error()))
	}
}

// handleReplicate is the receiving half of a replication push: decode
// the snapshot and publish it under the originating generation named
// by X-Model-Generation. Stale deliveries are acknowledged as no-ops
// (idempotent), so push retries and gossip races are harmless.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	gen, err := strconv.ParseInt(r.Header.Get("X-Model-Generation"), 10, 64)
	if err != nil || gen <= 0 {
		http.Error(w, "missing or bad X-Model-Generation", http.StatusBadRequest)
		return
	}
	if t := n.tombGen(name); gen <= t {
		// A push at or below the tombstone replays deleted history; the
		// stale ack (with the tombstone generation) tells the origin it
		// is behind, never that the write landed.
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Model-Generation", strconv.FormatInt(t, 10))
		_ = json.NewEncoder(w).Encode(map[string]any{
			"name": name, "generation": t, "stale": true,
		})
		return
	}
	m, err := core.ReadSnapshot(http.MaxBytesReader(w, r.Body, maxReplicateBytes))
	if err != nil {
		http.Error(w, "snapshot: "+err.Error(), http.StatusBadRequest)
		return
	}
	info, err := n.reg.LoadGenerationContext(r.Context(), name, m, gen)
	if err != nil {
		http.Error(w, "load: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if !info.Stale {
		n.notePublished(name, info.Generation)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Model-Generation", strconv.FormatInt(info.Generation, 10))
	_ = json.NewEncoder(w).Encode(map[string]any{
		"name": name, "generation": info.Generation, "stale": info.Stale,
	})
}

// handleReplicateDelete is the receiving half of delete replication:
// record the tombstone and remove the local replica unless a newer
// write already superseded the delete (newest generation wins).
func (n *Node) handleReplicateDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	gen, err := strconv.ParseInt(r.Header.Get("X-Model-Generation"), 10, 64)
	if err != nil || gen <= 0 {
		http.Error(w, "missing or bad X-Model-Generation", http.StatusBadRequest)
		return
	}
	removed := n.noteDeleted(name, gen)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"name": name, "generation": gen, "removed": removed,
	})
}

// writeTarget classifies an API request as a fleet-replicated write
// and extracts the model name: PUT /v1/models/{name},
// POST /v1/models/{name}:append, and DELETE /v1/models/{name} (a
// delete must reach every owner, or the surviving replica's gossip
// digest resurrects the model within one round). Everything else
// returns "".
func writeTarget(r *http.Request) string {
	const prefix = "/v1/models/"
	if !strings.HasPrefix(r.URL.Path, prefix) {
		return ""
	}
	rest := r.URL.Path[len(prefix):]
	if rest == "" || strings.Contains(rest, "/") {
		return ""
	}
	switch r.Method {
	case http.MethodPut, http.MethodDelete:
		if !strings.Contains(rest, ":") {
			return rest
		}
	case http.MethodPost:
		if name, ok := strings.CutSuffix(rest, ":append"); ok && name != "" {
			return name
		}
	}
	return ""
}

// bufResponse buffers an inner handler's response so replication can
// run between the write being applied and the client seeing the ack.
type bufResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newBufResponse() *bufResponse {
	return &bufResponse{header: make(http.Header), status: http.StatusOK}
}

func (b *bufResponse) Header() http.Header         { return b.header }
func (b *bufResponse) WriteHeader(code int)        { b.status = code }
func (b *bufResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

// flush copies the buffered response to the real writer.
func (b *bufResponse) flush(w http.ResponseWriter) {
	h := w.Header()
	for k, vs := range b.header {
		h[k] = vs
	}
	w.WriteHeader(b.status)
	_, _ = w.Write(b.body.Bytes())
}

// handleAPI serves the underlying single-process API, splicing
// synchronous replication into accepted writes: the inner handler's
// response is buffered, and only after the resulting snapshot (or
// delete) has been pushed to the model's other owners does the
// acknowledgement reach the client. A peer push that fails because the
// peer is down is counted and logged, not fatal — the write is durable
// on this node and gossip repairs the lagging replica; the ack
// therefore means "applied here, replication attempted everywhere".
// The one push outcome that IS fatal: a peer stale-rejecting the write
// because it already serves a newer generation means this node forked
// history, so the client gets a 409 instead of an ack (the local fork
// is then corrected by the next gossip pull).
func (n *Node) handleAPI(w http.ResponseWriter, r *http.Request) {
	name := writeTarget(r)
	if name == "" {
		n.inner.ServeHTTP(w, r)
		return
	}
	if err := n.Ready(); err != nil {
		// A restarted replica that has not gossiped with every peer yet
		// may lag the fleet; accepting a write here could assign an
		// already-used generation and fork the model. Refuse explicitly —
		// the X-Fleet-Not-Ready marker tells the router the write was
		// definitely not applied, so failing over to a converged owner
		// is unambiguous and safe.
		w.Header().Set("X-Fleet-Not-Ready", "1")
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\"error\":%q}\n", "fleet: node not ready for writes: "+err.Error())
		return
	}
	isDelete := r.Method == http.MethodDelete
	var preGen int64
	if isDelete {
		// The generation the delete observed must be captured before the
		// inner handler unloads the model; it becomes the tombstone.
		if sv := n.reg.Peek(name); sv != nil {
			preGen = sv.Generation()
			sv.Release()
		}
	}
	buf := newBufResponse()
	n.inner.ServeHTTP(buf, r)
	if buf.status >= 200 && buf.status < 300 {
		if isDelete {
			n.replicateDelete(r.Context(), name, preGen)
		} else if err := n.replicate(r.Context(), name); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			fmt.Fprintf(w, "{\"error\":%q}\n", "fleet: write not acknowledged, a replica serves a newer generation: "+err.Error())
			return
		}
	}
	buf.flush(w)
}

// errReplicaAhead marks a replication push that a peer stale-rejected
// because it already serves a strictly newer generation: the local
// write forked history and must not be acknowledged.
var errReplicaAhead = errors.New("fleet: replica ahead of local write")

// otherOwners returns name's replica set minus this node.
func (n *Node) otherOwners(name string) []string {
	var targets []string
	for _, o := range n.ring.Owners(name) {
		if o != n.cfg.Name {
			targets = append(targets, o)
		}
	}
	return targets
}

// replicate pushes the current snapshot of name to every other owner
// in its replica set. Unreachable peers are non-fatal (gossip repairs
// them); a peer that stale-rejects the push at a newer generation is
// fatal and reported as an errReplicaAhead error so the caller refuses
// the client ack.
func (n *Node) replicate(ctx context.Context, name string) error {
	targets := n.otherOwners(name)
	sv := n.reg.Peek(name)
	if sv == nil {
		return nil // removed in the races between ack and replication; nothing to push
	}
	gen := sv.Generation()
	var snap bytes.Buffer
	err := core.WriteSnapshot(&snap, sv.Model(), core.SaveOptions{})
	sv.Release()
	if err != nil {
		n.replPushErrs.Inc()
		n.logger.LogAttrs(ctx, slog.LevelError, "fleet replication serialize failed",
			slog.String("model", name), slog.String("error", err.Error()))
		return nil
	}
	n.notePublished(name, gen)
	if len(targets) == 0 {
		return nil
	}
	var forkErr error
	start := time.Now()
	for _, peer := range targets {
		if err := n.pushSnapshot(ctx, peer, name, gen, snap.Bytes()); err != nil {
			n.replPushErrs.Inc()
			if errors.Is(err, errReplicaAhead) {
				forkErr = err
				n.notePeer(peer, true) // the peer answered; the WRITE is what failed
				n.logger.LogAttrs(ctx, slog.LevelError, "fleet replication stale-rejected",
					slog.String("model", name), slog.String("peer", peer),
					slog.Int64("generation", gen), slog.String("error", err.Error()))
				continue
			}
			n.notePeer(peer, false)
			n.logger.LogAttrs(ctx, slog.LevelWarn, "fleet replication push failed",
				slog.String("model", name), slog.String("peer", peer),
				slog.Int64("generation", gen), slog.String("error", err.Error()))
			continue
		}
		n.replPushes.Inc()
		n.notePeer(peer, true)
	}
	n.replHist.Observe(time.Since(start))
	return forkErr
}

// replicateDelete records the local tombstone and pushes the delete to
// every other owner, so neither a replication race nor a gossip round
// can resurrect the model from a surviving replica. preGen is the
// generation the model served at when the delete was accepted (0 = it
// was not resident here; nothing to propagate).
func (n *Node) replicateDelete(ctx context.Context, name string, preGen int64) {
	if preGen <= 0 {
		return
	}
	n.noteDeleted(name, preGen)
	targets := n.otherOwners(name)
	if len(targets) == 0 {
		return
	}
	start := time.Now()
	for _, peer := range targets {
		if err := n.pushDelete(ctx, peer, name, preGen); err != nil {
			n.replPushErrs.Inc()
			n.notePeer(peer, false)
			n.logger.LogAttrs(ctx, slog.LevelWarn, "fleet delete push failed",
				slog.String("model", name), slog.String("peer", peer),
				slog.Int64("generation", preGen), slog.String("error", err.Error()))
			continue
		}
		n.replPushes.Inc()
		n.notePeer(peer, true)
	}
	n.replHist.Observe(time.Since(start))
}

// pushSnapshot PUTs one snapshot to a peer's replicate endpoint and
// verifies the ack: a stale rejection at a strictly newer generation
// surfaces as errReplicaAhead (the local write forked), while a stale
// ack at the same generation is an idempotent duplicate and succeeds.
func (n *Node) pushSnapshot(ctx context.Context, peer, name string, gen int64, snap []byte) error {
	base, ok := n.cfg.Peers[peer]
	if !ok {
		return fmt.Errorf("fleet: unknown peer %q", peer)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, base+"/fleet/replicate/"+name, bytes.NewReader(snap))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Model-Generation", strconv.FormatInt(gen, 10))
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	ackBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: replicate %s@%d to %s: %s", name, gen, peer, resp.Status)
	}
	var ack struct {
		Generation int64 `json:"generation"`
		Stale      bool  `json:"stale"`
	}
	if err := json.Unmarshal(ackBody, &ack); err != nil {
		return fmt.Errorf("fleet: replicate %s@%d to %s: bad ack: %w", name, gen, peer, err)
	}
	if ack.Stale && ack.Generation > gen {
		return fmt.Errorf("%w: %s already serves %s at generation %d > %d",
			errReplicaAhead, peer, name, ack.Generation, gen)
	}
	return nil
}

// pushDelete sends one replicated delete to a peer.
func (n *Node) pushDelete(ctx context.Context, peer, name string, gen int64) error {
	base, ok := n.cfg.Peers[peer]
	if !ok {
		return fmt.Errorf("fleet: unknown peer %q", peer)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/fleet/replicate/"+name, nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Model-Generation", strconv.FormatInt(gen, 10))
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: delete %s@%d on %s: %s", name, gen, peer, resp.Status)
	}
	return nil
}

// fleetModelStat labels one resident model with its replica set.
type fleetModelStat struct {
	Owner    string   `json:"owner"`
	Replicas []string `json:"replicas"`
	Local    bool     `json:"local_is_owner"`
}

// statsSection renders the "fleet" /stats key: membership, peer
// states, and per-model owner/replica labels.
func (n *Node) statsSection() any {
	peerOut := make(map[string]string, len(n.peers))
	for _, name := range n.peerNames {
		peerOut[name] = n.peerStateName(name)
	}
	models := map[string]fleetModelStat{}
	for _, name := range n.reg.Names() {
		owners := n.ring.Owners(name)
		owner := ""
		if len(owners) > 0 {
			owner = owners[0]
		}
		models[name] = fleetModelStat{
			Owner:    owner,
			Replicas: owners,
			Local:    owner == n.cfg.Name,
		}
	}
	n.mu.Lock()
	tombs, evictedMarks := len(n.tombs), len(n.evictedGen)
	n.mu.Unlock()
	return map[string]any{
		"node":            n.cfg.Name,
		"ring":            n.ring.String(),
		"replicas":        n.ring.Replicas(),
		"vnodes":          n.ring.VNodes(),
		"ready":           n.Ready() == nil,
		"peers":           peerOut,
		"models":          models,
		"tombstones":      tombs,
		"evicted_markers": evictedMarks,
	}
}

// peerStateName maps a peer's tracked state onto the gauge vocabulary.
func (n *Node) peerStateName(peer string) string {
	ps := n.peers[peer]
	switch {
	case ps == nil || !ps.tried.Load():
		return "unknown"
	case ps.ok.Load():
		return "up"
	}
	return "down"
}

// writeMetrics emits the labeled fleet gauges the flat counter
// registry cannot express: hypermined_fleet_peers{state} and the
// per-model ownership gauge.
func (n *Node) writeMetrics(w io.Writer) {
	counts := map[string]int{"up": 0, "down": 0, "unknown": 0}
	for _, name := range n.peerNames {
		counts[n.peerStateName(name)]++
	}
	fmt.Fprintf(w, "# HELP hypermined_fleet_peers Configured peers by gossip-observed state.\n# TYPE hypermined_fleet_peers gauge\n")
	for _, state := range []string{"up", "down", "unknown"} {
		fmt.Fprintf(w, "hypermined_fleet_peers{state=%q} %d\n", state, counts[state])
	}
	fmt.Fprintf(w, "# HELP hypermined_fleet_owned_model Resident models this node is in the replica set of (1 primary owner, 0 replica).\n# TYPE hypermined_fleet_owned_model gauge\n")
	for _, name := range n.reg.Names() { // sorted by the registry
		if !n.ring.Owns(name, n.cfg.Name) {
			continue
		}
		v := 0
		if n.ring.Owner(name) == n.cfg.Name {
			v = 1
		}
		fmt.Fprintf(w, "hypermined_fleet_owned_model{model=%q} %d\n", name, v)
	}
}
