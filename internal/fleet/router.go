package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hypermine/internal/admit"
	"hypermine/internal/telemetry"
)

// defaultMaxForwardBody bounds a buffered request body the router
// holds for failover replay. Request bodies must be fully buffered
// (a write that fails over is replayed verbatim on the next owner), so
// the routing tier's default is deliberately far below the node's
// 1 GiB snapshot bound — a handful of concurrent huge PUTs must not
// exhaust router memory. Raise via RouterConfig.MaxBodyBytes.
const defaultMaxForwardBody = 64 << 20

// maxRetainedErrorBody bounds how much of a failed (retriable) replica
// response the router keeps in memory for the all-replicas-failed
// fallback answer. Successful responses are streamed, never buffered.
const maxRetainedErrorBody = 64 << 10

// RouterConfig configures the stateless fleet router.
type RouterConfig struct {
	// Peers maps replica node names to their base URLs. The router's
	// ring is built over exactly these names.
	Peers map[string]string
	// Replicas / VNodes mirror the nodes' ring parameters; every fleet
	// member and the router must agree or routing misses owners.
	Replicas int
	VNodes   int
	// Client performs the forwards. Nil uses a dedicated client with a
	// sane timeout.
	Client *http.Client
	// MaxBodyBytes bounds a request body the router buffers for
	// failover replay; larger bodies are rejected with 400. <= 0 means
	// the 64 MiB default.
	MaxBodyBytes int64
	// Admission, when set, sheds load at the router before any network
	// hop: model-scoped requests pass the same tenant/model/class
	// admission funnel a serving node applies. Nil disables.
	Admission *admit.Controller
	// Tracer, when set, gives every routed request a trace ID (adopted
	// from an inbound traceparent or minted) that is propagated to the
	// chosen replica via the traceparent header, so one distributed
	// trace covers router and replica.
	Tracer *telemetry.Tracer
	// Logger receives structured routing events. Nil discards.
	Logger *slog.Logger
}

// Router is the fleet's client-facing entry point: it speaks the same
// /v1/models API as a serving node, maps each model-scoped request to
// the model's replica set on the consistent-hash ring, and forwards to
// the first answering owner. Reads fail over to the next replica on
// connection failure, 5xx, or 404 (a lagging replica that has not
// pulled the model yet); writes fail over only on connection failure,
// 404, or an explicit not-ready 503 (X-Fleet-Not-Ready) — any other
// 5xx on a write is returned as-is, because an :append that may have
// been applied must not be blindly retried on another node.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client
	logger *slog.Logger
	mux    *http.ServeMux
	start  time.Time

	tel       *telemetry.Registry
	forwards  *telemetry.Counter
	failovers *telemetry.Counter
	routeErrs *telemetry.Counter
	shed      *telemetry.Counter
}

// NewRouter builds a router over the given fleet membership.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("fleet: router needs at least one peer")
	}
	names := make([]string, 0, len(cfg.Peers))
	for name, url := range cfg.Peers {
		if name == "" || url == "" {
			return nil, errors.New("fleet: peer entries need both name and url")
		}
		names = append(names, name)
	}
	sort.Strings(names)
	rt := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.VNodes, cfg.Replicas, names),
		client: cfg.Client,
		logger: cfg.Logger,
		start:  time.Now(),
		tel:    telemetry.NewRegistry(),
	}
	if rt.client == nil {
		rt.client = &http.Client{Timeout: 30 * time.Second}
	}
	if rt.logger == nil {
		rt.logger = slog.New(slog.DiscardHandler)
	}
	rt.forwards = rt.tel.Counter("hypermined_router_forwards_total", "forwards",
		"Requests forwarded to a replica (first attempt and failovers each count once).")
	rt.failovers = rt.tel.Counter("hypermined_router_failovers_total", "failovers",
		"Forwards that moved on to the next replica after a failure.")
	rt.routeErrs = rt.tel.Counter("hypermined_router_errors_total", "errors",
		"Requests the router could not answer from any replica.")
	rt.shed = rt.tel.Counter("hypermined_router_shed_total", "shed",
		"Requests rejected by router-side admission control.")

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /stats", rt.handleStats)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /v1/models", rt.handleListModels)
	rt.mux.HandleFunc("/v1/models/", rt.handleModelScoped)
	return rt, nil
}

// Ring returns the router's consistent-hash ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "mode": "router"})
}

// handleReadyz reports ready when at least one replica is ready: a
// router with a quorumless fleet can answer nothing, but a single
// ready replica restores (degraded) service for its shard.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, peer := range rt.ring.Nodes() {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rt.cfg.Peers[peer]+"/readyz", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "mode": "router"})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"status": "not ready", "mode": "router", "reason": "no ready replica",
	})
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"mode":           "router",
		"uptime_seconds": time.Since(rt.start).Seconds(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"ring":           rt.ring.String(),
		"peers":          len(rt.cfg.Peers),
	}
	for key, v := range rt.tel.CounterValues() {
		out[key] = v
	}
	if rt.cfg.Admission != nil {
		out["admission"] = rt.cfg.Admission.Stats()
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP hypermined_uptime_seconds Seconds since the router started.\n# TYPE hypermined_uptime_seconds gauge\nhypermined_uptime_seconds %g\n",
		time.Since(rt.start).Seconds())
	_ = rt.tel.WritePrometheus(w)
}

// handleListModels fans GET /v1/models out to every replica and merges
// the union: each model is reported once, at the newest generation any
// replica serves (replicas lagging gossip may briefly disagree).
func (rt *Router) handleListModels(w http.ResponseWriter, r *http.Request) {
	type modelRow = map[string]any
	best := map[string]modelRow{}
	bestGen := map[string]int64{}
	for _, peer := range rt.ring.Nodes() {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rt.cfg.Peers[peer]+"/v1/models", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		var body struct {
			Models []modelRow `json:"models"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		for _, m := range body.Models {
			name, _ := m["name"].(string)
			if name == "" {
				continue
			}
			gen, _ := m["generation"].(float64)
			if cur, ok := bestGen[name]; !ok || int64(gen) > cur {
				best[name] = m
				bestGen[name] = int64(gen)
			}
		}
	}
	names := make([]string, 0, len(best))
	for name := range best {
		names = append(names, name)
	}
	sort.Strings(names)
	models := make([]modelRow, 0, len(names))
	for _, name := range names {
		models = append(models, best[name])
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": models})
}

// modelFromPath extracts the model name from a /v1/models/{name}...
// path: the first segment, stopped at "/" or ":".
func modelFromPath(path string) string {
	const prefix = "/v1/models/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	rest := path[len(prefix):]
	if i := strings.IndexAny(rest, "/:"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// isWrite reports whether a model-scoped request mutates fleet state.
// Writes never blindly retry on a 5xx: an :append that the replica may
// already have applied must not be replayed elsewhere.
func isWrite(r *http.Request) bool {
	switch r.Method {
	case http.MethodPut, http.MethodDelete:
		return true
	case http.MethodPost:
		return strings.HasSuffix(r.URL.Path, ":append")
	}
	return false
}

// costClass mirrors the serving node's request-cost vocabulary at the
// routing layer, by path shape: rule mining and admin writes are
// expensive, warm reads are cheap. (:query batches are classified
// expensive — the router does not parse bodies.)
func costClass(r *http.Request) admit.Class {
	if isWrite(r) || strings.HasSuffix(r.URL.Path, "/rules") || strings.HasSuffix(r.URL.Path, ":query") {
		return admit.Expensive
	}
	return admit.Cheap
}

// handleModelScoped routes one model-scoped request to the model's
// replica set with failover.
func (rt *Router) handleModelScoped(w http.ResponseWriter, r *http.Request) {
	name := modelFromPath(r.URL.Path)
	if name == "" {
		http.Error(w, `{"error":"bad model path"}`, http.StatusNotFound)
		return
	}

	var act *telemetry.Active
	traceStart := time.Now()
	if rt.cfg.Tracer != nil {
		id, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
		act = rt.cfg.Tracer.Start(id, "route", name, r.Header.Get("X-Tenant"))
		w.Header().Set("X-Trace-Id", act.TraceID().String())
	}
	status := http.StatusOK
	errMsg := ""
	defer func() {
		if rt.cfg.Tracer != nil {
			rt.cfg.Tracer.Finish(act, time.Since(traceStart), status, errMsg)
		}
	}()

	if rt.cfg.Admission != nil {
		var tk admit.Ticket
		_, rej, err := rt.cfg.Admission.AdmitInto(r.Context(), &tk, r.Header.Get("X-Tenant"), name, costClass(r))
		if err != nil {
			status, errMsg = http.StatusInternalServerError, err.Error()
			writeJSON(w, status, map[string]string{"error": "admission: " + err.Error()})
			return
		}
		if rej != nil {
			rt.shed.Inc()
			status, errMsg = rej.Status, "overloaded: "+string(rej.Reason)
			secs := int((rej.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, rej.Status, map[string]any{
				"error":               "overloaded: " + string(rej.Reason),
				"reason":              string(rej.Reason),
				"retry_after_seconds": secs,
			})
			return
		}
		defer func() {
			if status >= 500 {
				tk.Done(admit.OutcomeFailure)
			} else {
				tk.Done(admit.OutcomeOK)
			}
		}()
	}

	// Buffer the request body once so failover can replay it. The bound
	// is the router's own (default 64 MiB), not the node's snapshot
	// bound: the routing tier holds one buffered body per in-flight
	// request and must stay far from memory exhaustion.
	maxBody := rt.cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = defaultMaxForwardBody
	}
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			status = http.StatusBadRequest
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			errMsg = err.Error()
			writeJSON(w, status, map[string]string{"error": "body: " + err.Error()})
			return
		}
		body = b
	}

	owners := rt.ring.Owners(name)
	write := isWrite(r)
	var lastStatus int
	var lastBody []byte
	var lastHeader http.Header
	var lastErr error
	for attempt, peer := range owners {
		if attempt > 0 {
			rt.failovers.Inc()
		}
		rt.forwards.Inc()
		resp, err := rt.forward(r, peer, body, act)
		if err != nil {
			// Transport failure: the request never reached (or never got
			// an answer from) the replica. For reads this is always safe
			// to retry; for writes, a connection error on loopback means
			// the replica is down and the request was not applied — the
			// next owner becomes the acting owner for this write.
			lastErr = err
			rt.logger.LogAttrs(r.Context(), slog.LevelWarn, "route attempt failed",
				slog.String("model", name), slog.String("peer", peer),
				slog.String("error", err.Error()))
			continue
		}
		// A 503 carrying X-Fleet-Not-Ready is an explicit "not applied"
		// from a replica still converging after restart — safe to fail
		// over even for writes.
		unready := resp.StatusCode == http.StatusServiceUnavailable &&
			resp.Header.Get("X-Fleet-Not-Ready") != ""
		retriable := resp.StatusCode == http.StatusNotFound || unready ||
			(!write && resp.StatusCode >= 500)
		if retriable && attempt < len(owners)-1 {
			// 404 = this replica has not (re)gained the model yet; 5xx on
			// a read = replica-local fault. Either way another owner may
			// hold the answer. Retain only a bounded prefix of the error
			// body for the all-replicas-failed fallback.
			respBody, _ := io.ReadAll(io.LimitReader(resp.Body, maxRetainedErrorBody))
			resp.Body.Close()
			lastStatus, lastBody, lastHeader = resp.StatusCode, respBody, resp.Header
			continue
		}
		// This response is final: stream it to the client instead of
		// buffering it (a large snapshot or rules answer must not sit in
		// router memory once per in-flight request).
		status = resp.StatusCode
		if err := rt.streamProxied(w, resp); err != nil {
			// Headers are already written; nothing to salvage but log it.
			rt.logger.LogAttrs(r.Context(), slog.LevelWarn, "proxied response stream failed",
				slog.String("model", name), slog.String("peer", peer),
				slog.String("error", err.Error()))
		}
		resp.Body.Close()
		return
	}
	// Every owner failed. Prefer the most recent HTTP answer (e.g. a
	// 404 from all replicas is a real 404); fall back to 502.
	rt.routeErrs.Inc()
	if lastHeader != nil {
		status, errMsg = lastStatus, "all replicas failed"
		rt.writeProxied(w, lastHeader, lastStatus, lastBody)
		return
	}
	status, errMsg = http.StatusBadGateway, "no replica reachable"
	if lastErr != nil {
		errMsg = lastErr.Error()
	}
	writeJSON(w, http.StatusBadGateway, map[string]string{
		"error": "no replica reachable for model " + name,
	})
}

// forward sends one copy of the request to one peer.
func (rt *Router) forward(r *http.Request, peer string, body []byte, act *telemetry.Active) (*http.Response, error) {
	u := rt.cfg.Peers[peer] + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "X-Tenant", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	// Propagate the distributed trace: the replica adopts this ID, so
	// its engine-phase spans land in the same trace the router logs.
	if act != nil {
		req.Header.Set("traceparent", telemetry.Traceparent(act.TraceID()))
	} else if tp := r.Header.Get("traceparent"); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	return rt.client.Do(req)
}

// writeProxied relays an already-buffered replica response (status,
// relevant headers, body) to the client — used only for the bounded
// error bodies kept around for the all-replicas-failed fallback.
func (rt *Router) writeProxied(w http.ResponseWriter, h http.Header, status int, body []byte) {
	proxyHeaders(w, h)
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// streamProxied relays a replica response to the client by streaming
// its body — the router never holds a full successful response in
// memory. The caller closes resp.Body.
func (rt *Router) streamProxied(w http.ResponseWriter, resp *http.Response) error {
	proxyHeaders(w, resp.Header)
	if resp.ContentLength >= 0 {
		w.Header().Set("Content-Length", strconv.FormatInt(resp.ContentLength, 10))
	}
	w.WriteHeader(resp.StatusCode)
	_, err := io.Copy(w, resp.Body)
	return err
}

// proxyHeaders copies the replica headers the fleet contract forwards.
func proxyHeaders(w http.ResponseWriter, h http.Header) {
	for _, k := range []string{"Content-Type", "X-Model-Generation", "Retry-After"} {
		if v := h.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
}

// writeJSON is the router's minimal JSON response helper.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
