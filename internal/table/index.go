package table

import "math/bits"

// Index is a TID-bitset index over a table: for every (attribute,
// value) pair it holds a dense bitmap over observation ids (one bit
// per row, set iff that row takes that value). Counting the
// observations matching a conjunction of (attribute, value) items then
// reduces to AND-ing posting bitmaps and popcounting — 64 rows per
// word operation — which is what the Apriori miner and the hypergraph
// builder spend nearly all of their time doing.
//
// An Index is immutable once built; all methods are safe for
// concurrent use.
type Index struct {
	attrs  int
	k      int
	rows   int
	words  int      // words per posting bitmap = ceil(rows/64)
	bits   []uint64 // attrs*k bitmaps, posting (a,v) at ((a*k)+(v-1))*words
	counts []int    // cached popcount per posting, same indexing
}

// Index returns the table's TID-bitset index, building it on first use
// and caching it on the table. The cache is keyed by the current row
// count, so a table extended by AppendRow after an index was built
// transparently refreshes on the next call (this stamp check is why the
// cache is a mutex-guarded pointer rather than a bare sync.Once).
//
// A stale-but-shorter cached index is extended rather than rebuilt:
// tables are append-only (no API mutates an existing cell), so the
// posting-bitmap prefix is still valid and only the appended rows need
// scanning. The cached *Index object itself is never mutated — a new
// Index is installed — because callers may still hold the old one.
func (t *Table) Index() *Index {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	switch {
	case t.idx == nil || t.idx.rows > t.rows:
		t.idx = buildIndex(t)
	case t.idx.rows < t.rows:
		t.idx = extendIndex(t.idx, t)
	}
	return t.idx
}

// IndexIfBuilt returns the cached index if one exists and is still
// fresh, and nil otherwise. Counting paths that are not worth an O(rows
// x attrs) index build on their own use this to piggyback on an index
// some earlier caller paid for.
func (t *Table) IndexIfBuilt() *Index {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.idx != nil && t.idx.rows == t.rows {
		return t.idx
	}
	return nil
}

func buildIndex(t *Table) *Index {
	words := (t.rows + 63) / 64
	ix := &Index{
		attrs:  len(t.cols),
		k:      t.k,
		rows:   t.rows,
		words:  words,
		bits:   make([]uint64, len(t.cols)*t.k*words),
		counts: make([]int, len(t.cols)*t.k),
	}
	for a, col := range t.cols {
		base := a * t.k * words
		for i, v := range col {
			off := base + int(v-1)*words
			ix.bits[off+(i>>6)] |= 1 << (uint(i) & 63)
		}
	}
	for p := range ix.counts {
		ix.counts[p] = Popcount(ix.bits[p*words : (p+1)*words])
	}
	return ix
}

// extendIndex builds the index for t from an index old that covers a
// strict prefix of t's rows: every posting bitmap's old words are
// copied, then only the appended rows [old.rows, t.rows) are scanned to
// set new bits and bump the cached popcounts. The result is
// bit-identical to buildIndex(t) — the differential tests pin this —
// while touching O(appended) cells instead of O(rows). old is not
// modified; it may still be serving concurrent readers.
func extendIndex(old *Index, t *Table) *Index {
	words := (t.rows + 63) / 64
	postings := old.attrs * old.k
	ix := &Index{
		attrs:  old.attrs,
		k:      old.k,
		rows:   t.rows,
		words:  words,
		bits:   make([]uint64, postings*words),
		counts: make([]int, postings),
	}
	copy(ix.counts, old.counts)
	for p := 0; p < postings; p++ {
		copy(ix.bits[p*words:p*words+old.words], old.bits[p*old.words:(p+1)*old.words])
	}
	for a, col := range t.cols {
		base := a * t.k
		for i := old.rows; i < t.rows; i++ {
			p := base + int(col[i]-1)
			ix.bits[p*words+(i>>6)] |= 1 << (uint(i) & 63)
			ix.counts[p]++
		}
	}
	return ix
}

// Rows returns the number of observations the index covers.
func (ix *Index) Rows() int { return ix.rows }

// K returns the value-set cardinality.
func (ix *Index) K() int { return ix.k }

// Words returns the length in uint64 words of every posting bitmap.
func (ix *Index) Words() int { return ix.words }

// Posting returns the bitmap of observations where attribute a takes
// value v. The slice aliases the index's storage and must be treated
// as read-only.
func (ix *Index) Posting(a int, v Value) []uint64 {
	off := (a*ix.k + int(v-1)) * ix.words
	return ix.bits[off : off+ix.words : off+ix.words]
}

// Count returns the support count of the single item (a, v), i.e. the
// popcount of its posting bitmap, from the cache built at index time.
func (ix *Index) Count(a int, v Value) int {
	return ix.counts[a*ix.k+int(v-1)]
}

// Popcount returns the number of set bits in b.
func Popcount(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// PopcountAnd returns the number of set bits in the intersection of a
// and b without materializing it. The slices must have equal length.
func PopcountAnd(a, b []uint64) int {
	b = b[:len(a)]
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// AndInto replaces dst with the intersection of dst and src. The
// slices must have equal length.
func AndInto(dst, src []uint64) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] &= src[i]
	}
}
