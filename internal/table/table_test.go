package table

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustTable(t *testing.T, attrs []string, k int, rows [][]Value) *Table {
	t.Helper()
	tb, err := FromRows(attrs, k, rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return tb
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 3); err == nil {
		t.Error("want error for no attributes")
	}
	if _, err := New([]string{"A"}, 0); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := New([]string{"A"}, 256); err == nil {
		t.Error("want error for k>255")
	}
	if _, err := New([]string{"A", "A"}, 3); err == nil {
		t.Error("want error for duplicate attribute")
	}
	if _, err := New([]string{"A", ""}, 3); err == nil {
		t.Error("want error for empty attribute name")
	}
}

func TestAppendRowAndAccessors(t *testing.T) {
	tb, err := New([]string{"A", "B", "C"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow([]Value{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow([]Value{4, 4, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow([]Value{1, 2}); err == nil {
		t.Error("want error for short row")
	}
	if err := tb.AppendRow([]Value{1, 2, 5}); err == nil {
		t.Error("want error for out-of-range value")
	}
	if err := tb.AppendRow([]Value{0, 2, 3}); err == nil {
		t.Error("want error for zero value")
	}
	if got := tb.NumRows(); got != 2 {
		t.Errorf("NumRows = %d, want 2", got)
	}
	if got := tb.NumAttrs(); got != 3 {
		t.Errorf("NumAttrs = %d, want 3", got)
	}
	if got := tb.At(1, 0); got != 4 {
		t.Errorf("At(1,0) = %d, want 4", got)
	}
	if got := tb.AttrIndex("C"); got != 2 {
		t.Errorf("AttrIndex(C) = %d, want 2", got)
	}
	if got := tb.AttrIndex("Z"); got != -1 {
		t.Errorf("AttrIndex(Z) = %d, want -1", got)
	}
	if got := tb.Row(0, nil); !reflect.DeepEqual(got, []Value{1, 2, 3}) {
		t.Errorf("Row(0) = %v", got)
	}
	if err := tb.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFromColumns(t *testing.T) {
	tb, err := FromColumns([]string{"A", "B"}, 3, [][]Value{{1, 2, 3}, {3, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	if _, err := FromColumns([]string{"A", "B"}, 3, [][]Value{{1}, {1, 2}}); err == nil {
		t.Error("want error for ragged columns")
	}
	if _, err := FromColumns([]string{"A"}, 2, [][]Value{{3}}); err == nil {
		t.Error("want error for value above k")
	}
	if _, err := FromColumns([]string{"A", "B"}, 3, [][]Value{{1}}); err == nil {
		t.Error("want error for column-count mismatch")
	}
}

func TestRowRangeAndSelect(t *testing.T) {
	tb := mustTable(t, []string{"A", "B"}, 3, [][]Value{{1, 1}, {2, 2}, {3, 3}, {1, 2}})
	head, err := tb.RowRange(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if head.NumRows() != 2 || head.At(1, 1) != 2 {
		t.Errorf("RowRange head wrong: %d rows", head.NumRows())
	}
	// Mutating the slice must not affect the parent.
	head.cols[0][0] = 3
	if tb.At(0, 0) != 1 {
		t.Error("RowRange aliases parent storage")
	}
	if _, err := tb.RowRange(3, 2); err == nil {
		t.Error("want error for inverted range")
	}
	if _, err := tb.RowRange(0, 9); err == nil {
		t.Error("want error for out-of-bounds range")
	}

	sel, err := tb.SelectAttrs([]string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumAttrs() != 1 || sel.At(3, 0) != 2 {
		t.Error("SelectAttrs wrong data")
	}
	if _, err := tb.SelectAttrs([]string{"Z"}); err == nil {
		t.Error("want error for unknown attribute")
	}
}

func TestCloneIndependence(t *testing.T) {
	tb := mustTable(t, []string{"A"}, 2, [][]Value{{1}, {2}})
	cl := tb.Clone()
	cl.cols[0][0] = 2
	if tb.At(0, 0) != 1 {
		t.Error("Clone aliases parent storage")
	}
}

func TestValueCounts(t *testing.T) {
	tb := mustTable(t, []string{"A"}, 3, [][]Value{{1}, {3}, {3}, {2}, {3}})
	got := tb.ValueCounts(0)
	want := []int{1, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ValueCounts = %v, want %v", got, want)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := mustTable(t, []string{"A", "B", "C"}, 5,
		[][]Value{{1, 5, 3}, {2, 2, 2}, {5, 1, 4}})
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Attrs(), tb.Attrs()) {
		t.Errorf("attrs mismatch: %v", back.Attrs())
	}
	for i := 0; i < tb.NumRows(); i++ {
		for j := 0; j < tb.NumAttrs(); j++ {
			if back.At(i, j) != tb.At(i, j) {
				t.Fatalf("cell (%d,%d) mismatch", i, j)
			}
		}
	}
}

// TestCSVRoundTripRandomized drives WriteCSV/ReadCSV over randomized
// shapes (including single-column and single-row tables) and checks
// the round trip is lossless and that the reloaded table indexes
// identically to the original.
func TestCSVRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nAttrs := 1 + rng.Intn(6)
		k := 1 + rng.Intn(9)
		rows := 1 + rng.Intn(150)
		tb := randomIndexTable(t, rng, nAttrs, k, rows)
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()), k)
		if err != nil {
			t.Fatal(err)
		}
		if back.K() != k || back.NumRows() != rows || back.NumAttrs() != nAttrs {
			t.Fatalf("trial %d: shape %dx%d k=%d -> %dx%d k=%d", trial,
				rows, nAttrs, k, back.NumRows(), back.NumAttrs(), back.K())
		}
		if !reflect.DeepEqual(back.Attrs(), tb.Attrs()) {
			t.Fatalf("trial %d: attrs %v -> %v", trial, tb.Attrs(), back.Attrs())
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < nAttrs; j++ {
				if back.At(i, j) != tb.At(i, j) {
					t.Fatalf("trial %d: cell (%d,%d) mismatch", trial, i, j)
				}
			}
		}
		ixA, ixB := tb.Index(), back.Index()
		for a := 0; a < nAttrs; a++ {
			for v := Value(1); int(v) <= k; v++ {
				if ixA.Count(a, v) != ixB.Count(a, v) {
					t.Fatalf("trial %d: index count (%d,%d) mismatch", trial, a, v)
				}
			}
		}
	}
}

func TestReadCSVInfersK(t *testing.T) {
	in := "A,B\n1,4\n2,2\n"
	tb, err := ReadCSV(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tb.K() != 4 {
		t.Errorf("inferred K = %d, want 4", tb.K())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), 3); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := ReadCSV(strings.NewReader("A\nx\n"), 3); err == nil {
		t.Error("want error for non-numeric cell")
	}
	if _, err := ReadCSV(strings.NewReader("A\n0\n"), 3); err == nil {
		t.Error("want error for zero value")
	}
	if _, err := ReadCSV(strings.NewReader("A\n999\n"), 3); err == nil {
		t.Error("want error for oversized value")
	}
}

func TestEquiDepthThresholdsExample(t *testing.T) {
	// 9 entries, k=3: thresholds at sorted indexes 3 and 6.
	col := []float64{9, 8, 7, 6, 5, 4, 3, 2, 1}
	d := EquiDepth{Bins: 3}
	th, err := d.Thresholds(col)
	if err != nil {
		t.Fatal(err)
	}
	if len(th) != 2 || th[0] != 4 || th[1] != 7 {
		t.Errorf("thresholds = %v, want [4 7]", th)
	}
	vals, err := d.Discretize(col)
	if err != nil {
		t.Fatal(err)
	}
	want := []Value{3, 3, 3, 2, 2, 2, 1, 1, 1}
	if !reflect.DeepEqual(vals, want) {
		t.Errorf("values = %v, want %v", vals, want)
	}
}

func TestEquiDepthRoughlyBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	col := make([]float64, 1000)
	for i := range col {
		col[i] = rng.NormFloat64()
	}
	for _, k := range []int{2, 3, 5, 10} {
		vals, err := EquiDepth{Bins: k}.Discretize(col)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, k)
		for _, v := range vals {
			counts[v-1]++
		}
		want := len(col) / k
		for b, c := range counts {
			if c < want-want/2 || c > want+want/2 {
				t.Errorf("k=%d bucket %d count %d far from %d", k, b, c, want)
			}
		}
	}
}

func TestEquiDepthErrors(t *testing.T) {
	if _, err := (EquiDepth{Bins: 1}).Discretize([]float64{1, 2}); err == nil {
		t.Error("want error for bins=1")
	}
	if _, err := (EquiDepth{Bins: 5}).Discretize([]float64{1, 2}); err == nil {
		t.Error("want error for too few entries")
	}
}

func TestEquiWidth(t *testing.T) {
	// Gene database rule: 0-333 -> 1, 334-666 -> 2, 667-999 -> 3.
	d := EquiWidth{Bins: 3, Min: 0, Max: 999}
	vals, err := d.Discretize([]float64{54.23, 541.21, 855.78, 0, 999})
	if err != nil {
		t.Fatal(err)
	}
	want := []Value{1, 2, 3, 1, 3}
	if !reflect.DeepEqual(vals, want) {
		t.Errorf("equi-width = %v, want %v", vals, want)
	}
	// Observed-range fallback with constant column.
	vals, err = EquiWidth{Bins: 4}.Discretize([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v != 1 {
			t.Errorf("constant column should map to 1, got %v", vals)
		}
	}
	if _, err := (EquiWidth{Bins: 0}).Discretize([]float64{1}); err == nil {
		t.Error("want error for zero bins")
	}
	if _, err := (EquiWidth{Bins: 3}).Discretize(nil); err == nil {
		t.Error("want error for empty column")
	}
}

func TestDiscretizeMappedPatientRule(t *testing.T) {
	// Patient-database rule floor(a/10): ages 25,62,32 -> codes 2,6,3
	// which renumber densely to 1,3,2.
	vals, k, err := DiscretizeMapped([]float64{25, 62, 32}, func(v float64) int { return int(v / 10) })
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("k = %d, want 3", k)
	}
	want := []Value{1, 3, 2}
	if !reflect.DeepEqual(vals, want) {
		t.Errorf("vals = %v, want %v", vals, want)
	}
}

func TestDiscretizeColumns(t *testing.T) {
	raw := [][]float64{{1, 2, 3, 4, 5, 6}, {6, 5, 4, 3, 2, 1}}
	tb, err := DiscretizeColumns([]string{"A", "B"}, raw, EquiDepth{Bins: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tb.K() != 2 || tb.NumRows() != 6 {
		t.Fatalf("bad table k=%d rows=%d", tb.K(), tb.NumRows())
	}
	if _, err := DiscretizeColumns([]string{"A"}, raw, EquiDepth{Bins: 2}); err == nil {
		t.Error("want error for attr/column mismatch")
	}
	if _, err := DiscretizeColumns([]string{"A", "B"}, raw, Mapped{Cut: func(v float64) int { return 0 }}); err == nil {
		t.Error("want error for unknown-cardinality discretizer")
	}
}

// Property: equi-depth discretization always emits values in 1..k and
// applying fitted thresholds to the fitting column matches Discretize.
func TestEquiDepthProperties(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 2 + int(kRaw%6)
		rng := rand.New(rand.NewSource(seed))
		n := k + rng.Intn(200)
		col := make([]float64, n)
		for i := range col {
			col[i] = rng.NormFloat64() * 10
		}
		d := EquiDepth{Bins: k}
		vals, err := d.Discretize(col)
		if err != nil {
			return false
		}
		th, _ := d.Thresholds(col)
		again := ApplyThresholds(col, th)
		for i, v := range vals {
			if v < 1 || int(v) > k || again[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: CSV round trip is the identity on random tables.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAttrs := 1 + rng.Intn(6)
		k := 1 + rng.Intn(9)
		attrs := make([]string, nAttrs)
		for j := range attrs {
			attrs[j] = "A" + string(rune('a'+j))
		}
		tb, _ := New(attrs, k)
		rows := rng.Intn(40)
		row := make([]Value, nAttrs)
		for i := 0; i < rows; i++ {
			for j := range row {
				row[j] = Value(1 + rng.Intn(k))
			}
			if err := tb.AppendRow(row); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf, k)
		if err != nil {
			return false
		}
		if back.NumRows() != tb.NumRows() || back.NumAttrs() != tb.NumAttrs() {
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < nAttrs; j++ {
				if back.At(i, j) != tb.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
