// Package table implements the discrete database substrate D(A, O, V)
// from Chapter 3 of the paper: a table whose columns are multi-valued
// attributes, whose rows are observations, and whose entries come from
// a fixed finite value set V = {1, 2, ..., k}.
//
// Storage is column-major so that the association-hypergraph builder in
// internal/core can scan single attributes with good cache locality.
package table

import (
	"errors"
	"fmt"
	"sync"
)

// Value is a discretized attribute value. Valid values are 1..K for the
// owning table; 0 is reserved as "invalid/unset".
type Value uint8

// MaxK is the largest supported value-set cardinality.
const MaxK = 255

// Table is a database D(A, O, V) in the sense of Definition 3.1: a set
// of named multi-valued attributes (columns), a set of observations
// (rows), and a fixed finite value set V = {1..K}.
type Table struct {
	attrs []string
	index map[string]int
	cols  [][]Value
	k     int
	rows  int

	// idx is the lazily built TID-bitset index (see index.go). It is
	// cached with the row count it was built at so AppendRow-extended
	// tables rebuild transparently.
	idxMu sync.Mutex
	idx   *Index
}

// New returns an empty table with the given attribute names and value
// cardinality k (so V = {1..k}).
func New(attrs []string, k int) (*Table, error) {
	if len(attrs) == 0 {
		return nil, errors.New("table: no attributes")
	}
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("table: cardinality k=%d out of range [1,%d]", k, MaxK)
	}
	idx := make(map[string]int, len(attrs))
	for j, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("table: empty attribute name at column %d", j)
		}
		if _, dup := idx[a]; dup {
			return nil, fmt.Errorf("table: duplicate attribute %q", a)
		}
		idx[a] = j
	}
	cols := make([][]Value, len(attrs))
	names := make([]string, len(attrs))
	copy(names, attrs)
	return &Table{attrs: names, index: idx, cols: cols, k: k}, nil
}

// FromRows builds a table from row-major data, inferring nothing: every
// entry must already lie in 1..k.
func FromRows(attrs []string, k int, rows [][]Value) (*Table, error) {
	t, err := New(attrs, k)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if err := t.AppendRow(r); err != nil {
			return nil, fmt.Errorf("table: row %d: %w", i, err)
		}
	}
	return t, nil
}

// FromColumns builds a table from column-major data. All columns must
// have equal length and entries in 1..k. The column slices are copied.
func FromColumns(attrs []string, k int, cols [][]Value) (*Table, error) {
	t, err := New(attrs, k)
	if err != nil {
		return nil, err
	}
	if len(cols) != len(attrs) {
		return nil, fmt.Errorf("table: %d attributes but %d columns", len(attrs), len(cols))
	}
	n := -1
	for j, c := range cols {
		if n == -1 {
			n = len(c)
		} else if len(c) != n {
			return nil, fmt.Errorf("table: column %d has %d rows, want %d", j, len(c), n)
		}
		for i, v := range c {
			if v < 1 || int(v) > k {
				return nil, fmt.Errorf("table: column %d row %d: value %d outside 1..%d", j, i, v, k)
			}
		}
		t.cols[j] = append([]Value(nil), c...)
	}
	t.rows = n
	return t, nil
}

// FromRawColumns builds a table from column-major raw bytes (one byte
// per cell, as stored in binary model snapshots), validating and
// converting in a single pass. The byte slices are not retained.
func FromRawColumns(attrs []string, k int, cols [][]byte) (*Table, error) {
	t, err := New(attrs, k)
	if err != nil {
		return nil, err
	}
	if len(cols) != len(attrs) {
		return nil, fmt.Errorf("table: %d attributes but %d columns", len(attrs), len(cols))
	}
	n := -1
	for j, c := range cols {
		if n == -1 {
			n = len(c)
		} else if len(c) != n {
			return nil, fmt.Errorf("table: column %d has %d rows, want %d", j, len(c), n)
		}
		col := make([]Value, len(c))
		for i, b := range c {
			if b < 1 || int(b) > k {
				return nil, fmt.Errorf("table: column %d row %d: value %d outside 1..%d", j, i, b, k)
			}
			col[i] = Value(b)
		}
		t.cols[j] = col
	}
	t.rows = n
	return t, nil
}

// AppendRow appends one observation. The row must have one value per
// attribute, each in 1..K.
func (t *Table) AppendRow(row []Value) error {
	if len(row) != len(t.attrs) {
		return fmt.Errorf("table: row has %d values, want %d", len(row), len(t.attrs))
	}
	for j, v := range row {
		if v < 1 || int(v) > t.k {
			return fmt.Errorf("table: column %q: value %d outside 1..%d", t.attrs[j], v, t.k)
		}
	}
	for j, v := range row {
		t.cols[j] = append(t.cols[j], v)
	}
	t.rows++
	return nil
}

// K returns the value-set cardinality, i.e. |V|.
func (t *Table) K() int { return t.k }

// NumRows returns the number of observations.
func (t *Table) NumRows() int { return t.rows }

// NumAttrs returns the number of attributes.
func (t *Table) NumAttrs() int { return len(t.attrs) }

// Attrs returns the attribute names in column order. The slice is a copy.
func (t *Table) Attrs() []string {
	out := make([]string, len(t.attrs))
	copy(out, t.attrs)
	return out
}

// AttrName returns the name of column j.
func (t *Table) AttrName(j int) string { return t.attrs[j] }

// AttrIndex returns the column index of the named attribute, or -1.
func (t *Table) AttrIndex(name string) int {
	if j, ok := t.index[name]; ok {
		return j
	}
	return -1
}

// At returns the value of attribute column j in observation row i.
func (t *Table) At(i, j int) Value { return t.cols[j][i] }

// Column returns the backing slice for column j. Callers must treat it
// as read-only; it is shared, not copied, because the builder's hot
// loops depend on zero-copy access.
func (t *Table) Column(j int) []Value { return t.cols[j] }

// Row copies observation i into dst (allocating if dst is too small)
// and returns it.
func (t *Table) Row(i int, dst []Value) []Value {
	if cap(dst) < len(t.cols) {
		dst = make([]Value, len(t.cols))
	}
	dst = dst[:len(t.cols)]
	for j := range t.cols {
		dst[j] = t.cols[j][i]
	}
	return dst
}

// RowRange returns a new table containing observations [lo, hi). The
// underlying data is copied so the slice can be mutated independently.
func (t *Table) RowRange(lo, hi int) (*Table, error) {
	if lo < 0 || hi > t.rows || lo > hi {
		return nil, fmt.Errorf("table: row range [%d,%d) outside [0,%d)", lo, hi, t.rows)
	}
	out, err := New(t.attrs, t.k)
	if err != nil {
		return nil, err
	}
	for j := range t.cols {
		out.cols[j] = append([]Value(nil), t.cols[j][lo:hi]...)
	}
	out.rows = hi - lo
	return out, nil
}

// SelectAttrs returns a new table containing only the named attributes,
// in the given order. Data is copied.
func (t *Table) SelectAttrs(names []string) (*Table, error) {
	out, err := New(names, t.k)
	if err != nil {
		return nil, err
	}
	for j, name := range names {
		src := t.AttrIndex(name)
		if src < 0 {
			return nil, fmt.Errorf("table: unknown attribute %q", name)
		}
		out.cols[j] = append([]Value(nil), t.cols[src]...)
	}
	out.rows = t.rows
	return out, nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out, _ := New(t.attrs, t.k)
	for j := range t.cols {
		out.cols[j] = append([]Value(nil), t.cols[j]...)
	}
	out.rows = t.rows
	return out
}

// Validate re-checks every structural invariant. It is cheap relative
// to mining and is called by the builder before a long run.
func (t *Table) Validate() error {
	if len(t.attrs) == 0 {
		return errors.New("table: no attributes")
	}
	if t.k < 1 || t.k > MaxK {
		return fmt.Errorf("table: cardinality %d out of range", t.k)
	}
	if len(t.cols) != len(t.attrs) {
		return fmt.Errorf("table: %d columns for %d attributes", len(t.cols), len(t.attrs))
	}
	for j, c := range t.cols {
		if len(c) != t.rows {
			return fmt.Errorf("table: column %q has %d rows, want %d", t.attrs[j], len(c), t.rows)
		}
		for i, v := range c {
			if v < 1 || int(v) > t.k {
				return fmt.Errorf("table: column %q row %d: value %d outside 1..%d", t.attrs[j], i, v, t.k)
			}
		}
	}
	for name, j := range t.index {
		if j < 0 || j >= len(t.attrs) || t.attrs[j] != name {
			return fmt.Errorf("table: corrupt index entry %q->%d", name, j)
		}
	}
	return nil
}

// ValueCounts returns, for column j, a histogram over 1..K (index 0 of
// the result corresponds to value 1).
func (t *Table) ValueCounts(j int) []int {
	counts := make([]int, t.k)
	for _, v := range t.cols[j] {
		counts[v-1]++
	}
	return counts
}
