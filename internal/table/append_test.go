package table

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomRows generates n rows over attrs attributes with values 1..k.
func randomRows(rng *rand.Rand, n, attrs, k int) [][]Value {
	rows := make([][]Value, n)
	for i := range rows {
		row := make([]Value, attrs)
		for j := range row {
			row[j] = Value(1 + rng.Intn(k))
		}
		rows[i] = row
	}
	return rows
}

// indexEqual compares two indexes field by field, bit for bit.
func indexEqual(t *testing.T, got, want *Index) {
	t.Helper()
	if got.attrs != want.attrs || got.k != want.k || got.rows != want.rows || got.words != want.words {
		t.Fatalf("index shape: got (attrs=%d k=%d rows=%d words=%d), want (attrs=%d k=%d rows=%d words=%d)",
			got.attrs, got.k, got.rows, got.words, want.attrs, want.k, want.rows, want.words)
	}
	if !reflect.DeepEqual(got.bits, want.bits) {
		t.Fatal("index bits differ from rebuilt-from-scratch index")
	}
	if !reflect.DeepEqual(got.counts, want.counts) {
		t.Fatal("index counts differ from rebuilt-from-scratch index")
	}
}

// TestAppendRowsIndexEquivalence is the layer-1 differential test:
// across randomized append schedules, the copy-on-extend index must be
// bit-identical to one rebuilt from scratch on the appended table.
func TestAppendRowsIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		attrs := 2 + rng.Intn(5)
		k := 1 + rng.Intn(6)
		names := make([]string, attrs)
		for j := range names {
			names[j] = string(rune('a' + j))
		}
		tb, err := FromRows(names, k, randomRows(rng, 1+rng.Intn(100), attrs, k))
		if err != nil {
			t.Fatal(err)
		}
		tb.Index() // seed the cache so appends extend it
		for step := 0; step < 4; step++ {
			batch := randomRows(rng, rng.Intn(40), attrs, k) // includes empty batches
			nt, err := tb.AppendRows(batch)
			if err != nil {
				t.Fatal(err)
			}
			got := nt.IndexIfBuilt()
			if got == nil {
				t.Fatal("AppendRows did not carry an extended index despite a fresh cache on the receiver")
			}
			indexEqual(t, got, buildIndex(nt))
			tb = nt
		}
	}
}

// TestAppendRowsLeavesReceiverUntouched pins the functional contract:
// the old table (rows, values, index) is unchanged by an append.
func TestAppendRowsLeavesReceiverUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb, err := FromRows([]string{"x", "y", "z"}, 3, randomRows(rng, 50, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	oldIdx := tb.Index()
	snapshot := tb.Clone()
	nt, err := tb.AppendRows(randomRows(rng, 7, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 50 || nt.NumRows() != 57 {
		t.Fatalf("rows: old=%d new=%d, want 50/57", tb.NumRows(), nt.NumRows())
	}
	for j := 0; j < 3; j++ {
		if !reflect.DeepEqual(tb.Column(j), snapshot.Column(j)) {
			t.Fatalf("append mutated receiver column %d", j)
		}
	}
	if tb.IndexIfBuilt() != oldIdx {
		t.Fatal("append replaced the receiver's cached index")
	}
	if nt.IndexIfBuilt() == oldIdx {
		t.Fatal("new table shares the old index object")
	}
}

// TestAppendRawMatchesAppendRows pins that the raw column-major path
// and the row-major path build identical tables.
func TestAppendRawMatchesAppendRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tb, err := FromRows([]string{"p", "q"}, 4, randomRows(rng, 30, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	rows := randomRows(rng, 9, 2, 4)
	cols := make([][]byte, 2)
	for j := range cols {
		cols[j] = make([]byte, len(rows))
		for i, row := range rows {
			cols[j][i] = byte(row[j])
		}
	}
	byRows, err := tb.AppendRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	byRaw, err := tb.AppendRaw(cols)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if !reflect.DeepEqual(byRows.Column(j), byRaw.Column(j)) {
			t.Fatalf("column %d: AppendRaw differs from AppendRows", j)
		}
	}
}

// TestAppendValidatesBeforeAllocating pins atomicity: a bad row or
// column yields an error and no new table.
func TestAppendValidatesBeforeAllocating(t *testing.T) {
	tb, err := FromRows([]string{"a", "b"}, 2, [][]Value{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AppendRows([][]Value{{1, 2}, {1}}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := tb.AppendRows([][]Value{{1, 2}, {1, 3}}); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	if _, err := tb.AppendRaw([][]byte{{1}}); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := tb.AppendRaw([][]byte{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged columns accepted")
	}
	if _, err := tb.AppendRaw([][]byte{{1}, {0}}); err == nil {
		t.Fatal("zero value accepted")
	}
	if tb.NumRows() != 1 {
		t.Fatalf("failed append changed the receiver: rows=%d", tb.NumRows())
	}
}

// TestIndexExtendsAfterAppendRow pins the in-place mutation path: an
// AppendRow after an index build must refresh via extendIndex and match
// a scratch rebuild bit for bit.
func TestIndexExtendsAfterAppendRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tb, err := FromRows([]string{"a", "b", "c"}, 3, randomRows(rng, 70, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	tb.Index()
	for i := 0; i < 5; i++ {
		if err := tb.AppendRow(randomRows(rng, 1, 3, 3)[0]); err != nil {
			t.Fatal(err)
		}
	}
	indexEqual(t, tb.Index(), buildIndex(tb))
}

// TestAppendEmptyBatch pins the no-op case: zero rows still yields a
// distinct, equal table.
func TestAppendEmptyBatch(t *testing.T) {
	tb, err := FromRows([]string{"a"}, 2, [][]Value{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	nt, err := tb.AppendRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if nt == tb {
		t.Fatal("empty append returned the receiver")
	}
	if nt.NumRows() != tb.NumRows() {
		t.Fatalf("empty append changed rows: %d != %d", nt.NumRows(), tb.NumRows())
	}
}
