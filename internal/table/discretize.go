package table

import (
	"fmt"
	"math"
	"sort"
)

// A Discretizer maps a raw real-valued column onto the discrete value
// set {1..K()} of a table.
type Discretizer interface {
	// Discretize maps every entry of col into 1..K().
	Discretize(col []float64) ([]Value, error)
	// K reports the cardinality of the produced value set.
	K() int
}

// EquiWidth partitions the observed [min, max] range of each column
// into k equal-width bins. Used by the gene-database example
// (Table 3.3 -> 3.4 in the paper, where fixed ranges map to down /
// steady / up).
type EquiWidth struct {
	Bins int
	// Min/Max optionally pin the range; if Min >= Max the observed
	// column range is used instead.
	Min, Max float64
}

// K implements Discretizer.
func (d EquiWidth) K() int { return d.Bins }

// Discretize implements Discretizer.
func (d EquiWidth) Discretize(col []float64) ([]Value, error) {
	if d.Bins < 1 || d.Bins > MaxK {
		return nil, fmt.Errorf("table: equi-width bins %d out of range", d.Bins)
	}
	if len(col) == 0 {
		return nil, fmt.Errorf("table: equi-width: empty column")
	}
	lo, hi := d.Min, d.Max
	if lo >= hi {
		lo, hi = col[0], col[0]
		for _, v := range col[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	out := make([]Value, len(col))
	width := (hi - lo) / float64(d.Bins)
	for i, v := range col {
		if width == 0 || math.IsNaN(v) {
			out[i] = 1
			continue
		}
		b := int((v - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= d.Bins {
			b = d.Bins - 1
		}
		out[i] = Value(b + 1)
	}
	return out, nil
}

// EquiDepth performs the paper's equi-depth partitioning (§5.1.1): a
// k-threshold vector is computed so that each of the k buckets receives
// roughly 1/k of the entries, then entries are mapped by threshold
// comparison.
type EquiDepth struct {
	Bins int
}

// K implements Discretizer.
func (d EquiDepth) K() int { return d.Bins }

// Thresholds returns the (k-1)-tuple <a_1 ... a_{k-1}> of Section
// 5.1.1: after sorting the column, a_i is the floor((i/k)*N)'th entry.
func (d EquiDepth) Thresholds(col []float64) ([]float64, error) {
	k := d.Bins
	if k < 2 || k > MaxK {
		return nil, fmt.Errorf("table: equi-depth bins %d out of range [2,%d]", k, MaxK)
	}
	n := len(col)
	if n < k {
		return nil, fmt.Errorf("table: equi-depth: %d entries for %d bins", n, k)
	}
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	th := make([]float64, k-1)
	for i := 1; i <= k-1; i++ {
		idx := i * n / k
		if idx >= n {
			idx = n - 1
		}
		th[i-1] = sorted[idx]
	}
	return th, nil
}

// Discretize implements Discretizer: entry v maps to the smallest i
// such that v < a_i, or k if v >= a_{k-1}.
func (d EquiDepth) Discretize(col []float64) ([]Value, error) {
	th, err := d.Thresholds(col)
	if err != nil {
		return nil, err
	}
	return ApplyThresholds(col, th), nil
}

// ApplyThresholds maps each entry through the ascending threshold
// vector th (length k-1), producing values in 1..k: an entry in the
// range [a_{i-1}, a_i) maps to value i, per §5.1.1. This is exposed
// separately so that out-of-sample data can be discretized with the
// thresholds fitted on the training window, as §5.5 requires.
func ApplyThresholds(col []float64, th []float64) []Value {
	out := make([]Value, len(col))
	for i, v := range col {
		// Number of thresholds <= v, i.e. first index with th[j] > v.
		b := sort.Search(len(th), func(j int) bool { return th[j] > v })
		out[i] = Value(b + 1)
		if math.IsNaN(v) {
			out[i] = 1
		}
	}
	return out
}

// Mapped discretizes via an arbitrary user cut function, then
// normalizes the produced codes onto 1..k preserving order. It covers
// cases like the patient database's floor(a/10) rule (Table 3.2).
type Mapped struct {
	Cut func(float64) int
}

// K reports 0: the cardinality is data-dependent; use DiscretizeMapped.
func (d Mapped) K() int { return 0 }

// Discretize implements Discretizer; it fails if more than MaxK
// distinct codes are produced.
func (d Mapped) Discretize(col []float64) ([]Value, error) {
	vals, _, err := DiscretizeMapped(col, d.Cut)
	return vals, err
}

// DiscretizeMapped applies cut to every entry and renumbers the
// resulting codes densely onto 1..k in ascending code order, returning
// the values and k.
func DiscretizeMapped(col []float64, cut func(float64) int) ([]Value, int, error) {
	codes := make([]int, len(col))
	seen := map[int]bool{}
	for i, v := range col {
		c := cut(v)
		codes[i] = c
		seen[c] = true
	}
	if len(seen) > MaxK {
		return nil, 0, fmt.Errorf("table: mapped discretizer produced %d codes (max %d)", len(seen), MaxK)
	}
	uniq := make([]int, 0, len(seen))
	for c := range seen {
		uniq = append(uniq, c)
	}
	sort.Ints(uniq)
	rank := make(map[int]Value, len(uniq))
	for i, c := range uniq {
		rank[c] = Value(i + 1)
	}
	out := make([]Value, len(col))
	for i, c := range codes {
		out[i] = rank[c]
	}
	return out, len(uniq), nil
}

// DiscretizeColumns applies one Discretizer with a fixed K to every raw
// column and assembles the result into a table.
func DiscretizeColumns(attrs []string, raw [][]float64, d Discretizer) (*Table, error) {
	if d.K() < 1 {
		return nil, fmt.Errorf("table: discretizer has unknown cardinality")
	}
	if len(attrs) != len(raw) {
		return nil, fmt.Errorf("table: %d attributes but %d raw columns", len(attrs), len(raw))
	}
	cols := make([][]Value, len(raw))
	for j, c := range raw {
		vals, err := d.Discretize(c)
		if err != nil {
			return nil, fmt.Errorf("table: column %q: %w", attrs[j], err)
		}
		cols[j] = vals
	}
	return FromColumns(attrs, d.K(), cols)
}
