package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the table as CSV: a header row of attribute names
// followed by one row per observation of integer values in 1..K.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.attrs); err != nil {
		return err
	}
	rec := make([]string, len(t.attrs))
	for i := 0; i < t.rows; i++ {
		for j := range t.cols {
			rec[j] = strconv.Itoa(int(t.cols[j][i]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table previously written by WriteCSV. If k <= 0 the
// cardinality is inferred as the maximum value observed.
func ReadCSV(r io.Reader, k int) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("table: csv: empty input")
	}
	header := recs[0]
	data := recs[1:]
	maxV := 0
	rows := make([][]Value, len(data))
	for i, rec := range data {
		row := make([]Value, len(rec))
		for j, field := range rec {
			n, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("table: csv row %d col %d: %w", i+1, j, err)
			}
			if n < 1 || n > MaxK {
				return nil, fmt.Errorf("table: csv row %d col %d: value %d outside 1..%d", i+1, j, n, MaxK)
			}
			if n > maxV {
				maxV = n
			}
			row[j] = Value(n)
		}
		rows[i] = row
	}
	if k <= 0 {
		k = maxV
	}
	if k == 0 {
		k = 1
	}
	return FromRows(header, k, rows)
}
