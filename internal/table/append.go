// Functional append: the live-dataset pipeline in internal/delta
// republishes a model after every append while the previous generation
// keeps serving queries, so appended tables must never mutate storage a
// served model can still observe. AppendRows and AppendRaw therefore
// return a NEW *Table (fresh column arrays, the receiver untouched) and
// extend the receiver's TID-bitset index copy-on-extend: the new index
// copies the old posting words and scans only the appended rows, so the
// delta work is proportional to the appended suffix, not the table.
package table

import "fmt"

// AppendRows returns a new table equal to t with the given observations
// appended. Every row must have one value per attribute, each in 1..K;
// validation happens before any allocation, so on error no partial
// state exists anywhere. The receiver is not modified — models already
// mined from it (and queries in flight against them) stay valid.
//
// If t has a fresh cached index, the new table's index is derived from
// it by extendIndex (copy old posting words, scan only the appended
// rows) rather than rebuilt from scratch.
func (t *Table) AppendRows(rows [][]Value) (*Table, error) {
	for i, row := range rows {
		if len(row) != len(t.attrs) {
			return nil, fmt.Errorf("table: append row %d has %d values, want %d", i, len(row), len(t.attrs))
		}
		for j, v := range row {
			if v < 1 || int(v) > t.k {
				return nil, fmt.Errorf("table: append row %d column %q: value %d outside 1..%d", i, t.attrs[j], v, t.k)
			}
		}
	}
	nt := t.appendShell(len(rows))
	for j := range nt.cols {
		col := nt.cols[j]
		for _, row := range rows {
			col = append(col, row[j])
		}
		nt.cols[j] = col
	}
	nt.extendCachedIndex(t)
	return nt, nil
}

// AppendRaw is AppendRows for column-major raw bytes (one byte per
// cell, the wire format of snapshot bodies and the `:append` endpoint):
// cols[j] holds the appended values of attribute j. All columns must
// have equal length and values in 1..K. The byte slices are not
// retained.
func (t *Table) AppendRaw(cols [][]byte) (*Table, error) {
	if len(cols) != len(t.attrs) {
		return nil, fmt.Errorf("table: append has %d columns, want %d", len(cols), len(t.attrs))
	}
	add := -1
	for j, c := range cols {
		if add == -1 {
			add = len(c)
		} else if len(c) != add {
			return nil, fmt.Errorf("table: append column %q has %d rows, want %d", t.attrs[j], len(c), add)
		}
		for i, b := range c {
			if b < 1 || int(b) > t.k {
				return nil, fmt.Errorf("table: append column %q row %d: value %d outside 1..%d", t.attrs[j], i, b, t.k)
			}
		}
	}
	if add == -1 {
		add = 0
	}
	nt := t.appendShell(add)
	for j, c := range cols {
		col := nt.cols[j]
		for _, b := range c {
			col = append(col, Value(b))
		}
		nt.cols[j] = col
	}
	nt.extendCachedIndex(t)
	return nt, nil
}

// appendShell builds the new table with the old column data copied into
// fresh arrays sized for add more rows. Fresh arrays (rather than
// append-shared backing) keep the old and new tables fully disjoint:
// two tables must never write into a shared capacity tail.
func (t *Table) appendShell(add int) *Table {
	nt := &Table{
		attrs: t.attrs,
		index: t.index,
		cols:  make([][]Value, len(t.cols)),
		k:     t.k,
		rows:  t.rows + add,
	}
	for j, c := range t.cols {
		col := make([]Value, t.rows, t.rows+add)
		copy(col, c)
		nt.cols[j] = col
	}
	return nt
}

// extendCachedIndex seeds nt's index cache from t's, if t has a fresh
// one, by extending it over nt's appended rows.
func (nt *Table) extendCachedIndex(t *Table) {
	if old := t.IndexIfBuilt(); old != nil {
		nt.idx = extendIndex(old, nt)
	}
}
