package table

import (
	"math/rand"
	"testing"
)

func randomIndexTable(t *testing.T, rng *rand.Rand, nAttrs, k, rows int) *Table {
	t.Helper()
	attrs := make([]string, nAttrs)
	for j := range attrs {
		attrs[j] = "A" + string(rune('a'+j))
	}
	tb, err := New(attrs, k)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]Value, nAttrs)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = Value(1 + rng.Intn(k))
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// TestIndexPostingsMatchScan checks every posting bitmap and cached
// count against a direct column scan, over a spread of row counts that
// exercises partial last words (rows % 64 != 0) and the empty-posting
// case.
func TestIndexPostingsMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rows := range []int{1, 63, 64, 65, 128, 1000} {
		tb := randomIndexTable(t, rng, 5, 4, rows)
		ix := tb.Index()
		if ix.Rows() != rows || ix.K() != 4 {
			t.Fatalf("rows=%d: index reports rows=%d k=%d", rows, ix.Rows(), ix.K())
		}
		if want := (rows + 63) / 64; ix.Words() != want {
			t.Fatalf("rows=%d: words=%d, want %d", rows, ix.Words(), want)
		}
		for a := 0; a < tb.NumAttrs(); a++ {
			for v := Value(1); int(v) <= tb.K(); v++ {
				p := ix.Posting(a, v)
				if len(p) != ix.Words() {
					t.Fatalf("posting(%d,%d) has %d words", a, v, len(p))
				}
				count := 0
				for i := 0; i < rows; i++ {
					got := p[i>>6]&(1<<(uint(i)&63)) != 0
					want := tb.At(i, a) == v
					if got != want {
						t.Fatalf("rows=%d posting(%d,%d) bit %d = %v, want %v", rows, a, v, i, got, want)
					}
					if want {
						count++
					}
				}
				if ix.Count(a, v) != count {
					t.Fatalf("Count(%d,%d) = %d, want %d", a, v, ix.Count(a, v), count)
				}
				if Popcount(p) != count {
					t.Fatalf("Popcount(posting(%d,%d)) = %d, want %d", a, v, Popcount(p), count)
				}
				// No stray bits past the last row.
				if rows%64 != 0 {
					if tail := p[len(p)-1] >> (uint(rows) & 63); tail != 0 {
						t.Fatalf("posting(%d,%d) has bits past row %d", a, v, rows)
					}
				}
			}
		}
	}
}

// TestIndexIntersectionsMatchScan checks PopcountAnd/AndInto-based
// conjunction counts against row-by-row scanning.
func TestIndexIntersectionsMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tb := randomIndexTable(t, rng, 6, 3, 777)
	ix := tb.Index()
	scratch := make([]uint64, ix.Words())
	for trial := 0; trial < 200; trial++ {
		// Random conjunction over 2-4 distinct attributes.
		nItems := 2 + rng.Intn(3)
		attrs := rng.Perm(tb.NumAttrs())[:nItems]
		vals := make([]Value, nItems)
		for i := range vals {
			vals[i] = Value(1 + rng.Intn(tb.K()))
		}
		copy(scratch, ix.Posting(attrs[0], vals[0]))
		for i := 1; i < nItems-1; i++ {
			AndInto(scratch, ix.Posting(attrs[i], vals[i]))
		}
		got := PopcountAnd(scratch, ix.Posting(attrs[nItems-1], vals[nItems-1]))
		want := 0
	rows:
		for i := 0; i < tb.NumRows(); i++ {
			for j, a := range attrs {
				if tb.At(i, a) != vals[j] {
					continue rows
				}
			}
			want++
		}
		if got != want {
			t.Fatalf("trial %d: bitset count %d, scan count %d", trial, got, want)
		}
	}
}

// BenchmarkIndexBuild measures the one-time cost the bitset counting
// paths amortize: building the TID-bitset index itself. The cached
// index is dropped in-package each iteration so only the build is
// timed (no table clone in the loop).
func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	attrs := make([]string, 50)
	for j := range attrs {
		attrs[j] = "A" + string(rune('a'+j%26)) + string(rune('a'+j/26))
	}
	tb, err := New(attrs, 3)
	if err != nil {
		b.Fatal(err)
	}
	row := make([]Value, len(attrs))
	for i := 0; i < 1000; i++ {
		for j := range row {
			row[j] = Value(1 + rng.Intn(3))
		}
		if err := tb.AppendRow(row); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.idxMu.Lock()
		tb.idx = nil
		tb.idxMu.Unlock()
		_ = tb.Index()
	}
}

// TestIndexCachingAndStaleness: the index is built once and shared, and
// a table extended after indexing rebuilds rather than serving stale
// postings.
func TestIndexCachingAndStaleness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tb := randomIndexTable(t, rng, 3, 3, 100)
	if tb.IndexIfBuilt() != nil {
		t.Fatal("IndexIfBuilt returned an index before any build")
	}
	ix1 := tb.Index()
	if tb.Index() != ix1 || tb.IndexIfBuilt() != ix1 {
		t.Fatal("index not cached")
	}
	if err := tb.AppendRow([]Value{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if tb.IndexIfBuilt() != nil {
		t.Fatal("IndexIfBuilt returned a stale index after AppendRow")
	}
	ix2 := tb.Index()
	if ix2 == ix1 {
		t.Fatal("index not rebuilt after AppendRow")
	}
	if ix2.Rows() != 101 {
		t.Fatalf("rebuilt index covers %d rows, want 101", ix2.Rows())
	}
	if got := ix2.Count(2, 3); got != Popcount(ix2.Posting(2, 3)) {
		t.Fatalf("rebuilt count cache inconsistent: %d", got)
	}
}
