package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAllocAnalyzer enforces the //hyper:noalloc annotation: the warm
// path of an annotated function must contain no allocating constructs.
// Flagged on the warm path:
//
//   - string concatenation (+ / +=) and string<->[]byte/[]rune
//     conversions
//   - any call into package fmt
//   - make, new, and append (growth allocates; annotated functions
//     work in caller-provided or fixed-size scratch)
//   - slice, map, and &composite literals
//   - function literals that capture enclosing variables
//   - go statements
//   - boxing a non-pointer-shaped value into an interface parameter
//
// Cold branches are exempt: the body of an `if` whose block ends in a
// return (or panic) is treated as an error/early-exit path — exactly
// the guard-clause shape the AllocsPerRun pins never execute. This is
// the same contract those tests sample at runtime, enforced at every
// call site at compile time.
var NoAllocAnalyzer = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //hyper:noalloc must not allocate on their warm path",
	Run:  runNoAlloc,
}

// NoAllocDirective is the annotation comment that opts a function into
// the check.
const NoAllocDirective = "//hyper:noalloc"

func runNoAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd, NoAllocDirective) {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
	return nil
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	w := &noAllocWalker{pass: pass, fn: fd}
	w.block(fd.Body)
}

type noAllocWalker struct {
	pass *Pass
	fn   *ast.FuncDecl
}

func (w *noAllocWalker) block(b *ast.BlockStmt) {
	for _, stmt := range b.List {
		w.stmt(stmt)
	}
}

// stmt walks one statement, skipping the bodies of cold guard clauses.
func (w *noAllocWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.node(s.Init)
		}
		w.node(s.Cond)
		if blockExits(s.Body) {
			// Cold error/early-return branch: exempt.
		} else {
			w.block(s.Body)
		}
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.BlockStmt:
		w.block(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.node(s.Init)
		}
		if s.Cond != nil {
			w.node(s.Cond)
		}
		if s.Post != nil {
			w.node(s.Post)
		}
		w.block(s.Body)
	case *ast.RangeStmt:
		w.node(s.X)
		w.block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.node(s.Init)
		}
		if s.Tag != nil {
			w.node(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.node(e)
			}
			for _, st := range cc.Body {
				w.stmt(st)
			}
		}
	default:
		w.node(s)
	}
}

// blockExits reports whether the block's last statement leaves the
// function (return or panic) — the guard-clause shape.
func blockExits(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// node scans an arbitrary warm-path subtree for allocating constructs.
func (w *noAllocWalker) node(n ast.Node) {
	info := w.pass.TypesInfo
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n.X) {
				w.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(info, n.Lhs[0]) {
				w.report(n.Pos(), "string += allocates")
			}
		case *ast.CallExpr:
			w.call(n)
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if ok && (isSliceType(tv.Type) || isMapType(tv.Type)) {
				w.report(n.Pos(), "slice/map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.report(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.FuncLit:
			if capturesVariables(info, n) {
				w.report(n.Pos(), "capturing closure allocates")
			}
			return false // don't double-report the literal's own body
		case *ast.GoStmt:
			w.report(n.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
}

func (w *noAllocWalker) call(call *ast.CallExpr) {
	info := w.pass.TypesInfo
	if isConversion(info, call) {
		w.conversion(call)
		return
	}
	obj := calleeObj(info, call)
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "make":
			w.report(call.Pos(), "make allocates")
		case "new":
			w.report(call.Pos(), "new allocates")
		case "append":
			w.report(call.Pos(), "append may grow and allocate")
		}
		return
	}
	if isPkgFunc(obj, "fmt") {
		// One finding per fmt call; its variadic boxing is implied.
		w.report(call.Pos(), "fmt.%s allocates", obj.Name())
		return
	}
	w.boxedArgs(call)
}

// conversion flags string<->byte/rune slice conversions, which copy.
func (w *noAllocWalker) conversion(call *ast.CallExpr) {
	info := w.pass.TypesInfo
	if len(call.Args) != 1 {
		return
	}
	to := info.Types[call.Fun].Type
	from := info.Types[call.Args[0]].Type
	if to == nil || from == nil {
		return
	}
	toStr, fromStr := isStringType(to), isStringType(from)
	toSl, fromSl := isSliceType(to), isSliceType(from)
	if (toStr && fromSl) || (fromStr && toSl) {
		w.report(call.Pos(), "string<->slice conversion allocates")
	}
}

// boxedArgs flags arguments whose concrete, non-pointer-shaped values
// are boxed into interface parameters. Pointer-shaped kinds (pointers,
// maps, channels, funcs, slices, interfaces, strings) do not allocate
// on conversion.
func (w *noAllocWalker) boxedArgs(call *ast.CallExpr) {
	info := w.pass.TypesInfo
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().Underlying().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if tv := info.Types[arg]; tv.Value != nil && tv.IsNil() {
			continue
		}
		w.report(arg.Pos(), "boxing %s into interface parameter allocates", at.String())
	}
}

func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Slice:
		return true
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturesVariables reports whether the function literal references
// variables declared outside itself (package-level state excluded:
// referencing a global does not force a heap closure).
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Parent() == nil {
			return true
		}
		// Package-scope variables don't force a closure allocation.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return !captured
	})
	return captured
}

func (w *noAllocWalker) report(pos token.Pos, format string, args ...any) {
	w.pass.Reportf(pos, "//hyper:noalloc %s: "+format, append([]any{w.fn.Name.Name}, args...)...)
}
