package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafeAnalyzer forbids blocking operations while a sync.Mutex or
// sync.RWMutex is held: channel sends/receives, select statements,
// time.Sleep, and calls into the net / net/http packages. Holding a
// lock across any of these turns a slow peer (or a never-ready
// channel) into a registry-wide or engine-wide stall.
//
// Tracking is per statement list with lexical ordering: a critical
// region opens at `mu.Lock()` / `mu.RLock()` (or closes over the rest
// of the function after `defer mu.Unlock()`) and closes at the
// matching Unlock in the same or a nested list. Nested blocks inherit
// a copy of the lock state, so a branch that unlocks before blocking
// (the memo/singleflight pattern) is recognized as safe. Function
// literal bodies are not scanned — a spawned goroutine does not hold
// the caller's lock.
var LockSafeAnalyzer = &Analyzer{
	Name: "locksafe",
	Doc:  "no channel operation, network call, or sleep while a sync mutex is held",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, fn: fd}
			w.walkList(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

type lockWalker struct {
	pass *Pass
	fn   *ast.FuncDecl
}

// walkList walks one statement list with the set of held mutexes
// (keyed by receiver expression text). The map is owned by the caller;
// nested control flow gets copies, so only straight-line Lock/Unlock
// in the same list mutates the caller's view.
func (w *lockWalker) walkList(list []ast.Stmt, held map[string]bool) {
	for _, stmt := range list {
		if mu, locks := lockCall(w.pass.TypesInfo, stmt); mu != "" {
			if locks {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			continue
		}
		if len(held) > 0 {
			w.scan(stmt, held)
		}
		w.recurse(stmt, held)
	}
}

// recurse descends into nested statement lists with a copied state.
func (w *lockWalker) recurse(stmt ast.Stmt, held map[string]bool) {
	copyHeld := func() map[string]bool {
		c := make(map[string]bool, len(held))
		for k, v := range held {
			c[k] = v
		}
		return c
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		w.walkList(s.List, copyHeld())
	case *ast.IfStmt:
		w.walkList(s.Body.List, copyHeld())
		if s.Else != nil {
			w.recurse(s.Else, held)
		}
	case *ast.ForStmt:
		w.walkList(s.Body.List, copyHeld())
	case *ast.RangeStmt:
		w.walkList(s.Body.List, copyHeld())
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			w.walkList(c.(*ast.CaseClause).Body, copyHeld())
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.walkList(c.(*ast.CaseClause).Body, copyHeld())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.walkList(c.(*ast.CommClause).Body, copyHeld())
		}
	case *ast.LabeledStmt:
		w.recurse(s.Stmt, held)
	}
}

// scan flags blocking operations in the statement, ignoring nested
// statement lists (recurse handles those with unlock tracking) and
// function literals.
func (w *lockWalker) scan(stmt ast.Stmt, held map[string]bool) {
	// Only inspect the statement's own expressions, not nested blocks:
	// those are walked by recurse with their own lock state.
	switch stmt.(type) {
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.LabeledStmt:
		return
	case *ast.SelectStmt:
		w.reportLocked(stmt.Pos(), "select statement", held)
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			w.reportLocked(n.Pos(), "channel send", held)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				w.reportLocked(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if why := blockingCall(w.pass.TypesInfo, n); why != "" {
				w.reportLocked(n.Pos(), why, held)
			}
		}
		return true
	})
}

func (w *lockWalker) reportLocked(pos token.Pos, what string, held map[string]bool) {
	mu := ""
	for k := range held {
		if mu == "" || k < mu {
			mu = k
		}
	}
	w.pass.Reportf(pos, "%s in %s while %q is locked", what, w.fn.Name.Name, mu)
}

// blockingCall classifies a call as blocking-while-locked: network
// I/O or a deliberate sleep.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	switch {
	case path == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case path == "net" || path == "net/http" || path == "net/rpc":
		return path + "." + fn.Name() + " network call"
	}
	return ""
}

// lockCall recognizes a bare `x.Lock()` / `x.RLock()` statement (or
// `defer x.Unlock()`, which keeps the lock held to function end and is
// therefore treated as a no-op here) and returns the mutex expression
// text plus whether it acquires. Unlock/RUnlock release.
func lockCall(info *types.Info, stmt ast.Stmt) (mu string, locks bool) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		// defer mu.Unlock() holds the lock until return; the region
		// stays open, so report it as a (no-op) lock of nothing.
		if name, _, ok := mutexMethod(info, s.Call); ok && (name == "Unlock" || name == "RUnlock") {
			return "", false
		}
		return "", false
	}
	if call == nil {
		return "", false
	}
	name, recv, ok := mutexMethod(info, call)
	if !ok {
		return "", false
	}
	switch name {
	case "Lock", "RLock":
		return recv, true
	case "Unlock", "RUnlock":
		return recv, false
	}
	return "", false
}

// mutexMethod matches a method call on sync.Mutex/sync.RWMutex
// (directly or through an embedded field) and returns the method name
// and receiver expression text.
func mutexMethod(info *types.Info, call *ast.CallExpr) (name, recv string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := calleeObj(info, call).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	n := namedType(sig.Recv().Type())
	if n == nil || (n.Obj().Name() != "Mutex" && n.Obj().Name() != "RWMutex") {
		return "", "", false
	}
	return fn.Name(), exprString(sel.X), true
}
