package analyzers

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe matches analysistest-style expectation comments in fixtures:
//
//	code here // want `regexp`
//
// Multiple want clauses on one line each expect one finding there.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// checkFixture loads testdata/src/<name>, runs one analyzer over it,
// and diffs the findings against the fixture's `// want` comments:
// every finding must match a want on its line, and every want must be
// matched by exactly one finding. A fixture with no want comments
// therefore asserts the analyzer stays silent.
func checkFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	modRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, modRoot)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{filepath.Base(pos.Filename), pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, f := range findings {
		k := key{filepath.Base(f.Pos.Filename), f.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected finding: %s", name, f)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s: %s:%d: expected finding matching %q, got none", name, k.file, k.line, re)
		}
	}
}

func TestCtxPollFixtures(t *testing.T) {
	checkFixture(t, CtxPollAnalyzer, "ctxpoll_bad")
	checkFixture(t, CtxPollAnalyzer, "ctxpoll_clean")
}

func TestNoAllocFixtures(t *testing.T) {
	checkFixture(t, NoAllocAnalyzer, "noalloc_bad")
	checkFixture(t, NoAllocAnalyzer, "noalloc_clean")
	// The telemetry-shaped seeded violation: a histogram whose annotated
	// Observe path allocates (PR-8 hot-path contract).
	checkFixture(t, NoAllocAnalyzer, "noalloc_histogram")
}

func TestDetOutFixtures(t *testing.T) {
	checkFixture(t, DetOutAnalyzer, "detout_bad")
	checkFixture(t, DetOutAnalyzer, "detout_clean")
}

func TestLockSafeFixtures(t *testing.T) {
	checkFixture(t, LockSafeAnalyzer, "locksafe_bad")
	checkFixture(t, LockSafeAnalyzer, "locksafe_clean")
}

func TestErrKindFixtures(t *testing.T) {
	checkFixture(t, ErrKindAnalyzer, "errkind_bad")
	checkFixture(t, ErrKindAnalyzer, "errkind_clean")
}

// TestFindingString pins the file:line:col: analyzer: message shape CI
// greps for.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "noalloc", Message: "make allocates"}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	got := f.String()
	want := "x.go:3:7: noalloc: make allocates"
	if got != want {
		t.Fatalf("Finding.String() = %q, want %q", got, want)
	}
}

// TestSortFindings pins the deterministic ordering of reported
// findings (file, then line, then column, then analyzer).
func TestSortFindings(t *testing.T) {
	mk := func(file string, line, col int, a string) Finding {
		var f Finding
		f.Pos.Filename = file
		f.Pos.Line = line
		f.Pos.Column = col
		f.Analyzer = a
		return f
	}
	fs := []Finding{
		mk("b.go", 1, 1, "noalloc"),
		mk("a.go", 9, 2, "detout"),
		mk("a.go", 9, 2, "ctxpoll"),
		mk("a.go", 2, 5, "locksafe"),
	}
	sortFindings(fs)
	var got string
	for _, f := range fs {
		got += fmt.Sprintf("%s:%d:%d:%s ", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer)
	}
	want := "a.go:2:5:locksafe a.go:9:2:ctxpoll a.go:9:2:detout b.go:1:1:noalloc "
	if got != want {
		t.Fatalf("sorted order = %q, want %q", got, want)
	}
}
