package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPollAnalyzer enforces the PR-4 cancellation contract:
//
//  1. Every exported function or method whose name ends in "Context"
//     and takes a context.Context must bind the parameter to a name
//     and consult it somewhere in its body.
//  2. Every loop inside such a function that performs real work (calls
//     a non-builtin function) must consult the context within the
//     loop's subtree — directly (ctx.Err(), <-ctx.Done(), passing ctx
//     to a callee), through a runopt.Checker (the bounded-stride
//     poller), or by delegating each iteration to a ...Context callee.
//     Loops bounded by a compile-time constant are exempt.
//  3. Every exported v1 shim Foo whose package also declares
//     FooContext (same receiver) must be a pure pass-through: a single
//     return calling FooContext with context.Background() first.
//
// A `//hyperlint:ignore ctxpoll` comment on (or directly above) the
// flagged line suppresses a finding.
var CtxPollAnalyzer = &Analyzer{
	Name: "ctxpoll",
	Doc:  "exported ...Context functions must poll ctx in working loops; v1 shims must be pure context.Background() pass-throughs",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	for _, file := range pass.Files {
		// Index exported ...Context declarations for the shim check:
		// key is "Recv.Name" so methods only pair within one receiver.
		ctxFuncs := map[string]bool{}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Context") {
				ctxFuncs[recvTypeName(fd)+"."+fd.Name.Name] = true
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Context") {
				checkCtxFunc(pass, fd)
			} else if ctxFuncs[recvTypeName(fd)+"."+fd.Name.Name+"Context"] {
				checkShim(pass, fd)
			}
		}
	}
	return nil
}

// ctxParam finds the context.Context parameter of fd, returning its
// declaring ident (nil if unnamed) and whether one exists at all.
func ctxParam(pass *Pass, fd *ast.FuncDecl) (*ast.Ident, bool) {
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name, true
			}
		}
		return nil, true
	}
	return nil, false
}

func checkCtxFunc(pass *Pass, fd *ast.FuncDecl) {
	ident, has := ctxParam(pass, fd)
	if !has {
		return // ...Context by name only; nothing to enforce
	}
	if ident == nil {
		pass.Reportf(fd.Name.Pos(), "exported %s does not bind its context.Context parameter to a name", fd.Name.Name)
		return
	}
	ctxObj := pass.TypesInfo.Defs[ident]
	if !consultsCtx(pass, fd.Body, ctxObj) {
		pass.Reportf(fd.Name.Pos(), "exported %s never consults its context", fd.Name.Name)
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.FuncLit:
			// Worker/closure bodies have their own polling cadence
			// (checked where they consult ctx); the per-loop rule
			// covers the exported function's own loop structure.
			return false
		case *ast.ForStmt:
			if constBoundedFor(pass, loop) {
				return true
			}
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if loopDoesWork(pass, body) && !consultsCtx(pass, body, ctxObj) {
			pass.Reportf(n.Pos(), "loop in exported %s does work without consulting ctx (want ctx.Err(), <-ctx.Done(), a runopt.Checker tick, or a ...Context callee)", fd.Name.Name)
		}
		return true
	})
}

// constBoundedFor reports whether the for loop's trip count is bounded
// by a compile-time constant (for i := 0; i < 4; i++ { ... }).
func constBoundedFor(pass *Pass, loop *ast.ForStmt) bool {
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	for _, side := range []ast.Expr{cond.X, cond.Y} {
		if tv, ok := pass.TypesInfo.Types[side]; ok && tv.Value != nil {
			return true
		}
	}
	return false
}

// loopDoesWork reports whether the loop body calls any non-builtin,
// non-conversion function. Function-literal bodies are excluded: a
// loop that only launches workers is not itself the hot path (the
// workers' own loops are checked when they consult ctx — the consult
// scan does descend into literals). Guard clauses — if-bodies ending
// in return or panic, the shape of per-element validation — are cold
// and do not make the loop "working" by themselves.
func loopDoesWork(pass *Pass, body ast.Node) bool {
	works := false
	ast.Inspect(body, func(n ast.Node) bool {
		if works {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if blockExits(n.Body) {
				if n.Init != nil && loopDoesWork(pass, n.Init) {
					works = true
				}
				if !works && loopDoesWork(pass, n.Cond) {
					works = true
				}
				if !works && n.Else != nil && loopDoesWork(pass, n.Else) {
					works = true
				}
				return false
			}
		case *ast.CallExpr:
			if isConversion(pass.TypesInfo, n) {
				return true
			}
			if _, lit := ast.Unparen(n.Fun).(*ast.FuncLit); lit {
				return true // invoking a literal: its body is the worker's
			}
			if _, builtin := calleeObj(pass.TypesInfo, n).(*types.Builtin); builtin {
				return true
			}
			works = true
			return false
		}
		return true
	})
	return works
}

// consultsCtx reports whether the subtree consults the context: uses
// the ctx object itself, touches a *runopt.Checker, or calls a
// ...Context function.
func consultsCtx(pass *Pass, node ast.Node, ctxObj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if obj == ctxObj {
					found = true
				} else if v, ok := obj.(*types.Var); ok && isRunoptChecker(v.Type()) {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn, ok := calleeObj(pass.TypesInfo, n).(*types.Func); ok && strings.HasSuffix(fn.Name(), "Context") {
				found = true
			}
		}
		return !found
	})
	return found
}

func isRunoptChecker(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Name() != "Checker" {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "runopt" || strings.HasSuffix(path, "/runopt")
}

// checkShim verifies that a v1 convenience function Foo with a
// FooContext sibling is a pure pass-through.
func checkShim(pass *Pass, fd *ast.FuncDecl) {
	bad := func() {
		pass.Reportf(fd.Name.Pos(), "%s has a %sContext sibling but is not a pure context.Background() pass-through to it", fd.Name.Name, fd.Name.Name)
	}
	if len(fd.Body.List) != 1 {
		bad()
		return
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		bad()
		return
	}
	call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		bad()
		return
	}
	fn, ok := calleeObj(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Name() != fd.Name.Name+"Context" {
		bad()
		return
	}
	if !isBackgroundCall(pass, call.Args[0]) {
		bad()
	}
}

func isBackgroundCall(pass *Pass, arg ast.Expr) bool {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := calleeObj(pass.TypesInfo, call).(*types.Func)
	return ok && fn.Name() == "Background" && isPkgFunc(fn, "context")
}
