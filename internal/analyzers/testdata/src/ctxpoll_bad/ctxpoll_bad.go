// Package ctxpollbad seeds one violation per ctxpoll rule.
package ctxpollbad

import "context"

// RunContext takes a context but never binds it to a name.
func RunContext(context.Context, int) error { // want `exported RunContext does not bind its context.Context parameter to a name`
	return nil
}

// ScanContext binds ctx but never consults it anywhere.
func ScanContext(ctx context.Context, xs []int) int { // want `exported ScanContext never consults its context`
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// MineContext consults ctx once up front, but its working loop never
// polls.
func MineContext(ctx context.Context, xs []int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	total := 0
	for _, x := range xs { // want `loop in exported MineContext does work without consulting ctx`
		total += work(x)
	}
	return total, nil
}

// Mine has a MineContext sibling but is not a pure pass-through: it
// calls the implementation directly.
func Mine(xs []int) (int, error) { // want `Mine has a MineContext sibling but is not a pure context.Background\(\) pass-through to it`
	total := 0
	for _, x := range xs {
		total += work(x)
	}
	return total, nil
}

func work(x int) int { return x * x }
