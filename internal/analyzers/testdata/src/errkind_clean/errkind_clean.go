// Package errkindclean exercises error flows the errkind pass must
// accept at the Engine boundary.
package errkindclean

import "fmt"

type Engine struct{}

type kindError struct {
	kind string
	msg  string
}

func (e *kindError) Error() string { return e.msg }

func badf(format string, args ...any) error {
	return &kindError{kind: "bad_request", msg: fmt.Sprintf(format, args...)}
}

// Typed mints errors through the typed constructor.
func (e *Engine) Typed(x int) error {
	if x < 0 {
		return badf("negative: %d", x)
	}
	return nil
}

// PassThrough forwards a callee's error untouched.
func (e *Engine) PassThrough(f func() error) error {
	if err := f(); err != nil {
		return err
	}
	return nil
}

// WithClosure: a closure inside an Engine method has its own error
// boundary and may use fmt.Errorf.
func (e *Engine) WithClosure() error {
	mk := func() error { return fmt.Errorf("inner") }
	return mk()
}

// Helper is not an Engine: free to return naked errors.
type Helper struct{}

func (h *Helper) Free() error { return fmt.Errorf("fine") }
