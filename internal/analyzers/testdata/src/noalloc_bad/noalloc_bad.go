// Package noallocbad seeds one violation per allocating construct the
// noalloc pass recognizes.
package noallocbad

import "fmt"

//hyper:noalloc
func Concat(a, b string) string {
	return a + b // want `//hyper:noalloc Concat: string concatenation allocates`
}

//hyper:noalloc
func Build(n int) []int {
	buf := make([]int, 0, n) // want `//hyper:noalloc Build: make allocates`
	buf = append(buf, n)     // want `//hyper:noalloc Build: append may grow and allocate`
	return buf
}

//hyper:noalloc
func Print(x int) {
	fmt.Println(x) // want `//hyper:noalloc Print: fmt.Println allocates`
}

//hyper:noalloc
func Lit() []int {
	return []int{1, 2} // want `//hyper:noalloc Lit: slice/map literal allocates`
}

//hyper:noalloc
func Capture(x int) func() int {
	return func() int { return x } // want `//hyper:noalloc Capture: capturing closure allocates`
}

//hyper:noalloc
func Bytes(s string) []byte {
	return []byte(s) // want `//hyper:noalloc Bytes: string<->slice conversion allocates`
}

//hyper:noalloc
func Box(x int) {
	sink(x) // want `//hyper:noalloc Box: boxing int into interface parameter allocates`
}

func sink(v any) { _ = v }

//hyper:noalloc
func Spawn(ch chan int) {
	go send(ch) // want `//hyper:noalloc Spawn: go statement allocates a goroutine`
}

func send(ch chan int) { ch <- 1 }

// Suppressed shows the //hyperlint:ignore escape hatch: the literal
// below is a deliberate, justified exception.
//
//hyper:noalloc
func Suppressed() []int {
	//hyperlint:ignore noalloc
	return []int{1}
}
