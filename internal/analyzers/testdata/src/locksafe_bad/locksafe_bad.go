// Package locksafebad seeds blocking operations under held mutexes.
package locksafebad

import (
	"net/http"
	"sync"
	"time"
)

type Box struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (b *Box) Send(v int) {
	b.mu.Lock()
	b.ch <- v // want `channel send in Send while "b.mu" is locked`
	b.mu.Unlock()
}

func (b *Box) Recv() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `channel receive in Recv while "b.mu" is locked`
}

func (b *Box) Wait() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep in Wait while "b.mu" is locked`
	b.mu.Unlock()
}

func (b *Box) Poll() {
	b.mu.Lock()
	select { // want `select statement in Poll while "b.mu" is locked`
	case v := <-b.ch:
		b.n = v
	default:
	}
	b.mu.Unlock()
}

func (b *Box) Fetch(url string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	resp, err := http.Get(url) // want `net/http.Get network call in Fetch while "b.mu" is locked`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

type RBox struct {
	mu sync.RWMutex
	ch chan int
}

func (r *RBox) Peek() int {
	r.mu.RLock()
	v := <-r.ch // want `channel receive in Peek while "r.mu" is locked`
	r.mu.RUnlock()
	return v
}
