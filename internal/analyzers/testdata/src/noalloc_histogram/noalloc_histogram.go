// Package noallochistogram seeds the telemetry-shaped violation: a
// latency histogram whose annotated Observe path allocates. The real
// telemetry.Histogram.Observe is index-into-fixed-array only; this
// fixture pins that the checker would catch the tempting regressions
// (formatting a label, growing a sample slice, boxing the duration).
package noallochistogram

import "fmt"

type histogram struct {
	counts  [8]uint64
	samples []int64
	name    string
}

//hyper:noalloc
func (h *histogram) Observe(ns int64) {
	i := 0
	for i < len(h.counts)-1 && ns > int64(i*100) {
		i++
	}
	h.counts[i]++
	h.samples = append(h.samples, ns) // want `//hyper:noalloc Observe: append may grow and allocate`
}

//hyper:noalloc
func (h *histogram) ObserveLabeled(ns int64, label string) {
	key := h.name + label // want `//hyper:noalloc ObserveLabeled: string concatenation allocates`
	_ = key
	h.counts[0]++
}

//hyper:noalloc
func (h *histogram) ObserveLogged(ns int64) {
	fmt.Printf("%s: %d\n", h.name, ns) // want `//hyper:noalloc ObserveLogged: fmt.Printf allocates`
	h.counts[0]++
}

// ObserveClean is the shape the real Observe must keep: clamp, scan a
// fixed bucket ladder, bump an array slot. No diagnostics expected.
//
//hyper:noalloc
func (h *histogram) ObserveClean(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < len(h.counts)-1 && ns > int64(i*100) {
		i++
	}
	h.counts[i]++
}
