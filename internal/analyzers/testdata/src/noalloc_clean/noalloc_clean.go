// Package noallocclean exercises warm-path shapes the noalloc pass
// must accept.
package noallocclean

import "fmt"

//hyper:noalloc
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Guard's fmt.Errorf sits in a cold early-return branch, which the
// warm path never executes.
//
//hyper:noalloc
func Guard(xs []int, i int) (int, error) {
	if i < 0 || i >= len(xs) {
		return 0, fmt.Errorf("index %d out of range", i)
	}
	return xs[i], nil
}

// Scratch uses a fixed-size stack array, not a heap slice.
//
//hyper:noalloc
func Scratch(xs []int) int {
	var buf [4]int
	n := copy(buf[:], xs)
	total := 0
	for _, x := range buf[:n] {
		total += x
	}
	return total
}

// Stateless returns a closure that captures nothing: a static func
// value, no allocation.
//
//hyper:noalloc
func Stateless() func(int) int {
	return func(x int) int { return x * 2 }
}

// PassPointer hands a pointer-shaped value to an interface parameter,
// which boxes without a heap copy.
//
//hyper:noalloc
func PassPointer(p *int) {
	sink(p)
}

func sink(v any) { _ = v }

// Unannotated functions allocate freely.
func Unannotated(n int) []int {
	return make([]int, n)
}
