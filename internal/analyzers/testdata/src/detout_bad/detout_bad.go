// Package detoutbad seeds map-iteration-order leaks into output.
package detoutbad

import "fmt"

// PrintAll streams map entries straight to stdout.
func PrintAll(m map[string]int) {
	for k, v := range m { // want `map iteration in PrintAll: order flows into fmt.Println without an intervening sort`
		fmt.Println(k, v)
	}
}

// Collect builds an ordered slice from map order and never sorts it.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration in Collect: order is appended to "keys" which is never sorted in this function`
		keys = append(keys, k)
	}
	return keys
}

// Fill writes map order into slice positions without sorting.
func Fill(m map[int]string, out []string) {
	i := 0
	for _, v := range m { // want `map iteration in Fill: order is written into slice "out" which is never sorted in this function`
		out[i] = v
		i++
	}
}
