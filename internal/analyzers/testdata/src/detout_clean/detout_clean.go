// Package detoutclean exercises map-range shapes that are
// deterministic by construction.
package detoutclean

import "sort"

// SortedKeys sorts the collected keys before returning them.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count accumulates a sum; order cannot matter.
func Count(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert fills another map; map writes are order-insensitive.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// ViaHelper sorts through a local helper whose name says so.
func ViaHelper(m map[float64]bool) []float64 {
	vals := make([]float64, 0, len(m))
	for v := range m {
		vals = append(vals, v)
	}
	sortFloats(vals)
	return vals
}

func sortFloats(s []float64) { sort.Float64s(s) }
