// Package ctxpollclean exercises every way a ...Context function may
// legitimately satisfy the polling contract.
package ctxpollclean

import (
	"context"
	"errors"

	"hypermine/internal/runopt"
)

// SweepContext polls through a bounded-stride runopt.Checker.
func SweepContext(ctx context.Context, xs []int) (int, error) {
	chk := runopt.NewChecker(ctx, 0, 1)
	total := 0
	for _, x := range xs {
		if err := chk.Tick(); err != nil {
			return 0, err
		}
		total += work(x)
	}
	return total, nil
}

// Sweep is the pure v1 pass-through shim.
func Sweep(xs []int) (int, error) {
	return SweepContext(context.Background(), xs)
}

// PollContext consults ctx.Err directly in the loop.
func PollContext(ctx context.Context, xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += work(x)
	}
	return total, nil
}

// BoundedContext's working loop runs a compile-time-constant number of
// iterations, which is exempt.
func BoundedContext(ctx context.Context, seed int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	total := seed
	for i := 0; i < 4; i++ {
		total += work(i)
	}
	return total, nil
}

// ValidateContext's loop only runs guard clauses (cold early-return
// branches), which do not count as work.
func ValidateContext(ctx context.Context, xs []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, x := range xs {
		if x < 0 {
			return errors.New("negative")
		}
	}
	return nil
}

// SpawnContext only launches workers from its loop; worker bodies have
// their own polling cadence and are not this function's loops.
func SpawnContext(ctx context.Context, xs []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan struct{}, len(xs))
	for _, x := range xs {
		go func() {
			work(x)
			done <- struct{}{}
		}()
	}
	for range xs {
		<-done
	}
	return nil
}

func work(x int) int { return x * x }
