// Package locksafeclean exercises critical-section shapes that are
// safe: unlock-before-block, goroutines spawned under a lock, and
// pure computation under a defer-held lock.
package locksafeclean

import "sync"

type Box struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// UnlockThenSend releases the lock before touching the channel.
func (b *Box) UnlockThenSend(v int) {
	b.mu.Lock()
	x := b.n
	b.mu.Unlock()
	b.ch <- x + v
}

// BranchUnlock is the memo/singleflight shape: one branch unlocks and
// then blocks; the other stays locked over pure writes.
func (b *Box) BranchUnlock(v int) {
	b.mu.Lock()
	if b.n > 0 {
		b.mu.Unlock()
		<-b.ch
		return
	}
	b.n = v
	b.mu.Unlock()
}

// SpawnUnderLock launches a goroutine while locked; the goroutine body
// does not hold the caller's lock.
func (b *Box) SpawnUnderLock() {
	b.mu.Lock()
	go func() { b.ch <- 1 }()
	b.mu.Unlock()
}

// Sum computes under a defer-held lock without blocking.
func (b *Box) Sum(xs []int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := b.n
	for _, x := range xs {
		total += x
	}
	return total
}
