// Package errkindbad seeds naked error returns from Engine methods.
package errkindbad

import (
	"errors"
	"fmt"
)

type Engine struct{}

func (e *Engine) Naked(x int) error {
	return fmt.Errorf("boom: %d", x) // want `Engine method Naked returns a naked fmt.Errorf`
}

func (e *Engine) NakedNew() (int, error) {
	return 0, errors.New("boom") // want `Engine method NakedNew returns a naked errors.New`
}
