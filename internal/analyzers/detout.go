package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetOutAnalyzer enforces cross-replica determinism of served output:
// Go map iteration order is randomized, so no `for range` over a map
// may flow into a JSON encoder, an http.ResponseWriter, or CLI/stdout
// formatting without an intervening sort.
//
// Two flows are flagged per map-range loop:
//
//  1. The loop body itself writes output (fmt print family,
//     json.Encoder.Encode / json.Marshal, http.ResponseWriter or
//     io.Writer method calls).
//  2. The loop body builds an ordered collection (append to a slice,
//     or indexed writes into a slice) and that slice is never passed
//     to a sort.*/slices.Sort* call anywhere in the function.
//
// Order-insensitive uses of a map range — accumulating sums or counts,
// filling another map or a set — are clean by construction and not
// flagged.
var DetOutAnalyzer = &Analyzer{
	Name: "detout",
	Doc:  "map iteration order must not reach JSON/HTTP/CLI output without a sort",
	Run:  runDetOut,
}

func runDetOut(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDetOut(pass, fd)
		}
	}
	return nil
}

func checkDetOut(pass *Pass, fd *ast.FuncDecl) {
	// Collect every expression that is sorted anywhere in the function
	// (including inside closures), keyed textually.
	sorted := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass.TypesInfo, call)
		if obj == nil {
			return true
		}
		// sort.* / slices.* plus local helpers whose name says they
		// sort (sortFloats, sortFrequent, ...).
		if !(isPkgFunc(obj, "sort") || isPkgFunc(obj, "slices") ||
			strings.Contains(strings.ToLower(obj.Name()), "sort")) {
			return true
		}
		for _, arg := range call.Args {
			if s := exprString(ast.Unparen(arg)); s != "" {
				sorted[s] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || !isMapType(tv.Type) {
			return true
		}
		checkMapRange(pass, fd, rng, sorted)
		return true
	})
}

func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, sorted map[string]bool) {
	info := pass.TypesInfo
	reported := false
	report := func(format string, args ...any) {
		if !reported {
			pass.Reportf(rng.Pos(), "map iteration in %s: "+format, append([]any{fd.Name.Name}, args...)...)
			reported = true
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if why := outputCall(info, n); why != "" {
				report("order flows into %s without an intervening sort", why)
			}
			if isBuiltin(info, n, "append") && len(n.Args) > 0 {
				if s := exprString(ast.Unparen(n.Args[0])); s != "" && !sorted[s] {
					report("order is appended to %q which is never sorted in this function", s)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				tv, ok := info.Types[ix.X]
				if !ok || !isSliceType(tv.Type) {
					continue
				}
				if s := exprString(ast.Unparen(ix.X)); s != "" && !sorted[s] {
					report("order is written into slice %q which is never sorted in this function", s)
				}
			}
		}
		return !reported
	})
}

// outputCall classifies a call as output-producing: it returns a short
// description when the call writes user-visible, order-sensitive
// output, and "" otherwise.
func outputCall(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	name := fn.Name()
	if isPkgFunc(fn, "fmt") && (strings.HasPrefix(name, "Sprint") || name == "Errorf") {
		return "" // building a string or error value is not output by itself
	}
	if isPkgFunc(fn, "fmt") {
		return "fmt." + name
	}
	if isPkgFunc(fn, "encoding/json") && (name == "Marshal" || name == "MarshalIndent") {
		return "json." + name
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if isNamed(recv, "encoding/json", "Encoder") && name == "Encode" {
			return "json.Encoder.Encode"
		}
		if isNamed(recv, "net/http", "ResponseWriter") || implementsResponseWriter(recv) {
			return "http.ResponseWriter." + name
		}
	}
	// A method named Write/WriteString on an io.Writer-ish receiver.
	if name == "Write" || name == "WriteString" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "writer." + name
		}
	}
	return ""
}

func implementsResponseWriter(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == "ResponseWriter"
}
