package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json` in dir with the given package
// patterns and returns the decoded records. -deps pulls in the
// transitive closure so every import resolves to an export file.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data files, as
// produced by `go list -export`.
type exportImporter struct {
	inner   types.ImporterFrom
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	ei.inner = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.inner.ImportFrom(path, "", 0)
}

// Load loads, parses, and type-checks the packages matched by the go
// patterns (relative to dir), ready for analysis. Dependencies are
// imported from export data, so only the matched packages themselves
// are parsed from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := typecheck(fset, imp, p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads a single package from the .go files in dir (test files
// excluded), resolving its imports by asking the go command in modRoot
// for export data. This is how analysis-test fixture packages — which
// live under testdata/ and are invisible to go list patterns — are
// brought up for checking.
func LoadDir(dir, modRoot string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" || len(name) > 8 && name[len(name)-8:] == "_test.go" {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	parsed := make([]*ast.File, 0, len(files))
	importSet := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
		for _, spec := range af.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	imports := make([]string, 0, len(importSet))
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)

	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(modRoot, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)
	return typecheckFiles(fset, imp, dir, dir, parsed)
}

// TypecheckVetUnit type-checks one package as handed over by the go
// vet unitchecker protocol: files are already parsed, and imports
// resolve through the driver-supplied export file map after ImportMap
// canonicalization (vendored or versioned paths mapping to their
// canonical import path).
func TypecheckVetUnit(fset *token.FileSet, pkgPath, dir string, files []*ast.File, importMap, packageFile map[string]string) (*Package, error) {
	exports := make(map[string]string, len(packageFile))
	for path, file := range packageFile {
		exports[path] = file
	}
	for src, canonical := range importMap {
		if file, ok := packageFile[canonical]; ok {
			exports[src] = file
		}
	}
	imp := newExportImporter(fset, exports)
	return typecheckFiles(fset, imp, pkgPath, dir, files)
}

func typecheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	parsed := make([]*ast.File, 0, len(files))
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	return typecheckFiles(fset, imp, pkgPath, dir, parsed)
}

func typecheckFiles(fset *token.FileSet, imp types.Importer, pkgPath, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkgPath, fset, parsed, info)
	if firstErr != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   parsed,
		Types:   tpkg,
		Info:    info,
	}, nil
}
