package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeObj resolves the object a call expression invokes: a *types.Func
// for functions and methods, a *types.Builtin for builtins, nil for
// conversions and dynamic calls through function values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// isPkgFunc reports whether obj is a function from the package with
// the given path (e.g. "fmt", "sort").
func isPkgFunc(obj types.Object, pkgPath string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	b, ok := calleeObj(info, call).(*types.Builtin)
	return ok && b.Name() == name
}

// isConversion reports whether the call expression is a type
// conversion rather than a function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// namedType unwraps pointers and aliases down to a *types.Named, or
// nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isSliceType reports whether t's core type is a slice.
func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// recvTypeName returns the bare type name of a method receiver
// ("Engine" for func (e *Engine) ...), or "" for plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// hasDirective reports whether the declaration's doc comment carries
// the given //-directive (exact line prefix, e.g. "//hyper:noalloc").
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// usesObject reports whether any identifier inside node resolves to
// obj.
func usesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders a (small) expression for sink matching: good
// enough to compare `keys` with `keys` and `st.Models` with
// `st.Models` textually.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return ""
}
