package analyzers

import (
	"go/ast"
	"go/types"
)

// ErrKindAnalyzer enforces the typed-error contract of the Engine.Do
// boundary: a method on a type named Engine that returns an error must
// never return a naked fmt.Errorf(...) or errors.New(...) result
// directly. Engine-authored failures must carry a typed kind (the
// badf/unavailablef/internalf constructors producing *engine.Error);
// pass-through of a callee's error (`return nil, err`) and context
// errors (`return nil, ctx.Err()`) remain fine — the rule targets
// errors this layer itself mints.
var ErrKindAnalyzer = &Analyzer{
	Name: "errkind",
	Doc:  "Engine methods must return typed errors, never naked fmt.Errorf/errors.New",
	Run:  runErrKind,
}

func runErrKind(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || recvTypeName(fd) != "Engine" {
				continue
			}
			if !lastResultIsError(pass, fd) {
				continue
			}
			checkErrKind(pass, fd)
		}
	}
	return nil
}

func lastResultIsError(pass *Pass, fd *ast.FuncDecl) bool {
	results := fd.Type.Results
	if results == nil || len(results.List) == 0 {
		return false
	}
	last := results.List[len(results.List)-1]
	tv, ok := pass.TypesInfo.Types[last.Type]
	if !ok || tv.Type == nil {
		return false
	}
	n := namedType(tv.Type)
	return n != nil && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

func checkErrKind(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures (memo builders) have their own boundary
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := calleeObj(pass.TypesInfo, call).(*types.Func)
			if !ok {
				continue
			}
			if isPkgFunc(fn, "fmt") && fn.Name() == "Errorf" {
				pass.Reportf(res.Pos(), "Engine method %s returns a naked fmt.Errorf; mint a typed kind (badf/unavailablef/internalf) instead", fd.Name.Name)
			}
			if isPkgFunc(fn, "errors") && fn.Name() == "New" {
				pass.Reportf(res.Pos(), "Engine method %s returns a naked errors.New; mint a typed kind (badf/unavailablef/internalf) instead", fd.Name.Name)
			}
		}
		return true
	})
}
