// Package analyzers implements hyperlint: a suite of custom static-
// analysis passes that turn the repo's hard-won runtime invariants —
// bounded-stride context polling, zero-allocation warm paths,
// deterministic output ordering, no blocking under locks, typed
// engine errors — into properties of the source tree, checked at
// build time instead of sampled by tests.
//
// The package is deliberately self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) on top
// of the standard library's go/parser and go/types, because this
// repository builds with no third-party dependencies. Packages are
// loaded for analysis via `go list -export`, so type information for
// dependencies comes from the toolchain's build cache exactly as it
// does under `go vet`.
//
// The five passes (see their files for the precise rules):
//
//	ctxpoll  every exported ...Context function must consult its ctx
//	         inside each working loop, and v1 shims must be pure
//	         context.Background() pass-throughs
//	noalloc  functions annotated //hyper:noalloc must contain no
//	         allocating constructs on their warm path
//	detout   map iteration order must never flow into JSON, HTTP, or
//	         CLI output without an intervening sort
//	locksafe no channel operation, network call, or sleep while a
//	         sync.Mutex/RWMutex is held
//	errkind  errors returned by Engine methods must carry a typed
//	         kind, never a naked fmt.Errorf/errors.New
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one analysis pass: a name for diagnostics, a doc
// string, and the function that runs it over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run. It
// mirrors golang.org/x/tools/go/analysis.Pass closely enough that the
// passes could be ported to the real framework mechanically.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic as it is found.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding of a pass.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// All returns the full hyperlint suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxPollAnalyzer,
		NoAllocAnalyzer,
		DetOutAnalyzer,
		LockSafeAnalyzer,
		ErrKindAnalyzer,
	}
}

// Finding pairs a diagnostic with the pass and package that produced
// it, positioned for printing.
type Finding struct {
	Analyzer string
	PkgPath  string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers runs every analyzer over every package and returns the
// findings sorted by position. A `//hyperlint:ignore <name>[,<name>]`
// comment on the flagged line, or on the line directly above it,
// suppresses that pass's findings there.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores[ignoreKey{pos.Filename, pos.Line, a.Name}] ||
					ignores[ignoreKey{pos.Filename, pos.Line - 1, a.Name}] {
					return
				}
				out = append(out, Finding{
					Analyzer: a.Name,
					PkgPath:  pkg.PkgPath,
					Pos:      pos,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sortFindings(out)
	return out, nil
}

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

func collectIgnores(pkg *Package) map[ignoreKey]bool {
	out := map[ignoreKey]bool{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//hyperlint:ignore ")
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					out[ignoreKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return out
}

func sortFindings(fs []Finding) {
	// Insertion sort keeps this file free of a sort import cycle worry
	// and finding counts are tiny.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && lessFinding(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func lessFinding(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
