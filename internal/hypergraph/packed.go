package hypergraph

// Packed edge keys. The paper's restricted association hypergraphs
// only carry edges with |T| <= 3 and |H| = 1 (directed, 2-to-1, and
// the thesis's future-work 3-to-1 generalization), so a (tail, head)
// pair fits in one uint64: four 16-bit slots, each holding id+1 with 0
// meaning "slot empty".
//
//	bits  0..15  tail[0]+1   (smallest tail id)
//	bits 16..31  tail[1]+1   (0 when |T| < 2)
//	bits 32..47  tail[2]+1   (0 when |T| < 3)
//	bits 48..63  head[0]+1
//
// Tail ids are stored sorted ascending, so the encoding is canonical:
// any permutation of the same tail set packs to the same key. An edge
// is packable iff 1 <= |T| <= 3, |H| == 1, and every vertex id is in
// [0, MaxPackedID]. Everything else (larger heads or tails, ids beyond
// 16 bits) falls back to the legacy string EdgeKey map — correctness
// never depends on packability, only speed does.
//
// Packability is a pure function of the (tail, head) sets, so H can
// route each edge to exactly one of its two key maps and Lookup can
// decide which map to probe without any per-graph gate.

// MaxPackedID is the largest vertex id a packed key can carry (id+1
// must fit in 16 bits).
const MaxPackedID = 0xFFFE

// MaxRestrictedTail is the largest tail size of the restricted model
// (and of a packed key): sized scratch buffers of this length cover
// every packable edge.
const MaxRestrictedTail = 3

// PackEdgeKey returns the canonical uint64 key of a (tail, head) pair
// and whether the pair is packable. The slices need not be sorted.
// It performs no heap allocation.
//
//hyper:noalloc
func PackEdgeKey(tail, head []int) (uint64, bool) {
	if len(head) != 1 {
		return 0, false
	}
	h0 := head[0]
	if uint(h0) > MaxPackedID {
		return 0, false
	}
	tk, ok := PackTailKey(tail)
	if !ok {
		return 0, false
	}
	return tk | uint64(h0+1)<<48, true
}

// PackTailKey packs a tail set alone (head slot zero) — the canonical
// integer identity of a tail set, used e.g. to deduplicate the T* pool
// of Algorithm 6. Same packability rules as PackEdgeKey.
//
//hyper:noalloc
func PackTailKey(tail []int) (uint64, bool) {
	switch len(tail) {
	case 1:
		t0 := tail[0]
		if uint(t0) > MaxPackedID {
			return 0, false
		}
		return uint64(t0 + 1), true
	case 2:
		t0, t1 := tail[0], tail[1]
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if uint(t0) > MaxPackedID || uint(t1) > MaxPackedID {
			return 0, false
		}
		return uint64(t0+1) | uint64(t1+1)<<16, true
	case 3:
		t0, t1, t2 := tail[0], tail[1], tail[2]
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if uint(t0) > MaxPackedID || uint(t2) > MaxPackedID {
			return 0, false
		}
		return uint64(t0+1) | uint64(t1+1)<<16 | uint64(t2+1)<<32, true
	default:
		return 0, false
	}
}
