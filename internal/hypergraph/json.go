package hypergraph

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the serialized shape of a hypergraph.
type fileFormat struct {
	Vertices []string   `json:"vertices"`
	Edges    []fileEdge `json:"edges"`
}

type fileEdge struct {
	Tail   []int   `json:"tail"`
	Head   []int   `json:"head"`
	Weight float64 `json:"weight"`
}

// WriteJSON serializes the hypergraph.
func (h *H) WriteJSON(w io.Writer) error {
	ff := fileFormat{Vertices: h.VertexNames(), Edges: make([]fileEdge, len(h.edges))}
	for i, e := range h.edges {
		ff.Edges[i] = fileEdge{Tail: e.Tail, Head: e.Head, Weight: e.Weight}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ff)
}

// ReadJSON parses a hypergraph written by WriteJSON, re-validating
// every edge.
func ReadJSON(r io.Reader) (*H, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("hypergraph: json: %w", err)
	}
	h, err := New(ff.Vertices)
	if err != nil {
		return nil, err
	}
	for i, e := range ff.Edges {
		if err := h.AddEdge(e.Tail, e.Head, e.Weight); err != nil {
			return nil, fmt.Errorf("hypergraph: json edge %d: %w", i, err)
		}
	}
	return h, nil
}
