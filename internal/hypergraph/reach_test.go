package hypergraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestForwardClosureChain(t *testing.T) {
	// 0 -> 1; {1,2} -> 3; 3 -> 4. Seeding {0} determines 1 but not 3
	// (2 missing); seeding {0,2} determines everything.
	h := newH(t, "a", "b", "c", "d", "e")
	_ = h.AddEdge([]int{0}, []int{1}, 1)
	_ = h.AddEdge([]int{1, 2}, []int{3}, 1)
	_ = h.AddEdge([]int{3}, []int{4}, 1)

	det, err := h.ForwardClosure([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false, false, false}
	for v := range want {
		if det[v] != want[v] {
			t.Errorf("seed {0}: vertex %d determined=%v want %v", v, det[v], want[v])
		}
	}

	det, err = h.ForwardClosure([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if !det[v] {
			t.Errorf("seed {0,2}: vertex %d not determined", v)
		}
	}
}

func TestForwardClosureDuplicateSeedsAndErrors(t *testing.T) {
	h := newH(t, "a", "b")
	_ = h.AddEdge([]int{0}, []int{1}, 1)
	det, err := h.ForwardClosure([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !det[0] || !det[1] {
		t.Error("duplicate seeds must not break the counters")
	}
	if _, err := h.ForwardClosure([]int{9}); err == nil {
		t.Error("want error for bad seed")
	}
	// Empty seed: nothing determined.
	det, err = h.ForwardClosure(nil)
	if err != nil {
		t.Fatal(err)
	}
	if det[0] || det[1] {
		t.Error("empty seed should determine nothing")
	}
}

// Property: the closure is monotone in the seed set and idempotent
// (closing the closure adds nothing).
func TestForwardClosureProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		names := make([]string, n)
		for i := range names {
			names[i] = "v" + string(rune('0'+i))
		}
		h, _ := New(names)
		for tries := 0; tries < 4*n; tries++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				_ = h.AddEdge([]int{a}, []int{c}, 1)
			} else {
				_ = h.AddEdge([]int{a, b}, []int{c}, 1)
			}
		}
		small := []int{rng.Intn(n)}
		big := append([]int{rng.Intn(n)}, small...)
		detS, err := h.ForwardClosure(small)
		if err != nil {
			return false
		}
		detB, err := h.ForwardClosure(big)
		if err != nil {
			return false
		}
		var closed []int
		for v, d := range detS {
			if d {
				closed = append(closed, v)
			}
			if d && !detB[v] {
				return false // monotonicity violated
			}
		}
		detAgain, err := h.ForwardClosure(closed)
		if err != nil {
			return false
		}
		for v := range detS {
			if detS[v] != detAgain[v] {
				return false // not idempotent
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTranspose(t *testing.T) {
	h := newH(t, "a", "b", "c")
	_ = h.AddEdge([]int{0, 1}, []int{2}, 0.7)
	tr := h.Transpose()
	if _, ok := tr.Lookup([]int{2}, []int{0, 1}); !ok {
		t.Error("transposed edge missing")
	}
	if tr.NumEdges() != 1 || tr.Weight([]int{2}, []int{0, 1}) != 0.7 {
		t.Error("transpose lost weight")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	h := newH(t, "a", "b", "c", "d")
	_ = h.AddEdge([]int{0}, []int{1}, 0.5)
	_ = h.AddEdge([]int{0, 1}, []int{3}, 0.5)
	sub, err := h.InducedSubgraph([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 1 {
		t.Errorf("induced edges = %d, want 1", sub.NumEdges())
	}
	if _, ok := sub.Lookup([]int{0}, []int{1}); !ok {
		t.Error("kept edge missing")
	}
	if _, err := h.InducedSubgraph([]int{99}); err == nil {
		t.Error("want error for bad vertex")
	}
}

func TestWriteDOT(t *testing.T) {
	h := newH(t, "a", "b", "c")
	_ = h.AddEdge([]int{0}, []int{2}, 0.5)
	_ = h.AddEdge([]int{0, 1}, []int{2}, 0.9)
	var buf bytes.Buffer
	if err := h.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "v0 -> v2", "j1 [shape=point", "v0 -> j1", "j1 -> v2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
