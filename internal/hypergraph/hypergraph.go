// Package hypergraph implements the directed hypergraph substrate of
// Definition 2.9: a finite vertex set and directed hyperedges (T, H)
// with nonempty, disjoint tail and head sets. Edges carry float64
// weights (the association confidence values of Definition 3.6 when
// used by internal/core).
//
// The package is general — tails and heads of any size are accepted —
// although the paper's restricted association hypergraphs only use
// |T| <= 2 and |H| = 1.
package hypergraph

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Edge is a directed hyperedge (T, H) with a weight. Tail and Head are
// sorted slices of vertex ids and are canonical: they never alias
// caller memory once the edge is stored.
type Edge struct {
	Tail   []int
	Head   []int
	Weight float64
}

// IsDirectedEdge reports |T| == 1 (the paper's "directed edge").
func (e Edge) IsDirectedEdge() bool { return len(e.Tail) == 1 }

// IsTwoToOne reports |T| == 2 && |H| == 1 (the paper's "2-to-1
// directed hyperedge").
func (e Edge) IsTwoToOne() bool { return len(e.Tail) == 2 && len(e.Head) == 1 }

// H is a directed hypergraph over named vertices.
type H struct {
	names []string
	index map[string]int
	edges []Edge
	out   [][]int32 // vertex id -> indexes of edges whose tail contains it
	in    [][]int32 // vertex id -> indexes of edges whose head contains it

	// Each edge lives in exactly one key map: pkeys when the (tail,
	// head) pair is packable (see packed.go — the restricted-model
	// fast path), keys otherwise (general edges, the string-key
	// fallback). Lookup decides per probe via PackEdgeKey.
	pkeys map[uint64]int32
	keys  map[string]int32
}

// New returns an empty hypergraph over the given vertex names.
func New(names []string) (*H, error) {
	if len(names) == 0 {
		return nil, errors.New("hypergraph: no vertices")
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("hypergraph: empty vertex name at %d", i)
		}
		if _, dup := idx[n]; dup {
			return nil, fmt.Errorf("hypergraph: duplicate vertex %q", n)
		}
		idx[n] = i
	}
	cp := make([]string, len(names))
	copy(cp, names)
	return &H{
		names: cp,
		index: idx,
		out:   make([][]int32, len(names)),
		in:    make([][]int32, len(names)),
		pkeys: make(map[uint64]int32),
		keys:  make(map[string]int32),
	}, nil
}

// NumVertices returns |V|.
func (h *H) NumVertices() int { return len(h.names) }

// NumEdges returns |E|.
func (h *H) NumEdges() int { return len(h.edges) }

// VertexName returns the name of vertex id v.
func (h *H) VertexName(v int) string { return h.names[v] }

// VertexNames returns a copy of all vertex names in id order.
func (h *H) VertexNames() []string {
	out := make([]string, len(h.names))
	copy(out, h.names)
	return out
}

// Vertex returns the id of the named vertex, or -1.
func (h *H) Vertex(name string) int {
	if v, ok := h.index[name]; ok {
		return v
	}
	return -1
}

// EdgeKey returns the canonical string key of a (tail, head) pair. The
// slices need not be sorted.
func EdgeKey(tail, head []int) string {
	var sb strings.Builder
	writeSorted(&sb, tail)
	sb.WriteByte('>')
	writeSorted(&sb, head)
	return sb.String()
}

func writeSorted(sb *strings.Builder, ids []int) {
	switch len(ids) {
	case 0:
	case 1:
		sb.WriteString(strconv.Itoa(ids[0]))
	case 2:
		a, b := ids[0], ids[1]
		if a > b {
			a, b = b, a
		}
		sb.WriteString(strconv.Itoa(a))
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(b))
	default:
		s := append([]int(nil), ids...)
		sort.Ints(s)
		for i, v := range s {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(v))
		}
	}
}

func sortedCopy(ids []int) []int {
	s := append([]int(nil), ids...)
	sort.Ints(s)
	return s
}

func validSets(nv int, tail, head []int) error {
	if len(tail) == 0 || len(head) == 0 {
		return errors.New("hypergraph: tail and head must be nonempty")
	}
	seen := map[int]byte{}
	for _, v := range tail {
		if v < 0 || v >= nv {
			return fmt.Errorf("hypergraph: tail vertex %d out of range", v)
		}
		if seen[v]&1 != 0 {
			return fmt.Errorf("hypergraph: duplicate tail vertex %d", v)
		}
		seen[v] |= 1
	}
	for _, v := range head {
		if v < 0 || v >= nv {
			return fmt.Errorf("hypergraph: head vertex %d out of range", v)
		}
		if seen[v]&2 != 0 {
			return fmt.Errorf("hypergraph: duplicate head vertex %d", v)
		}
		if seen[v]&1 != 0 {
			return fmt.Errorf("hypergraph: vertex %d in both tail and head", v)
		}
		seen[v] |= 2
	}
	return nil
}

// AddEdge inserts the directed hyperedge (tail, head) with the given
// weight. It enforces Definition 2.9 (nonempty, disjoint sets) and
// rejects duplicate (tail, head) pairs.
func (h *H) AddEdge(tail, head []int, weight float64) error {
	if err := validSets(len(h.names), tail, head); err != nil {
		return err
	}
	id := int32(len(h.edges))
	if pk, ok := PackEdgeKey(tail, head); ok {
		if _, dup := h.pkeys[pk]; dup {
			return fmt.Errorf("hypergraph: duplicate edge %s", h.formatEdge(tail, head))
		}
		h.pkeys[pk] = id
	} else {
		key := EdgeKey(tail, head)
		if _, dup := h.keys[key]; dup {
			return fmt.Errorf("hypergraph: duplicate edge %s", h.formatEdge(tail, head))
		}
		h.keys[key] = id
	}
	h.edges = append(h.edges, Edge{Tail: sortedCopy(tail), Head: sortedCopy(head), Weight: weight})
	for _, v := range tail {
		h.out[v] = append(h.out[v], id)
	}
	for _, v := range head {
		h.in[v] = append(h.in[v], id)
	}
	return nil
}

// AddEdgeShared is AddEdge for canonical slices owned by another H:
// tail and head must already be sorted ascending, and they are stored
// without copying. The incremental re-miner in internal/delta uses it
// to structurally share the vertex-id slices of edges that persist
// across a delta update, so a republished model costs only the edges
// that actually changed. The caller must never mutate the slices after
// the call (the donor H's invariants also forbid it, so sharing edges
// between immutable models is safe).
func (h *H) AddEdgeShared(tail, head []int, weight float64) error {
	if err := validSets(len(h.names), tail, head); err != nil {
		return err
	}
	if !sort.IntsAreSorted(tail) || !sort.IntsAreSorted(head) {
		return fmt.Errorf("hypergraph: AddEdgeShared requires sorted slices for edge %s", h.formatEdge(tail, head))
	}
	id := int32(len(h.edges))
	if pk, ok := PackEdgeKey(tail, head); ok {
		if _, dup := h.pkeys[pk]; dup {
			return fmt.Errorf("hypergraph: duplicate edge %s", h.formatEdge(tail, head))
		}
		h.pkeys[pk] = id
	} else {
		key := EdgeKey(tail, head)
		if _, dup := h.keys[key]; dup {
			return fmt.Errorf("hypergraph: duplicate edge %s", h.formatEdge(tail, head))
		}
		h.keys[key] = id
	}
	h.edges = append(h.edges, Edge{Tail: tail, Head: head, Weight: weight})
	for _, v := range tail {
		h.out[v] = append(h.out[v], id)
	}
	for _, v := range head {
		h.in[v] = append(h.in[v], id)
	}
	return nil
}

func (h *H) formatEdge(tail, head []int) string {
	name := func(ids []int) string {
		parts := make([]string, len(ids))
		for i, v := range ids {
			if v >= 0 && v < len(h.names) {
				parts[i] = h.names[v]
			} else {
				parts[i] = strconv.Itoa(v)
			}
		}
		return strings.Join(parts, ",")
	}
	return "{" + name(tail) + "} -> {" + name(head) + "}"
}

// Edge returns edge i by value.
func (h *H) Edge(i int) Edge { return h.edges[i] }

// Edges returns the backing edge slice. Treat it as read-only.
func (h *H) Edges() []Edge { return h.edges }

// Lookup returns the index of the edge with the given tail and head
// sets, and whether it exists. For packable pairs (|T| <= 3, |H| == 1,
// ids within MaxPackedID — every edge of the paper's restricted model)
// the probe is a single integer map access with zero heap allocation;
// other shapes fall back to the string-keyed map.
//
//hyper:noalloc
func (h *H) Lookup(tail, head []int) (int, bool) {
	if pk, ok := PackEdgeKey(tail, head); ok {
		id, found := h.pkeys[pk]
		return int(id), found
	}
	id, found := h.keys[EdgeKey(tail, head)]
	return int(id), found
}

// Weight returns the weight of (tail, head), or 0 if absent.
//
//hyper:noalloc
func (h *H) Weight(tail, head []int) float64 {
	if i, ok := h.Lookup(tail, head); ok {
		return h.edges[i].Weight
	}
	return 0
}

// Out returns the indexes of edges whose tail contains v. Read-only.
func (h *H) Out(v int) []int32 { return h.out[v] }

// In returns the indexes of edges whose head contains v. Read-only.
func (h *H) In(v int) []int32 { return h.in[v] }

// WeightedInDegree returns sum over edges e with v in H(e) of w(e)
// (§5.2: the predictability of v).
func (h *H) WeightedInDegree(v int) float64 {
	var s float64
	for _, i := range h.in[v] {
		s += h.edges[i].Weight
	}
	return s
}

// WeightedOutDegree returns sum over edges e with v in T(e) of
// w(e)/|T(e)| (§5.2: v's ability to predict others).
func (h *H) WeightedOutDegree(v int) float64 {
	var s float64
	for _, i := range h.out[v] {
		e := &h.edges[i]
		s += e.Weight / float64(len(e.Tail))
	}
	return s
}

// FilterByWeight returns a new hypergraph over the same vertices
// containing only edges with Weight >= min.
func (h *H) FilterByWeight(min float64) *H {
	out, _ := New(h.names)
	for _, e := range h.edges {
		if e.Weight >= min {
			// Safe: e came from this graph, so AddEdge cannot fail.
			_ = out.AddEdge(e.Tail, e.Head, e.Weight)
		}
	}
	return out
}

// TopFractionThreshold returns the weight w such that keeping edges
// with Weight >= w retains (approximately) the top frac of all edges
// by weight. This realizes the "top 40%/30%/20% hyperedges w.r.t.
// ACVs" thresholds of §5.4. frac must be in (0, 1].
func (h *H) TopFractionThreshold(frac float64) (float64, error) {
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("hypergraph: fraction %v outside (0,1]", frac)
	}
	if len(h.edges) == 0 {
		return 0, errors.New("hypergraph: no edges")
	}
	ws := make([]float64, len(h.edges))
	for i, e := range h.edges {
		ws[i] = e.Weight
	}
	sort.Float64s(ws)
	keep := int(float64(len(ws)) * frac)
	if keep < 1 {
		keep = 1
	}
	return ws[len(ws)-keep], nil
}

// Stats summarizes the edge population split by the paper's two edge
// classes.
type Stats struct {
	DirectedEdges   int     // |T| == 1
	TwoToOne        int     // |T| == 2
	Other           int     // anything larger
	MeanACVEdges    float64 // mean weight over directed edges
	MeanACVTwoToOne float64 // mean weight over 2-to-1 hyperedges
}

// EdgeStats computes Stats for the hypergraph (the §5.1.2 headline
// counts).
func (h *H) EdgeStats() Stats {
	var st Stats
	var sumE, sumH float64
	for _, e := range h.edges {
		switch {
		case len(e.Tail) == 1:
			st.DirectedEdges++
			sumE += e.Weight
		case len(e.Tail) == 2:
			st.TwoToOne++
			sumH += e.Weight
		default:
			st.Other++
		}
	}
	if st.DirectedEdges > 0 {
		st.MeanACVEdges = sumE / float64(st.DirectedEdges)
	}
	if st.TwoToOne > 0 {
		st.MeanACVTwoToOne = sumH / float64(st.TwoToOne)
	}
	return st
}

// Validate re-checks all structural invariants (sorted sets,
// disjointness, index consistency).
func (h *H) Validate() error {
	if len(h.names) == 0 {
		return errors.New("hypergraph: no vertices")
	}
	for i, e := range h.edges {
		if !sort.IntsAreSorted(e.Tail) || !sort.IntsAreSorted(e.Head) {
			return fmt.Errorf("hypergraph: edge %d not canonical", i)
		}
		if err := validSets(len(h.names), e.Tail, e.Head); err != nil {
			return fmt.Errorf("hypergraph: edge %d: %w", i, err)
		}
		if pk, packable := PackEdgeKey(e.Tail, e.Head); packable {
			if id, ok := h.pkeys[pk]; !ok || int(id) != i {
				return fmt.Errorf("hypergraph: edge %d missing from packed key index", i)
			}
			if _, stray := h.keys[EdgeKey(e.Tail, e.Head)]; stray {
				return fmt.Errorf("hypergraph: packable edge %d also in string key index", i)
			}
		} else if id, ok := h.keys[EdgeKey(e.Tail, e.Head)]; !ok || int(id) != i {
			return fmt.Errorf("hypergraph: edge %d missing from key index", i)
		}
	}
	for v := range h.out {
		for _, i := range h.out[v] {
			if !containsInt(h.edges[i].Tail, v) {
				return fmt.Errorf("hypergraph: out index of %d lists edge %d", v, i)
			}
		}
	}
	for v := range h.in {
		for _, i := range h.in[v] {
			if !containsInt(h.edges[i].Head, v) {
				return fmt.Errorf("hypergraph: in index of %d lists edge %d", v, i)
			}
		}
	}
	return nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
