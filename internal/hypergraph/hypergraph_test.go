package hypergraph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newH(t *testing.T, names ...string) *H {
	t.Helper()
	h, err := New(names)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("want error for no vertices")
	}
	if _, err := New([]string{"A", "A"}); err == nil {
		t.Error("want error for duplicate vertex")
	}
	if _, err := New([]string{""}); err == nil {
		t.Error("want error for empty name")
	}
}

func TestAddEdgeInvariants(t *testing.T) {
	h := newH(t, "A", "B", "C")
	if err := h.AddEdge([]int{0}, []int{1}, 0.5); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		tail, head []int
	}{
		{"empty tail", nil, []int{1}},
		{"empty head", []int{0}, nil},
		{"overlap", []int{0, 1}, []int{1}},
		{"tail out of range", []int{9}, []int{1}},
		{"head out of range", []int{0}, []int{9}},
		{"negative id", []int{-1}, []int{1}},
		{"duplicate tail vertex", []int{0, 0}, []int{1}},
		{"duplicate head vertex", []int{0}, []int{1, 1}},
		{"duplicate edge", []int{0}, []int{1}},
	}
	for _, c := range cases {
		if err := h.AddEdge(c.tail, c.head, 1); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	if h.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", h.NumEdges())
	}
}

func TestEdgeKeyCanonical(t *testing.T) {
	if EdgeKey([]int{2, 1}, []int{3}) != EdgeKey([]int{1, 2}, []int{3}) {
		t.Error("tail order should not matter")
	}
	if EdgeKey([]int{1}, []int{3}) == EdgeKey([]int{3}, []int{1}) {
		t.Error("direction must matter")
	}
	if EdgeKey([]int{1, 2}, []int{3}) == EdgeKey([]int{1}, []int{2, 3}) {
		t.Error("tail/head boundary must matter")
	}
	if EdgeKey([]int{12}, []int{3}) == EdgeKey([]int{1, 2}, []int{3}) {
		t.Error("multi-digit ids must not collide with pairs")
	}
	if EdgeKey([]int{5, 4, 3}, []int{9}) != EdgeKey([]int{3, 4, 5}, []int{9}) {
		t.Error("triple tails should canonicalize")
	}
}

func TestLookupWeightAndIncidence(t *testing.T) {
	h := newH(t, "A", "B", "C", "D")
	mustAdd := func(tail, head []int, w float64) {
		t.Helper()
		if err := h.AddEdge(tail, head, w); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd([]int{0}, []int{2}, 0.4)
	mustAdd([]int{1, 0}, []int{2}, 0.6) // unsorted on purpose
	mustAdd([]int{2}, []int{3}, 0.9)

	if i, ok := h.Lookup([]int{0, 1}, []int{2}); !ok || h.Edge(i).Weight != 0.6 {
		t.Error("Lookup with sorted tail failed")
	}
	if _, ok := h.Lookup([]int{0, 3}, []int{2}); ok {
		t.Error("Lookup found nonexistent edge")
	}
	if w := h.Weight([]int{1, 0}, []int{2}); w != 0.6 {
		t.Errorf("Weight = %v", w)
	}
	if w := h.Weight([]int{3}, []int{0}); w != 0 {
		t.Errorf("absent Weight = %v, want 0", w)
	}
	if len(h.Out(0)) != 2 || len(h.In(2)) != 2 || len(h.Out(3)) != 0 {
		t.Error("incidence lists wrong")
	}

	// Weighted degrees per §5.2.
	if got := h.WeightedInDegree(2); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("WeightedInDegree(C) = %v, want 1.0", got)
	}
	// out(A): 0.4/1 + 0.6/2 = 0.7
	if got := h.WeightedOutDegree(0); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("WeightedOutDegree(A) = %v, want 0.7", got)
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestEdgeClassPredicates(t *testing.T) {
	e1 := Edge{Tail: []int{0}, Head: []int{1}}
	e2 := Edge{Tail: []int{0, 2}, Head: []int{1}}
	e3 := Edge{Tail: []int{0, 2, 3}, Head: []int{1}}
	if !e1.IsDirectedEdge() || e1.IsTwoToOne() {
		t.Error("e1 misclassified")
	}
	if e2.IsDirectedEdge() || !e2.IsTwoToOne() {
		t.Error("e2 misclassified")
	}
	if e3.IsDirectedEdge() || e3.IsTwoToOne() {
		t.Error("e3 misclassified")
	}
}

func TestFilterByWeightAndTopFraction(t *testing.T) {
	h := newH(t, "A", "B", "C", "D")
	weights := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	tails := [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}}
	heads := [][]int{{1}, {2}, {3}, {3}, {3}}
	for i := range weights {
		if err := h.AddEdge(tails[i], heads[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	th, err := h.TopFractionThreshold(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if th != 0.4 {
		t.Errorf("threshold = %v, want 0.4", th)
	}
	f := h.FilterByWeight(th)
	if f.NumEdges() != 2 {
		t.Errorf("filtered edges = %d, want 2", f.NumEdges())
	}
	if err := f.Validate(); err != nil {
		t.Errorf("filtered Validate: %v", err)
	}
	if _, err := h.TopFractionThreshold(0); err == nil {
		t.Error("want error for frac=0")
	}
	if _, err := h.TopFractionThreshold(1.5); err == nil {
		t.Error("want error for frac>1")
	}
	empty := newH(t, "A")
	if _, err := empty.TopFractionThreshold(0.5); err == nil {
		t.Error("want error for empty graph")
	}
}

func TestEdgeStats(t *testing.T) {
	h := newH(t, "A", "B", "C", "D")
	_ = h.AddEdge([]int{0}, []int{1}, 0.4)
	_ = h.AddEdge([]int{1}, []int{2}, 0.6)
	_ = h.AddEdge([]int{0, 1}, []int{2}, 0.8)
	_ = h.AddEdge([]int{0, 1, 2}, []int{3}, 0.9)
	st := h.EdgeStats()
	if st.DirectedEdges != 2 || st.TwoToOne != 1 || st.Other != 1 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.MeanACVEdges-0.5) > 1e-12 || math.Abs(st.MeanACVTwoToOne-0.8) > 1e-12 {
		t.Errorf("means = %+v", st)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := newH(t, "A", "B", "C")
	_ = h.AddEdge([]int{0}, []int{1}, 0.25)
	_ = h.AddEdge([]int{0, 1}, []int{2}, 0.75)
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 3 || back.NumEdges() != 2 {
		t.Fatalf("round trip lost data: %d vertices, %d edges", back.NumVertices(), back.NumEdges())
	}
	if w := back.Weight([]int{0, 1}, []int{2}); w != 0.75 {
		t.Errorf("weight after round trip = %v", w)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestReadJSONRejectsCorrupt(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("want error for junk")
	}
	bad := `{"vertices":["A","B"],"edges":[{"tail":[0],"head":[0],"weight":1}]}`
	if _, err := ReadJSON(bytes.NewReader([]byte(bad))); err == nil {
		t.Error("want error for overlapping edge")
	}
}

// Property: random graphs always validate; degree identities hold
// (sum of weighted in-degrees == sum of weights == sum of weighted
// out-degrees, since every edge has |H|=1 and out shares are w/|T|).
func TestDegreeConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		names := make([]string, n)
		for i := range names {
			names[i] = "v" + string(rune('0'+i))
		}
		h, err := New(names)
		if err != nil {
			return false
		}
		var total float64
		for tries := 0; tries < 60; tries++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			w := rng.Float64()
			var e error
			if rng.Intn(2) == 0 {
				e = h.AddEdge([]int{a}, []int{c}, w)
			} else {
				e = h.AddEdge([]int{a, b}, []int{c}, w)
			}
			if e == nil {
				total += w
			}
		}
		if err := h.Validate(); err != nil {
			return false
		}
		var inSum, outSum float64
		for v := 0; v < n; v++ {
			inSum += h.WeightedInDegree(v)
			outSum += h.WeightedOutDegree(v)
		}
		return math.Abs(inSum-total) < 1e-9 && math.Abs(outSum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
