package hypergraph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// ForwardClosure computes the B-closure of a seed vertex set: the
// fixpoint of "a vertex is determined when some hyperedge's entire
// tail is determined". This generalizes the one-step coverage of
// Definition 4.1 to transitive inference — if a dominator determines
// X, and X together with other determined vertices determines Y, then
// Y is (transitively) determined too. It is the B-connectivity notion
// of the directed-hypergraph literature the paper builds on [GLPN93,
// TT09].
//
// The returned slice marks every determined vertex, seeds included.
// Runs in O(|E| + total tail size) via the standard counter algorithm.
func (h *H) ForwardClosure(seed []int) ([]bool, error) {
	determined := make([]bool, len(h.names))
	var queue []int
	for _, v := range seed {
		if v < 0 || v >= len(h.names) {
			return nil, fmt.Errorf("hypergraph: seed vertex %d out of range", v)
		}
		if !determined[v] {
			determined[v] = true
			queue = append(queue, v)
		}
	}
	// remaining[e] counts tail vertices of e not yet processed. Every
	// determined vertex is queued exactly once and decrements each of
	// its out-edges exactly once (tails hold distinct vertices), so an
	// edge fires precisely when its whole tail is determined.
	remaining := make([]int, len(h.edges))
	for i, e := range h.edges {
		remaining[i] = len(e.Tail)
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ei := range h.out[v] {
			remaining[ei]--
			if remaining[ei] == 0 {
				for _, u := range h.edges[ei].Head {
					if !determined[u] {
						determined[u] = true
						queue = append(queue, u)
					}
				}
			}
		}
	}
	return determined, nil
}

// Transpose returns the hypergraph with every edge reversed (tails and
// heads swapped). Useful for "what determines v" queries via forward
// algorithms.
func (h *H) Transpose() *H {
	out, _ := New(h.names)
	for _, e := range h.edges {
		// Tail/head validity is symmetric, so this cannot fail.
		_ = out.AddEdge(e.Head, e.Tail, e.Weight)
	}
	return out
}

// InducedSubgraph returns the hypergraph on the same vertex set
// containing only edges whose tail and head vertices all belong to
// keep.
func (h *H) InducedSubgraph(keep []int) (*H, error) {
	in := make([]bool, len(h.names))
	for _, v := range keep {
		if v < 0 || v >= len(h.names) {
			return nil, fmt.Errorf("hypergraph: vertex %d out of range", v)
		}
		in[v] = true
	}
	out, _ := New(h.names)
	for _, e := range h.edges {
		ok := true
		for _, v := range e.Tail {
			if !in[v] {
				ok = false
				break
			}
		}
		if ok {
			for _, v := range e.Head {
				if !in[v] {
					ok = false
					break
				}
			}
		}
		if ok {
			_ = out.AddEdge(e.Tail, e.Head, e.Weight)
		}
	}
	return out, nil
}

// WriteDOT emits a Graphviz rendering of the hypergraph: directed
// edges become plain arcs; larger tails become a point-shaped junction
// node with arcs from each tail vertex and one arc to the head (the
// usual directed-hypergraph drawing, and how Figure 5.3-style visuals
// are produced).
func (h *H) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "H"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=LR;\n  node [shape=ellipse];\n")
	for v, n := range h.names {
		fmt.Fprintf(&sb, "  v%d [label=%q];\n", v, n)
	}
	for i, e := range h.edges {
		if len(e.Tail) == 1 && len(e.Head) == 1 {
			fmt.Fprintf(&sb, "  v%d -> v%d [label=\"%.2f\"];\n", e.Tail[0], e.Head[0], e.Weight)
			continue
		}
		fmt.Fprintf(&sb, "  j%d [shape=point,width=0.06];\n", i)
		tails := append([]int(nil), e.Tail...)
		sort.Ints(tails)
		for _, t := range tails {
			fmt.Fprintf(&sb, "  v%d -> j%d [arrowhead=none];\n", t, i)
		}
		for _, hd := range e.Head {
			fmt.Fprintf(&sb, "  j%d -> v%d [label=\"%.2f\"];\n", i, hd, e.Weight)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
