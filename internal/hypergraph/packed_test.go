package hypergraph

import (
	"fmt"
	"math/rand"
	"testing"

	"hypermine/internal/testutil"
)

func TestPackEdgeKeyCanonical(t *testing.T) {
	k1, ok1 := PackEdgeKey([]int{2, 1}, []int{3})
	k2, ok2 := PackEdgeKey([]int{1, 2}, []int{3})
	if !ok1 || !ok2 || k1 != k2 {
		t.Error("packed key not canonical under tail permutation")
	}
	k3, _ := PackEdgeKey([]int{5, 4, 3}, []int{9})
	k4, _ := PackEdgeKey([]int{3, 5, 4}, []int{9})
	k5, _ := PackEdgeKey([]int{4, 3, 5}, []int{9})
	if k3 != k4 || k4 != k5 {
		t.Error("3-tail packed key not canonical under permutation")
	}
	a, _ := PackEdgeKey([]int{1}, []int{3})
	b, _ := PackEdgeKey([]int{3}, []int{1})
	if a == b {
		t.Error("tail and head slots collide")
	}
	c, _ := PackEdgeKey([]int{1, 2}, []int{3})
	d, _ := PackEdgeKey([]int{1}, []int{3})
	if c == d {
		t.Error("different tail sizes collide")
	}
}

func TestPackEdgeKeyRejectsUnpackable(t *testing.T) {
	cases := []struct {
		tail, head []int
	}{
		{[]int{1, 2, 3, 4}, []int{5}}, // tail too large
		{[]int{1}, []int{2, 3}},       // head too large
		{[]int{1}, []int{}},           // empty head
		{[]int{}, []int{1}},           // empty tail
		{[]int{MaxPackedID + 1}, []int{1}},
		{[]int{1}, []int{MaxPackedID + 1}},
		{[]int{-1}, []int{1}},
		{[]int{1}, []int{-1}},
		{[]int{-1, 2, 3}, []int{1}},
	}
	for _, c := range cases {
		if _, ok := PackEdgeKey(c.tail, c.head); ok {
			t.Errorf("PackEdgeKey(%v, %v) unexpectedly packable", c.tail, c.head)
		}
	}
	if _, ok := PackEdgeKey([]int{MaxPackedID}, []int{0}); !ok {
		t.Error("edge at MaxPackedID should pack")
	}
}

// randomRestricted builds a random hypergraph mixing all packable tail
// sizes with unpackable general edges (|H| = 2), and returns a legacy
// string-keyed reference index of every stored edge.
func randomRestricted(t *testing.T, rng *rand.Rand, nv, tries int) (*H, map[string]int) {
	t.Helper()
	names := make([]string, nv)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	h, err := New(names)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]int{}
	distinct := func(ids ...int) bool {
		seen := map[int]bool{}
		for _, v := range ids {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	for i := 0; i < tries; i++ {
		w := rng.Float64() + 0.01
		var tail, head []int
		switch rng.Intn(4) {
		case 0:
			tail, head = []int{rng.Intn(nv)}, []int{rng.Intn(nv)}
		case 1:
			tail, head = []int{rng.Intn(nv), rng.Intn(nv)}, []int{rng.Intn(nv)}
		case 2:
			tail, head = []int{rng.Intn(nv), rng.Intn(nv), rng.Intn(nv)}, []int{rng.Intn(nv)}
		case 3: // general (unpackable) edge exercising the fallback map
			tail, head = []int{rng.Intn(nv)}, []int{rng.Intn(nv), rng.Intn(nv)}
		}
		if !distinct(append(append([]int{}, tail...), head...)...) {
			continue
		}
		if err := h.AddEdge(tail, head, w); err != nil {
			continue // duplicate
		}
		ref[EdgeKey(tail, head)] = h.NumEdges() - 1
	}
	return h, ref
}

// TestPackedLookupDifferential checks that packed-key Lookup answers
// exactly what the legacy string-keyed index would, for every stored
// edge (including size-3 tails and fallback edges) and for random
// probes.
func TestPackedLookupDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		nv := 5 + rng.Intn(40)
		h, ref := randomRestricted(t, rng, nv, 300)
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
		// Every stored edge must be found, also under permuted input.
		for i := 0; i < h.NumEdges(); i++ {
			e := h.Edge(i)
			got, ok := h.Lookup(e.Tail, e.Head)
			if !ok || got != i {
				t.Fatalf("Lookup(edge %d) = (%d, %v)", i, got, ok)
			}
			perm := append([]int(nil), e.Tail...)
			rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			if got, ok := h.Lookup(perm, e.Head); !ok || got != i {
				t.Fatalf("Lookup(permuted edge %d) = (%d, %v)", i, got, ok)
			}
		}
		// Random probes must agree with the string reference.
		for p := 0; p < 500; p++ {
			var tail, head []int
			switch rng.Intn(4) {
			case 0:
				tail, head = []int{rng.Intn(nv)}, []int{rng.Intn(nv)}
			case 1:
				tail, head = []int{rng.Intn(nv), rng.Intn(nv)}, []int{rng.Intn(nv)}
			case 2:
				tail, head = []int{rng.Intn(nv), rng.Intn(nv), rng.Intn(nv)}, []int{rng.Intn(nv)}
			case 3:
				tail, head = []int{rng.Intn(nv)}, []int{rng.Intn(nv), rng.Intn(nv)}
			}
			wantID, want := ref[EdgeKey(tail, head)]
			gotID, got := h.Lookup(tail, head)
			if got != want || (got && gotID != wantID) {
				t.Fatalf("Lookup(%v, %v) = (%d, %v), reference (%d, %v)",
					tail, head, gotID, got, wantID, want)
			}
		}
	}
}

// TestLookupBeyondPackedIDs checks the string fallback for vertex ids
// past the 16-bit packing limit.
func TestLookupBeyondPackedIDs(t *testing.T) {
	nv := MaxPackedID + 10
	names := make([]string, nv)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	h, err := New(names)
	if err != nil {
		t.Fatal(err)
	}
	big := MaxPackedID + 5
	if err := h.AddEdge([]int{big}, []int{0}, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := h.AddEdge([]int{1, big}, []int{2}, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := h.AddEdge([]int{1}, []int{2}, 0.9); err != nil {
		t.Fatal(err)
	}
	if i, ok := h.Lookup([]int{big}, []int{0}); !ok || h.Edge(i).Weight != 0.5 {
		t.Error("fallback lookup of big-id directed edge failed")
	}
	if i, ok := h.Lookup([]int{big, 1}, []int{2}); !ok || h.Edge(i).Weight != 0.7 {
		t.Error("fallback lookup of big-id 2-to-1 edge failed")
	}
	if i, ok := h.Lookup([]int{1}, []int{2}); !ok || h.Edge(i).Weight != 0.9 {
		t.Error("packed lookup alongside fallback edges failed")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := h.AddEdge([]int{big}, []int{0}, 0.1); err == nil {
		t.Error("duplicate fallback edge not rejected")
	}
}

// TestLookupZeroAlloc pins the tentpole property: restricted-model
// probes make no heap allocations.
func TestLookupZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts unreliable under the race detector")
	}
	h := newH(t, "a", "b", "c", "d")
	if err := h.AddEdge([]int{0, 1}, []int{2}, 0.6); err != nil {
		t.Fatal(err)
	}
	tail, head := []int{1, 0}, []int{2}
	miss := []int{0, 3}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := h.Lookup(tail, head); !ok {
			t.Fatal("edge vanished")
		}
		if _, ok := h.Lookup(miss, head); ok {
			t.Fatal("phantom edge")
		}
	}); n != 0 {
		t.Errorf("Lookup allocates %v objects/op, want 0", n)
	}
}
