package hypergraph_test

import (
	"testing"

	"hypermine/internal/benchfix"
	"hypermine/internal/hypergraph"
)

// BenchmarkLookup measures the packed-key probe on restricted-model
// edges — the tentpole's 0 allocs/op fast path.
func BenchmarkLookup(b *testing.B) {
	h := benchfix.RandomHypergraph(7, 80, 4000, 3)
	n := h.NumEdges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := h.Edge(i % n)
		if _, ok := h.Lookup(e.Tail, e.Head); !ok {
			b.Fatal("edge vanished")
		}
	}
}

// BenchmarkLookupMiss measures a failing packed probe (the common case
// inside OutSim/InSim substitution scans).
func BenchmarkLookupMiss(b *testing.B) {
	h := benchfix.RandomHypergraph(7, 80, 4000, 3)
	tail := []int{78, 79}
	head := []int{77}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := h.Lookup(tail, head); ok {
			b.Fatal("phantom edge")
		}
	}
}

// BenchmarkLookupLegacyStringKey is the pre-PR-2 probe — EdgeKey string
// formatting plus a string map — kept as the before/after reference for
// BENCH_2.json.
func BenchmarkLookupLegacyStringKey(b *testing.B) {
	h := benchfix.RandomHypergraph(7, 80, 4000, 3)
	legacy := make(map[string]int32, h.NumEdges())
	for i := 0; i < h.NumEdges(); i++ {
		e := h.Edge(i)
		legacy[hypergraph.EdgeKey(e.Tail, e.Head)] = int32(i)
	}
	n := h.NumEdges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := h.Edge(i % n)
		if _, ok := legacy[hypergraph.EdgeKey(e.Tail, e.Head)]; !ok {
			b.Fatal("edge vanished")
		}
	}
}
