package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"hypermine/internal/core"
	"hypermine/internal/testutil"
)

// TestNoGoroutineLeakAfterConcurrentQueries is the goleak-style check
// mirroring the server suite's: a burst of concurrent queries — some
// racing the memo singleflight, some canceled mid-flight — must leave
// the goroutine count at its pre-burst baseline. Losers of a memo race
// park in a select on the winner's done channel; a canceled loser must
// unwind instead of waiting forever.
func TestNoGoroutineLeakAfterConcurrentQueries(t *testing.T) {
	m := testModel(t, 11, 10, 400, 2)
	baseline := testutil.GoroutineBaseline()

	e, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			if i%4 == 0 {
				cancel() // dead on arrival: loser paths must unwind
			} else {
				defer cancel()
			}
			e.Dominator(ctx, DefaultDomSpec())
			e.Rules(ctx, 0, core.MineOptions{MaxRules: 3})
			e.Warmup(ctx, WarmupClassifier)
		}(i)
	}
	wg.Wait()

	// One clean pass proves the engine still serves after the burst.
	if _, err := e.Dominator(context.Background(), DefaultDomSpec()); err != nil {
		t.Fatalf("dominator after burst: %v", err)
	}
	testutil.CheckGoroutines(t.Fatalf, baseline, 0, 5*time.Second)
}
