// Targeted invalidation for incrementally republished models: instead
// of rebuild-everything-on-new-Engine, NewFromPrevious starts the next
// generation's Engine with every memoized artifact whose inputs did
// not change already warm.
//
// What can actually survive an append is dictated by the math, not by
// optimism. Every ACV is an integer sum over the row count, so any
// real append shifts every edge weight (the denominator grew) — and
// the similarity matrix, the dominator (its enhancements divide by
// edge weight), the classifier's association tables, and every cached
// rule answer are all functions of those weights or of the rows.
// Carrying any of them would break the engine's contract that answers
// are bit-identical to a fresh engine over a full re-mine. The one
// artifact that does survive is the TID-bitset index: appends extend
// it copy-on-write (table.AppendRows) and the differential tests pin
// extended ≡ rebuilt, so the new engine is primed with it for free. A
// no-op publish (zero rows appended) carries everything.
//
// For the artifacts that must be dropped, RewarmFromPrevious restores
// the previous generation's warmth by eagerly rebuilding exactly the
// set that was warm before — so a hot model stays hot across an
// append, with the rebuild cost paid inside the republish instead of
// by the first unlucky query.
package engine

import (
	"context"
	"errors"

	"hypermine/internal/core"
)

// prime installs v as the memo's completed successful build, as if a
// winner had already built and memoized it.
func (m *memo[T]) prime(v T) {
	f := &flight[T]{done: make(chan struct{}), val: v}
	close(f.done)
	m.mu.Lock()
	m.cur = f
	m.mu.Unlock()
	m.ready.Store(f)
}

// NewFromPrevious returns an Engine for next, carrying forward from
// prev (the engine of the model next was delta-derived from) every
// memoized artifact that is still exactly valid. unchanged reports
// that next is semantically identical to prev's model (a no-op
// append): then all derived artifacts carry over. Otherwise only the
// TID-bitset index survives — see the package comment above — and it
// is primed from the appended table's copy-on-write-extended index.
// The engine options are inherited from prev.
func NewFromPrevious(prev *Engine, next *core.Model, unchanged bool) (*Engine, error) {
	if prev == nil {
		return nil, errors.New("engine: NewFromPrevious requires a previous engine")
	}
	e, err := New(next, prev.opt)
	if err != nil {
		return nil, err
	}
	// The extended index: table.AppendRows seeded it on the new table
	// if the old table's index was built. Priming it counts toward
	// resident cost but not toward indexBuilds — nothing was built.
	if next.Table != nil && next.Table.NumRows() > 0 {
		if ix := next.Table.IndexIfBuilt(); ix != nil {
			e.index.prime(ix)
			e.derivedBytes.Add(indexFootprint(next.Table))
		}
	}
	if !unchanged {
		return e, nil
	}
	// No rows appended: weights, rows, and graph are all identical, so
	// every derived artifact of prev answers exactly for next too.
	if g, gerr, ok := prev.sim.cached(); ok && gerr == nil {
		e.sim.prime(g)
		e.derivedBytes.Add(simFootprint(g))
	}
	prev.mu.Lock()
	domSpecs := make([]DomSpec, 0, len(prev.doms))
	// Spec order is irrelevant here: each spec primes an independent
	// memo and the footprint additions commute.
	//hyperlint:ignore detout
	for spec := range prev.doms {
		domSpecs = append(domSpecs, spec)
	}
	clsSpecs := make([]DomSpec, 0, len(prev.cls))
	//hyperlint:ignore detout
	for spec := range prev.cls {
		clsSpecs = append(clsSpecs, spec)
	}
	prev.mu.Unlock()
	for _, spec := range domSpecs {
		if res, rerr, ok := prev.domMemo(spec).cached(); ok && rerr == nil {
			e.domMemo(spec).prime(res)
			e.derivedBytes.Add(domFootprint(res))
		}
	}
	for _, spec := range clsSpecs {
		if set, serr, ok := prev.clsMemo(spec).cached(); ok && serr == nil {
			e.clsMemo(spec).prime(set)
			e.derivedBytes.Add(e.classifierFootprint(set))
		}
	}
	return e, nil
}

// RewarmFromPrevious eagerly rebuilds, under ctx, the default-spec
// artifacts that were warm in prev but could not be carried across the
// append, so the republished generation answers its first queries at
// the previous generation's warm latency. Artifacts prev never built
// stay lazy.
func (e *Engine) RewarmFromPrevious(ctx context.Context, prev *Engine) error {
	var w Warmup
	if _, _, ok := prev.index.cached(); ok {
		w |= WarmupIndex
	}
	if _, _, ok := prev.sim.cached(); ok {
		w |= WarmupSimilarity
	}
	if _, _, ok := prev.defaultDom.cached(); ok {
		w |= WarmupDominator
	}
	if _, _, ok := prev.defaultCls.cached(); ok {
		w |= WarmupClassifier
	}
	return e.Warmup(ctx, w)
}
