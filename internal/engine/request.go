// The transport-neutral typed query layer: a Request is a tagged
// union of the four paper workloads (rules, similarity, leading
// indicators, classification) plus a multiplexed Batch form, and a
// Response mirrors it. Engine.Do executes one Request; the HTTP
// server decodes its body into a Request, calls Do, and encodes the
// result, so in-process Go callers and HTTP clients run identical
// code. All attribute references are by name, making the types
// JSON-stable across model reloads.

package engine

import (
	"context"
	"fmt"
	"sort"

	"hypermine/internal/core"
	"hypermine/internal/similarity"
	"hypermine/internal/table"
)

// ErrorKind classifies an engine error for transport mapping.
type ErrorKind string

// Error kinds. Transports map them onto their own vocabulary (the
// HTTP server uses 400 / 409 / 500); context errors are never wrapped
// in an *Error — they surface as context.Canceled/DeadlineExceeded so
// callers can errors.Is them.
const (
	// ErrBadRequest: the request itself is malformed (unknown
	// attribute name, out-of-range value, conflicting variants).
	ErrBadRequest ErrorKind = "bad_request"
	// ErrUnavailable: the request is well-formed but this model
	// cannot answer it (row-less snapshot, dominator with no targets).
	ErrUnavailable ErrorKind = "unavailable"
	// ErrInternal: an unexpected engine-side failure.
	ErrInternal ErrorKind = "internal"
)

// Error is a typed engine error.
type Error struct {
	Kind    ErrorKind `json:"kind"`
	Message string    `json:"message"`
}

func (e *Error) Error() string { return e.Message }

func badf(format string, args ...any) *Error {
	return &Error{Kind: ErrBadRequest, Message: fmt.Sprintf(format, args...)}
}

func unavailablef(format string, args ...any) *Error {
	return &Error{Kind: ErrUnavailable, Message: fmt.Sprintf(format, args...)}
}

func internalf(format string, args ...any) *Error {
	return &Error{Kind: ErrInternal, Message: fmt.Sprintf(format, args...)}
}

// AsError coerces any error into an *Error, defaulting to
// ErrInternal for untyped failures.
func AsError(err error) *Error {
	if err == nil {
		return nil
	}
	if ee, ok := err.(*Error); ok {
		return ee
	}
	return &Error{Kind: ErrInternal, Message: err.Error()}
}

// Cost is a request's admission cost class: the serving layer gives
// cheap warm reads and expensive cold/mining queries separate
// concurrency gates, so a burst of rule-mining queries cannot starve
// the microsecond classify path.
type Cost int

const (
	// CostCheap is the warm read path: classification, similarity,
	// and dominator queries answer from memoized artifacts in
	// nanoseconds-to-microseconds once built.
	CostCheap Cost = iota
	// CostExpensive is the mining path: a rules query misses the rule
	// cache into a full MineRules run (tens of milliseconds).
	CostExpensive
)

// String names the cost class for stats and metrics labels.
func (c Cost) String() string {
	if c == CostExpensive {
		return "expensive"
	}
	return "cheap"
}

// Cost classifies the request by kind: rules queries (and batches
// containing one) are expensive, everything else is cheap. The
// classification is static — it does not consult cache state — so the
// admission decision is deterministic for a given request shape.
func (r *Request) Cost() Cost {
	if r == nil {
		return CostCheap
	}
	if r.Rules != nil {
		return CostExpensive
	}
	for i := range r.Batch {
		if r.Batch[i].Rules != nil {
			return CostExpensive
		}
	}
	return CostCheap
}

// Request is one engine query: exactly one variant must be set.
type Request struct {
	Rules      *RulesRequest      `json:"rules,omitempty"`
	Similar    *SimilarRequest    `json:"similar,omitempty"`
	Dominators *DominatorsRequest `json:"dominators,omitempty"`
	Classify   *ClassifyRequest   `json:"classify,omitempty"`
	// Batch multiplexes independent sub-requests (no nesting): one
	// round trip, one Response.Batch entry per sub-request, each
	// succeeding or failing on its own.
	Batch []Request `json:"batch,omitempty"`
}

// Response carries the answer of the matching Request variant.
type Response struct {
	Rules      *RulesResponse      `json:"rules,omitempty"`
	Similar    *SimilarResponse    `json:"similar,omitempty"`
	Dominators *DominatorsResponse `json:"dominators,omitempty"`
	Classify   *ClassifyResponse   `json:"classify,omitempty"`
	Batch      []BatchItem         `json:"batch,omitempty"`
}

// BatchItem is one sub-answer of a Batch: the Response fields of a
// successful sub-request, or its Error.
type BatchItem struct {
	Response
	Error *Error `json:"error,omitempty"`
}

// RulesRequest mines ranked mva-type rules pointing at a head
// attribute. Zero thresholds accept everything; Top 0 means 10.
type RulesRequest struct {
	Head          string  `json:"head"`
	Top           int     `json:"top,omitempty"`
	MinSupport    float64 `json:"min_support,omitempty"`
	MinConfidence float64 `json:"min_confidence,omitempty"`
}

// RuleResult is one mined rule rendered with attribute names.
type RuleResult struct {
	Rule       string  `json:"rule"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

// RulesResponse lists the mined rules, ranked.
type RulesResponse struct {
	Head  string       `json:"head"`
	Rules []RuleResult `json:"rules"`
}

// SimilarRequest asks for the pair similarity of A and B, or — with B
// empty — the Top nearest neighbors of A by similarity distance
// (Top 0 means 10).
type SimilarRequest struct {
	A   string `json:"a"`
	B   string `json:"b,omitempty"`
	Top int    `json:"top,omitempty"`
}

// Neighbor is one ranking entry.
type Neighbor struct {
	Name     string  `json:"name"`
	Distance float64 `json:"distance"`
}

// SimilarResponse is a pair answer (InSim/OutSim/Distance set) or a
// ranking answer (Neighbors set).
type SimilarResponse struct {
	A         string     `json:"a"`
	B         string     `json:"b,omitempty"`
	InSim     *float64   `json:"in_sim,omitempty"`
	OutSim    *float64   `json:"out_sim,omitempty"`
	Distance  *float64   `json:"distance,omitempty"`
	Neighbors []Neighbor `json:"neighbors,omitempty"`
}

// DominatorsRequest asks for a leading indicator. Alg selects the
// greedy algorithm (5 or 6; 0 means 6); both paper enhancements are
// applied — the serving policy, matching hypermine.LeadingIndicators.
type DominatorsRequest struct {
	Alg      int  `json:"alg,omitempty"`
	Complete bool `json:"complete,omitempty"`
}

// DominatorsResponse reports the computed dominator.
type DominatorsResponse struct {
	Dominator  []string `json:"dominator"`
	Targets    []string `json:"targets"`
	Coverage   float64  `json:"coverage"`
	Iterations int      `json:"iterations"`
	TargetSize int      `json:"target_size"`
}

// ClassifyRequest classifies one observation (Values: dominator
// attribute name -> value) or a batch (Rows: one row per observation,
// values in dominator order). Exactly one of Values/Rows must be set.
type ClassifyRequest struct {
	Target string         `json:"target"`
	Values map[string]int `json:"values,omitempty"`
	Rows   [][]int        `json:"rows,omitempty"`
}

// ClassifyResponse is a single answer (Value/Confidence set) or a
// batch answer (Values/Confidences set).
type ClassifyResponse struct {
	Target      string    `json:"target"`
	Value       *int      `json:"value,omitempty"`
	Confidence  *float64  `json:"confidence,omitempty"`
	Values      []int     `json:"values,omitempty"`
	Confidences []float64 `json:"confidences,omitempty"`
}

// Do executes one Request under ctx. Errors are *Error values (see
// ErrorKind) except context failures, which surface unwrapped.
func (e *Engine) Do(ctx context.Context, req *Request) (*Response, error) {
	if req == nil {
		return nil, badf("nil request")
	}
	if req.Batch != nil {
		if req.Rules != nil || req.Similar != nil || req.Dominators != nil || req.Classify != nil {
			return nil, badf("batch request must not carry other variants")
		}
		return e.doBatch(ctx, req.Batch)
	}
	return e.doOne(ctx, req)
}

func (e *Engine) doOne(ctx context.Context, req *Request) (*Response, error) {
	variants := 0
	for _, set := range []bool{req.Rules != nil, req.Similar != nil, req.Dominators != nil, req.Classify != nil} {
		if set {
			variants++
		}
	}
	if variants != 1 {
		return nil, badf("exactly one of rules, similar, dominators, classify must be set (got %d)", variants)
	}
	switch {
	case req.Rules != nil:
		return e.doRules(ctx, req.Rules)
	case req.Similar != nil:
		return e.doSimilar(ctx, req.Similar)
	case req.Dominators != nil:
		return e.doDominators(ctx, req.Dominators)
	default:
		return e.doClassify(ctx, req.Classify)
	}
}

// doBatch answers every sub-request independently: a malformed or
// unanswerable item fails alone, while a context failure aborts the
// whole batch (the remaining items would fail identically).
func (e *Engine) doBatch(ctx context.Context, subs []Request) (*Response, error) {
	if len(subs) == 0 {
		return nil, badf("empty batch")
	}
	items := make([]BatchItem, len(subs))
	for i := range subs {
		if subs[i].Batch != nil {
			items[i].Error = badf("batch item %d: nested batch", i)
			continue
		}
		resp, err := e.doOne(ctx, &subs[i])
		if err != nil {
			if isCtxErr(err) {
				return nil, err
			}
			items[i].Error = AsError(err)
			continue
		}
		items[i].Response = *resp
	}
	return &Response{Batch: items}, nil
}

func (e *Engine) doRules(ctx context.Context, q *RulesRequest) (*Response, error) {
	head := e.model.H.Vertex(q.Head)
	if head < 0 {
		return nil, badf("unknown head attribute %q", q.Head)
	}
	top := q.Top
	if top == 0 {
		top = 10
	}
	if top < 1 {
		return nil, badf("bad top %d", q.Top)
	}
	rules, err := e.Rules(ctx, head, core.MineOptions{
		MinSupport:    q.MinSupport,
		MinConfidence: q.MinConfidence,
		MaxRules:      top,
	})
	if err != nil {
		return nil, err
	}
	out := make([]RuleResult, len(rules))
	for i, sr := range rules {
		out[i] = RuleResult{
			Rule:       core.FormatRule(e.model.Table, sr.Rule),
			Support:    sr.Support,
			Confidence: sr.Confidence,
			Lift:       sr.Lift,
		}
	}
	return &Response{Rules: &RulesResponse{Head: q.Head, Rules: out}}, nil
}

func (e *Engine) doSimilar(ctx context.Context, q *SimilarRequest) (*Response, error) {
	h := e.model.H
	a := h.Vertex(q.A)
	if a < 0 {
		return nil, badf("unknown attribute %q", q.A)
	}
	if q.B != "" {
		b := h.Vertex(q.B)
		if b < 0 {
			return nil, badf("unknown attribute %q", q.B)
		}
		// A pair answer needs no prepared graph: the two similarity
		// sums are exactly what one matrix cell would hold.
		in := similarity.InSim(h, a, b)
		out := similarity.OutSim(h, a, b)
		dist := 1 - (in+out)/2
		return &Response{Similar: &SimilarResponse{
			A: q.A, B: q.B, InSim: &in, OutSim: &out, Distance: &dist,
		}}, nil
	}
	top := q.Top
	if top == 0 {
		top = 10
	}
	if top < 1 {
		return nil, badf("bad top %d", q.Top)
	}
	// Ranking reads one row of the memoized all-pairs graph: no
	// similarity math on the warm path.
	g, err := e.SimilarityGraph(ctx)
	if err != nil {
		return nil, err
	}
	neighbors := make([]Neighbor, 0, h.NumVertices()-1)
	for v := 0; v < h.NumVertices(); v++ {
		if v == a {
			continue
		}
		neighbors = append(neighbors, Neighbor{Name: h.VertexName(v), Distance: g.Dist(a, v)})
	}
	sort.SliceStable(neighbors, func(i, j int) bool { return neighbors[i].Distance < neighbors[j].Distance })
	if top < len(neighbors) {
		neighbors = neighbors[:top]
	}
	return &Response{Similar: &SimilarResponse{A: q.A, Neighbors: neighbors}}, nil
}

func (e *Engine) doDominators(ctx context.Context, q *DominatorsRequest) (*Response, error) {
	spec := DomSpec{Algorithm: q.Alg, Complete: q.Complete, Enhancement1: true, Enhancement2: true}
	res, err := e.Dominator(ctx, spec)
	if err != nil {
		return nil, err
	}
	h := e.model.H
	dom := make([]string, len(res.DomSet))
	for i, v := range res.DomSet {
		dom[i] = h.VertexName(v)
	}
	targetIDs := targetsOf(res)
	targets := make([]string, len(targetIDs))
	for i, v := range targetIDs {
		targets[i] = h.VertexName(v)
	}
	return &Response{Dominators: &DominatorsResponse{
		Dominator:  dom,
		Targets:    targets,
		Coverage:   res.CoverageFraction(),
		Iterations: res.Iterations,
		TargetSize: res.TargetSize,
	}}, nil
}

func (e *Engine) doClassify(ctx context.Context, q *ClassifyRequest) (*Response, error) {
	if (q.Values == nil) == (q.Rows == nil) {
		return nil, badf("exactly one of values (single) or rows (batch) must be set")
	}
	set, err := e.warmClassifierSet(ctx)
	if err != nil {
		return nil, err
	}
	target, err := e.resolveTarget(set, q.Target)
	if err != nil {
		return nil, err
	}
	h := e.model.H
	dom := set.dom.DomSet
	k := e.model.Table.K()

	if q.Values != nil {
		domVals := make([]table.Value, len(dom))
		for i, a := range dom {
			name := h.VertexName(a)
			v, ok := q.Values[name]
			if !ok {
				return nil, badf("missing value for dominator attribute %q", name)
			}
			if v < 1 || v > k {
				return nil, badf("value %d for %q outside 1..%d", v, name, k)
			}
			domVals[i] = table.Value(v)
		}
		val, conf, err := e.Predict(ctx, domVals, target)
		if err != nil {
			return nil, err
		}
		iv := int(val)
		return &Response{Classify: &ClassifyResponse{Target: q.Target, Value: &iv, Confidence: &conf}}, nil
	}

	if len(q.Rows) == 0 {
		return nil, badf("empty rows")
	}
	domVals := make([]table.Value, 0, len(q.Rows)*len(dom))
	for i, row := range q.Rows {
		if len(row) != len(dom) {
			return nil, badf("row %d has %d values, want %d (dominator order)", i, len(row), len(dom))
		}
		for j, v := range row {
			if v < 1 || v > k {
				return nil, badf("row %d value %d for %q outside 1..%d", i, v, h.VertexName(dom[j]), k)
			}
			domVals = append(domVals, table.Value(v))
		}
	}
	out := make([]table.Value, len(q.Rows))
	conf := make([]float64, len(q.Rows))
	if err := e.PredictBatch(ctx, domVals, target, out, conf); err != nil {
		return nil, err
	}
	resp := &ClassifyResponse{Target: q.Target, Values: make([]int, len(out)), Confidences: conf}
	for i, v := range out {
		resp.Values[i] = int(v)
	}
	return &Response{Classify: resp}, nil
}

// resolveTarget maps a target attribute name to its id, requiring it
// to be one of the model's classifiable targets — asking for a
// dominator member or an uncovered attribute is a client error.
func (e *Engine) resolveTarget(set *classifierSet, name string) (int, error) {
	target := e.model.H.Vertex(name)
	if target < 0 {
		return 0, badf("unknown target attribute %q", name)
	}
	for _, t := range set.targets {
		if t == target {
			return target, nil
		}
	}
	return 0, badf("attribute %q is not a classifiable target (see the model's targets list)", name)
}
