// Package engine implements the prepared-model query engine: a
// first-class, concurrency-safe handle around a mined *core.Model
// that lazily builds and memoizes every derived artifact the paper's
// repeated-query workloads need — the TID-bitset index, the all-pairs
// similarity graph, dominator results keyed by algorithm options, the
// prepared association-based classifier with its predictor pool, and
// a bounded LRU of mined-rule answers keyed by (head, MineOptions).
//
// One Engine is shared by every consumer of a model: the library
// facade, the serving registry (which only adds lifecycle — hot swap,
// refcounts, eviction — on top), the HTTP server, and the CLI. The
// discipline is "prepare once, probe cheaply": the first query that
// needs an artifact pays for its construction exactly once, under
// singleflight-style once-per-key initialization, and every later
// query (from any goroutine) reads the memoized result lock-free.
//
// Construction runs under the winning caller's context. If that build
// fails with a context error the memo entry is cleared so a later
// caller retries; any other build error is sticky, like the artifact
// would have been. Waiters blocked on someone else's build stop
// waiting when their own context ends.
//
// The transport-neutral typed query layer (Request/Response and
// Engine.Do) lives in request.go; HTTP handlers and in-process Go
// callers execute identical code through it.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hypermine/internal/classify"
	"hypermine/internal/core"
	"hypermine/internal/cover"
	"hypermine/internal/runopt"
	"hypermine/internal/similarity"
	"hypermine/internal/table"
)

// DefaultRuleCacheEntries is the default bound on the mined-rule LRU.
const DefaultRuleCacheEntries = 64

// Options tunes an Engine.
type Options struct {
	// RuleCacheEntries bounds the mined-rule LRU (in cached answers,
	// each one full MineRules result). 0 means DefaultRuleCacheEntries;
	// negative disables rule caching entirely.
	RuleCacheEntries int
}

// DomSpec keys a memoized dominator computation. It is the comparable
// subset of cover.Options plus the algorithm choice; runtime-only
// hooks are deliberately excluded — a memoized artifact cannot replay
// progress callbacks.
type DomSpec struct {
	// Algorithm is 5 (DominatorGreedyDS, Algorithm 5) or 6
	// (DominatorSetCover, Algorithm 6). 0 means 6.
	Algorithm int
	// Complete forces full coverage via self-covering.
	Complete bool
	// Enhancement1 and Enhancement2 are Algorithms 7 and 8.
	Enhancement1 bool
	Enhancement2 bool
}

// DefaultDomSpec is the serving policy: Algorithm 6 with both
// enhancements, matching hypermine.LeadingIndicators and the
// pre-engine registry preparation.
func DefaultDomSpec() DomSpec {
	return DomSpec{Algorithm: 6, Enhancement1: true, Enhancement2: true}
}

func (s DomSpec) normalize() (DomSpec, error) {
	if s.Algorithm == 0 {
		s.Algorithm = 6
	}
	if s.Algorithm != 5 && s.Algorithm != 6 {
		return s, badf("unknown dominator algorithm %d (want 5 or 6)", s.Algorithm)
	}
	return s, nil
}

// flight is one singleflight build: done is closed once val/err are
// final, so waiters synchronize on the channel.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// memo is a singleflight-memoized value: concurrent callers share one
// build, the warm path is a lock-free atomic load, and a build that
// failed with a context error is forgotten so a later caller retries.
type memo[T any] struct {
	ready atomic.Pointer[flight[T]] // completed build (sticky result)
	mu    sync.Mutex
	cur   *flight[T] // in-flight or completed build
}

// cached returns the completed result without evaluating (or even
// allocating) a builder — the zero-cost warm path.
//
//hyper:noalloc
func (m *memo[T]) cached() (T, error, bool) {
	if f := m.ready.Load(); f != nil {
		return f.val, f.err, true
	}
	var zero T
	return zero, nil, false
}

// get returns the memoized value, building it via build if this caller
// wins the race. Losers wait for the winner, but give up with ctx.Err()
// when their own context ends first (the build keeps running).
func (m *memo[T]) get(ctx context.Context, build func() (T, error)) (T, error) {
	for {
		if f := m.ready.Load(); f != nil {
			return f.val, f.err
		}
		m.mu.Lock()
		if f := m.cur; f != nil {
			m.mu.Unlock()
			select {
			case <-f.done:
				if isCtxErr(f.err) {
					// The winner's context died, not ours: its failure
					// must not surface as this caller's 499/504. Retry —
					// the slot was cleared, so someone (possibly us)
					// rebuilds under a live context.
					continue
				}
				return f.val, f.err
			case <-ctx.Done():
				var zero T
				return zero, ctx.Err()
			}
		}
		f := &flight[T]{done: make(chan struct{})}
		m.cur = f
		m.mu.Unlock()

		f.val, f.err = build()
		if isCtxErr(f.err) {
			// The winner's context died mid-build: that is the caller's
			// failure, not the artifact's. Clear the slot so the next
			// query retries instead of serving a poisoned cache forever.
			m.mu.Lock()
			m.cur = nil
			m.mu.Unlock()
		} else {
			m.ready.Store(f)
		}
		close(f.done)
		return f.val, f.err
	}
}

func isCtxErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// classifierSet is the prepared classification artifact for one
// dominator spec: the derived targets, the prebuilt ABC with its
// predictor pool, or the sticky reason classification is unavailable
// (row-less snapshot, or a dominator covering no targets).
type classifierSet struct {
	dom         *cover.Result
	targets     []int
	abc         *classify.ABC
	unavailable error
	pool        sync.Pool // *classify.Predictor, only when abc != nil
}

// Engine is the prepared-model query handle. It is safe for
// concurrent use; the underlying model must be immutable (mined
// models and loaded snapshots are).
type Engine struct {
	model *core.Model
	opt   Options

	index memo[*table.Index]
	sim   memo[*similarity.Graph]

	defaultDom *memo[*cover.Result]
	defaultCls *memo[*classifierSet]

	mu   sync.Mutex // guards the keyed memo maps (shape only)
	doms map[DomSpec]*memo[*cover.Result]
	cls  map[DomSpec]*memo[*classifierSet]

	rules ruleCache

	// Derived-artifact accounting and observability counters.
	derivedBytes     atomic.Int64
	indexBuilds      atomic.Int64
	similarityBuilds atomic.Int64
	dominatorBuilds  atomic.Int64
	classifierBuilds atomic.Int64
}

// New returns an Engine over the model. The model's hypergraph is
// required; the training table may be absent (a graph-only model, as
// the CLI builds from hypergraph JSON), in which case rule mining and
// classification report unavailability instead of answering.
func New(m *core.Model, opt Options) (*Engine, error) {
	if m == nil || m.H == nil {
		return nil, errors.New("engine: nil model or hypergraph")
	}
	if opt.RuleCacheEntries == 0 {
		opt.RuleCacheEntries = DefaultRuleCacheEntries
	}
	e := &Engine{
		model: m,
		opt:   opt,
		doms:  make(map[DomSpec]*memo[*cover.Result]),
		cls:   make(map[DomSpec]*memo[*classifierSet]),
	}
	e.rules.cap = opt.RuleCacheEntries
	e.rules.entries = make(map[ruleKey]*ruleEntry)
	def, _ := DefaultDomSpec().normalize()
	e.defaultDom = &memo[*cover.Result]{}
	e.defaultCls = &memo[*classifierSet]{}
	e.doms[def] = e.defaultDom
	e.cls[def] = e.defaultCls
	return e, nil
}

// Model returns the underlying immutable model.
func (e *Engine) Model() *core.Model { return e.model }

// Index returns the memoized TID-bitset index of the training table,
// building it on first use.
func (e *Engine) Index(ctx context.Context) (*table.Index, error) {
	if v, err, ok := e.index.cached(); ok {
		return v, err
	}
	return e.index.get(ctx, func() (*table.Index, error) {
		if e.model.Table == nil || e.model.Table.NumRows() == 0 {
			return nil, unavailablef("engine: model has no training rows to index")
		}
		defer runopt.PhaseLogFrom(ctx).Span(runopt.PhaseIndex)()
		ix := e.model.Table.Index()
		e.indexBuilds.Add(1)
		e.derivedBytes.Add(indexFootprint(e.model.Table))
		return ix, nil
	})
}

// SimilarityGraph returns the memoized all-vertices similarity graph,
// building it on first use under ctx.
func (e *Engine) SimilarityGraph(ctx context.Context) (*similarity.Graph, error) {
	if v, err, ok := e.sim.cached(); ok {
		return v, err
	}
	return e.sim.get(ctx, func() (*similarity.Graph, error) {
		defer runopt.PhaseLogFrom(ctx).Span(runopt.PhaseSimilarity)()
		g, err := similarity.BuildGraphContext(ctx, e.model.H, e.allVertices(), similarity.GraphOptions{})
		if err != nil {
			return nil, err
		}
		e.similarityBuilds.Add(1)
		e.derivedBytes.Add(simFootprint(g))
		return g, nil
	})
}

// Dominator returns the memoized dominator for the spec, building it
// on first use under ctx. Distinct specs memoize independently.
func (e *Engine) Dominator(ctx context.Context, spec DomSpec) (*cover.Result, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	m := e.domMemo(spec)
	if v, err, ok := m.cached(); ok {
		return v, err
	}
	return m.get(ctx, func() (*cover.Result, error) {
		defer runopt.PhaseLogFrom(ctx).Span(runopt.PhaseDominator)()
		opt := cover.Options{
			Complete:     spec.Complete,
			Enhancement1: spec.Enhancement1,
			Enhancement2: spec.Enhancement2,
		}
		var res *cover.Result
		var err error
		if spec.Algorithm == 5 {
			res, err = cover.DominatorGreedyDSContext(ctx, e.model.H, e.allVertices(), opt)
		} else {
			res, err = cover.DominatorSetCoverContext(ctx, e.model.H, e.allVertices(), opt)
		}
		if err != nil {
			return nil, err
		}
		e.dominatorBuilds.Add(1)
		e.derivedBytes.Add(domFootprint(res))
		return res, nil
	})
}

func (e *Engine) domMemo(spec DomSpec) *memo[*cover.Result] {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.doms[spec]
	if m == nil {
		m = &memo[*cover.Result]{}
		e.doms[spec] = m
	}
	return m
}

func (e *Engine) clsMemo(spec DomSpec) *memo[*classifierSet] {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.cls[spec]
	if m == nil {
		m = &memo[*classifierSet]{}
		e.cls[spec] = m
	}
	return m
}

// classifierSetFor returns the memoized prepared classifier for a
// dominator spec. Classification being unavailable on this model is a
// property of the (successfully built) set, not a build failure.
func (e *Engine) classifierSetFor(ctx context.Context, spec DomSpec) (*classifierSet, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	m := e.clsMemo(spec)
	if v, err, ok := m.cached(); ok {
		return v, err
	}
	return m.get(ctx, func() (*classifierSet, error) {
		return e.buildClassifierSet(ctx, spec)
	})
}

func (e *Engine) buildClassifierSet(ctx context.Context, spec DomSpec) (*classifierSet, error) {
	dom, err := e.Dominator(ctx, spec)
	if err != nil {
		return nil, err
	}
	// The dominator's own time is attributed above; this span covers
	// the classifier-specific work (association tables, pool setup).
	defer runopt.PhaseLogFrom(ctx).Span(runopt.PhaseClassifier)()
	set := &classifierSet{dom: dom, targets: targetsOf(dom)}
	switch {
	case e.model.RequireRows() != nil:
		set.unavailable = unavailablef("engine: model cannot classify: %v", e.model.RequireRows())
	case len(set.targets) == 0:
		set.unavailable = unavailablef("engine: model cannot classify: dominator covers no targets")
	default:
		abc, err := classify.NewABC(e.model, dom.DomSet, set.targets)
		if err != nil {
			return nil, internalf("engine: classifier: %v", err)
		}
		set.abc = abc
		set.pool.New = func() any { return abc.NewPredictor() }
	}
	e.classifierBuilds.Add(1)
	e.derivedBytes.Add(e.classifierFootprint(set))
	return set, nil
}

// targetsOf derives the classifiable targets of a dominator result:
// covered vertices outside the dominator, ascending.
func targetsOf(res *cover.Result) []int {
	inDom := make(map[int]bool, len(res.DomSet))
	for _, v := range res.DomSet {
		inDom[v] = true
	}
	var targets []int
	for v, cov := range res.Covered {
		if cov && !inDom[v] {
			targets = append(targets, v)
		}
	}
	sort.Ints(targets)
	return targets
}

// Targets returns the classifiable targets under the default
// dominator spec (TargetsFor with DefaultDomSpec).
func (e *Engine) Targets(ctx context.Context) ([]int, error) {
	return e.TargetsFor(ctx, DefaultDomSpec())
}

// TargetsFor returns the classifiable targets for a dominator spec.
func (e *Engine) TargetsFor(ctx context.Context, spec DomSpec) ([]int, error) {
	set, err := e.classifierSetFor(ctx, spec)
	if err != nil {
		return nil, err
	}
	return set.targets, nil
}

// Classifier returns the prepared ABC under the default dominator
// spec, or the sticky reason classification is unavailable.
func (e *Engine) Classifier(ctx context.Context) (*classify.ABC, error) {
	return e.ClassifierFor(ctx, DefaultDomSpec())
}

// ClassifierFor is Classifier for an explicit dominator spec.
func (e *Engine) ClassifierFor(ctx context.Context, spec DomSpec) (*classify.ABC, error) {
	set, err := e.classifierSetFor(ctx, spec)
	if err != nil {
		return nil, err
	}
	if set.abc == nil {
		return nil, set.unavailable
	}
	return set.abc, nil
}

// BorrowPredictor takes a scratch-reusing predictor from the default
// classifier's pool; pair with ReturnPredictor. Steady-state borrows
// perform no heap allocation.
//
//hyper:noalloc
func (e *Engine) BorrowPredictor(ctx context.Context) (*classify.Predictor, error) {
	set, err := e.warmClassifierSet(ctx)
	if err != nil {
		return nil, err
	}
	return set.pool.Get().(*classify.Predictor), nil
}

// ReturnPredictor puts a borrowed predictor back in the pool.
func (e *Engine) ReturnPredictor(ctx context.Context, p *classify.Predictor) {
	if p == nil {
		return
	}
	if set, _, ok := e.defaultCls.cached(); ok && set != nil && set.abc != nil {
		set.pool.Put(p)
	}
}

// warmClassifierSet resolves the default classifier set with a
// zero-allocation warm path (no builder closure is constructed once
// the set is memoized).
//
//hyper:noalloc
func (e *Engine) warmClassifierSet(ctx context.Context) (*classifierSet, error) {
	set, err, ok := e.defaultCls.cached()
	if !ok {
		set, err = e.classifierSetFor(ctx, DefaultDomSpec())
	}
	if err != nil {
		return nil, err
	}
	if set.abc == nil {
		return nil, set.unavailable
	}
	return set, nil
}

// Predict classifies one observation for target through a pooled
// predictor: domVals holds the dominator values in Dominator() order.
// Warm calls (classifier built, pool warm) make zero heap allocations.
//
//hyper:noalloc
func (e *Engine) Predict(ctx context.Context, domVals []table.Value, target int) (table.Value, float64, error) {
	set, err := e.warmClassifierSet(ctx)
	if err != nil {
		return 0, 0, err
	}
	p := set.pool.Get().(*classify.Predictor)
	v, conf, err := p.Predict(domVals, target)
	set.pool.Put(p)
	return v, conf, err
}

// PredictBatch classifies many observations for target through a
// pooled predictor; see classify.Predictor.PredictBatchContext for the
// domVals/out/conf contract. Beyond warm pool state it allocates
// nothing.
//
//hyper:noalloc
func (e *Engine) PredictBatch(ctx context.Context, domVals []table.Value, target int, out []table.Value, conf []float64) error {
	set, err := e.warmClassifierSet(ctx)
	if err != nil {
		return err
	}
	p := set.pool.Get().(*classify.Predictor)
	err = p.PredictBatchContext(ctx, domVals, target, out, conf)
	set.pool.Put(p)
	return err
}

// Rules returns the mined rules for head under opt, memoized in the
// bounded LRU keyed by (head, thresholds, MaxRules). The returned
// slice is shared between callers and must be treated as immutable.
// Calls carrying opt.Run hooks bypass the cache — a memoized answer
// cannot replay progress callbacks.
func (e *Engine) Rules(ctx context.Context, head int, opt core.MineOptions) ([]core.ScoredRule, error) {
	if err := e.model.RequireRows(); err != nil {
		return nil, unavailablef("engine: %v", err)
	}
	if head < 0 || head >= e.model.H.NumVertices() {
		return nil, badf("head attribute %d out of range", head)
	}
	if opt.Run != nil || e.rules.cap <= 0 {
		defer runopt.PhaseLogFrom(ctx).Span(runopt.PhaseRules)()
		return core.MineRulesContext(ctx, e.model, head, opt)
	}
	key := ruleKey{head: head, minSupport: opt.MinSupport, minConfidence: opt.MinConfidence, maxRules: opt.MaxRules}
	return e.rules.get(ctx, key, e.derivedBytes.Add, func() ([]core.ScoredRule, error) {
		// Only a cache miss does mining work, so only the winning
		// build is attributed; a cache hit records nothing.
		defer runopt.PhaseLogFrom(ctx).Span(runopt.PhaseRules)()
		return core.MineRulesContext(ctx, e.model, head, opt)
	})
}

// Warmup selects which artifacts to build eagerly.
type Warmup uint8

// Warmup policies; combine with |. WarmupNone (the zero value) keeps
// the Engine fully lazy.
const (
	WarmupIndex Warmup = 1 << iota
	WarmupSimilarity
	WarmupDominator
	WarmupClassifier

	WarmupNone Warmup = 0
	WarmupAll         = WarmupIndex | WarmupSimilarity | WarmupDominator | WarmupClassifier
)

// ParseWarmup maps the CLI vocabulary onto a policy.
func ParseWarmup(s string) (Warmup, error) {
	switch s {
	case "", "none":
		return WarmupNone, nil
	case "all":
		return WarmupAll, nil
	case "graph":
		return WarmupSimilarity | WarmupDominator, nil
	default:
		return 0, fmt.Errorf("engine: unknown warmup policy %q (want none, graph, or all)", s)
	}
}

// Warmup eagerly builds the selected artifacts under ctx, restoring
// the pre-engine "fully prepared at load" behavior when given
// WarmupAll. Classification being unavailable on this model (row-less
// snapshot, no targets) is recorded, not returned: a graph-only model
// warms up fine. The index is skipped on row-less models.
func (e *Engine) Warmup(ctx context.Context, w Warmup) error {
	if w&WarmupIndex != 0 && e.model.Table != nil && e.model.Table.NumRows() > 0 {
		if _, err := e.Index(ctx); err != nil {
			return err
		}
	}
	if w&WarmupSimilarity != 0 {
		if _, err := e.SimilarityGraph(ctx); err != nil {
			return err
		}
	}
	if w&WarmupDominator != 0 {
		if _, err := e.Dominator(ctx, DefaultDomSpec()); err != nil {
			return err
		}
	}
	if w&WarmupClassifier != 0 {
		if _, err := e.classifierSetFor(ctx, DefaultDomSpec()); err != nil {
			return err
		}
	}
	return nil
}

// Stats is a point-in-time engine summary: how many of each artifact
// were built (each memoized artifact builds at most once), the rule
// cache's hit trajectory, and the resident-cost accounting.
type Stats struct {
	IndexBuilds      int64 `json:"index_builds"`
	SimilarityBuilds int64 `json:"similarity_builds"`
	DominatorBuilds  int64 `json:"dominator_builds"`
	ClassifierBuilds int64 `json:"classifier_builds"`
	RuleHits         int64 `json:"rule_hits"`
	RuleMisses       int64 `json:"rule_misses"`
	RuleEvictions    int64 `json:"rule_evictions"`
	RuleEntries      int   `json:"rule_entries"`
	DerivedBytes     int64 `json:"derived_bytes"`
	ResidentCost     int64 `json:"resident_cost"`
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	hits, misses, evictions, entries := e.rules.stats()
	return Stats{
		IndexBuilds:      e.indexBuilds.Load(),
		SimilarityBuilds: e.similarityBuilds.Load(),
		DominatorBuilds:  e.dominatorBuilds.Load(),
		ClassifierBuilds: e.classifierBuilds.Load(),
		RuleHits:         hits,
		RuleMisses:       misses,
		RuleEvictions:    evictions,
		RuleEntries:      entries,
		DerivedBytes:     e.derivedBytes.Load(),
		ResidentCost:     e.ResidentCost(),
	}
}

// costUnitBytes converts derived-artifact bytes into edge-equivalent
// cost units: one resident hyperedge occupies roughly this many bytes
// (tail/head slices, weight, adjacency and key-map entries), so a
// similarity matrix, classifier, or cached rule answer is charged in
// the same currency the registry's resident bound is expressed in.
const costUnitBytes = 64

// ResidentCost reports the model's resident footprint in
// edge-equivalent units: its hyperedge count plus every built derived
// artifact converted at costUnitBytes per unit. The registry bounds
// eviction on this figure, so a model whose lazily built similarity
// graph or rule cache grew after load is charged for it.
func (e *Engine) ResidentCost() int64 {
	return int64(e.model.H.NumEdges()) + (e.derivedBytes.Load()+costUnitBytes-1)/costUnitBytes
}

func (e *Engine) allVertices() []int {
	all := make([]int, e.model.H.NumVertices())
	for i := range all {
		all[i] = i
	}
	return all
}

// Approximate resident footprints of the derived artifacts, in bytes.
// These are deliberate estimates — close enough for eviction to track
// true residency, cheap enough to compute without reflection.

func simFootprint(g *similarity.Graph) int64 {
	n := int64(len(g.Nodes))
	return n*n*8 + n*8 + 48
}

func domFootprint(res *cover.Result) int64 {
	return int64(len(res.Covered)) + int64(len(res.DomSet)+2)*8 + 48
}

func indexFootprint(tb *table.Table) int64 {
	words := (int64(tb.NumRows()) + 63) / 64
	postings := int64(tb.NumAttrs()) * int64(tb.K())
	return postings*words*8 + postings*8 + 64
}

// classifierFootprint estimates the prepared ABC: one association
// table per usable hyperedge, K^|tail| rows of (1+K) int32 counters.
func (e *Engine) classifierFootprint(set *classifierSet) int64 {
	if set.abc == nil {
		return int64(len(set.targets))*8 + 64
	}
	k := int64(e.model.Table.K())
	var bytes int64 = 64
	inDom := make(map[int]bool, len(set.dom.DomSet))
	for _, v := range set.dom.DomSet {
		inDom[v] = true
	}
	for _, y := range set.targets {
		for _, ei := range e.model.H.In(y) {
			edge := e.model.H.Edge(int(ei))
			usable := true
			rows := int64(1)
			for _, tv := range edge.Tail {
				if !inDom[tv] {
					usable = false
					break
				}
				rows *= k
			}
			if usable {
				bytes += rows * (1 + k) * 4
			}
		}
	}
	return bytes
}

func ruleFootprint(rules []core.ScoredRule) int64 {
	var items int64
	for i := range rules {
		items += int64(len(rules[i].Rule.X) + len(rules[i].Rule.Y))
	}
	return 96 + int64(len(rules))*96 + items*16
}

// ruleKey identifies one memoized MineRules answer. Run hooks are
// excluded (hook-carrying calls bypass the cache).
type ruleKey struct {
	head          int
	minSupport    float64
	minConfidence float64
	maxRules      int
}

type ruleEntry struct {
	flight   *flight[[]core.ScoredRule]
	lastUsed int64
	bytes    int64
	complete bool
}

// ruleCache is the bounded mined-rule LRU with per-key singleflight:
// concurrent queries for the same (head, options) share one mining
// run; completed answers are evicted least-recently-used beyond cap.
type ruleCache struct {
	mu        sync.Mutex
	cap       int
	clock     int64
	entries   map[ruleKey]*ruleEntry
	hits      int64
	misses    int64
	evictions int64
}

func (c *ruleCache) stats() (hits, misses, evictions int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, len(c.entries)
}

// get returns the cached answer for key, or builds it via build if
// this caller wins; charge adjusts the owning engine's derived-bytes
// accounting as entries come and go.
func (c *ruleCache) get(ctx context.Context, key ruleKey, charge func(int64) int64, build func() ([]core.ScoredRule, error)) ([]core.ScoredRule, error) {
	for {
		c.mu.Lock()
		c.clock++
		e, ok := c.entries[key]
		if !ok {
			break
		}
		e.lastUsed = c.clock
		c.hits++
		f := e.flight
		c.mu.Unlock()
		select {
		case <-f.done:
			if isCtxErr(f.err) {
				continue // the winner's context died, not ours — retry
			}
			return f.val, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c.misses++
	f := &flight[[]core.ScoredRule]{done: make(chan struct{})}
	e := &ruleEntry{flight: f, lastUsed: c.clock}
	c.entries[key] = e
	c.mu.Unlock()

	f.val, f.err = build()
	c.mu.Lock()
	if f.err != nil {
		// Errors — context or otherwise — are cheap to reproduce and
		// must not occupy a cache slot; drop the entry entirely.
		delete(c.entries, key)
	} else {
		e.complete = true
		e.bytes = ruleFootprint(f.val)
		charge(e.bytes)
		c.evictOverCapLocked(charge)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

func (c *ruleCache) evictOverCapLocked(charge func(int64) int64) {
	for len(c.entries) > c.cap {
		var victim ruleKey
		var ve *ruleEntry
		for k, e := range c.entries {
			if !e.complete {
				continue // never evict an in-flight build
			}
			if ve == nil || e.lastUsed < ve.lastUsed {
				victim, ve = k, e
			}
		}
		if ve == nil {
			return
		}
		delete(c.entries, victim)
		charge(-ve.bytes)
		c.evictions++
	}
}
