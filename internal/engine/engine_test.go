package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"hypermine/internal/classify"
	"hypermine/internal/core"
	"hypermine/internal/cover"
	"hypermine/internal/similarity"
	"hypermine/internal/table"
	"hypermine/internal/testutil"
)

// testModel mines a deterministic model: a noisy table whose values
// correlate through a per-row base, so mining admits edges, the
// dominator covers targets, and classification is available.
func testModel(t testing.TB, seed int64, nAttrs, rows, maxTail int) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]string, nAttrs)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("A%02d", j)
	}
	tb, err := table.New(attrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]table.Value, nAttrs)
	for i := 0; i < rows; i++ {
		base := table.Value(1 + rng.Intn(3))
		for j := range row {
			if rng.Intn(3) == 0 {
				row[j] = table.Value(1 + rng.Intn(3))
			} else {
				row[j] = base
			}
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	cfg := core.Config{GammaEdge: 1.0, GammaPair: 1.0, Candidates: core.EdgeSeeded}
	if maxTail > 0 {
		cfg.MaxTailSize = maxTail
	}
	m, err := core.Build(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newEngine(t testing.TB, m *core.Model, opt Options) *Engine {
	t.Helper()
	e, err := New(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// v1Classifier reproduces the pre-engine preparation: serving
// dominator, derived targets, NewABC.
func v1Classifier(t testing.TB, m *core.Model) (*cover.Result, []int, *classify.ABC) {
	t.Helper()
	all := make([]int, m.H.NumVertices())
	for i := range all {
		all[i] = i
	}
	res, err := cover.DominatorSetCover(m.H, all, cover.Options{Enhancement1: true, Enhancement2: true})
	if err != nil {
		t.Fatal(err)
	}
	targets := targetsOf(res)
	abc, err := classify.NewABC(m, res.DomSet, targets)
	if err != nil {
		t.Fatal(err)
	}
	return res, targets, abc
}

// TestRulesDifferential: every Engine rules answer — cold and cached —
// must be bit-identical to the v1 core.MineRules one-shot, including
// on a MaxTailSize=3 model.
func TestRulesDifferential(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name    string
		maxTail int
	}{
		{"restricted", 0},
		{"tail3", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := testModel(t, 11, 10, 400, tc.maxTail)
			e := newEngine(t, m, Options{})
			opts := []core.MineOptions{
				{},
				{MaxRules: 5},
				{MinSupport: 0.05, MinConfidence: 0.4, MaxRules: 10},
				{MinSupport: 0.2},
			}
			for head := 0; head < m.Table.NumAttrs(); head += 3 {
				for _, opt := range opts {
					want, err := core.MineRules(m, head, opt)
					if err != nil {
						t.Fatal(err)
					}
					for rep := 0; rep < 2; rep++ { // second read is a cache hit
						got, err := e.Rules(ctx, head, opt)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("head %d opt %+v rep %d: engine rules differ from v1", head, opt, rep)
						}
					}
				}
			}
			st := e.Stats()
			if st.RuleHits == 0 || st.RuleMisses == 0 {
				t.Fatalf("expected both hits and misses, got %+v", st)
			}
		})
	}
}

// TestSimilarDifferential: pair answers must equal the v1 free
// functions; ranking answers must equal a v1 recompute-and-sort.
func TestSimilarDifferential(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 12, 14, 400, 0)
	e := newEngine(t, m, Options{})
	h := m.H

	for a := 0; a < h.NumVertices(); a++ {
		b := (a + 3) % h.NumVertices()
		if a == b {
			continue
		}
		resp, err := e.Do(ctx, &Request{Similar: &SimilarRequest{A: h.VertexName(a), B: h.VertexName(b)}})
		if err != nil {
			t.Fatal(err)
		}
		sim := resp.Similar
		if *sim.InSim != similarity.InSim(h, a, b) ||
			*sim.OutSim != similarity.OutSim(h, a, b) ||
			*sim.Distance != similarity.Distance(h, a, b) {
			t.Fatalf("pair (%d,%d) differs from v1: %+v", a, b, sim)
		}
	}

	// Ranking: the v1 counterpart is the all-pairs graph
	// (BuildSimilarityGraph) — the engine memoizes exactly that build,
	// so every ranked distance must equal the v1 matrix cell. (Direct
	// Distance(a, v) can differ in the last ulp for v < a because the
	// matrix computes each cell once as Distance(min, max).)
	a := 2
	all := make([]int, h.NumVertices())
	for i := range all {
		all[i] = i
	}
	vg, err := similarity.BuildGraph(h, all)
	if err != nil {
		t.Fatal(err)
	}
	type nd struct {
		name string
		d    float64
	}
	var want []nd
	for v := 0; v < h.NumVertices(); v++ {
		if v == a {
			continue
		}
		want = append(want, nd{h.VertexName(v), vg.Dist(a, v)})
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].d < want[j].d })
	resp, err := e.Do(ctx, &Request{Similar: &SimilarRequest{A: h.VertexName(a), Top: len(want)}})
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Similar.Neighbors
	if len(got) != len(want) {
		t.Fatalf("ranking size %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Name != want[i].name || got[i].Distance != want[i].d {
			t.Fatalf("rank %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestDominatorDifferential: both dominator variants must be
// bit-identical to their v1 counterparts.
func TestDominatorDifferential(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 13, 12, 400, 0)
	e := newEngine(t, m, Options{})
	all := e.allVertices()
	opt := cover.Options{Enhancement1: true, Enhancement2: true}

	want6, err := cover.DominatorSetCover(m.H, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	got6, err := e.Dominator(ctx, DefaultDomSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got6, want6) {
		t.Fatalf("algorithm 6: engine %+v, v1 %+v", got6, want6)
	}

	want5, err := cover.DominatorGreedyDS(m.H, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	got5, err := e.Dominator(ctx, DomSpec{Algorithm: 5, Enhancement1: true, Enhancement2: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got5, want5) {
		t.Fatalf("algorithm 5: engine %+v, v1 %+v", got5, want5)
	}

	// The two specs memoize independently and a repeat returns the
	// identical pointer (memoized, not recomputed).
	again, err := e.Dominator(ctx, DefaultDomSpec())
	if err != nil {
		t.Fatal(err)
	}
	if again != got6 {
		t.Fatal("repeat dominator query rebuilt the artifact")
	}
	if st := e.Stats(); st.DominatorBuilds != 2 {
		t.Fatalf("dominator builds %d, want 2 (one per spec)", st.DominatorBuilds)
	}
}

// TestClassifyDifferential: single and batch classification through
// Engine.Do must be bit-identical to the v1 predictor path.
func TestClassifyDifferential(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 14, 12, 500, 0)
	e := newEngine(t, m, Options{})
	_, targets, abc := v1Classifier(t, m)
	dom := abc.Dominator()
	p := abc.NewPredictor()
	rng := rand.New(rand.NewSource(99))

	for i := 0; i < 30; i++ {
		domVals := make([]table.Value, len(dom))
		values := map[string]int{}
		for j, a := range dom {
			v := 1 + rng.Intn(3)
			domVals[j] = table.Value(v)
			values[m.H.VertexName(a)] = v
		}
		target := targets[i%len(targets)]
		wantV, wantConf, err := p.Predict(domVals, target)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := e.Do(ctx, &Request{Classify: &ClassifyRequest{
			Target: m.H.VertexName(target), Values: values,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if *resp.Classify.Value != int(wantV) || *resp.Classify.Confidence != wantConf {
			t.Fatalf("query %d: engine (%d, %v), v1 (%d, %v)",
				i, *resp.Classify.Value, *resp.Classify.Confidence, wantV, wantConf)
		}
	}

	// Batch.
	rows := make([][]int, 50)
	flat := make([]table.Value, 0, len(rows)*len(dom))
	for i := range rows {
		rows[i] = make([]int, len(dom))
		for j := range rows[i] {
			rows[i][j] = 1 + rng.Intn(3)
			flat = append(flat, table.Value(rows[i][j]))
		}
	}
	target := targets[0]
	wantVals := make([]table.Value, len(rows))
	wantConf := make([]float64, len(rows))
	if err := p.PredictBatch(flat, target, wantVals, wantConf); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Do(ctx, &Request{Classify: &ClassifyRequest{
		Target: m.H.VertexName(target), Rows: rows,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if resp.Classify.Values[i] != int(wantVals[i]) || resp.Classify.Confidences[i] != wantConf[i] {
			t.Fatalf("batch row %d: engine (%d, %v), v1 (%d, %v)",
				i, resp.Classify.Values[i], resp.Classify.Confidences[i], wantVals[i], wantConf[i])
		}
	}
}

// TestColdEngineSingleBuild: N goroutines hammer a cold engine with
// mixed queries; each artifact must build exactly once and every
// answer must equal the v1 answer. Run with -race in CI.
func TestColdEngineSingleBuild(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 15, 10, 300, 0)
	_, targets, abc := v1Classifier(t, m)
	dom := abc.Dominator()

	// Precompute v1 truths.
	wantRules, err := core.MineRules(m, 0, core.MineOptions{MaxRules: 5})
	if err != nil {
		t.Fatal(err)
	}
	wantDist := similarity.Distance(m.H, 0, 1)
	domVals := make([]table.Value, len(dom))
	values := map[string]int{}
	for j, a := range dom {
		domVals[j] = table.Value(1 + j%3)
		values[m.H.VertexName(a)] = 1 + j%3
	}
	wantV, wantConf, err := abc.NewPredictor().Predict(domVals, targets[0])
	if err != nil {
		t.Fatal(err)
	}

	e := newEngine(t, m, Options{})
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch (w + i) % 4 {
				case 0:
					got, err := e.Rules(ctx, 0, core.MineOptions{MaxRules: 5})
					if err != nil {
						errCh <- err
						return
					}
					if !reflect.DeepEqual(got, wantRules) {
						errCh <- fmt.Errorf("rules drifted under race")
						return
					}
				case 1:
					resp, err := e.Do(ctx, &Request{Similar: &SimilarRequest{A: m.H.VertexName(0), B: m.H.VertexName(1)}})
					if err != nil {
						errCh <- err
						return
					}
					if *resp.Similar.Distance != wantDist {
						errCh <- fmt.Errorf("similar drifted under race")
						return
					}
				case 2:
					if _, err := e.Do(ctx, &Request{Similar: &SimilarRequest{A: m.H.VertexName(2), Top: 5}}); err != nil {
						errCh <- err
						return
					}
				default:
					resp, err := e.Do(ctx, &Request{Classify: &ClassifyRequest{Target: m.H.VertexName(targets[0]), Values: values}})
					if err != nil {
						errCh <- err
						return
					}
					if *resp.Classify.Value != int(wantV) || *resp.Classify.Confidence != wantConf {
						errCh <- fmt.Errorf("classify drifted under race")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.SimilarityBuilds != 1 {
		t.Errorf("similarity built %d times, want 1", st.SimilarityBuilds)
	}
	if st.DominatorBuilds != 1 {
		t.Errorf("dominator built %d times, want 1", st.DominatorBuilds)
	}
	if st.ClassifierBuilds != 1 {
		t.Errorf("classifier built %d times, want 1", st.ClassifierBuilds)
	}
	if st.RuleMisses != 1 {
		t.Errorf("rule cache missed %d times for one key, want 1", st.RuleMisses)
	}
}

// TestRuleCacheLRU: the bounded cache evicts least-recently-used
// completed answers, recomputes them on re-query, and keeps the
// accounting in step.
func TestRuleCacheLRU(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 16, 10, 300, 0)
	e := newEngine(t, m, Options{RuleCacheEntries: 2})

	q := func(head int) {
		t.Helper()
		if _, err := e.Rules(ctx, head, core.MineOptions{MaxRules: 3}); err != nil {
			t.Fatal(err)
		}
	}
	q(0)
	q(1)
	q(0) // refresh 0: LRU order is now 1, 0
	q(2) // evicts 1
	st := e.Stats()
	if st.RuleEntries != 2 || st.RuleEvictions != 1 {
		t.Fatalf("after overflow: %+v", st)
	}
	q(1) // recompute
	st2 := e.Stats()
	if st2.RuleMisses != st.RuleMisses+1 {
		t.Fatalf("evicted key did not recompute: %+v -> %+v", st, st2)
	}
	if st2.DerivedBytes <= 0 || st2.ResidentCost <= int64(m.H.NumEdges()) {
		t.Fatalf("accounting did not charge derived artifacts: %+v", st2)
	}

	// A disabled cache still answers, straight through.
	e2 := newEngine(t, m, Options{RuleCacheEntries: -1})
	want, _ := core.MineRules(m, 0, core.MineOptions{MaxRules: 3})
	got, err := e2.Rules(ctx, 0, core.MineOptions{MaxRules: 3})
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("uncached rules drifted: %v", err)
	}
}

// TestCancelRetry: an artifact build aborted by its caller's context
// must not poison the memo — the next caller rebuilds and succeeds.
func TestCancelRetry(t *testing.T) {
	m := testModel(t, 17, 12, 400, 0)
	e := newEngine(t, m, Options{})
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SimilarityGraph(canceled); err == nil {
		t.Fatal("canceled build succeeded")
	}
	if _, err := e.Rules(canceled, 0, core.MineOptions{MaxRules: 3}); err == nil {
		t.Fatal("canceled rules succeeded")
	}
	if err := e.Warmup(canceled, WarmupAll); err == nil {
		t.Fatal("canceled warmup succeeded")
	}
	// All retry cleanly.
	if _, err := e.SimilarityGraph(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Rules(context.Background(), 0, core.MineOptions{MaxRules: 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Warmup(context.Background(), WarmupAll); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.SimilarityBuilds != 1 || st.DominatorBuilds != 1 || st.ClassifierBuilds != 1 || st.IndexBuilds != 1 {
		t.Fatalf("unexpected build counts after retry: %+v", st)
	}
}

// TestMemoWaiterRetriesAfterWinnerCtxError: a waiter blocked on
// another caller's build must not inherit that caller's context
// failure — it retries and succeeds under its own live context.
func TestMemoWaiterRetriesAfterWinnerCtxError(t *testing.T) {
	var m memo[int]
	started := make(chan struct{})
	release := make(chan struct{})
	winnerErr := make(chan error, 1)
	go func() {
		_, err := m.get(context.Background(), func() (int, error) {
			close(started)
			<-release
			return 0, context.Canceled // the winner's ctx died mid-build
		})
		winnerErr <- err
	}()
	<-started
	waiterDone := make(chan struct{})
	var got int
	var gotErr error
	go func() {
		defer close(waiterDone)
		got, gotErr = m.get(context.Background(), func() (int, error) { return 42, nil })
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter block on the flight
	close(release)
	if err := <-winnerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("winner error %v, want Canceled", err)
	}
	<-waiterDone
	if gotErr != nil || got != 42 {
		t.Fatalf("waiter got (%d, %v), want (42, nil): winner's ctx error leaked", got, gotErr)
	}
	// The retry memoized the good value.
	if v, err, ok := m.cached(); !ok || err != nil || v != 42 {
		t.Fatalf("memo not settled on the retried value: (%d, %v, %v)", v, err, ok)
	}
}

// TestWarmupBuildsEverythingOnce: WarmupAll prebuilds each artifact;
// subsequent queries build nothing.
func TestWarmupBuildsEverythingOnce(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 18, 10, 300, 0)
	e := newEngine(t, m, Options{})
	if err := e.Warmup(ctx, WarmupAll); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.SimilarityBuilds != 1 || st.DominatorBuilds != 1 || st.ClassifierBuilds != 1 || st.IndexBuilds != 1 {
		t.Fatalf("warmup build counts: %+v", st)
	}
	if _, err := e.Do(ctx, &Request{Dominators: &DominatorsRequest{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(ctx, &Request{Similar: &SimilarRequest{A: m.H.VertexName(0), Top: 3}}); err != nil {
		t.Fatal(err)
	}
	if st2 := e.Stats(); st2.SimilarityBuilds != 1 || st2.DominatorBuilds != 1 {
		t.Fatalf("queries after warmup rebuilt artifacts: %+v", st2)
	}
}

// TestErrorKinds: malformed requests are ErrBadRequest, unanswerable
// ones ErrUnavailable, and graph-only models answer graph queries.
func TestErrorKinds(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 19, 10, 300, 0)

	kindOf := func(err error) ErrorKind {
		t.Helper()
		if err == nil {
			t.Fatal("expected error")
		}
		ee := AsError(err)
		return ee.Kind
	}

	e := newEngine(t, m, Options{})
	if k := kindOf(func() error { _, err := e.Do(ctx, &Request{}); return err }()); k != ErrBadRequest {
		t.Fatalf("empty request: kind %s", k)
	}
	if k := kindOf(func() error {
		_, err := e.Do(ctx, &Request{Rules: &RulesRequest{Head: "NOPE"}})
		return err
	}()); k != ErrBadRequest {
		t.Fatalf("unknown head: kind %s", k)
	}
	if k := kindOf(func() error {
		_, err := e.Do(ctx, &Request{Dominators: &DominatorsRequest{Alg: 9}})
		return err
	}()); k != ErrBadRequest {
		t.Fatalf("bad alg: kind %s", k)
	}
	// Nested batches fail per-item, not whole-request.
	nested, err := e.Do(ctx, &Request{Batch: []Request{{Batch: []Request{{}}}, {Dominators: &DominatorsRequest{}}}})
	if err != nil {
		t.Fatalf("nested batch aborted the whole request: %v", err)
	}
	if nested.Batch[0].Error == nil || nested.Batch[0].Error.Kind != ErrBadRequest {
		t.Fatalf("nested batch item: %+v", nested.Batch[0])
	}
	if nested.Batch[1].Dominators == nil {
		t.Fatal("healthy batch sibling did not answer")
	}

	// Graph-only model: similar/dominators answer, rules/classify are
	// unavailable.
	g := newEngine(t, &core.Model{H: m.H, RowsOmitted: true}, Options{})
	if _, err := g.Do(ctx, &Request{Dominators: &DominatorsRequest{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Do(ctx, &Request{Similar: &SimilarRequest{A: m.H.VertexName(0), Top: 3}}); err != nil {
		t.Fatal(err)
	}
	if k := kindOf(func() error {
		_, err := g.Do(ctx, &Request{Rules: &RulesRequest{Head: m.H.VertexName(0)}})
		return err
	}()); k != ErrUnavailable {
		t.Fatalf("graph-only rules: kind %s", k)
	}
	if k := kindOf(func() error {
		_, err := g.Do(ctx, &Request{Classify: &ClassifyRequest{Target: m.H.VertexName(5), Values: map[string]int{}}})
		return err
	}()); k != ErrUnavailable {
		t.Fatalf("graph-only classify: kind %s", k)
	}
}

// TestBatchMixed: a batch answers items independently; the nested
// check above covers per-item failure, this covers payload fidelity.
func TestBatchMixed(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 20, 10, 300, 0)
	e := newEngine(t, m, Options{})
	resp, err := e.Do(ctx, &Request{Batch: []Request{
		{Dominators: &DominatorsRequest{}},
		{Similar: &SimilarRequest{A: m.H.VertexName(0), B: m.H.VertexName(1)}},
		{Rules: &RulesRequest{Head: m.H.VertexName(0), Top: 3}},
		{Similar: &SimilarRequest{A: "NOPE"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Batch) != 4 {
		t.Fatalf("batch size %d", len(resp.Batch))
	}
	if resp.Batch[0].Dominators == nil || resp.Batch[1].Similar == nil || resp.Batch[2].Rules == nil {
		t.Fatalf("missing payloads: %+v", resp.Batch)
	}
	if resp.Batch[3].Error == nil || resp.Batch[3].Error.Kind != ErrBadRequest {
		t.Fatalf("bad item did not fail alone: %+v", resp.Batch[3])
	}
	// Individual answers equal the single-request answers.
	single, err := e.Do(ctx, &Request{Similar: &SimilarRequest{A: m.H.VertexName(0), B: m.H.VertexName(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if *resp.Batch[1].Similar.Distance != *single.Similar.Distance {
		t.Fatal("batch similar differs from single")
	}
}

// TestPredictZeroAllocs pins the warm typed classify path at zero heap
// allocations per query.
func TestPredictZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	ctx := context.Background()
	m := testModel(t, 21, 12, 500, 0)
	e := newEngine(t, m, Options{})
	targets, err := e.Targets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dom, err := e.Dominator(ctx, DefaultDomSpec())
	if err != nil {
		t.Fatal(err)
	}
	domVals := make([]table.Value, len(dom.DomSet))
	for j := range domVals {
		domVals[j] = table.Value(1 + j%3)
	}
	target := targets[0]
	// Warm the pool.
	if _, _, err := e.Predict(ctx, domVals, target); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := e.Predict(ctx, domVals, target); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm Predict allocates %.1f/op, want 0", allocs)
	}

	// The warm batch path too.
	out := make([]table.Value, 16)
	conf := make([]float64, 16)
	batch := make([]table.Value, 16*len(dom.DomSet))
	for i := range batch {
		batch[i] = table.Value(1 + i%3)
	}
	if err := e.PredictBatch(ctx, batch, target, out, conf); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if err := e.PredictBatch(ctx, batch, target, out, conf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm PredictBatch allocates %.1f/op, want 0", allocs)
	}
}
